GO ?= go
FUZZTIME ?= 15s
BENCHTIME ?= 1s
BENCHDATE := $(shell date +%Y-%m-%d)

.PHONY: all build test race fuzz vet bench smoke-bench ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 CI gate: the full suite under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short deterministic fuzz smoke over the RMI wire codec. Each target
# must run in its own invocation (go test allows one -fuzz at a time).
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzFrameRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/rmi/
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/rmi/

# Full benchmark sweep with allocation stats, archived as a dated JSON
# snapshot (one go-test event per line) for regression comparison.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -json . | tee BENCH_$(BENCHDATE).json
	@echo "benchmark snapshot written to BENCH_$(BENCHDATE).json"

# Quick CI smoke: the kernel and fault-simulation benchmarks only, one
# short iteration each — catches crashes and gross regressions, not noise.
smoke-bench:
	$(GO) test -run='^$$' -bench='SchedulerThroughput|VirtualVsSerialFaultSim|Figure4VirtualFaultSim' -benchmem -benchtime=100x .

ci: build vet test race fuzz smoke-bench

clean:
	$(GO) clean ./...
