GO ?= go
FUZZTIME ?= 15s
BENCHTIME ?= 1s
BENCHDATE := $(shell date +%Y-%m-%d)

# BENCH_GOFLAGS is the GOFLAGS value shared by `make bench` and
# `make lint`: the noalloc analyzer shells out to `go build -gcflags=-m`
# with the inherited environment, so running both under the same flags
# keeps the escape analysis the lint gate sees identical to the
# conditions the benchmarks measure.
BENCH_GOFLAGS ?=

.PHONY: all build test race fuzz vet lint vuln bench benchdiff smoke-bench loadgen profile chaos shards ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 CI gate: the full suite under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the gocad-lint suite machine-checks
# the kernel's determinism, token-lifecycle, RMI-safety, capability-
# sandbox, wire-codec-symmetry and no-alloc invariants (DESIGN.md §8 and
# §13). Zero findings is a hard CI gate; -timings surfaces the load and
# per-analyzer wall time. GOFLAGS matches `make bench` so the noalloc
# escape analysis sees benchmark conditions.
lint:
	GOFLAGS="$(BENCH_GOFLAGS)" $(GO) run ./cmd/gocad-lint -timings ./...
	GOFLAGS="$(BENCH_GOFLAGS)" $(GO) test -count=1 -run='TestRepoIsClean|CodecParity' ./internal/lint/... ./internal/core/

# Non-blocking dependency-vulnerability advisory; skipped silently when
# govulncheck is not installed (it is not vendored).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "govulncheck: advisory findings above (non-blocking)"; \
	else \
		echo "govulncheck not installed; skipping advisory scan"; \
	fi

# Benchmark regression diff: compares the two most recent BENCH_*.json
# snapshots (see `make bench`) and exits 1 when any benchmark is more
# than 20% worse on ns/op or allocs/op. ci.sh runs it as a non-blocking
# advisory over all benchmarks and then as a BLOCKING gate over the
# low-noise event-kernel benchmarks (SKIP_KERNEL_BENCH_GATE=1 bypasses
# the gate); run it by hand with explicit files to gate a change:
#   go run ./cmd/benchdiff BENCH_old.json BENCH_new.json
benchdiff:
	@set -- $$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -2); \
	if [ "$$#" -eq 2 ]; then \
		$(GO) run ./cmd/benchdiff "$$1" "$$2"; \
	else \
		echo "fewer than two BENCH_*.json snapshots; run make bench"; \
	fi

# Short deterministic fuzz smoke over the RMI wire codec. Each target
# must run in its own invocation (go test allows one -fuzz at a time).
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzFrameRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/rmi/
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/rmi/
	$(GO) test -run='^$$' -fuzz='^FuzzBinaryCodec$$' -fuzztime=$(FUZZTIME) ./internal/rmi/
	$(GO) test -run='^$$' -fuzz='^FuzzBinaryDecode$$' -fuzztime=$(FUZZTIME) ./internal/rmi/
	$(GO) test -run='^$$' -fuzz='^FuzzMuxResponses$$' -fuzztime=$(FUZZTIME) ./internal/rmi/
	$(GO) test -run='^$$' -fuzz='^FuzzMuxFaultyConn$$' -fuzztime=$(FUZZTIME) ./internal/rmi/
	$(GO) test -run='^$$' -fuzz='^FuzzPartitionCircuit$$' -fuzztime=$(FUZZTIME) ./internal/shard/
	$(GO) test -run='^$$' -fuzz='^FuzzQueueOrdering$$' -fuzztime=$(FUZZTIME) ./internal/sim/

# Deterministic chaos sweep under the race detector: seeded replica
# fault schedules (kill, partition, slow-drip, flap) across replica
# counts, pipeline depths and cache settings, every cell asserting
# bit-identical results while one replica stays healthy and explicit
# degradation when none does. Seeded and bounded — a red run is a real
# regression, never flake.
chaos:
	$(GO) test -race -count=1 -run='Chaos|Hedged|Failover|Quorum' ./internal/core/ ./internal/netsim/ ./internal/fault/
	$(GO) test -race -count=1 ./internal/replica/

# Sharded-execution determinism gate under the race detector: the shard
# engine's unit matrix plus the scenario-level determinism matrix —
# every cell asserts byte-identical results against the single-scheduler
# baseline across shard counts, worker counts and window sizes.
shards:
	$(GO) test -race -count=1 -run='Shard|Partition|Generate' ./internal/shard/ ./internal/core/

# CPU and heap profiles of the hottest Table 2 scenario (MR on the
# emulated-local profile: full simulator client, real RMI marshalling,
# no network transit — the kernel and fault-path costs dominate).
# Profiles land in gitignored profiles/; inspect with
#   go tool pprof profiles/cpu.out
profile:
	@mkdir -p profiles
	GOFLAGS="$(BENCH_GOFLAGS)" $(GO) test -run='^$$' -bench='BenchmarkTable2Scenarios/MR-local' \
		-benchtime=$(BENCHTIME) -cpuprofile=profiles/cpu.out -memprofile=profiles/heap.out .
	@echo "profiles written to profiles/cpu.out and profiles/heap.out"

# Full benchmark sweep with allocation stats, archived as a dated JSON
# snapshot (one go-test event per line) for regression comparison.
# internal/sim rides along so the kernel's arena/pool delivery
# benchmarks land in the snapshot — ci.sh's blocking kernel gate
# compares them.
bench:
	GOFLAGS="$(BENCH_GOFLAGS)" $(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -json . ./internal/sim/ | tee BENCH_$(BENCHDATE).json
	@echo "benchmark snapshot written to BENCH_$(BENCHDATE).json"
	$(GO) run ./cmd/gocad-loadgen -selftest

# Quick CI smoke: the kernel and fault-simulation benchmarks only, one
# short iteration each — catches crashes and gross regressions, not noise.
smoke-bench:
	$(GO) test -run='^$$' -bench='SchedulerThroughput|VirtualVsSerialFaultSim|Figure4VirtualFaultSim' -benchmem -benchtime=100x .

# Gateway load smoke: gocad-loadgen storms an in-process gateway at 4x
# MaxSessions and asserts the admission-control contract end to end —
# bit-identical fingerprints for admitted sessions, typed prompt
# rejections for the rest, and /metrics + billing-ledger counters that
# reconcile exactly with the client-side counts. Prints sessions/sec
# and call latency percentiles (p50/p99/p999).
loadgen:
	$(GO) run ./cmd/gocad-loadgen -selftest

ci: build vet lint test race chaos shards fuzz smoke-bench loadgen vuln

clean:
	$(GO) clean ./...
