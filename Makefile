GO ?= go
FUZZTIME ?= 15s

.PHONY: all build test race fuzz vet ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 CI gate: the full suite under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short deterministic fuzz smoke over the RMI wire codec. Each target
# must run in its own invocation (go test allows one -fuzz at a time).
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzFrameRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/rmi/
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/rmi/

ci: build vet test race fuzz

clean:
	$(GO) clean ./...
