// Benchmarks regenerating the paper's evaluation. Each table and figure
// has a dedicated benchmark (scaled down so `go test -bench` completes
// in seconds; cmd/experiments runs the full-size versions):
//
//	BenchmarkTable1EstimatorAccuracy  — Table 1 (estimator comparison)
//	BenchmarkTable2Scenarios          — Table 2 (AL/ER/MR × local/LAN/WAN)
//	BenchmarkFigure3BufferSweep       — Figure 3 (buffer-size sweep)
//	BenchmarkFigure4VirtualFaultSim   — Figures 4/5 (virtual fault sim)
//
// The micro-benchmarks below them quantify the substrate costs the
// paper's numbers decompose into (kernel throughput, gate evaluation,
// power simulation, detection tables, RMI round trips).
package gocad_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	gocad "repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/module"
	"repro/internal/netsim"
	"repro/internal/ppp"
	"repro/internal/security"
	"repro/internal/shard"
	"repro/internal/signal"
	"repro/internal/sim"
)

// BenchmarkTable1EstimatorAccuracy regenerates Table 1: calibrating and
// scoring the constant and linear-regression power models against the
// gate-level reference.
func BenchmarkTable1EstimatorAccuracy(b *testing.B) {
	cfg := core.Table1Config{Width: 8, Train: 50, Evaluate: 50, Seed: 7}
	for i := 0; i < b.N; i++ {
		rows, err := core.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2Scenarios regenerates the Table 2 grid, one
// sub-benchmark per row.
func BenchmarkTable2Scenarios(b *testing.B) {
	for _, cell := range core.Table2Grid() {
		name := fmt.Sprintf("%s-%s", cell.Scenario, cell.Profile.Name)
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Width = 8
			cfg.Patterns = 20
			cfg.Profile = cell.Profile
			for i := 0; i < b.N; i++ {
				res, err := core.Run(cell.Scenario, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Products == 0 {
					b.Fatal("no products")
				}
			}
		})
	}
}

// BenchmarkShardedSimulation runs one seeded generated design — roughly
// ten times the size of the paper's Figure 2 benchmark — through the
// shard engine at increasing shard counts. Results are bit-identical at
// every count (the shard determinism matrix proves that); this measures
// what partitioning buys and what barriers cost.
func BenchmarkShardedSimulation(b *testing.B) {
	spec := core.GenSpec{Inputs: 8, Layers: 5, LayerOps: 8, Width: 16, Patterns: 60}
	circuit, _ := core.GenerateCircuitRand(rand.New(rand.NewSource(1999)), spec)
	b.Logf("generated design: %d leaf modules", len(circuit.Leaves()))
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats := shard.Run(circuit, shard.Options{Shards: shards})
				if stats.Err != nil {
					b.Fatal(stats.Err)
				}
				if stats.Delivered == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}

// BenchmarkFigure3BufferSweep regenerates Figure 3's buffer-size points.
func BenchmarkFigure3BufferSweep(b *testing.B) {
	for _, pct := range []int{5, 25, 50, 100} {
		b.Run(fmt.Sprintf("buffer%d%%", pct), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Width = 8
			cfg.Patterns = 20
			for i := 0; i < b.N; i++ {
				pts, err := core.RunFigure3(cfg, []int{pct})
				if err != nil {
					b.Fatal(err)
				}
				if len(pts) != 1 {
					b.Fatal("bad sweep")
				}
			}
		})
	}
}

// BenchmarkFigure4VirtualFaultSim regenerates the Figure 4/5 worked
// example: two-phase virtual fault simulation of the half-adder design,
// at the legacy serial worker count and with the full worker pool.
func BenchmarkFigure4VirtualFaultSim(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers1", 1}, {"workersNumCPU", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.RunFigure4(bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.FaultList) == 0 {
					b.Fatal("empty fault list")
				}
			}
		})
	}
}

// BenchmarkVirtualVsSerialFaultSim is the protocol-cost ablation: virtual
// fault simulation (per-pattern tables + injections) versus flat serial
// simulation of the same flattened design, each at worker counts 1
// (legacy serial) and NumCPU. The two-IP design exercises the full
// fan-out: concurrent detection-table queries to both providers plus the
// per-row injection pool.
func BenchmarkVirtualVsSerialFaultSim(b *testing.B) {
	d, err := fault.RandomTwoIPDesign(60, 11)
	if err != nil {
		b.Fatal(err)
	}
	var patterns [][]signal.Bit
	for v := uint64(0); v < 16; v++ {
		p := make([]signal.Bit, 4)
		for i := range p {
			if v&(1<<uint(i)) != 0 {
				p[i] = signal.B1
			}
		}
		patterns = append(patterns, p)
	}
	workerCounts := []struct {
		name    string
		workers int
	}{{"workers1", 1}, {"workersNumCPU", 0}}
	for _, bc := range workerCounts {
		b.Run("virtual/"+bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := fault.RandomTwoIPDesign(60, 11)
				if err != nil {
					b.Fatal(err)
				}
				vs := d.NewVirtual()
				vs.Workers = bc.workers
				if _, err := vs.Run(patterns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, bc := range workerCounts {
		b.Run("serial-flat/"+bc.name, func(b *testing.B) {
			faults := fault.Collapse(d.Flat)
			for i := 0; i < b.N; i++ {
				if _, err := fault.SerialSimulateFaultsWorkers(d.Flat, faults, patterns, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulerThroughput measures raw kernel token delivery. The
// sub-benchmarks isolate the queue cost itself (post/pop of preallocated
// tokens through the inlined heap) and the pooled signal-token path,
// whose steady state allocates nothing per event.
func BenchmarkSchedulerThroughput(b *testing.B) {
	h := &nullHandler{}
	b.Run("run1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := sim.NewScheduler()
			for t := sim.Time(1); t <= 1000; t++ {
				s.Post(&sim.SelfToken{T: t, Dst: h})
			}
			if err := s.Run(nil, sim.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("post-pop", func(b *testing.B) {
		// One preallocated token per queue slot: the measured cost is the
		// heap push/pop and delivery machinery alone.
		const q = 1024
		toks := make([]*sim.SelfToken, q)
		for i := range toks {
			toks[i] = &sim.SelfToken{Dst: h}
		}
		s := sim.NewScheduler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += q {
			base := s.Now() + 1
			for j := range toks {
				toks[j].T = base + sim.Time(j)
				s.Post(toks[j])
			}
			if err := s.Run(nil, sim.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled-signal-tokens", func(b *testing.B) {
		s := sim.NewScheduler()
		// Pre-boxed value: modules hold signal.Value interfaces already,
		// so the kernel path proper adds no allocation per event.
		var v signal.Value = signal.BitValue{B: signal.B1}
		ctx := s.NewContext()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Post(sim.AcquireSignalToken(s.Now()+1, h, 0, v, "bench"))
			if err := s.Run(ctx, sim.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type nullHandler struct{}

func (*nullHandler) HandlerName() string                 { return "null" }
func (*nullHandler) HandleToken(*sim.Context, sim.Token) {}

// BenchmarkGateEval measures levelized netlist evaluation of the 16-bit
// array multiplier (the provider-side cost of one MR functional call).
func BenchmarkGateEval(b *testing.B) {
	nl := gate.ArrayMultiplier(16)
	ev, err := nl.NewEvaluator()
	if err != nil {
		b.Fatal(err)
	}
	in := nl.InputWord(0xDEAD_BEEF)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerStep measures one PPP power-simulation step (the
// provider-side cost of one buffered pattern).
func BenchmarkPowerStep(b *testing.B) {
	nl := gate.ArrayMultiplier(16)
	s, err := ppp.NewSimulator(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	a := nl.InputWord(0x1234_5678)
	c := nl.InputWord(0x8765_4321)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(a); err != nil {
			b.Fatal(err)
		}
		a, c = c, a
	}
}

// BenchmarkDetectionTable measures building one detection table for the
// 8-bit multiplier — the provider-side cost of one phase-two query.
func BenchmarkDetectionTable(b *testing.B) {
	nl := gate.ArrayMultiplier(8)
	lt, err := fault.NewLocalTestability(nl, fault.NetNames, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the input so the provider cache does not short-circuit.
		in := nl.InputWord(uint64(i))
		if _, err := lt.DetectionTable(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMIRoundTrip measures one remote call on the in-process
// transport without emulated delay (the marshalling floor of Table 2).
func BenchmarkRMIRoundTrip(b *testing.B) {
	prov := gocad.NewProvider("bench")
	if err := prov.Register(gocad.MultFastLowPower()); err != nil {
		b.Fatal(err)
	}
	conn, err := gocad.ConnectInProcess(prov, "bench-user", netsim.InProcess)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	inst, err := conn.Client.Bind("MultFastLowPower", 8, nil)
	if err != nil {
		b.Fatal(err)
	}
	nl := gate.ArrayMultiplier(8)
	in := nl.InputWord(0x3CA5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Eval(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMIPipeline measures pipelined transport throughput under an
// emulated 20ms-RTT WAN: `depth` concurrent callers issue power batches
// over one connection with MaxInFlight=depth. Depth 1 reproduces
// stop-and-wait (every call pays the full round trip serially); deeper
// pipelines overlap the emulated delay, so ns/op must fall by ≥2x at
// depth 8.
func BenchmarkRMIPipeline(b *testing.B) {
	for _, depth := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			prov := gocad.NewProvider("bench")
			if err := prov.Register(gocad.MultFastLowPower()); err != nil {
				b.Fatal(err)
			}
			profile := netsim.Profile{Name: "bench-wan", OneWay: 10 * time.Millisecond}
			conn, err := gocad.ConnectInProcess(prov, "bench-user", profile)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			conn.Client.RPC.MaxInFlight = depth
			inst, err := conn.Client.Bind("MultFastLowPower", 8, nil)
			if err != nil {
				b.Fatal(err)
			}
			batch := [][]signal.Bit{make([]signal.Bit, 16), make([]signal.Bit, 16)}
			b.ResetTimer()
			work := make(chan struct{})
			var wg sync.WaitGroup
			errCh := make(chan error, depth)
			for w := 0; w < depth; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						// SkipCompute isolates transport throughput from
						// the provider's power simulator.
						if _, err := inst.PowerBatch(batch, true); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				work <- struct{}{}
			}
			close(work)
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errCh:
				b.Fatal(err)
			default:
			}
		})
	}
}

// BenchmarkEstimationCacheRepeatedRuns quantifies the content-addressed
// estimation cache on the repeated-stimulus workload it targets (same
// seed, same design — the Table 2 grid re-running a cell): with a shared
// warm cache every batch is served locally. The hit-rate metric is the
// fraction of batch lookups that stayed off the wire.
func BenchmarkEstimationCacheRepeatedRuns(b *testing.B) {
	base := core.DefaultConfig()
	base.Width = 8
	base.Patterns = 20
	base.Profile = netsim.Profile{Name: "bench-wan", OneWay: 2 * time.Millisecond}
	b.Run("cache=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(core.EstimatorRemote, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache=shared", func(b *testing.B) {
		cfg := base
		cfg.Cache = core.NewEstimationCache()
		if _, err := core.Run(core.EstimatorRemote, cfg); err != nil { // warm the cache
			b.Fatal(err)
		}
		var hits, lookups int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Run(core.EstimatorRemote, cfg)
			if err != nil {
				b.Fatal(err)
			}
			hits += res.CacheHits
			lookups += res.CacheHits + res.CacheMisses
		}
		b.StopTimer()
		if lookups > 0 {
			b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
		}
	})
}

// BenchmarkFigure2Simulation measures the AL design end to end per
// pattern (the kernel + module-library cost under Table 2's AL row).
func BenchmarkFigure2Simulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := module.NewWordConnector("A", 16)
		ar := module.NewWordConnector("AR", 16)
		bb := module.NewWordConnector("B", 16)
		br := module.NewWordConnector("BR", 16)
		o := module.NewWordConnector("O", 32)
		ina := module.NewRandomPrimaryInput("INA", 16, 1, 100, 10, a)
		rega := module.NewRegister("REGA", 16, a, ar)
		inb := module.NewRandomPrimaryInput("INB", 16, 2, 100, 10, bb)
		regb := module.NewRegister("REGB", 16, bb, br)
		mult := module.NewMult("MULT", 16, ar, br, o)
		out := module.NewPrimaryOutput("OUT", 32, o)
		simu := module.NewSimulation(module.NewCircuit("fig2", ina, rega, inb, regb, mult, out))
		if st := simu.Start(nil); st.Err != nil {
			b.Fatal(st.Err)
		}
	}
}

// BenchmarkConcurrentSetups measures the kernel's concurrent-scheduler
// scaling (the paper's threads-based concurrent simulations).
func BenchmarkConcurrentSetups(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("setups%d", n), func(b *testing.B) {
			a := module.NewWordConnector("A", 8)
			o := module.NewWordConnector("O", 8)
			in := module.NewRandomPrimaryInput("IN", 8, 1, 200, 5, a)
			reg := module.NewRegister("REG", 8, a, o)
			out := module.NewPrimaryOutput("OUT", 8, o)
			simu := module.NewSimulation(module.NewCircuit("c", in, reg, out))
			for i := 0; i < b.N; i++ {
				setups := make([]*gocad.Setup, n)
				stats := simu.StartConcurrent(setups)
				for _, st := range stats {
					if st.Err != nil {
						b.Fatal(st.Err)
					}
				}
				out.ClearHistory()
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationFaultCollapsing quantifies what structural equivalence
// collapsing buys: the size of the target fault list and the serial
// simulation time with and without it.
func BenchmarkAblationFaultCollapsing(b *testing.B) {
	nl := gate.ArrayMultiplier(6)
	var patterns [][]signal.Bit
	for v := uint64(0); v < 64; v++ {
		patterns = append(patterns, nl.InputWord(v*2654435761%4096))
	}
	b.Run("collapsed", func(b *testing.B) {
		faults := fault.Collapse(nl)
		b.ReportMetric(float64(len(faults)), "faults")
		for i := 0; i < b.N; i++ {
			if _, err := fault.SerialSimulateFaults(nl, faults, patterns); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncollapsed", func(b *testing.B) {
		faults := fault.Enumerate(nl)
		b.ReportMetric(float64(len(faults)), "faults")
		for i := 0; i < b.N; i++ {
			if _, err := fault.SerialSimulateFaults(nl, faults, patterns); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMarshalPolicy measures the cost of the default-deny
// marshalling check on a realistic buffered-pattern payload.
func BenchmarkAblationMarshalPolicy(b *testing.B) {
	patterns := make([][]signal.Bit, 50)
	for i := range patterns {
		patterns[i] = make([]signal.Bit, 32)
	}
	p := security.MarshalPolicy{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.CheckOutbound(patterns); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGateModuleVsNetlistModule compares simulating a
// gate-level block as one NetlistModule (one event-driven component
// evaluating a levelized netlist) against discrete per-gate modules (one
// token per gate evaluation) — the granularity choice of the design
// model.
func BenchmarkAblationGateModuleVsNetlistModule(b *testing.B) {
	const width = 4
	mkPatterns := func() []signal.Value {
		var out []signal.Value
		for v := uint64(0); v < 32; v++ {
			out = append(out, signal.WordValue{W: signal.WordFromUint64(v*7%256, 2*width)})
		}
		return out
	}
	b.Run("netlist-module", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nl := gate.RippleAdder(width)
			w := module.NewWordConnector("w", 2*width)
			bits := make([]*module.Connector, 2*width)
			for j := range bits {
				bits[j] = module.NewBitConnector(fmt.Sprintf("b%d", j))
			}
			outBits := make([]*module.Connector, width+1)
			for j := range outBits {
				outBits[j] = module.NewBitConnector(fmt.Sprintf("o%d", j))
			}
			ow := module.NewWordConnector("ow", width+1)
			in := module.NewPatternInput("in", 2*width, mkPatterns(), 10, w)
			split := module.NewWordToBits("split", 2*width, w, bits)
			nm := module.NewNetlistModule("rca", nl, bits, outBits)
			join := module.NewBitsToWord("join", width+1, outBits, ow)
			po := module.NewPrimaryOutput("po", width+1, ow)
			s := module.NewSimulation(module.NewCircuit("c", in, split, nm, join, po))
			if st := s.Start(nil); st.Err != nil {
				b.Fatal(st.Err)
			}
		}
	})
	b.Run("per-gate-modules", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := module.NewWordConnector("w", 2*width)
			bits := make([]*module.Connector, 2*width)
			for j := range bits {
				bits[j] = module.NewBitConnector(fmt.Sprintf("b%d", j))
			}
			in := module.NewPatternInput("in", 2*width, mkPatterns(), 10, w)
			split := module.NewWordToBits("split", 2*width, w, bits)
			circuit := module.NewCircuit("c", in, split)
			// Build the ripple adder from discrete gate modules.
			newConn := func(name string) *module.Connector { return module.NewBitConnector(name) }
			outBits := make([]*module.Connector, width+1)
			var carry *module.Connector
			for k := 0; k < width; k++ {
				a, bc := bits[k], bits[width+k]
				sum := newConn(fmt.Sprintf("s%d", k))
				outBits[k] = sum
				if k == 0 {
					carry = newConn("c0")
					ha1, ha2 := newConn("ha_a1"), newConn("ha_a2")
					hb1, hb2 := newConn("ha_b1"), newConn("ha_b2")
					circuit.Add(
						module.NewFanout("ha_foa", 1, a, []*module.Connector{ha1, ha2}, nil),
						module.NewFanout("ha_fob", 1, bc, []*module.Connector{hb1, hb2}, nil),
						module.NewGateModule(fmt.Sprintf("x%d", k), gate.Xor, []*module.Connector{ha1, hb1}, sum),
						module.NewGateModule(fmt.Sprintf("a%d", k), gate.And, []*module.Connector{ha2, hb2}, carry),
					)
					continue
				}
				// Full adder: fan out a, b, cin to the two stages.
				a1, a2 := newConn(fmt.Sprintf("a1_%d", k)), newConn(fmt.Sprintf("a2_%d", k))
				b1, b2 := newConn(fmt.Sprintf("b1_%d", k)), newConn(fmt.Sprintf("b2_%d", k))
				c1, c2 := newConn(fmt.Sprintf("c1_%d", k)), newConn(fmt.Sprintf("c2_%d", k))
				ab, ab1, ab2 := newConn(fmt.Sprintf("ab%d", k)), newConn(fmt.Sprintf("ab1_%d", k)), newConn(fmt.Sprintf("ab2_%d", k))
				t1, t2 := newConn(fmt.Sprintf("t1_%d", k)), newConn(fmt.Sprintf("t2_%d", k))
				cout := newConn(fmt.Sprintf("c%d", k))
				circuit.Add(
					module.NewFanout(fmt.Sprintf("foa%d", k), 1, a, []*module.Connector{a1, a2}, nil),
					module.NewFanout(fmt.Sprintf("fob%d", k), 1, bc, []*module.Connector{b1, b2}, nil),
					module.NewFanout(fmt.Sprintf("foc%d", k), 1, carry, []*module.Connector{c1, c2}, nil),
					module.NewGateModule(fmt.Sprintf("xab%d", k), gate.Xor, []*module.Connector{a1, b1}, ab),
					module.NewFanout(fmt.Sprintf("foab%d", k), 1, ab, []*module.Connector{ab1, ab2}, nil),
					module.NewGateModule(fmt.Sprintf("xs%d", k), gate.Xor, []*module.Connector{ab1, c1}, sum),
					module.NewGateModule(fmt.Sprintf("ac%d", k), gate.And, []*module.Connector{ab2, c2}, t1),
					module.NewGateModule(fmt.Sprintf("aab%d", k), gate.And, []*module.Connector{a2, b2}, t2),
					module.NewGateModule(fmt.Sprintf("or%d", k), gate.Or, []*module.Connector{t1, t2}, cout),
				)
				carry = cout
			}
			outBits[width] = carry
			ow := module.NewWordConnector("ow", width+1)
			join := module.NewBitsToWord("join", width+1, outBits, ow)
			po := module.NewPrimaryOutput("po", width+1, ow)
			circuit.Add(join, po)
			s := module.NewSimulation(circuit)
			if st := s.Start(nil); st.Err != nil {
				b.Fatal(st.Err)
			}
		}
	})
}

// BenchmarkAblationBridgeIteration measures the cost of the bounded
// wired-AND resolution versus plain stuck-at evaluation.
func BenchmarkAblationBridgeIteration(b *testing.B) {
	nl := gate.ArrayMultiplier(8)
	in := nl.InputWord(0xBEEF)
	b.Run("stuck-at", func(b *testing.B) {
		ev, _ := nl.NewEvaluator()
		ev.SetFault(gate.Fault{Net: 20, Stuck: signal.B0})
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bridge", func(b *testing.B) {
		ev, _ := nl.NewEvaluator()
		ev.SetBridge(gate.Bridge{A: 20, B: 21})
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScanFaultSim measures full-scan sequential fault simulation of
// the counter workload.
func BenchmarkScanFaultSim(b *testing.B) {
	seq, err := gate.SequentialCounter(6)
	if err != nil {
		b.Fatal(err)
	}
	patterns := fault.RandomScanPatterns(seq, 32, 9)
	for i := 0; i < b.N; i++ {
		if _, err := fault.ScanSimulate(seq, patterns); err != nil {
			b.Fatal(err)
		}
	}
}
