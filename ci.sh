#!/bin/sh
# CI driver: the tier-1 gate (build + tests), the race pass, and a short
# fuzz smoke of the RMI wire codec. Usage: ./ci.sh [fuzztime]
set -eu

FUZZTIME="${1:-15s}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gocad-lint ./... (DESIGN.md §8 + §13 invariants, 8 analyzers)"
# -timings surfaces the shared package-load cost and each analyzer's
# wall time in the CI log. GOFLAGS is inherited by the noalloc
# analyzer's `go build -gcflags=-m`, matching `make bench` conditions
# (both default to empty; export BENCH_GOFLAGS-style overrides to both).
go run ./cmd/gocad-lint -timings ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> chaos sweep (seeded replica fault schedules under -race)"
go test -race -count=1 -run='Chaos|Hedged|Failover|Quorum' ./internal/core/ ./internal/netsim/ ./internal/fault/
go test -race -count=1 ./internal/replica/

echo "==> sharded-execution determinism matrix under -race"
go test -race -count=1 -run='Shard|Partition|Generate' ./internal/shard/ ./internal/core/

echo "==> fuzz smoke (${FUZZTIME} per target)"
go test -run='^$' -fuzz='^FuzzFrameRoundTrip$' -fuzztime="${FUZZTIME}" ./internal/rmi/
go test -run='^$' -fuzz='^FuzzDecode$' -fuzztime="${FUZZTIME}" ./internal/rmi/
go test -run='^$' -fuzz='^FuzzBinaryCodec$' -fuzztime="${FUZZTIME}" ./internal/rmi/
go test -run='^$' -fuzz='^FuzzBinaryDecode$' -fuzztime="${FUZZTIME}" ./internal/rmi/
go test -run='^$' -fuzz='^FuzzMuxResponses$' -fuzztime="${FUZZTIME}" ./internal/rmi/
go test -run='^$' -fuzz='^FuzzMuxFaultyConn$' -fuzztime="${FUZZTIME}" ./internal/rmi/
go test -run='^$' -fuzz='^FuzzPartitionCircuit$' -fuzztime="${FUZZTIME}" ./internal/shard/
go test -run='^$' -fuzz='^FuzzQueueOrdering$' -fuzztime="${FUZZTIME}" ./internal/sim/

echo "==> benchmark smoke"
go test -run='^$' -bench='SchedulerThroughput|VirtualVsSerialFaultSim|Figure4VirtualFaultSim' -benchmem -benchtime=100x .

echo "==> gateway load smoke (gocad-loadgen -selftest: 4x MaxSessions storm)"
go run ./cmd/gocad-loadgen -selftest

echo "==> benchdiff advisory (non-blocking)"
# Compare the two most recent benchmark snapshots, if present. The diff
# is advisory: benchmark machines are noisy, so a regression report asks
# for a human read, not a red build. Run `make bench` to cut a snapshot.
set -- $(ls -1 BENCH_*.json 2>/dev/null | sort | tail -2)
if [ "$#" -eq 2 ]; then
	go run ./cmd/benchdiff "$1" "$2" || echo "benchdiff: regressions reported above (non-blocking)"

	echo "==> kernel benchmark gate (blocking; SKIP_KERNEL_BENCH_GATE=1 to bypass)"
	# The event-kernel benchmarks (scheduler throughput, arena token
	# delivery) are single-threaded, allocation-free hot loops with low
	# run-to-run noise, so for them the benchdiff is a hard gate, not an
	# advisory. benchdiff has no name filter; grep the snapshot lines for
	# the kernel benchmarks instead (benchdiff skips non-matching lines).
	# Set SKIP_KERNEL_BENCH_GATE=1 to bypass on a known-noisy machine.
	if [ "${SKIP_KERNEL_BENCH_GATE:-0}" = "1" ]; then
		echo "kernel benchmark gate skipped (SKIP_KERNEL_BENCH_GATE=1)"
	else
		kold=$(mktemp) && knew=$(mktemp)
		trap 'rm -f "$kold" "$knew"' EXIT
		grep -E 'Benchmark(SchedulerThroughput|ArenaTokenDelivery)' "$1" > "$kold" || true
		grep -E 'Benchmark(SchedulerThroughput|ArenaTokenDelivery)' "$2" > "$knew" || true
		go run ./cmd/benchdiff "$kold" "$knew"
	fi
else
	echo "fewer than two BENCH_*.json snapshots; skipping benchdiff"
fi

echo "==> govulncheck advisory (non-blocking)"
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./... || echo "govulncheck: advisory findings above (non-blocking)"
else
	echo "govulncheck not installed; skipping advisory scan"
fi

echo "==> CI green"
