// Command benchdiff compares two benchmark snapshots produced by
// `make bench` (go test -json output in BENCH_<date>.json files) and
// exits non-zero when any benchmark regressed beyond the threshold on
// ns/op or allocs/op.
//
// Usage:
//
//	benchdiff [-threshold 0.20] OLD.json NEW.json
//
// Benchmarks present in only one snapshot are reported but never fail
// the diff — renames and new benchmarks are not regressions. ci.sh runs
// the full diff as a non-blocking advisory (benchmark machines are
// noisy; a human reads the report before believing it), then reruns it
// as a BLOCKING gate over just the low-noise event-kernel benchmarks
// (scheduler throughput, arena token delivery), pre-filtered with grep
// since benchdiff has no name filter of its own; parse skips lines that
// do not look like benchmark results, so filtered files are fine. Set
// SKIP_KERNEL_BENCH_GATE=1 in the CI environment to bypass the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of go test -json records benchdiff reads. Test
// keys the per-benchmark output reassembly: the test runner emits a
// result as SEPARATE Output events — the padded name without a newline,
// then the measurements — so fragments must be buffered until a newline
// completes the logical line.
type event struct {
	Action string
	Test   string
	Output string
}

// result is one benchmark's measured line.
type result struct {
	NsPerOp     float64
	AllocsPerOp float64
	hasAllocs   bool
}

// benchLine matches a benchmark result line inside an Output record:
//
//	BenchmarkName-8   1125   1060848 ns/op   214886 B/op   1720 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)

// parse reads one snapshot file into name → result. A result line does
// NOT arrive in one Output event: the runner flushes the padded
// benchmark name without a newline, then the measurements as a second
// event. Fragments are buffered per Test until a newline completes the
// logical line; buffering per Test (not globally) keeps reassembly
// correct on grep-filtered snapshots and parallel packages.
func parse(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]result{}
	partial := map[string]string{}
	scanLine := func(line string) {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			return
		}
		name := strings.TrimRight(m[1], " \t")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return
		}
		r := result{NsPerOp: ns}
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			r.AllocsPerOp, _ = strconv.ParseFloat(am[1], 64)
			r.hasAllocs = true
		}
		out[name] = r
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines (interrupted runs)
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Test] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			scanLine(buf[:nl])
			buf = buf[nl+1:]
		}
		partial[ev.Test] = buf
	}
	for _, rest := range partial {
		scanLine(rest) // final fragment of an interrupted run
	}
	return out, sc.Err()
}

// pct formats a ratio change as a signed percentage.
func pct(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func main() {
	threshold := flag.Float64("threshold", 0.20,
		"relative regression that fails the diff (0.20 = 20% worse)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold 0.20] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRes, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			fmt.Printf("%-60s only in %s\n", name, flag.Arg(0))
			continue
		}
		verdict := "ok"
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+*threshold) {
			verdict = "REGRESSION ns/op"
			regressions++
		} else if o.hasAllocs && n.hasAllocs && o.AllocsPerOp > 0 &&
			n.AllocsPerOp > o.AllocsPerOp*(1+*threshold) {
			verdict = "REGRESSION allocs/op"
			regressions++
		}
		fmt.Printf("%-60s ns/op %12.0f -> %12.0f (%8s)  allocs/op %8.0f -> %8.0f (%8s)  %s\n",
			name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, pct(o.AllocsPerOp, n.AllocsPerOp), verdict)
	}
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			fmt.Printf("%-60s only in %s\n", name, flag.Arg(1))
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions beyond threshold")
}
