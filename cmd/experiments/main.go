// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	experiments -table1    estimator accuracy/cost/speed comparison
//	experiments -table2    CPU and real time for AL/ER/MR × local/LAN/WAN
//	experiments -figure3   real and CPU time vs pattern buffer size
//	experiments -figure4   virtual fault simulation worked example
//	experiments -all       everything
//
// Scale flags (-width, -patterns, -buffer) default to the paper's
// parameters (16-bit multiplier, 100 random patterns, buffer 5).
// Transport knobs: -inflight bounds RMI pipelining (1 = stop-and-wait
// baseline) and -est-cache shares a content-addressed estimation cache
// across Table 2 rows and Figure 3 sweep points so repeat batches skip
// the wire; results are bit-identical either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/rmi"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "run the Table 1 estimator comparison")
		table2   = flag.Bool("table2", false, "run the Table 2 scenario grid")
		figure3  = flag.Bool("figure3", false, "run the Figure 3 buffer-size sweep")
		figure4  = flag.Bool("figure4", false, "run the Figure 4 fault-simulation example")
		all      = flag.Bool("all", false, "run every experiment")
		width    = flag.Int("width", 16, "multiplier operand width")
		patterns = flag.Int("patterns", 100, "number of random input patterns")
		buffer   = flag.Int("buffer", 5, "remote-estimation pattern buffer size")
		workers  = flag.Int("workers", 0, "worker pool size for experiment fan-out (0 = one per CPU, 1 = serial)")
		inflight = flag.Int("inflight", 0, "max pipelined RMI calls in flight (0 = default, 1 = stop-and-wait)")
		estcache = flag.Bool("est-cache", false, "share a content-addressed estimation cache across runs (quantifies repeat-batch savings)")
		shards   = flag.Int("shards", 1, "partition each design across N concurrent schedulers (bit-identical results at any N)")
		codecStr = flag.String("codec", "binary", "RMI wire codec (binary|gob); results are bit-identical under either")
	)
	flag.Parse()
	codec, err := rmi.ParseCodec(*codecStr)
	if err != nil {
		fatal(err)
	}
	if !(*table1 || *table2 || *figure3 || *figure4 || *all) {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*table1, *table2, *figure3, *figure4 = true, true, true, true
	}
	var cache *core.EstimationCache
	if *estcache {
		// One cache across every run: later rows and sweep points replay
		// the pattern histories of earlier ones, so the shared cache
		// shows the steady-state hit rate a long session would see.
		cache = core.NewEstimationCache()
	}
	if *table1 {
		runTable1(*width)
	}
	if *table2 {
		runTable2(*width, *patterns, *buffer, *workers, *inflight, *shards, cache, codec)
	}
	if *figure3 {
		runFigure3(*width, *patterns, *workers, *inflight, cache, codec)
	}
	if *figure4 {
		runFigure4(*workers)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func runTable1(width int) {
	cfg := core.DefaultTable1Config()
	cfg.Width = width
	rows, err := core.RunTable1(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Table 1 — power estimators for the %d-bit MULT (%d train / %d eval patterns)\n",
		cfg.Width, cfg.Train, cfg.Evaluate)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "estimator\tavg err %\trms err %\tcost/pattern (¢)\tCPU/pattern\tremote")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.2f\t%v\t%v\n",
			r.Estimator, r.AvgErrPct, r.RMSErrPct, r.CostPerPatternCents, r.CPUPerPattern, r.Remote)
	}
	w.Flush()
	fmt.Println()
}

func runTable2(width, patterns, buffer, workers, inflight, shards int, cache *core.EstimationCache, codec rmi.Codec) {
	cfg := core.DefaultConfig()
	cfg.Width = width
	cfg.Patterns = patterns
	cfg.BufferSize = buffer
	cfg.Workers = workers
	cfg.InFlight = inflight
	cfg.Shards = shards
	cfg.Cache = cache
	cfg.Codec = codec
	rows, err := core.RunTable2(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Table 2 — %d random patterns, buffer %d, %d-bit MULT", patterns, buffer, width)
	if shards > 1 {
		fmt.Printf(", %d shards", shards)
	}
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "design\thost\tCPU time\treal time\tRMI calls\tbytes\tfees (¢)")
	for _, r := range rows {
		host := r.Host
		if host == "none" {
			host = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%d\t%d\t%.1f\n",
			scenarioName(r), host, r.CPUTime.Round(10e3), r.RealTime.Round(10e3), r.Calls, r.Bytes, r.FeesCents)
	}
	w.Flush()
	printCache(cache)
	fmt.Println()
}

// printCache summarizes a shared estimation cache after an experiment.
func printCache(cache *core.EstimationCache) {
	if cache == nil {
		return
	}
	hits, misses := cache.Hits(), cache.Misses()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	fmt.Printf("estimation cache: %d hits / %d lookups (%.0f%% hit rate), %d request bytes saved\n",
		hits, hits+misses, 100*rate, cache.BytesSaved())
}

func scenarioName(r *core.Result) string {
	switch r.Scenario {
	case core.AllLocal:
		return "All local"
	case core.EstimatorRemote:
		return "Estimator remote"
	case core.MultiplierRemote:
		return "Multiplier remote"
	}
	return r.Scenario.String()
}

func runFigure3(width, patterns, workers, inflight int, cache *core.EstimationCache, codec rmi.Codec) {
	cfg := core.DefaultConfig()
	cfg.Width = width
	cfg.Patterns = patterns
	cfg.Workers = workers
	cfg.InFlight = inflight
	cfg.Cache = cache
	cfg.Codec = codec
	points, err := core.RunFigure3(cfg, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Figure 3 — times vs pattern buffer size (ER, WAN, PPP call disabled; %d patterns)\n", patterns)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "buffer %\tCPU time\treal time\tRMI calls")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%v\t%v\t%d\n", p.BufferPct, p.CPUTime.Round(10e3), p.RealTime.Round(10e3), p.Calls)
	}
	w.Flush()
	printCache(cache)
	fmt.Println()
}

func runFigure4(workers int) {
	rep, err := core.RunFigure4(workers)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Figure 4 — virtual fault simulation of the half-adder design with IP block IP1")
	sort.Strings(rep.FaultList)
	fmt.Printf("  IP1 symbolic fault list (%d faults): %s\n",
		len(rep.FaultList), strings.Join(rep.FaultList, ", "))
	fmt.Printf("  detection table for IIP = (1,0): fault-free output %s\n", rep.Table.FaultFree)
	for _, row := range rep.Table.Rows {
		fmt.Printf("    faulty output %s: {%s}\n", row.Output, strings.Join(row.Faults, ", "))
	}
	sort.Strings(rep.Detected1100)
	sort.Strings(rep.Detected1101)
	fmt.Printf("  pattern ABCD=1100 detects: %s\n", orNone(rep.Detected1100))
	fmt.Printf("  pattern ABCD=1101 detects: %s\n", orNone(rep.Detected1101))
	fmt.Printf("  coverage after both patterns: %.1f%%\n\n", 100*rep.CoverageAfter2)
}

func orNone(fs []string) string {
	if len(fs) == 0 {
		return "(none)"
	}
	return strings.Join(fs, ", ")
}
