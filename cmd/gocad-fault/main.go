// Command gocad-fault runs virtual fault simulation from the command
// line: it builds a design containing an IP component (the paper's
// Figure 4 circuit, or a randomized IP-based design), runs the two-phase
// protocol over random or exhaustive patterns, prints per-pattern
// detections and the coverage curve, and cross-checks the result against
// full-disclosure serial simulation of the flattened design.
//
//	gocad-fault -design fig4 -patterns exhaustive
//	gocad-fault -design random -seed 7 -gates 25 -count 40 -check
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/signal"
)

func main() {
	var (
		designKind = flag.String("design", "fig4", "design to simulate: fig4 | random")
		seed       = flag.Int64("seed", 1, "random-design and random-pattern seed")
		gates      = flag.Int("gates", 20, "IP component gate count (random design)")
		patterns   = flag.String("patterns", "exhaustive", "pattern source: exhaustive | random")
		count      = flag.Int("count", 32, "number of random patterns")
		check      = flag.Bool("check", false, "cross-check against the flattened full-disclosure reference")
		vcurve     = flag.Bool("curve", true, "print the cumulative coverage curve")
		workers    = flag.Int("workers", 0, "worker pool size for injection fan-out (0 = one per CPU, 1 = serial)")
		quorum     = flag.Int("quorum", 1, "testability replicas per IP host: each query is answered by majority vote over K equivalent services, divergent replicas reported")
	)
	flag.Parse()

	var (
		d   *fault.IPDesign
		err error
	)
	switch *designKind {
	case "fig4":
		d, err = fault.Figure4Design()
	case "random":
		d, err = fault.RandomIPDesign(*gates, *seed)
	default:
		fatal(fmt.Errorf("unknown design %q", *designKind))
	}
	if err != nil {
		fatal(err)
	}
	nIn := len(d.Inputs)

	var tests [][]signal.Bit
	switch *patterns {
	case "exhaustive":
		if nIn > 16 {
			fatal(fmt.Errorf("%d inputs too many for exhaustive patterns", nIn))
		}
		for v := uint64(0); v < 1<<uint(nIn); v++ {
			tests = append(tests, bitsOf(v, nIn))
		}
	case "random":
		r := rand.New(rand.NewSource(*seed))
		for i := 0; i < *count; i++ {
			tests = append(tests, bitsOf(r.Uint64(), nIn))
		}
	default:
		fatal(fmt.Errorf("unknown pattern source %q", *patterns))
	}

	if *quorum > 1 {
		// Build K-1 additional copies of the same design; each host's
		// service is replaced by a majority vote over the K equivalent
		// testability services.
		replicas := make([]*fault.IPDesign, *quorum-1)
		for i := range replicas {
			var rd *fault.IPDesign
			switch *designKind {
			case "fig4":
				rd, err = fault.Figure4Design()
			case "random":
				rd, err = fault.RandomIPDesign(*gates, *seed)
			}
			if err != nil {
				fatal(err)
			}
			replicas[i] = rd
		}
		for hi := range d.Hosts {
			svcs := []fault.TestabilityService{d.Hosts[hi].Service}
			for _, rd := range replicas {
				svcs = append(svcs, rd.Hosts[hi].Service)
			}
			q, err := fault.NewQuorumTestability(svcs...)
			if err != nil {
				fatal(err)
			}
			d.Hosts[hi].Service = q
		}
	}

	vs := d.NewVirtual()
	vs.Workers = *workers
	list, err := vs.BuildFaultList()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("design %q: %d primary inputs, %d IP hosts, %d symbolic faults\n",
		*designKind, nIn, len(d.Hosts), len(list))

	res, err := vs.Run(tests)
	if err != nil {
		fatal(err)
	}
	for i, fs := range res.PerPattern {
		if len(fs) == 0 {
			continue
		}
		sort.Strings(fs)
		fmt.Printf("  pattern %3d detects %s\n", i, strings.Join(fs, ", "))
	}
	fmt.Printf("coverage: %.1f%% (%d/%d) over %d patterns\n",
		100*res.Coverage(), len(res.Detected), res.Total, len(tests))
	fmt.Printf("protocol work: %d fault-free runs, %d table queries, %d injections\n",
		vs.Stats.FaultFreeRuns, vs.Stats.DetectionTableCalls, vs.Stats.InjectionRuns)
	if *quorum > 1 {
		fmt.Printf("quorum: %d replicas per host, %d divergent answers out-voted\n",
			*quorum, len(res.Divergences))
		for _, dv := range res.Divergences {
			fmt.Printf("  DIVERGED %s replica %d: %s\n", dv.Module, dv.Replica, dv.Detail)
		}
	}
	if *vcurve {
		fmt.Print("coverage curve:")
		for _, c := range res.CoverageCurve() {
			fmt.Printf(" %.2f", c)
		}
		fmt.Println()
	}

	if *check {
		flatFaults := make([]gate.Fault, 0, len(list))
		for _, q := range list {
			ff, err := d.FlatFaultFor(q)
			if err != nil {
				fatal(err)
			}
			flatFaults = append(flatFaults, ff)
		}
		ref, err := fault.SerialSimulateFaultsWorkers(d.Flat, flatFaults, tests, *workers)
		if err != nil {
			fatal(err)
		}
		mismatches := 0
		for _, q := range list {
			vp, vok := res.Detected[q]
			fp, fok := ref.Detected[q]
			if vok != fok || (vok && vp != fp) {
				mismatches++
				fmt.Printf("  MISMATCH %s: virtual (%v,%d) flat (%v,%d)\n", q, vok, vp, fok, fp)
			}
		}
		if mismatches == 0 {
			fmt.Printf("cross-check PASSED: virtual == full-disclosure flat reference (%d faults)\n", len(list))
		} else {
			fatal(fmt.Errorf("%d mismatches against the flat reference", mismatches))
		}
	}
}

func bitsOf(v uint64, n int) []signal.Bit {
	out := make([]signal.Bit, n)
	for i := 0; i < n; i++ {
		if v&(1<<uint(i)) != 0 {
			out[i] = signal.B1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocad-fault:", err)
	os.Exit(1)
}
