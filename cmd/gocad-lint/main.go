// Command gocad-lint runs the project's custom static-analysis suite —
// the machine-checked form of the invariants DESIGN.md §8 and §13
// document: simulation determinism, the pooled-token lifecycle, history
// release, no RMI under locks, no discarded remote errors, the
// downloaded-part capability sandbox, wire-codec symmetry, and the
// //gocad:noalloc hot-path allocation gate.
//
// Usage:
//
//	gocad-lint [packages]
//
// Packages default to ./... relative to the current directory. Every
// analyzer shares one `go list -export` load of the package graph. The
// command prints one line per finding (file:line:col: message [analyzer])
// and exits 1 if anything was found, 2 on operational failure. With
// -timings it also prints the load time and each analyzer's cumulative
// wall time to stderr, so CI surfaces where the lint budget goes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/registry"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	dir := flag.String("C", ".", "change to `dir` before loading packages")
	timings := flag.Bool("timings", false, "print package-load and per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gocad-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the gocad static-analysis suite (see DESIGN.md §8 and §13).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loadStart := time.Now()
	pkgs, err := lint.Load(*dir, patterns...)
	loadTime := time.Since(loadStart)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gocad-lint: %v\n", err)
		os.Exit(2)
	}
	diags, perAnalyzer, err := lint.RunAnalyzersTimed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gocad-lint: %v\n", err)
		os.Exit(2)
	}
	if *timings {
		fmt.Fprintf(os.Stderr, "gocad-lint: loaded %d packages in %v (one shared go list -export pass)\n",
			len(pkgs), loadTime.Round(time.Millisecond))
		for _, tm := range perAnalyzer {
			fmt.Fprintf(os.Stderr, "gocad-lint: %-16s %8v\n", tm.Analyzer, tm.Elapsed.Round(time.Millisecond))
		}
	}
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gocad-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
