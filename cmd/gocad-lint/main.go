// Command gocad-lint runs the project's custom static-analysis suite —
// the machine-checked form of the invariants DESIGN.md §8 documents:
// simulation determinism, the pooled-token lifecycle, history release,
// no RMI under locks, and no discarded remote errors.
//
// Usage:
//
//	gocad-lint [packages]
//
// Packages default to ./... relative to the current directory. The
// command prints one line per finding (file:line:col: message [analyzer])
// and exits 1 if anything was found, 2 on operational failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/registry"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	dir := flag.String("C", ".", "change to `dir` before loading packages")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gocad-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the gocad static-analysis suite (see DESIGN.md §8).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gocad-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gocad-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gocad-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
