// Command gocad-loadgen storms a gocad gateway with simulated IP users
// and reports what the gateway did about it: sessions per second,
// admission/rejection counts by typed reason, and call latency
// percentiles (p50/p99/p999). Every admitted user runs the same
// deterministic multiplier workload and digests its outputs, so the
// report can assert the load test's core invariant — overload must
// never corrupt admitted work, only refuse new work loudly.
//
//	gocad-server -addr 127.0.0.1:7999 -keyfile key.hex &
//	gocad-loadgen -addr 127.0.0.1:7999 -keyfile key.hex -users 64 -calls 10
//
// With -selftest the load generator brings up an in-process provider
// behind a deliberately small gateway (MaxSessions 6, accept queue 4),
// storms it at 4x capacity, and exits non-zero unless the gateway's
// contract holds end to end:
//
//   - every admitted session completes with a bit-identical workload
//     fingerprint;
//   - every rejection is typed (a gateway Reason) and arrives within
//     the handshake deadline — no dial hangs;
//   - the /metrics counters reconcile exactly with the client-side
//     admission, rejection, and call counts;
//   - the billing ledger's per-tenant sums match both each tenant's
//     meter and the fees the clients saw.
//
// CI runs `gocad-loadgen -selftest` as the gateway smoke test.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/iplib"
	"repro/internal/provider"
	"repro/internal/rmi"
	"repro/internal/security"
	"repro/internal/signal"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7999", "gateway address")
		keyfile  = flag.String("keyfile", "gocad-key.hex", "hex session key file")
		client   = flag.String("client", "designer", "tenant (client) name to authenticate as")
		users    = flag.Int("users", 32, "simulated concurrent IP users")
		calls    = flag.Int("calls", 5, "Eval calls per admitted session")
		width    = flag.Int("width", 8, "multiplier operand width")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-call (and handshake) client deadline")
		metrics  = flag.String("metrics", "", "gateway metrics URL to scrape into the report (e.g. http://127.0.0.1:9090/metrics)")
		selftest = flag.Bool("selftest", false, "run the self-contained gateway acceptance storm and exit 0/1")
	)
	flag.Parse()
	if *selftest {
		os.Exit(runSelftest(*calls, *width))
	}

	raw, err := os.ReadFile(*keyfile)
	if err != nil {
		fatal(err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		fatal(fmt.Errorf("bad key file: %w", err))
	}
	user := func(i int) (string, security.Key) { return *client, security.Key(key) }
	results, elapsed := storm(*addr, *users, *calls, *width, *timeout, user)
	report(os.Stdout, results, elapsed)
	if *metrics != "" {
		body, err := scrape(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gocad-loadgen: metrics scrape: %v\n", err)
		} else {
			fmt.Printf("gateway-side: admissions=%.0f rejections=%.0f calls=%.0f sessions_active=%.0f\n",
				metricSum(body, "gocad_gateway_admissions_total"),
				metricSum(body, "gocad_gateway_rejections_total"),
				metricSum(body, "gocad_gateway_calls_total"),
				metricSum(body, "gocad_gateway_sessions_active"))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocad-loadgen:", err)
	os.Exit(1)
}

// userResult is one simulated user's outcome.
type userResult struct {
	tenant      string
	admitted    bool
	reason      gateway.Reason // typed rejection reason, if any
	err         error
	dialDur     time.Duration
	calls       int64
	failed      int64
	fees        float64
	fingerprint string
	rtts        []time.Duration
}

// storm dials users concurrent sessions. Every user's dial outcome is
// awaited before any admitted session starts (and finishes) its
// workload, so admitted sessions are all held open while the rest of
// the storm hits admission control — the worst case the gateway
// advertises it can take.
func storm(addr string, users, calls, width int, timeout time.Duration, user func(i int) (string, security.Key)) ([]userResult, time.Duration) {
	results := make([]userResult, users)
	var dialed, done sync.WaitGroup
	dialed.Add(users)
	done.Add(users)
	start := time.Now()
	for i := 0; i < users; i++ {
		go func(i int) {
			defer done.Done()
			tenant, key := user(i)
			results[i] = runUser(addr, tenant, key, calls, width, timeout, &dialed)
		}(i)
	}
	done.Wait()
	return results, time.Since(start)
}

// runUser dials one session and, if admitted, runs the deterministic
// workload. dialed is decremented as soon as the dial resolves either
// way; admitted users then hold their session until the whole storm
// has dialed.
func runUser(addr, tenant string, key security.Key, calls, width int, timeout time.Duration, dialed *sync.WaitGroup) userResult {
	r := userResult{tenant: tenant}
	t0 := time.Now()
	rpc, err := rmi.Dial(addr, tenant, key)
	r.dialDur = time.Since(t0)
	if err != nil {
		dialed.Done()
		r.err = err
		r.reason = gateway.ReasonOf(err)
		return r
	}
	r.admitted = true
	dialed.Done()
	dialed.Wait() // hold the slot until every user has hit admission
	defer rpc.Close()
	rpc.Timeout = timeout
	rpc.Retry.MaxAttempts = 1 // one wire request per call: reconcilable counts
	var mu sync.Mutex
	rpc.OnAttempt = func(method string, rtt time.Duration, err error) {
		mu.Lock()
		r.rtts = append(r.rtts, rtt)
		if err == nil {
			r.calls++
		} else {
			r.failed++
		}
		mu.Unlock()
	}
	r.fingerprint, r.fees, r.err = workload(iplib.NewIPClient(rpc), calls, width)
	return r
}

// workload is the deterministic per-session job: bind the multiplier,
// evaluate a fixed pattern sequence, and digest every output bit. Two
// sessions running it must produce identical fingerprints — the
// admitted-work-is-never-corrupted check.
func workload(ip *iplib.IPClient, calls, width int) (fingerprint string, fees float64, err error) {
	inst, err := ip.Bind("MultFastLowPower", width, nil)
	if err != nil {
		return "", 0, err
	}
	h := sha256.New()
	mask := uint64(1)<<width - 1
	for i := 0; i < calls; i++ {
		a := uint64(i*7+3) & mask
		b := uint64(i*5+11) & mask
		in := make([]signal.Bit, 2*width)
		for j := 0; j < width; j++ {
			if a>>j&1 == 1 {
				in[j] = signal.B1
			}
			if b>>j&1 == 1 {
				in[width+j] = signal.B1
			}
		}
		out, err := inst.Eval(in)
		if err != nil {
			return "", 0, err
		}
		var v uint64
		for j, bit := range out {
			h.Write([]byte{byte(bit)})
			if on, known := bit.Bool(); known && on {
				v |= 1 << uint(j)
			}
		}
		if v != a*b {
			return "", 0, fmt.Errorf("eval %d*%d returned %d", a, b, v)
		}
	}
	fees, err = ip.Fees()
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), fees, nil
}

// report prints the human-readable storm summary.
func report(w io.Writer, results []userResult, elapsed time.Duration) {
	var admitted, rejected, untyped int
	var calls, failed int64
	var rtts []time.Duration
	reasons := map[gateway.Reason]int{}
	prints := map[string]int{}
	for _, r := range results {
		if r.admitted {
			admitted++
			calls += r.calls
			failed += r.failed
			rtts = append(rtts, r.rtts...)
			if r.fingerprint != "" {
				prints[r.fingerprint]++
			}
		} else {
			rejected++
			if r.reason == gateway.ReasonNone {
				untyped++
			} else {
				reasons[r.reason]++
			}
		}
	}
	rate := float64(admitted) / elapsed.Seconds()
	fmt.Fprintf(w, "gocad-loadgen: %d users -> %d admitted, %d rejected in %v (%.1f sessions/sec)\n",
		len(results), admitted, rejected, elapsed.Round(time.Millisecond), rate)
	if rejected > 0 {
		var keys []string
		for r := range reasons {
			keys = append(keys, string(r))
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "  rejections:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, reasons[gateway.Reason(k)])
		}
		if untyped > 0 {
			fmt.Fprintf(w, " UNTYPED=%d", untyped)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  calls: %d ok, %d failed; rtt p50=%v p99=%v p999=%v\n",
		calls, failed, percentile(rtts, 0.50), percentile(rtts, 0.99), percentile(rtts, 0.999))
	switch len(prints) {
	case 0:
		fmt.Fprintln(w, "  fingerprints: none (no admitted session completed)")
	case 1:
		for p := range prints {
			fmt.Fprintf(w, "  fingerprint: %s (identical across all %d admitted sessions)\n", p[:16], admitted)
		}
	default:
		fmt.Fprintf(w, "  fingerprints: DIVERGED (%d distinct values)\n", len(prints))
	}
}

// percentile returns the q-th latency percentile (nearest-rank).
func percentile(rtts []time.Duration, q float64) time.Duration {
	if len(rtts) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), rtts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i].Round(time.Microsecond)
}

// scrape fetches a metrics endpoint body.
func scrape(url string) (string, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	return string(body), nil
}

// metricSum sums every sample of one metric family in a Prometheus
// text body (all label sets).
func metricSum(body, name string) float64 {
	var sum float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
			continue // longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err == nil {
			sum += v
		}
	}
	return sum
}

// metricValue returns one labeled sample's value, e.g.
// metricValue(body, `gocad_gateway_tenant_fee_cents_total{tenant="a"}`).
func metricValue(body, sample string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			fields := strings.Fields(line)
			v, _ := strconv.ParseFloat(fields[len(fields)-1], 64)
			return v
		}
	}
	return math.NaN()
}

// runSelftest is the self-contained acceptance storm: an in-process
// provider behind a small gateway, stormed at 4x MaxSessions.
func runSelftest(calls, width int) int {
	const (
		maxSessions = 6
		acceptQueue = 4
		tenantConns = 4
		userCount   = 4 * maxSessions
		handshake   = 2 * time.Second
	)
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "gocad-loadgen selftest: FAIL: "+format+"\n", args...)
		return 1
	}

	p := provider.New("loadgen-provider")
	if err := p.Register(provider.MultFastLowPower()); err != nil {
		fatal(err)
	}
	dir, err := os.MkdirTemp("", "gocad-loadgen")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	ledgerPath := filepath.Join(dir, "ledger.tsv")
	g, err := gateway.New(p.Server, gateway.Config{
		MaxSessions:       maxSessions,
		MaxConnsPerTenant: tenantConns,
		AcceptQueue:       acceptQueue,
		HandshakeTimeout:  handshake,
		LedgerPath:        ledgerPath,
	})
	if err != nil {
		fatal(err)
	}
	tenants := []string{"alpha", "beta", "gamma"}
	keys := map[string]security.Key{}
	for _, name := range tenants {
		key, err := security.NewKey()
		if err != nil {
			fatal(err)
		}
		keys[name] = key
		if err := g.AddTenant(gateway.TenantSpec{Name: name, Key: hex.EncodeToString(key)}); err != nil {
			fatal(err)
		}
	}
	addr, err := g.Listen("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	maddr, err := g.ServeMetrics("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	metricsURL := "http://" + maddr + "/metrics"

	user := func(i int) (string, security.Key) {
		name := tenants[i%len(tenants)]
		return name, keys[name]
	}
	results, elapsed := storm(addr, userCount, calls, width, 10*time.Second, user)
	report(os.Stdout, results, elapsed)

	// 1. Admitted work is never corrupted: one fingerprint, no errors.
	var admitted, rejected int
	var clientCalls int64
	prints := map[string]bool{}
	feesByTenant := map[string]float64{}
	for i, r := range results {
		if !r.admitted {
			rejected++
			if r.reason == gateway.ReasonNone {
				return fail("user %d rejection is untyped: %v", i, r.err)
			}
			if r.dialDur > handshake+5*time.Second {
				return fail("user %d rejection took %v (handshake deadline %v)", i, r.dialDur, handshake)
			}
			continue
		}
		admitted++
		clientCalls += r.calls + r.failed
		if r.err != nil {
			return fail("admitted user %d workload: %v", i, r.err)
		}
		prints[r.fingerprint] = true
		feesByTenant[r.tenant] += r.fees
	}
	if admitted == 0 || admitted > maxSessions {
		return fail("%d sessions admitted (MaxSessions %d)", admitted, maxSessions)
	}
	if len(prints) != 1 {
		return fail("admitted fingerprints diverged: %d distinct values", len(prints))
	}

	// 2. Metrics reconcile exactly with the client-side counts. Session
	// close is asynchronous, so poll the gauge down to zero first.
	var body string
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, err = scrape(metricsURL)
		if err != nil {
			return fail("metrics scrape: %v", err)
		}
		if metricSum(body, "gocad_gateway_sessions_active") == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fail("sessions_active never drained to 0")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := metricSum(body, "gocad_gateway_admissions_total"); got != float64(admitted) {
		return fail("admissions_total=%g, clients saw %d", got, admitted)
	}
	if got := metricSum(body, "gocad_gateway_rejections_total"); got != float64(rejected) {
		return fail("rejections_total=%g, clients saw %d", got, rejected)
	}
	if got := metricSum(body, "gocad_gateway_calls_total"); got != float64(clientCalls) {
		return fail("calls_total=%g, clients sent %d", got, clientCalls)
	}

	// 3. The billing trail agrees everywhere: persisted ledger sums ==
	// in-memory meters == exported metrics == fees the clients saw.
	entries, err := gateway.ReadLedger(ledgerPath)
	if err != nil {
		return fail("read ledger: %v", err)
	}
	ledgerSums := map[string]float64{}
	for _, e := range entries {
		ledgerSums[e.Tenant] += e.Cents
	}
	for _, name := range tenants {
		meter, ok := g.MeterFor(name)
		if !ok {
			return fail("tenant %q has no meter", name)
		}
		sum := ledgerSums[name]
		if math.Abs(sum-meter.FeeCents) > 1e-6 {
			return fail("tenant %q: ledger %.6f¢ != meter %.6f¢", name, sum, meter.FeeCents)
		}
		if math.Abs(sum-feesByTenant[name]) > 1e-6 {
			return fail("tenant %q: ledger %.6f¢ != client-visible fees %.6f¢", name, sum, feesByTenant[name])
		}
		exported := metricValue(body, fmt.Sprintf("gocad_gateway_tenant_fee_cents_total{tenant=%q}", name))
		if math.Abs(sum-exported) > 1e-6 {
			return fail("tenant %q: ledger %.6f¢ != exported %.6f¢", name, sum, exported)
		}
	}

	if err := g.Drain(5 * time.Second); err != nil {
		return fail("drain: %v", err)
	}
	fmt.Printf("selftest PASS: %d admitted / %d rejected, %d ledger entries reconciled across %d tenants\n",
		admitted, rejected, len(entries), len(tenants))
	return 0
}
