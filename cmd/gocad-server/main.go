// Command gocad-server runs an IP provider's JavaCAD server: it hosts
// the standard component catalogue (the MultFastLowPower multiplier and
// the IP1 half-adder macro), generates a shared client key, and serves
// authenticated sessions over TCP.
//
//	gocad-server -addr 127.0.0.1:7999 -client designer -keyfile key.hex
//
// The hex-encoded session key is written to -keyfile; hand it to
// gocad-sim (or any gocad client) to connect.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/provider"
	"repro/internal/rmi"
	"repro/internal/security"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7999", "listen address")
		client  = flag.String("client", "designer", "authorized client name")
		keyfile = flag.String("keyfile", "gocad-key.hex", "file receiving the hex session key")
		name    = flag.String("name", "provider1", "provider display name")
		idle    = flag.Duration("idle-timeout", 0, "drop sessions idle longer than this (0 disables)")
		workers = flag.Int("session-workers", provider.DefaultSessionWorkers,
			"concurrent request dispatch per session (1 = serial, matches pre-pipelining behavior)")
		drain = flag.Duration("drain-timeout", 5*time.Second,
			"on SIGTERM/interrupt, let in-flight requests finish for up to this long before force-closing")
		codecs = flag.String("codec", "auto", "accepted wire codecs (auto|binary|gob); auto detects per connection")
	)
	flag.Parse()
	policy, err := rmi.ParseCodecPolicy(*codecs)
	if err != nil {
		fatal(err)
	}

	p := provider.New(*name)
	p.Server.IdleTimeout = *idle
	p.Server.SessionWorkers = *workers
	p.Server.Codecs = policy
	if err := p.Register(provider.MultFastLowPower()); err != nil {
		fatal(err)
	}
	if err := p.Register(provider.HalfAdderIP1()); err != nil {
		fatal(err)
	}
	key, err := security.NewKey()
	if err != nil {
		fatal(err)
	}
	p.Authorize(*client, key)
	if err := os.WriteFile(*keyfile, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		fatal(err)
	}
	bound, err := p.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gocad-server %q listening on %s\n", *name, bound)
	fmt.Printf("  authorized client: %s (key in %s)\n", *client, *keyfile)
	fmt.Println("  catalogue: MultFastLowPower, IP1-HalfAdder")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Printf("draining (timeout %v)\n", *drain)
	if err := p.Server.Drain(*drain); err != nil {
		fmt.Fprintln(os.Stderr, "gocad-server: drain:", err)
	}
	if err := p.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gocad-server: shutdown:", err)
	}
	fmt.Println("drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocad-server:", err)
	os.Exit(1)
}
