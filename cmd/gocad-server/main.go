// Command gocad-server runs an IP provider's JavaCAD server: it hosts
// the standard component catalogue (the MultFastLowPower multiplier and
// the IP1 half-adder macro), generates a shared client key, and serves
// authenticated sessions over TCP behind the multi-tenant gateway —
// admission control, per-tenant quotas and fee metering, slow-client
// protection, and a metrics/health sidecar.
//
//	gocad-server -addr 127.0.0.1:7999 -client designer -keyfile key.hex
//
// The hex-encoded session key is written to -keyfile; hand it to
// gocad-sim (or any gocad client) to connect. For multi-tenant
// deployments, -tenant-config names a JSON file of tenant specs (name,
// key, per-tenant connection/rate/fee limits) instead:
//
//	gocad-server -tenant-config tenants.json -max-sessions 256 \
//	    -metrics-addr 127.0.0.1:9090 -ledger fees.tsv
//
// With -metrics-addr set, /healthz, /metrics (Prometheus text), and
// /debug/pprof are served on that address.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/provider"
	"repro/internal/rmi"
	"repro/internal/security"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7999", "listen address")
		client  = flag.String("client", "designer", "authorized client name (ignored with -tenant-config)")
		keyfile = flag.String("keyfile", "gocad-key.hex", "file receiving the hex session key (ignored with -tenant-config)")
		name    = flag.String("name", "provider1", "provider display name")
		idle    = flag.Duration("idle-timeout", gateway.DefaultIdleTimeout,
			"drop sessions idle longer than this (negative disables)")
		workers = flag.Int("session-workers", provider.DefaultSessionWorkers,
			"concurrent request dispatch per session (1 = serial, matches pre-pipelining behavior)")
		drain = flag.Duration("drain-timeout", 5*time.Second,
			"on SIGTERM/interrupt, let in-flight requests finish for up to this long before force-closing")
		codecs      = flag.String("codec", "auto", "accepted wire codecs (auto|binary|gob); auto detects per connection")
		maxSessions = flag.Int("max-sessions", gateway.DefaultMaxSessions,
			"admission control: max concurrent sessions across all tenants")
		tenantConns = flag.Int("max-conns-per-tenant", gateway.DefaultMaxConnsPerTenant,
			"admission control: max concurrent sessions per tenant (tenant specs may override)")
		acceptQueue = flag.Int("accept-queue", gateway.DefaultAcceptQueue,
			"admission control: connections allowed beyond -max-sessions before fast-fail rejection")
		handshakeTO = flag.Duration("handshake-timeout", gateway.DefaultHandshakeTimeout,
			"slow-client protection: deadline for a connection's pre-session phase (negative disables)")
		writeTO = flag.Duration("write-timeout", gateway.DefaultWriteTimeout,
			"slow-client protection: per-response-frame write deadline (negative disables)")
		tenantCfg = flag.String("tenant-config", "",
			"JSON tenant config ({\"tenants\":[{name,key,maxConns,callsPerSec,bytesPerSec,feeCeilingCents}]})")
		metricsAddr = flag.String("metrics-addr", "",
			"serve /healthz, /metrics, /debug/pprof on this address (empty disables)")
		ledgerPath = flag.String("ledger", "", "append-only billing ledger file (empty keeps fees in memory)")
	)
	flag.Parse()
	policy, err := rmi.ParseCodecPolicy(*codecs)
	if err != nil {
		fatal(err)
	}

	p := provider.New(*name)
	p.Server.SessionWorkers = *workers
	p.Server.Codecs = policy
	if err := p.Register(provider.MultFastLowPower()); err != nil {
		fatal(err)
	}
	if err := p.Register(provider.HalfAdderIP1()); err != nil {
		fatal(err)
	}

	g, err := gateway.New(p.Server, gateway.Config{
		MaxSessions:       *maxSessions,
		MaxConnsPerTenant: *tenantConns,
		AcceptQueue:       *acceptQueue,
		HandshakeTimeout:  *handshakeTO,
		IdleTimeout:       *idle,
		WriteTimeout:      *writeTO,
		LedgerPath:        *ledgerPath,
		Logf:              log.Printf,
	})
	if err != nil {
		fatal(err)
	}

	if *tenantCfg != "" {
		tenants, err := gateway.LoadTenantConfig(*tenantCfg)
		if err != nil {
			fatal(err)
		}
		for _, t := range tenants {
			if err := g.AddTenant(t); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("  tenants: %d loaded from %s\n", len(tenants), *tenantCfg)
	} else {
		key, err := security.NewKey()
		if err != nil {
			fatal(err)
		}
		if err := g.AddTenant(gateway.TenantSpec{Name: *client, Key: hex.EncodeToString(key)}); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*keyfile, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
			fatal(err)
		}
		fmt.Printf("  authorized client: %s (key in %s)\n", *client, *keyfile)
	}

	bound, err := g.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gocad-server %q listening on %s\n", *name, bound)
	fmt.Printf("  admission: max %d sessions, %d/tenant, accept queue %d\n",
		*maxSessions, *tenantConns, *acceptQueue)
	fmt.Println("  catalogue: MultFastLowPower, IP1-HalfAdder")
	if *metricsAddr != "" {
		maddr, err := g.ServeMetrics(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  metrics: http://%s/metrics (healthz, pprof)\n", maddr)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Printf("draining (timeout %v)\n", *drain)
	if err := g.Drain(*drain); err != nil {
		fmt.Fprintln(os.Stderr, "gocad-server: drain:", err)
	}
	if err := p.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gocad-server: shutdown:", err)
	}
	fmt.Println("drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocad-server:", err)
	os.Exit(1)
}
