// Command gocad-sim is the IP user's side of a live gocad deployment: it
// connects to a running gocad-server, browses the catalogue, binds the
// remote multiplier, and runs the paper's Figure 2 design — proprietary
// registers around a virtual multiplier — with remote power estimation,
// printing the estimates and the session bill.
//
//	gocad-server -keyfile key.hex &
//	gocad-sim -addr 127.0.0.1:7999 -keyfile key.hex -patterns 100
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/estim"
	"repro/internal/iplib"
	"repro/internal/module"
	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/security"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7999", "gocad-server address")
		keyfile  = flag.String("keyfile", "gocad-key.hex", "hex session key file")
		client   = flag.String("client", "designer", "client name")
		width    = flag.Int("width", 16, "multiplier operand width")
		patterns = flag.Int("patterns", 100, "number of random patterns")
		buffer   = flag.Int("buffer", 5, "pattern buffer size")
		profile  = flag.String("net", "none", "emulated network on top of the real link (none|local|LAN|WAN)")
		remote   = flag.Bool("mr", false, "run the multiplier fully remote (MR) instead of ER")
	)
	flag.Parse()

	raw, err := os.ReadFile(*keyfile)
	if err != nil {
		fatal(err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		fatal(fmt.Errorf("bad key file: %w", err))
	}
	rpc, err := rmi.Dial(*addr, *client, security.Key(key))
	if err != nil {
		fatal(err)
	}
	defer rpc.Close()
	meter := &netsim.Meter{}
	rpc.Profile = netsim.ProfileByName(*profile)
	rpc.Meter = meter
	ip := iplib.NewIPClient(rpc)

	specs, err := ip.Catalogue()
	if err != nil {
		fatal(err)
	}
	fmt.Println("catalogue:")
	for _, s := range specs {
		fmt.Printf("  %-20s %s (widths %d..%d, license %.0f¢)\n",
			s.Name, s.Description, s.MinWidth, s.MaxWidth, s.LicenseCents)
	}

	inst, err := ip.Bind("MultFastLowPower", *width, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bound %v; offered estimators:\n", inst)
	var offer iplib.EstimatorOffer
	for _, e := range inst.Enabled() {
		fmt.Printf("  %-24s err %.0f%% cost %.2f¢/call remote=%v\n", e.Name, e.ErrPct, e.CostCents, e.Remote)
		if e.Remote && e.Parameter() == estim.ParamAvgPower {
			offer = e
		}
	}

	// Figure 2 design around the virtual multiplier.
	a := module.NewWordConnector("A", *width)
	ar := module.NewWordConnector("AR", *width)
	b := module.NewWordConnector("B", *width)
	br := module.NewWordConnector("BR", *width)
	o := module.NewWordConnector("O", 2**width)
	ina := module.NewRandomPrimaryInput("INA", *width, 1, *patterns, 10, a)
	rega := module.NewRegister("REGA", *width, a, ar)
	inb := module.NewRandomPrimaryInput("INB", *width, 2, *patterns, 10, b)
	regb := module.NewRegister("REGB", *width, b, br)
	out := module.NewPrimaryOutput("OUT", 2**width, o)

	est := core.NewRemotePowerEstimator(inst, offer, *buffer, true)
	var mult module.Module
	if *remote {
		rm, err := core.NewRemoteMult("MULT", *width, ar, br, o, inst)
		if err != nil {
			fatal(err)
		}
		rm.FullyRemote = true
		rm.AddEstimator(est)
		mult = rm
	} else {
		m := module.NewMult("MULT", *width, ar, br, o)
		m.AddEstimator(est)
		mult = m
	}

	circuit := module.NewCircuit("Example", ina, rega, inb, regb, mult, out)
	simu := module.NewSimulation(circuit)
	setup := estim.NewSetup("run")
	setup.Set(estim.ParamAvgPower, estim.Criteria{Prefer: estim.PreferAccuracy})

	start := time.Now()
	stats := simu.Start(setup)
	if stats.Err != nil {
		fatal(stats.Err)
	}
	if err := est.Close(); err != nil {
		fatal(err)
	}
	wall := time.Since(start)
	cpu, real := meter.Split(wall)

	rep := est.Report()
	fees, err := ip.Fees()
	if err != nil {
		fatal(err)
	}
	mode := "ER"
	if *remote {
		mode = "MR"
	}
	fmt.Printf("\nsimulated %d patterns (%s): %d products observed\n",
		*patterns, mode, len(out.History(stats.Scheduler)))
	fmt.Printf("  remote power: %d samples, avg %.1f µW, peak %.1f µW\n",
		len(rep.Samples), rep.AvgPower, rep.PeakPower)
	fmt.Printf("  CPU time %v, real time %v (blocked on network %v, %d calls, %d bytes)\n",
		cpu.Round(time.Microsecond), real.Round(time.Microsecond),
		meter.Blocked().Round(time.Microsecond), meter.Calls(), meter.Bytes())
	fmt.Printf("  session bill: %.1f¢\n", fees)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocad-sim:", err)
	os.Exit(1)
}
