// Command gocad-sim is the IP user's side of a live gocad deployment: it
// connects to a running gocad-server, browses the catalogue, binds the
// remote multiplier, and runs the paper's Figure 2 design — proprietary
// registers around a virtual multiplier — with remote power estimation,
// printing the estimates and the session bill.
//
//	gocad-server -keyfile key.hex &
//	gocad-sim -addr 127.0.0.1:7999 -keyfile key.hex -patterns 100
//
// With -local the same design runs against an in-process provider over a
// pipe (no server needed) — the reference a distributed run is compared
// against. The resilience flags (-timeout, -retries, -recover) arm the
// transport against connection loss: calls are retried with backoff, the
// session is re-established and replayed after a reconnect, and if the
// provider stays dead the run completes with degraded estimates.
//
// The performance knobs: -inflight bounds how many RMI calls pipeline on
// the one connection (1 reproduces the stop-and-wait wire schedule, 0
// picks the transport default), and -est-cache short-circuits repeated
// estimation batches client-side with a content-addressed cache, skipping
// the round trip entirely. Neither changes any estimate value.
//
// The replication knobs (both -local only): -replicas N runs the design
// against N equivalent in-process providers behind health-gated circuit
// breakers — a connection loss fails over to the next healthy replica
// with the session journal replayed there — and -hedge-after D re-issues
// a batch still unanswered after D to a second replica, first answer
// wins. Replica estimators are deterministic, so neither changes any
// estimate value either.
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/estim"
	"repro/internal/iplib"
	"repro/internal/module"
	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/replica"
	"repro/internal/rmi"
	"repro/internal/security"
	"repro/internal/shard"
	"repro/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7999", "gocad-server address")
		keyfile  = flag.String("keyfile", "gocad-key.hex", "hex session key file")
		client   = flag.String("client", "designer", "client name")
		width    = flag.Int("width", 16, "multiplier operand width")
		patterns = flag.Int("patterns", 100, "number of random patterns")
		buffer   = flag.Int("buffer", 5, "pattern buffer size")
		profile  = flag.String("net", "none", "emulated network on top of the real link (none|local|LAN|WAN)")
		remote   = flag.Bool("mr", false, "run the multiplier fully remote (MR) instead of ER")
		local    = flag.Bool("local", false, "use an in-process provider instead of a server (reference run)")
		blocking = flag.Bool("blocking", false, "block on each estimation batch (deterministic sample order)")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-call deadline (0 disables)")
		retries  = flag.Int("retries", 4, "max attempts per idempotent call (1 disables retry)")
		recover_ = flag.Bool("recover", true, "replay the session after an automatic reconnect")
		inflight = flag.Int("inflight", 0, "max pipelined RMI calls in flight (0 = default, 1 = stop-and-wait)")
		estcache = flag.Bool("est-cache", false, "short-circuit repeated estimation batches with a content-addressed cache")
		replicas = flag.Int("replicas", 1, "equivalent in-process provider replicas behind health-gated failover (requires -local)")
		hedge    = flag.Duration("hedge-after", 0, "re-issue a still-unanswered estimation batch to a second replica after this long (0 disables; requires -local -replicas ≥ 2)")
		shards   = flag.Int("shards", 1, "partition the design across N concurrent schedulers (bit-identical results at any N)")
		shardWin = flag.Int("shard-window", 0, "conservative synchronization window for sharded runs (0 = default)")
		codecStr = flag.String("codec", "binary", "RMI wire codec (binary|gob); servers auto-detect, results are identical")
	)
	flag.Parse()
	codec, err := rmi.ParseCodec(*codecStr)
	if err != nil {
		fatal(err)
	}
	if *replicas > 1 && !*local {
		fatal(errors.New("-replicas needs -local: a live deployment has one server address per process"))
	}
	if *hedge > 0 && (*replicas < 2 || !*local) {
		fatal(errors.New("-hedge-after needs -local and -replicas ≥ 2 (the hedge runs on a second replica)"))
	}

	retry := rmi.DefaultRetry
	retry.MaxAttempts = *retries
	netProfile := netsim.ProfileByName(*profile)

	var (
		ip        *iplib.IPClient
		meter     *netsim.Meter
		rset      *replica.Set
		hedgeProv *provider.Provider
	)
	if *local {
		if *replicas > 1 {
			ps := make([]*provider.Provider, *replicas)
			dials := make([]func() (net.Conn, error), *replicas)
			for i := range ps {
				p := provider.New(fmt.Sprintf("provider%d", i))
				if err := p.Register(provider.MultFastLowPower()); err != nil {
					fatal(err)
				}
				ps[i] = p
				dials[i] = core.PipeDialer(p)
			}
			conn, set, err := core.ConnectReplicated(ps, *client, netProfile, dials, replica.BreakerConfig{}, nil, core.WithCodec(codec))
			if err != nil {
				fatal(err)
			}
			defer conn.Close()
			conn.Harden(core.Resilience{Timeout: *timeout, Retry: retry, Recover: *recover_})
			conn.Client.RPC.MaxInFlight = *inflight
			ip, meter, rset = conn.Client, conn.Meter, set
			hedgeProv = ps[len(ps)-1]
		} else {
			p := provider.New("provider1")
			if err := p.Register(provider.MultFastLowPower()); err != nil {
				fatal(err)
			}
			conn, err := core.ConnectInProcess(p, *client, netProfile, core.WithCodec(codec))
			if err != nil {
				fatal(err)
			}
			defer conn.Close()
			conn.Harden(core.Resilience{Timeout: *timeout, Retry: retry, Recover: *recover_})
			conn.Client.RPC.MaxInFlight = *inflight
			ip, meter = conn.Client, conn.Meter
		}
	} else {
		raw, err := os.ReadFile(*keyfile)
		if err != nil {
			fatal(err)
		}
		key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			fatal(fmt.Errorf("bad key file: %w", err))
		}
		rpc, err := rmi.DialWith(*addr, *client, security.Key(key), rmi.Config{Codec: codec})
		if err != nil {
			fatal(err)
		}
		defer rpc.Close()
		meter = &netsim.Meter{}
		rpc.Profile = netProfile
		rpc.Meter = meter
		rpc.Timeout = *timeout
		rpc.Retry = retry
		rpc.MaxInFlight = *inflight
		ip = iplib.NewIPClient(rpc)
		if *recover_ {
			ip.EnableRecovery()
		}
	}

	specs, err := ip.Catalogue()
	if err != nil {
		fatal(err)
	}
	fmt.Println("catalogue:")
	for _, s := range specs {
		fmt.Printf("  %-20s %s (widths %d..%d, license %.0f¢)\n",
			s.Name, s.Description, s.MinWidth, s.MaxWidth, s.LicenseCents)
	}

	inst, err := ip.Bind("MultFastLowPower", *width, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bound %v; offered estimators:\n", inst)
	var offer iplib.EstimatorOffer
	for _, e := range inst.Enabled() {
		fmt.Printf("  %-24s err %.0f%% cost %.2f¢/call remote=%v\n", e.Name, e.ErrPct, e.CostCents, e.Remote)
		if e.Remote && e.Parameter() == estim.ParamAvgPower {
			offer = e
		}
	}

	// Figure 2 design around the virtual multiplier.
	a := module.NewWordConnector("A", *width)
	ar := module.NewWordConnector("AR", *width)
	b := module.NewWordConnector("B", *width)
	br := module.NewWordConnector("BR", *width)
	o := module.NewWordConnector("O", 2**width)
	ina := module.NewRandomPrimaryInput("INA", *width, 1, *patterns, 10, a)
	rega := module.NewRegister("REGA", *width, a, ar)
	inb := module.NewRandomPrimaryInput("INB", *width, 2, *patterns, 10, b)
	regb := module.NewRegister("REGB", *width, b, br)
	out := module.NewPrimaryOutput("OUT", 2**width, o)

	est := core.NewRemotePowerEstimator(inst, offer, *buffer, !*blocking)
	if *estcache {
		est.EnableCache(core.NewEstimationCache())
	}
	if *hedge > 0 && hedgeProv != nil {
		hconn, err := core.ConnectVia(hedgeProv, *client+"-hedge", netProfile, core.PipeDialer(hedgeProv))
		if err != nil {
			fatal(err)
		}
		defer hconn.Close()
		hinst, err := hconn.Client.Bind("MultFastLowPower", *width, nil)
		if err != nil {
			fatal(err)
		}
		est.EnableHedge(hinst, *hedge)
	}
	var mult module.Module
	if *remote {
		rm, err := core.NewRemoteMult("MULT", *width, ar, br, o, inst)
		if err != nil {
			fatal(err)
		}
		rm.FullyRemote = true
		rm.AddEstimator(est)
		mult = rm
	} else {
		m := module.NewMult("MULT", *width, ar, br, o)
		m.AddEstimator(est)
		mult = m
	}

	circuit := module.NewCircuit("Example", ina, rega, inb, regb, mult, out)
	simu := module.NewSimulation(circuit)
	setup := estim.NewSetup("run")
	setup.Set(estim.ParamAvgPower, estim.Criteria{Prefer: estim.PreferAccuracy})
	est.OnDegrade = func(reason string) {
		setup.MarkDegraded("MULT", est.Param, reason)
	}

	start := time.Now()
	// outID names the scheduler whose history holds OUT's products — the
	// single scheduler classically, OUT's owning shard otherwise.
	var outID sim.SchedulerID
	if *shards > 1 {
		sst := shard.Run(circuit, shard.Options{Shards: *shards, Window: *shardWin, Setup: setup})
		if sst.Err != nil {
			fatal(sst.Err)
		}
		outID = sst.OwnerOf(out)
		fmt.Printf("sharded across %d schedulers: cut cost %d, %d cross-shard tokens, %d barriers, %d solo turns\n",
			len(sst.Schedulers), sst.CutCost, sst.CrossTokens, sst.Barriers, sst.SoloTurns)
	} else {
		stats := simu.Start(setup)
		if stats.Err != nil {
			fatal(stats.Err)
		}
		outID = stats.Scheduler
	}
	if err := est.Close(); err != nil {
		fatal(err)
	}
	wall := time.Since(start)
	cpu, real := meter.Split(wall)

	rep := est.Report()
	mode := "ER"
	if *remote {
		mode = "MR"
	}
	fmt.Printf("\nsimulated %d patterns (%s): %d products observed\n",
		*patterns, mode, len(out.History(outID)))
	fmt.Printf("  remote power: %d samples, avg %.1f µW, peak %.1f µW\n",
		len(rep.Samples), rep.AvgPower, rep.PeakPower)
	fmt.Printf("  CPU time %v, real time %v (blocked on network %v, %d calls, %d bytes)\n",
		cpu.Round(time.Microsecond), real.Round(time.Microsecond),
		meter.Blocked().Round(time.Microsecond), meter.Calls(), meter.Bytes())
	if *estcache {
		fmt.Printf("  estimation cache: %d hits, %d misses, %d request bytes saved\n",
			rep.CacheHits, rep.CacheMisses, rep.CacheBytesSaved)
	}
	if rset != nil {
		fmt.Printf("  replicas: %d failovers, %d hedged batches (%d hedge wins)\n",
			meter.Failovers(), meter.HedgedBatches(), meter.HedgeWins())
		for i, st := range rset.Statuses() {
			fmt.Printf("    replica %d %-8s %d ok / %d failed, ewma latency %v\n",
				i, st.State, st.Successes, st.Failures, st.EWMALatency.Round(time.Microsecond))
		}
	}
	if rep.Degraded {
		fmt.Printf("  DEGRADED: provider declared dead mid-run; %d batches lost, later estimates are fallback values\n",
			rep.LostBatches)
	}
	fees, err := ip.Fees()
	switch {
	case err == nil:
		fmt.Printf("  session bill: %.1f¢\n", fees)
	case errors.Is(err, rmi.ErrProviderDead):
		fmt.Println("  session bill: unavailable (provider dead)")
	default:
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocad-sim:", err)
	os.Exit(1)
}
