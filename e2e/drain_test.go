package e2e

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startServerProc launches gocad-server like startServer but keeps the
// process handle and captures all output, so tests can signal it and
// inspect its shutdown transcript.
func startServerProc(t *testing.T, serverBin string, extra ...string) (cmd *exec.Cmd, addr string, keyfile string, output func() string) {
	t.Helper()
	keyfile = filepath.Join(t.TempDir(), "key.hex")
	args := append([]string{"-addr", "127.0.0.1:0", "-keyfile", keyfile}, extra...)
	cmd = exec.Command(serverBin, args...)
	// Capture through an io.Writer rather than StdoutPipe: exec then
	// finishes copying before Wait returns, so the shutdown transcript's
	// final lines can't be lost to the Wait/scanner race.
	log := &procLog{addr: make(chan string, 1)}
	cmd.Stdout = log
	cmd.Stderr = log
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	select {
	case addr = <-log.addr:
	case <-time.After(15 * time.Second):
		t.Fatal("gocad-server did not report its listen address in time")
	}
	return cmd, addr, keyfile, log.String
}

// procLog accumulates a child process's output and announces the
// server's bound address the moment its "listening on" line lands.
type procLog struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addr  chan string
	found bool
}

func (l *procLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf.Write(p)
	if !l.found {
		text := l.buf.String()
		if i := strings.Index(text, "listening on "); i >= 0 {
			rest := text[i+len("listening on "):]
			if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
				l.found = true
				l.addr <- strings.TrimSpace(rest[:nl])
			}
		}
	}
	return len(p), nil
}

func (l *procLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// TestServerDrainsOnSIGTERM is the graceful-shutdown contract of a live
// deployment: a SIGTERM to gocad-server must produce a drain (announced
// in its output), a clean "drained, exiting" farewell, and exit code 0 —
// after having served real sessions over the same process lifetime.
func TestServerDrainsOnSIGTERM(t *testing.T) {
	serverBin, simBin := buildTools(t)
	cmd, addr, keyfile, output := startServerProc(t, serverBin, "-drain-timeout", "5s")

	// A completed session first: drain must hold up after real traffic.
	out := runSim(t, simBin, "-addr", addr, "-keyfile", keyfile, "-width", "4", "-patterns", "10", "-blocking")
	if !strings.Contains(out, "session bill:") {
		t.Fatalf("warm-up session incomplete:\n%s", out)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v\n%s", err, output())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not exit within 15s of SIGTERM\n%s", output())
	}

	got := output()
	if !strings.Contains(got, "draining") {
		t.Errorf("shutdown transcript missing drain announcement:\n%s", got)
	}
	if !strings.Contains(got, "drained, exiting") {
		t.Errorf("shutdown transcript missing clean farewell:\n%s", got)
	}
}
