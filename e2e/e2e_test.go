// Package e2e smoke-tests the real deployment: a gocad-server process
// serving TCP on localhost and a gocad-sim process driving the Figure 2
// design against it, compared against the same design run with -local
// (in-process provider). The distributed run must report identical
// simulation results.
package e2e

import (
	"bufio"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles both binaries into a temp dir.
func buildTools(t *testing.T) (serverBin, simBin string) {
	t.Helper()
	dir := t.TempDir()
	serverBin = filepath.Join(dir, "gocad-server")
	simBin = filepath.Join(dir, "gocad-sim")
	for bin, pkg := range map[string]string{
		serverBin: "../cmd/gocad-server",
		simBin:    "../cmd/gocad-sim",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return serverBin, simBin
}

// startServer launches gocad-server on an ephemeral port and returns the
// bound address and key file path once it is accepting connections.
func startServer(t *testing.T, serverBin string) (addr, keyfile string) {
	t.Helper()
	keyfile = filepath.Join(t.TempDir(), "key.hex")
	cmd := exec.Command(serverBin, "-addr", "127.0.0.1:0", "-keyfile", keyfile)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
		// Drain the rest so the child never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()
	select {
	case addr = <-addrCh:
	case <-time.After(15 * time.Second):
		t.Fatal("gocad-server did not report its listen address in time")
	}
	return addr, keyfile
}

// resultLines extracts the deterministic result lines of a gocad-sim run:
// the products-observed line and the remote-power line. Timing, traffic,
// and billing lines legitimately differ between transports.
func resultLines(t *testing.T, out string) (products, power string) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "simulated ") {
			products = trimmed
		}
		if strings.HasPrefix(trimmed, "remote power:") {
			power = trimmed
		}
	}
	if products == "" || power == "" {
		t.Fatalf("result lines missing from output:\n%s", out)
	}
	return products, power
}

func runSim(t *testing.T, simBin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(simBin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("gocad-sim %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestDistributedRunMatchesLocal drives gocad-sim against a live
// gocad-server over localhost TCP, in both ER and MR configurations, and
// asserts the reported simulation results are identical to a local-only
// (in-process provider) run of the same design. -blocking keeps the
// estimation batch order deterministic so the comparison is exact.
func TestDistributedRunMatchesLocal(t *testing.T) {
	serverBin, simBin := buildTools(t)
	addr, keyfile := startServer(t, serverBin)

	for _, mode := range []struct {
		name string
		args []string
	}{
		{"ER", nil},
		{"MR", []string{"-mr"}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			common := append([]string{"-width", "8", "-patterns", "30", "-blocking"}, mode.args...)
			remoteOut := runSim(t, simBin, append([]string{"-addr", addr, "-keyfile", keyfile}, common...)...)
			localOut := runSim(t, simBin, append([]string{"-local"}, common...)...)

			rProducts, rPower := resultLines(t, remoteOut)
			lProducts, lPower := resultLines(t, localOut)
			if rProducts != lProducts {
				t.Errorf("products differ:\n  tcp:   %s\n  local: %s", rProducts, lProducts)
			}
			if rPower != lPower {
				t.Errorf("power results differ:\n  tcp:   %s\n  local: %s", rPower, lPower)
			}
			if strings.Contains(remoteOut, "DEGRADED") {
				t.Errorf("distributed run degraded:\n%s", remoteOut)
			}
		})
	}
}

// TestServerSurvivesClientChurn runs several short sim sessions against
// one server process — sessions must be independent (fresh instance
// handles, separate bills) and the server must not wedge between them.
func TestServerSurvivesClientChurn(t *testing.T) {
	serverBin, simBin := buildTools(t)
	addr, keyfile := startServer(t, serverBin)
	var first string
	for i := 0; i < 3; i++ {
		out := runSim(t, simBin, "-addr", addr, "-keyfile", keyfile, "-width", "4", "-patterns", "10", "-blocking")
		_, power := resultLines(t, out)
		if i == 0 {
			first = power
		} else if power != first {
			t.Fatalf("session %d results differ from session 0:\n  %s\n  %s", i, power, first)
		}
		if !strings.Contains(out, "session bill:") {
			t.Errorf("session %d missing bill line:\n%s", i, out)
		}
	}
}
