package e2e

import (
	"encoding/hex"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/iplib"
	"repro/internal/rmi"
	"repro/internal/security"
	"repro/internal/signal"
)

// TestMultiTenantDrainOnSIGTERM is the gateway's deployment contract
// end to end: a gocad-server process running with a tenant config file,
// a metrics sidecar, and a billing ledger serves two tenants' real
// traffic, exports per-tenant counters over /metrics, and on SIGTERM
// drains gracefully — clean exit, drain transcript, and a persisted
// ledger whose entries cover every tenant that was billed.
func TestMultiTenantDrainOnSIGTERM(t *testing.T) {
	serverBin, _ := buildTools(t)
	dir := t.TempDir()

	tenants := []string{"acme", "zenith"}
	keys := map[string]security.Key{}
	var specs []gateway.TenantSpec
	for _, name := range tenants {
		key, err := security.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[name] = key
		specs = append(specs, gateway.TenantSpec{Name: name, Key: hex.EncodeToString(key)})
	}
	cfgPath := filepath.Join(dir, "tenants.json")
	if err := gateway.WriteTenantConfig(cfgPath, specs); err != nil {
		t.Fatal(err)
	}
	ledgerPath := filepath.Join(dir, "ledger.tsv")

	cmd, addr, _, output := startServerProc(t, serverBin,
		"-tenant-config", cfgPath,
		"-metrics-addr", "127.0.0.1:0",
		"-ledger", ledgerPath,
		"-drain-timeout", "5s")

	// Both tenants run real billable traffic.
	for _, name := range tenants {
		cli, err := rmi.Dial(addr, name, keys[name])
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		inst, err := iplib.NewIPClient(cli).Bind("MultFastLowPower", 4, nil)
		if err != nil {
			t.Fatalf("bind %s: %v", name, err)
		}
		if _, err := inst.Eval(make([]signal.Bit, 8)); err != nil {
			t.Fatalf("eval %s: %v", name, err)
		}
		defer cli.Close()
	}

	// The sidecar exports both tenants' counters while traffic is live.
	maddr := metricsAddr(t, output)
	body := fetch(t, "http://"+maddr+"/metrics")
	for _, want := range []string{
		`gocad_gateway_tenant_calls_total{tenant="acme"}`,
		`gocad_gateway_tenant_calls_total{tenant="zenith"}`,
		"gocad_gateway_admissions_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if health := fetch(t, "http://"+maddr+"/healthz"); !strings.Contains(health, "ok") {
		t.Errorf("/healthz = %q", health)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v\n%s", err, output())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not exit within 15s of SIGTERM\n%s", output())
	}
	// The transcript scanner drains stdout on its own goroutine; give
	// the final lines a beat to land.
	var got string
	for stop := time.Now().Add(2 * time.Second); ; {
		got = output()
		if strings.Contains(got, "drained, exiting") || time.Now().After(stop) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(got, "draining") || !strings.Contains(got, "drained, exiting") {
		t.Errorf("shutdown transcript missing drain markers:\n%s", got)
	}

	// The billing trail survives the process: every tenant that ran
	// traffic has positive persisted fees.
	entries, err := gateway.ReadLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]float64{}
	for _, e := range entries {
		sums[e.Tenant] += e.Cents
	}
	for _, name := range tenants {
		if sums[name] <= 0 {
			t.Errorf("tenant %s has no persisted fees in %s (entries: %d)", name, ledgerPath, len(entries))
		}
	}
}

// metricsAddr extracts the sidecar's bound address from the server's
// startup transcript.
func metricsAddr(t *testing.T, output func() string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, line := range strings.Split(output(), "\n") {
			if i := strings.Index(line, "metrics: http://"); i >= 0 {
				rest := strings.Fields(line[i+len("metrics: http://"):])[0]
				return strings.TrimSuffix(rest, "/metrics")
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its metrics address:\n%s", output())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetch GETs a URL and returns the body.
func fetch(t *testing.T, url string) string {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestLoadgenSelftest runs the load generator's self-contained
// acceptance storm (4x MaxSessions against an in-process gateway) as a
// subprocess — the same smoke test CI wires into `make loadgen`.
func TestLoadgenSelftest(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "gocad-loadgen")
	if out, err := exec.Command("go", "build", "-o", bin, "../cmd/gocad-loadgen").CombinedOutput(); err != nil {
		t.Fatalf("build gocad-loadgen: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-selftest").CombinedOutput()
	if err != nil {
		t.Fatalf("gocad-loadgen -selftest: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "selftest PASS") {
		t.Fatalf("selftest output missing PASS:\n%s", out)
	}
}
