// Faultsim walks through the paper's virtual fault simulation example
// (Figures 4 and 5): a half-adder design embedding the IP block IP1,
// whose gate-level structure lives only on the provider's server. The
// user builds the design-wide fault list from the provider's symbolic
// list, then fault-simulates test patterns: for each pattern the
// provider returns a detection table (erroneous output patterns and the
// symbolic faults causing them), and the user injects each erroneous
// configuration at IP1's outputs, propagates it through the rest of the
// design, and drops detected faults.
//
// The run demonstrates the paper's key narrative: an erroneous sum at
// IP1's output is NOT detected by pattern ABCD=1100 (D=0 blocks the
// propagation through O1) but IS detected by 1101 — together with every
// fault sharing the same detection-table row.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	gocad "repro"
	"repro/internal/fault"
	"repro/internal/signal"
)

func main() {
	// Provider hosting IP1's private netlist + testability service.
	prov := gocad.NewProvider("ip1-vendor")
	if err := prov.Register(gocad.HalfAdderIP1()); err != nil {
		log.Fatal(err)
	}
	conn, err := gocad.ConnectInProcess(prov, "designer", gocad.NetLAN)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	inst, err := conn.Client.Bind("IP1-HalfAdder", 1, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The user's design (Figure 4), with the REMOTE testability service
	// answering for IP1.
	design, err := fault.Figure4Design()
	if err != nil {
		log.Fatal(err)
	}
	design.Hosts[0].Service = inst
	vs := design.NewVirtual()

	// Phase one: the design fault list (union of symbolic lists).
	list, err := vs.BuildFaultList()
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(list)
	fmt.Printf("design fault list (%d symbolic faults from the provider):\n  %s\n\n",
		len(list), strings.Join(list, ", "))

	// The provider's detection table for IP1 inputs (1,0) — served over
	// the RMI channel; only output patterns and symbolic names cross.
	dt, err := inst.DetectionTable([]signal.Bit{signal.B1, signal.B0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection table for IIP=(1,0), fault-free output %s:\n", dt.FaultFree)
	for _, row := range dt.Rows {
		fmt.Printf("  faulty output %s <- {%s}\n", row.Output, strings.Join(row.Faults, ", "))
	}

	// Phase two: fault-simulate the paper's two patterns, then finish
	// with the exhaustive set.
	patterns := [][]signal.Bit{
		mustPattern("1100"),
		mustPattern("1101"),
	}
	for v := uint64(0); v < 16; v++ {
		p := make([]signal.Bit, 4)
		for i := range p {
			if v&(1<<uint(i)) != 0 {
				p[i] = signal.B1
			}
		}
		patterns = append(patterns, p)
	}
	res, err := vs.Run(patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-pattern detections:")
	for i, fs := range res.PerPattern {
		if len(fs) == 0 {
			continue
		}
		sort.Strings(fs)
		fmt.Printf("  pattern %2d: %s\n", i, strings.Join(fs, ", "))
	}
	fmt.Printf("\nfinal coverage: %.1f%% (%d/%d faults) after %d patterns\n",
		100*res.Coverage(), len(res.Detected), res.Total, len(patterns))
	fmt.Printf("protocol work: %d fault-free runs, %d detection-table queries, %d injections\n",
		vs.Stats.FaultFreeRuns, vs.Stats.DetectionTableCalls, vs.Stats.InjectionRuns)

	fees, err := conn.Client.Fees()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provider bill: %.1f cents\n", fees)
}

// mustPattern parses an ABCD bit string.
func mustPattern(s string) []signal.Bit {
	out := make([]signal.Bit, len(s))
	for i := range s {
		b, err := signal.ParseBit(s[i])
		if err != nil {
			log.Fatal(err)
		}
		out[i] = b
	}
	return out
}
