// Marketplace demonstrates the paper's Figure 1 topology: one IP user
// evaluating components from TWO independent providers, each with its
// own server, catalogue, model offers and prices. The user negotiates a
// different estimator setup with each provider (trading accuracy against
// cost and speed — the Table 1 trade-off), runs concurrent simulations
// of the same design under both setups, and compares estimates and
// bills before deciding what to buy.
package main

import (
	"fmt"
	"log"

	gocad "repro"
	"repro/internal/estim"
	"repro/internal/gate"
	"repro/internal/iplib"
	"repro/internal/provider"
)

// cheapMultiplier is provider 2's offering: functionally identical, but
// with only a free constant power model (its setup in Figure 1 lists
// "Power model 0"), a lower license fee, and no testability service.
func cheapMultiplier() *gocad.ProviderComponent {
	return &gocad.ProviderComponent{
		Spec: iplib.ComponentSpec{
			Name:          "MultBudget",
			Description:   "budget multiplier, functional model only",
			MinWidth:      2,
			MaxWidth:      32,
			PublicFactory: "behavioral-mult",
			Estimators: []iplib.EstimatorOffer{
				{Name: "constant", Param: string(estim.ParamAvgPower), ErrPct: 40, CostCents: 0, Remote: false},
			},
			LicenseCents: 10,
		},
		Build: func(width int) (*gate.Netlist, error) {
			return gate.ArrayMultiplier(width), nil
		},
		PowerFeeCents: 0,
	}
}

func main() {
	const width = 12

	// Two providers, two servers.
	prov1 := provider.New("fast-silicon-inc")
	if err := prov1.Register(provider.MultFastLowPower()); err != nil {
		log.Fatal(err)
	}
	prov2 := provider.New("budget-cores-ltd")
	if err := prov2.Register(cheapMultiplier()); err != nil {
		log.Fatal(err)
	}

	conn1, err := gocad.ConnectInProcess(prov1, "designer", gocad.NetWAN)
	if err != nil {
		log.Fatal(err)
	}
	defer conn1.Close()
	conn2, err := gocad.ConnectInProcess(prov2, "designer", gocad.NetLAN)
	if err != nil {
		log.Fatal(err)
	}
	defer conn2.Close()

	// Browse both catalogues.
	for i, c := range []*gocad.Connection{conn1, conn2} {
		specs, err := c.Client.Catalogue()
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range specs {
			fmt.Printf("provider %d offers %s (license %.0f¢):\n", i+1, s.Name, s.LicenseCents)
			for _, e := range s.Estimators {
				where := "local"
				if e.Remote {
					where = "REMOTE"
				}
				fmt.Printf("    %-24s err %2.0f%%  %5.2f¢/call  %s\n", e.Name, e.ErrPct, e.CostCents, where)
			}
		}
	}

	// Negotiate: accurate (and billed) models from provider 1, the free
	// constant model from provider 2.
	inst1, err := conn1.Client.Bind("MultFastLowPower", width, []string{"gate-level-toggle-count"})
	if err != nil {
		log.Fatal(err)
	}
	inst2, err := conn2.Client.Bind("MultBudget", width, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate both candidates in the same design under two concurrent
	// setups (one scheduler each; the kernel guarantees no interference).
	evaluate := func(name string, attach func(m *gocad.RemoteMult) *gocad.RemotePowerEstimator,
		inst *gocad.BoundInstance, conn *gocad.Connection) {
		a := gocad.NewWordConnector("A", width)
		ar := gocad.NewWordConnector("AR", width)
		b := gocad.NewWordConnector("B", width)
		br := gocad.NewWordConnector("BR", width)
		o := gocad.NewWordConnector("O", 2*width)
		ina := gocad.NewRandomPrimaryInput("INA", width, 1, 60, 10, a)
		rega := gocad.NewRegister("REGA", width, a, ar)
		inb := gocad.NewRandomPrimaryInput("INB", width, 2, 60, 10, b)
		regb := gocad.NewRegister("REGB", width, b, br)
		out := gocad.NewPrimaryOutput("OUT", 2*width, o)
		mult, err := gocad.NewRemoteMult("MULT", width, ar, br, o, inst)
		if err != nil {
			log.Fatal(err)
		}
		var remote *gocad.RemotePowerEstimator
		if attach != nil {
			remote = attach(mult)
		}
		circuit := gocad.NewCircuit("eval-"+name, ina, rega, inb, regb, mult, out)
		simu := gocad.NewSimulation(circuit)
		setup := gocad.NewSetup(name)
		setup.Set(gocad.ParamAvgPower, gocad.Criteria{Prefer: gocad.PreferAccuracy})
		stats := simu.Start(setup)
		if stats.Err != nil {
			log.Fatal(stats.Err)
		}
		if remote != nil {
			if err := remote.Close(); err != nil {
				log.Fatal(err)
			}
			rep := remote.Report()
			fmt.Printf("\n%s: avg power %.1f µW over %d samples (accurate, remote)\n",
				name, rep.AvgPower, len(rep.Samples))
		} else if agg, ok := setup.AggregateFor("MULT", gocad.ParamAvgPower); ok {
			fmt.Printf("\n%s: avg power %.1f µW over %d samples (data-sheet constant)\n",
				name, agg.Mean(), agg.Count)
		}
		fees, err := conn.Client.Fees()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: bill so far %.1f¢, %d RMI calls\n", name, fees, conn.Meter.Calls())
	}

	evaluate("fast-silicon", func(m *gocad.RemoteMult) *gocad.RemotePowerEstimator {
		offer, _ := multOffer(inst1, "gate-level-toggle-count")
		e := gocad.NewRemoteEstimator(inst1, offer, 10, true)
		m.AddEstimator(e)
		return e
	}, inst1, conn1)

	evaluate("budget-cores", func(m *gocad.RemoteMult) *gocad.RemotePowerEstimator {
		offer, ok := multOffer(inst2, "constant")
		if !ok {
			return nil
		}
		m.AddEstimator(&estim.Constant{
			Meta: estim.Meta{
				Name:   offer.Name,
				Param:  offer.Parameter(),
				ErrPct: offer.ErrPct,
			},
			Value: 60, // the data-sheet number provider 2 publishes
		})
		return nil
	}, inst2, conn2)

	fmt.Println("\nconclusion: provider 1 charges per pattern for accuracy;" +
		" provider 2 is free but ±40%. The designer decides with numbers, not guesses.")
}

// multOffer finds an offer by name on a bound instance.
func multOffer(inst *gocad.BoundInstance, name string) (iplib.EstimatorOffer, bool) {
	for _, e := range inst.Enabled() {
		if e.Name == name {
			return e, true
		}
	}
	return iplib.EstimatorOffer{}, false
}
