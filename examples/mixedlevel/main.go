// Mixedlevel exercises the design-model features the paper highlights
// beyond the headline experiments: a mixed gate-level/RTL description
// with interface adapters, an autonomous clock generator built on the
// self-trigger mechanism, explicit fan-out modules with per-branch
// delays, a netlist-backed gate-level component next to behavioral RTL,
// and two estimation setups running CONCURRENTLY over the same design on
// independent schedulers.
//
// The design: a clock drives a counter; the counter value is split into
// bits, fed through a gate-level ripple-carry adder (as a NetlistModule)
// that adds a constant, and reassembled into a word monitored at the
// primary output. Area estimators on the RTL parts plus the adder's
// gate count compose into the design total — the paper's "local,
// additive property".
package main

import (
	"fmt"
	"log"

	gocad "repro"
	"repro/internal/estim"
	"repro/internal/signal"
	"repro/internal/sim"
)

func main() {
	const width = 4

	// Clocking: an autonomous generator (self-trigger) and a counter.
	clk := gocad.NewBitConnector("clk")
	clkA := gocad.NewBitConnector("clkA")
	clkB := gocad.NewBitConnector("clkB")
	q := gocad.NewWordConnector("q", width)

	gen := gocad.NewClockGen("CLKGEN", 5, 12, clk)
	// Fan-out with per-branch delays: the counter sees the edge
	// immediately, a debug monitor sees it 2 time units later.
	fo := gocad.NewFanout("CLKTREE", 1, clk, []*gocad.Connector{clkA, clkB}, []sim.Time{0, 2})
	cnt := gocad.NewCounter("COUNTER", width, clkA, q)
	clkMon := gocad.NewPrimaryOutput("CLKMON", 1, clkB)

	// RTL -> gate-level boundary: split the counter word into bits.
	cntBits := make([]*gocad.Connector, width)
	for i := range cntBits {
		cntBits[i] = gocad.NewBitConnector(fmt.Sprintf("cnt%d", i))
	}
	split := gocad.NewWordToBits("SPLIT", width, q, cntBits)

	// Constant second operand (binary 0011 = 3), bit by bit.
	constBits := make([]*gocad.Connector, width)
	consts := make([]gocad.Module, width)
	for i := range constBits {
		constBits[i] = gocad.NewBitConnector(fmt.Sprintf("k%d", i))
		bit := gocad.B0
		if i < 2 {
			bit = gocad.B1
		}
		consts[i] = gocad.NewConstInput(fmt.Sprintf("K%d", i), 1,
			signal.BitValue{B: bit}, constBits[i])
	}

	// The gate-level adder: a structural netlist instantiated as a
	// module among RTL neighbours. Inputs a0..a3 then b0..b3; outputs
	// s0..s3 and carry.
	adderNl := gocad.RippleAdder(width)
	sumBits := make([]*gocad.Connector, width+1)
	for i := range sumBits {
		sumBits[i] = gocad.NewBitConnector(fmt.Sprintf("s%d", i))
	}
	adderIns := append(append([]*gocad.Connector{}, cntBits...), constBits...)
	adder := gocad.NewNetlistModule("ADDER", adderNl, adderIns, sumBits)

	// Gate-level -> RTL boundary: reassemble the sum word.
	sum := gocad.NewWordConnector("sum", width+1)
	join := gocad.NewBitsToWord("JOIN", width+1, sumBits, sum)
	out := gocad.NewPrimaryOutput("OUT", width+1, sum)

	// Estimators: data-sheet areas on the RTL parts; the adder's area
	// from its cell count via the PPP library.
	cnt.AddEstimator(&estim.Constant{
		Meta: estim.Meta{Name: "area-ds", Param: estim.ParamArea}, Value: 12})
	adder.AddEstimator(&estim.Constant{
		Meta:  estim.Meta{Name: "area-cells", Param: estim.ParamArea},
		Value: gocad.AreaOf(adderNl, nil)})

	circuit := gocad.NewCircuit("mixed",
		gen, fo, cnt, clkMon, split, join, adder, out)
	circuit.Add(consts...)
	simu := gocad.NewSimulation(circuit)

	// Two setups, two concurrent schedulers, zero interference.
	areaSetup := gocad.NewSetup("area")
	areaSetup.Set(gocad.ParamArea, gocad.Criteria{})
	noSetup := (*gocad.Setup)(nil)
	stats := simu.StartConcurrent([]*gocad.Setup{areaSetup, noSetup})
	for _, st := range stats {
		if st.Err != nil {
			log.Fatal(st.Err)
		}
	}

	// Results: counter+3 must appear at the output on every clock cycle.
	fmt.Println("mixed-level simulation over 12 clock cycles:")
	for _, run := range stats {
		h := out.History(run.Scheduler)
		fmt.Printf("  scheduler %d: %d output events, %d tokens delivered\n",
			run.Scheduler, len(h), run.Delivered)
		if len(h) > 0 {
			last := h[len(h)-1].Value.(signal.WordValue).W
			v, _ := last.Uint64()
			fmt.Printf("    final sum %s (= %d)\n", last, v)
		}
	}
	fmt.Printf("clock edges observed by the delayed monitor branch: %d\n",
		len(clkMon.History(stats[1].Scheduler)))
	fmt.Printf("design area (additive composition): %.1f equivalent gates\n",
		areaSetup.DesignTotal(gocad.ParamArea))
	for _, w := range areaSetup.Warnings() {
		fmt.Printf("  note: %s\n", w)
	}
}
