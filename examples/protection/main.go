// Protection contrasts the three IP-protection approaches the paper
// discusses, on the same component (an 8-bit multiplier core):
//
//  1. WATERMARKING (related work): the provider embeds a keyed signature
//     into the netlist and ships the netlist itself. The user gets full
//     accuracy locally — and full disclosure: anyone can analyze
//     structure, power, and faults. The signature only proves provenance
//     in court.
//  2. MODEL ENCRYPTION (related work): the provider ships an encrypted
//     model opened into an evaluation-only API. Functionality is exact,
//     but structural queries are impossible by construction — accurate
//     power and testability are simply not servable.
//  3. VIRTUAL SIMULATION (the paper): the netlist never leaves the
//     provider's server; the user still gets accurate gate-level power
//     and full fault simulation through the client-server protocol.
package main

import (
	"fmt"
	"log"

	gocad "repro"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/ppp"
	"repro/internal/sealed"
	"repro/internal/watermark"
)

func main() {
	nl := gate.ArrayMultiplier(8)
	in := nl.InputWord(0x0F0F)

	// ---- 1. Watermarking -------------------------------------------
	key := []byte("fast-silicon-signing-key-1999!!!")
	sig := watermark.SignatureFromString("FS(c)99")
	wm, err := watermark.Embed(nl, key, sig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. watermarking:")
	fmt.Printf("   signature verifies with key: %v\n", watermark.Verify(wm, key, sig))
	fmt.Printf("   ...but the netlist is fully disclosed: %d gates visible,\n", wm.NumGates())
	sim, _ := ppp.NewSimulator(wm, nil)
	if _, err := sim.Run([][]gocad.Bit{wm.InputWord(0), wm.InputWord(0xFFFF)}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   anyone can run power analysis (%.0f fJ on one swing)\n", sim.Report().TotalEnergy)
	fmt.Printf("   and enumerate all %d collapsed faults\n\n", len(fault.Collapse(wm)))

	// ---- 2. Model encryption ----------------------------------------
	sealKey := []byte("0123456789abcdef0123456789abcdef")
	model, err := sealed.Seal(nl, sealKey)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := sealed.Open(model, sealKey)
	if err != nil {
		log.Fatal(err)
	}
	out, err := ev.Eval(in)
	if err != nil {
		log.Fatal(err)
	}
	var v uint64
	for i, b := range out {
		if bv, _ := b.Bool(); bv {
			v |= 1 << uint(i)
		}
	}
	fmt.Println("2. model encryption:")
	fmt.Printf("   sealed model evaluates 15*15 = %d locally (exact)\n", v)
	fmt.Println("   ...but the API is evaluation-only: no gates, no nets, no")
	fmt.Println("   toggle counts -> no accurate power, no detection tables;")
	fmt.Println("   and the 32-byte key had to be handed to the user anyway")
	if _, err := sealed.Open(model, []byte("ffffffffffffffffffffffffffffffff")); err != nil {
		fmt.Printf("   (wrong key is at least rejected: %v)\n\n", err)
	}

	// ---- 3. Virtual simulation --------------------------------------
	prov := gocad.NewProvider("fast-silicon")
	if err := prov.Register(gocad.MultFastLowPower()); err != nil {
		log.Fatal(err)
	}
	conn, err := gocad.ConnectInProcess(prov, "designer", gocad.NetLAN)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	inst, err := conn.Client.Bind("MultFastLowPower", 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	power, err := inst.PowerBatch([][]gocad.Bit{nl.InputWord(0), nl.InputWord(0xFFFF), nl.InputWord(0x00FF)}, false)
	if err != nil {
		log.Fatal(err)
	}
	faults, err := inst.FaultList()
	if err != nil {
		log.Fatal(err)
	}
	area, err := inst.Static("area")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3. virtual simulation (this paper):")
	fmt.Printf("   accurate gate-level power served remotely: %.1f µW on the swing\n", power[1])
	fmt.Printf("   symbolic fault list served remotely: %d faults (names only)\n", len(faults))
	fmt.Printf("   accurate area served remotely: %.0f equivalent gates\n", area)
	fmt.Println("   ...and the netlist never left the provider's process:")
	fmt.Println("   every response crossed a default-deny marshalling policy")
	fees, _ := conn.Client.Fees()
	fmt.Printf("   (the provider charges for the privilege: %.1f¢ this session)\n", fees)
}
