// Quickstart reproduces the paper's Figure 2 end to end: an IP user
// builds a small RTL design — two proprietary register macros feeding a
// multiplier — where the multiplier is a VIRTUAL component sold by a
// remote IP provider. The user simulates 100 random patterns, gets
// accurate gate-level power estimates computed on the provider's server
// (the netlist never crosses the wire), and sees the session bill.
package main

import (
	"fmt"
	"log"
	"time"

	gocad "repro"
)

func main() {
	// ---- Provider side (would normally be another machine) ----------
	prov := gocad.NewProvider("provider1")
	if err := prov.Register(gocad.MultFastLowPower()); err != nil {
		log.Fatal(err)
	}

	// ---- IP user side ------------------------------------------------
	conn, err := gocad.ConnectInProcess(prov, "designer", gocad.NetWAN)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Browse the catalogue and bind the 16-bit multiplier.
	specs, err := conn.Client.Catalogue()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range specs {
		fmt.Printf("catalogue: %s — %s\n", s.Name, s.Description)
	}
	const width = 16
	inst, err := conn.Client.Bind("MultFastLowPower", width, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bound remote component %v\n\n", inst)

	// The Figure 2 design. Connectors first, then modules — exactly the
	// paper's JavaCAD class structure.
	a := gocad.NewWordConnector("A", width)
	ar := gocad.NewWordConnector("AR", width)
	b := gocad.NewWordConnector("B", width)
	br := gocad.NewWordConnector("BR", width)
	o := gocad.NewWordConnector("O", 2*width)

	ina := gocad.NewRandomPrimaryInput("INA", width, 1, 100, 10, a)
	rega := gocad.NewRegister("REGA", width, a, ar)
	inb := gocad.NewRandomPrimaryInput("INB", width, 2, 100, 10, b)
	regb := gocad.NewRegister("REGB", width, b, br)
	out := gocad.NewPrimaryOutput("OUT", 2*width, o)

	// The virtual multiplier: public-part functionality runs locally,
	// the accurate power estimator runs on the provider's server with a
	// 5-pattern buffer and nonblocking dispatch.
	mult, err := gocad.NewRemoteMult("MULT", width, ar, br, o, inst)
	if err != nil {
		log.Fatal(err)
	}
	remoteOffer := inst.Enabled()[len(inst.Enabled())-1]
	for _, e := range inst.Enabled() {
		if e.Remote && e.Parameter() == gocad.ParamAvgPower {
			remoteOffer = e
		}
	}
	est := gocad.NewRemoteEstimator(inst, remoteOffer, 5, true)
	mult.AddEstimator(est)

	circuit := gocad.NewCircuit("Example", ina, rega, inb, regb, mult, out)
	simu := gocad.NewSimulation(circuit)
	setup := gocad.NewSetup("accurate-power")
	setup.Set(gocad.ParamAvgPower, gocad.Criteria{Prefer: gocad.PreferAccuracy})

	start := time.Now()
	stats := simu.Start(setup)
	if stats.Err != nil {
		log.Fatal(stats.Err)
	}
	if err := est.Close(); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	rep := est.Report()
	fees, err := conn.Client.Fees()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d products in %v (%d tokens delivered)\n",
		len(out.History(stats.Scheduler)), wall.Round(time.Millisecond), stats.Delivered)
	fmt.Printf("remote gate-level power: %d samples, avg %.1f µW, peak %.1f µW\n",
		len(rep.Samples), rep.AvgPower, rep.PeakPower)
	fmt.Printf("network: %d RMI calls, %d bytes, %v blocked\n",
		conn.Meter.Calls(), conn.Meter.Bytes(), conn.Meter.Blocked().Round(time.Millisecond))
	fmt.Printf("session bill: %.1f cents\n", fees)
}
