package gocad_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun compiles and runs every example main end to end — the
// regression net that keeps the documented entry points working. Skipped
// under -short (each example costs a compile).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	examples := []string{
		"./examples/quickstart",
		"./examples/faultsim",
		"./examples/marketplace",
		"./examples/mixedlevel",
		"./examples/protection",
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", ex).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", ex)
			}
		})
	}
}

// TestExperimentsToolRuns exercises the experiments CLI at reduced scale.
func TestExperimentsToolRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./cmd/experiments",
		"-table1", "-figure4", "-width", "6").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments failed: %v\n%s", err, out)
	}
	for _, want := range []string{"Table 1", "Figure 4", "gate-level-toggle-count"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFaultToolCrossCheck runs the gocad-fault CLI with the flat
// reference cross-check enabled.
func TestFaultToolCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./cmd/gocad-fault",
		"-design", "fig4", "-patterns", "exhaustive", "-check").CombinedOutput()
	if err != nil {
		t.Fatalf("gocad-fault failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "cross-check PASSED") {
		t.Errorf("cross-check did not pass:\n%s", out)
	}
}
