// Package gocad is a Go reproduction of JavaCAD — "Virtual Simulation of
// Distributed IP-Based Designs" (Dalpasso, Benini, Bogliolo; DAC 1999) —
// an Internet-based design environment with a secure client-server
// architecture that lets designers perform functional simulation, fault
// simulation, and cost estimation of circuits containing IP components,
// while protecting the IP of both vendors and users.
//
// This root package is the public facade: it re-exports the user-facing
// API of the internal subsystem packages so a downstream design
// environment can depend on a single import path. The building blocks:
//
//   - design model: connectors, modules, circuits, the standard module
//     library (registers, arithmetic, gates, stimulus, monitors);
//   - simulation: the multilevel event-driven kernel with concurrent
//     schedulers, run through SimulationController;
//   - estimation: parameters, estimators, setup controllers, fees;
//   - distribution: provider servers hosting private parts, client
//     stubs binding remote components, pattern-buffered nonblocking
//     remote estimation, network emulation;
//   - testability: symbolic fault lists, detection tables, and virtual
//     fault simulation of designs containing undisclosed IP.
package gocad

import (
	"repro/internal/core"
	"repro/internal/estim"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/iplib"
	"repro/internal/module"
	"repro/internal/netsim"
	"repro/internal/ppp"
	"repro/internal/provider"
	"repro/internal/replica"
	"repro/internal/rmi"
	"repro/internal/sealed"
	"repro/internal/shard"
	"repro/internal/signal"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/watermark"
)

// Logic values and payloads.
type (
	// Bit is a four-valued logic level (B0, B1, BX, BZ).
	Bit = signal.Bit
	// Word is a fixed-width vector of bits.
	Word = signal.Word
	// Value is any payload a connector can carry.
	Value = signal.Value
	// BitValue adapts a Bit to the Value interface.
	BitValue = signal.BitValue
	// WordValue adapts a Word to the Value interface.
	WordValue = signal.WordValue
)

// The four logic levels.
const (
	B0 = signal.B0
	B1 = signal.B1
	BX = signal.BX
	BZ = signal.BZ
)

// WordFromUint64 builds a known word from an integer.
func WordFromUint64(v uint64, width int) Word { return signal.WordFromUint64(v, width) }

// ParseWord builds a word from its MSB-first spelling (e.g. "1X0Z").
func ParseWord(s string) (Word, error) { return signal.ParseWord(s) }

// Design model.
type (
	// Module is a design component.
	Module = module.Module
	// Connector ties two ports together.
	Connector = module.Connector
	// Circuit is a hierarchical collection of components.
	Circuit = module.Circuit
	// Skeleton is the embeddable base of every component.
	Skeleton = module.Skeleton
	// SimulationController runs event-driven simulations over a design.
	SimulationController = module.Simulation
)

// Connector constructors.
var (
	NewBitConnector    = module.NewBitConnector
	NewWordConnector   = module.NewWordConnector
	NewCustomConnector = module.NewCustomConnector
)

// Standard module library.
var (
	NewCircuit            = module.NewCircuit
	NewSimulation         = module.NewSimulation
	NewSkeleton           = module.NewSkeleton
	NewRegister           = module.NewRegister
	NewMult               = module.NewMult
	NewAdder              = module.NewAdder
	NewSub                = module.NewSub
	NewComparator         = module.NewComparator
	NewMux2               = module.NewMux2
	NewCounter            = module.NewCounter
	NewClockGen           = module.NewClockGen
	NewFanout             = module.NewFanout
	NewDelay              = module.NewDelay
	NewGateModule         = module.NewGateModule
	NewNetlistModule      = module.NewNetlistModule
	NewWordToBits         = module.NewWordToBits
	NewBitsToWord         = module.NewBitsToWord
	NewFuncBitModule      = module.NewFuncBitModule
	NewFuncWordModule     = module.NewFuncWordModule
	NewRandomPrimaryInput = module.NewRandomPrimaryInput
	NewPatternInput       = module.NewPatternInput
	NewConstInput         = module.NewConstInput
	NewPrimaryOutput      = module.NewPrimaryOutput
	ApplySetup            = module.ApplySetup
)

// Simulation kernel.
type (
	// Time is the discrete simulation time.
	Time = sim.Time
	// SchedulerID identifies one scheduler instance.
	SchedulerID = sim.SchedulerID
	// Stats summarizes a completed run.
	Stats = sim.Stats
	// WorkerPool bounds parallel fan-outs (0 = one worker per CPU,
	// 1 = serial); results merge in index order, so output is
	// bit-identical at every worker count.
	WorkerPool = sim.Pool
)

// Estimation framework.
type (
	// Parameter names a cost metric.
	Parameter = estim.Parameter
	// Estimator evaluates one parameter of one component.
	Estimator = estim.Estimator
	// Setup is the setup controller selecting and recording estimators.
	Setup = estim.Setup
	// Criteria chooses among candidate estimators.
	Criteria = estim.Criteria
)

// Predefined parameters.
const (
	ParamArea      = estim.ParamArea
	ParamDelay     = estim.ParamDelay
	ParamAvgPower  = estim.ParamAvgPower
	ParamPeakPower = estim.ParamPeakPower
)

// Estimator selection preferences.
const (
	PreferAccuracy = estim.PreferAccuracy
	PreferCost     = estim.PreferCost
	PreferSpeed    = estim.PreferSpeed
)

// NewSetup returns an empty setup controller.
func NewSetup(name string) *Setup { return estim.NewSetup(name) }

// Gate-level structure.
type (
	// Netlist is a structural gate-level circuit.
	Netlist = gate.Netlist
	// GateKind enumerates primitive gate types.
	GateKind = gate.Kind
)

// Netlist generators.
var (
	NewNetlist      = gate.NewNetlist
	RippleAdder     = gate.RippleAdder
	ArrayMultiplier = gate.ArrayMultiplier
	HalfAdderIP     = gate.HalfAdderIP
)

// Power/area/delay characterization (the PPP substitute).
var (
	NewPowerSimulator = ppp.NewSimulator
	DefaultCellLib    = ppp.DefaultLibrary
	AreaOf            = ppp.AreaOf
	CriticalPath      = ppp.CriticalPath
)

// Testability.
type (
	// DetectionTable is a component's per-pattern testability view.
	DetectionTable = fault.DetectionTable
	// TestabilityService answers fault-list and detection-table queries.
	TestabilityService = fault.TestabilityService
	// VirtualSimulator runs virtual fault simulation over an IP design.
	VirtualSimulator = fault.VirtualSimulator
	// FaultResult summarizes a fault simulation run.
	FaultResult = fault.Result
)

// Testability constructors.
var (
	NewLocalTestability        = fault.NewLocalTestability
	NewVirtualSimulator        = fault.NewVirtualSimulator
	SerialFaultSimulate        = fault.SerialSimulate
	SerialFaultSimulateWorkers = fault.SerialSimulateFaultsWorkers
)

// Distribution: providers, clients, remote components.
type (
	// Provider is an IP provider server.
	Provider = provider.Provider
	// ProviderComponent is a catalogue entry with its private part.
	ProviderComponent = provider.Component
	// IPClient is the typed stub layer over one provider session.
	IPClient = iplib.IPClient
	// BoundInstance is one instantiated remote component.
	BoundInstance = iplib.BoundInstance
	// ComponentSpec is a catalogue entry.
	ComponentSpec = iplib.ComponentSpec
	// RemoteMult is the paper's multiplier as a remote module.
	RemoteMult = core.RemoteMult
	// RemotePowerEstimator is the buffered nonblocking remote estimator.
	RemotePowerEstimator = core.RemotePowerEstimator
	// EstimationCache is the client-side content-addressed cache remote
	// estimators share via EnableCache.
	EstimationCache = core.EstimationCache
	// Connection is one authenticated client-provider session.
	Connection = core.Connection
	// NetworkProfile characterizes an emulated network environment.
	NetworkProfile = netsim.Profile
)

// Provider-side constructors and the standard catalogue.
var (
	NewProvider              = provider.New
	MultFastLowPower         = provider.MultFastLowPower
	HalfAdderIP1             = provider.HalfAdderIP1
	NewIPClient              = iplib.NewIPClient
	NewFactoryRegistry       = iplib.NewFactoryRegistry
	ConnectInProcess         = core.ConnectInProcess
	ConnectTCP               = core.ConnectTCP
	NewRemoteMult            = core.NewRemoteMult
	NewRemoteEstimator       = core.NewRemotePowerEstimator
	NewRemoteTimingEstimator = core.NewRemoteTimingEstimator
	NewEstimationCache       = core.NewEstimationCache
)

// Emulated network environments.
var (
	NetInProcess = netsim.InProcess
	NetLocal     = netsim.Local
	NetLAN       = netsim.LAN
	NetWAN       = netsim.WAN
)

// Wire codecs (DESIGN.md §12). The binary codec is the default; servers
// auto-detect the codec per connection, so mixed fleets interoperate.
type (
	// WireCodec selects a client connection's frame codec.
	WireCodec = rmi.Codec
	// CodecPolicy restricts which codecs a server accepts.
	CodecPolicy = rmi.CodecPolicy
)

// Wire codec values, parsers, and the connect option.
var (
	CodecBinary      = rmi.CodecBinary
	CodecGob         = rmi.CodecGob
	ParseCodec       = rmi.ParseCodec
	ParseCodecPolicy = rmi.ParseCodecPolicy
	WithCodec        = core.WithCodec
)

// Replication, failover & quorum (DESIGN.md §10).
type (
	// ReplicaSet holds equivalent provider endpoints behind health-gated
	// circuit breakers; its Dialer is the failover policy.
	ReplicaSet = replica.Set
	// ReplicaEndpoint is one named, dialable replica.
	ReplicaEndpoint = replica.Endpoint
	// BreakerConfig tunes the per-replica circuit breakers.
	BreakerConfig = replica.BreakerConfig
	// ReplicaStatus is a point-in-time snapshot of one replica's breaker
	// state and health record.
	ReplicaStatus = replica.Status
	// QuorumTestability answers testability queries by index-ordered
	// majority vote over K equivalent services.
	QuorumTestability = fault.QuorumTestability
	// ReplicaDivergence is one out-voted (or erroring) replica answer,
	// surfaced in fault-simulation results.
	ReplicaDivergence = fault.ReplicaDivergence
	// ChaosSchedule is a deterministic per-replica fault schedule for
	// failover testing.
	ChaosSchedule = netsim.ChaosSchedule
	// ChaosReplicaScript is one replica's scripted failure behavior.
	ChaosReplicaScript = netsim.ReplicaScript
)

// Replication constructors and the chaos harness.
var (
	ConnectReplicated    = core.ConnectReplicated
	NewReplicaSet        = replica.NewSet
	NewQuorumTestability = fault.NewQuorumTestability
	NewChaosSchedule     = netsim.NewChaosSchedule
	ScriptedChaos        = netsim.ScriptedSchedule
	AllDeadChaos         = netsim.AllDeadSchedule
)

// Experiment harnesses (the paper's evaluation).
type (
	// Scenario selects AL, ER or MR.
	Scenario = core.Scenario
	// ScenarioConfig parameterizes a performance run.
	ScenarioConfig = core.Config
	// ScenarioResult is one Table 2 row.
	ScenarioResult = core.Result
)

// The three scenarios.
const (
	AllLocal         = core.AllLocal
	EstimatorRemote  = core.EstimatorRemote
	MultiplierRemote = core.MultiplierRemote
)

// Experiment entry points.
var (
	RunScenario           = core.Run
	DefaultScenarioConfig = core.DefaultConfig
	RunTable1             = core.RunTable1
	RunTable2             = core.RunTable2
	RunFigure3            = core.RunFigure3
	RunFigure4            = core.RunFigure4
)

// Sharded execution (DESIGN.md §11): one design partitioned across N
// concurrent schedulers with deterministic cross-shard event exchange —
// results are bit-identical to the single-scheduler run at any N.
type (
	// ShardPlan is a validated partition of a circuit's leaf modules.
	ShardPlan = shard.Plan
	// ShardOptions parameterizes a sharded run (count, window, workers).
	ShardOptions = shard.Options
	// ShardStats summarizes a sharded run (barriers, solo turns, cut).
	ShardStats = shard.Stats
	// GenerateSpec sizes a seeded random hierarchical design.
	GenerateSpec = core.GenSpec
)

// Sharded-execution entry points.
var (
	PartitionCircuit    = shard.PartitionCircuit
	RunShardedCircuit   = shard.Run
	RunShardedScenario  = core.RunSharded
	GenerateCircuitRand = core.GenerateCircuitRand
)

// Sequential circuits and general fault models (the paper's "feasible
// extensions", implemented).
type (
	// Sequential is a synchronous circuit in Huffman form.
	Sequential = gate.Sequential
	// BridgeFault is a wired-AND bridging fault between two nets.
	BridgeFault = gate.Bridge
	// ScanPattern is one full-scan test (state + inputs).
	ScanPattern = fault.ScanPattern
)

// Sequential and bridging entry points.
var (
	NewSequential         = gate.NewSequential
	SequentialCounter     = gate.SequentialCounter
	ScanFaultSimulate     = fault.ScanSimulate
	RandomScanPatterns    = fault.RandomScanPatterns
	ScanPatternsRand      = fault.RandomScanPatternsRand
	BridgeFaultSimulate   = fault.SerialSimulateBridges
	EnumerateBridgeFaults = fault.EnumerateBridges
)

// Built-in activity-based estimators.
var (
	NewIOActivityEstimator = estim.NewIOActivity
	NewActivityPower       = estim.NewActivityPower
	NewPeakTracker         = estim.NewPeakTracker
)

// Related-work IP-protection baselines (for comparison with virtual
// simulation; see internal/watermark and internal/sealed).
var (
	WatermarkCapacity  = watermark.Capacity
	WatermarkEmbed     = watermark.Embed
	WatermarkExtract   = watermark.Extract
	WatermarkVerify    = watermark.Verify
	WatermarkSignature = watermark.SignatureFromString
	SealModel          = sealed.Seal
	OpenSealedModel    = sealed.Open
)

// SealedModel is an encrypted simulation model as shipped to a user.
type SealedModel = sealed.Model

// Waveform export.
var (
	NewVCD         = trace.NewVCD
	DumpVCDOutputs = trace.DumpOutputs
)

// ModelConstraint is one negotiation demand (see IPClient.Negotiate).
type ModelConstraint = iplib.ModelConstraint

// Design-rule checking and test generation.
type (
	// DesignIssue is one finding from ValidateDesign.
	DesignIssue = module.Issue
	// TestSet is a compacted component test sequence (purchasable from
	// providers via BoundInstance.TestSet).
	TestSet = fault.TestSet
)

// Design-rule and test-generation entry points.
var (
	ValidateDesign    = module.Validate
	DesignErrors      = module.Errors
	GenerateTests     = fault.GenerateTests
	GenerateTestsRand = fault.GenerateTestsRand
	C17               = gate.C17
)
