package core

import (
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/replica"
)

// frozenClock is the deterministic breaker time source of the chaos
// harness: time never advances, so an opened breaker stays open (the
// last-resort probe pass is the only way back) and the failover ladder
// is a pure function of the schedule.
func frozenClock() time.Time { return time.Unix(1, 0) }

// chaosCfg returns the chaos sweep's scenario configuration: small
// enough to sweep, aggressive breakers (one strike opens, frozen clock),
// full resilience so transient faults heal through reconnect + replay.
func chaosCfg(replicas, inflight int) Config {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 30
	cfg.InFlight = inflight
	r := DefaultResilience()
	cfg.Resilience = &r
	cfg.Replicas = replicas
	cfg.Breaker = replica.BreakerConfig{FailThreshold: 1, OpenFor: time.Hour}
	cfg.BreakerClock = frozenClock
	return cfg
}

// chaosDialers wraps each provider's pipe transport with a fresh seeded
// schedule — built inside the factory, so concurrent runs never share
// schedule state.
func chaosDialers(seed uint64) func(provs []*provider.Provider) []func() (net.Conn, error) {
	return func(provs []*provider.Provider) []func() (net.Conn, error) {
		cs := netsim.NewChaosSchedule(seed, len(provs))
		dials := make([]func() (net.Conn, error), len(provs))
		for i, p := range provs {
			dials[i] = cs.Dialer(i, PipeDialer(p))
		}
		return dials
	}
}

// assertSameRun compares the bit-exact outcome of a chaos run against
// the clean baseline: products, sample count, and every power value.
func assertSameRun(t *testing.T, base, got *Result) {
	t.Helper()
	if got.Power.Degraded {
		t.Fatal("run degraded despite a healthy replica in the schedule")
	}
	if got.Products != base.Products {
		t.Errorf("products %d, baseline %d", got.Products, base.Products)
	}
	if len(got.Power.Samples) != len(base.Power.Samples) {
		t.Fatalf("power samples %d, baseline %d", len(got.Power.Samples), len(base.Power.Samples))
	}
	for i := range base.Power.Samples {
		if got.Power.Samples[i] != base.Power.Samples[i] {
			t.Fatalf("power sample %d differs: %v vs baseline %v", i, got.Power.Samples[i], base.Power.Samples[i])
		}
	}
}

// TestChaosSweepBitIdentical is the tentpole's acceptance sweep: seeded
// fault schedules (kill, partition, slow-drip, flap) across replica
// counts, pipeline depths, and cache settings, every cell asserting the
// run heals through failover with results bit-identical to the clean
// single-provider baseline.
func TestChaosSweepBitIdentical(t *testing.T) {
	base, err := Run(EstimatorRemote, chaosCfg(1, 1))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if base.PowerSamples == 0 {
		t.Fatal("baseline produced no power samples; test premise broken")
	}
	for _, seed := range []uint64{1, 2, 3} {
		for _, replicas := range []int{2, 3} {
			for _, inflight := range []int{1, 8} {
				for _, cached := range []bool{false, true} {
					name := map[bool]string{false: "nocache", true: "cache"}[cached]
					t.Run(map[int]string{1: "depth1", 8: "depth8"}[inflight]+"/"+name, func(t *testing.T) {
						cfg := chaosCfg(replicas, inflight)
						cfg.Seed = int64(seed) // vary the stimulus with the schedule
						cfg.ReplicaDialers = chaosDialers(seed)
						if cached {
							cfg.Cache = NewEstimationCache()
						}
						baseCfg := chaosCfg(1, 1)
						baseCfg.Seed = int64(seed)
						b, err := Run(EstimatorRemote, baseCfg)
						if err != nil {
							t.Fatalf("seeded baseline: %v", err)
						}
						res, err := Run(EstimatorRemote, cfg)
						if err != nil {
							t.Fatalf("chaos run (seed %d, %d replicas): %v", seed, replicas, err)
						}
						assertSameRun(t, b, res)
					})
				}
			}
		}
	}
}

// TestChaosMultiplierRemote runs one chaos cell through the MR scenario,
// where every functional evaluation crosses the faulty transport too.
func TestChaosMultiplierRemote(t *testing.T) {
	base, err := Run(MultiplierRemote, chaosCfg(1, 1))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	cfg := chaosCfg(3, 8)
	cfg.ReplicaDialers = chaosDialers(2)
	res, err := Run(MultiplierRemote, cfg)
	if err != nil {
		t.Fatalf("chaos MR run: %v", err)
	}
	assertSameRun(t, base, res)
}

// TestChaosTable2Workers drives chaos cells through the parallel
// experiment path shape: the same chaos cell at 1 and 4 workers'
// worth of config must agree (each run builds its own providers and
// schedules, so runs are independent by construction).
func TestChaosTable2Workers(t *testing.T) {
	var prev *Result
	for _, workers := range []int{1, 4} {
		cfg := chaosCfg(2, 8)
		cfg.Workers = workers
		cfg.ReplicaDialers = chaosDialers(3)
		res, err := Run(EstimatorRemote, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if prev != nil {
			assertSameRun(t, prev, res)
		}
		prev = res
	}
}

// TestChaosFailoverObservable: a schedule that certainly kills the
// first-adopted replica must surface a nonzero failover count and a
// per-replica status snapshot.
func TestChaosFailoverObservable(t *testing.T) {
	cfg := chaosCfg(2, 8)
	cfg.ReplicaDialers = func(provs []*provider.Provider) []func() (net.Conn, error) {
		// Binary framing is one write per frame (hello + 8 requests in a
		// clean ER run), so the kill at write 5 lands mid-run.
		cs := netsim.ScriptedSchedule(1,
			netsim.ReplicaScript{Kind: netsim.ChaosKill, Plan: netsim.ResetAfterWrites(5), RefuseFrom: 1},
			netsim.ReplicaScript{Kind: netsim.ChaosNone, RefuseFrom: -1},
		)
		return []func() (net.Conn, error){
			cs.Dialer(0, PipeDialer(provs[0])),
			cs.Dialer(1, PipeDialer(provs[1])),
		}
	}
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers < 1 {
		t.Errorf("failovers = %d, want ≥ 1", res.Failovers)
	}
	if len(res.ReplicaStatuses) != 2 {
		t.Fatalf("replica statuses = %d entries, want 2", len(res.ReplicaStatuses))
	}
	if res.Power.Degraded {
		t.Fatal("failover to the healthy replica must not degrade the run")
	}
}

// TestChaosAllReplicasDead is the degradation half of the invariant:
// with every replica scripted dead the run must end in explicit,
// reported degradation — never a hang, an error, or silently full
// results.
func TestChaosAllReplicasDead(t *testing.T) {
	base, err := Run(EstimatorRemote, chaosCfg(1, 1))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	cfg := chaosCfg(2, 8)
	cfg.ReplicaDialers = func(provs []*provider.Provider) []func() (net.Conn, error) {
		// Replica 0 accepts once then dies mid-run and refuses redials;
		// replica 1 dies during any handshake and refuses redials.
		cs := netsim.ScriptedSchedule(-1,
			netsim.ReplicaScript{Kind: netsim.ChaosKill, Plan: netsim.ResetAfterWrites(5), RefuseFrom: 1},
			netsim.ReplicaScript{Kind: netsim.ChaosKill, Plan: netsim.ResetAfterWrites(1), RefuseFrom: 1},
		)
		return []func() (net.Conn, error){
			cs.Dialer(0, PipeDialer(provs[0])),
			cs.Dialer(1, PipeDialer(provs[1])),
		}
	}
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatalf("all-dead run must complete with degradation, got error: %v", err)
	}
	if !res.Power.Degraded {
		t.Fatal("all-dead run not marked degraded")
	}
	if res.Power.LostBatches < 1 {
		t.Errorf("lost batches = %d, want ≥ 1", res.Power.LostBatches)
	}
	if res.Products != base.Products {
		t.Errorf("products %d, baseline %d — the design must keep simulating", res.Products, base.Products)
	}
	if len(res.Power.Samples) >= len(base.Power.Samples) {
		t.Errorf("degraded run reports %d samples, baseline %d; partial results must be visible", len(res.Power.Samples), len(base.Power.Samples))
	}
}

// TestHedgedRunBitIdentical arms hedging against a primary whose early
// batch responses are scripted slow: the hedge replica answers first for
// at least one batch, and the recorded values are still bit-identical to
// the clean baseline (replicas are deterministic — whoever answers,
// the values match).
func TestHedgedRunBitIdentical(t *testing.T) {
	base, err := Run(EstimatorRemote, chaosCfg(1, 1))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	cfg := chaosCfg(2, 8)
	cfg.HedgeAfter = 2 * time.Millisecond
	cfg.ReplicaDialers = func(provs []*provider.Provider) []func() (net.Conn, error) {
		// Stall a swath of the primary's responses well past HedgeAfter so
		// some batch responses certainly arrive late.
		var rules []netsim.FaultRule
		for n := 3; n <= 14; n++ {
			rules = append(rules, netsim.FaultRule{Op: netsim.OnRead, Nth: n, Kind: netsim.FaultDelay, Delay: 30 * time.Millisecond})
		}
		slow := &netsim.FaultPlan{Rules: rules}
		cs := netsim.ScriptedSchedule(1,
			netsim.ReplicaScript{Kind: netsim.ChaosSlowDrip, Plan: slow, RefuseFrom: -1},
			netsim.ReplicaScript{Kind: netsim.ChaosNone, RefuseFrom: -1},
		)
		return []func() (net.Conn, error){
			cs.Dialer(0, PipeDialer(provs[0])),
			cs.Dialer(1, PipeDialer(provs[1])),
		}
	}
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, base, res)
	if res.HedgedBatches < 1 {
		t.Errorf("hedged batches = %d, want ≥ 1 (the scripted delays never tripped the hedge)", res.HedgedBatches)
	}
	if res.HedgeWins < 1 {
		t.Errorf("hedge wins = %d, want ≥ 1", res.HedgeWins)
	}
}
