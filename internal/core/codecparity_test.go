package core

import (
	"fmt"
	"testing"

	"repro/internal/rmi"
)

// TestCodecParityMatrix is the bit-identical guarantee of the binary
// wire codec: for every Table 2 scenario and across the transport and
// engine knobs that change wire traffic shape — pipeline depth,
// estimation cache, shard count, shard workers — a run under the binary
// codec must produce exactly the fingerprint of the same run under gob.
// The codec may change how bytes are framed, never what the simulation
// computes. `make lint` runs this matrix as a companion gate.
func TestCodecParityMatrix(t *testing.T) {
	scenarios := []struct {
		name     string
		scenario Scenario
	}{
		{"AL", AllLocal},
		{"ER", EstimatorRemote},
		{"MR", MultiplierRemote},
	}
	for _, sc := range scenarios {
		for _, depth := range []int{1, 8} {
			for _, cached := range []bool{false, true} {
				for _, shards := range []int{1, 4} {
					for _, workers := range []int{1, 0} {
						name := fmt.Sprintf("%s/depth=%d/cache=%v/shards=%d/workers=%d",
							sc.name, depth, cached, shards, workers)
						t.Run(name, func(t *testing.T) {
							prints := map[rmi.Codec]string{}
							for _, codec := range []rmi.Codec{rmi.CodecGob, rmi.CodecBinary} {
								cfg := smallConfig()
								cfg.Codec = codec
								cfg.InFlight = depth
								cfg.Shards = shards
								cfg.ShardWorkers = workers
								if cached {
									// A fresh cache per run: the parity claim covers the
									// cold-path traffic; cache state must not leak between
									// codecs.
									cfg.Cache = NewEstimationCache()
								}
								res, err := Run(sc.scenario, cfg)
								if err != nil {
									t.Fatalf("%v run: %v", codec, err)
								}
								prints[codec] = res.Fingerprint()
							}
							if prints[rmi.CodecBinary] != prints[rmi.CodecGob] {
								t.Errorf("codecs diverged\nbinary: %s\n   gob: %s",
									prints[rmi.CodecBinary], prints[rmi.CodecGob])
							}
						})
					}
				}
			}
		}
	}
}

// TestCodecParityWarmCache extends parity to the warm-cache wire path:
// a second run against an already-warmed shared cache serves estimation
// batches off the cache instead of the provider, and that reshaped
// traffic must still fingerprint identically under both codecs.
func TestCodecParityWarmCache(t *testing.T) {
	prints := map[rmi.Codec]string{}
	for _, codec := range []rmi.Codec{rmi.CodecGob, rmi.CodecBinary} {
		cfg := smallConfig()
		cfg.Codec = codec
		cfg.Cache = NewEstimationCache()
		if _, err := Run(EstimatorRemote, cfg); err != nil {
			t.Fatalf("%v warmup: %v", codec, err)
		}
		res, err := Run(EstimatorRemote, cfg)
		if err != nil {
			t.Fatalf("%v warm run: %v", codec, err)
		}
		prints[codec] = res.Fingerprint()
	}
	if prints[rmi.CodecBinary] != prints[rmi.CodecGob] {
		t.Errorf("warm-cache codecs diverged\nbinary: %s\n   gob: %s",
			prints[rmi.CodecBinary], prints[rmi.CodecGob])
	}
}
