package core

import (
	"net"

	"repro/internal/iplib"
	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/rmi"
	"repro/internal/security"
)

// Connection is one authenticated client session with a provider, plus
// its network accounting.
type Connection struct {
	Client *iplib.IPClient
	Meter  *netsim.Meter
	close  func()
}

// Close tears the session down.
func (c *Connection) Close() {
	if c.close != nil {
		c.close()
	}
}

// ConnectInProcess wires a client to a provider over an in-process pipe,
// running the full wire protocol (handshake, gob serialization,
// marshalling policy) with the given emulated network profile. This is
// the deployment the performance study uses: one host, real protocol,
// emulated transfer delays.
func ConnectInProcess(p *provider.Provider, clientName string, profile netsim.Profile) (*Connection, error) {
	key, err := security.NewKey()
	if err != nil {
		return nil, err
	}
	p.Authorize(clientName, key)
	a, b := net.Pipe()
	go p.Server.ServeConn(a)
	rpc, err := rmi.NewClient(b, clientName, key)
	if err != nil {
		a.Close()
		return nil, err
	}
	meter := &netsim.Meter{}
	rpc.Profile = profile
	rpc.Meter = meter
	return &Connection{
		Client: iplib.NewIPClient(rpc),
		Meter:  meter,
		close:  func() { rpc.Close() },
	}, nil
}

// ConnectTCP wires a client to a provider over real loopback TCP — used
// by the cmd/ tools when client and server run as separate processes.
func ConnectTCP(p *provider.Provider, clientName string, profile netsim.Profile) (*Connection, error) {
	key, err := security.NewKey()
	if err != nil {
		return nil, err
	}
	p.Authorize(clientName, key)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rpc, err := rmi.Dial(addr, clientName, key)
	if err != nil {
		return nil, err
	}
	meter := &netsim.Meter{}
	rpc.Profile = profile
	rpc.Meter = meter
	return &Connection{
		Client: iplib.NewIPClient(rpc),
		Meter:  meter,
		close:  func() { rpc.Close() },
	}, nil
}
