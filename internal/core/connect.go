package core

import (
	"fmt"
	"net"
	"time"

	"repro/internal/iplib"
	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/replica"
	"repro/internal/rmi"
	"repro/internal/security"
)

// Connection is one authenticated client session with a provider, plus
// its network accounting.
type Connection struct {
	Client *iplib.IPClient
	Meter  *netsim.Meter
	close  func() error
}

// Close tears the session down and reports any transport teardown
// failure (already-dead links close cleanly).
func (c *Connection) Close() error {
	if c.close != nil {
		return c.close()
	}
	return nil
}

// Resilience bundles the transport-resilience knobs of a provider
// session: per-call deadlines, backoff retry for idempotent calls, and
// session recovery (automatic reconnect with bind/batch replay).
type Resilience struct {
	// Timeout bounds each call attempt and reconnect handshake.
	Timeout time.Duration
	// Retry is the backoff policy for idempotent calls.
	Retry rmi.RetryPolicy
	// Recover arms the session journal: after a reconnect, binds and
	// estimation batches are replayed so results match a fault-free run.
	Recover bool
}

// DefaultResilience returns production-shaped settings: 2s deadlines,
// four attempts, full session recovery.
func DefaultResilience() Resilience {
	return Resilience{Timeout: 2 * time.Second, Retry: rmi.DefaultRetry, Recover: true}
}

// Harden applies the resilience settings to the session's RPC client.
func (c *Connection) Harden(r Resilience) {
	c.Client.RPC.Timeout = r.Timeout
	c.Client.RPC.Retry = r.Retry
	if r.Recover {
		c.Client.EnableRecovery()
	}
}

// ConnectOption adjusts how a Connection is established.
type ConnectOption func(*connectConfig)

type connectConfig struct {
	codec rmi.Codec
}

func applyConnectOptions(opts []ConnectOption) connectConfig {
	var cfg connectConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithCodec selects the wire codec of the session (the zero value is the
// binary codec; rmi.CodecGob keeps the legacy gob framing). The server
// side auto-detects per connection, so the option only steers the
// client.
func WithCodec(c rmi.Codec) ConnectOption {
	return func(cfg *connectConfig) { cfg.codec = c }
}

// PipeDialer returns a dial function that opens an in-process pipe to
// the provider's server — the loopback transport of the performance
// study, also usable as a redial target for reconnect tests.
func PipeDialer(p *provider.Provider) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		go p.Server.ServeConn(a)
		return b, nil
	}
}

// ConnectInProcess wires a client to a provider over an in-process pipe,
// running the full wire protocol (handshake, frame codec, marshalling
// policy) with the given emulated network profile. This is
// the deployment the performance study uses: one host, real protocol,
// emulated transfer delays.
func ConnectInProcess(p *provider.Provider, clientName string, profile netsim.Profile, opts ...ConnectOption) (*Connection, error) {
	return ConnectVia(p, clientName, profile, PipeDialer(p), opts...)
}

// ConnectVia wires a client to a provider through an arbitrary dial
// function — fault-injection tests interpose netsim.FaultyDialer here.
// The dialer is also installed as the client's Redial, so a broken
// connection heals on the next call (session state is re-established
// only when recovery is armed via Harden).
func ConnectVia(p *provider.Provider, clientName string, profile netsim.Profile, dial func() (net.Conn, error), opts ...ConnectOption) (*Connection, error) {
	cfg := applyConnectOptions(opts)
	key, err := security.NewKey()
	if err != nil {
		return nil, err
	}
	p.Authorize(clientName, key)
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	rpc, err := rmi.NewClientWith(conn, clientName, key, rmi.Config{Codec: cfg.codec})
	if err != nil {
		return nil, err
	}
	rpc.Redial = dial
	meter := &netsim.Meter{}
	rpc.Profile = profile
	rpc.Meter = meter
	return &Connection{
		Client: iplib.NewIPClient(rpc),
		Meter:  meter,
		close:  rpc.Close,
	}, nil
}

// ConnectReplicated wires a client to a SET of equivalent providers
// behind health-gated failover: one session key is authorized on every
// replica, the replica set picks the endpoint (circuit breakers plus a
// last-resort probe pass), and the rmi client's redial, per-attempt, and
// epoch-failure seams are wired into the set so a poisoned epoch charges
// the dead replica's breaker and the journal replay lands on the next
// healthy one. dials[i] is replica i's transport (chaos tests interpose
// scripted fault dialers); brCfg and clock tune the breakers (zero
// values and nil clock use production defaults).
func ConnectReplicated(ps []*provider.Provider, clientName string, profile netsim.Profile, dials []func() (net.Conn, error), brCfg replica.BreakerConfig, clock replica.Clock, opts ...ConnectOption) (*Connection, *replica.Set, error) {
	cfg := applyConnectOptions(opts)
	if len(ps) == 0 || len(ps) != len(dials) {
		return nil, nil, fmt.Errorf("core: %d providers with %d dialers", len(ps), len(dials))
	}
	key, err := security.NewKey()
	if err != nil {
		return nil, nil, err
	}
	eps := make([]replica.Endpoint, len(ps))
	for i, p := range ps {
		p.Authorize(clientName, key)
		eps[i] = replica.Endpoint{Name: fmt.Sprintf("replica%d", i), Dial: dials[i]}
	}
	set, err := replica.NewSet(brCfg, clock, eps...)
	if err != nil {
		return nil, nil, err
	}
	// The initial handshake gets one shot per replica: a replica whose
	// transport dies mid-handshake is charged (opening its breaker at
	// aggressive test settings) and the next one is tried.
	dial := set.Dialer()
	var rpc *rmi.Client
	for attempt := 0; ; attempt++ {
		conn, err := dial()
		if err != nil {
			return nil, nil, err
		}
		rpc, err = rmi.NewClientWith(conn, clientName, key, rmi.Config{Codec: cfg.codec})
		if err == nil {
			break
		}
		set.ObserveEpochFail(err)
		if attempt >= set.Size() {
			return nil, nil, err
		}
	}
	rpc.Redial = dial
	rpc.OnAttempt = set.ObserveAttempt
	rpc.OnEpochFail = set.ObserveEpochFail
	meter := &netsim.Meter{}
	set.OnFailover = func(from, to int) { meter.AddFailover() }
	rpc.Profile = profile
	rpc.Meter = meter
	return &Connection{
		Client: iplib.NewIPClient(rpc),
		Meter:  meter,
		close:  rpc.Close,
	}, set, nil
}

// ConnectTCP wires a client to a provider over real loopback TCP — used
// by the cmd/ tools when client and server run as separate processes.
func ConnectTCP(p *provider.Provider, clientName string, profile netsim.Profile, opts ...ConnectOption) (*Connection, error) {
	cfg := applyConnectOptions(opts)
	key, err := security.NewKey()
	if err != nil {
		return nil, err
	}
	p.Authorize(clientName, key)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rpc, err := rmi.DialWith(addr, clientName, key, rmi.Config{Codec: cfg.codec})
	if err != nil {
		return nil, err
	}
	meter := &netsim.Meter{}
	rpc.Profile = profile
	rpc.Meter = meter
	return &Connection{
		Client: iplib.NewIPClient(rpc),
		Meter:  meter,
		close:  rpc.Close,
	}, nil
}
