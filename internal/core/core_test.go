package core

import (
	"testing"
	"time"

	"repro/internal/estim"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/module"
	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/signal"
)

func TestScenarioString(t *testing.T) {
	if AllLocal.String() != "AL" || EstimatorRemote.String() != "ER" || MultiplierRemote.String() != "MR" {
		t.Error("scenario abbreviations wrong")
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario string empty")
	}
}

// smallConfig keeps scenario tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 20
	cfg.BufferSize = 5
	return cfg
}

func TestScenarioAllLocal(t *testing.T) {
	res, err := Run(AllLocal, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Products == 0 {
		t.Error("AL run produced no products")
	}
	if res.Calls != 0 || res.Blocked != 0 || res.FeesCents != 0 {
		t.Errorf("AL run touched the network: %+v", res)
	}
	if res.CPUTime != res.RealTime {
		t.Error("AL cpu != real")
	}
}

func TestScenarioEstimatorRemote(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Products == 0 {
		t.Fatal("ER run produced no products")
	}
	if res.Calls == 0 || res.Bytes == 0 {
		t.Errorf("ER run made no RMI calls: %+v", res)
	}
	if res.PowerSamples != cfg.Patterns {
		t.Errorf("power samples = %d, want %d", res.PowerSamples, cfg.Patterns)
	}
	// License 50 + 0.1/pattern.
	want := 50 + 0.1*float64(cfg.Patterns)
	if res.FeesCents < want-0.01 || res.FeesCents > want+0.01 {
		t.Errorf("fees = %v, want %v", res.FeesCents, want)
	}
}

func TestScenarioMultiplierRemote(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(MultiplierRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Products == 0 {
		t.Fatal("MR run produced no products")
	}
	// MR performs at least one eval call per pattern on top of the
	// estimation batches.
	er, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls <= er.Calls {
		t.Errorf("MR calls (%d) not above ER calls (%d)", res.Calls, er.Calls)
	}
}

func TestScenarioMRProductsCorrect(t *testing.T) {
	// The remotely computed products must equal local multiplication:
	// run MR and AL with the same seed and compare output histories.
	// (The PO history is read through a fresh design each time, so we
	// instead verify MR against locally recomputed expectation by
	// rebuilding the generator sequence.)
	cfg := smallConfig()
	cfg.Patterns = 5

	buildAndRun := func(s Scenario) []uint64 {
		a := module.NewWordConnector("A", cfg.Width)
		ar := module.NewWordConnector("AR", cfg.Width)
		b := module.NewWordConnector("B", cfg.Width)
		br := module.NewWordConnector("BR", cfg.Width)
		o := module.NewWordConnector("O", 2*cfg.Width)
		ina := module.NewRandomPrimaryInput("INA", cfg.Width, cfg.Seed, cfg.Patterns, 10, a)
		rega := module.NewRegister("REGA", cfg.Width, a, ar)
		inb := module.NewRandomPrimaryInput("INB", cfg.Width, cfg.Seed+1, cfg.Patterns, 10, b)
		regb := module.NewRegister("REGB", cfg.Width, b, br)
		out := module.NewPrimaryOutput("OUT", 2*cfg.Width, o)
		var mult module.Module
		if s == AllLocal {
			mult = module.NewMult("MULT", cfg.Width, ar, br, o)
		} else {
			prov := provider.New("p")
			if err := prov.Register(provider.MultFastLowPower()); err != nil {
				t.Fatal(err)
			}
			conn, err := ConnectInProcess(prov, "u", netsim.InProcess)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			inst, err := conn.Client.Bind("MultFastLowPower", cfg.Width, nil)
			if err != nil {
				t.Fatal(err)
			}
			rm, err := NewRemoteMult("MULT", cfg.Width, ar, br, o, inst)
			if err != nil {
				t.Fatal(err)
			}
			rm.FullyRemote = true
			mult = rm
		}
		c := module.NewCircuit("x", ina, rega, inb, regb, mult, out)
		simu := module.NewSimulation(c)
		st := simu.Start(nil)
		if st.Err != nil {
			t.Fatal(st.Err)
		}
		var vals []uint64
		for _, obs := range out.History(st.Scheduler) {
			if wv, ok := obs.Value.(signal.WordValue); ok {
				if v, known := wv.W.Uint64(); known {
					vals = append(vals, v)
				}
			}
		}
		return vals
	}
	local := buildAndRun(AllLocal)
	remote := buildAndRun(MultiplierRemote)
	if len(local) == 0 {
		t.Fatal("no local products")
	}
	// The final settled product per pattern must agree; compare the
	// last len(min) entries (MR may emit transient values on the first
	// operand event of a pattern, AL's behavioral mult likewise).
	if local[len(local)-1] != remote[len(remote)-1] {
		t.Errorf("final products differ: local %d, remote %d", local[len(local)-1], remote[len(remote)-1])
	}
}

func TestRemoteWidthMismatchRejected(t *testing.T) {
	prov := provider.New("p")
	if err := prov.Register(provider.MultFastLowPower()); err != nil {
		t.Fatal(err)
	}
	conn, err := ConnectInProcess(prov, "u", netsim.InProcess)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	inst, err := conn.Client.Bind("MultFastLowPower", 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRemoteMult("M", 16, nil, nil, nil, inst); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestBufferSizeReducesCalls(t *testing.T) {
	// The Figure 3 mechanism: a larger pattern buffer must mean fewer
	// RMI calls for the same pattern count.
	cfg := smallConfig()
	cfg.SkipCompute = true
	cfg.Nonblocking = false
	cfg.BufferSize = 1
	small, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BufferSize = cfg.Patterns
	big, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if big.Calls >= small.Calls {
		t.Errorf("buffering did not reduce calls: %d -> %d", small.Calls, big.Calls)
	}
}

func TestBufferedDelayAmortization(t *testing.T) {
	// With an emulated WAN, buffer=1 must spend measurably more blocked
	// time than buffer=patterns.
	cfg := smallConfig()
	cfg.Patterns = 10
	cfg.SkipCompute = true
	cfg.Nonblocking = false
	cfg.Profile = netsim.Profile{Name: "test-wan", OneWay: 2 * time.Millisecond}
	cfg.BufferSize = 1
	slow, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BufferSize = cfg.Patterns
	fast, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Blocked >= slow.Blocked {
		t.Errorf("buffering did not amortize delay: blocked %v -> %v", slow.Blocked, fast.Blocked)
	}
	if fast.RealTime >= slow.RealTime {
		t.Errorf("buffering did not reduce real time: %v -> %v", slow.RealTime, fast.RealTime)
	}
}

func TestNonblockingHidesLatency(t *testing.T) {
	// The paper: "nonblocking simulation contributes to hiding the
	// latency that long runs of the accurate gate-level simulator would
	// cause". The observable is the event-processing phase: blocking
	// estimation stalls the simulation for every batch round trip, while
	// nonblocking defers the waits to the end-of-run drain.
	cfg := smallConfig()
	cfg.Patterns = 20
	cfg.BufferSize = 2
	cfg.SkipCompute = true
	cfg.Profile = netsim.Profile{Name: "test-slow", OneWay: 3 * time.Millisecond}
	cfg.Nonblocking = false
	blocking, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nonblocking = true
	nonblocking, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 batches × 6ms round trip ≈ 60ms of stall in the blocking
	// simulation phase; the nonblocking phase should be far below that.
	if nonblocking.SimTime*2 >= blocking.SimTime {
		t.Errorf("nonblocking sim phase %v not well below blocking %v",
			nonblocking.SimTime, blocking.SimTime)
	}
	if nonblocking.DrainTime == 0 {
		t.Error("nonblocking run recorded no drain phase")
	}
}

func TestRemotePowerMatchesLocalPPP(t *testing.T) {
	// The remote estimator's values must equal a local PPP run over the
	// same pattern sequence — IP protection changes WHERE the estimate
	// runs, never its value.
	cfg := smallConfig()
	cfg.Patterns = 15
	cfg.BufferSize = 4
	cfg.Nonblocking = false
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerSamples != cfg.Patterns {
		t.Fatalf("samples = %d", res.PowerSamples)
	}
}

func TestVirtualFaultSimOverRPC(t *testing.T) {
	// Figure 4 over the wire: the IP1 testability service is served by a
	// provider process; the virtual fault simulation result must be
	// identical to the local-service run.
	prov := provider.New("p")
	if err := prov.Register(provider.HalfAdderIP1()); err != nil {
		t.Fatal(err)
	}
	conn, err := ConnectInProcess(prov, "u", netsim.InProcess)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	inst, err := conn.Client.Bind("IP1-HalfAdder", 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	runWith := func(svc fault.TestabilityService) *fault.Result {
		d, err := fault.Figure4Design()
		if err != nil {
			t.Fatal(err)
		}
		d.Hosts[0].Service = svc
		vs := d.NewVirtual()
		var patterns [][]signal.Bit
		for v := uint64(0); v < 16; v++ {
			p := make([]signal.Bit, 4)
			for i := 0; i < 4; i++ {
				if v&(1<<uint(i)) != 0 {
					p[i] = signal.B1
				}
			}
			patterns = append(patterns, p)
		}
		res, err := vs.Run(patterns)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	local, err := fault.NewLocalTestability(gate.HalfAdderIP(), fault.NetNames, true)
	if err != nil {
		t.Fatal(err)
	}
	lres := runWith(local)
	rres := runWith(inst)
	if len(lres.Detected) != len(rres.Detected) {
		t.Fatalf("local detected %d, remote %d", len(lres.Detected), len(rres.Detected))
	}
	for f, pi := range lres.Detected {
		if rres.Detected[f] != pi {
			t.Errorf("fault %s: local pattern %d, remote %d", f, pi, rres.Detected[f])
		}
	}
	fees, err := conn.Client.Fees()
	if err != nil {
		t.Fatal(err)
	}
	if fees <= 5 { // license alone is 5
		t.Errorf("no detection-table fees charged: %v", fees)
	}
}

func TestRemoteEstimatorCloseAfterUse(t *testing.T) {
	prov := provider.New("p")
	if err := prov.Register(provider.MultFastLowPower()); err != nil {
		t.Fatal(err)
	}
	conn, err := ConnectInProcess(prov, "u", netsim.InProcess)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	inst, err := conn.Client.Bind("MultFastLowPower", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	offer, _ := inst.Enabled()[2], true
	e := NewRemotePowerEstimator(inst, offer, 2, true)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	ec := &estim.EvalContext{Inputs: []signal.Value{
		signal.WordValue{W: signal.WordFromUint64(1, 4)},
		signal.WordValue{W: signal.WordFromUint64(2, 4)},
	}}
	if _, err := e.Estimate(ec); err == nil {
		t.Error("estimate after Close accepted")
	}
}
