package core

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/signal"
)

// cacheKey is a content-addressed identity: the SHA-256 of an estimation
// setup and the full pattern history up to (and including) one pattern.
type cacheKey [sha256.Size]byte

// EstimationCache is a client-side content-addressed cache of remote
// per-pattern estimation results. The provider's accurate estimators are
// STATEFUL — a pattern's power depends on the pattern history driven
// into the instance — so entries are not keyed by the pattern alone but
// by a rolling hash chain over (method, setup fingerprint, every pattern
// since bind). Two runs that drive the same stimulus into the same
// component therefore address the same entries, regardless of how their
// buffers batch the stream, while any divergence in history changes
// every subsequent key and can never alias.
//
// A cache is safe for concurrent use and meant to be SHARED — across the
// Table 2 grid cells (same seed, three network profiles), across
// repeated Figure 3 sweeps, across processes of one design session via
// whatever scope the caller wires it into. Repeat batches short-circuit
// locally: no wire traffic, no provider fee, identical values.
type EstimationCache struct {
	mu     sync.Mutex
	values map[cacheKey]float64

	hits   atomic.Int64
	misses atomic.Int64
	saved  atomic.Int64
}

// NewEstimationCache returns an empty cache.
func NewEstimationCache() *EstimationCache {
	return &EstimationCache{values: make(map[cacheKey]float64)}
}

// Hits returns the number of batches served locally.
func (c *EstimationCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of batch lookups that went remote.
func (c *EstimationCache) Misses() int64 { return c.misses.Load() }

// BytesSaved returns the approximate request bytes kept off the wire.
func (c *EstimationCache) BytesSaved() int64 { return c.saved.Load() }

// Size returns the number of cached per-pattern values.
func (c *EstimationCache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.values)
}

// commit stores per-pattern values under their chain keys.
func (c *EstimationCache) commit(keys []cacheKey, vals []float64) {
	if len(keys) != len(vals) {
		return // provider returned an unexpected shape; cache nothing
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, k := range keys {
		c.values[k] = vals[i]
	}
}

// chainNext absorbs one pattern into the rolling history hash.
func chainNext(chain cacheKey, pattern []signal.Bit) cacheKey {
	h := sha256.New()
	h.Write(chain[:])
	b := make([]byte, len(pattern))
	for i, bit := range pattern {
		b[i] = byte(bit)
	}
	h.Write(b)
	var out cacheKey
	h.Sum(out[:0])
	return out
}

// cacheSession is one estimator's view of a shared EstimationCache: the
// rolling chain over its own pattern history, plus the patterns already
// answered from the cache that the provider has not yet executed. A
// session is used serially by its estimator's dispatch path.
type cacheSession struct {
	cache *EstimationCache
	chain cacheKey
	// replay holds cache-hit patterns the provider never saw. The
	// provider's simulator state must track the full history for
	// later-miss values to be right, so the next miss transmits these as
	// a catch-up prefix (results discarded) ahead of the new batch.
	replay [][]signal.Bit
}

// newSession opens a session whose chain is seeded with the estimation
// setup fingerprint (method, component, estimator, width).
func (c *EstimationCache) newSession(fingerprint string) *cacheSession {
	return &cacheSession{cache: c, chain: sha256.Sum256([]byte(fingerprint))}
}

// lookup advances the chain through batch and reports whether EVERY
// pattern's value is cached (all-or-nothing: partial hits still pay the
// round trip, and the full batch is transmitted for provider-state
// consistency). The returned keys address the batch's patterns for a
// later commit. On a hit the batch joins the replay debt.
func (s *cacheSession) lookup(batch [][]signal.Bit) (vals []float64, keys []cacheKey, hit bool) {
	keys = make([]cacheKey, len(batch))
	ch := s.chain
	for i, p := range batch {
		ch = chainNext(ch, p)
		keys[i] = ch
	}
	s.chain = ch
	vals = make([]float64, len(batch))
	hit = true
	s.cache.mu.Lock()
	for i, k := range keys {
		v, ok := s.cache.values[k]
		if !ok {
			hit = false
			break
		}
		vals[i] = v
	}
	s.cache.mu.Unlock()
	if !hit {
		return nil, keys, false
	}
	s.replay = append(s.replay, batch...)
	return vals, keys, true
}

// takeReplay returns and clears the catch-up debt.
func (s *cacheSession) takeReplay() [][]signal.Bit {
	r := s.replay
	s.replay = nil
	return r
}
