package core

import (
	"net"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/signal"
)

func pat(bits ...signal.Bit) []signal.Bit { return bits }

// TestEstimationCacheChainKeys pins the content-addressing contract:
// identical histories produce identical keys, and any divergence — a
// different pattern, or the same pattern after a different prefix —
// changes every subsequent key.
func TestEstimationCacheChainKeys(t *testing.T) {
	c := NewEstimationCache()
	a := c.newSession("fp")
	b := c.newSession("fp")
	_, ka, _ := a.lookup([][]signal.Bit{pat(signal.B0), pat(signal.B1)})
	_, kb, _ := b.lookup([][]signal.Bit{pat(signal.B0), pat(signal.B1)})
	if !reflect.DeepEqual(ka, kb) {
		t.Error("identical histories produced different keys")
	}

	// Same second pattern behind a different first one: its key must differ.
	d := c.newSession("fp")
	_, kd, _ := d.lookup([][]signal.Bit{pat(signal.B1), pat(signal.B1)})
	if kd[1] == ka[1] {
		t.Error("history divergence did not change the later key")
	}

	// A different setup fingerprint must not alias even on equal stimulus.
	e := c.newSession("other")
	_, ke, _ := e.lookup([][]signal.Bit{pat(signal.B0), pat(signal.B1)})
	if ke[0] == ka[0] {
		t.Error("different fingerprints aliased")
	}
}

// TestEstimationCacheHitAndReplayDebt walks the miss→commit→hit cycle:
// a committed batch is served locally by a later session with the same
// history, and the served patterns accumulate as replay debt for the
// next miss to transmit.
func TestEstimationCacheHitAndReplayDebt(t *testing.T) {
	c := NewEstimationCache()
	batch := [][]signal.Bit{pat(signal.B0, signal.B1), pat(signal.B1, signal.B1)}

	s1 := c.newSession("fp")
	if _, keys, hit := s1.lookup(batch); hit {
		t.Fatal("empty cache reported a hit")
	} else {
		c.commit(keys, []float64{1.5, 2.5})
	}
	if c.Size() != 2 {
		t.Fatalf("cache size = %d, want 2", c.Size())
	}

	s2 := c.newSession("fp")
	vals, _, hit := s2.lookup(batch)
	if !hit {
		t.Fatal("committed batch missed")
	}
	if vals[0] != 1.5 || vals[1] != 2.5 {
		t.Errorf("hit values = %v", vals)
	}
	if got := s2.takeReplay(); len(got) != 2 {
		t.Errorf("replay debt = %d patterns, want 2", len(got))
	}
	if got := s2.takeReplay(); len(got) != 0 {
		t.Error("replay debt not cleared by take")
	}

	// Partial coverage is all-or-nothing: extending the history past the
	// cached prefix must miss the whole batch.
	s3 := c.newSession("fp")
	long := append(append([][]signal.Bit{}, batch...), pat(signal.B0, signal.B0))
	if _, _, hit := s3.lookup(long); hit {
		t.Error("partially cached batch reported a full hit")
	}
}

// TestEstimationCacheCommitShapeMismatch: a provider reply of the wrong
// length must cache nothing rather than mis-associate values.
func TestEstimationCacheCommitShapeMismatch(t *testing.T) {
	c := NewEstimationCache()
	s := c.newSession("fp")
	_, keys, _ := s.lookup([][]signal.Bit{pat(signal.B0), pat(signal.B1)})
	c.commit(keys, []float64{1})
	if c.Size() != 0 {
		t.Errorf("mismatched commit cached %d values", c.Size())
	}
}

// scenarioSamples runs one ER scenario and returns its power samples.
func scenarioSamples(t *testing.T, cfg Config) (*Result, []float64) {
	t.Helper()
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Power == nil || len(res.Power.Samples) == 0 {
		t.Fatal("scenario produced no power samples")
	}
	return res, res.Power.Samples
}

// TestScenarioDeterministicAcrossDepths is the pipelining half of the
// determinism contract: the ER scenario's power values and product count
// must be bit-identical whether the transport runs stop-and-wait
// (depth 1) or deeply pipelined.
func TestScenarioDeterministicAcrossDepths(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 20
	cfg.InFlight = 1
	ref, refSamples := scenarioSamples(t, cfg)
	for _, depth := range []int{8, 32} {
		cfg.InFlight = depth
		res, samples := scenarioSamples(t, cfg)
		if !reflect.DeepEqual(refSamples, samples) {
			t.Errorf("depth %d: samples diverged from depth 1", depth)
		}
		if res.Products != ref.Products {
			t.Errorf("depth %d: products = %d, want %d", depth, res.Products, ref.Products)
		}
	}
}

// TestScenarioCacheHitsAndDeterminism is the caching half: a repeated
// run against a shared cache must serve batches locally (observable hit
// counters, fewer RMI calls, bytes saved) while returning bit-identical
// power values.
func TestScenarioCacheHitsAndDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 20
	_, plainSamples := scenarioSamples(t, cfg)

	cache := NewEstimationCache()
	cfg.Cache = cache
	cold, coldSamples := scenarioSamples(t, cfg)
	if cold.CacheHits != 0 {
		t.Errorf("cold run reported %d cache hits", cold.CacheHits)
	}
	if cold.CacheMisses == 0 {
		t.Error("cold run metered no cache misses")
	}
	if !reflect.DeepEqual(plainSamples, coldSamples) {
		t.Error("enabling the cache changed the cold run's values")
	}

	warm, warmSamples := scenarioSamples(t, cfg)
	if warm.CacheHits == 0 {
		t.Fatal("repeat run produced no cache hits")
	}
	if warm.CacheBytesSaved == 0 {
		t.Error("cache hits saved no bytes")
	}
	if warm.Calls >= cold.Calls {
		t.Errorf("repeat run made %d calls, cold made %d; hits did not stay off the wire", warm.Calls, cold.Calls)
	}
	if !reflect.DeepEqual(plainSamples, warmSamples) {
		t.Error("cache-served values diverged from remote values")
	}
	if warm.Power.CacheHits != warm.CacheHits {
		t.Errorf("report hits %d != meter hits %d", warm.Power.CacheHits, warm.CacheHits)
	}
	if cache.Hits() == 0 || cache.BytesSaved() == 0 {
		t.Errorf("shared cache counters: hits=%d saved=%d", cache.Hits(), cache.BytesSaved())
	}
}

// failoverCacheCfg returns a 2-replica ER configuration whose first
// replica dies mid-run (connection reset after resetAfter writes,
// redials refused), forcing a failover the rmi layer heals through
// reconnect + journal replay.
func failoverCacheCfg(t *testing.T, cache *EstimationCache, resetAfter int) Config {
	t.Helper()
	cfg := chaosCfg(2, 8)
	cfg.Cache = cache
	cfg.ReplicaDialers = func(provs []*provider.Provider) []func() (net.Conn, error) {
		cs := netsim.ScriptedSchedule(1,
			netsim.ReplicaScript{Kind: netsim.ChaosKill, Plan: netsim.ResetAfterWrites(resetAfter), RefuseFrom: 1},
			netsim.ReplicaScript{Kind: netsim.ChaosNone, RefuseFrom: -1},
		)
		return []func() (net.Conn, error){
			cs.Dialer(0, PipeDialer(provs[0])),
			cs.Dialer(1, PipeDialer(provs[1])),
		}
	}
	return cfg
}

// TestCacheStaysArmedAcrossHealedFailover is the latched-off regression
// contract from the failover work: transport faults the rmi layer HEALS
// (retry, reconnect, journal replay, replica failover) never reach the
// estimator as batch errors, so the cache must stay armed — observable
// as commits landing after the failover. Only an unhealable loss (a
// batch that actually died) may latch the cache off.
func TestCacheStaysArmedAcrossHealedFailover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 30
	_, plainSamples := scenarioSamples(t, cfg)

	cache := NewEstimationCache()
	res, coldSamples := scenarioSamples(t, failoverCacheCfg(t, cache, 5))
	if res.Failovers < 1 {
		t.Fatalf("failovers = %d; the scripted kill never forced one", res.Failovers)
	}
	if res.Power.Degraded {
		t.Fatal("healed failover degraded the run")
	}
	if !reflect.DeepEqual(plainSamples, coldSamples) {
		t.Error("failover run's values diverged from the clean run")
	}
	// The armed-cache proof: commits landed after the failover too.
	if cache.Size() != cfg.Patterns {
		t.Errorf("cache holds %d values after the run, want %d — a healed failover latched it off", cache.Size(), cfg.Patterns)
	}

	// And the populated cache serves a clean repeat run bit-identically.
	repeatCfg := cfg
	repeatCfg.Cache = cache
	repeat, repeatSamples := scenarioSamples(t, repeatCfg)
	if repeat.CacheHits == 0 {
		t.Fatal("repeat run on the failover-populated cache produced no hits")
	}
	if !reflect.DeepEqual(plainSamples, repeatSamples) {
		t.Error("cache populated across a failover served diverged values")
	}
}

// TestWarmCacheReplayDebtSurvivesFailover drives a WARM cache through a
// mid-run failover: early batches hit locally (accumulating replay
// debt), the connection dies, and the journal replay — which carries
// only transmitted batches — must still leave the provider's history
// consistent with the debt-carrying stream. Values must stay
// bit-identical and further commits remain sound.
func TestWarmCacheReplayDebtSurvivesFailover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 30
	_, plainSamples := scenarioSamples(t, cfg)

	// Warm the cache with a clean run over HALF the stimulus: the pattern
	// stream is seeded, so the short run's history is a strict prefix of
	// the long run's, and the failover run opens on cache hits (building
	// replay debt) before its first real transmission — which the scripted
	// kill then interrupts mid-flight, debt and all.
	cache := NewEstimationCache()
	warmCfg := cfg
	warmCfg.Patterns = cfg.Patterns / 2
	warmCfg.Cache = cache
	scenarioSamples(t, warmCfg)
	if cache.Size() != warmCfg.Patterns {
		t.Fatalf("warm-up cached %d values, want %d", cache.Size(), warmCfg.Patterns)
	}

	// Most of the warm run's traffic is served from cache, so the kill
	// must land early in write terms: handshake plus the first replayed
	// transmission already clear five writes.
	res, samples := scenarioSamples(t, failoverCacheCfg(t, cache, 5))
	if res.Failovers < 1 {
		t.Fatalf("failovers = %d; the scripted kill never forced one", res.Failovers)
	}
	if res.CacheHits == 0 || res.CacheMisses == 0 {
		t.Fatalf("test premise broken: hits=%d misses=%d, want both nonzero", res.CacheHits, res.CacheMisses)
	}
	if !reflect.DeepEqual(plainSamples, samples) {
		t.Error("warm-cache failover run diverged from the clean run")
	}
	if cache.Size() != cfg.Patterns {
		t.Errorf("cache holds %d values, want %d refilled", cache.Size(), cfg.Patterns)
	}
}

// TestCacheLatchesOffOnLostBatch pins the other half of the contract:
// when a transmitted batch is genuinely LOST (provider declared dead),
// the provider-side history chain has irrecoverably diverged, so the
// latch is permanent and nothing from the broken run commits.
func TestCacheLatchesOffOnLostBatch(t *testing.T) {
	cache := NewEstimationCache()
	cfg := resilientCfg()
	r := DefaultResilience()
	cfg.Resilience = &r
	cfg.Cache = cache
	_, via := faultDialer([]*netsim.FaultPlan{
		netsim.ResetAfterWrites(9),
		netsim.ResetAfterWrites(1),
		netsim.ResetAfterWrites(1),
		netsim.ResetAfterWrites(1),
	})
	cfg.DialVia = via
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Power.Degraded {
		t.Fatal("test premise broken: run did not lose its provider")
	}
	// Nothing after the lost batch may commit. Values cached before the
	// loss are fine — their histories were truly executed.
	if cache.Size() >= cfg.Patterns {
		t.Errorf("cache holds %d values after a lost batch, want fewer than %d", cache.Size(), cfg.Patterns)
	}
}

// TestScenarioCacheSkipComputeBypassed: the Figure 3 methodology asks
// the provider to skip the power simulator, so its meaningless values
// must never be cached or served.
func TestScenarioCacheSkipComputeBypassed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 10
	cfg.SkipCompute = true
	cfg.Cache = NewEstimationCache()
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 || cfg.Cache.Size() != 0 {
		t.Errorf("SkipCompute run touched the cache: hits=%d misses=%d size=%d",
			res.CacheHits, res.CacheMisses, cfg.Cache.Size())
	}
}

// TestTable2DeterministicAcrossWorkersAndDepth extends the parallel
// experiment driver's determinism contract to the transport depth: the
// full Table 2 grid must produce identical per-cell power values and
// product counts whether run serially at depth 1 or on 4 workers with a
// deep pipeline.
func TestTable2DeterministicAcrossWorkersAndDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 10
	cfg.Workers = 1
	cfg.InFlight = 1
	serial, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	cfg.InFlight = 16
	deep, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(deep) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(deep))
	}
	for i := range serial {
		if serial[i].Products != deep[i].Products {
			t.Errorf("row %d: products %d vs %d", i, serial[i].Products, deep[i].Products)
		}
		var a, b []float64
		if serial[i].Power != nil {
			a = serial[i].Power.Samples
		}
		if deep[i].Power != nil {
			b = deep[i].Power.Samples
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("row %d: power samples diverged across workers/depth", i)
		}
	}
}
