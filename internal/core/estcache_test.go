package core

import (
	"reflect"
	"testing"

	"repro/internal/signal"
)

func pat(bits ...signal.Bit) []signal.Bit { return bits }

// TestEstimationCacheChainKeys pins the content-addressing contract:
// identical histories produce identical keys, and any divergence — a
// different pattern, or the same pattern after a different prefix —
// changes every subsequent key.
func TestEstimationCacheChainKeys(t *testing.T) {
	c := NewEstimationCache()
	a := c.newSession("fp")
	b := c.newSession("fp")
	_, ka, _ := a.lookup([][]signal.Bit{pat(signal.B0), pat(signal.B1)})
	_, kb, _ := b.lookup([][]signal.Bit{pat(signal.B0), pat(signal.B1)})
	if !reflect.DeepEqual(ka, kb) {
		t.Error("identical histories produced different keys")
	}

	// Same second pattern behind a different first one: its key must differ.
	d := c.newSession("fp")
	_, kd, _ := d.lookup([][]signal.Bit{pat(signal.B1), pat(signal.B1)})
	if kd[1] == ka[1] {
		t.Error("history divergence did not change the later key")
	}

	// A different setup fingerprint must not alias even on equal stimulus.
	e := c.newSession("other")
	_, ke, _ := e.lookup([][]signal.Bit{pat(signal.B0), pat(signal.B1)})
	if ke[0] == ka[0] {
		t.Error("different fingerprints aliased")
	}
}

// TestEstimationCacheHitAndReplayDebt walks the miss→commit→hit cycle:
// a committed batch is served locally by a later session with the same
// history, and the served patterns accumulate as replay debt for the
// next miss to transmit.
func TestEstimationCacheHitAndReplayDebt(t *testing.T) {
	c := NewEstimationCache()
	batch := [][]signal.Bit{pat(signal.B0, signal.B1), pat(signal.B1, signal.B1)}

	s1 := c.newSession("fp")
	if _, keys, hit := s1.lookup(batch); hit {
		t.Fatal("empty cache reported a hit")
	} else {
		c.commit(keys, []float64{1.5, 2.5})
	}
	if c.Size() != 2 {
		t.Fatalf("cache size = %d, want 2", c.Size())
	}

	s2 := c.newSession("fp")
	vals, _, hit := s2.lookup(batch)
	if !hit {
		t.Fatal("committed batch missed")
	}
	if vals[0] != 1.5 || vals[1] != 2.5 {
		t.Errorf("hit values = %v", vals)
	}
	if got := s2.takeReplay(); len(got) != 2 {
		t.Errorf("replay debt = %d patterns, want 2", len(got))
	}
	if got := s2.takeReplay(); len(got) != 0 {
		t.Error("replay debt not cleared by take")
	}

	// Partial coverage is all-or-nothing: extending the history past the
	// cached prefix must miss the whole batch.
	s3 := c.newSession("fp")
	long := append(append([][]signal.Bit{}, batch...), pat(signal.B0, signal.B0))
	if _, _, hit := s3.lookup(long); hit {
		t.Error("partially cached batch reported a full hit")
	}
}

// TestEstimationCacheCommitShapeMismatch: a provider reply of the wrong
// length must cache nothing rather than mis-associate values.
func TestEstimationCacheCommitShapeMismatch(t *testing.T) {
	c := NewEstimationCache()
	s := c.newSession("fp")
	_, keys, _ := s.lookup([][]signal.Bit{pat(signal.B0), pat(signal.B1)})
	c.commit(keys, []float64{1})
	if c.Size() != 0 {
		t.Errorf("mismatched commit cached %d values", c.Size())
	}
}

// scenarioSamples runs one ER scenario and returns its power samples.
func scenarioSamples(t *testing.T, cfg Config) (*Result, []float64) {
	t.Helper()
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Power == nil || len(res.Power.Samples) == 0 {
		t.Fatal("scenario produced no power samples")
	}
	return res, res.Power.Samples
}

// TestScenarioDeterministicAcrossDepths is the pipelining half of the
// determinism contract: the ER scenario's power values and product count
// must be bit-identical whether the transport runs stop-and-wait
// (depth 1) or deeply pipelined.
func TestScenarioDeterministicAcrossDepths(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 20
	cfg.InFlight = 1
	ref, refSamples := scenarioSamples(t, cfg)
	for _, depth := range []int{8, 32} {
		cfg.InFlight = depth
		res, samples := scenarioSamples(t, cfg)
		if !reflect.DeepEqual(refSamples, samples) {
			t.Errorf("depth %d: samples diverged from depth 1", depth)
		}
		if res.Products != ref.Products {
			t.Errorf("depth %d: products = %d, want %d", depth, res.Products, ref.Products)
		}
	}
}

// TestScenarioCacheHitsAndDeterminism is the caching half: a repeated
// run against a shared cache must serve batches locally (observable hit
// counters, fewer RMI calls, bytes saved) while returning bit-identical
// power values.
func TestScenarioCacheHitsAndDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 20
	_, plainSamples := scenarioSamples(t, cfg)

	cache := NewEstimationCache()
	cfg.Cache = cache
	cold, coldSamples := scenarioSamples(t, cfg)
	if cold.CacheHits != 0 {
		t.Errorf("cold run reported %d cache hits", cold.CacheHits)
	}
	if cold.CacheMisses == 0 {
		t.Error("cold run metered no cache misses")
	}
	if !reflect.DeepEqual(plainSamples, coldSamples) {
		t.Error("enabling the cache changed the cold run's values")
	}

	warm, warmSamples := scenarioSamples(t, cfg)
	if warm.CacheHits == 0 {
		t.Fatal("repeat run produced no cache hits")
	}
	if warm.CacheBytesSaved == 0 {
		t.Error("cache hits saved no bytes")
	}
	if warm.Calls >= cold.Calls {
		t.Errorf("repeat run made %d calls, cold made %d; hits did not stay off the wire", warm.Calls, cold.Calls)
	}
	if !reflect.DeepEqual(plainSamples, warmSamples) {
		t.Error("cache-served values diverged from remote values")
	}
	if warm.Power.CacheHits != warm.CacheHits {
		t.Errorf("report hits %d != meter hits %d", warm.Power.CacheHits, warm.CacheHits)
	}
	if cache.Hits() == 0 || cache.BytesSaved() == 0 {
		t.Errorf("shared cache counters: hits=%d saved=%d", cache.Hits(), cache.BytesSaved())
	}
}

// TestScenarioCacheSkipComputeBypassed: the Figure 3 methodology asks
// the provider to skip the power simulator, so its meaningless values
// must never be cached or served.
func TestScenarioCacheSkipComputeBypassed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 10
	cfg.SkipCompute = true
	cfg.Cache = NewEstimationCache()
	res, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 || cfg.Cache.Size() != 0 {
		t.Errorf("SkipCompute run touched the cache: hits=%d misses=%d size=%d",
			res.CacheHits, res.CacheMisses, cfg.Cache.Size())
	}
}

// TestTable2DeterministicAcrossWorkersAndDepth extends the parallel
// experiment driver's determinism contract to the transport depth: the
// full Table 2 grid must produce identical per-cell power values and
// product counts whether run serially at depth 1 or on 4 workers with a
// deep pipeline.
func TestTable2DeterministicAcrossWorkersAndDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 10
	cfg.Workers = 1
	cfg.InFlight = 1
	serial, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	cfg.InFlight = 16
	deep, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(deep) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(deep))
	}
	for i := range serial {
		if serial[i].Products != deep[i].Products {
			t.Errorf("row %d: products %d vs %d", i, serial[i].Products, deep[i].Products)
		}
		var a, b []float64
		if serial[i].Power != nil {
			a = serial[i].Power.Samples
		}
		if deep[i].Power != nil {
			b = deep[i].Power.Samples
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("row %d: power samples diverged across workers/depth", i)
		}
	}
}
