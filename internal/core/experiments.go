package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/netsim"
	"repro/internal/ppp"
	"repro/internal/signal"
	"repro/internal/sim"
)

// Table1Row is one estimator of the paper's Table 1: the comparison of
// three power estimators for the multiplier MULT.
type Table1Row struct {
	Estimator string
	// AvgErrPct and RMSErrPct are measured against the gate-level
	// reference over the evaluation patterns.
	AvgErrPct float64
	RMSErrPct float64
	// CostPerPatternCents is the provider fee per invocation.
	CostPerPatternCents float64
	// CPUPerPattern is the measured estimation time per pattern.
	CPUPerPattern time.Duration
	// Remote marks estimators that must run on the provider's server.
	Remote bool
}

// Table1Config parameterizes the estimator-accuracy experiment.
type Table1Config struct {
	Width    int
	Train    int // patterns used to calibrate constant/regression models
	Evaluate int // patterns used to measure errors
	Seed     int64
}

// DefaultTable1Config mirrors the paper's setting (16-bit MULT).
func DefaultTable1Config() Table1Config {
	return Table1Config{Width: 16, Train: 200, Evaluate: 200, Seed: 7}
}

// RunTable1 regenerates Table 1: it calibrates the two precharacterized
// estimators (constant and linear regression on input toggles) against
// the gate-level power simulator on a training pattern set, then measures
// their per-pattern errors on a fresh evaluation set. The gate-level
// toggle-count estimator is the reference itself, so its error is zero by
// construction (the paper's 10% reflects silicon, which we do not model);
// the ORDERING constant > regression > gate-level is the reproduced
// claim.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Width < 2 || cfg.Train < 2 || cfg.Evaluate < 2 {
		return nil, fmt.Errorf("core: invalid table1 config %+v", cfg)
	}
	nl := gate.ArrayMultiplier(cfg.Width)
	r := rand.New(rand.NewSource(cfg.Seed))
	mask := uint64(1)<<uint(cfg.Width) - 1
	pattern := func() ([]signal.Bit, int) {
		a := r.Uint64() & mask
		b := r.Uint64() & mask
		return nl.InputWord(a | b<<uint(cfg.Width)), 0
	}

	// Reference power and input toggles per pattern.
	runSet := func(n int) (powers []float64, toggles []int, err error) {
		sim, err := ppp.NewSimulator(nl, nil)
		if err != nil {
			return nil, nil, err
		}
		lib := ppp.DefaultLibrary()
		var prev []signal.Bit
		for i := 0; i < n; i++ {
			p, _ := pattern()
			energy, err := sim.Step(p)
			if err != nil {
				return nil, nil, err
			}
			tog := 0
			if prev != nil {
				for j := range p {
					if p[j] != prev[j] {
						tog++
					}
				}
			}
			prev = append(prev[:0], p...)
			if i == 0 {
				continue // first pattern establishes state
			}
			powers = append(powers, energy/lib.CycleTime)
			toggles = append(toggles, tog)
		}
		return powers, toggles, nil
	}

	trainP, trainT, err := runSet(cfg.Train)
	if err != nil {
		return nil, err
	}
	// Constant model: mean power.
	mean := 0.0
	for _, p := range trainP {
		mean += p
	}
	mean /= float64(len(trainP))
	// Linear regression power ~ base + slope·toggles (least squares).
	var sx, sy, sxx, sxy float64
	for i := range trainP {
		x, y := float64(trainT[i]), trainP[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(trainP))
	den := n*sxx - sx*sx
	slope := 0.0
	if den != 0 {
		slope = (n*sxy - sx*sy) / den
	}
	base := (sy - slope*sx) / n

	evalP, evalT, err := runSet(cfg.Evaluate)
	if err != nil {
		return nil, err
	}

	errOf := func(model func(i int) float64) (avg, rms float64) {
		for i, ref := range evalP {
			if ref == 0 {
				continue
			}
			e := math.Abs(model(i)-ref) / ref * 100
			avg += e
			rms += e * e
		}
		avg /= float64(len(evalP))
		rms = math.Sqrt(rms / float64(len(evalP)))
		return avg, rms
	}

	constAvg, constRMS := errOf(func(int) float64 { return mean })
	lrAvg, lrRMS := errOf(func(i int) float64 { return base + slope*float64(evalT[i]) })

	// Per-pattern CPU time of each model (measured).
	timeModel := func(f func()) time.Duration {
		const reps = 50
		//lint:ignore simdeterminism Table 1's CPU column is a measurement of the host, not a simulation result; it never feeds signal values.
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		return time.Since(start) / reps
	}
	constCPU := timeModel(func() { _ = mean })
	lrCPU := timeModel(func() { _ = base + slope*3 })
	glSim, err := ppp.NewSimulator(nl, nil)
	if err != nil {
		return nil, err
	}
	p0, _ := pattern()
	p1, _ := pattern()
	if _, err := glSim.Step(p0); err != nil {
		return nil, err
	}
	glCPU := timeModel(func() {
		if _, err := glSim.Step(p1); err != nil {
			panic(err)
		}
		p0, p1 = p1, p0
	})

	return []Table1Row{
		{Estimator: "constant", AvgErrPct: constAvg, RMSErrPct: constRMS, CostPerPatternCents: 0, CPUPerPattern: constCPU},
		{Estimator: "linear-regression", AvgErrPct: lrAvg, RMSErrPct: lrRMS, CostPerPatternCents: 0, CPUPerPattern: lrCPU},
		{Estimator: "gate-level-toggle-count", AvgErrPct: 0, RMSErrPct: 0, CostPerPatternCents: 0.1, CPUPerPattern: glCPU, Remote: true},
	}, nil
}

// Table2Cell identifies one row of the paper's Table 2 grid.
type Table2Cell struct {
	Scenario Scenario
	Profile  netsim.Profile
}

// Table2Grid returns the seven rows of Table 2: AL, then ER and MR over
// local host, LAN and WAN.
func Table2Grid() []Table2Cell {
	return []Table2Cell{
		{AllLocal, netsim.InProcess},
		{EstimatorRemote, netsim.Local},
		{MultiplierRemote, netsim.Local},
		{EstimatorRemote, netsim.LAN},
		{MultiplierRemote, netsim.LAN},
		{EstimatorRemote, netsim.WAN},
		{MultiplierRemote, netsim.WAN},
	}
}

// RunTable2 regenerates Table 2 with the given base configuration (use
// DefaultConfig for the paper's 100 patterns, buffer 5). The grid's cells
// are independent full scenario runs — each builds its own design and
// provider — so they execute on cfg.Workers workers, with results in grid
// order. The emulated network latencies dominate each cell's wall-clock,
// so concurrent cells barely perturb each other's timings.
func RunTable2(cfg Config) ([]*Result, error) {
	grid := Table2Grid()
	out := make([]*Result, len(grid))
	err := sim.Pool{Workers: cfg.Workers}.For(len(grid), func(i int) error {
		cell := grid[i]
		c := cfg
		c.Profile = cell.Profile
		res, err := Run(cell.Scenario, c)
		if err != nil {
			return fmt.Errorf("core: table2 %s/%s: %w", cell.Scenario, cell.Profile.Name, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure3Point is one sample of the buffer-size sweep.
type Figure3Point struct {
	BufferPct int
	CPUTime   time.Duration
	RealTime  time.Duration
	Calls     int64
}

// RunFigure3 regenerates Figure 3: real and CPU time versus pattern
// buffer size (as a percentage of the pattern count), on the remote
// estimator (ER) with the WAN environment and the provider's power
// computation disabled — so the measured runtime increase comes only from
// RMI overhead.
func RunFigure3(cfg Config, percents []int) ([]Figure3Point, error) {
	if len(percents) == 0 {
		percents = []int{1, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	out := make([]Figure3Point, len(percents))
	err := sim.Pool{Workers: cfg.Workers}.For(len(percents), func(i int) error {
		pct := percents[i]
		c := cfg
		c.Profile = netsim.WAN
		c.SkipCompute = true
		c.BufferSize = cfg.Patterns * pct / 100
		if c.BufferSize < 1 {
			c.BufferSize = 1
		}
		res, err := Run(EstimatorRemote, c)
		if err != nil {
			return fmt.Errorf("core: figure3 at %d%%: %w", pct, err)
		}
		out[i] = Figure3Point{
			BufferPct: pct,
			CPUTime:   res.CPUTime,
			RealTime:  res.RealTime,
			Calls:     res.Calls,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Figure4Report is the worked example of the paper's Figure 4/5: the IP1
// detection table for input (1,0) and the detection verdicts of patterns
// 1100 and 1101.
type Figure4Report struct {
	FaultList      []string
	Table          *fault.DetectionTable
	Detected1100   []string
	Detected1101   []string
	CoverageAfter2 float64
}

// RunFigure4 regenerates the Figure 4 narrative using the module-level
// design and the virtual fault simulation protocol. workers bounds the
// virtual simulator's injection fan-out (0 = one per CPU, 1 = serial).
func RunFigure4(workers int) (*Figure4Report, error) {
	d, err := fault.Figure4Design()
	if err != nil {
		return nil, err
	}
	lt := d.Hosts[0].Service.(*fault.LocalTestability)
	dt, err := lt.DetectionTable([]signal.Bit{signal.B1, signal.B0})
	if err != nil {
		return nil, err
	}
	vs := d.NewVirtual()
	vs.Workers = workers
	list, err := vs.BuildFaultList()
	if err != nil {
		return nil, err
	}
	patterns := [][]signal.Bit{
		{signal.B1, signal.B1, signal.B0, signal.B0}, // ABCD = 1100
		{signal.B1, signal.B1, signal.B0, signal.B1}, // ABCD = 1101
	}
	res, err := vs.Run(patterns)
	if err != nil {
		return nil, err
	}
	rep := &Figure4Report{FaultList: list, Table: dt, CoverageAfter2: res.Coverage()}
	// PerPattern preserves detection order; ranging over the Detected map
	// instead would shuffle the report between runs.
	rep.Detected1100 = append([]string(nil), res.PerPattern[0]...)
	rep.Detected1101 = append([]string(nil), res.PerPattern[1]...)
	return rep, nil
}
