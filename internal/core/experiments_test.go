package core

import (
	"sort"
	"testing"

	"repro/internal/netsim"
)

func TestTable1EstimatorOrdering(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Width = 8 // keep the test fast; ordering is width-independent
	cfg.Train = 100
	cfg.Evaluate = 100
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	constant, lr, gl := rows[0], rows[1], rows[2]
	// Accuracy ordering: constant worst, regression better, gate-level
	// exact — the paper's 25/20/10 ordering.
	if !(constant.AvgErrPct > lr.AvgErrPct && lr.AvgErrPct > gl.AvgErrPct) {
		t.Errorf("error ordering violated: const %.1f, lr %.1f, gl %.1f",
			constant.AvgErrPct, lr.AvgErrPct, gl.AvgErrPct)
	}
	if constant.RMSErrPct < constant.AvgErrPct {
		t.Error("RMS error below average error")
	}
	// Cost ordering: only the gate-level estimator charges.
	if constant.CostPerPatternCents != 0 || lr.CostPerPatternCents != 0 || gl.CostPerPatternCents != 0.1 {
		t.Error("cost column wrong")
	}
	// CPU ordering: gate-level orders of magnitude slower.
	if gl.CPUPerPattern < 10*lr.CPUPerPattern {
		t.Errorf("gate-level CPU %v not ≫ regression %v", gl.CPUPerPattern, lr.CPUPerPattern)
	}
	if !gl.Remote || constant.Remote || lr.Remote {
		t.Error("remote flags wrong")
	}
}

func TestTable1ConfigValidation(t *testing.T) {
	if _, err := RunTable1(Table1Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestTable2ShapeFast(t *testing.T) {
	// A scaled-down Table 2: the paper's qualitative claims must hold.
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 30
	cfg.BufferSize = 5
	rows, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(s Scenario, host string) *Result {
		for _, r := range rows {
			if r.Scenario == s && r.Host == host {
				return r
			}
		}
		t.Fatalf("missing row %v/%s", s, host)
		return nil
	}
	al := get(AllLocal, "none")
	erWAN := get(EstimatorRemote, "WAN")
	mrWAN := get(MultiplierRemote, "WAN")
	erLocal := get(EstimatorRemote, "local")

	// Claim: real time grows with network distance for both ER and MR.
	if !(erWAN.RealTime > erLocal.RealTime) {
		t.Errorf("ER real time not growing: local %v, WAN %v", erLocal.RealTime, erWAN.RealTime)
	}
	// Claim: MR is the worst case on the WAN (most RMI calls, most real
	// time among remote rows).
	if mrWAN.RealTime < erWAN.RealTime {
		t.Errorf("MR/WAN real %v below ER/WAN %v", mrWAN.RealTime, erWAN.RealTime)
	}
	if mrWAN.Calls <= erWAN.Calls {
		t.Errorf("MR calls %d not above ER calls %d", mrWAN.Calls, erWAN.Calls)
	}
	// Claim: AL touches no network.
	if al.Calls != 0 {
		t.Error("AL made RMI calls")
	}
	// Every run simulated the full pattern set.
	for _, r := range rows {
		if r.Products == 0 {
			t.Errorf("%s/%s produced nothing", r.Scenario, r.Host)
		}
	}
}

func TestFigure3MonotoneShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 40
	points, err := RunFigure3(cfg, []int{5, 25, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Calls must fall strictly with buffer size; real time must fall too
	// (large buffers amortize the WAN round trips).
	if !(points[0].Calls > points[1].Calls && points[1].Calls > points[2].Calls) {
		t.Errorf("calls not decreasing: %d, %d, %d", points[0].Calls, points[1].Calls, points[2].Calls)
	}
	if points[2].RealTime >= points[0].RealTime {
		t.Errorf("real time not improved by buffering: %v -> %v", points[0].RealTime, points[2].RealTime)
	}
}

func TestFigure4Report(t *testing.T) {
	rep, err := RunFigure4(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FaultList) == 0 {
		t.Fatal("empty fault list")
	}
	if rep.Table == nil || len(rep.Table.Rows) == 0 {
		t.Fatal("empty detection table")
	}
	// Pattern 1101 must detect faults that 1100 did not — the paper's
	// propagation narrative.
	if len(rep.Detected1101) == 0 {
		t.Error("pattern 1101 detected nothing")
	}
	sort.Strings(rep.Detected1100)
	sort.Strings(rep.Detected1101)
	for _, f := range rep.Detected1101 {
		i := sort.SearchStrings(rep.Detected1100, f)
		if i < len(rep.Detected1100) && rep.Detected1100[i] == f {
			t.Errorf("fault %s detected by both patterns (dropping broken)", f)
		}
	}
	if rep.CoverageAfter2 <= 0 || rep.CoverageAfter2 > 1 {
		t.Errorf("coverage = %v", rep.CoverageAfter2)
	}
}

func TestTable2ParallelPreservesGridOrder(t *testing.T) {
	// The grid cells run on a worker pool; the returned rows must still
	// line up with Table2Grid() positions regardless of completion order.
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 10
	cfg.Workers = 4
	rows, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid := Table2Grid()
	if len(rows) != len(grid) {
		t.Fatalf("rows = %d, want %d", len(rows), len(grid))
	}
	for i, cell := range grid {
		if rows[i] == nil {
			t.Fatalf("row %d missing", i)
		}
		if rows[i].Scenario != cell.Scenario {
			t.Errorf("row %d: scenario %v, want %v", i, rows[i].Scenario, cell.Scenario)
		}
	}
}

func TestFigure3ParallelPreservesSweepOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Width = 8
	cfg.Patterns = 20
	cfg.Workers = 4
	percents := []int{5, 25, 100}
	points, err := RunFigure3(cfg, percents)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(percents) {
		t.Fatalf("points = %d", len(points))
	}
	for i, pct := range percents {
		if points[i].BufferPct != pct {
			t.Errorf("point %d: buffer %d%%, want %d%%", i, points[i].BufferPct, pct)
		}
		if points[i].Calls == 0 {
			t.Errorf("point %d made no RMI calls", i)
		}
	}
}

func TestTable2GridComplete(t *testing.T) {
	grid := Table2Grid()
	if len(grid) != 7 {
		t.Fatalf("grid = %d cells", len(grid))
	}
	if grid[0].Scenario != AllLocal || grid[0].Profile.Name != netsim.InProcess.Name {
		t.Error("first cell must be AL")
	}
	// ER and MR must each appear on local, LAN and WAN.
	count := map[Scenario]int{}
	for _, c := range grid[1:] {
		count[c.Scenario]++
	}
	if count[EstimatorRemote] != 3 || count[MultiplierRemote] != 3 {
		t.Errorf("grid coverage = %v", count)
	}
}
