package core

import (
	"fmt"
	"math/rand"

	"repro/internal/module"
	"repro/internal/signal"
	"repro/internal/sim"
)

// GenSpec sizes a randomly generated hierarchical word-level design. The
// zero value of any field selects the default in parentheses.
type GenSpec struct {
	// Inputs is the number of autonomous random stimulus generators (4).
	Inputs int
	// Layers is the number of operator layers (3); each layer becomes a
	// nested sub-circuit, so generated designs exercise hierarchy.
	Layers int
	// LayerOps is the number of operator modules per layer (4).
	LayerOps int
	// Width is the datapath word width in bits (16, capped at 32).
	Width int
	// Patterns is the number of stimulus patterns per generator (50).
	Patterns int
	// Period is the base stimulus period (10); generators are staggered
	// across Period..Period+2 so simulation instants interleave — the
	// shape that exercises a sharded run's conservative windows.
	Period sim.Time
}

func (s GenSpec) withDefaults() GenSpec {
	if s.Inputs <= 0 {
		s.Inputs = 4
	}
	if s.Layers <= 0 {
		s.Layers = 3
	}
	if s.LayerOps <= 0 {
		s.LayerOps = 4
	}
	if s.Width <= 0 {
		s.Width = 16
	}
	if s.Width > 32 {
		s.Width = 32
	}
	if s.Patterns <= 0 {
		s.Patterns = 50
	}
	if s.Period <= 0 {
		s.Period = 10
	}
	return s
}

// genWordOps are the width-preserving operator behaviors generated
// designs are built from; every operator masks to the datapath width so
// results are well-defined at any width.
var genWordOps = []func(x, y uint64) uint64{
	func(x, y uint64) uint64 { return x + y },
	func(x, y uint64) uint64 { return x ^ y },
	func(x, y uint64) uint64 { return x*y>>3 ^ x },
	func(x, y uint64) uint64 { return x - y },
	func(x, y uint64) uint64 { return x&y | x>>1 },
}

// GenerateCircuitRand builds a seeded random hierarchical circuit:
// staggered autonomous stimuli feed layers of word-level operators
// (behavioral functions, registers, delays and explicit fan-outs, since
// connectors are point-to-point), each layer wrapped in a nested
// sub-circuit, with every dangling net terminated by a primary output.
// All randomness is drawn from the caller's rng — the simdeterminism
// rule — so a (seed, spec) pair names one reproducible design. The
// returned outputs observe every sink, which is what run fingerprints
// hash.
func GenerateCircuitRand(rng *rand.Rand, spec GenSpec) (*module.Circuit, []*module.PrimaryOutput) {
	spec = spec.withDefaults()
	w := spec.Width
	nconn := 0
	newConn := func() *module.Connector {
		nconn++
		return module.NewWordConnector(fmt.Sprintf("n%d", nconn), w)
	}
	// avail holds connectors whose consuming end is still dangling.
	var avail []*module.Connector
	take := func() *module.Connector {
		i := rng.Intn(len(avail))
		c := avail[i]
		avail = append(avail[:i], avail[i+1:]...)
		return c
	}

	top := module.NewCircuit("gen")
	for i := 0; i < spec.Inputs; i++ {
		c := newConn()
		period := spec.Period + sim.Time(i%3)
		top.Add(module.NewRandomPrimaryInput(fmt.Sprintf("GIN%d", i),
			w, rng.Int63(), spec.Patterns, period, c))
		avail = append(avail, c)
	}

	mask := uint64(1)<<uint(w) - 1
	nmod := 0
	for layer := 0; layer < spec.Layers; layer++ {
		sub := module.NewCircuit(fmt.Sprintf("L%d", layer))
		for op := 0; op < spec.LayerOps; op++ {
			nmod++
			name := fmt.Sprintf("m%d", nmod)
			kind := rng.Intn(6)
			if len(avail) < 2 && kind < 2 {
				kind = 5 // too few nets for a binary op: fan out instead
			}
			switch kind {
			case 0, 1: // binary word operator
				fn := genWordOps[rng.Intn(len(genWordOps))]
				a, b, o := take(), take(), newConn()
				sub.Add(module.NewFuncWordModule(name, func(in []signal.Word) []signal.Word {
					x, _ := in[0].Uint64()
					y, _ := in[1].Uint64()
					return []signal.Word{signal.WordFromUint64(fn(x, y)&mask, w)}
				}, []int{w, w}, []int{w}, []*module.Connector{a, b}, []*module.Connector{o}))
				avail = append(avail, o)
			case 2: // register
				in, out := take(), newConn()
				sub.Add(module.NewRegister(name, w, in, out))
				avail = append(avail, out)
			case 3: // net delay
				in, out := take(), newConn()
				sub.Add(module.NewDelay(name, w, sim.Time(1+rng.Intn(3)), in, out))
				avail = append(avail, out)
			case 4: // unary mixer
				rot := uint(1 + rng.Intn(w-1))
				in, out := take(), newConn()
				sub.Add(module.NewFuncWordModule(name, func(in []signal.Word) []signal.Word {
					x, _ := in[0].Uint64()
					v := (x>>rot | x<<(uint(w)-rot)) & mask
					return []signal.Word{signal.WordFromUint64(v^mask, w)}
				}, []int{w}, []int{w}, []*module.Connector{in}, []*module.Connector{out}))
				avail = append(avail, out)
			default: // explicit fan-out (connectors are point-to-point)
				in := take()
				o1, o2 := newConn(), newConn()
				sub.Add(module.NewFanout(name, w, in,
					[]*module.Connector{o1, o2}, []sim.Time{0, sim.Time(rng.Intn(2))}))
				avail = append(avail, o1, o2)
			}
		}
		top.Add(sub)
	}

	outs := make([]*module.PrimaryOutput, 0, len(avail))
	for i, c := range avail {
		po := module.NewPrimaryOutput(fmt.Sprintf("PO%d", i), w, c)
		outs = append(outs, po)
		top.Add(po)
	}
	return top, outs
}
