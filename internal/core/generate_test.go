package core

import (
	"math/rand"
	"testing"

	"repro/internal/module"
	"repro/internal/shard"
)

// TestGenerateCircuitDeterministic: a (seed, spec) pair names exactly
// one design — the caller-routed rng is the only randomness source, so
// regenerating and resimulating must reproduce the fingerprint, and a
// different seed must not.
func TestGenerateCircuitDeterministic(t *testing.T) {
	spec := GenSpec{Patterns: 30}
	fp := func(seed int64) string {
		c, outs := GenerateCircuitRand(rand.New(rand.NewSource(seed)), spec)
		s, err := ClassicCircuitFingerprint(c, outs, 0)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		return s
	}
	if fp(7) != fp(7) {
		t.Fatal("same seed regenerated a different design")
	}
	if fp(7) == fp(8) {
		t.Fatal("different seeds generated identical designs")
	}
}

// TestGenerateCircuitShape: generated designs are hierarchical (each
// layer is a nested sub-circuit), every dangling net is observed by a
// primary output, and the result partitions cleanly.
func TestGenerateCircuitShape(t *testing.T) {
	spec := GenSpec{Inputs: 5, Layers: 3, LayerOps: 4, Patterns: 10}
	circuit, outs := GenerateCircuitRand(rand.New(rand.NewSource(42)), spec)

	subs := 0
	for _, child := range circuit.Children() {
		if _, ok := child.(*module.Circuit); ok {
			subs++
		}
	}
	if subs != spec.Layers {
		t.Errorf("top holds %d nested sub-circuits, want %d", subs, spec.Layers)
	}
	if len(outs) == 0 {
		t.Fatal("no primary outputs generated")
	}
	leaves := circuit.Leaves()
	if len(leaves) < spec.Inputs+spec.Layers*spec.LayerOps {
		t.Errorf("only %d leaves for %d inputs + %d ops", len(leaves),
			spec.Inputs, spec.Layers*spec.LayerOps)
	}
	for _, n := range []int{1, 2, 5} {
		p, err := shard.PartitionCircuit(circuit, n)
		if err != nil {
			t.Fatalf("partition n=%d: %v", n, err)
		}
		if err := p.Validate(circuit); err != nil {
			t.Fatalf("partition n=%d invalid: %v", n, err)
		}
	}
}
