// Package core ties gocad together into the paper's headline capability:
// VIRTUAL SIMULATION — the early evaluation of a design comprising
// unpurchased IP components, with accuracy that requires undisclosed
// implementation details. It provides the remote-module proxies that
// instantiate like any local module but execute IP-protected methods on
// the provider's server, the buffered nonblocking remote power estimator,
// the provider-connection helpers, and the AL/ER/MR scenario harness that
// regenerates the paper's Table 2 and Figure 3.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/estim"
	"repro/internal/iplib"
	"repro/internal/module"
	"repro/internal/rmi"
	"repro/internal/signal"
)

// wordsToBits appends the bits of the given words LSB-first to dst —
// the component-input pattern layout shared with provider-side netlists
// (operand a in the low bits, operand b above it). Pass nil for a fresh
// buffer; callers that must retain the pattern (the estimator's batch
// buffer) own the result.
func wordsToBits(dst []signal.Bit, words ...signal.Word) []signal.Bit {
	for _, w := range words {
		dst = append(dst, w.Bits...)
	}
	return dst
}

// patternPool recycles input-pattern buffers for the synchronous MR
// eval path: the pattern only lives for the duration of one remote
// Eval call (the wire layer copies it into the outbound payload and the
// bound instance does not retain it), while a RemoteMult may be driven
// by several concurrent schedulers (StartConcurrent, shards), so the
// scratch is pooled rather than hung off the module.
var patternPool = sync.Pool{New: func() any { return new([]signal.Bit) }}

// RemotePowerEstimator is the paper's remote gate-level power estimator
// with the two optimizations of the performance study:
//
//   - PATTERN BUFFERING: input patterns are accumulated and issued to the
//     provider in batches of BufferSize, amortizing the per-call RMI
//     overhead (the knob of Figure 3);
//   - NONBLOCKING ESTIMATION: batches are dispatched on worker
//     goroutines (the paper's threads), hiding the latency of long
//     gate-level simulator runs behind ongoing event processing.
//
// Per-pattern estimates therefore arrive asynchronously: the estimator
// returns the null value to the estimation engine at token time (the
// sample is recorded as deferred) and accumulates the real values, which
// Report exposes after Close drains the in-flight batches.
type RemotePowerEstimator struct {
	estim.Meta
	inst *iplib.BoundInstance
	// BufferSize is the number of patterns per batch (≥ 1).
	BufferSize int
	// Nonblocking dispatches batches on worker goroutines.
	Nonblocking bool
	// SkipCompute asks the provider to acknowledge batches without
	// running the power simulator (the Figure 3 methodology, isolating
	// RMI overhead from compute).
	SkipCompute bool
	// Fallback, when non-nil, produces estimates after the provider is
	// declared dead (every transport retry and reconnect exhausted); nil
	// degrades to null values — either way the simulation completes with
	// partial estimates instead of aborting.
	Fallback estim.Estimator
	// OnDegrade, when non-nil, is invoked exactly once when the
	// estimator degrades, typically to call estim.Setup.MarkDegraded.
	// It runs with the estimator's lock held; it must not call back into
	// the estimator.
	OnDegrade func(reason string)

	// dispatch runs one batch remotely; the default is the power-batch
	// method, NewRemoteTimingEstimator substitutes the timing method.
	dispatch func(batch [][]signal.Bit, skip bool) ([]float64, error)

	// method names the remote batch method; it seeds the cache
	// fingerprint. reqBytes sizes the encoded request for one batch, for
	// the cache's bytes-saved accounting.
	method   string
	reqBytes func(batch [][]signal.Bit) int

	// Content-addressed estimation cache (EnableCache). The session
	// carries this estimator's rolling history chain; cacheOff latches
	// when a remote error leaves the provider's simulator state unknown —
	// serving further hits against a diverged history would be unsound,
	// and the latch is PERMANENT for the session: once a transmitted
	// batch is lost, the provider-side history chain has irrecoverably
	// diverged from ours, so no later provider state can be trusted to
	// match our keys again. (Transport faults the rmi layer heals —
	// retry, reconnect, journal replay, replica failover — never surface
	// here as errors and leave the cache armed.) cacheEpoch guards the
	// window between a batch's preparation and its commit: a job prepared
	// before a failure must not commit values computed after it.
	cacheStore *EstimationCache
	cache      *cacheSession
	cacheOff   atomic.Bool
	cacheEpoch atomic.Uint64
	cacheHits  atomic.Int64
	cacheMiss  atomic.Int64
	cacheSaved atomic.Int64

	// Hedged estimation (EnableHedge): a second bound instance on its own
	// clean session. A primary batch unanswered after hedgeAfter is
	// re-issued there — with the full pattern history the hedge has not
	// yet executed as a catch-up prefix, since power values depend on
	// history — and the first answer is recorded. hedgeHist is the
	// complete logical pattern stream in batch order; hedgePos is the
	// prefix the hedge instance has executed. A hedge error marks the
	// hedge broken for the rest of the run and never fails the batch.
	hedgeInst   *iplib.BoundInstance
	hedgeAfter  time.Duration
	hedgeMu     sync.Mutex
	hedgeHist   [][]signal.Bit
	hedgePos    int
	hedgeBroken bool
	// pendingPrimary holds the in-flight outcome of a primary batch the
	// hedge outran. At most one primary is ever outstanding: the next
	// hedged batch (and Close) consumes it before enqueueing another, so
	// power batches stay strictly serialized on the wire — the property
	// the reconnect journal replay depends on.
	pendingPrimary chan primaryOutcome

	// Nonblocking batches flow through a single ordered dispatcher
	// goroutine: batches reach the wire — and their results are recorded
	// — in exactly the order the simulation produced them, so pipelined
	// and cached runs are bit-identical to blocking stop-and-wait ones.
	jobsOnce  sync.Once
	jobsClose sync.Once
	jobs      chan batchJob

	mu          sync.Mutex
	buf         [][]signal.Bit
	results     []float64
	errs        []error
	sent        int
	wg          sync.WaitGroup
	closed      bool
	degraded    bool
	lostBatches int
}

// batchJob is one unit of estimator dispatch work, prepared serially (so
// the cache chain advances in simulation order) and executed either
// inline (blocking mode) or by the ordered dispatcher (nonblocking).
type batchJob struct {
	// send is the pattern sequence to transmit; nil for a pure cache hit.
	send [][]signal.Bit
	// vals are the locally resolved values of a cache hit.
	vals []float64
	// prefix counts leading catch-up patterns in send whose reply values
	// are discarded (cache-hit history the provider had not executed).
	prefix int
	// keys address the trailing len(keys) reply values for cache commit.
	keys []cacheKey
	// epoch is the cache-consistency epoch the job was prepared under; a
	// failed batch bumps the epoch, invalidating commits from jobs that
	// straddle the failure.
	epoch uint64
	// hedgeEnd is the hedge-history length including this batch (0 when
	// hedging is off).
	hedgeEnd int
}

// primaryOutcome is the deferred result of a primary batch the hedge
// outran.
type primaryOutcome struct {
	vals []float64
	err  error
}

// NewRemotePowerEstimator builds the estimator from a provider offer.
func NewRemotePowerEstimator(inst *iplib.BoundInstance, offer iplib.EstimatorOffer, bufferSize int, nonblocking bool) *RemotePowerEstimator {
	if bufferSize < 1 {
		bufferSize = 1
	}
	e := &RemotePowerEstimator{
		Meta: estim.Meta{
			Name:    offer.Name,
			Param:   offer.Parameter(),
			ErrPct:  offer.ErrPct,
			Cost:    offer.CostCents,
			CPUTime: offer.CPUTime(),
			IsRem:   true,
		},
		inst:        inst,
		BufferSize:  bufferSize,
		Nonblocking: nonblocking,
		method:      iplib.MethodPowerBatch,
	}
	e.reqBytes = func(batch [][]signal.Bit) int {
		b, err := rmi.Encode(iplib.PowerBatchReq{Instance: inst.ID(), Patterns: batch})
		if err != nil {
			return 0
		}
		return len(b)
	}
	return e
}

// EnableCache attaches a shared content-addressed estimation cache. The
// session chain is seeded with this estimator's setup fingerprint —
// remote method, component, estimator offer, and width — so only runs
// driving the same stimulus into the same setup share entries. Call
// before the first Estimate; a nil store leaves caching disabled.
func (e *RemotePowerEstimator) EnableCache(store *EstimationCache) {
	if store == nil {
		return
	}
	e.cacheStore = store
	fp := fmt.Sprintf("%s|%s|%s|%d", e.method, e.inst.Component(), e.Name, e.inst.Width())
	e.cache = store.newSession(fp)
}

// EnableHedge arms hedged estimation batches: a primary batch still
// unanswered after the given duration is re-issued to inst — a bound
// instance of the SAME component on a second replica, reached over its
// own clean session — and the first answer wins. Replica estimators are
// deterministic, so results are bit-identical whichever side answers.
// Call before the first Estimate; a nil instance or non-positive
// duration leaves hedging disabled. Hedging is skipped for SkipCompute
// runs (there is no latency worth hiding in an acknowledgement).
func (e *RemotePowerEstimator) EnableHedge(inst *iplib.BoundInstance, after time.Duration) {
	if inst == nil || after <= 0 {
		return
	}
	e.hedgeInst = inst
	e.hedgeAfter = after
}

// Estimate implements estim.Estimator: it snapshots the component's input
// pattern into the buffer, flushing a full buffer to the provider, and
// returns the deferred (null) value.
func (e *RemotePowerEstimator) Estimate(ec *estim.EvalContext) (estim.ParamValue, error) {
	var words []signal.Word
	for _, v := range ec.Inputs {
		switch x := v.(type) {
		case signal.WordValue:
			words = append(words, x.W)
		case signal.BitValue:
			words = append(words, signal.Word{Bits: []signal.Bit{x.B}})
		case nil:
			return estim.NullValue{}, nil // inputs not yet driven
		}
	}
	pattern := wordsToBits(nil, words...)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: estimator %s used after Close", e.Name)
	}
	if e.degraded {
		// Provider declared dead: serve the fallback estimator locally.
		if e.Fallback != nil {
			v, err := e.Fallback.Estimate(ec)
			e.mu.Unlock()
			return v, err
		}
		e.mu.Unlock()
		return estim.NullValue{}, nil
	}
	e.buf = append(e.buf, pattern)
	var batch [][]signal.Bit
	if len(e.buf) >= e.BufferSize {
		batch = e.takeBatchLocked()
	}
	e.mu.Unlock()
	e.dispatchTaken(batch)
	return estim.NullValue{}, nil
}

// takeBatchLocked removes the pending batch from the buffer and
// registers it in flight; the caller holds e.mu, and must hand the batch
// to dispatchTaken after unlocking. The wg.Add happens here, under the
// lock, so a concurrent Close cannot slip its wg.Wait between the take
// and the dispatch.
func (e *RemotePowerEstimator) takeBatchLocked() [][]signal.Bit {
	if len(e.buf) == 0 {
		return nil
	}
	batch := e.buf
	e.buf = nil
	e.sent += len(batch)
	e.wg.Add(1)
	return batch
}

// dispatchQueueDepth bounds the ordered dispatcher's job backlog; a full
// queue applies backpressure to the simulation thread.
const dispatchQueueDepth = 16

// dispatchTaken runs one batch previously taken by takeBatchLocked and
// balances its wg.Add. It must be called WITHOUT e.mu held: the batch is
// a network round trip (potentially a whole retry-reconnect ladder), and
// holding the lock across it would stall every Estimate call — the
// lockheld-rmi invariant. A nil batch is a no-op.
//
// The cache consult happens here, on the caller's goroutine, because
// Estimate calls arrive in simulation order and the cache chain must
// advance in that same order. The resulting job then executes inline
// (blocking mode) or on the ordered dispatcher (nonblocking mode), which
// preserves batch order end to end: values are recorded exactly as a
// stop-and-wait run would record them.
func (e *RemotePowerEstimator) dispatchTaken(batch [][]signal.Bit) {
	if batch == nil {
		return
	}
	job := e.prepareJob(batch)
	if !e.Nonblocking {
		e.runJob(job)
		return
	}
	e.startDispatcher()
	e.jobs <- job
}

// prepareJob consults the estimation cache for one batch. On a full hit
// the job carries the locally resolved values and nothing goes on the
// wire; on a miss the job transmits any accumulated cache-hit replay debt
// as a catch-up prefix ahead of the batch, so the provider's stateful
// simulator sees the complete pattern history.
func (e *RemotePowerEstimator) prepareJob(batch [][]signal.Bit) batchJob {
	hedgeEnd := 0
	if e.hedgeInst != nil && !e.SkipCompute {
		// The hedge history is the logical batch stream — including
		// batches the cache later resolves locally, because a hedged miss
		// must still present the complete history to the hedge replica's
		// stateful simulator.
		e.hedgeMu.Lock()
		e.hedgeHist = append(e.hedgeHist, batch...)
		hedgeEnd = len(e.hedgeHist)
		e.hedgeMu.Unlock()
	}
	if e.cache == nil || e.SkipCompute || e.cacheOff.Load() {
		return batchJob{send: batch, epoch: e.cacheEpoch.Load(), hedgeEnd: hedgeEnd}
	}
	vals, keys, hit := e.cache.lookup(batch)
	if hit {
		saved := 0
		if e.reqBytes != nil {
			saved = e.reqBytes(batch)
		}
		e.cacheHits.Add(1)
		e.cacheSaved.Add(int64(saved))
		e.cacheStore.hits.Add(1)
		e.cacheStore.saved.Add(int64(saved))
		if m := e.inst.Meter(); m != nil {
			m.AddCacheHit(saved)
		}
		return batchJob{vals: vals}
	}
	e.cacheMiss.Add(1)
	e.cacheStore.misses.Add(1)
	if m := e.inst.Meter(); m != nil {
		m.AddCacheMiss()
	}
	replay := e.cache.takeReplay()
	send := batch
	if len(replay) > 0 {
		send = append(append(make([][]signal.Bit, 0, len(replay)+len(batch)), replay...), batch...)
	}
	return batchJob{send: send, prefix: len(replay), keys: keys, epoch: e.cacheEpoch.Load(), hedgeEnd: hedgeEnd}
}

// startDispatcher lazily launches the single ordered-dispatch goroutine.
func (e *RemotePowerEstimator) startDispatcher() {
	e.jobsOnce.Do(func() {
		e.jobs = make(chan batchJob, dispatchQueueDepth)
		go func() {
			for j := range e.jobs {
				e.runJob(j)
			}
		}()
	})
}

// runJob executes one prepared job and records its values, balancing the
// batch's wg.Add. Jobs for one estimator run strictly FIFO (inline or on
// the single dispatcher goroutine), so results append in batch order.
func (e *RemotePowerEstimator) runJob(j batchJob) {
	defer e.wg.Done()
	if j.send == nil {
		e.recordBatch(j.vals, nil)
		return
	}
	vals, fromHedge, err := e.execBatchMaybeHedged(j)
	if err != nil {
		// The provider's simulator state is now unknown relative to our
		// history chain; later cache hits against it would be unsound —
		// permanently, since a lost batch means the provider-side history
		// can never re-converge with ours. The epoch bump additionally
		// invalidates commits from already-prepared jobs that straddle
		// this failure.
		e.cacheOff.Store(true)
		e.cacheEpoch.Add(1)
		e.recordBatch(nil, err)
		return
	}
	if fromHedge {
		// The hedge already returned exactly the batch's values; the
		// catch-up prefix was trimmed by runHedge.
	} else if j.prefix > 0 && len(vals) >= j.prefix {
		vals = vals[j.prefix:] // discard catch-up values (already served from cache)
	}
	if e.cache != nil && len(j.keys) > 0 && !e.cacheOff.Load() && j.epoch == e.cacheEpoch.Load() {
		e.cacheStore.commit(j.keys, vals)
	}
	e.recordBatch(vals, nil)
}

// execBatchMaybeHedged runs one job's pattern sequence, racing a hedge
// replica against a slow primary when hedging is armed. It returns the
// winning values and whether they came from the hedge (hedge values are
// already trimmed to the batch; primary values still carry the catch-up
// prefix).
func (e *RemotePowerEstimator) execBatchMaybeHedged(j batchJob) ([]float64, bool, error) {
	if e.hedgeInst == nil || e.SkipCompute || j.hedgeEnd == 0 {
		vals, err := e.execBatch(j.send)
		return vals, false, err
	}
	// Serialize primary batches: a primary the previous hedge outran may
	// still be on the wire, and the provider's ordered batch methods —
	// and the reconnect journal replay — require one outstanding power
	// batch at a time.
	e.drainPendingPrimary()
	prim := make(chan primaryOutcome, 1)
	send := j.send
	go func() {
		vals, err := e.execBatch(send)
		prim <- primaryOutcome{vals: vals, err: err}
	}()
	timer := time.NewTimer(e.hedgeAfter)
	select {
	case r := <-prim:
		timer.Stop()
		return r.vals, false, r.err
	case <-timer.C:
	}
	hvals, ok := e.runHedge(j)
	meter := e.inst.Meter()
	if !ok {
		// No usable hedge (broken, or it failed): wait out the primary.
		if meter != nil {
			meter.AddHedgedBatch(false)
		}
		r := <-prim
		return r.vals, false, r.err
	}
	// If the primary answered while the hedge ran, prefer it — that
	// keeps the pending-primary handoff empty. Identical values either
	// way: replicas are deterministic.
	select {
	case r := <-prim:
		if r.err == nil {
			if meter != nil {
				meter.AddHedgedBatch(false)
			}
			return r.vals, false, nil
		}
		if meter != nil {
			meter.AddHedgedBatch(true)
		}
		return hvals, true, nil
	default:
	}
	if meter != nil {
		meter.AddHedgedBatch(true)
	}
	e.hedgeMu.Lock()
	e.pendingPrimary = prim
	e.hedgeMu.Unlock()
	return hvals, true, nil
}

// drainPendingPrimary waits out a primary batch a previous hedge outran.
// Its values were superseded by the hedge's recorded answer; an error is
// equally moot — the epoch poison it caused heals through the normal
// reconnect path on the next call.
func (e *RemotePowerEstimator) drainPendingPrimary() {
	e.hedgeMu.Lock()
	prim := e.pendingPrimary
	e.pendingPrimary = nil
	e.hedgeMu.Unlock()
	if prim != nil {
		<-prim
	}
}

// runHedge issues one hedged batch: the slice of the logical pattern
// history the hedge instance has not yet executed (catch-up prefix plus
// the batch itself), trimmed to the batch's trailing values on success.
// Failure marks the hedge broken for the rest of the run — hedging is a
// latency optimization, never a correctness dependency.
func (e *RemotePowerEstimator) runHedge(j batchJob) ([]float64, bool) {
	e.hedgeMu.Lock()
	if e.hedgeBroken || j.hedgeEnd <= e.hedgePos {
		e.hedgeMu.Unlock()
		return nil, false
	}
	seq := append([][]signal.Bit(nil), e.hedgeHist[e.hedgePos:j.hedgeEnd]...)
	e.hedgeMu.Unlock()
	vals, err := e.hedgeInst.PowerBatch(seq, false)
	batchLen := len(j.send) - j.prefix
	if err != nil || len(vals) < batchLen {
		e.hedgeMu.Lock()
		e.hedgeBroken = true
		e.hedgeMu.Unlock()
		return nil, false
	}
	e.hedgeMu.Lock()
	e.hedgePos = j.hedgeEnd
	e.hedgeMu.Unlock()
	return vals[len(vals)-batchLen:], true
}

// recordBatch takes the lock and records one completed batch.
func (e *RemotePowerEstimator) recordBatch(vals []float64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recordLocked(vals, err)
}

// execBatch runs one pattern sequence through the configured remote
// method. In nonblocking mode the power path goes through the async stub
// and waits on its completion here, on the dispatcher goroutine — the
// wait is pipelining headroom, not caller-visible blocked time, so it
// stays out of the meter's blocked-time accounting.
func (e *RemotePowerEstimator) execBatch(batch [][]signal.Bit) ([]float64, error) {
	if e.dispatch != nil {
		return e.dispatch(batch, e.SkipCompute)
	}
	if e.Nonblocking {
		type res struct {
			vals []float64
			err  error
		}
		ch := make(chan res, 1)
		e.inst.PowerBatchAsync(batch, e.SkipCompute, func(vals []float64, err error) {
			ch <- res{vals, err}
		})
		r := <-ch
		return r.vals, r.err
	}
	return e.inst.PowerBatch(batch, e.SkipCompute)
}

// recordLocked appends batch results; the caller holds e.mu. A batch
// lost to a dead provider degrades the estimator instead of failing the
// run.
func (e *RemotePowerEstimator) recordLocked(vals []float64, err error) {
	if err != nil {
		if errors.Is(err, rmi.ErrProviderDead) {
			e.lostBatches++
			e.degradeLocked(err.Error())
			return
		}
		e.errs = append(e.errs, err)
		return
	}
	e.results = append(e.results, vals...)
}

// degradeLocked flips the estimator into fallback mode (once); the
// caller holds e.mu. Buffered unsent patterns are discarded — their
// estimates will come from the fallback path like all later ones.
func (e *RemotePowerEstimator) degradeLocked(reason string) {
	if e.degraded {
		return
	}
	e.degraded = true
	e.buf = nil
	if e.OnDegrade != nil {
		e.OnDegrade(reason)
	}
}

// Degraded reports whether the estimator has fallen back after its
// provider was declared dead.
func (e *RemotePowerEstimator) Degraded() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.degraded
}

// Close flushes the remaining partial buffer and waits for every
// in-flight batch. It must be called after the simulation run so Report
// sees all values ("real time" in the scenarios includes this drain).
func (e *RemotePowerEstimator) Close() error {
	e.mu.Lock()
	batch := e.takeBatchLocked()
	e.closed = true
	e.mu.Unlock()
	e.dispatchTaken(batch)
	// The drain is the one nonblocking wait that DOES stall the caller:
	// meter it so the CPU/real decomposition stays honest.
	//lint:ignore simdeterminism the drain is metered wall time for the CPU/real report split; it never feeds signal values.
	start := time.Now()
	e.wg.Wait()
	// A final hedge win may have left its slow primary on the wire; its
	// outcome is superseded but the goroutine must retire with the run.
	e.drainPendingPrimary()
	if m := e.inst.Meter(); m != nil {
		m.AddBlocked(time.Since(start))
	}
	// All jobs are recorded; retire the ordered dispatcher (if it ever
	// started). The empty Do establishes visibility of e.jobs when the
	// dispatcher was started on another goroutine.
	e.jobsOnce.Do(func() {})
	e.jobsClose.Do(func() {
		if e.jobs != nil {
			close(e.jobs)
		}
	})
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.errs) > 0 {
		return fmt.Errorf("core: %d remote estimation batches failed; first: %w", len(e.errs), e.errs[0])
	}
	return nil
}

// Report summarizes the per-pattern power values received so far.
type PowerReport struct {
	Samples   []float64
	Sent      int
	AvgPower  float64
	PeakPower float64
	// Degraded reports that the provider died mid-run and the estimator
	// fell back; LostBatches counts the batches whose values were lost.
	Degraded    bool
	LostBatches int
	// CacheHits/CacheMisses count batch lookups served locally versus sent
	// remote when an estimation cache is enabled (both zero otherwise);
	// CacheBytesSaved approximates the request traffic the hits avoided.
	CacheHits       int64
	CacheMisses     int64
	CacheBytesSaved int64
}

// Report returns the accumulated remote estimates.
func (e *RemotePowerEstimator) Report() PowerReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := PowerReport{
		Samples: append([]float64(nil), e.results...), Sent: e.sent,
		Degraded: e.degraded, LostBatches: e.lostBatches,
		CacheHits:       e.cacheHits.Load(),
		CacheMisses:     e.cacheMiss.Load(),
		CacheBytesSaved: e.cacheSaved.Load(),
	}
	if len(r.Samples) > 1 {
		sum := 0.0
		for _, v := range r.Samples {
			sum += v
			if v > r.PeakPower {
				r.PeakPower = v
			}
		}
		r.AvgPower = sum / float64(len(r.Samples)-1) // first pattern is free
	}
	return r
}

// NewRemoteTimingEstimator builds a buffered nonblocking estimator over
// the provider's dynamic timing method: the "accurate output timing
// information" the paper's example serves remotely because it needs the
// gate-level structure. It shares the power estimator's buffering and
// drain machinery; SkipCompute is not supported by the timing method and
// is ignored.
func NewRemoteTimingEstimator(inst *iplib.BoundInstance, offer iplib.EstimatorOffer, bufferSize int, nonblocking bool) *RemotePowerEstimator {
	e := NewRemotePowerEstimator(inst, offer, bufferSize, nonblocking)
	e.dispatch = func(batch [][]signal.Bit, _ bool) ([]float64, error) {
		return inst.TimingBatch(batch)
	}
	e.method = iplib.MethodTimingBatch
	e.reqBytes = func(batch [][]signal.Bit) int {
		b, err := rmi.Encode(iplib.TimingBatchReq{Instance: inst.ID(), Patterns: batch})
		if err != nil {
			return 0
		}
		return len(b)
	}
	return e
}

// RemoteMult is the paper's MULT as a remote module. The instantiation is
// identical to any local module, but cites a bound provider instance. In
// the ER configuration only IP-protected methods (accurate estimation)
// run remotely while the public part computes products locally; with
// FullyRemote set (the MR configuration), every functional evaluation is
// a synchronous remote invocation — each event reaching the module pays
// marshalling and transfer, which is exactly the overhead Table 2
// quantifies.
type RemoteMult struct {
	*module.Skeleton
	a, b, o *module.Port
	width   int
	inst    *iplib.BoundInstance
	// FullyRemote selects the MR behavior.
	FullyRemote bool
	// Delay is the output propagation delay.
	Delay int
	// OnDegrade, when non-nil, is invoked once if the provider dies and
	// functional evaluation degrades to the local public part.
	OnDegrade func(reason string)

	degraded atomic.Bool
}

// NewRemoteMult instantiates the remote multiplier over the connectors,
// bound to a provider instance of matching width.
func NewRemoteMult(name string, width int, a, b, o *module.Connector, inst *iplib.BoundInstance) (*RemoteMult, error) {
	if inst.Width() != width {
		return nil, fmt.Errorf("core: remote instance width %d, design needs %d", inst.Width(), width)
	}
	m := &RemoteMult{width: width, inst: inst, Delay: 1}
	m.Skeleton = module.NewSkeleton(name, m)
	m.a = m.AddPort("a", module.In, width, a)
	m.b = m.AddPort("b", module.In, width, b)
	m.o = m.AddPort("o", module.Out, 2*width, o)
	return m, nil
}

// Instance returns the bound provider instance.
func (m *RemoteMult) Instance() *iplib.BoundInstance { return m.inst }

// ProcessInputEvent computes the product — locally from the public part,
// or remotely when FullyRemote. If the provider is declared dead
// mid-simulation, functional evaluation degrades permanently to the
// local public part (the downloadable functional model remains
// available, so the design keeps simulating with reduced fidelity).
func (m *RemoteMult) ProcessInputEvent(ctx *module.Ctx, ev *module.PortEvent) {
	aw, aok := ctx.InputWordOn(m.a)
	bw, bok := ctx.InputWordOn(m.b)
	if !aok || !bok {
		return
	}
	if m.FullyRemote && !m.degraded.Load() {
		bufp := patternPool.Get().(*[]signal.Bit)
		pattern := wordsToBits((*bufp)[:0], aw, bw)
		out, err := m.inst.Eval(pattern)
		*bufp = pattern[:0]
		patternPool.Put(bufp)
		if err == nil {
			// out is freshly decoded per call (both codecs), so the word
			// can take ownership instead of copying.
			ctx.Drive(m.o, signal.WordValue{W: signal.Word{Bits: out}}, 1)
			return
		}
		if !errors.Is(err, rmi.ErrProviderDead) {
			panic(fmt.Sprintf("core: remote eval of %s: %v", m.ModuleName(), err))
		}
		if !m.degraded.Swap(true) && m.OnDegrade != nil {
			m.OnDegrade(err.Error())
		}
	}
	av, _ := aw.Uint64()
	bv, _ := bw.Uint64()
	prod := av * bv
	if 2*m.width < 64 {
		prod &= (1 << uint(2*m.width)) - 1
	}
	ctx.Drive(m.o, signal.WordValue{W: signal.WordFromUint64(prod, 2*m.width)}, 1)
}

// Degraded reports whether remote evaluation has fallen back to the
// local public part.
func (m *RemoteMult) Degraded() bool { return m.degraded.Load() }
