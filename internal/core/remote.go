// Package core ties gocad together into the paper's headline capability:
// VIRTUAL SIMULATION — the early evaluation of a design comprising
// unpurchased IP components, with accuracy that requires undisclosed
// implementation details. It provides the remote-module proxies that
// instantiate like any local module but execute IP-protected methods on
// the provider's server, the buffered nonblocking remote power estimator,
// the provider-connection helpers, and the AL/ER/MR scenario harness that
// regenerates the paper's Table 2 and Figure 3.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/estim"
	"repro/internal/iplib"
	"repro/internal/module"
	"repro/internal/rmi"
	"repro/internal/signal"
)

// wordsToBits concatenates the bits of the given words LSB-first — the
// component-input pattern layout shared with provider-side netlists
// (operand a in the low bits, operand b above it).
func wordsToBits(words ...signal.Word) []signal.Bit {
	var out []signal.Bit
	for _, w := range words {
		out = append(out, w.Bits...)
	}
	return out
}

// RemotePowerEstimator is the paper's remote gate-level power estimator
// with the two optimizations of the performance study:
//
//   - PATTERN BUFFERING: input patterns are accumulated and issued to the
//     provider in batches of BufferSize, amortizing the per-call RMI
//     overhead (the knob of Figure 3);
//   - NONBLOCKING ESTIMATION: batches are dispatched on worker
//     goroutines (the paper's threads), hiding the latency of long
//     gate-level simulator runs behind ongoing event processing.
//
// Per-pattern estimates therefore arrive asynchronously: the estimator
// returns the null value to the estimation engine at token time (the
// sample is recorded as deferred) and accumulates the real values, which
// Report exposes after Close drains the in-flight batches.
type RemotePowerEstimator struct {
	estim.Meta
	inst *iplib.BoundInstance
	// BufferSize is the number of patterns per batch (≥ 1).
	BufferSize int
	// Nonblocking dispatches batches on worker goroutines.
	Nonblocking bool
	// SkipCompute asks the provider to acknowledge batches without
	// running the power simulator (the Figure 3 methodology, isolating
	// RMI overhead from compute).
	SkipCompute bool
	// Fallback, when non-nil, produces estimates after the provider is
	// declared dead (every transport retry and reconnect exhausted); nil
	// degrades to null values — either way the simulation completes with
	// partial estimates instead of aborting.
	Fallback estim.Estimator
	// OnDegrade, when non-nil, is invoked exactly once when the
	// estimator degrades, typically to call estim.Setup.MarkDegraded.
	// It runs with the estimator's lock held; it must not call back into
	// the estimator.
	OnDegrade func(reason string)

	// dispatch runs one batch remotely; the default is the power-batch
	// method, NewRemoteTimingEstimator substitutes the timing method.
	dispatch func(batch [][]signal.Bit, skip bool) ([]float64, error)

	mu          sync.Mutex
	buf         [][]signal.Bit
	results     []float64
	errs        []error
	sent        int
	wg          sync.WaitGroup
	closed      bool
	degraded    bool
	lostBatches int
}

// NewRemotePowerEstimator builds the estimator from a provider offer.
func NewRemotePowerEstimator(inst *iplib.BoundInstance, offer iplib.EstimatorOffer, bufferSize int, nonblocking bool) *RemotePowerEstimator {
	if bufferSize < 1 {
		bufferSize = 1
	}
	return &RemotePowerEstimator{
		Meta: estim.Meta{
			Name:    offer.Name,
			Param:   offer.Parameter(),
			ErrPct:  offer.ErrPct,
			Cost:    offer.CostCents,
			CPUTime: offer.CPUTime(),
			IsRem:   true,
		},
		inst:        inst,
		BufferSize:  bufferSize,
		Nonblocking: nonblocking,
	}
}

// Estimate implements estim.Estimator: it snapshots the component's input
// pattern into the buffer, flushing a full buffer to the provider, and
// returns the deferred (null) value.
func (e *RemotePowerEstimator) Estimate(ec *estim.EvalContext) (estim.ParamValue, error) {
	var words []signal.Word
	for _, v := range ec.Inputs {
		switch x := v.(type) {
		case signal.WordValue:
			words = append(words, x.W)
		case signal.BitValue:
			words = append(words, signal.Word{Bits: []signal.Bit{x.B}})
		case nil:
			return estim.NullValue{}, nil // inputs not yet driven
		}
	}
	pattern := wordsToBits(words...)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: estimator %s used after Close", e.Name)
	}
	if e.degraded {
		// Provider declared dead: serve the fallback estimator locally.
		if e.Fallback != nil {
			v, err := e.Fallback.Estimate(ec)
			e.mu.Unlock()
			return v, err
		}
		e.mu.Unlock()
		return estim.NullValue{}, nil
	}
	e.buf = append(e.buf, pattern)
	var batch [][]signal.Bit
	if len(e.buf) >= e.BufferSize {
		batch = e.takeBatchLocked()
	}
	e.mu.Unlock()
	e.dispatchTaken(batch)
	return estim.NullValue{}, nil
}

// takeBatchLocked removes the pending batch from the buffer and
// registers it in flight; the caller holds e.mu, and must hand the batch
// to dispatchTaken after unlocking. The wg.Add happens here, under the
// lock, so a concurrent Close cannot slip its wg.Wait between the take
// and the dispatch.
func (e *RemotePowerEstimator) takeBatchLocked() [][]signal.Bit {
	if len(e.buf) == 0 {
		return nil
	}
	batch := e.buf
	e.buf = nil
	e.sent += len(batch)
	e.wg.Add(1)
	return batch
}

// dispatchTaken runs one batch previously taken by takeBatchLocked and
// balances its wg.Add. It must be called WITHOUT e.mu held: the batch is
// a network round trip (potentially a whole retry-reconnect ladder), and
// holding the lock across it would stall every Estimate call — the
// lockheld-rmi invariant. A nil batch is a no-op.
func (e *RemotePowerEstimator) dispatchTaken(batch [][]signal.Bit) {
	if batch == nil {
		return
	}
	if !e.Nonblocking {
		defer e.wg.Done()
		e.recordBatch(e.dispatchBatch(batch))
		return
	}
	if e.dispatch == nil {
		// The power path has a native async stub; use it.
		e.inst.PowerBatchAsync(batch, e.SkipCompute, func(vals []float64, err error) {
			defer e.wg.Done()
			e.recordBatch(vals, err)
		})
		return
	}
	go func() {
		defer e.wg.Done()
		e.recordBatch(e.dispatch(batch, e.SkipCompute))
	}()
}

// recordBatch takes the lock and records one completed batch.
func (e *RemotePowerEstimator) recordBatch(vals []float64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recordLocked(vals, err)
}

// dispatchBatch runs one batch synchronously through the configured
// remote method.
func (e *RemotePowerEstimator) dispatchBatch(batch [][]signal.Bit) ([]float64, error) {
	if e.dispatch != nil {
		return e.dispatch(batch, e.SkipCompute)
	}
	return e.inst.PowerBatch(batch, e.SkipCompute)
}

// recordLocked appends batch results; the caller holds e.mu. A batch
// lost to a dead provider degrades the estimator instead of failing the
// run.
func (e *RemotePowerEstimator) recordLocked(vals []float64, err error) {
	if err != nil {
		if errors.Is(err, rmi.ErrProviderDead) {
			e.lostBatches++
			e.degradeLocked(err.Error())
			return
		}
		e.errs = append(e.errs, err)
		return
	}
	e.results = append(e.results, vals...)
}

// degradeLocked flips the estimator into fallback mode (once); the
// caller holds e.mu. Buffered unsent patterns are discarded — their
// estimates will come from the fallback path like all later ones.
func (e *RemotePowerEstimator) degradeLocked(reason string) {
	if e.degraded {
		return
	}
	e.degraded = true
	e.buf = nil
	if e.OnDegrade != nil {
		e.OnDegrade(reason)
	}
}

// Degraded reports whether the estimator has fallen back after its
// provider was declared dead.
func (e *RemotePowerEstimator) Degraded() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.degraded
}

// Close flushes the remaining partial buffer and waits for every
// in-flight batch. It must be called after the simulation run so Report
// sees all values ("real time" in the scenarios includes this drain).
func (e *RemotePowerEstimator) Close() error {
	e.mu.Lock()
	batch := e.takeBatchLocked()
	e.closed = true
	e.mu.Unlock()
	e.dispatchTaken(batch)
	// The drain is the one nonblocking wait that DOES stall the caller:
	// meter it so the CPU/real decomposition stays honest.
	//lint:ignore simdeterminism the drain is metered wall time for the CPU/real report split; it never feeds signal values.
	start := time.Now()
	e.wg.Wait()
	if m := e.inst.Meter(); m != nil {
		m.AddBlocked(time.Since(start))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.errs) > 0 {
		return fmt.Errorf("core: %d remote estimation batches failed; first: %w", len(e.errs), e.errs[0])
	}
	return nil
}

// Report summarizes the per-pattern power values received so far.
type PowerReport struct {
	Samples   []float64
	Sent      int
	AvgPower  float64
	PeakPower float64
	// Degraded reports that the provider died mid-run and the estimator
	// fell back; LostBatches counts the batches whose values were lost.
	Degraded    bool
	LostBatches int
}

// Report returns the accumulated remote estimates.
func (e *RemotePowerEstimator) Report() PowerReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := PowerReport{
		Samples: append([]float64(nil), e.results...), Sent: e.sent,
		Degraded: e.degraded, LostBatches: e.lostBatches,
	}
	if len(r.Samples) > 1 {
		sum := 0.0
		for _, v := range r.Samples {
			sum += v
			if v > r.PeakPower {
				r.PeakPower = v
			}
		}
		r.AvgPower = sum / float64(len(r.Samples)-1) // first pattern is free
	}
	return r
}

// NewRemoteTimingEstimator builds a buffered nonblocking estimator over
// the provider's dynamic timing method: the "accurate output timing
// information" the paper's example serves remotely because it needs the
// gate-level structure. It shares the power estimator's buffering and
// drain machinery; SkipCompute is not supported by the timing method and
// is ignored.
func NewRemoteTimingEstimator(inst *iplib.BoundInstance, offer iplib.EstimatorOffer, bufferSize int, nonblocking bool) *RemotePowerEstimator {
	e := NewRemotePowerEstimator(inst, offer, bufferSize, nonblocking)
	e.dispatch = func(batch [][]signal.Bit, _ bool) ([]float64, error) {
		return inst.TimingBatch(batch)
	}
	return e
}

// RemoteMult is the paper's MULT as a remote module. The instantiation is
// identical to any local module, but cites a bound provider instance. In
// the ER configuration only IP-protected methods (accurate estimation)
// run remotely while the public part computes products locally; with
// FullyRemote set (the MR configuration), every functional evaluation is
// a synchronous remote invocation — each event reaching the module pays
// marshalling and transfer, which is exactly the overhead Table 2
// quantifies.
type RemoteMult struct {
	*module.Skeleton
	a, b, o *module.Port
	width   int
	inst    *iplib.BoundInstance
	// FullyRemote selects the MR behavior.
	FullyRemote bool
	// Delay is the output propagation delay.
	Delay int
	// OnDegrade, when non-nil, is invoked once if the provider dies and
	// functional evaluation degrades to the local public part.
	OnDegrade func(reason string)

	degraded atomic.Bool
}

// NewRemoteMult instantiates the remote multiplier over the connectors,
// bound to a provider instance of matching width.
func NewRemoteMult(name string, width int, a, b, o *module.Connector, inst *iplib.BoundInstance) (*RemoteMult, error) {
	if inst.Width() != width {
		return nil, fmt.Errorf("core: remote instance width %d, design needs %d", inst.Width(), width)
	}
	m := &RemoteMult{width: width, inst: inst, Delay: 1}
	m.Skeleton = module.NewSkeleton(name, m)
	m.a = m.AddPort("a", module.In, width, a)
	m.b = m.AddPort("b", module.In, width, b)
	m.o = m.AddPort("o", module.Out, 2*width, o)
	return m, nil
}

// Instance returns the bound provider instance.
func (m *RemoteMult) Instance() *iplib.BoundInstance { return m.inst }

// ProcessInputEvent computes the product — locally from the public part,
// or remotely when FullyRemote. If the provider is declared dead
// mid-simulation, functional evaluation degrades permanently to the
// local public part (the downloadable functional model remains
// available, so the design keeps simulating with reduced fidelity).
func (m *RemoteMult) ProcessInputEvent(ctx *module.Ctx, ev *module.PortEvent) {
	aw, aok := ctx.InputWordOn(m.a)
	bw, bok := ctx.InputWordOn(m.b)
	if !aok || !bok {
		return
	}
	if m.FullyRemote && !m.degraded.Load() {
		out, err := m.inst.Eval(wordsToBits(aw, bw))
		if err == nil {
			w := signal.Word{Bits: append([]signal.Bit(nil), out...)}
			ctx.Drive(m.o, signal.WordValue{W: w}, 1)
			return
		}
		if !errors.Is(err, rmi.ErrProviderDead) {
			panic(fmt.Sprintf("core: remote eval of %s: %v", m.ModuleName(), err))
		}
		if !m.degraded.Swap(true) && m.OnDegrade != nil {
			m.OnDegrade(err.Error())
		}
	}
	av, _ := aw.Uint64()
	bv, _ := bw.Uint64()
	prod := av * bv
	if 2*m.width < 64 {
		prod &= (1 << uint(2*m.width)) - 1
	}
	ctx.Drive(m.o, signal.WordValue{W: signal.WordFromUint64(prod, 2*m.width)}, 1)
}

// Degraded reports whether remote evaluation has fallen back to the
// local public part.
func (m *RemoteMult) Degraded() bool { return m.degraded.Load() }
