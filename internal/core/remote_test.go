package core

import (
	"strings"
	"testing"

	"repro/internal/estim"
	"repro/internal/iplib"
	"repro/internal/module"
	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/signal"
)

// bindMult spins up a provider and binds a multiplier instance.
func bindMult(t *testing.T, width int) (*iplib.BoundInstance, *Connection) {
	t.Helper()
	prov := provider.New("p")
	if err := prov.Register(provider.MultFastLowPower()); err != nil {
		t.Fatal(err)
	}
	conn, err := ConnectInProcess(prov, "u", netsim.InProcess)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	inst, err := conn.Client.Bind("MultFastLowPower", width, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst, conn
}

func remoteOffer(t *testing.T, inst *iplib.BoundInstance) iplib.EstimatorOffer {
	t.Helper()
	for _, e := range inst.Enabled() {
		if e.Remote && e.Parameter() == estim.ParamAvgPower {
			return e
		}
	}
	t.Fatal("no remote power offer")
	return iplib.EstimatorOffer{}
}

func evalCtx(width int, a, b uint64) *estim.EvalContext {
	return &estim.EvalContext{
		Module: "MULT",
		Inputs: []signal.Value{
			signal.WordValue{W: signal.WordFromUint64(a, width)},
			signal.WordValue{W: signal.WordFromUint64(b, width)},
		},
	}
}

func TestRemoteEstimatorPartialBufferFlushedOnClose(t *testing.T) {
	inst, _ := bindMult(t, 4)
	e := NewRemotePowerEstimator(inst, remoteOffer(t, inst), 10, false)
	// 3 patterns, buffer 10: nothing flushes during estimation.
	for i := uint64(0); i < 3; i++ {
		if _, err := e.Estimate(evalCtx(4, i, 15-i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Report().Samples) != 0 {
		t.Fatal("premature flush")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Report().Samples); got != 3 {
		t.Errorf("samples after close = %d, want 3", got)
	}
}

func TestRemoteEstimatorNilInputDeferred(t *testing.T) {
	inst, _ := bindMult(t, 4)
	e := NewRemotePowerEstimator(inst, remoteOffer(t, inst), 2, false)
	v, err := e.Estimate(&estim.EvalContext{Inputs: []signal.Value{nil, nil}})
	if err != nil || !v.IsNull() {
		t.Errorf("undriven inputs: %v, %v", v, err)
	}
	if e.Report().Sent != 0 {
		t.Error("undriven inputs were buffered")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteEstimatorErrorSurfacesAtClose(t *testing.T) {
	inst, conn := bindMult(t, 4)
	e := NewRemotePowerEstimator(inst, remoteOffer(t, inst), 1, false)
	// Kill the session so the flush fails.
	conn.Close()
	if _, err := e.Estimate(evalCtx(4, 1, 2)); err != nil {
		t.Logf("estimate already failed synchronously: %v", err)
	}
	err := e.Close()
	if err == nil {
		t.Fatal("Close hid the transport failure")
	}
	if !strings.Contains(err.Error(), "batches failed") {
		t.Errorf("error text: %v", err)
	}
}

func TestRemoteEstimatorBufferSizeFloor(t *testing.T) {
	inst, _ := bindMult(t, 4)
	e := NewRemotePowerEstimator(inst, remoteOffer(t, inst), 0, false)
	if e.BufferSize != 1 {
		t.Errorf("buffer floor = %d, want 1", e.BufferSize)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteEstimatorMetadataFromOffer(t *testing.T) {
	inst, _ := bindMult(t, 4)
	offer := remoteOffer(t, inst)
	e := NewRemotePowerEstimator(inst, offer, 5, true)
	if e.EstimatorName() != offer.Name || !e.Remote() {
		t.Error("metadata not propagated")
	}
	if e.Parameter() != estim.ParamAvgPower {
		t.Errorf("parameter = %v", e.Parameter())
	}
	if e.CostPerCall() != offer.CostCents {
		t.Error("cost not propagated")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteMultPanicsOnDeadSession(t *testing.T) {
	inst, conn := bindMult(t, 4)
	a := module.NewWordConnector("a", 4)
	b := module.NewWordConnector("b", 4)
	o := module.NewWordConnector("o", 8)
	rm, err := NewRemoteMult("M", 4, a, b, o, inst)
	if err != nil {
		t.Fatal(err)
	}
	rm.FullyRemote = true
	conn.Close()
	ina := module.NewPatternInput("ina", 4, []signal.Value{
		signal.WordValue{W: signal.WordFromUint64(3, 4)}}, 1, a)
	inb := module.NewPatternInput("inb", 4, []signal.Value{
		signal.WordValue{W: signal.WordFromUint64(5, 4)}}, 1, b)
	out := module.NewPrimaryOutput("out", 8, o)
	simu := module.NewSimulation(module.NewCircuit("c", ina, inb, rm, out))
	defer func() {
		if recover() == nil {
			t.Error("remote eval on dead session did not panic")
		}
	}()
	simu.Start(nil)
}

func timingOffer(t *testing.T, inst *iplib.BoundInstance) iplib.EstimatorOffer {
	t.Helper()
	for _, e := range inst.Enabled() {
		if e.Remote && e.Parameter() == estim.ParamDelay {
			return e
		}
	}
	t.Fatal("no remote timing offer")
	return iplib.EstimatorOffer{}
}

func TestRemoteTimingEstimatorEndToEnd(t *testing.T) {
	// Both remote estimators — accurate power AND accurate timing — run
	// in one simulation under one setup: the Figure 1 configuration
	// ("Power model 2, Timing model 2") served from one session.
	inst, conn := bindMult(t, 8)
	power := NewRemotePowerEstimator(inst, remoteOffer(t, inst), 4, true)
	timing := NewRemoteTimingEstimator(inst, timingOffer(t, inst), 4, true)

	a := module.NewWordConnector("A", 8)
	ar := module.NewWordConnector("AR", 8)
	b := module.NewWordConnector("B", 8)
	br := module.NewWordConnector("BR", 8)
	o := module.NewWordConnector("O", 16)
	ina := module.NewRandomPrimaryInput("INA", 8, 1, 12, 10, a)
	rega := module.NewRegister("REGA", 8, a, ar)
	inb := module.NewRandomPrimaryInput("INB", 8, 2, 12, 10, b)
	regb := module.NewRegister("REGB", 8, b, br)
	mult := module.NewMult("MULT", 8, ar, br, o)
	mult.AddEstimator(power)
	mult.AddEstimator(timing)
	out := module.NewPrimaryOutput("OUT", 16, o)
	simu := module.NewSimulation(module.NewCircuit("c", ina, rega, inb, regb, mult, out))
	setup := estim.NewSetup("both")
	setup.Set(estim.ParamAvgPower, estim.Criteria{Prefer: estim.PreferAccuracy})
	setup.Set(estim.ParamDelay, estim.Criteria{Prefer: estim.PreferAccuracy})
	if st := simu.Start(setup); st.Err != nil {
		t.Fatal(st.Err)
	}
	if err := power.Close(); err != nil {
		t.Fatal(err)
	}
	if err := timing.Close(); err != nil {
		t.Fatal(err)
	}
	prep, trep := power.Report(), timing.Report()
	if len(prep.Samples) != 12 || len(trep.Samples) != 12 {
		t.Fatalf("samples: power %d, timing %d; want 12 each", len(prep.Samples), len(trep.Samples))
	}
	// Delays must be nonnegative and bounded by the static critical path.
	static, err := inst.Static("delay")
	if err != nil {
		t.Fatal(err)
	}
	anyPositive := false
	for _, d := range trep.Samples {
		if d < 0 || d > static {
			t.Fatalf("delay %v outside [0, %v]", d, static)
		}
		if d > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("no switching delay observed over random patterns")
	}
	fees, err := conn.Client.Fees()
	if err != nil {
		t.Fatal(err)
	}
	// license 50 + power 12*0.1 + timing 12*0.05 = 51.8
	if fees < 51.79 || fees > 51.81 {
		t.Errorf("fees = %v, want 51.8", fees)
	}
}
