package core

import (
	"net"
	"testing"

	"repro/internal/estim"
	"repro/internal/netsim"
	"repro/internal/provider"
)

// resilientCfg returns a small, deterministic scenario configuration:
// blocking estimation keeps the batch order (and thus the provider's
// stateful power simulation) identical across runs.
func resilientCfg() Config {
	cfg := DefaultConfig()
	cfg.Patterns = 40
	cfg.Nonblocking = false
	return cfg
}

// faultDialer interposes a FaultyDialer over the in-process pipe and
// exposes it for post-run assertions.
func faultDialer(plans []*netsim.FaultPlan) (*netsim.FaultyDialer, func(p *provider.Provider) func() (net.Conn, error)) {
	d := &netsim.FaultyDialer{Plans: plans}
	return d, func(p *provider.Provider) func() (net.Conn, error) {
		d.Base = PipeDialer(p)
		return d.Dial
	}
}

// TestFaultedRunMatchesFaultFree is the acceptance test of the resilience
// layer: the provider connection is killed mid-simulation at a scripted
// operation count, and the run must complete through retry + reconnect +
// session replay with results identical to the fault-free run.
func TestFaultedRunMatchesFaultFree(t *testing.T) {
	for _, s := range []Scenario{EstimatorRemote, MultiplierRemote} {
		t.Run(s.String(), func(t *testing.T) {
			base, err := Run(s, resilientCfg())
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			if base.PowerSamples == 0 {
				t.Fatal("fault-free run produced no power samples; test premise broken")
			}

			cfg := resilientCfg()
			r := DefaultResilience()
			cfg.Resilience = &r
			// Kill the first connection partway into the measured window;
			// the second connection is clean.
			dialer, via := faultDialer([]*netsim.FaultPlan{netsim.ResetAfterWrites(9), nil})
			cfg.DialVia = via
			faulted, err := Run(s, cfg)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}

			if fired := dialer.Conn(0).Fired(); len(fired) != 1 {
				t.Fatalf("scripted fault never fired (fired=%v); the run saw no fault", fired)
			}
			if dialer.Dials() < 2 {
				t.Fatalf("dials = %d, want ≥ 2 (reconnect must have happened)", dialer.Dials())
			}
			if faulted.Power.Degraded {
				t.Fatal("run degraded; a single transient fault must heal, not degrade")
			}
			if faulted.Products != base.Products {
				t.Errorf("products: faulted %d, fault-free %d", faulted.Products, base.Products)
			}
			if len(faulted.Power.Samples) != len(base.Power.Samples) {
				t.Fatalf("power samples: faulted %d, fault-free %d",
					len(faulted.Power.Samples), len(base.Power.Samples))
			}
			for i := range base.Power.Samples {
				if faulted.Power.Samples[i] != base.Power.Samples[i] {
					t.Fatalf("power sample %d differs: faulted %v, fault-free %v (session replay lost provider state)",
						i, faulted.Power.Samples[i], base.Power.Samples[i])
				}
			}
		})
	}
}

// TestRunDegradesWhenProviderDies kills every connection, including the
// reconnect attempts: the run must complete with partial estimates and a
// degradation record instead of failing.
func TestRunDegradesWhenProviderDies(t *testing.T) {
	for _, s := range []Scenario{EstimatorRemote, MultiplierRemote} {
		t.Run(s.String(), func(t *testing.T) {
			base, err := Run(s, resilientCfg())
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}

			cfg := resilientCfg()
			r := DefaultResilience()
			cfg.Resilience = &r
			// First connection dies mid-run; every reconnect dies during
			// its handshake. DefaultRetry makes 4 attempts, so 4 plans.
			_, via := faultDialer([]*netsim.FaultPlan{
				netsim.ResetAfterWrites(9),
				netsim.ResetAfterWrites(1),
				netsim.ResetAfterWrites(1),
				netsim.ResetAfterWrites(1),
			})
			cfg.DialVia = via
			res, err := Run(s, cfg)
			if err != nil {
				t.Fatalf("degraded run must complete, got: %v", err)
			}
			if !res.Power.Degraded {
				t.Fatal("run not marked degraded")
			}
			if res.Power.LostBatches < 1 {
				t.Errorf("lost batches = %d, want ≥ 1", res.Power.LostBatches)
			}
			if res.Products != base.Products {
				t.Errorf("products: degraded %d, fault-free %d — the design must keep simulating",
					res.Products, base.Products)
			}
			if len(res.Power.Samples) >= len(base.Power.Samples) {
				t.Errorf("degraded run has %d samples, fault-free %d; estimates after death must come from the fallback",
					len(res.Power.Samples), len(base.Power.Samples))
			}
		})
	}
}

// TestSetupMarkDegraded covers the degradation bookkeeping the OnDegrade
// hooks feed: first report per (module, parameter) warns, repeats dedupe.
func TestSetupMarkDegraded(t *testing.T) {
	s := estim.NewSetup("t")
	if s.Degraded() {
		t.Fatal("fresh setup already degraded")
	}
	s.MarkDegraded("MULT", estim.ParamAvgPower, "provider dead")
	s.MarkDegraded("MULT", estim.ParamAvgPower, "second report")
	if !s.Degraded() {
		t.Fatal("setup not degraded after MarkDegraded")
	}
	reason, ok := s.DegradedFor("MULT", estim.ParamAvgPower)
	if !ok || reason != "provider dead" {
		t.Errorf("DegradedFor = %q, %v; want first reason kept", reason, ok)
	}
	if _, ok := s.DegradedFor("OTHER", estim.ParamAvgPower); ok {
		t.Error("unrelated module reported degraded")
	}
	if n := len(s.Warnings()); n != 1 {
		t.Errorf("warnings = %d, want 1 (duplicate reports dedupe)", n)
	}
}
