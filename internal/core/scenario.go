package core

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/estim"
	"repro/internal/module"
	"repro/internal/netsim"
	"repro/internal/provider"
	"repro/internal/replica"
	"repro/internal/rmi"
	"repro/internal/shard"
	"repro/internal/sim"
)

// Scenario selects one of the paper's three performance-analysis
// configurations over the Figure 2 design.
type Scenario int

// The scenarios of Table 2.
const (
	// AllLocal (AL): every design component is local — a classical design
	// with no IP protection, used for comparison.
	AllLocal Scenario = iota
	// EstimatorRemote (ER): only the multiplier's accurate power
	// estimation method is remotely accessed.
	EstimatorRemote
	// MultiplierRemote (MR): the entire multiplier runs on the IP
	// provider's server ("not realistic, but useful for comparison").
	MultiplierRemote
)

// String returns the paper's abbreviation.
func (s Scenario) String() string {
	switch s {
	case AllLocal:
		return "AL"
	case EstimatorRemote:
		return "ER"
	case MultiplierRemote:
		return "MR"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Config parameterizes a scenario run.
type Config struct {
	// Width is the operand width (the paper: 16).
	Width int
	// Patterns is the number of random input patterns (the paper: 100).
	Patterns int
	// BufferSize is the remote-estimation pattern buffer (the paper: 5).
	BufferSize int
	// Profile is the emulated network environment.
	Profile netsim.Profile
	// Nonblocking dispatches remote estimation on worker goroutines.
	Nonblocking bool
	// SkipCompute asks the provider to skip the actual power simulation
	// (Figure 3's methodology — pure RMI overhead).
	SkipCompute bool
	// Seed makes the random stimulus reproducible.
	Seed int64
	// Period is the stimulus period in simulation time units.
	Period sim.Time
	// Resilience, when non-nil, hardens the provider session: per-call
	// deadlines, backoff retry, and session recovery (reconnect + replay).
	Resilience *Resilience
	// DialVia, when non-nil, overrides the provider transport dialer —
	// fault-injection tests interpose netsim.FaultyDialer here. nil uses
	// the in-process pipe.
	DialVia func(p *provider.Provider) func() (net.Conn, error)
	// Workers bounds the concurrency of the experiment drivers that fan
	// out over independent scenario runs (the Table 2 grid, the Figure 3
	// sweep): 0 uses one worker per CPU, 1 runs the legacy serial order.
	// Each scenario run builds its own design and provider, so runs cannot
	// interfere; results are returned in grid order regardless.
	Workers int
	// InFlight bounds the RMI transport's pipelined in-flight calls:
	// 0 uses rmi.DefaultInFlight, 1 reproduces the stop-and-wait wire
	// behavior exactly. Values are bit-identical at any depth.
	InFlight int
	// Cache, when non-nil, serves repeat estimation batches from a shared
	// content-addressed cache instead of the provider (see
	// EstimationCache). Values are bit-identical with or without it.
	Cache *EstimationCache
	// Replicas is the provider replica count for the remote scenarios:
	// 0 or 1 runs the classic single provider, N > 1 stands up N
	// equivalent providers behind health-gated failover (ConnectReplicated)
	// so a dying provider re-routes the session — journal replay included —
	// to the next healthy replica. Results are bit-identical at any count
	// while at least one replica stays reachable.
	Replicas int
	// ReplicaDialers, when non-nil, maps the run's replica providers to
	// their transport dialers — the chaos harness interposes scripted
	// fault dialers here. It is called once per run with the freshly built
	// providers, so concurrent grid cells never share schedule state. nil
	// uses in-process pipes.
	ReplicaDialers func(provs []*provider.Provider) []func() (net.Conn, error)
	// Breaker tunes the per-replica circuit breakers (zero fields use
	// production defaults).
	Breaker replica.BreakerConfig
	// BreakerClock injects the breakers' time source for deterministic
	// tests; nil uses the wall clock.
	BreakerClock replica.Clock
	// HedgeAfter arms hedged estimation batches when Replicas >= 2: a
	// batch unanswered after this duration is re-issued to a second
	// replica and the first answer wins. 0 disables hedging.
	HedgeAfter time.Duration
	// Shards partitions the design across N concurrent schedulers
	// (internal/shard) cut by connector cost: 0 or 1 run the classic
	// single-scheduler path, N > 1 the sharded engine. Results are
	// bit-identical at any count — the shard determinism matrix enforces
	// Result.Fingerprint equality against the 1-shard baseline.
	Shards int
	// ShardWindow is the conservative synchronization window for sharded
	// runs (instants of solo runahead between barriers); 0 uses
	// shard.DefaultWindow. Any value yields identical results.
	ShardWindow int
	// ShardWorkers bounds the shard engine's per-round delivery pool:
	// 0 one worker per CPU, 1 serial. Identical results at any count.
	ShardWorkers int
	// Codec selects the RMI wire framing for the remote scenarios: the
	// zero value is the binary codec (wire format v1), rmi.CodecGob the
	// legacy gob framing. Results are bit-identical under either codec —
	// the codec parity matrix enforces Result.Fingerprint equality.
	Codec rmi.Codec
}

// DefaultConfig returns the paper's experimental parameters.
func DefaultConfig() Config {
	return Config{
		Width:       16,
		Patterns:    100,
		BufferSize:  5,
		Profile:     netsim.InProcess,
		Nonblocking: true,
		Seed:        1999,
		Period:      10,
	}
}

// Result is one row of the performance study.
type Result struct {
	Scenario Scenario
	Host     string
	// CPUTime approximates the paper's CPU-time column: wall-clock minus
	// time blocked on the (emulated) network.
	CPUTime time.Duration
	// RealTime is the paper's real-time column: wall-clock from
	// simulation start to the completion of all deferred estimation.
	RealTime time.Duration
	// SimTime is the event-processing phase alone: nonblocking remote
	// estimation keeps network waits out of this phase (the paper's
	// latency hiding), deferring them to DrainTime.
	SimTime time.Duration
	// DrainTime is the tail wait for in-flight estimation batches.
	DrainTime time.Duration
	// Blocked is the metered network wait.
	Blocked time.Duration
	// Calls and Bytes quantify the RMI traffic.
	Calls int64
	Bytes int64
	// CacheHits/CacheMisses/CacheBytesSaved summarize estimation-cache
	// activity for the run (all zero when no cache is configured).
	CacheHits       int64
	CacheMisses     int64
	CacheBytesSaved int64
	// Failovers counts replica failovers during the measured window;
	// HedgedBatches/HedgeWins count estimation batches re-issued to a
	// second replica and those the hedge answered first (all zero for
	// single-provider runs).
	Failovers     int64
	HedgedBatches int64
	HedgeWins     int64
	// ReplicaStatuses snapshots per-replica health after the run (nil for
	// single-provider runs).
	ReplicaStatuses []replica.Status
	// PowerSamples counts per-pattern power values received remotely.
	PowerSamples int
	// Power is the full remote estimation report (nil for AL), including
	// the per-pattern values and any degradation record.
	Power *PowerReport
	// FeesCents is the provider bill for the run.
	FeesCents float64
	// Products counts the multiplier outputs observed at the primary
	// output (sanity: the design actually simulated).
	Products int
}

// Run executes one scenario and returns its measurements. A fresh
// provider and session are created per run so fees and meters are
// isolated.
func Run(s Scenario, cfg Config) (*Result, error) {
	if cfg.Width <= 0 || cfg.Patterns <= 0 {
		return nil, fmt.Errorf("core: invalid config %+v", cfg)
	}
	if cfg.Period == 0 {
		cfg.Period = 10
	}

	// Figure 2 connectors.
	a := module.NewWordConnector("A", cfg.Width)
	ar := module.NewWordConnector("AR", cfg.Width)
	b := module.NewWordConnector("B", cfg.Width)
	br := module.NewWordConnector("BR", cfg.Width)
	o := module.NewWordConnector("O", 2*cfg.Width)
	ina := module.NewRandomPrimaryInput("INA", cfg.Width, cfg.Seed, cfg.Patterns, cfg.Period, a)
	rega := module.NewRegister("REGA", cfg.Width, a, ar)
	inb := module.NewRandomPrimaryInput("INB", cfg.Width, cfg.Seed+1, cfg.Patterns, cfg.Period, b)
	regb := module.NewRegister("REGB", cfg.Width, b, br)
	out := module.NewPrimaryOutput("OUT", 2*cfg.Width, o)

	var (
		mult   module.Module
		remote *RemotePowerEstimator
		conn   *Connection
		rset   *replica.Set
	)
	if s == AllLocal {
		m := module.NewMult("MULT", cfg.Width, ar, br, o)
		m.AddEstimator(&estim.Constant{
			Meta:  estim.Meta{Name: "constant", Param: estim.ParamAvgPower, ErrPct: 25},
			Value: 50,
		})
		m.AddEstimator(&estim.LinearRegression{
			Meta: estim.Meta{Name: "linear-regression", Param: estim.ParamAvgPower, ErrPct: 20, CPUTime: time.Second},
			Base: 10, Slope: 2,
		})
		mult = m
	} else {
		var hedgeProv *provider.Provider
		if cfg.Replicas > 1 {
			// Replicated deployment: N equivalent providers behind
			// health-gated failover.
			provs := make([]*provider.Provider, cfg.Replicas)
			for i := range provs {
				provs[i] = provider.New(fmt.Sprintf("provider%d", i+1))
				if err := provs[i].Register(provider.MultFastLowPower()); err != nil {
					return nil, err
				}
			}
			dials := make([]func() (net.Conn, error), len(provs))
			if cfg.ReplicaDialers != nil {
				dials = cfg.ReplicaDialers(provs)
				if len(dials) != len(provs) {
					return nil, fmt.Errorf("core: ReplicaDialers returned %d dialers for %d providers", len(dials), len(provs))
				}
			} else {
				for i, p := range provs {
					dials[i] = PipeDialer(p)
				}
			}
			var err error
			conn, rset, err = ConnectReplicated(provs, "designer", cfg.Profile, dials, cfg.Breaker, cfg.BreakerClock, WithCodec(cfg.Codec))
			if err != nil {
				return nil, err
			}
			hedgeProv = provs[len(provs)-1]
		} else {
			prov := provider.New("provider1")
			if err := prov.Register(provider.MultFastLowPower()); err != nil {
				return nil, err
			}
			dial := PipeDialer(prov)
			if cfg.DialVia != nil {
				dial = cfg.DialVia(prov)
			}
			var err error
			conn, err = ConnectVia(prov, "designer", cfg.Profile, dial, WithCodec(cfg.Codec))
			if err != nil {
				return nil, err
			}
		}
		defer conn.Close()
		conn.Client.RPC.MaxInFlight = cfg.InFlight
		if cfg.Resilience != nil {
			// Harden before Bind so the bind lands in the recovery journal.
			conn.Harden(*cfg.Resilience)
		}
		inst, err := conn.Client.Bind("MultFastLowPower", cfg.Width, nil)
		if err != nil {
			return nil, err
		}
		offer, ok := inst.Enabled()[0], false
		for _, e := range inst.Enabled() {
			if e.Remote && e.Parameter() == estim.ParamAvgPower {
				offer, ok = e, true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("core: provider offers no remote power estimator")
		}
		remote = NewRemotePowerEstimator(inst, offer, cfg.BufferSize, cfg.Nonblocking)
		remote.SkipCompute = cfg.SkipCompute
		remote.EnableCache(cfg.Cache)
		if cfg.HedgeAfter > 0 && hedgeProv != nil {
			// The hedge rides its own clean session to one replica — a
			// plain pipe, never the failover transport (which chaos tests
			// script) — so a hedge can answer even while the primary path
			// is mid-reconnect.
			hconn, err := ConnectVia(hedgeProv, "designer-hedge", cfg.Profile, PipeDialer(hedgeProv), WithCodec(cfg.Codec))
			if err != nil {
				return nil, err
			}
			defer hconn.Close()
			hinst, err := hconn.Client.Bind("MultFastLowPower", cfg.Width, nil)
			if err != nil {
				return nil, err
			}
			remote.EnableHedge(hinst, cfg.HedgeAfter)
		}
		switch s {
		case EstimatorRemote:
			m := module.NewMult("MULT", cfg.Width, ar, br, o)
			m.AddEstimator(remote)
			mult = m
		case MultiplierRemote:
			m, err := NewRemoteMult("MULT", cfg.Width, ar, br, o, inst)
			if err != nil {
				return nil, err
			}
			m.FullyRemote = true
			m.AddEstimator(remote)
			mult = m
		}
	}

	circuit := module.NewCircuit("Example", ina, rega, inb, regb, mult, out)
	simu := module.NewSimulation(circuit)
	setup := estim.NewSetup(s.String())
	setup.Set(estim.ParamAvgPower, estim.Criteria{Prefer: estim.PreferAccuracy})
	if remote != nil {
		remote.OnDegrade = func(reason string) {
			setup.MarkDegraded("MULT", remote.Param, reason)
		}
	}

	if conn != nil {
		// Session setup (catalogue, bind) happens before the measured
		// window; only simulation-time traffic belongs in the split.
		conn.Meter.Reset()
	}
	//lint:ignore simdeterminism the Table 2/3 wall-clock columns measure the host; the timings never feed signal values.
	start := time.Now()
	// outID is the scheduler whose history holds the run's products: the
	// single scheduler classically, the output's owning shard otherwise.
	var outID sim.SchedulerID
	if cfg.Shards > 1 {
		sst := shard.Run(circuit, shard.Options{
			Shards:  cfg.Shards,
			Window:  cfg.ShardWindow,
			Workers: cfg.ShardWorkers,
			Setup:   setup,
		})
		if sst.Err != nil {
			return nil, sst.Err
		}
		outID = sst.OwnerOf(out)
	} else {
		stats := simu.Start(setup)
		if stats.Err != nil {
			return nil, stats.Err
		}
		outID = stats.Scheduler
	}
	//lint:ignore simdeterminism wall-clock metering for the RealTime/SimTime report columns only.
	simDone := time.Now()
	if remote != nil {
		if err := remote.Close(); err != nil {
			return nil, err
		}
	}
	//lint:ignore simdeterminism wall-clock metering for the RealTime/DrainTime report columns only.
	end := time.Now()
	wall := end.Sub(start)

	products := len(out.History(outID))
	out.ReleaseHistory(outID)
	res := &Result{
		Scenario:  s,
		Host:      cfg.Profile.Name,
		RealTime:  wall,
		CPUTime:   wall,
		SimTime:   simDone.Sub(start),
		DrainTime: end.Sub(simDone),
		Products:  products,
	}
	if conn != nil {
		cpu, real := conn.Meter.Split(wall)
		res.CPUTime = cpu
		res.RealTime = real
		res.Blocked = conn.Meter.Blocked()
		res.Calls = conn.Meter.Calls()
		res.Bytes = conn.Meter.Bytes()
		res.CacheHits = conn.Meter.CacheHits()
		res.CacheMisses = conn.Meter.CacheMisses()
		res.CacheBytesSaved = conn.Meter.CacheBytesSaved()
		res.Failovers = conn.Meter.Failovers()
		res.HedgedBatches = conn.Meter.HedgedBatches()
		res.HedgeWins = conn.Meter.HedgeWins()
		if rset != nil {
			res.ReplicaStatuses = rset.Statuses()
		}
		fees, err := conn.Client.Fees()
		switch {
		case err == nil:
			res.FeesCents = fees
		case errors.Is(err, rmi.ErrProviderDead):
			// Degraded run: the bill is unreachable, the results are not.
		default:
			return nil, err
		}
	}
	if remote != nil {
		rep := remote.Report()
		res.Power = &rep
		res.PowerSamples = len(rep.Samples)
	}
	return res, nil
}
