package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/shard"
)

// TestShardDeterminismMatrix is the headline proof of the sharded
// engine: for every paper scenario and for seeded generated designs
// larger than any paper benchmark, partitioning the design across N
// concurrent schedulers produces a byte-identical Result fingerprint to
// the single-scheduler baseline, for every shard count and worker
// count. Run under -race by `make shards`.
func TestShardDeterminismMatrix(t *testing.T) {
	shardCounts := []int{1, 2, 3, 8}

	// Part 1: the Table 2 scenario grid. Each cell's baseline is the
	// classic run (Shards = 0); every sharded variant must reproduce its
	// fingerprint — products, power samples, fees, traffic — exactly.
	cells := []struct {
		name     string
		scenario Scenario
		profile  netsim.Profile
	}{
		{"AL/in-process", AllLocal, netsim.InProcess},
		{"ER/in-process", EstimatorRemote, netsim.InProcess},
		{"MR/in-process", MultiplierRemote, netsim.InProcess},
		{"ER/local", EstimatorRemote, netsim.Local},
	}
	for _, cell := range cells {
		cfg := smallConfig()
		cfg.Patterns = 40
		cfg.Profile = cell.profile
		base, err := Run(cell.scenario, cfg)
		if err != nil {
			t.Fatalf("%s baseline: %v", cell.name, err)
		}
		want := base.Fingerprint()
		for _, shards := range shardCounts {
			for _, workers := range []int{1, 0} {
				scfg := cfg
				scfg.Shards = shards
				scfg.ShardWorkers = workers
				res, err := RunSharded(cell.scenario, scfg, shards)
				if err != nil {
					t.Fatalf("%s shards=%d workers=%d: %v", cell.name, shards, workers, err)
				}
				if got := res.Fingerprint(); got != want {
					t.Fatalf("%s shards=%d workers=%d fingerprint diverged\n got %s\nwant %s",
						cell.name, shards, workers, got, want)
				}
			}
		}
	}

	// Part 2: seeded generated hierarchical circuits, including one much
	// larger than the Figure 2 design the paper benchmarks. The sharded
	// observation streams must match the classic run byte for byte.
	specs := []GenSpec{
		{}, // defaults: 4 inputs, 3 layers, 4 ops each
		{Inputs: 6, Layers: 4, LayerOps: 6, Width: 12, Patterns: 60},
	}
	for _, seed := range []int64{1, 2, 3} {
		for si, spec := range specs {
			circuit, outs := GenerateCircuitRand(rand.New(rand.NewSource(seed)), spec)
			want, err := ClassicCircuitFingerprint(circuit, outs, 0)
			if err != nil {
				t.Fatalf("seed=%d spec=%d baseline: %v", seed, si, err)
			}
			for _, shards := range shardCounts {
				got, stats, err := ShardedCircuitFingerprint(circuit, outs,
					shard.Options{Shards: shards})
				if err != nil {
					t.Fatalf("seed=%d spec=%d shards=%d: %v", seed, si, shards, err)
				}
				if got != want {
					t.Fatalf("seed=%d spec=%d shards=%d diverged from single-scheduler run",
						seed, si, shards)
				}
				if stats.Delivered == 0 {
					t.Fatalf("seed=%d spec=%d shards=%d: empty run", seed, si, shards)
				}
			}
		}
	}
}

// TestShardWindowInvarianceScenario is the conservative-window property
// at the scenario level: any synchronization window — from the default
// runahead down to a barrier every instant — yields the identical
// result fingerprint; the window trades barriers for runahead, never
// correctness.
func TestShardWindowInvarianceScenario(t *testing.T) {
	cfg := smallConfig()
	base, err := Run(EstimatorRemote, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fingerprint()
	for _, window := range []int{0, 8, 1} {
		scfg := cfg
		scfg.Shards = 2
		scfg.ShardWindow = window
		res, err := Run(EstimatorRemote, scfg)
		if err != nil {
			t.Fatalf("window=%d: %v", window, err)
		}
		if got := res.Fingerprint(); got != want {
			t.Fatalf("window=%d fingerprint diverged", window)
		}
	}
}

// TestShardEstimationCacheRegression: an estimation cache shared across
// sharded runs must behave exactly as it does classically — a cold
// sharded run only misses, a warm sharded run serves hits off the wire,
// and every run's power values stay bit-identical to the uncached
// classic baseline. The cache's chained batch keys depend on pattern
// history order, so this is also a regression test that sharding
// preserves batch order.
func TestShardEstimationCacheRegression(t *testing.T) {
	cfg := smallConfig()
	_, plainSamples := scenarioSamples(t, cfg)

	cache := NewEstimationCache()
	cfg.Cache = cache
	cfg.Shards = 3
	cold, coldSamples := scenarioSamples(t, cfg)
	if cold.CacheHits != 0 {
		t.Errorf("cold sharded run reported %d cache hits", cold.CacheHits)
	}
	if cold.CacheMisses == 0 {
		t.Error("cold sharded run metered no cache misses")
	}
	if !reflect.DeepEqual(plainSamples, coldSamples) {
		t.Error("enabling the cache changed the cold sharded run's values")
	}

	warm, warmSamples := scenarioSamples(t, cfg)
	if warm.CacheHits == 0 {
		t.Fatal("warm sharded run produced no cache hits")
	}
	if warm.Calls >= cold.Calls {
		t.Errorf("warm sharded run made %d calls, cold made %d; hits did not stay off the wire",
			warm.Calls, cold.Calls)
	}
	if !reflect.DeepEqual(plainSamples, warmSamples) {
		t.Error("cache-served sharded values diverged from remote values")
	}

	// The warmed cache must serve a classic run too: batch keys chain the
	// same way regardless of which engine replayed the patterns.
	cfg.Shards = 0
	classicWarm, classicSamples := scenarioSamples(t, cfg)
	if classicWarm.CacheHits == 0 {
		t.Fatal("classic run against shard-warmed cache produced no hits")
	}
	if !reflect.DeepEqual(plainSamples, classicSamples) {
		t.Error("classic run against shard-warmed cache diverged")
	}
}
