package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/module"
	"repro/internal/shard"
	"repro/internal/sim"
)

// RunSharded executes one scenario with the design partitioned across n
// concurrent schedulers. It is Run with cfg.Shards forced — the sharded
// entry point experiment drivers and CLIs use. Results are bit-identical
// to the single-scheduler run at any n (see Result.Fingerprint and the
// shard determinism test matrix).
func RunSharded(s Scenario, cfg Config, n int) (*Result, error) {
	cfg.Shards = n
	return Run(s, cfg)
}

// Fingerprint hashes every deterministic field of the result — counts,
// call traffic, fees, cache activity and the full per-pattern power
// record — into a hex digest. Wall-clock columns are excluded by
// construction, and so is the raw byte meter: wire framing under the
// pipelined transport coalesces by timing, so Bytes varies between
// byte-identical simulations. Two runs of the same configuration must
// produce identical fingerprints regardless of shard count, worker
// count, window, or pipeline depth; the determinism matrices compare
// exactly this.
func (r *Result) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "scenario=%s host=%s products=%d samples=%d fees=%x\n",
		r.Scenario, r.Host, r.Products, r.PowerSamples, math.Float64bits(r.FeesCents))
	fmt.Fprintf(h, "calls=%d hits=%d misses=%d saved=%d\n",
		r.Calls, r.CacheHits, r.CacheMisses, r.CacheBytesSaved)
	if r.Power != nil {
		fmt.Fprintf(h, "sent=%d avg=%x peak=%x degraded=%v lost=%d\n",
			r.Power.Sent, math.Float64bits(r.Power.AvgPower), math.Float64bits(r.Power.PeakPower),
			r.Power.Degraded, r.Power.LostBatches)
		for _, v := range r.Power.Samples {
			fmt.Fprintf(h, "%x\n", math.Float64bits(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ShardedCircuitFingerprint simulates an arbitrary circuit through the
// shard engine and digests the observation history of every given
// primary output (time and value, in order). Histories are released
// before returning. The digest is the bit-identity witness for runs of
// generated designs, comparable across shard counts and against
// ClassicCircuitFingerprint.
func ShardedCircuitFingerprint(c *module.Circuit, outs []*module.PrimaryOutput, opts shard.Options) (string, shard.Stats, error) {
	stats := shard.Run(c, opts)
	if stats.Err != nil {
		return "", stats, stats.Err
	}
	h := sha256.New()
	for _, out := range outs {
		id := stats.OwnerOf(out)
		fmt.Fprintf(h, "%s:\n", out.ModuleName())
		for _, obs := range out.History(id) {
			fmt.Fprintf(h, "%d=%v\n", obs.Time, obs.Value)
		}
		out.ReleaseHistory(id)
	}
	return hex.EncodeToString(h.Sum(nil)), stats, nil
}

// ClassicCircuitFingerprint is the single-scheduler baseline for
// ShardedCircuitFingerprint: the same digest computed from a classic
// module.Simulation run.
func ClassicCircuitFingerprint(c *module.Circuit, outs []*module.PrimaryOutput, until sim.Time) (string, error) {
	simu := module.NewSimulation(c)
	simu.Until = until
	stats := simu.Start(nil)
	if stats.Err != nil {
		return "", stats.Err
	}
	h := sha256.New()
	for _, out := range outs {
		fmt.Fprintf(h, "%s:\n", out.ModuleName())
		for _, obs := range out.History(stats.Scheduler) {
			fmt.Fprintf(h, "%d=%v\n", obs.Time, obs.Value)
		}
		out.ReleaseHistory(stats.Scheduler)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
