package estim

import "time"

// NewIOActivity returns the standard local estimator for the paper's
// "I/O activity" parameter: known-bit transitions across the component's
// ports per pattern, computed purely from port values (so always safe to
// ship with any component).
func NewIOActivity(name string) *Func {
	return &Func{
		Meta: Meta{Name: name, Param: ParamIOActivity, ErrPct: 0},
		Fn: func(ec *EvalContext) (ParamValue, error) {
			return Float(float64(ec.InputToggles() + ec.OutputToggles())), nil
		},
	}
}

// NewActivityPower returns a local power model proportional to port
// activity: power = CoeffIn·(input toggles) + CoeffOut·(output toggles).
// A step up from the plain linear-regression model when a provider has
// characterized input and output capacitances separately.
func NewActivityPower(name string, coeffIn, coeffOut, errPct float64) *Func {
	return &Func{
		Meta: Meta{Name: name, Param: ParamAvgPower, ErrPct: errPct, CPUTime: time.Microsecond},
		Fn: func(ec *EvalContext) (ParamValue, error) {
			return Float(coeffIn*float64(ec.InputToggles()) + coeffOut*float64(ec.OutputToggles())), nil
		},
	}
}

// PeakTracker wraps any per-pattern power estimator into a peak-power
// estimator: it reports the maximum value the inner estimator has
// produced so far in this run. Because estimators are selected per setup
// and invoked once per stimulus, the running maximum is exactly the peak
// over the test sequence.
type PeakTracker struct {
	Meta
	Inner Estimator

	peak    float64
	anySeen bool
}

// NewPeakTracker builds a peak estimator over an average-power model.
func NewPeakTracker(name string, inner Estimator) *PeakTracker {
	return &PeakTracker{
		Meta: Meta{
			Name:    name,
			Param:   ParamPeakPower,
			ErrPct:  inner.ExpectedError(),
			Cost:    inner.CostPerCall(),
			CPUTime: inner.ExpectedCPUTime(),
			IsRem:   inner.Remote(),
		},
		Inner: inner,
	}
}

// Estimate reports the running maximum of the inner estimator.
func (p *PeakTracker) Estimate(ec *EvalContext) (ParamValue, error) {
	v, err := p.Inner.Estimate(ec)
	if err != nil {
		return nil, err
	}
	f, ok := v.(Float)
	if !ok {
		return NullValue{}, nil
	}
	if !p.anySeen || float64(f) > p.peak {
		p.peak = float64(f)
		p.anySeen = true
	}
	return Float(p.peak), nil
}

// Reset clears the running maximum between runs.
func (p *PeakTracker) Reset() { p.peak = 0; p.anySeen = false }
