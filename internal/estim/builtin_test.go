package estim

import (
	"testing"

	"repro/internal/signal"
)

func TestIOActivityEstimator(t *testing.T) {
	e := NewIOActivity("io")
	if e.Parameter() != ParamIOActivity || e.Remote() {
		t.Error("metadata wrong")
	}
	ec := &EvalContext{
		Inputs:  []signal.Value{wv(0b11, 2)},
		PrevIn:  []signal.Value{wv(0b00, 2)},
		Outputs: []signal.Value{wv(1, 1)},
		PrevOut: []signal.Value{wv(0, 1)},
	}
	v, err := e.Estimate(ec)
	if err != nil || v.(Float) != 3 {
		t.Errorf("activity = %v, %v; want 3", v, err)
	}
}

func TestActivityPowerEstimator(t *testing.T) {
	e := NewActivityPower("ap", 2, 3, 15)
	ec := &EvalContext{
		Inputs:  []signal.Value{wv(0b11, 2)},
		PrevIn:  []signal.Value{wv(0b00, 2)},
		Outputs: []signal.Value{wv(1, 1)},
		PrevOut: []signal.Value{wv(0, 1)},
	}
	v, err := e.Estimate(ec)
	if err != nil || v.(Float) != 2*2+3*1 {
		t.Errorf("power = %v, %v; want 7", v, err)
	}
	if e.ExpectedError() != 15 {
		t.Error("error pct not propagated")
	}
}

func TestPeakTrackerRunsMaximum(t *testing.T) {
	inner := NewActivityPower("ap", 1, 0, 10)
	p := NewPeakTracker("peak", inner)
	if p.Parameter() != ParamPeakPower || p.ExpectedError() != 10 {
		t.Error("metadata not derived from inner")
	}
	step := func(prev, cur uint64) float64 {
		ec := &EvalContext{
			Inputs: []signal.Value{wv(cur, 8)},
			PrevIn: []signal.Value{wv(prev, 8)},
		}
		v, err := p.Estimate(ec)
		if err != nil {
			t.Fatal(err)
		}
		return float64(v.(Float))
	}
	if got := step(0x00, 0x0F); got != 4 {
		t.Errorf("first peak = %v", got)
	}
	if got := step(0x0F, 0x0E); got != 4 {
		t.Errorf("peak dropped: %v", got)
	}
	if got := step(0x0E, 0xF1); got != 8 { // 0x0E^0xF1 = 0xFF: 8 toggles
		t.Errorf("peak not raised: %v", got)
	}
	p.Reset()
	if got := step(0x00, 0x01); got != 1 {
		t.Errorf("peak after reset = %v", got)
	}
}

func TestPeakTrackerNonScalarInner(t *testing.T) {
	p := NewPeakTracker("peak", Null{Param: ParamAvgPower})
	v, err := p.Estimate(&EvalContext{})
	if err != nil || !v.IsNull() {
		t.Errorf("non-scalar inner: %v, %v", v, err)
	}
}
