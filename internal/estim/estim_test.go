package estim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/signal"
)

func wv(v uint64, width int) signal.Value {
	return signal.WordValue{W: signal.WordFromUint64(v, width)}
}

func TestFloatParamValue(t *testing.T) {
	var v ParamValue = Float(2.5)
	if v.IsNull() {
		t.Error("Float reported null")
	}
	if v.ParamString() != "2.5" {
		t.Errorf("ParamString = %q", v.ParamString())
	}
}

func TestNullValue(t *testing.T) {
	var v ParamValue = NullValue{}
	if !v.IsNull() || v.ParamString() != "null" {
		t.Error("NullValue basics wrong")
	}
}

func TestSampleString(t *testing.T) {
	s := Sample{Module: "m", Param: ParamArea, Time: 3, Value: Float(1), Estimator: "const"}
	if !strings.Contains(s.String(), "m.area@3") {
		t.Errorf("Sample.String = %q", s.String())
	}
}

func TestEvalContextToggles(t *testing.T) {
	ec := &EvalContext{
		Inputs: []signal.Value{wv(0b1010, 4), wv(1, 1)},
		PrevIn: []signal.Value{wv(0b0110, 4), wv(0, 1)},
	}
	// 1010 vs 0110: bits 2 and 3 differ -> 2 toggles; 1 vs 0 -> 1 toggle.
	if got := ec.InputToggles(); got != 3 {
		t.Errorf("InputToggles = %d, want 3", got)
	}
	if got := ec.OutputToggles(); got != 0 {
		t.Errorf("OutputToggles = %d, want 0", got)
	}
}

func TestEvalContextTogglesBitValues(t *testing.T) {
	ec := &EvalContext{
		Inputs: []signal.Value{signal.BitValue{B: signal.B1}, signal.BitValue{B: signal.BX}},
		PrevIn: []signal.Value{signal.BitValue{B: signal.B0}, signal.BitValue{B: signal.B1}},
	}
	if got := ec.InputToggles(); got != 1 {
		t.Errorf("bit toggles = %d, want 1 (X transition must not count)", got)
	}
}

func TestEvalContextTogglesNilSafe(t *testing.T) {
	ec := &EvalContext{
		Inputs: []signal.Value{nil, wv(1, 1)},
		PrevIn: []signal.Value{wv(0, 1)},
	}
	if got := ec.InputToggles(); got != 0 {
		t.Errorf("toggles with nil/short prev = %d, want 0", got)
	}
}

func TestConstantEstimator(t *testing.T) {
	c := &Constant{Meta: Meta{Name: "const", Param: ParamAvgPower, ErrPct: 90}, Value: 42}
	v, err := c.Estimate(&EvalContext{})
	if err != nil || v.(Float) != 42 {
		t.Errorf("constant estimate = %v, %v", v, err)
	}
	if c.EstimatorName() != "const" || c.Parameter() != ParamAvgPower || c.ExpectedError() != 90 {
		t.Error("Meta accessors wrong")
	}
}

func TestLinearRegressionEstimator(t *testing.T) {
	l := &LinearRegression{Meta: Meta{Name: "lr", Param: ParamAvgPower}, Base: 10, Slope: 2}
	ec := &EvalContext{
		Inputs: []signal.Value{wv(0b11, 2)},
		PrevIn: []signal.Value{wv(0b00, 2)},
	}
	v, err := l.Estimate(ec)
	if err != nil || v.(Float) != 14 {
		t.Errorf("regression estimate = %v, %v; want 14", v, err)
	}
}

func TestNullEstimator(t *testing.T) {
	n := Null{Param: ParamArea}
	if n.EstimatorName() != "null" || n.Parameter() != ParamArea {
		t.Error("Null identity wrong")
	}
	v, err := n.Estimate(nil)
	if err != nil || !v.IsNull() {
		t.Error("Null estimate wrong")
	}
	if n.Remote() || n.CostPerCall() != 0 || n.ExpectedCPUTime() != 0 {
		t.Error("Null metadata wrong")
	}
}

func TestFuncEstimator(t *testing.T) {
	f := &Func{
		Meta: Meta{Name: "f", Param: ParamDelay},
		Fn:   func(ec *EvalContext) (ParamValue, error) { return Float(float64(ec.Now)), nil },
	}
	v, err := f.Estimate(&EvalContext{Now: 7})
	if err != nil || v.(Float) != 7 {
		t.Errorf("func estimate = %v, %v", v, err)
	}
}

// fakeComponent implements Component for setup-selection tests.
type fakeComponent struct {
	name       string
	candidates map[Parameter][]Estimator
	selected   map[Parameter]Estimator
}

func newFakeComponent(name string) *fakeComponent {
	return &fakeComponent{
		name:       name,
		candidates: make(map[Parameter][]Estimator),
		selected:   make(map[Parameter]Estimator),
	}
}

func (f *fakeComponent) ModuleName() string                 { return f.name }
func (f *fakeComponent) Candidates(p Parameter) []Estimator { return f.candidates[p] }
func (f *fakeComponent) SelectEstimator(s *Setup, p Parameter, e Estimator) {
	f.selected[p] = e
}
func (f *fakeComponent) EstimationParams() []Parameter {
	var ps []Parameter
	for p := range f.candidates {
		ps = append(ps, p)
	}
	return ps
}

// table1Estimators builds the three power estimators of the paper's
// Table 1: constant (25%% err, free, fast), linear regression (20%% err,
// free), gate-level (10%% err, 0.1 cents, 100s, remote).
func table1Estimators() []Estimator {
	return []Estimator{
		&Constant{Meta: Meta{Name: "constant", Param: ParamAvgPower, ErrPct: 25, Cost: 0, CPUTime: 0}, Value: 50},
		&LinearRegression{Meta: Meta{Name: "linear-regression", Param: ParamAvgPower, ErrPct: 20, Cost: 0, CPUTime: time.Second}, Base: 10, Slope: 2},
		&Func{
			Meta: Meta{Name: "gate-level-toggle-count", Param: ParamAvgPower, ErrPct: 10, Cost: 0.1, CPUTime: 100 * time.Second, IsRem: true},
			Fn:   func(*EvalContext) (ParamValue, error) { return Float(48), nil },
		},
	}
}

func TestSetupSelectsMostAccurate(t *testing.T) {
	c := newFakeComponent("mult")
	c.candidates[ParamAvgPower] = table1Estimators()
	s := NewSetup("accuracy")
	s.Set(ParamAvgPower, Criteria{Prefer: PreferAccuracy})
	s.SelectFor(c)
	if got := c.selected[ParamAvgPower].EstimatorName(); got != "gate-level-toggle-count" {
		t.Errorf("selected %q, want gate-level-toggle-count", got)
	}
	if len(s.Warnings()) != 0 {
		t.Errorf("unexpected warnings: %v", s.Warnings())
	}
}

func TestSetupForbidRemoteFallsBackToRegression(t *testing.T) {
	c := newFakeComponent("mult")
	c.candidates[ParamAvgPower] = table1Estimators()
	s := NewSetup("local-only")
	s.Set(ParamAvgPower, Criteria{Prefer: PreferAccuracy, ForbidRemote: true})
	s.SelectFor(c)
	if got := c.selected[ParamAvgPower].EstimatorName(); got != "linear-regression" {
		t.Errorf("selected %q, want linear-regression", got)
	}
}

func TestSetupFreeOnlyCriteria(t *testing.T) {
	c := newFakeComponent("mult")
	c.candidates[ParamAvgPower] = table1Estimators()
	s := NewSetup("free")
	s.Set(ParamAvgPower, Criteria{Prefer: PreferAccuracy, MaxCostPerCall: -1})
	s.SelectFor(c)
	if got := c.selected[ParamAvgPower].EstimatorName(); got != "linear-regression" {
		t.Errorf("selected %q, want linear-regression", got)
	}
}

func TestSetupPreferSpeed(t *testing.T) {
	c := newFakeComponent("mult")
	c.candidates[ParamAvgPower] = table1Estimators()
	s := NewSetup("fast")
	s.Set(ParamAvgPower, Criteria{Prefer: PreferSpeed})
	s.SelectFor(c)
	if got := c.selected[ParamAvgPower].EstimatorName(); got != "constant" {
		t.Errorf("selected %q, want constant", got)
	}
}

func TestSetupByExactName(t *testing.T) {
	c := newFakeComponent("mult")
	c.candidates[ParamAvgPower] = table1Estimators()
	s := NewSetup("named")
	s.Set(ParamAvgPower, Criteria{Name: "constant"})
	s.SelectFor(c)
	if got := c.selected[ParamAvgPower].EstimatorName(); got != "constant" {
		t.Errorf("selected %q, want constant", got)
	}
}

func TestSetupUnsatisfiableYieldsNullAndWarning(t *testing.T) {
	c := newFakeComponent("reg")
	// No candidates at all for area.
	s := NewSetup("w")
	s.Set(ParamArea, Criteria{})
	s.SelectFor(c)
	if got := c.selected[ParamArea]; got.EstimatorName() != "null" {
		t.Errorf("selected %q, want null", got.EstimatorName())
	}
	ws := s.Warnings()
	if len(ws) != 1 || ws[0].Module != "reg" || ws[0].Param != ParamArea {
		t.Errorf("warnings = %v", ws)
	}
	if !strings.Contains(ws[0].String(), "null estimator") {
		t.Errorf("warning text = %q", ws[0].String())
	}
}

func TestSetupOverConstrainedYieldsNull(t *testing.T) {
	c := newFakeComponent("mult")
	c.candidates[ParamAvgPower] = table1Estimators()
	s := NewSetup("impossible")
	s.Set(ParamAvgPower, Criteria{MaxError: 5}) // nothing better than 10%
	s.SelectFor(c)
	if got := c.selected[ParamAvgPower]; got.EstimatorName() != "null" {
		t.Errorf("selected %q, want null", got.EstimatorName())
	}
}

func TestSetupMaxCPUTime(t *testing.T) {
	c := newFakeComponent("mult")
	c.candidates[ParamAvgPower] = table1Estimators()
	s := NewSetup("cpu-bound")
	s.Set(ParamAvgPower, Criteria{MaxCPUTime: 2 * time.Second, Prefer: PreferAccuracy})
	s.SelectFor(c)
	if got := c.selected[ParamAvgPower].EstimatorName(); got != "linear-regression" {
		t.Errorf("selected %q, want linear-regression", got)
	}
}

func TestSetupRecordAggregatesAndFees(t *testing.T) {
	s := NewSetup("r")
	gl := table1Estimators()[2]
	for i, v := range []float64{10, 20, 30} {
		s.Record("mult", ParamAvgPower, int64(i), Float(v), gl)
	}
	a, ok := s.AggregateFor("mult", ParamAvgPower)
	if !ok {
		t.Fatal("no aggregate")
	}
	if a.Count != 3 || a.Mean() != 20 || a.Min != 10 || a.Max != 30 {
		t.Errorf("aggregate = %+v", a)
	}
	fees := s.TotalFees()
	if got := fees["gate-level-toggle-count"]; got < 0.299 || got > 0.301 {
		t.Errorf("fees = %v, want 0.3", got)
	}
	if len(s.Samples()) != 3 {
		t.Errorf("samples = %d", len(s.Samples()))
	}
}

func TestSetupRecordNullDoesNotPolluteAggregates(t *testing.T) {
	s := NewSetup("n")
	n := Null{Param: ParamArea}
	s.Record("m", ParamArea, 0, NullValue{}, n)
	s.Record("m", ParamArea, 1, Float(4), &Constant{Meta: Meta{Name: "c", Param: ParamArea}, Value: 4})
	a, _ := s.AggregateFor("m", ParamArea)
	if a.Count != 1 || a.NullCount != 1 || a.Mean() != 4 {
		t.Errorf("aggregate = %+v", a)
	}
}

func TestSetupDesignTotal(t *testing.T) {
	s := NewSetup("total")
	c := &Constant{Meta: Meta{Name: "c", Param: ParamArea}}
	s.Record("a", ParamArea, 0, Float(100), c)
	s.Record("b", ParamArea, 0, Float(50), c)
	s.Record("b", ParamArea, 1, Float(70), c)
	// a mean 100, b mean 60 -> total 160.
	if got := s.DesignTotal(ParamArea); got != 160 {
		t.Errorf("DesignTotal = %v, want 160", got)
	}
}

func TestSetupParametersSorted(t *testing.T) {
	s := NewSetup("p")
	s.Set(ParamDelay, Criteria{})
	s.Set(ParamArea, Criteria{})
	ps := s.Parameters()
	if len(ps) != 2 || ps[0] != ParamArea || ps[1] != ParamDelay {
		t.Errorf("Parameters() = %v", ps)
	}
	if _, ok := s.Criteria(ParamArea); !ok {
		t.Error("Criteria lookup failed")
	}
	if _, ok := s.Criteria(ParamAvgPower); ok {
		t.Error("Criteria lookup found unset param")
	}
}

func TestCriteriaSelectionIsDeterministicProperty(t *testing.T) {
	// Selection must be order-independent: shuffling the candidate list
	// never changes the chosen estimator.
	f := func(seed int64) bool {
		ests := table1Estimators()
		// Rotate by seed to vary order.
		k := int(uint64(seed) % uint64(len(ests)))
		rot := append(append([]Estimator(nil), ests[k:]...), ests[:k]...)
		pick := func(cands []Estimator) string {
			c := newFakeComponent("m")
			c.candidates[ParamAvgPower] = cands
			s := NewSetup("s")
			s.Set(ParamAvgPower, Criteria{Prefer: PreferAccuracy})
			s.SelectFor(c)
			return c.selected[ParamAvgPower].EstimatorName()
		}
		return pick(ests) == pick(rot)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
