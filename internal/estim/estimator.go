package estim

import (
	"time"

	"repro/internal/signal"
)

// EvalContext is everything an estimator may look at when producing a
// value: the component's identity and its CURRENT AND PREVIOUS port
// values. This is deliberately the complete list — estimation is a local,
// additive property evaluated from information available at the module's
// own ports, which is exactly the IP-protection boundary the paper
// enforces: a remote estimator never sees the other modules instantiated
// in the design, their properties, or their mutual relationships.
//
// The context and its slices are valid only for the duration of one
// Estimate call: the module skeleton rebuilds them in place per
// estimation round, so estimators must copy anything they keep.
type EvalContext struct {
	Module  string
	Now     int64
	Inputs  []signal.Value // current value on each input port (nil if never driven)
	PrevIn  []signal.Value // previous value on each input port
	Outputs []signal.Value // current value on each output port
	PrevOut []signal.Value
}

// InputToggles counts known-bit transitions across all input ports — the
// switching activity that drives dynamic power.
func (ec *EvalContext) InputToggles() int {
	return toggles(ec.Inputs, ec.PrevIn)
}

// OutputToggles counts known-bit transitions across all output ports.
func (ec *EvalContext) OutputToggles() int {
	return toggles(ec.Outputs, ec.PrevOut)
}

func toggles(cur, prev []signal.Value) int {
	n := 0
	for i := range cur {
		if i >= len(prev) || cur[i] == nil || prev[i] == nil {
			continue
		}
		switch c := cur[i].(type) {
		case signal.BitValue:
			if p, ok := prev[i].(signal.BitValue); ok &&
				c.B.Known() && p.B.Known() && c.B != p.B {
				n++
			}
		case signal.WordValue:
			if p, ok := prev[i].(signal.WordValue); ok {
				n += c.W.ToggleCount(p.W)
			}
		}
	}
	return n
}

// Estimator evaluates one parameter of one component. Estimators have a
// unique name, an expected accuracy, a cost, and an expected CPU time;
// they can be local (running on the user's client) or remote (running on
// the provider's server, typically because they need IP-protected
// implementation knowledge such as the gate-level netlist).
type Estimator interface {
	// EstimatorName uniquely identifies the estimator in reports and
	// setup criteria.
	EstimatorName() string
	// Parameter is the metric this estimator evaluates.
	Parameter() Parameter
	// ExpectedError is the estimator's declared expected relative error,
	// in percent (lower is more accurate).
	ExpectedError() float64
	// CostPerCall is the fee, in cents, charged per invocation.
	CostPerCall() float64
	// ExpectedCPUTime is the declared compute time per invocation.
	ExpectedCPUTime() time.Duration
	// Remote reports whether invoking the estimator crosses the network
	// to the IP provider's server (a flag the paper surfaces to warn the
	// designer about unpredictable additional latency).
	Remote() bool
	// Estimate produces the parameter value for the current context.
	Estimate(ec *EvalContext) (ParamValue, error)
}

// Meta carries the descriptive fields shared by every estimator; embed it
// and provide Estimate.
type Meta struct {
	Name    string
	Param   Parameter
	ErrPct  float64
	Cost    float64
	CPUTime time.Duration
	IsRem   bool
}

// EstimatorName returns the unique name.
func (m Meta) EstimatorName() string { return m.Name }

// Parameter returns the estimated metric.
func (m Meta) Parameter() Parameter { return m.Param }

// ExpectedError returns the declared expected error, in percent.
func (m Meta) ExpectedError() float64 { return m.ErrPct }

// CostPerCall returns the per-invocation fee in cents.
func (m Meta) CostPerCall() float64 { return m.Cost }

// ExpectedCPUTime returns the declared compute time per invocation.
func (m Meta) ExpectedCPUTime() time.Duration { return m.CPUTime }

// Remote reports whether the estimator runs on the provider's server.
func (m Meta) Remote() bool { return m.IsRem }

// Func adapts a plain function to the Estimator interface.
type Func struct {
	Meta
	Fn func(ec *EvalContext) (ParamValue, error)
}

// Estimate invokes the wrapped function.
func (f *Func) Estimate(ec *EvalContext) (ParamValue, error) { return f.Fn(ec) }

// Null is the default estimator associated with a parameter when setup
// requirements cannot be satisfied: it always returns the proper null
// value, enabling partial estimates and simulation of designs with
// missing estimators.
type Null struct{ Param Parameter }

// EstimatorName returns the reserved name "null".
func (n Null) EstimatorName() string { return "null" }

// Parameter returns the parameter the null estimator stands in for.
func (n Null) Parameter() Parameter { return n.Param }

// ExpectedError is meaningless for the null estimator; it reports 100.
func (n Null) ExpectedError() float64 { return 100 }

// CostPerCall is zero.
func (n Null) CostPerCall() float64 { return 0 }

// ExpectedCPUTime is zero.
func (n Null) ExpectedCPUTime() time.Duration { return 0 }

// Remote reports false.
func (n Null) Remote() bool { return false }

// Estimate returns the null value.
func (n Null) Estimate(*EvalContext) (ParamValue, error) { return NullValue{}, nil }

// Constant is the simplest data-sheet estimator: a precharacterized fixed
// value, independent of activity — row one of the paper's Table 1.
type Constant struct {
	Meta
	Value float64
}

// Estimate returns the precharacterized constant.
func (c *Constant) Estimate(*EvalContext) (ParamValue, error) { return Float(c.Value), nil }

// LinearRegression is the paper's second Table 1 estimator: a
// precharacterized affine model of input switching activity,
// value = Base + Slope × (input toggles). It needs only port values, so a
// provider can release it with the component's functional description.
type LinearRegression struct {
	Meta
	Base  float64
	Slope float64
}

// Estimate applies the regression to the current input activity.
func (l *LinearRegression) Estimate(ec *EvalContext) (ParamValue, error) {
	return Float(l.Base + l.Slope*float64(ec.InputToggles())), nil
}
