// Package estim implements gocad's cost-metric estimation framework: the
// JFP estimation package of the paper. Cost and performance metrics —
// area, propagation delay, average power, peak power, I/O activity — are
// called parameters. An estimator evaluates a parameter's actual value;
// it has a unique name, an expected accuracy, a monetary cost, and an
// expected CPU time, so that users can trade accuracy against cost and
// speed. A given design component can register several candidate
// estimators for the same parameter; a Setup controller selects among
// them by user criteria, falling back to the null estimator (with a
// warning) when no candidate satisfies the request.
package estim

import (
	"fmt"
	"strconv"
)

// Parameter names a cost or performance metric. The predefined names
// cover the metrics the paper lists; components and providers may define
// their own (e.g. the fault package's detection-table parameter).
type Parameter string

// Predefined parameters.
const (
	ParamArea       Parameter = "area"        // silicon area, in equivalent gates
	ParamDelay      Parameter = "delay"       // propagation delay, in time units
	ParamAvgPower   Parameter = "power.avg"   // average power per pattern, in µW
	ParamPeakPower  Parameter = "power.peak"  // peak power, in µW
	ParamIOActivity Parameter = "io.activity" // port toggle activity per pattern
	// ParamDetection is the fault package's detection-table parameter:
	// the local, IP-sensitive testability value a provider evaluates for
	// a given input pattern.
	ParamDetection Parameter = "fault.detection"
)

// ParamValue is the value an estimator produces. The common case is a
// scalar Float; structured values (the fault package's DetectionTable)
// implement the same interface.
type ParamValue interface {
	// ParamString renders the value for reports.
	ParamString() string
	// IsNull reports whether this is the null value produced by the
	// default null estimator, so partial estimates can be filtered.
	IsNull() bool
}

// Float is a scalar parameter value.
type Float float64

// ParamString formats the scalar with a compact precision.
func (f Float) ParamString() string { return strconv.FormatFloat(float64(f), 'g', 6, 64) }

// IsNull reports false: a Float is always a real estimate.
func (f Float) IsNull() bool { return false }

// NullValue is the "proper null value" returned by the null estimator.
// It lets a design simulate even when some modules have no estimator for
// a requested parameter, and makes partial estimates trivially filterable.
type NullValue struct{}

// ParamString renders the null marker.
func (NullValue) ParamString() string { return "null" }

// IsNull reports true.
func (NullValue) IsNull() bool { return true }

// Sample is one recorded estimate: which module, which parameter, when,
// produced by which estimator, at what fee.
type Sample struct {
	Module    string
	Param     Parameter
	Time      int64
	Value     ParamValue
	Estimator string
	Fee       float64 // cents charged for this call
}

func (s Sample) String() string {
	return fmt.Sprintf("%s.%s@%d = %s (%s)", s.Module, s.Param, s.Time, s.Value.ParamString(), s.Estimator)
}
