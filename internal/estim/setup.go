package estim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Preference orders admissible candidate estimators.
type Preference int

// Selection preferences: most accurate first, cheapest first, or fastest
// first.
const (
	PreferAccuracy Preference = iota
	PreferCost
	PreferSpeed
)

// Criteria specifies how to choose the estimator for a given parameter —
// the argument of the paper's set(<param>, <criteria>) setup method.
// Zero-valued constraint fields mean "unconstrained".
type Criteria struct {
	// Name, when nonempty, demands the estimator with this exact name.
	Name string
	// MaxError admits only estimators whose declared expected error (in
	// percent) does not exceed this bound. Zero means unconstrained.
	MaxError float64
	// MaxCostPerCall admits only estimators whose per-call fee (in cents)
	// does not exceed this bound. Negative means "free only"; zero means
	// unconstrained.
	MaxCostPerCall float64
	// MaxCPUTime admits only estimators whose declared compute time does
	// not exceed this bound. Zero means unconstrained.
	MaxCPUTime time.Duration
	// ForbidRemote rejects estimators that must run on the provider's
	// server across the network.
	ForbidRemote bool
	// Prefer breaks ties among admissible candidates.
	Prefer Preference
}

// admits reports whether e satisfies the constraints.
func (c Criteria) admits(e Estimator) bool {
	if c.Name != "" && e.EstimatorName() != c.Name {
		return false
	}
	if c.MaxError > 0 && e.ExpectedError() > c.MaxError {
		return false
	}
	if c.MaxCostPerCall < 0 && e.CostPerCall() > 0 {
		return false
	}
	if c.MaxCostPerCall > 0 && e.CostPerCall() > c.MaxCostPerCall {
		return false
	}
	if c.MaxCPUTime > 0 && e.ExpectedCPUTime() > c.MaxCPUTime {
		return false
	}
	if c.ForbidRemote && e.Remote() {
		return false
	}
	return true
}

// better reports whether a should be preferred over b under the criteria.
func (c Criteria) better(a, b Estimator) bool {
	switch c.Prefer {
	case PreferCost:
		if a.CostPerCall() != b.CostPerCall() {
			return a.CostPerCall() < b.CostPerCall()
		}
	case PreferSpeed:
		if a.ExpectedCPUTime() != b.ExpectedCPUTime() {
			return a.ExpectedCPUTime() < b.ExpectedCPUTime()
		}
	}
	if a.ExpectedError() != b.ExpectedError() {
		return a.ExpectedError() < b.ExpectedError()
	}
	// Final deterministic tie-break by name.
	return a.EstimatorName() < b.EstimatorName()
}

// Component is the estimation-facing view of a design module: it exposes
// its candidate estimators and accepts the selection the setup controller
// makes for it. internal/module's Skeleton implements it.
type Component interface {
	ModuleName() string
	// Candidates returns the estimators registered for the parameter.
	Candidates(p Parameter) []Estimator
	// SelectEstimator stores the setup's chosen estimator in the
	// component's per-setup estimator table.
	SelectEstimator(s *Setup, p Parameter, e Estimator)
	// EstimationParams lists the parameters that have at least one
	// candidate, so a setup can request "everything available".
	EstimationParams() []Parameter
}

// Warning records a setup requirement that could not be satisfied for a
// component; the null estimator was associated instead.
type Warning struct {
	Module string
	Param  Parameter
	Reason string
}

func (w Warning) String() string {
	return fmt.Sprintf("setup: %s.%s: %s; using null estimator", w.Module, w.Param, w.Reason)
}

// Setup is the setup controller: it maps parameters to selection
// criteria, applies itself to modules, and — during simulation — collects
// every produced estimate together with the fees charged for remote
// estimator use. A Setup passes to the simulation controller at
// instantiation and then travels with every simulation token, which is
// how modules retrieve their selected estimators at runtime. Distinct
// Setups over the same design are fully independent, enabling concurrent
// simulations with different estimation configurations.
type Setup struct {
	name     string
	criteria map[Parameter]Criteria

	mu       sync.Mutex
	samples  []Sample
	agg      map[aggKey]*Aggregate
	fees     map[string]float64 // estimator name -> total cents
	warnings []Warning
	degraded map[aggKey]string // degradation reason per (module, param)
}

type aggKey struct {
	module string
	param  Parameter
}

// Aggregate summarizes the scalar samples of one (module, parameter).
type Aggregate struct {
	Count     int
	Sum       float64
	Min       float64
	Max       float64
	NullCount int // samples produced by the null estimator
}

// Mean returns the average of the recorded scalar samples.
func (a *Aggregate) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// NewSetup returns an empty setup controller with the given display name.
func NewSetup(name string) *Setup {
	return &Setup{
		name:     name,
		criteria: make(map[Parameter]Criteria),
		agg:      make(map[aggKey]*Aggregate),
		fees:     make(map[string]float64),
	}
}

// Name returns the setup's display name.
func (s *Setup) Name() string { return s.name }

// Set specifies the criteria for choosing the estimator for a parameter —
// the paper's set(<param>, <criteria>).
func (s *Setup) Set(p Parameter, c Criteria) { s.criteria[p] = c }

// Parameters returns the parameters this setup requests, sorted.
func (s *Setup) Parameters() []Parameter {
	ps := make([]Parameter, 0, len(s.criteria))
	for p := range s.criteria {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// Criteria returns the criteria registered for p, if any.
func (s *Setup) Criteria(p Parameter) (Criteria, bool) {
	c, ok := s.criteria[p]
	return c, ok
}

// SelectFor chooses, for every requested parameter, the best admissible
// candidate estimator of the component and stores the selection in the
// component's per-setup table. When no candidate satisfies the criteria a
// warning is recorded and the default null estimator is associated with
// the parameter. The hierarchical walk over submodules is performed by
// the module package's Apply helper.
func (s *Setup) SelectFor(c Component) {
	for p, crit := range s.criteria {
		var best Estimator
		for _, cand := range c.Candidates(p) {
			if !crit.admits(cand) {
				continue
			}
			if best == nil || crit.better(cand, best) {
				best = cand
			}
		}
		if best == nil {
			reason := "no admissible estimator"
			if len(c.Candidates(p)) == 0 {
				reason = "no candidate estimator"
			}
			s.warn(Warning{Module: c.ModuleName(), Param: p, Reason: reason})
			best = Null{Param: p}
		}
		c.SelectEstimator(s, p, best)
	}
}

func (s *Setup) warn(w Warning) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.warnings = append(s.warnings, w)
}

// Warnings returns the setup warnings accumulated so far.
func (s *Setup) Warnings() []Warning {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Warning(nil), s.warnings...)
}

// MarkDegraded records that a component's estimation of p fell back to a
// degraded estimator mid-simulation — the graceful-degradation path when
// an IP provider is declared dead: the run completes with partial
// estimates (the paper's null-estimator philosophy) instead of aborting.
// The first report per (module, parameter) is also recorded as a
// warning; repeats are ignored.
func (s *Setup) MarkDegraded(module string, p Parameter, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := aggKey{module: module, param: p}
	if s.degraded == nil {
		s.degraded = make(map[aggKey]string)
	}
	if _, dup := s.degraded[k]; dup {
		return
	}
	s.degraded[k] = reason
	s.warnings = append(s.warnings, Warning{Module: module, Param: p, Reason: reason})
}

// DegradedFor returns the degradation reason recorded for one
// (module, parameter), if any.
func (s *Setup) DegradedFor(module string, p Parameter) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reason, ok := s.degraded[aggKey{module: module, param: p}]
	return reason, ok
}

// Degraded reports whether any component's estimation degraded during
// the run.
func (s *Setup) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.degraded) > 0
}

// Record appends one produced estimate, charging the estimator's fee.
// Modules call it when they handle an estimation token.
func (s *Setup) Record(module string, p Parameter, now int64, v ParamValue, e Estimator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fee := e.CostPerCall()
	s.samples = append(s.samples, Sample{
		Module: module, Param: p, Time: now, Value: v,
		Estimator: e.EstimatorName(), Fee: fee,
	})
	if fee != 0 {
		s.fees[e.EstimatorName()] += fee
	}
	k := aggKey{module: module, param: p}
	a := s.agg[k]
	if a == nil {
		a = &Aggregate{Min: math.Inf(1), Max: math.Inf(-1)}
		s.agg[k] = a
	}
	if v.IsNull() {
		a.NullCount++
		return
	}
	if f, ok := v.(Float); ok {
		a.Count++
		a.Sum += float64(f)
		if float64(f) < a.Min {
			a.Min = float64(f)
		}
		if float64(f) > a.Max {
			a.Max = float64(f)
		}
	}
}

// Samples returns a copy of every recorded estimate, in recording order.
func (s *Setup) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// AggregateFor returns the scalar aggregate for one (module, parameter).
func (s *Setup) AggregateFor(module string, p Parameter) (Aggregate, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.agg[aggKey{module: module, param: p}]
	if !ok {
		return Aggregate{}, false
	}
	return *a, true
}

// TotalFees returns the total cents charged, per estimator name.
func (s *Setup) TotalFees() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.fees))
	for k, v := range s.fees {
		out[k] = v
	}
	return out
}

// DesignTotal sums the mean values of a parameter across all modules —
// the composition rule for local, additive cost metrics ("users can sum
// these to obtain global design metrics").
func (s *Setup) DesignTotal(p Parameter) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0.0
	for k, a := range s.agg {
		if k.param == p && a.Count > 0 {
			total += a.Sum / float64(a.Count)
		}
	}
	return total
}
