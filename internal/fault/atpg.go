package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/gate"
	"repro/internal/signal"
)

// TestSet is a compacted test sequence for one component, together with
// the coverage it achieves over the component's collapsed fault list.
// The paper observes that "a good test sequence is IP that might need
// protection": providers generate these from the private netlist and sell
// them; internal/provider serves them over the ip.testset method.
type TestSet struct {
	Patterns [][]signal.Bit
	Coverage float64
	// Candidates is how many random candidates the generator examined.
	Candidates int
}

// GenerateTests builds a compact test set by random-search ATPG with
// fault dropping: random candidate patterns are fault-simulated and kept
// only when they detect at least one still-undetected fault; a reverse
// pass then removes patterns made redundant by later ones. The search
// stops when full coverage is reached, after maxCandidates candidates, or
// after 4·maxCandidates/5 consecutive useless candidates.
//
// The result is deterministic in the seed; callers that thread one
// generator through several stages use GenerateTestsRand directly.
func GenerateTests(nl *gate.Netlist, maxCandidates int, seed int64) (*TestSet, error) {
	return GenerateTestsRand(nl, maxCandidates, rand.New(rand.NewSource(seed)))
}

// GenerateTestsRand is GenerateTests drawing candidates from the given
// explicitly seeded generator — the sanctioned source of randomness in
// kernel code (gocad-lint simdeterminism forbids the global one).
func GenerateTestsRand(nl *gate.Netlist, maxCandidates int, r *rand.Rand) (*TestSet, error) {
	if maxCandidates < 1 {
		return nil, fmt.Errorf("fault: maxCandidates %d", maxCandidates)
	}
	if err := nl.Build(); err != nil {
		return nil, err
	}
	reps := Collapse(nl)
	golden, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	faulty, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	nIn := len(nl.Inputs())

	alive := append([]gate.Fault(nil), reps...)
	var kept [][]signal.Bit
	dryRun := 0
	dryLimit := 4*maxCandidates/5 + 1
	candidates := 0
	for ; candidates < maxCandidates && len(alive) > 0 && dryRun < dryLimit; candidates++ {
		pattern := make([]signal.Bit, nIn)
		for i := range pattern {
			if r.Intn(2) == 1 {
				pattern[i] = signal.B1
			}
		}
		detected, err := detectAny(golden, faulty, pattern, alive)
		if err != nil {
			return nil, err
		}
		if len(detected) == 0 {
			dryRun++
			continue
		}
		dryRun = 0
		kept = append(kept, pattern)
		alive = removeFaults(alive, detected)
	}

	// Reverse compaction: drop patterns whose detections are covered by
	// the remaining set.
	kept = reverseCompact(nl, reps, kept)

	res, err := SerialSimulateFaults(nl, reps, kept)
	if err != nil {
		return nil, err
	}
	return &TestSet{Patterns: kept, Coverage: res.Coverage(), Candidates: candidates}, nil
}

// detectAny returns the alive faults the pattern detects.
func detectAny(golden, faulty *gate.Evaluator, pattern []signal.Bit, alive []gate.Fault) ([]gate.Fault, error) {
	goodOut, err := golden.Eval(pattern)
	if err != nil {
		return nil, err
	}
	good := append([]signal.Bit(nil), goodOut...)
	var out []gate.Fault
	for _, f := range alive {
		faulty.ClearFaults()
		faulty.SetFault(f)
		bad, err := faulty.Eval(pattern)
		if err != nil {
			return nil, err
		}
		if knownDiff(good, bad) {
			out = append(out, f)
		}
	}
	return out, nil
}

// removeFaults filters detected faults out of the alive list.
func removeFaults(alive, detected []gate.Fault) []gate.Fault {
	drop := make(map[gate.Fault]bool, len(detected))
	for _, f := range detected {
		drop[f] = true
	}
	out := alive[:0]
	for _, f := range alive {
		if !drop[f] {
			out = append(out, f)
		}
	}
	return out
}

// reverseCompact removes patterns (scanning from the oldest) that no
// longer contribute unique detections.
func reverseCompact(nl *gate.Netlist, reps []gate.Fault, patterns [][]signal.Bit) [][]signal.Bit {
	if len(patterns) <= 1 {
		return patterns
	}
	base, err := SerialSimulateFaults(nl, reps, patterns)
	if err != nil {
		return patterns
	}
	target := len(base.Detected)
	kept := append([][]signal.Bit(nil), patterns...)
	for i := 0; i < len(kept); {
		trial := append(append([][]signal.Bit(nil), kept[:i]...), kept[i+1:]...)
		res, err := SerialSimulateFaults(nl, reps, trial)
		if err != nil {
			return kept
		}
		if len(res.Detected) == target {
			kept = trial
			continue // same index now holds the next pattern
		}
		i++
	}
	return kept
}
