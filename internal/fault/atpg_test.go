package fault

import (
	"math/rand"
	"testing"

	"repro/internal/gate"
	"repro/internal/signal"
)

func TestGenerateTestsFullCoverageSmall(t *testing.T) {
	nl := gate.RippleAdder(3)
	ts, err := GenerateTests(nl, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Coverage != 1.0 {
		t.Errorf("coverage = %.3f, want 1.0 (fully testable adder)", ts.Coverage)
	}
	if len(ts.Patterns) == 0 || ts.Candidates == 0 {
		t.Error("empty test set")
	}
	// Every pattern has the right arity.
	for _, p := range ts.Patterns {
		if len(p) != len(nl.Inputs()) {
			t.Fatal("pattern arity wrong")
		}
	}
}

func TestGenerateTestsCompaction(t *testing.T) {
	// The compacted set must be materially smaller than an uncompacted
	// random set reaching the same coverage.
	nl := gate.ArrayMultiplier(4)
	ts, err := GenerateTests(nl, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Coverage < 0.95 {
		t.Fatalf("coverage = %.3f too low for the comparison", ts.Coverage)
	}
	// How many raw random patterns does the same coverage take?
	r := rand.New(rand.NewSource(3))
	reps := Collapse(nl)
	var raw [][]signal.Bit
	for {
		p := make([]signal.Bit, len(nl.Inputs()))
		for i := range p {
			if r.Intn(2) == 1 {
				p[i] = signal.B1
			}
		}
		raw = append(raw, p)
		res, err := SerialSimulateFaults(nl, reps, raw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage() >= ts.Coverage || len(raw) > 2000 {
			break
		}
	}
	if len(ts.Patterns) >= len(raw) {
		t.Errorf("compacted set (%d) not smaller than raw random (%d)", len(ts.Patterns), len(raw))
	}
	t.Logf("compacted %d vs raw %d patterns at %.1f%% coverage",
		len(ts.Patterns), len(raw), 100*ts.Coverage)
}

func TestGenerateTestsDeterministic(t *testing.T) {
	nl := gate.HalfAdderIP()
	a, err := GenerateTests(nl, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTests(nl, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) || a.Coverage != b.Coverage {
		t.Error("same seed produced different test sets")
	}
}

func TestGenerateTestsValidation(t *testing.T) {
	nl := gate.RippleAdder(2)
	if _, err := GenerateTests(nl, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestGenerateTestsC17(t *testing.T) {
	// The classic benchmark must reach 100% with a handful of patterns.
	ts, err := GenerateTests(gate.C17(), 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Coverage != 1.0 {
		t.Errorf("c17 coverage = %.3f", ts.Coverage)
	}
	if len(ts.Patterns) > 10 {
		t.Errorf("c17 test set = %d patterns; expected a compact set", len(ts.Patterns))
	}
}
