package fault

import (
	"testing"

	"repro/internal/gate"
	"repro/internal/signal"
)

// TestEquivalenceClassesAreFunctionallyEquivalent is the semantic check
// behind structural collapsing: every fault merged into a class must
// produce EXACTLY the same faulty outputs as its representative, on every
// input pattern. Run over a spread of random circuits.
func TestEquivalenceClassesAreFunctionallyEquivalent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		nl := gate.RandomCombinational(4, 18, 3, seed)
		if err := nl.Build(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		classes := EquivalenceClasses(nl)
		ev, err := nl.NewEvaluator()
		if err != nil {
			t.Fatal(err)
		}
		var patterns [][]signal.Bit
		for v := uint64(0); v < 16; v++ {
			patterns = append(patterns, nl.InputWord(v))
		}
		for rep, class := range classes {
			if len(class) == 1 {
				continue
			}
			// Reference faulty responses of the representative.
			refOut := make([][]signal.Bit, len(patterns))
			ev.ClearFaults()
			ev.SetFault(rep)
			for pi, p := range patterns {
				out, err := ev.Eval(p)
				if err != nil {
					t.Fatal(err)
				}
				refOut[pi] = append([]signal.Bit(nil), out...)
			}
			for _, f := range class {
				if f == rep {
					continue
				}
				ev.ClearFaults()
				ev.SetFault(f)
				for pi, p := range patterns {
					out, err := ev.Eval(p)
					if err != nil {
						t.Fatal(err)
					}
					for j := range out {
						if out[j] != refOut[pi][j] {
							t.Fatalf("seed %d: fault %s not equivalent to class rep %s (pattern %d, output %d)",
								seed, f.Symbol(nl), rep.Symbol(nl), pi, j)
						}
					}
				}
			}
		}
	}
}

// TestCollapsedCoverageEqualsFullCoverage: simulating only the collapsed
// representatives must yield the same per-class detection verdicts as
// simulating the full universe.
func TestCollapsedCoverageEqualsFullCoverage(t *testing.T) {
	nl := gate.RandomCombinational(4, 15, 3, 99)
	var patterns [][]signal.Bit
	for v := uint64(0); v < 16; v++ {
		patterns = append(patterns, nl.InputWord(v))
	}
	classes := EquivalenceClasses(nl)
	full, err := SerialSimulateFaults(nl, Enumerate(nl), patterns)
	if err != nil {
		t.Fatal(err)
	}
	collapsed, err := SerialSimulate(nl, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for rep, class := range classes {
		repSym := rep.Symbol(nl)
		_, repDet := collapsed.Detected[repSym]
		for _, f := range class {
			_, fDet := full.Detected[f.Symbol(nl)]
			if fDet != repDet {
				t.Errorf("class %s: member %s detected=%v, representative detected=%v",
					repSym, f.Symbol(nl), fDet, repDet)
			}
		}
	}
}
