package fault

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/module"
	"repro/internal/signal"
)

// IPDesign bundles a module-level design containing IP components with
// everything needed to fault-simulate it virtually AND to validate the
// result against a flattened full-disclosure reference.
type IPDesign struct {
	// Circuit is the module-level design (user's view).
	Circuit *module.Circuit
	// Inputs are the primary-input connectors, pattern bit i → Inputs[i].
	Inputs []*module.Connector
	// Outputs monitor the design's primary outputs.
	Outputs []*module.PrimaryOutput
	// Hosts are the IP components with their testability services.
	Hosts []*Host
	// Flat is the flattened netlist of the whole design with component
	// internals prefixed by "<instance>." — the reference an omniscient
	// owner could fault-simulate directly.
	Flat *gate.Netlist
}

// FlatFaultFor maps a qualified virtual fault name ("IP1.I3sa0") to the
// corresponding fault of the flattened netlist.
func (d *IPDesign) FlatFaultFor(qualified string) (gate.Fault, error) {
	for _, h := range d.Hosts {
		prefix := h.Module.ModuleName() + "."
		if len(qualified) <= len(prefix) || qualified[:len(prefix)] != prefix {
			continue
		}
		sym := qualified[len(prefix):]
		// Symbol format: <netname>sa<0|1>.
		if len(sym) < 4 {
			return gate.Fault{}, fmt.Errorf("fault: malformed symbol %q", qualified)
		}
		netName := prefix + sym[:len(sym)-3]
		id := d.Flat.Net(netName)
		if id == gate.InvalidNet {
			return gate.Fault{}, fmt.Errorf("fault: flat netlist has no net %q", netName)
		}
		f := gate.Fault{Net: id, Stuck: signal.B0}
		switch sym[len(sym)-3:] {
		case "sa0":
		case "sa1":
			f.Stuck = signal.B1
		default:
			return gate.Fault{}, fmt.Errorf("fault: malformed symbol %q", qualified)
		}
		return f, nil
	}
	return gate.Fault{}, fmt.Errorf("fault: %q matches no host", qualified)
}

// Figure4Design builds the paper's Figure 4 example as a module-level
// design: primary inputs A-D, an AND gate producing E, the IP1 half-adder
// block (a NetlistModule whose gate-level content plays the role of the
// provider's private implementation), and the output logic O1 = OIP1·D,
// O2 = OIP2 + (C·D). Inputs order: A, B, C, D. Outputs order: O1, O2.
func Figure4Design() (*IPDesign, error) {
	a := module.NewBitConnector("A")
	b := module.NewBitConnector("B")
	c := module.NewBitConnector("C")
	d := module.NewBitConnector("D")
	// C and D each feed two sinks: explicit fan-out modules.
	c1 := module.NewBitConnector("C1")
	c2 := module.NewBitConnector("C2")
	d1 := module.NewBitConnector("D1")
	d2 := module.NewBitConnector("D2")
	e := module.NewBitConnector("E")
	oip1 := module.NewBitConnector("OIP1")
	oip2 := module.NewBitConnector("OIP2")
	f := module.NewBitConnector("F")
	o1 := module.NewBitConnector("O1")
	o2 := module.NewBitConnector("O2")

	foC := module.NewFanout("foC", 1, c, []*module.Connector{c1, c2}, nil)
	foD := module.NewFanout("foD", 1, d, []*module.Connector{d1, d2}, nil)
	gE := module.NewGateModule("gE", gate.And, []*module.Connector{a, b}, e)
	ip1 := module.NewNetlistModule("IP1", gate.HalfAdderIP(),
		[]*module.Connector{e, c1}, []*module.Connector{oip1, oip2})
	gF := module.NewGateModule("gF", gate.And, []*module.Connector{c2, d2}, f)
	gO1 := module.NewGateModule("gO1", gate.And, []*module.Connector{oip1, d1}, o1)
	gO2 := module.NewGateModule("gO2", gate.Or, []*module.Connector{oip2, f}, o2)
	po1 := module.NewPrimaryOutput("PO1", 1, o1)
	po2 := module.NewPrimaryOutput("PO2", 1, o2)

	circuit := module.NewCircuit("fig4", foC, foD, gE, ip1, gF, gO1, gO2, po1, po2)
	svc, err := NewLocalTestability(ip1.Netlist(), NetNames, true)
	if err != nil {
		return nil, err
	}

	// Flattened reference with IP1 internals prefixed "IP1.".
	flat := gate.NewNetlist("fig4flat")
	fa := flat.AddInput("A")
	fb := flat.AddInput("B")
	fc := flat.AddInput("C")
	fd := flat.AddInput("D")
	fe := flat.AddGate(gate.And, "E", fa, fb)
	ipOuts := flat.Embed(gate.HalfAdderIP(), []gate.NetID{fe, fc}, "IP1.")
	ff := flat.AddGate(gate.And, "F", fc, fd)
	fo1 := flat.AddGate(gate.And, "O1", ipOuts[0], fd)
	fo2 := flat.AddGate(gate.Or, "O2", ipOuts[1], ff)
	flat.MarkOutput(fo1)
	flat.MarkOutput(fo2)

	return &IPDesign{
		Circuit: circuit,
		Inputs:  []*module.Connector{a, b, c, d},
		Outputs: []*module.PrimaryOutput{po1, po2},
		Hosts:   []*Host{{Module: ip1, Service: svc}},
		Flat:    flat,
	}, nil
}

// RandomIPDesign builds a pseudo-random design embedding one IP component
// with a random gate-level implementation, plus its flattened reference —
// the workload of the virtual-vs-flat equivalence property tests. The
// outer structure is fixed; the component (nIn inputs, nGates gates, nOut
// outputs) varies with the seed.
//
// Topology (5 primary inputs x0..x4, component "IP" with 3 inputs and 2
// outputs): g1 = x0·x1, g2 = x2+x3, g3 = x4⊕x0; IP(g1, g2, g3) → c0, c1;
// O1 = NAND(c0, c1), O2 = c1 + g2.
func RandomIPDesign(nGates int, seed int64) (*IPDesign, error) {
	comp := gate.RandomCombinational(3, nGates, 2, seed)

	x := make([]*module.Connector, 5)
	for i := range x {
		x[i] = module.NewBitConnector(fmt.Sprintf("x%d", i))
	}
	x0a := module.NewBitConnector("x0a")
	x0b := module.NewBitConnector("x0b")
	g2a := module.NewBitConnector("g2a")
	g2b := module.NewBitConnector("g2b")
	c1a := module.NewBitConnector("c1a")
	c1b := module.NewBitConnector("c1b")
	g1 := module.NewBitConnector("g1")
	g2 := module.NewBitConnector("g2")
	g3 := module.NewBitConnector("g3")
	c0 := module.NewBitConnector("c0")
	c1 := module.NewBitConnector("c1")
	o1 := module.NewBitConnector("o1")
	o2 := module.NewBitConnector("o2")

	fo0 := module.NewFanout("fo0", 1, x[0], []*module.Connector{x0a, x0b}, nil)
	mg1 := module.NewGateModule("mg1", gate.And, []*module.Connector{x0a, x[1]}, g1)
	mg2 := module.NewGateModule("mg2", gate.Or, []*module.Connector{x[2], x[3]}, g2)
	fog2 := module.NewFanout("fog2", 1, g2, []*module.Connector{g2a, g2b}, nil)
	mg3 := module.NewGateModule("mg3", gate.Xor, []*module.Connector{x[4], x0b}, g3)
	ip := module.NewNetlistModule("IP", comp,
		[]*module.Connector{g1, g2a, g3}, []*module.Connector{c0, c1})
	foc1 := module.NewFanout("foc1", 1, c1, []*module.Connector{c1a, c1b}, nil)
	mo1 := module.NewGateModule("mo1", gate.Nand, []*module.Connector{c0, c1a}, o1)
	mo2 := module.NewGateModule("mo2", gate.Or, []*module.Connector{c1b, g2b}, o2)
	po1 := module.NewPrimaryOutput("PO1", 1, o1)
	po2 := module.NewPrimaryOutput("PO2", 1, o2)

	circuit := module.NewCircuit("randip",
		fo0, mg1, mg2, fog2, mg3, ip, foc1, mo1, mo2, po1, po2)
	svc, err := NewLocalTestability(comp, NetNames, true)
	if err != nil {
		return nil, err
	}

	flat := gate.NewNetlist("randipflat")
	fx := make([]gate.NetID, 5)
	for i := range fx {
		fx[i] = flat.AddInput(fmt.Sprintf("x%d", i))
	}
	fg1 := flat.AddGate(gate.And, "g1", fx[0], fx[1])
	fg2 := flat.AddGate(gate.Or, "g2", fx[2], fx[3])
	fg3 := flat.AddGate(gate.Xor, "g3", fx[4], fx[0])
	cOuts := flat.Embed(comp, []gate.NetID{fg1, fg2, fg3}, "IP.")
	fo1 := flat.AddGate(gate.Nand, "o1", cOuts[0], cOuts[1])
	fo2 := flat.AddGate(gate.Or, "o2", cOuts[1], fg2)
	flat.MarkOutput(fo1)
	flat.MarkOutput(fo2)

	return &IPDesign{
		Circuit: circuit,
		Inputs:  x,
		Outputs: []*module.PrimaryOutput{po1, po2},
		Hosts:   []*Host{{Module: ip, Service: svc}},
		Flat:    flat,
	}, nil
}

// RandomTwoIPDesign builds a design embedding TWO independent IP
// components from (conceptually) different providers — the Figure 1
// topology — plus the flattened reference. Component "U1" (3 in, 2 out)
// feeds component "U2" (2 in, 1 out) through user-owned glue, so the
// protocol must compose fault lists and detection tables across hosts.
//
// Topology (4 primary inputs y0..y3): h1 = y0·y1, h2 = y2⊕y3;
// U1(h1, h2, y0) → u0, u1; U2(u0, u1) → w0; O1 = w0 + y3, O2 = NOT u1.
func RandomTwoIPDesign(nGates int, seed int64) (*IPDesign, error) {
	comp1 := gate.RandomCombinational(3, nGates, 2, seed)
	comp2 := gate.RandomCombinational(2, nGates/2+1, 1, seed+1000)

	y := make([]*module.Connector, 4)
	for i := range y {
		y[i] = module.NewBitConnector(fmt.Sprintf("y%d", i))
	}
	y0a := module.NewBitConnector("y0a")
	y0b := module.NewBitConnector("y0b")
	y3a := module.NewBitConnector("y3a")
	y3b := module.NewBitConnector("y3b")
	u1a := module.NewBitConnector("u1a")
	u1b := module.NewBitConnector("u1b")
	h1 := module.NewBitConnector("h1")
	h2 := module.NewBitConnector("h2")
	u0 := module.NewBitConnector("u0")
	u1 := module.NewBitConnector("u1")
	w0 := module.NewBitConnector("w0")
	o1 := module.NewBitConnector("o1")
	o2 := module.NewBitConnector("o2")

	fo0 := module.NewFanout("fo0", 1, y[0], []*module.Connector{y0a, y0b}, nil)
	fo3 := module.NewFanout("fo3", 1, y[3], []*module.Connector{y3a, y3b}, nil)
	mh1 := module.NewGateModule("mh1", gate.And, []*module.Connector{y0a, y[1]}, h1)
	mh2 := module.NewGateModule("mh2", gate.Xor, []*module.Connector{y[2], y3a}, h2)
	ip1 := module.NewNetlistModule("U1", comp1,
		[]*module.Connector{h1, h2, y0b}, []*module.Connector{u0, u1})
	fou1 := module.NewFanout("fou1", 1, u1, []*module.Connector{u1a, u1b}, nil)
	ip2 := module.NewNetlistModule("U2", comp2,
		[]*module.Connector{u0, u1a}, []*module.Connector{w0})
	mo1 := module.NewGateModule("mo1", gate.Or, []*module.Connector{w0, y3b}, o1)
	mo2 := module.NewGateModule("mo2", gate.Not, []*module.Connector{u1b}, o2)
	po1 := module.NewPrimaryOutput("PO1", 1, o1)
	po2 := module.NewPrimaryOutput("PO2", 1, o2)

	circuit := module.NewCircuit("twoip",
		fo0, fo3, mh1, mh2, ip1, fou1, ip2, mo1, mo2, po1, po2)
	svc1, err := NewLocalTestability(comp1, NetNames, true)
	if err != nil {
		return nil, err
	}
	svc2, err := NewLocalTestability(comp2, NetNames, true)
	if err != nil {
		return nil, err
	}

	flat := gate.NewNetlist("twoipflat")
	fy := make([]gate.NetID, 4)
	for i := range fy {
		fy[i] = flat.AddInput(fmt.Sprintf("y%d", i))
	}
	fh1 := flat.AddGate(gate.And, "h1", fy[0], fy[1])
	fh2 := flat.AddGate(gate.Xor, "h2", fy[2], fy[3])
	c1Outs := flat.Embed(comp1, []gate.NetID{fh1, fh2, fy[0]}, "U1.")
	c2Outs := flat.Embed(comp2, []gate.NetID{c1Outs[0], c1Outs[1]}, "U2.")
	fo1 := flat.AddGate(gate.Or, "o1", c2Outs[0], fy[3])
	fo2 := flat.AddGate(gate.Not, "o2", c1Outs[1])
	flat.MarkOutput(fo1)
	flat.MarkOutput(fo2)

	return &IPDesign{
		Circuit: circuit,
		Inputs:  y,
		Outputs: []*module.PrimaryOutput{po1, po2},
		Hosts: []*Host{
			{Module: ip1, Service: svc1},
			{Module: ip2, Service: svc2},
		},
		Flat: flat,
	}, nil
}

// NewVirtual returns a VirtualSimulator wired over the design with all
// hosts registered.
func (d *IPDesign) NewVirtual() *VirtualSimulator {
	vs := NewVirtualSimulator(d.Circuit, d.Inputs, d.Outputs)
	for _, h := range d.Hosts {
		vs.AddHost(h.Module, h.Service)
	}
	return vs
}
