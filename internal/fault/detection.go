package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/gate"
	"repro/internal/signal"
)

// DetectionTable is the partial representation of a component's
// testability corresponding to ONE input configuration: for that input
// pattern, each row associates an erroneous output pattern with the list
// of symbolic internal faults that would cause it. It is a local,
// IP-sensitive parameter — the provider evaluates it independently for a
// given input pattern and returns it to the user, who uses it for fault
// injection and propagation but learns nothing about the component's
// structure beyond input/output behavior under fault.
//
// DetectionTable implements estim.ParamValue, so it flows through the
// standard estimation machinery (it is "nothing but a local, IP-sensitive
// parameter").
type DetectionTable struct {
	// Input is the input configuration the table corresponds to.
	Input signal.Word
	// FaultFree is the component's good output pattern for Input.
	FaultFree signal.Word
	// Rows maps each erroneous output pattern to the symbolic faults
	// producing it.
	Rows []DetectionRow
}

// DetectionRow is one (erroneous output, fault list) association.
type DetectionRow struct {
	Output signal.Word
	Faults []string
}

// ParamString renders the table compactly for reports.
func (dt *DetectionTable) ParamString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "in=%s good=%s", dt.Input, dt.FaultFree)
	for _, r := range dt.Rows {
		fmt.Fprintf(&sb, " %s:{%s}", r.Output, strings.Join(r.Faults, ","))
	}
	return sb.String()
}

// IsNull reports false.
func (dt *DetectionTable) IsNull() bool { return false }

// Row returns the row for an erroneous output pattern, if present.
func (dt *DetectionTable) Row(out signal.Word) (DetectionRow, bool) {
	for _, r := range dt.Rows {
		if r.Output.Equal(out) {
			return r, true
		}
	}
	return DetectionRow{}, false
}

// OutputFor returns the erroneous output pattern associated with a
// symbolic fault, if the fault is excited by this input configuration.
func (dt *DetectionTable) OutputFor(fault string) (signal.Word, bool) {
	for _, r := range dt.Rows {
		for _, f := range r.Faults {
			if f == fault {
				return r.Output, true
			}
		}
	}
	return signal.Word{}, false
}

// Faults returns all symbolic faults excited by this input configuration.
func (dt *DetectionTable) Faults() []string {
	var out []string
	for _, r := range dt.Rows {
		out = append(out, r.Faults...)
	}
	sort.Strings(out)
	return out
}

// TestabilityService is the provider-side interface of virtual fault
// simulation: phase one publishes the symbolic fault list; phase two
// answers per-pattern detection-table queries. The local implementation
// below wraps a netlist directly; internal/provider exposes the same
// interface across the network.
type TestabilityService interface {
	// FaultList returns the component's symbolic fault list.
	FaultList() ([]string, error)
	// DetectionTable returns the detection table for one input
	// configuration (component inputs in port order).
	DetectionTable(inputs []signal.Bit) (*DetectionTable, error)
}

// LocalTestability serves testability queries from a private netlist —
// the code that runs on the IP provider's server. Construction
// precomputes the collapsed fault list; each DetectionTable call runs one
// fault simulation sweep over the component alone.
type LocalTestability struct {
	nl   *gate.Netlist
	list *SymbolicList
	// cacheMu guards cache: one service instance may be shared across
	// hosts, and the virtual simulator queries hosts concurrently.
	cacheMu sync.Mutex
	// cache maps packed input words to computed tables; detection tables
	// depend only on the input configuration, so the provider can serve
	// repeated patterns (the paper's example: patterns 1100 and 1101 lead
	// to the same component inputs) without recomputation.
	cache map[string]*DetectionTable
}

// NewLocalTestability returns a testability service over the netlist.
// With internalOnly set, the published fault list excludes pure port
// faults (the usual configuration: port faults belong to the user's side
// of the boundary).
func NewLocalTestability(nl *gate.Netlist, policy Naming, internalOnly bool) (*LocalTestability, error) {
	if err := nl.Build(); err != nil {
		return nil, err
	}
	return &LocalTestability{
		nl:    nl,
		list:  buildSymbolicList(nl, policy, internalOnly),
		cache: make(map[string]*DetectionTable),
	}, nil
}

// Symbolic returns the underlying symbolic list (provider-side use).
func (lt *LocalTestability) Symbolic() *SymbolicList { return lt.list }

// FaultList implements TestabilityService.
func (lt *LocalTestability) FaultList() ([]string, error) { return lt.list.Names(), nil }

// DetectionTable implements TestabilityService: it computes, for the
// given component input configuration, the component's fault-free output
// and every erroneous output pattern reachable under a single internal
// stuck-at fault, grouped by output pattern.
func (lt *LocalTestability) DetectionTable(inputs []signal.Bit) (*DetectionTable, error) {
	if len(inputs) != len(lt.nl.Inputs()) {
		return nil, fmt.Errorf("fault: component %s has %d inputs, got %d",
			lt.nl.Name, len(lt.nl.Inputs()), len(inputs))
	}
	// The whole computation runs under the lock: concurrent callers with
	// the same pattern coalesce on one sweep, and the netlist's memoized
	// build is never raced.
	lt.cacheMu.Lock()
	defer lt.cacheMu.Unlock()
	key := packBits(inputs)
	if dt, ok := lt.cache[key]; ok {
		return dt, nil
	}
	ev, err := lt.nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	if _, err := ev.Eval(inputs); err != nil {
		return nil, err
	}
	good := ev.OutputWord()
	inWord := signal.Word{Bits: append([]signal.Bit(nil), inputs...)}
	dt := &DetectionTable{Input: inWord, FaultFree: good.Clone()}
	rowIdx := make(map[string]int)
	for _, name := range lt.list.names {
		f := lt.list.toFault[name]
		ev.ClearFaults()
		ev.SetFault(f)
		if _, err := ev.Eval(inputs); err != nil {
			return nil, err
		}
		bad := ev.OutputWord()
		if bad.Equal(good) || !bad.Known() {
			continue // fault not excited (or unresolvable) by this input
		}
		k := bad.String()
		if i, ok := rowIdx[k]; ok {
			dt.Rows[i].Faults = append(dt.Rows[i].Faults, name)
		} else {
			rowIdx[k] = len(dt.Rows)
			dt.Rows = append(dt.Rows, DetectionRow{Output: bad.Clone(), Faults: []string{name}})
		}
	}
	for i := range dt.Rows {
		sort.Strings(dt.Rows[i].Faults)
	}
	lt.cache[key] = dt
	return dt, nil
}

// packBits renders a bit slice as a compact cache key.
func packBits(bits []signal.Bit) string {
	b := make([]byte, len(bits))
	for i, v := range bits {
		b[i] = "01XZ"[v&3]
	}
	return string(b)
}
