// Package fault implements gocad's testability machinery: single
// stuck-at fault models over gate-level netlists, structural fault
// collapsing, symbolic fault lists, per-pattern detection tables, a
// full-disclosure serial fault simulator (the reference an IP owner could
// run on its own flattened design), and the paper's headline extension —
// VIRTUAL FAULT SIMULATION, the two-phase client/provider protocol that
// evaluates the fault coverage of a design containing IP components
// without the provider disclosing the netlist and without the user
// disclosing the surrounding design.
package fault

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/gate"
	"repro/internal/signal"
)

// Enumerate returns the full single-stuck-at fault universe of a netlist:
// stuck-at-0 and stuck-at-1 on every net.
func Enumerate(nl *gate.Netlist) []gate.Fault {
	faults := make([]gate.Fault, 0, 2*nl.NumNets())
	for id := 0; id < nl.NumNets(); id++ {
		faults = append(faults,
			gate.Fault{Net: gate.NetID(id), Stuck: signal.B0},
			gate.Fault{Net: gate.NetID(id), Stuck: signal.B1},
		)
	}
	return faults
}

// faultKey indexes a fault in collapse structures.
type faultKey struct {
	net   gate.NetID
	stuck signal.Bit
}

// unionFind is a minimal disjoint-set over fault keys.
type unionFind map[faultKey]faultKey

func (u unionFind) find(k faultKey) faultKey {
	r, ok := u[k]
	if !ok || r == k {
		return k
	}
	root := u.find(r)
	u[k] = root
	return root
}

func (u unionFind) union(a, b faultKey) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u[ra] = rb
	}
}

// collapseUnion builds the equivalence structure over the fault
// universe. The classical gate rules are applied:
//
//	AND : output sa0 ≡ every input sa0      NAND: output sa1 ≡ every input sa0
//	OR  : output sa1 ≡ every input sa1      NOR : output sa0 ≡ every input sa1
//	BUF : output saV ≡ input saV            NOT : output saV ≡ input sa¬V
//
// Equivalence across a gate input is only valid when the input net is
// fanout-free (drives exactly that one gate input) AND is not itself a
// primary output: a fault on an observed net is distinguishable at that
// net directly even when its downstream effect coincides. (The second
// condition was caught by the functional-equivalence property test in
// collapse_test.go.)
func collapseUnion(nl *gate.Netlist) unionFind {
	if err := nl.Build(); err != nil {
		panic(fmt.Sprintf("fault: %v", err))
	}
	uf := make(unionFind, 4*len(nl.Gates()))
	for _, g := range nl.Gates() {
		for _, in := range g.In {
			if nl.Fanout(in) != 1 || nl.IsOutput(in) {
				continue
			}
			switch g.Kind {
			case gate.And:
				uf.union(faultKey{in, signal.B0}, faultKey{g.Out, signal.B0})
			case gate.Nand:
				uf.union(faultKey{in, signal.B0}, faultKey{g.Out, signal.B1})
			case gate.Or:
				uf.union(faultKey{in, signal.B1}, faultKey{g.Out, signal.B1})
			case gate.Nor:
				uf.union(faultKey{in, signal.B1}, faultKey{g.Out, signal.B0})
			case gate.Buf:
				uf.union(faultKey{in, signal.B0}, faultKey{g.Out, signal.B0})
				uf.union(faultKey{in, signal.B1}, faultKey{g.Out, signal.B1})
			case gate.Not:
				uf.union(faultKey{in, signal.B0}, faultKey{g.Out, signal.B1})
				uf.union(faultKey{in, signal.B1}, faultKey{g.Out, signal.B0})
			}
		}
	}
	return uf
}

// Collapse reduces the fault universe by structural equivalence (see
// collapseUnion for the rules and their validity conditions): faults that
// provably produce identical faulty functions are merged, and one
// representative per class is kept, in deterministic (net, stuck) order.
func Collapse(nl *gate.Netlist) []gate.Fault {
	uf := collapseUnion(nl)
	seen := make(map[faultKey]bool, 2*nl.NumNets())
	out := make([]gate.Fault, 0, 2*nl.NumNets())
	for _, f := range Enumerate(nl) {
		root := uf.find(faultKey{f.Net, f.Stuck})
		if seen[root] {
			continue
		}
		seen[root] = true
		out = append(out, f)
	}
	return out
}

// EquivalenceClasses returns, for each collapsed representative, every
// fault merged into it (including itself). Coverage numbers over the full
// universe are derived from class sizes.
func EquivalenceClasses(nl *gate.Netlist) map[gate.Fault][]gate.Fault {
	uf := collapseUnion(nl)
	n := 2 * nl.NumNets()
	classOf := make(map[faultKey][]gate.Fault, n)
	reps := make(map[faultKey]gate.Fault, n)
	// One enumeration pass: the first fault reaching a root (in
	// deterministic (net, stuck) order) is the class representative —
	// the same choice Collapse makes.
	for _, f := range Enumerate(nl) {
		root := uf.find(faultKey{f.Net, f.Stuck})
		if _, ok := reps[root]; !ok {
			reps[root] = f
		}
		classOf[root] = append(classOf[root], f)
	}
	out := make(map[gate.Fault][]gate.Fault, len(classOf))
	for root, class := range classOf {
		out[reps[root]] = class
	}
	return out
}

// Naming maps internal faults to the symbolic names a provider publishes.
type Naming int

// Naming policies.
const (
	// NetNames spells faults as <netname>sa<v>, the paper's Figure 4
	// style (I3sa0). Net names are visible; use for components whose net
	// naming is not sensitive.
	NetNames Naming = iota
	// Anonymous spells faults as f<k>sa<v> with k an opaque index,
	// disclosing nothing about the component's structure.
	Anonymous
)

// SymbolicList is a provider's published fault list: symbolic names in a
// stable order, with the mapping back to internal faults kept private.
type SymbolicList struct {
	names   []string
	toFault map[string]gate.Fault
}

// NewSymbolicList builds the symbolic fault list for a netlist under the
// naming policy, over the collapsed fault set.
func NewSymbolicList(nl *gate.Netlist, policy Naming) *SymbolicList {
	return buildSymbolicList(nl, policy, false)
}

// NewInternalSymbolicList is NewSymbolicList restricted to the
// component's INTERNAL faults: equivalence classes consisting solely of
// primary-input or primary-output net faults are omitted, because — as
// the paper specifies — "the user directly handles faults affecting input
// or output signals" (a port fault belongs to the shared net between user
// and component, not to the provider's IP). A class mixing port and
// internal faults keeps an internal representative.
func NewInternalSymbolicList(nl *gate.Netlist, policy Naming) *SymbolicList {
	return buildSymbolicList(nl, policy, true)
}

func buildSymbolicList(nl *gate.Netlist, policy Naming, internalOnly bool) *SymbolicList {
	uf := collapseUnion(nl)
	// One enumeration pass replaces the Collapse + EquivalenceClasses
	// pair this function used to run (each of which re-derived the union
	// structure): classes are discovered in deterministic (net, stuck)
	// order, the first member of each class is its representative, and
	// the internal-only filter tracks the first internal member in the
	// same order a scan of the class slice would have found it.
	type classEntry struct {
		f        gate.Fault
		internal bool
	}
	isInternal := func(f gate.Fault) bool { return !nl.IsInput(f.Net) && !nl.IsOutput(f.Net) }
	entries := make([]classEntry, 0, 2*nl.NumNets())
	byRoot := make(map[faultKey]int, 2*nl.NumNets())
	for _, f := range Enumerate(nl) {
		root := uf.find(faultKey{f.Net, f.Stuck})
		if i, ok := byRoot[root]; ok {
			if internalOnly && !entries[i].internal && isInternal(f) {
				entries[i] = classEntry{f: f, internal: true}
			}
			continue
		}
		byRoot[root] = len(entries)
		entries = append(entries, classEntry{f: f, internal: isInternal(f)})
	}
	sl := &SymbolicList{
		names:   make([]string, 0, len(entries)),
		toFault: make(map[string]gate.Fault, len(entries)),
	}
	idx := 0
	for _, e := range entries {
		if internalOnly && !e.internal {
			continue // class holds only port faults: user's responsibility
		}
		var name string
		switch policy {
		case Anonymous:
			sa := "sa0"
			if e.f.Stuck == signal.B1 {
				sa = "sa1"
			}
			name = "f" + strconv.Itoa(idx) + sa
		default:
			name = e.f.Symbol(nl)
		}
		idx++
		sl.names = append(sl.names, name)
		sl.toFault[name] = e.f
	}
	return sl
}

// Names returns the symbolic names in publication order. This slice is
// what crosses the IP boundary to the user.
func (sl *SymbolicList) Names() []string { return append([]string(nil), sl.names...) }

// Fault resolves a symbolic name to the internal fault. Provider-side
// only: the mapping never leaves the provider.
func (sl *SymbolicList) Fault(name string) (gate.Fault, bool) {
	f, ok := sl.toFault[name]
	return f, ok
}

// Len returns the number of symbolic faults.
func (sl *SymbolicList) Len() int { return len(sl.names) }

// SortedNames returns the names sorted lexicographically (for reports).
func (sl *SymbolicList) SortedNames() []string {
	out := sl.Names()
	sort.Strings(out)
	return out
}
