package fault

import (
	"strings"
	"testing"

	"repro/internal/gate"
	"repro/internal/signal"
)

func TestEnumerateCountsTwoPerNet(t *testing.T) {
	nl := gate.RippleAdder(2)
	fs := Enumerate(nl)
	if len(fs) != 2*nl.NumNets() {
		t.Errorf("enumerated %d faults over %d nets", len(fs), nl.NumNets())
	}
}

func TestCollapseReducesFaultCount(t *testing.T) {
	nl := gate.ArrayMultiplier(4)
	full := Enumerate(nl)
	reps := Collapse(nl)
	if len(reps) >= len(full) {
		t.Errorf("collapse did not reduce: %d -> %d", len(full), len(reps))
	}
	if len(reps) == 0 {
		t.Error("collapse removed everything")
	}
}

func TestCollapseChainOfBuffers(t *testing.T) {
	// a -> BUF x -> BUF y: x.sa0 ≡ y.sa0 and a.sa0 ≡ x.sa0 (fanout-free),
	// so the whole chain collapses to 2 classes (sa0, sa1) plus nothing
	// else.
	nl := gate.NewNetlist("chain")
	a := nl.AddInput("a")
	x := nl.AddGate(gate.Buf, "x", a)
	y := nl.AddGate(gate.Buf, "y", x)
	nl.MarkOutput(y)
	reps := Collapse(nl)
	if len(reps) != 2 {
		t.Errorf("buffer chain collapsed to %d classes, want 2", len(reps))
	}
}

func TestCollapseRespectsFanout(t *testing.T) {
	// a feeds two AND gates: a.sa0 must NOT merge with either gate output.
	nl := gate.NewNetlist("fan")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	o1 := nl.AddGate(gate.And, "o1", a, b)
	o2 := nl.AddGate(gate.And, "o2", a, c)
	nl.MarkOutput(o1)
	nl.MarkOutput(o2)
	classes := EquivalenceClasses(nl)
	for rep, class := range classes {
		hasA := false
		hasOut := false
		for _, f := range class {
			if f.Net == a {
				hasA = true
			}
			if f.Net == o1 || f.Net == o2 {
				hasOut = true
			}
		}
		if hasA && hasOut {
			t.Errorf("class of %v merges fanout stem with branch output", rep)
		}
	}
}

func TestEquivalenceClassesCoverUniverse(t *testing.T) {
	nl := gate.RippleAdder(3)
	classes := EquivalenceClasses(nl)
	total := 0
	for _, c := range classes {
		total += len(c)
	}
	if total != 2*nl.NumNets() {
		t.Errorf("classes cover %d faults, want %d", total, 2*nl.NumNets())
	}
}

func TestSymbolicListNetNames(t *testing.T) {
	nl := gate.HalfAdderIP()
	sl := NewSymbolicList(nl, NetNames)
	names := sl.Names()
	if len(names) == 0 {
		t.Fatal("empty symbolic list")
	}
	found := false
	for _, n := range names {
		if strings.HasPrefix(n, "I") && (strings.HasSuffix(n, "sa0") || strings.HasSuffix(n, "sa1")) {
			found = true
		}
		f, ok := sl.Fault(n)
		if !ok {
			t.Fatalf("name %q does not resolve", n)
		}
		if f.Symbol(nl) != n {
			// Internal-only lists may rename; plain lists must round-trip.
			t.Errorf("name %q resolves to %q", n, f.Symbol(nl))
		}
	}
	if !found {
		t.Error("no internal-net fault names present")
	}
	if sl.Len() != len(names) {
		t.Error("Len mismatch")
	}
	sorted := sl.SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatal("SortedNames not sorted")
		}
	}
}

func TestSymbolicListAnonymous(t *testing.T) {
	nl := gate.HalfAdderIP()
	sl := NewSymbolicList(nl, Anonymous)
	for _, n := range sl.Names() {
		if !strings.HasPrefix(n, "f") {
			t.Errorf("anonymous name %q leaks structure", n)
		}
		if _, ok := sl.Fault(n); !ok {
			t.Errorf("anonymous name %q does not resolve", n)
		}
	}
}

func TestInternalSymbolicListExcludesPortFaults(t *testing.T) {
	nl := gate.HalfAdderIP()
	sl := NewInternalSymbolicList(nl, NetNames)
	for _, n := range sl.Names() {
		f, _ := sl.Fault(n)
		if nl.IsInput(f.Net) || nl.IsOutput(f.Net) {
			t.Errorf("internal list contains port fault %q", n)
		}
	}
	// The half adder's internal list must mention the paper's I-nets.
	names := strings.Join(sl.Names(), " ")
	for _, want := range []string{"I1", "I4"} {
		if !strings.Contains(names, want) {
			t.Errorf("internal list %q missing %s faults", names, want)
		}
	}
}

func TestDetectionTableFigure4InputConfig(t *testing.T) {
	// IP1 with inputs (IIP1, IIP2) = (1, 0): the paper's Figure 4b.
	nl := gate.HalfAdderIP()
	lt, err := NewLocalTestability(nl, NetNames, true)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := lt.DetectionTable([]signal.Bit{signal.B1, signal.B0})
	if err != nil {
		t.Fatal(err)
	}
	// Fault-free configuration must be (OIP1, OIP2) = (1, 0).
	if dt.FaultFree.Bit(0) != signal.B1 || dt.FaultFree.Bit(1) != signal.B0 {
		t.Fatalf("fault-free outputs = %v, want sum=1 carry=0", dt.FaultFree)
	}
	if len(dt.Rows) == 0 {
		t.Fatal("empty detection table")
	}
	// Every row's output must differ from the fault-free pattern, and
	// every listed fault must reproduce exactly that row's output.
	ev, _ := nl.NewEvaluator()
	for _, row := range dt.Rows {
		if row.Output.Equal(dt.FaultFree) {
			t.Error("row equals fault-free output")
		}
		for _, name := range row.Faults {
			f, ok := lt.Symbolic().Fault(name)
			if !ok {
				t.Fatalf("row fault %q unresolvable", name)
			}
			ev.ClearFaults()
			ev.SetFault(f)
			if _, err := ev.Eval([]signal.Bit{signal.B1, signal.B0}); err != nil {
				t.Fatal(err)
			}
			if !ev.OutputWord().Equal(row.Output) {
				t.Errorf("fault %s produces %v, row says %v", name, ev.OutputWord(), row.Output)
			}
		}
	}
	// An erroneous-sum row (0,_) must exist: the faults the paper's
	// narrative propagates through O1.
	if _, ok := dt.OutputFor("I4sa0"); !ok {
		t.Error("I4sa0 not excited by input (1,0)")
	}
}

func TestDetectionTableCaching(t *testing.T) {
	nl := gate.HalfAdderIP()
	lt, _ := NewLocalTestability(nl, NetNames, true)
	in := []signal.Bit{signal.B1, signal.B0}
	a, err := lt.DetectionTable(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lt.DetectionTable(in)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical input configurations not served from cache")
	}
}

func TestDetectionTableWrongArity(t *testing.T) {
	nl := gate.HalfAdderIP()
	lt, _ := NewLocalTestability(nl, NetNames, true)
	if _, err := lt.DetectionTable([]signal.Bit{signal.B1}); err == nil {
		t.Error("wrong input arity accepted")
	}
}

func TestDetectionTableAccessors(t *testing.T) {
	nl := gate.HalfAdderIP()
	lt, _ := NewLocalTestability(nl, NetNames, true)
	dt, _ := lt.DetectionTable([]signal.Bit{signal.B1, signal.B0})
	if dt.IsNull() {
		t.Error("detection table reported null")
	}
	if dt.ParamString() == "" {
		t.Error("empty ParamString")
	}
	if len(dt.Faults()) == 0 {
		t.Error("Faults() empty")
	}
	if _, ok := dt.Row(signal.Word{Bits: []signal.Bit{signal.BX, signal.BX}}); ok {
		t.Error("Row matched nonexistent output")
	}
	for _, row := range dt.Rows {
		got, ok := dt.Row(row.Output)
		if !ok || len(got.Faults) != len(row.Faults) {
			t.Error("Row lookup inconsistent")
		}
	}
	if _, ok := dt.OutputFor("no-such-fault"); ok {
		t.Error("OutputFor matched nonexistent fault")
	}
}

func TestSerialSimulateRippleAdderFullCoverage(t *testing.T) {
	// Exhaustive patterns must detect every collapsed fault of a small
	// adder (it is fully testable).
	nl := gate.RippleAdder(2)
	var patterns [][]signal.Bit
	for v := uint64(0); v < 16; v++ {
		patterns = append(patterns, nl.InputWord(v))
	}
	res, err := SerialSimulate(nl, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("exhaustive coverage = %.3f, want 1.0", res.Coverage())
	}
	curve := res.CoverageCurve()
	if len(curve) != len(patterns) {
		t.Fatal("curve length mismatch")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("coverage curve not monotone")
		}
	}
}

func TestSerialSimulateFaultDroppingFirstDetection(t *testing.T) {
	nl := gate.RippleAdder(2)
	var patterns [][]signal.Bit
	for v := uint64(0); v < 16; v++ {
		patterns = append(patterns, nl.InputWord(v))
		patterns = append(patterns, nl.InputWord(v)) // duplicates
	}
	res, err := SerialSimulate(nl, patterns)
	if err != nil {
		t.Fatal(err)
	}
	// With duplicated patterns, a dropped fault must never be re-reported.
	seen := map[string]bool{}
	for _, fs := range res.PerPattern {
		for _, f := range fs {
			if seen[f] {
				t.Fatalf("fault %s detected twice", f)
			}
			seen[f] = true
		}
	}
}

func TestCoverageEmptyResult(t *testing.T) {
	r := &Result{}
	if r.Coverage() != 0 {
		t.Error("empty result coverage not 0")
	}
}

func TestC17ExhaustiveCoverage(t *testing.T) {
	// c17 is fully testable: exhaustive patterns must detect every
	// collapsed fault. Counts are net-based (11 nets -> 22-fault
	// universe); the literature's larger c17 numbers count fanout-branch
	// PIN faults separately, which net-based modeling does not have.
	nl := gate.C17()
	if got := len(Enumerate(nl)); got != 22 {
		t.Errorf("c17 fault universe = %d, want 22", got)
	}
	reps := Collapse(nl)
	if len(reps) >= 22 || len(reps) == 0 {
		t.Errorf("c17 collapsed faults = %d, want a strict reduction", len(reps))
	}
	var patterns [][]signal.Bit
	for v := uint64(0); v < 32; v++ {
		patterns = append(patterns, nl.InputWord(v))
	}
	res, err := SerialSimulate(nl, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("c17 exhaustive coverage = %.3f", res.Coverage())
	}
}
