package fault

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/signal"
)

// runWithWorkers builds a fresh instance of the design via build and runs
// virtual fault simulation with the given worker count.
func runWithWorkers(t *testing.T, build func() (*IPDesign, error), patterns [][]signal.Bit, workers int) *Result {
	t.Helper()
	d, err := build()
	if err != nil {
		t.Fatal(err)
	}
	vs := d.NewVirtual()
	vs.Workers = workers
	res, err := vs.Run(patterns)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireIdenticalResults asserts two Results are byte-identical: total,
// the detection map (fault → first pattern), and the ORDER of every
// per-pattern detection list.
func requireIdenticalResults(t *testing.T, serial, parallel *Result) {
	t.Helper()
	if serial.Total != parallel.Total {
		t.Errorf("Total: serial %d, parallel %d", serial.Total, parallel.Total)
	}
	if !reflect.DeepEqual(serial.Detected, parallel.Detected) {
		t.Errorf("Detected maps differ:\n  serial:   %v\n  parallel: %v", serial.Detected, parallel.Detected)
	}
	if !reflect.DeepEqual(serial.PerPattern, parallel.PerPattern) {
		t.Errorf("PerPattern order differs:\n  serial:   %v\n  parallel: %v", serial.PerPattern, parallel.PerPattern)
	}
}

// TestVirtualDeterministicAcrossWorkerCounts is the parallel engine's
// headline contract: the Result of a virtual fault simulation — including
// the order of every per-pattern fault list — must be byte-identical for
// any worker count. Runs under -race in CI, so it also shakes out data
// races in the concurrent detection-table and injection fan-outs.
func TestVirtualDeterministicAcrossWorkerCounts(t *testing.T) {
	designs := []struct {
		name  string
		build func() (*IPDesign, error)
		nIn   int
	}{
		{"figure4", Figure4Design, 4},
		{"oneIP", func() (*IPDesign, error) { return RandomIPDesign(15, 3) }, 5},
		{"twoIP", func() (*IPDesign, error) { return RandomTwoIPDesign(12, 2) }, 4},
	}
	for _, dc := range designs {
		t.Run(dc.name, func(t *testing.T) {
			patterns := exhaustivePatterns(dc.nIn)
			serial := runWithWorkers(t, dc.build, patterns, 1)
			for _, workers := range []int{2, 8} {
				parallel := runWithWorkers(t, dc.build, patterns, workers)
				requireIdenticalResults(t, serial, parallel)
			}
		})
	}
}

// TestVirtualDeterministicWithBogusProvider covers the adversarial case:
// a provider whose detection-table rows overlap and name unpublished
// faults. The merge step re-filters each row's original fault list in
// serial order, so even here the Result must not depend on worker count.
func TestVirtualDeterministicWithBogusProvider(t *testing.T) {
	build := func() (*IPDesign, error) {
		d, err := Figure4Design()
		if err != nil {
			return nil, err
		}
		d.Hosts[0].Service = bogusService{}
		return d, nil
	}
	patterns := exhaustivePatterns(4)
	serial := runWithWorkers(t, build, patterns, 1)
	parallel := runWithWorkers(t, build, patterns, 8)
	requireIdenticalResults(t, serial, parallel)
}

// stateLens returns the per-scheduler state table size of every leaf
// module that exposes one.
func stateLens(d *IPDesign) map[string]int {
	out := make(map[string]int)
	for _, m := range d.Circuit.Leaves() {
		if sl, ok := m.(interface {
			HandlerName() string
			StateLen() int
		}); ok {
			out[sl.HandlerName()] = sl.StateLen()
		}
	}
	return out
}

// TestVirtualRunReleasesAllState is the state-release regression test: a
// Run spins up hundreds of single-use schedulers (one per fault-free run
// and one per injection), and every one of them must release its module
// state and primary-output history — otherwise the per-scheduler LUTs
// grow without bound across a long fault-simulation campaign.
func TestVirtualRunReleasesAllState(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	baseline := stateLens(d)
	for name, n := range baseline {
		if n != 0 {
			t.Fatalf("module %s starts with %d state entries", name, n)
		}
	}
	vs := d.NewVirtual()
	vs.Workers = 4
	if _, err := vs.Run(exhaustivePatterns(4)); err != nil {
		t.Fatal(err)
	}
	if got := stateLens(d); !reflect.DeepEqual(baseline, got) {
		t.Errorf("module state not back to baseline after Run:\n  before: %v\n  after:  %v", baseline, got)
	}
	for _, po := range d.Outputs {
		if n := po.HistoryCount(); n != 0 {
			t.Errorf("output %s still holds %d scheduler histories after Run", po.ModuleName(), n)
		}
	}
}

// failingService errors on every detection-table query, driving Run down
// its error path mid-pattern.
type failingService struct{}

func (failingService) FaultList() ([]string, error) { return []string{"f_sa0"}, nil }
func (failingService) DetectionTable([]signal.Bit) (*DetectionTable, error) {
	return nil, errors.New("provider down")
}

// TestVirtualRunReleasesHistoriesOnError: the fault-free run's history is
// recorded before the detection-table query fails, so an erroring Run
// used to leak it permanently. The deferred cleanup must reclaim it.
func TestVirtualRunReleasesHistoriesOnError(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	d.Hosts[0].Service = failingService{}
	vs := d.NewVirtual()
	if _, err := vs.Run(exhaustivePatterns(4)); err == nil {
		t.Fatal("failing provider not reported")
	}
	for _, po := range d.Outputs {
		if n := po.HistoryCount(); n != 0 {
			t.Errorf("output %s leaked %d scheduler histories on the error path", po.ModuleName(), n)
		}
	}
}

// TestSerialSimulateWorkersEquivalence: the flat reference simulator must
// also return byte-identical Results at any worker count.
func TestSerialSimulateWorkersEquivalence(t *testing.T) {
	d, err := RandomTwoIPDesign(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	faults := Collapse(d.Flat)
	patterns := exhaustivePatterns(4)
	serial, err := SerialSimulateFaultsWorkers(d.Flat, faults, patterns, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		parallel, err := SerialSimulateFaultsWorkers(d.Flat, faults, patterns, workers)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalResults(t, serial, parallel)
	}
}
