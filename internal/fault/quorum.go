package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/signal"
)

// ReplicaDivergence records one disagreement between replicated
// testability services: a replica whose answer for one query differed
// from the quorum's. Divergences do not fail the run — the majority
// answer is used — but they are surfaced in the Result so a tampered or
// corrupted replica is visible rather than silently out-voted.
type ReplicaDivergence struct {
	// Module is the design instance the service answers for (filled in by
	// the virtual simulator when it drains the service).
	Module string
	// Pattern is the input configuration of the divergent query ("" for a
	// fault-list divergence).
	Pattern string
	// Replica is the index of the disagreeing replica.
	Replica int
	// Detail describes the disagreement.
	Detail string
}

// DivergenceSource is implemented by testability services that can
// report replica disagreements; the virtual simulator drains it into
// Result.Divergences after a run.
type DivergenceSource interface {
	Divergences() []ReplicaDivergence
}

// QuorumTestability serves testability queries from K replicated
// services: every query is issued to all replicas in index order, the
// answers are compared by canonical fingerprint, and the majority answer
// wins (ties break to the lowest replica index — deterministic for any
// replica count). Replicas that error are excluded from the vote and
// recorded as divergent; the query itself fails only when every replica
// errors. Minority answers are recorded as ReplicaDivergence.
//
// The paper's trust model makes this worth having: detection tables are
// the provider's claim about its own component's fault behavior, and
// with the component's structure undisclosed the user cannot audit a
// single answer — but K independent replicas can audit each other.
type QuorumTestability struct {
	svcs []TestabilityService

	mu   sync.Mutex
	divs []ReplicaDivergence
}

// NewQuorumTestability wraps the replica services (at least one).
func NewQuorumTestability(svcs ...TestabilityService) (*QuorumTestability, error) {
	if len(svcs) == 0 {
		return nil, fmt.Errorf("fault: quorum over zero replicas")
	}
	return &QuorumTestability{svcs: svcs}, nil
}

// Size returns the replica count.
func (q *QuorumTestability) Size() int { return len(q.svcs) }

// Divergences implements DivergenceSource: recorded disagreements in
// detection order.
func (q *QuorumTestability) Divergences() []ReplicaDivergence {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]ReplicaDivergence(nil), q.divs...)
}

// diverge records one disagreement.
func (q *QuorumTestability) diverge(pattern string, replica int, detail string) {
	q.mu.Lock()
	q.divs = append(q.divs, ReplicaDivergence{Pattern: pattern, Replica: replica, Detail: detail})
	q.mu.Unlock()
}

// vote runs one query against every replica in index order and returns
// the index of the majority answer's first holder. fps[i] is replica
// i's canonical fingerprint ("" for an errored replica, which never
// wins — a real fingerprint is never empty).
func (q *QuorumTestability) vote(pattern string, query func(i int) (string, error)) (int, error) {
	fps := make([]string, len(q.svcs))
	var firstErr error
	errs := 0
	for i := range q.svcs {
		fp, err := query(i)
		if err != nil {
			errs++
			if firstErr == nil {
				firstErr = err
			}
			q.diverge(pattern, i, fmt.Sprintf("replica error: %v", err))
			continue
		}
		fps[i] = fp
	}
	if errs == len(q.svcs) {
		return -1, fmt.Errorf("fault: all %d quorum replicas failed: %w", len(q.svcs), firstErr)
	}
	// Majority by fingerprint, ties to the lowest index — an index-ordered
	// scan, so the winner is deterministic for any replica count.
	winner, best := -1, 0
	for i, fp := range fps {
		if fp == "" {
			continue
		}
		n := 0
		for _, other := range fps {
			if other == fp {
				n++
			}
		}
		if n > best {
			winner, best = i, n
		}
	}
	for i, fp := range fps {
		if fp != "" && fp != fps[winner] {
			q.diverge(pattern, i, fmt.Sprintf("answer disagrees with quorum (%d/%d replicas)", best, len(q.svcs)-errs))
		}
	}
	return winner, nil
}

// FaultList implements TestabilityService: the majority fault list.
func (q *QuorumTestability) FaultList() ([]string, error) {
	lists := make([][]string, len(q.svcs))
	winner, err := q.vote("", func(i int) (string, error) {
		names, err := q.svcs[i].FaultList()
		if err != nil {
			return "", err
		}
		lists[i] = names
		sorted := append([]string(nil), names...)
		sort.Strings(sorted)
		return "faults|" + strings.Join(sorted, ","), nil
	})
	if err != nil {
		return nil, err
	}
	return lists[winner], nil
}

// DetectionTable implements TestabilityService: the majority table for
// one input configuration.
func (q *QuorumTestability) DetectionTable(inputs []signal.Bit) (*DetectionTable, error) {
	tables := make([]*DetectionTable, len(q.svcs))
	winner, err := q.vote(packBits(inputs), func(i int) (string, error) {
		dt, err := q.svcs[i].DetectionTable(inputs)
		if err != nil {
			return "", err
		}
		tables[i] = dt
		return fingerprintTable(dt), nil
	})
	if err != nil {
		return nil, err
	}
	return tables[winner], nil
}

// fingerprintTable renders a detection table canonically: the fault-free
// output plus every row as "output:{sorted faults}", rows sorted by
// output pattern. Two tables describing the same fault behavior
// fingerprint identically regardless of row or fault order.
func fingerprintTable(dt *DetectionTable) string {
	rows := make([]string, len(dt.Rows))
	for i, r := range dt.Rows {
		fs := append([]string(nil), r.Faults...)
		sort.Strings(fs)
		rows[i] = r.Output.String() + ":{" + strings.Join(fs, ",") + "}"
	}
	sort.Strings(rows)
	return "table|good=" + dt.FaultFree.String() + "|" + strings.Join(rows, ";")
}
