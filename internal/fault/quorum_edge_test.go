package fault

import (
	"testing"
)

// TestQuorumTwoReplicaTie: with two replicas answering differently there
// is no majority — the documented tie-break is the lowest replica index,
// so the winner is replica 0 whichever replica is the corrupted one, and
// the other replica is recorded divergent.
func TestQuorumTwoReplicaTie(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := d.NewVirtual().Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	tamperedRef, err := func() (*Result, error) {
		vs := quorumFig4(t, tamperedService{freshFig4Service(t)})
		return vs.Run(fig4Patterns(t))
	}()
	if err != nil {
		t.Fatal(err)
	}

	// Tampered replica at index 0: the tie resolves to its answer.
	vs := quorumFig4(t, tamperedService{freshFig4Service(t)}, freshFig4Service(t))
	res, err := vs.Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	assertSameDetections(t, tamperedRef, res)
	if len(res.Divergences) == 0 {
		t.Fatal("tie recorded no divergence")
	}
	for _, dv := range res.Divergences {
		if dv.Replica != 1 {
			t.Errorf("tie blames replica %d, want the non-winning index 1: %+v", dv.Replica, dv)
		}
	}

	// Tampered replica at index 1: the tie resolves to the pristine
	// answer, and the tampered replica is the one reported.
	vs = quorumFig4(t, freshFig4Service(t), tamperedService{freshFig4Service(t)})
	res, err = vs.Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	assertSameDetections(t, pristine, res)
	for _, dv := range res.Divergences {
		if dv.Replica != 1 {
			t.Errorf("tie blames replica %d, want 1: %+v", dv.Replica, dv)
		}
	}
}

// TestQuorumSingleReplica: a quorum of one is a pass-through — same
// detections as the bare service, no divergences, no errors.
func TestQuorumSingleReplica(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.NewVirtual().Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	vs := quorumFig4(t, freshFig4Service(t))
	res, err := vs.Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	assertSameDetections(t, ref, res)
	if len(res.Divergences) != 0 {
		t.Fatalf("single-replica quorum reported divergences: %+v", res.Divergences)
	}
}

// TestQuorumModuleStampOnGeneratedDesign: divergence records carry the
// design instance name even on generated (non-paper) circuits — the
// virtual simulator stamps each divergence with the host module it
// drained, here the U1 IP of a seeded random two-IP design.
func TestQuorumModuleStampOnGeneratedDesign(t *testing.T) {
	const nGates, seed = 8, 5
	freshU1 := func() TestabilityService {
		t.Helper()
		d, err := RandomTwoIPDesign(nGates, seed)
		if err != nil {
			t.Fatal(err)
		}
		return d.Hosts[0].Service
	}

	d, err := RandomTwoIPDesign(nGates, seed)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.NewVirtual().Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}

	d2, err := RandomTwoIPDesign(nGates, seed)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuorumTestability(freshU1(), tamperedService{freshU1()}, freshU1())
	if err != nil {
		t.Fatal(err)
	}
	d2.Hosts[0].Service = q
	res, err := d2.NewVirtual().Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	assertSameDetections(t, ref, res)
	if len(res.Divergences) == 0 {
		t.Fatal("tampered replica on a generated design went unreported")
	}
	for _, dv := range res.Divergences {
		if dv.Module != "U1" {
			t.Errorf("divergence module %q, want U1: %+v", dv.Module, dv)
		}
		if dv.Replica != 1 {
			t.Errorf("divergence blames replica %d, want 1: %+v", dv.Replica, dv)
		}
	}
}
