package fault

import (
	"fmt"
	"testing"

	"repro/internal/signal"
)

// tamperedService wraps a testability service and corrupts its detection
// tables: the first row of every table loses its first fault — the shape
// of a provider misreporting its component's testability.
type tamperedService struct {
	TestabilityService
}

func (t tamperedService) DetectionTable(inputs []signal.Bit) (*DetectionTable, error) {
	dt, err := t.TestabilityService.DetectionTable(inputs)
	if err != nil {
		return nil, err
	}
	out := &DetectionTable{Input: dt.Input, FaultFree: dt.FaultFree, Rows: append([]DetectionRow(nil), dt.Rows...)}
	if len(out.Rows) > 0 && len(out.Rows[0].Faults) > 0 {
		out.Rows[0] = DetectionRow{Output: out.Rows[0].Output, Faults: out.Rows[0].Faults[1:]}
	}
	return out, nil
}

// erroringService fails every query.
type erroringService struct{}

func (erroringService) FaultList() ([]string, error) {
	return nil, fmt.Errorf("replica down")
}

func (erroringService) DetectionTable([]signal.Bit) (*DetectionTable, error) {
	return nil, fmt.Errorf("replica down")
}

// quorumFig4 builds a Figure 4 design whose IP host answers through a
// quorum over the given replica services, plus a pristine reference run
// of the same patterns.
func quorumFig4(t *testing.T, svcs ...TestabilityService) *VirtualSimulator {
	t.Helper()
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuorumTestability(svcs...)
	if err != nil {
		t.Fatal(err)
	}
	d.Hosts[0].Service = q
	return d.NewVirtual()
}

// freshFig4Service returns an independent LocalTestability over an
// equivalent copy of the Figure 4 IP component.
func freshFig4Service(t *testing.T) TestabilityService {
	t.Helper()
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	return d.Hosts[0].Service
}

func fig4Patterns(t *testing.T) [][]signal.Bit {
	t.Helper()
	return [][]signal.Bit{fig4Pattern(t, "1100"), fig4Pattern(t, "1101"), fig4Pattern(t, "0111")}
}

// TestQuorumAgreementMatchesSingle: K healthy replicas agree; the run's
// detections are identical to the single-service run and no divergence
// is recorded.
func TestQuorumAgreementMatchesSingle(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.NewVirtual().Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}

	vs := quorumFig4(t, freshFig4Service(t), freshFig4Service(t), freshFig4Service(t))
	res, err := vs.Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("healthy quorum reported divergences: %+v", res.Divergences)
	}
	assertSameDetections(t, ref, res)
}

// TestQuorumOutvotesTamperedReplica: one of three replicas misreports
// its tables; the majority answer is used (detections match the pristine
// run) and the tampered replica is surfaced as divergent.
func TestQuorumOutvotesTamperedReplica(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.NewVirtual().Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}

	vs := quorumFig4(t,
		freshFig4Service(t),
		tamperedService{freshFig4Service(t)},
		freshFig4Service(t),
	)
	res, err := vs.Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	assertSameDetections(t, ref, res)
	if len(res.Divergences) == 0 {
		t.Fatal("tampered replica went unreported")
	}
	for _, dv := range res.Divergences {
		if dv.Replica != 1 {
			t.Errorf("divergence blames replica %d, want 1: %+v", dv.Replica, dv)
		}
		if dv.Module != "IP1" {
			t.Errorf("divergence module %q, want IP1", dv.Module)
		}
		if dv.Pattern == "" {
			t.Errorf("detection-table divergence missing its input pattern: %+v", dv)
		}
	}
}

// TestQuorumToleratesErroringReplica: a dead replica is excluded from
// the vote (recorded as divergent) and the run still completes with the
// healthy majority's answers.
func TestQuorumToleratesErroringReplica(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.NewVirtual().Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}

	vs := quorumFig4(t, freshFig4Service(t), erroringService{}, freshFig4Service(t))
	res, err := vs.Run(fig4Patterns(t))
	if err != nil {
		t.Fatal(err)
	}
	assertSameDetections(t, ref, res)
	if len(res.Divergences) == 0 {
		t.Fatal("erroring replica went unreported")
	}
}

// TestQuorumAllReplicasFail: when every replica errors the query fails
// loudly instead of inventing an answer.
func TestQuorumAllReplicasFail(t *testing.T) {
	q, err := NewQuorumTestability(erroringService{}, erroringService{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.FaultList(); err == nil {
		t.Fatal("fault list succeeded with every replica down")
	}
	if _, err := q.DetectionTable([]signal.Bit{signal.B1, signal.B0}); err == nil {
		t.Fatal("detection table succeeded with every replica down")
	}
}

// TestQuorumRejectsEmpty: a quorum needs at least one replica.
func TestQuorumRejectsEmpty(t *testing.T) {
	if _, err := NewQuorumTestability(); err == nil {
		t.Fatal("empty quorum accepted")
	}
}

// assertSameDetections compares two runs' detection maps exactly.
func assertSameDetections(t *testing.T, ref, got *Result) {
	t.Helper()
	if got.Total != ref.Total {
		t.Fatalf("fault list size %d, want %d", got.Total, ref.Total)
	}
	if len(got.Detected) != len(ref.Detected) {
		t.Fatalf("detected %d faults, want %d", len(got.Detected), len(ref.Detected))
	}
	for f, pi := range ref.Detected {
		if got.Detected[f] != pi {
			t.Errorf("fault %s first detected by pattern %d, want %d", f, got.Detected[f], pi)
		}
	}
}
