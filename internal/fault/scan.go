package fault

import (
	"math/rand"

	"repro/internal/gate"
	"repro/internal/signal"
)

// ScanPattern is one full-scan test: the register contents scanned in
// plus the primary-input values for the capture cycle.
type ScanPattern struct {
	State  []signal.Bit
	Inputs []signal.Bit
}

// ScanSimulate fault-simulates a sequential circuit under the full-scan
// assumption — the paper's "extensions to sequential circuits": with
// every state element directly controllable (scan-in) and observable
// (scan-out), each test reduces to one combinational evaluation of the
// core, and both the primary outputs AND the captured next state serve
// as observation points. The target fault list is the collapsed
// universe of the combinational core.
func ScanSimulate(seq *gate.Sequential, patterns []ScanPattern) (*Result, error) {
	reps := Collapse(seq.Comb)
	res := &Result{
		Total:      len(reps),
		Detected:   make(map[string]int),
		PerPattern: make([][]string, len(patterns)),
	}
	golden, err := seq.NewEvaluator()
	if err != nil {
		return nil, err
	}
	faulty, err := seq.NewEvaluator()
	if err != nil {
		return nil, err
	}
	alive := append([]gate.Fault(nil), reps...)
	for pi, p := range patterns {
		if err := golden.SetState(p.State); err != nil {
			return nil, err
		}
		goodOut, err := golden.Step(p.Inputs)
		if err != nil {
			return nil, err
		}
		goodState := golden.State()

		var next []gate.Fault
		for _, f := range alive {
			faulty.ClearFaults()
			faulty.SetFault(f)
			if err := faulty.SetState(p.State); err != nil {
				return nil, err
			}
			badOut, err := faulty.Step(p.Inputs)
			if err != nil {
				return nil, err
			}
			badState := faulty.State()
			if knownDiff(goodOut, badOut) || knownDiff(goodState, badState) {
				sym := f.Symbol(seq.Comb)
				res.Detected[sym] = pi
				res.PerPattern[pi] = append(res.PerPattern[pi], sym)
			} else {
				next = append(next, f)
			}
		}
		alive = next
		if len(alive) == 0 {
			break
		}
	}
	return res, nil
}

// SerialSimulateBridges fault-simulates a list of wired-AND bridging
// faults over a flat combinational netlist — the second "general fault
// model" beyond single stuck-at. Detection semantics match the stuck-at
// simulator: a bridge is detected by the first pattern producing a known
// primary-output difference, and detected bridges are dropped.
func SerialSimulateBridges(nl *gate.Netlist, bridges []gate.Bridge, patterns [][]signal.Bit) (*Result, error) {
	res := &Result{
		Total:      len(bridges),
		Detected:   make(map[string]int),
		PerPattern: make([][]string, len(patterns)),
	}
	golden, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	faulty, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	symbol := func(b gate.Bridge) string {
		return "bridge(" + nl.NetName(b.A) + "," + nl.NetName(b.B) + ")"
	}
	alive := append([]gate.Bridge(nil), bridges...)
	for pi, p := range patterns {
		goodOut, err := golden.Eval(p)
		if err != nil {
			return nil, err
		}
		good := append([]signal.Bit(nil), goodOut...)
		var next []gate.Bridge
		for _, b := range alive {
			faulty.ClearBridges()
			faulty.SetBridge(b)
			badOut, err := faulty.Eval(p)
			if err != nil {
				return nil, err
			}
			if knownDiff(good, badOut) {
				res.Detected[symbol(b)] = pi
				res.PerPattern[pi] = append(res.PerPattern[pi], symbol(b))
			} else {
				next = append(next, b)
			}
		}
		alive = next
		if len(alive) == 0 {
			break
		}
	}
	return res, nil
}

// EnumerateBridges returns candidate wired-AND bridges between distinct
// nets of similar circuit depth (a common realistic-bridge heuristic:
// adjacent wires), bounded to at most max pairs.
func EnumerateBridges(nl *gate.Netlist, max int) []gate.Bridge {
	var out []gate.Bridge
	n := nl.NumNets()
	for a := 0; a < n && len(out) < max; a++ {
		for d := 1; d <= 3 && a+d < n && len(out) < max; d++ {
			out = append(out, gate.Bridge{A: gate.NetID(a), B: gate.NetID(a + d)})
		}
	}
	return out
}

// knownDiff reports whether two bit vectors differ at any position where
// both hold known values.
func knownDiff(a, b []signal.Bit) bool {
	for i := range a {
		if i < len(b) && a[i].Known() && b[i].Known() && a[i] != b[i] {
			return true
		}
	}
	return false
}

// RandomScanPatterns generates n pseudo-random full-scan tests for a
// sequential circuit (deterministic in the seed). Callers that thread
// one generator through several stages use RandomScanPatternsRand.
func RandomScanPatterns(seq *gate.Sequential, n int, seed int64) []ScanPattern {
	return RandomScanPatternsRand(seq, n, rand.New(rand.NewSource(seed)))
}

// RandomScanPatternsRand draws the scan-in states and capture inputs
// from the given explicitly seeded generator — the sanctioned source of
// randomness in kernel code (gocad-lint simdeterminism forbids the
// global one).
func RandomScanPatternsRand(seq *gate.Sequential, n int, r *rand.Rand) []ScanPattern {
	out := make([]ScanPattern, n)
	for i := range out {
		st := make([]signal.Bit, seq.StateWidth())
		for j := range st {
			if r.Intn(2) == 1 {
				st[j] = signal.B1
			}
		}
		in := make([]signal.Bit, len(seq.PrimaryInputs()))
		for j := range in {
			if r.Intn(2) == 1 {
				in[j] = signal.B1
			}
		}
		out[i] = ScanPattern{State: st, Inputs: in}
	}
	return out
}
