package fault

import (
	"testing"

	"repro/internal/gate"
	"repro/internal/signal"
)

func TestScanSimulateCounterFullCoverage(t *testing.T) {
	seq, err := gate.SequentialCounter(3)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive scan tests: every (state, enable) combination.
	var patterns []ScanPattern
	for st := uint64(0); st < 8; st++ {
		for en := uint64(0); en < 2; en++ {
			state := make([]signal.Bit, 3)
			for i := 0; i < 3; i++ {
				if st&(1<<uint(i)) != 0 {
					state[i] = signal.B1
				}
			}
			in := []signal.Bit{signal.B0}
			if en == 1 {
				in[0] = signal.B1
			}
			patterns = append(patterns, ScanPattern{State: state, Inputs: in})
		}
	}
	res, err := ScanSimulate(seq, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("exhaustive scan coverage = %.3f, want 1.0", res.Coverage())
	}
}

func TestScanSimulateMatchesCombinationalCore(t *testing.T) {
	// Under full scan, sequential fault sim of the wrapper must equal
	// combinational fault sim of the core with (inputs ++ state) as the
	// pattern — the reduction the scan assumption buys.
	seq, err := gate.SequentialCounter(3)
	if err != nil {
		t.Fatal(err)
	}
	scans := RandomScanPatterns(seq, 12, 42)
	res, err := ScanSimulate(seq, scans)
	if err != nil {
		t.Fatal(err)
	}
	// Build the equivalent combinational patterns: core input order is
	// en, q0..q2 (declaration order of SequentialCounter).
	var comb [][]signal.Bit
	for _, p := range scans {
		pat := append(append([]signal.Bit(nil), p.Inputs...), p.State...)
		comb = append(comb, pat)
	}
	ref, err := SerialSimulate(seq.Comb, comb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detected) != len(ref.Detected) {
		t.Fatalf("scan detected %d, combinational %d", len(res.Detected), len(ref.Detected))
	}
	for f, pi := range ref.Detected {
		if res.Detected[f] != pi {
			t.Errorf("fault %s: scan at %d, combinational at %d", f, res.Detected[f], pi)
		}
	}
}

func TestRandomScanPatternsDeterministic(t *testing.T) {
	seq, _ := gate.SequentialCounter(4)
	a := RandomScanPatterns(seq, 5, 7)
	b := RandomScanPatterns(seq, 5, 7)
	for i := range a {
		for j := range a[i].State {
			if a[i].State[j] != b[i].State[j] {
				t.Fatal("same seed diverged")
			}
		}
	}
	c := RandomScanPatterns(seq, 5, 8)
	same := true
	for i := range a {
		for j := range a[i].State {
			if a[i].State[j] != c[i].State[j] {
				same = false
			}
		}
		for j := range a[i].Inputs {
			if a[i].Inputs[j] != c[i].Inputs[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical patterns")
	}
}

func TestSerialSimulateBridges(t *testing.T) {
	// Two buffers into an XOR: bridging the buffer outputs forces them
	// equal, so XOR = 0; detected whenever fault-free XOR = 1.
	nl := gate.NewNetlist("brx")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	x := nl.AddGate(gate.Buf, "x", a)
	y := nl.AddGate(gate.Buf, "y", b)
	o := nl.AddGate(gate.Xor, "o", x, y)
	nl.MarkOutput(o)

	bridges := []gate.Bridge{{A: x, B: y}}
	patterns := [][]signal.Bit{
		{signal.B0, signal.B0}, // XOR 0 either way: not detected
		{signal.B1, signal.B1}, // both high: bridge harmless: not detected
		{signal.B1, signal.B0}, // fault-free 1, bridged 0: detected
	}
	res, err := SerialSimulateBridges(nl, bridges, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detected) != 1 {
		t.Fatalf("detected = %v", res.Detected)
	}
	if pi, ok := res.Detected["bridge(x,y)"]; !ok || pi != 2 {
		t.Errorf("bridge detected at pattern %d, want 2", pi)
	}
	if res.Total != 1 || res.Coverage() != 1 {
		t.Errorf("result bookkeeping wrong: %+v", res)
	}
}

func TestSerialSimulateBridgesDropping(t *testing.T) {
	nl := gate.ArrayMultiplier(3)
	bridges := EnumerateBridges(nl, 20)
	if len(bridges) != 20 {
		t.Fatalf("enumerated %d bridges", len(bridges))
	}
	var patterns [][]signal.Bit
	for v := uint64(0); v < 64; v++ {
		patterns = append(patterns, nl.InputWord(v))
	}
	res, err := SerialSimulateBridges(nl, bridges, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() == 0 {
		t.Error("no bridge detected by exhaustive patterns")
	}
	// Dropping: no bridge reported twice.
	seen := map[string]bool{}
	for _, fs := range res.PerPattern {
		for _, f := range fs {
			if seen[f] {
				t.Fatalf("bridge %s detected twice", f)
			}
			seen[f] = true
		}
	}
}
