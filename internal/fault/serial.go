package fault

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/signal"
)

// Result summarizes a flat (full-disclosure) fault simulation run.
type Result struct {
	// Total is the size of the collapsed target fault list.
	Total int
	// Detected maps each detected fault's symbol to the index of the
	// first pattern that detected it.
	Detected map[string]int
	// PerPattern[i] lists the faults newly detected by pattern i.
	PerPattern [][]string
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(len(r.Detected)) / float64(r.Total)
}

// CoverageCurve returns the cumulative coverage after each pattern.
func (r *Result) CoverageCurve() []float64 {
	out := make([]float64, len(r.PerPattern))
	seen := 0
	for i, fs := range r.PerPattern {
		seen += len(fs)
		if r.Total > 0 {
			out[i] = float64(seen) / float64(r.Total)
		}
	}
	return out
}

// SerialSimulate runs classical serial stuck-at fault simulation with
// fault dropping over a flat netlist: for each pattern, the fault-free
// outputs are computed, then every still-undetected collapsed fault is
// injected and the outputs compared. This is the reference an IP owner
// with full disclosure could run — virtual fault simulation must detect
// exactly the same fault set on the flattened equivalent design, which is
// the central correctness property of the protocol.
func SerialSimulate(nl *gate.Netlist, patterns [][]signal.Bit) (*Result, error) {
	return SerialSimulateFaults(nl, Collapse(nl), patterns)
}

// SerialSimulateFaults is SerialSimulate over an explicit target fault
// list instead of the netlist's own collapsed universe — used to compare
// virtual fault simulation against the flattened reference on exactly the
// component faults the provider published.
func SerialSimulateFaults(nl *gate.Netlist, reps []gate.Fault, patterns [][]signal.Bit) (*Result, error) {
	res := &Result{
		Total:      len(reps),
		Detected:   make(map[string]int),
		PerPattern: make([][]string, len(patterns)),
	}
	golden, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	faulty, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	alive := append([]gate.Fault(nil), reps...)
	for pi, p := range patterns {
		goodOut, err := golden.Eval(p)
		if err != nil {
			return nil, fmt.Errorf("fault: pattern %d: %w", pi, err)
		}
		good := append([]signal.Bit(nil), goodOut...)
		var next []gate.Fault
		for _, f := range alive {
			faulty.ClearFaults()
			faulty.SetFault(f)
			badOut, err := faulty.Eval(p)
			if err != nil {
				return nil, err
			}
			detected := false
			for i := range good {
				if good[i].Known() && badOut[i].Known() && good[i] != badOut[i] {
					detected = true
					break
				}
			}
			if detected {
				sym := f.Symbol(nl)
				res.Detected[sym] = pi
				res.PerPattern[pi] = append(res.PerPattern[pi], sym)
			} else {
				next = append(next, f)
			}
		}
		alive = next
		if len(alive) == 0 {
			break
		}
	}
	return res, nil
}
