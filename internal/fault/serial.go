package fault

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/signal"
	"repro/internal/sim"
)

// Result summarizes a flat (full-disclosure) fault simulation run.
type Result struct {
	// Total is the size of the collapsed target fault list.
	Total int
	// Detected maps each detected fault's symbol to the index of the
	// first pattern that detected it.
	Detected map[string]int
	// PerPattern[i] lists the faults newly detected by pattern i.
	PerPattern [][]string
	// Divergences lists replica disagreements observed by quorum-mode
	// testability services during the run (nil otherwise). Divergent
	// answers were out-voted, not used; a non-empty list flags a replica
	// answering differently from its peers.
	Divergences []ReplicaDivergence
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(len(r.Detected)) / float64(r.Total)
}

// CoverageCurve returns the cumulative coverage after each pattern.
func (r *Result) CoverageCurve() []float64 {
	out := make([]float64, len(r.PerPattern))
	seen := 0
	for i, fs := range r.PerPattern {
		seen += len(fs)
		if r.Total > 0 {
			out[i] = float64(seen) / float64(r.Total)
		}
	}
	return out
}

// SerialSimulate runs classical serial stuck-at fault simulation with
// fault dropping over a flat netlist: for each pattern, the fault-free
// outputs are computed, then every still-undetected collapsed fault is
// injected and the outputs compared. This is the reference an IP owner
// with full disclosure could run — virtual fault simulation must detect
// exactly the same fault set on the flattened equivalent design, which is
// the central correctness property of the protocol.
func SerialSimulate(nl *gate.Netlist, patterns [][]signal.Bit) (*Result, error) {
	return SerialSimulateFaults(nl, Collapse(nl), patterns)
}

// SerialSimulateFaults is SerialSimulate over an explicit target fault
// list instead of the netlist's own collapsed universe — used to compare
// virtual fault simulation against the flattened reference on exactly the
// component faults the provider published. The per-pattern injection loop
// fans out over one worker per CPU; call SerialSimulateFaultsWorkers to
// bound it (workers=1 reproduces the historical fully serial loop).
func SerialSimulateFaults(nl *gate.Netlist, reps []gate.Fault, patterns [][]signal.Bit) (*Result, error) {
	return SerialSimulateFaultsWorkers(nl, reps, patterns, 0)
}

// SerialSimulateFaultsWorkers runs the flat reference simulation with a
// bounded worker pool. Within one pattern every live fault's injection is
// independent (each worker owns a private evaluator), and the verdicts are
// merged in fault-list order, so the Result is bit-identical for any
// worker count.
func SerialSimulateFaultsWorkers(nl *gate.Netlist, reps []gate.Fault, patterns [][]signal.Bit, workers int) (*Result, error) {
	res := &Result{
		Total:      len(reps),
		Detected:   make(map[string]int),
		PerPattern: make([][]string, len(patterns)),
	}
	golden, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	pool := sim.Pool{Workers: workers}
	// Evaluators are not concurrency-safe, so each worker gets its own;
	// they must be built serially here because NewEvaluator memoizes the
	// netlist's build step.
	evs := make([]*gate.Evaluator, pool.Size())
	for i := range evs {
		ev, err := nl.NewEvaluator()
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	alive := append([]gate.Fault(nil), reps...)
	verdicts := make([]bool, len(alive))
	for pi, p := range patterns {
		goodOut, err := golden.Eval(p)
		if err != nil {
			return nil, fmt.Errorf("fault: pattern %d: %w", pi, err)
		}
		good := append([]signal.Bit(nil), goodOut...)
		verdicts = verdicts[:len(alive)]
		err = pool.ForWorker(len(alive), func(worker, i int) error {
			faulty := evs[worker]
			faulty.ClearFaults()
			faulty.SetFault(alive[i])
			badOut, err := faulty.Eval(p)
			if err != nil {
				return err
			}
			verdicts[i] = false
			for j := range good {
				if good[j].Known() && badOut[j].Known() && good[j] != badOut[j] {
					verdicts[i] = true
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Merge in fault-list order — the order the serial loop recorded.
		var next []gate.Fault
		for i, f := range alive {
			if verdicts[i] {
				sym := f.Symbol(nl)
				res.Detected[sym] = pi
				res.PerPattern[pi] = append(res.PerPattern[pi], sym)
			} else {
				next = append(next, f)
			}
		}
		alive = next
		if len(alive) == 0 {
			break
		}
	}
	return res, nil
}
