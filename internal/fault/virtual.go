package fault

import (
	"fmt"
	"sync/atomic"

	"repro/internal/module"
	"repro/internal/signal"
	"repro/internal/sim"
)

// HostModule is the design-side view of an IP component under virtual
// fault simulation: a module whose ports can be snapshotted and whose
// outputs can be forced. Every module built on module.Skeleton satisfies
// it, including the remote IP proxies in internal/core.
type HostModule interface {
	module.Module
	PortValues(id sim.SchedulerID, dir module.Direction) []signal.Value
	InputPorts() []*module.Port
	OutputPorts() []*module.Port
	// Base returns the embedded skeleton — the actual token delivery
	// target that injection overrides must be registered for.
	Base() *module.Skeleton
}

// Host couples one component instance in the user's design with the
// testability service answering for it — local for user-owned blocks,
// remote (via internal/provider) for IP components.
type Host struct {
	Module  HostModule
	Service TestabilityService
}

// VirtualStats counts the protocol work performed during a run — the raw
// material of the paper's cost discussion (table queries are the
// provider-side work; injection runs are the user-side work).
type VirtualStats struct {
	FaultFreeRuns       int
	DetectionTableCalls int
	InjectionRuns       int
}

// VirtualSimulator performs virtual fault simulation over a module-level
// design containing IP components. The two-phase protocol of the paper:
//
//  1. The target fault list for the entire circuit is built as the union
//     of the components' symbolic fault lists (a local, additive property
//     each provider precharacterizes).
//  2. For each test pattern, the design's fault-free behavior is
//     simulated and the signal configuration at each IP component's
//     inputs is made available to its provider, which returns the
//     corresponding detection table. For every erroneous output pattern s
//     containing still-undetected faults, s is injected at the
//     component's outputs on a FRESH single-use scheduler whose
//     event-handling for the component is overridden (no reset or
//     save/restore of the fault-free run is needed — scheduler state
//     isolation guarantees non-interference), the effects are propagated
//     through the fault-free remainder of the design, and if any primary
//     output differs every fault associated with s is detected and
//     dropped from the fault list.
type VirtualSimulator struct {
	circuit *module.Circuit
	inputs  []*module.Connector
	outputs []*module.PrimaryOutput
	hosts   []*Host

	// Stats accumulates protocol-work counters across Run calls.
	Stats VirtualStats
	// EventLimit bounds each internal simulation run (0 = kernel default).
	EventLimit uint64
	// Workers bounds the concurrency of the per-pattern fan-out: the
	// detection-table queries to all hosts and the per-row injection runs.
	// 0 uses one worker per CPU, 1 reproduces the serial legacy path.
	// Every injection already runs on a fresh single-use scheduler, so
	// state isolation — not save/restore — guarantees non-interference,
	// and results are merged in host/row order, making Result bit-identical
	// across worker counts.
	Workers int
}

// NewVirtualSimulator returns a virtual fault simulator over the design.
// inputs are the design's primary-input connectors (pattern bit i drives
// inputs[i]); outputs are the design's primary-output monitors.
func NewVirtualSimulator(circuit *module.Circuit, inputs []*module.Connector, outputs []*module.PrimaryOutput) *VirtualSimulator {
	return &VirtualSimulator{circuit: circuit, inputs: inputs, outputs: outputs}
}

// AddHost registers an IP component and its testability service.
func (vs *VirtualSimulator) AddHost(m HostModule, svc TestabilityService) {
	vs.hosts = append(vs.hosts, &Host{Module: m, Service: svc})
}

// Hosts returns the registered hosts.
func (vs *VirtualSimulator) Hosts() []*Host { return vs.hosts }

// globalFault tracks one symbolic fault of one host in the design-wide
// fault list.
type globalFault struct {
	host *Host
	name string // provider's symbolic name
}

// qualified returns the design-wide fault name "<module>.<symbol>".
func (g globalFault) qualified() string { return g.host.Module.ModuleName() + "." + g.name }

// BuildFaultList performs phase one: the union of the hosts' symbolic
// fault lists, qualified by instance name.
func (vs *VirtualSimulator) BuildFaultList() ([]string, error) {
	gfs, err := vs.buildFaultList()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(gfs))
	for i, gf := range gfs {
		names[i] = gf.qualified()
	}
	return names, nil
}

func (vs *VirtualSimulator) buildFaultList() ([]globalFault, error) {
	var out []globalFault
	for _, h := range vs.hosts {
		names, err := h.Service.FaultList()
		if err != nil {
			return nil, fmt.Errorf("fault: fault list of %s: %w", h.Module.ModuleName(), err)
		}
		for _, n := range names {
			out = append(out, globalFault{host: h, name: n})
		}
	}
	return out, nil
}

// controller builds a fresh kernel controller over the design's leaves,
// seeded with one input pattern at time 1.
func (vs *VirtualSimulator) controller(pattern []signal.Bit) *sim.Controller {
	leaves := vs.circuit.Leaves()
	handlers := make([]sim.Handler, len(leaves))
	for i, m := range leaves {
		handlers[i] = m
	}
	c := sim.NewController(handlers...)
	c.EventLimit = vs.EventLimit
	c.Seed = func(ctx *sim.Context) {
		for i, conn := range vs.inputs {
			dst := conn.InputEnd()
			if dst == nil {
				continue
			}
			ctx.Post(ctx.AcquireSignal(1, dst.Owner(), dst.Index, signal.BitValue{B: pattern[i]}, "PI"))
		}
	}
	return c
}

// pool returns the worker pool bounding this simulator's fan-outs.
func (vs *VirtualSimulator) pool() sim.Pool { return sim.Pool{Workers: vs.Workers} }

// finalOutputs reads the settled value of every primary output for one
// scheduler's run (nil entries mean the output was never driven), then
// releases that scheduler's history: each internal run is single-use and
// its outputs are consumed exactly once, so holding the observations any
// longer only grows the per-Run memory footprint.
func (vs *VirtualSimulator) finalOutputs(id sim.SchedulerID) []signal.Value {
	out := make([]signal.Value, len(vs.outputs))
	for i, po := range vs.outputs {
		h := po.History(id)
		if len(h) > 0 {
			out[i] = h[len(h)-1].Value
		}
		po.ReleaseHistory(id)
	}
	return out
}

// outputsDiffer reports whether two primary-output snapshots differ in a
// known way (an X or missing value never counts as a detection).
func outputsDiffer(a, b []signal.Value) bool {
	for i := range a {
		av, aok := a[i].(signal.BitValue)
		bv, bok := b[i].(signal.BitValue)
		if aok && bok && av.B.Known() && bv.B.Known() && av.B != bv.B {
			return true
		}
	}
	return false
}

// forcer replaces a host module's event handling during an injection run:
// on its first delivery it assigns the faulty output configuration to the
// module's output ports regardless of input values.
type forcer struct {
	host    *Host
	pattern signal.Word
	fired   bool
}

// HandlerName implements sim.Handler.
func (f *forcer) HandlerName() string { return f.host.Module.ModuleName() + "#forced" }

// HandleToken drives the faulty configuration once, then swallows
// everything else addressed to the module.
func (f *forcer) HandleToken(ctx *sim.Context, tok sim.Token) {
	if f.fired {
		return
	}
	f.fired = true
	for i, p := range f.host.Module.OutputPorts() {
		conn := p.Connector()
		if conn == nil {
			continue
		}
		peer := conn.Peer(p)
		if peer == nil {
			continue
		}
		ctx.Post(ctx.AcquireSignal(ctx.Now()+1, peer.Owner(), peer.Index, signal.BitValue{B: f.pattern.Bit(i)}, f.HandlerName()))
	}
}

// hostInputBits converts a host's captured input port values to bits
// (X for ports never driven).
func hostInputBits(vals []signal.Value) []signal.Bit {
	out := make([]signal.Bit, len(vals))
	for i, v := range vals {
		if bv, ok := v.(signal.BitValue); ok {
			out[i] = bv.B
		} else {
			out[i] = signal.BX
		}
	}
	return out
}

// Run executes the full two-phase protocol over the pattern sequence and
// returns the detection result (same shape as the serial reference).
func (vs *VirtualSimulator) Run(patterns [][]signal.Bit) (*Result, error) {
	gfs, err := vs.buildFaultList()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Total:      len(gfs),
		Detected:   make(map[string]int),
		PerPattern: make([][]string, len(patterns)),
	}
	alive := make(map[*Host]map[string]bool, len(vs.hosts))
	for _, gf := range gfs {
		m := alive[gf.host]
		if m == nil {
			m = make(map[string]bool)
			alive[gf.host] = m
		}
		m[gf.name] = true
	}
	// Histories of successful runs are released as their outputs are
	// consumed; the deferred sweep covers runs abandoned on error paths.
	defer vs.clearHistories()
	for pi, pattern := range patterns {
		if len(pattern) != len(vs.inputs) {
			return nil, fmt.Errorf("fault: pattern %d has %d bits, design has %d inputs",
				pi, len(pattern), len(vs.inputs))
		}
		if err := vs.runPattern(pi, pattern, alive, res); err != nil {
			return nil, err
		}
		done := true
		for _, m := range alive {
			if len(m) > 0 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	// Drain replica-disagreement records from quorum-mode services,
	// stamped with the design instance they answer for.
	for _, h := range vs.hosts {
		src, ok := h.Service.(DivergenceSource)
		if !ok {
			continue
		}
		for _, d := range src.Divergences() {
			d.Module = h.Module.ModuleName()
			res.Divergences = append(res.Divergences, d)
		}
	}
	return res, nil
}

// injectionJob is one row of one host's detection table scheduled for an
// injection run. rowFaults keeps the provider's ORIGINAL fault list for
// the row: the merge step re-filters it against the live set in serial
// order, so the recorded detections are bit-identical to the serial path
// even for degenerate providers whose rows overlap.
type injectionJob struct {
	host      *Host
	output    signal.Word
	rowFaults []string
	detected  bool
}

// runPattern performs the fault-free simulation, detection-table
// exchange, and injection runs for one test pattern. The detection-table
// queries (one RMI round trip per host) and the injection runs (one fresh
// scheduler per erroneous row) are independent, so both fan out over the
// simulator's worker pool; detections are then merged in the serial
// host/row order.
func (vs *VirtualSimulator) runPattern(pi int, pattern []signal.Bit, alive map[*Host]map[string]bool, res *Result) error {
	// Fault-free simulation, capturing each host's settled input values.
	ctrl := vs.controller(pattern)
	captured := make(map[*Host][]signal.Value, len(vs.hosts))
	stats := ctrl.Start(nil, func(sched *sim.Scheduler) {
		sched.AddInstantHook(func(ctx *sim.Context, _ sim.Time) {
			for _, h := range vs.hosts {
				captured[h] = h.Module.PortValues(ctx.SchedulerID(), module.In)
			}
		})
	})
	if stats.Err != nil {
		return stats.Err
	}
	vs.Stats.FaultFreeRuns++
	golden := vs.finalOutputs(stats.Scheduler)

	// Phase A: fetch the detection tables of every host that still has
	// live faults, concurrently — each query goes to a different provider.
	live := make([]*Host, 0, len(vs.hosts))
	for _, h := range vs.hosts {
		if len(alive[h]) > 0 {
			live = append(live, h)
		}
	}
	tables := make([]*DetectionTable, len(live))
	var tableCalls atomic.Int64
	err := vs.pool().For(len(live), func(i int) error {
		h := live[i]
		dt, err := h.Service.DetectionTable(hostInputBits(captured[h]))
		if err != nil {
			return fmt.Errorf("fault: detection table of %s: %w", h.Module.ModuleName(), err)
		}
		tableCalls.Add(1)
		tables[i] = dt
		return nil
	})
	vs.Stats.DetectionTableCalls += int(tableCalls.Load())
	if err != nil {
		return err
	}

	// Phase B: schedule one injection per row still carrying live faults.
	// The live check is a snapshot — for well-formed providers the rows of
	// a table partition the host's faults, so the snapshot agrees exactly
	// with the serial one-row-at-a-time filter.
	var jobs []injectionJob
	for i, h := range live {
		for _, row := range tables[i].Rows {
			hasLive := false
			for _, f := range row.Faults {
				if alive[h][f] {
					hasLive = true
					break
				}
			}
			if hasLive {
				jobs = append(jobs, injectionJob{host: h, output: row.Output, rowFaults: row.Faults})
			}
		}
	}
	var injections atomic.Int64
	err = vs.pool().For(len(jobs), func(i int) error {
		detected, err := vs.inject(pattern, jobs[i].host, jobs[i].output, golden, &injections)
		if err != nil {
			return err
		}
		jobs[i].detected = detected
		return nil
	})
	vs.Stats.InjectionRuns += int(injections.Load())
	if err != nil {
		return err
	}

	// Merge in serial host/row order, re-filtering each row against the
	// live set as of this point in the order — exactly what the serial
	// loop saw — so Result is byte-identical for any worker count.
	for _, job := range jobs {
		if !job.detected {
			continue
		}
		for _, f := range job.rowFaults {
			if !alive[job.host][f] {
				continue
			}
			delete(alive[job.host], f)
			q := globalFault{host: job.host, name: f}.qualified()
			res.Detected[q] = pi
			res.PerPattern[pi] = append(res.PerPattern[pi], q)
		}
	}
	return nil
}

// inject runs the single-injection simulation: the host's event handling
// is overridden to force the erroneous output configuration, the current
// test pattern is replayed at the primary inputs, and the design's
// primary outputs are compared against the fault-free run.
func (vs *VirtualSimulator) inject(pattern []signal.Bit, h *Host, bad signal.Word, golden []signal.Value, counter *atomic.Int64) (bool, error) {
	ctrl := vs.controller(pattern)
	f := &forcer{host: h, pattern: bad}
	stats := ctrl.Start(nil, func(sched *sim.Scheduler) {
		sched.Override(h.Module.Base(), f)
	})
	if stats.Err != nil {
		return false, stats.Err
	}
	counter.Add(1)
	faulty := vs.finalOutputs(stats.Scheduler)
	return outputsDiffer(golden, faulty), nil
}

// clearHistories drops accumulated primary-output observations so
// repeated Runs do not grow memory without bound.
func (vs *VirtualSimulator) clearHistories() {
	for _, po := range vs.outputs {
		po.ClearHistory()
	}
}
