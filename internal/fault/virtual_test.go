package fault

import (
	"testing"

	"repro/internal/gate"
	"repro/internal/module"
	"repro/internal/signal"
)

// fig4Pattern builds the ABCD input pattern from a 4-character string.
func fig4Pattern(t *testing.T, s string) []signal.Bit {
	t.Helper()
	if len(s) != 4 {
		t.Fatalf("pattern %q must have 4 bits", s)
	}
	out := make([]signal.Bit, 4)
	for i := 0; i < 4; i++ {
		b, err := signal.ParseBit(s[i])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func TestVirtualFaultListUnion(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	vs := d.NewVirtual()
	names, err := vs.BuildFaultList()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("empty design fault list")
	}
	for _, n := range names {
		if len(n) < 5 || n[:4] != "IP1." {
			t.Errorf("fault %q not qualified by instance name", n)
		}
	}
	svcList, _ := d.Hosts[0].Service.FaultList()
	if len(names) != len(svcList) {
		t.Errorf("union size %d != provider list size %d", len(names), len(svcList))
	}
}

// TestFigure4PropagationNarrative reproduces the paper's worked example:
// a fault excited at IP1's output (erroneous sum) is NOT detected by
// pattern ABCD=1100 because D=0 blocks propagation through O1, but IS
// detected by pattern 1101 — together with every other fault sharing the
// same erroneous output row.
func TestFigure4PropagationNarrative(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	lt := d.Hosts[0].Service.(*LocalTestability)
	dt, err := lt.DetectionTable([]signal.Bit{signal.B1, signal.B0})
	if err != nil {
		t.Fatal(err)
	}
	// The sum-flip row: fault-free (sum,carry)=(1,0); erroneous (0,0).
	badSum, _ := signal.ParseWord("00")
	row, ok := dt.Row(badSum)
	if !ok {
		t.Fatal("no erroneous-sum row in detection table for (1,0)")
	}
	if len(row.Faults) < 2 {
		t.Fatalf("sum-flip row has %d faults, want several equivalent ones", len(row.Faults))
	}

	// Pattern 1100 alone: the sum-flip faults must remain undetected.
	vs := d.NewVirtual()
	res, err := vs.Run([][]signal.Bit{fig4Pattern(t, "1100")})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range row.Faults {
		if _, det := res.Detected["IP1."+f]; det {
			t.Errorf("fault %s detected by 1100; D=0 should block propagation", f)
		}
	}

	// Pattern 1101: the whole sum-flip row must be detected at once.
	d2, _ := Figure4Design()
	vs2 := d2.NewVirtual()
	res2, err := vs2.Run([][]signal.Bit{fig4Pattern(t, "1101")})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range row.Faults {
		if _, det := res2.Detected["IP1."+f]; !det {
			t.Errorf("fault %s not detected by 1101", f)
		}
	}
	if res2.Detected["IP1."+row.Faults[0]] != 0 {
		t.Error("first-detection pattern index wrong")
	}
}

func TestFigure4SameInputConfigSameTable(t *testing.T) {
	// Patterns 1100 and 1101 lead IP1 to the same input configuration
	// (1,0) — the provider must serve the same detection table (from
	// cache) and the stats must show exactly one table computation... the
	// cache is internal, so observe pointer identity via the service.
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	lt := d.Hosts[0].Service.(*LocalTestability)
	a, _ := lt.DetectionTable([]signal.Bit{signal.B1, signal.B0})
	vs := d.NewVirtual()
	if _, err := vs.Run([][]signal.Bit{fig4Pattern(t, "1100"), fig4Pattern(t, "1101")}); err != nil {
		t.Fatal(err)
	}
	b, _ := lt.DetectionTable([]signal.Bit{signal.B1, signal.B0})
	if a != b {
		t.Error("detection table recomputed for identical input configuration")
	}
	if vs.Stats.DetectionTableCalls == 0 || vs.Stats.FaultFreeRuns != 2 {
		t.Errorf("protocol stats = %+v", vs.Stats)
	}
}

// exhaustivePatterns returns all 2^n input patterns for an n-input design.
func exhaustivePatterns(n int) [][]signal.Bit {
	out := make([][]signal.Bit, 0, 1<<uint(n))
	for v := uint64(0); v < 1<<uint(n); v++ {
		p := make([]signal.Bit, n)
		for i := 0; i < n; i++ {
			if v&(1<<uint(i)) != 0 {
				p[i] = signal.B1
			}
		}
		out = append(out, p)
	}
	return out
}

// compareVirtualToFlat validates the central correctness property of the
// protocol: virtual fault simulation must reach the SAME verdict (and the
// same first-detecting pattern) as full-disclosure serial fault
// simulation of the flattened design, for every published fault. The
// qualified virtual names ("IP1.I3sa0") coincide with the flat symbols
// because component nets are embedded with the "<instance>." prefix.
func compareVirtualToFlat(t *testing.T, d *IPDesign, patterns [][]signal.Bit, vres *Result) {
	t.Helper()
	vs := d.NewVirtual()
	names, err := vs.BuildFaultList()
	if err != nil {
		t.Fatal(err)
	}
	flatFaults := make([]gate.Fault, len(names))
	for i, q := range names {
		ff, err := d.FlatFaultFor(q)
		if err != nil {
			t.Fatal(err)
		}
		flatFaults[i] = ff
	}
	fres, err := SerialSimulateFaults(d.Flat, flatFaults, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range names {
		vp, vdet := vres.Detected[q]
		fp, fdet := fres.Detected[q]
		if vdet != fdet {
			t.Errorf("fault %s: virtual detected=%v flat detected=%v", q, vdet, fdet)
			continue
		}
		if vdet && vp != fp {
			t.Errorf("fault %s: first detection at pattern %d (virtual) vs %d (flat)", q, vp, fp)
		}
	}
	if len(vres.Detected) != len(fres.Detected) {
		t.Errorf("virtual detected %d faults, flat detected %d", len(vres.Detected), len(fres.Detected))
	}
}

func TestVirtualMatchesFlatFigure4(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	patterns := exhaustivePatterns(4)
	vs := d.NewVirtual()
	vres, err := vs.Run(patterns)
	if err != nil {
		t.Fatal(err)
	}
	compareVirtualToFlat(t, d, patterns, vres)
}

func TestVirtualMatchesFlatRandomDesigns(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		d, err := RandomIPDesign(15, seed)
		if err != nil {
			t.Fatal(err)
		}
		patterns := exhaustivePatterns(5)
		vs := d.NewVirtual()
		vres, err := vs.Run(patterns)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		compareVirtualToFlat(t, d, patterns, vres)
	}
}

func TestVirtualCoverageGrowsWithPatterns(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	vs := d.NewVirtual()
	res, err := vs.Run(exhaustivePatterns(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() <= 0 {
		t.Error("no coverage from exhaustive patterns")
	}
	curve := res.CoverageCurve()
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("virtual coverage curve not monotone")
		}
	}
}

func TestVirtualPatternArityChecked(t *testing.T) {
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	vs := d.NewVirtual()
	if _, err := vs.Run([][]signal.Bit{{signal.B1}}); err == nil {
		t.Error("short pattern accepted")
	}
}

func TestVirtualMatchesFlatTwoIPDesigns(t *testing.T) {
	// Two IP components from different providers in one design, one
	// feeding the other: the protocol must compose their fault lists and
	// per-host detection tables, and still match the flattened reference
	// exactly.
	for seed := int64(1); seed <= 5; seed++ {
		d, err := RandomTwoIPDesign(12, seed)
		if err != nil {
			t.Fatal(err)
		}
		patterns := exhaustivePatterns(4)
		vs := d.NewVirtual()
		vres, err := vs.Run(patterns)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		compareVirtualToFlat(t, d, patterns, vres)
		// Both hosts must have been queried.
		names, _ := vs.BuildFaultList()
		hasU1, hasU2 := false, false
		for _, n := range names {
			if len(n) > 3 && n[:3] == "U1." {
				hasU1 = true
			}
			if len(n) > 3 && n[:3] == "U2." {
				hasU2 = true
			}
		}
		if !hasU1 || !hasU2 {
			t.Fatalf("seed %d: fault list misses a host: %v", seed, names)
		}
	}
}

// bogusService returns fault names and tables that do not correspond to
// anything real — a misbehaving (or malicious) provider.
type bogusService struct{}

func (bogusService) FaultList() ([]string, error) {
	return []string{"ghost_sa0", "ghost_sa1"}, nil
}

func (bogusService) DetectionTable(inputs []signal.Bit) (*DetectionTable, error) {
	good := signal.Word{Bits: []signal.Bit{signal.B0, signal.B0}}
	bad := signal.Word{Bits: []signal.Bit{signal.B1, signal.B1}}
	return &DetectionTable{
		Input:     signal.Word{Bits: append([]signal.Bit(nil), inputs...)},
		FaultFree: good,
		Rows: []DetectionRow{
			{Output: bad, Faults: []string{"ghost_sa0", "unlisted_fault"}},
		},
	}, nil
}

func TestVirtualToleratesBogusProvider(t *testing.T) {
	// A provider that fabricates detection tables can claim detections
	// for its own ghost faults (the user cannot audit them — the paper's
	// trust model accepts this), but it must never corrupt the run:
	// no panic, no error, bookkeeping stays consistent, and fault names
	// not in the published list are ignored.
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	d.Hosts[0].Service = bogusService{}
	vs := d.NewVirtual()
	res, err := vs.Run(exhaustivePatterns(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 2 {
		t.Errorf("total = %d, want the 2 published ghosts", res.Total)
	}
	for f := range res.Detected {
		if f != "IP1.ghost_sa0" && f != "IP1.ghost_sa1" {
			t.Errorf("unpublished fault %q reported detected", f)
		}
	}
}

func TestVirtualStatsInjectionGrouping(t *testing.T) {
	// Faults sharing a detection-table row must share one injection run
	// (the grouping optimization of the protocol).
	d, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	vs := d.NewVirtual()
	if _, err := vs.Run([][]signal.Bit{fig4Pattern(t, "1101")}); err != nil {
		t.Fatal(err)
	}
	// The (1,0) table has 3 rows; one pattern => at most 3 injections
	// even though more than 3 faults are excited.
	if vs.Stats.InjectionRuns > 3 {
		t.Errorf("injections = %d, want <= 3 (row grouping)", vs.Stats.InjectionRuns)
	}
}

func TestVirtualFaultSimWithNestedHierarchy(t *testing.T) {
	// The IP component lives inside a nested subcircuit: the simulator
	// must elaborate through the hierarchy (Leaves) and behave exactly
	// as in the flat module arrangement.
	flatD, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	nestedD, err := Figure4Design()
	if err != nil {
		t.Fatal(err)
	}
	// Re-wrap the nested design's modules two levels deep.
	inner := module.NewCircuit("inner", nestedD.Circuit.Children()...)
	nestedD.Circuit = module.NewCircuit("outer", inner)

	patterns := exhaustivePatterns(4)
	fres, err := flatD.NewVirtual().Run(patterns)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := nestedD.NewVirtual().Run(patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Detected) != len(nres.Detected) {
		t.Fatalf("flat detected %d, nested %d", len(fres.Detected), len(nres.Detected))
	}
	for f, pi := range fres.Detected {
		if nres.Detected[f] != pi {
			t.Errorf("fault %s: flat %d, nested %d", f, pi, nres.Detected[f])
		}
	}
}
