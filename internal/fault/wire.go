package fault

import (
	"fmt"

	"repro/internal/wire"
)

// AppendTo appends the table's wire-format-v1 encoding to b: the input
// and fault-free words as packed bit vectors, then a length-prefixed row
// vector of (output word, fault-name list) pairs. Used by the rmi binary
// codec's FaultTableResp payload (DESIGN.md §12).
//
//gocad:noalloc
func (dt *DetectionTable) AppendTo(b []byte) []byte {
	b = wire.AppendWord(b, dt.Input)
	b = wire.AppendWord(b, dt.FaultFree)
	b = wire.AppendUvarint(b, uint64(len(dt.Rows)))
	for _, row := range dt.Rows {
		b = wire.AppendWord(b, row.Output)
		b = wire.AppendStrings(b, row.Faults)
	}
	return b
}

// DecodeFrom decodes an AppendTo encoding, consuming buf exactly. It
// validates every length prefix against the bytes present: the input is
// untrusted.
func (dt *DetectionTable) DecodeFrom(buf []byte) error {
	var err error
	*dt = DetectionTable{}
	if dt.Input, buf, err = wire.Word(buf); err != nil {
		return fmt.Errorf("fault: detection table input: %w", err)
	}
	if dt.FaultFree, buf, err = wire.Word(buf); err != nil {
		return fmt.Errorf("fault: detection table fault-free word: %w", err)
	}
	n, buf, err := wire.Uvarint(buf)
	if err != nil {
		return fmt.Errorf("fault: detection table row count: %w", err)
	}
	if n > uint64(len(buf)) {
		return fmt.Errorf("fault: %d detection rows, %d bytes left: %w", n, len(buf), wire.ErrTruncated)
	}
	if n > 0 {
		dt.Rows = make([]DetectionRow, n)
		for i := range dt.Rows {
			if dt.Rows[i].Output, buf, err = wire.Word(buf); err != nil {
				return fmt.Errorf("fault: detection row %d output: %w", i, err)
			}
			if dt.Rows[i].Faults, buf, err = wire.Strings(buf); err != nil {
				return fmt.Errorf("fault: detection row %d faults: %w", i, err)
			}
		}
	}
	if len(buf) != 0 {
		return fmt.Errorf("fault: %d trailing bytes after detection table", len(buf))
	}
	return nil
}
