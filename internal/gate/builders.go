package gate

import (
	"fmt"
	"math/rand"

	"repro/internal/signal"
)

// AddHalfAdder appends a half adder computing sum = a XOR b and
// carry = a AND b, with nets named with the given prefix.
func (n *Netlist) AddHalfAdder(prefix string, a, b NetID) (sum, carry NetID) {
	sum = n.AddGate(Xor, prefix+".s", a, b)
	carry = n.AddGate(And, prefix+".c", a, b)
	return sum, carry
}

// AddFullAdder appends a full adder over a, b and cin, with nets named
// with the given prefix.
func (n *Netlist) AddFullAdder(prefix string, a, b, cin NetID) (sum, cout NetID) {
	ab := n.AddGate(Xor, prefix+".ab", a, b)
	sum = n.AddGate(Xor, prefix+".s", ab, cin)
	c1 := n.AddGate(And, prefix+".c1", a, b)
	c2 := n.AddGate(And, prefix+".c2", ab, cin)
	cout = n.AddGate(Or, prefix+".co", c1, c2)
	return sum, cout
}

// RippleAdder builds an n-bit ripple-carry adder: inputs a[0..n), b[0..n),
// outputs s[0..n) and carry-out "cout".
func RippleAdder(width int) *Netlist {
	nl := NewNetlist(fmt.Sprintf("rca%d", width))
	a := make([]NetID, width)
	b := make([]NetID, width)
	for i := 0; i < width; i++ {
		a[i] = nl.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < width; i++ {
		b[i] = nl.AddInput(fmt.Sprintf("b%d", i))
	}
	var carry NetID = InvalidNet
	for i := 0; i < width; i++ {
		var s NetID
		if i == 0 {
			s, carry = nl.AddHalfAdder(fmt.Sprintf("fa%d", i), a[i], b[i])
		} else {
			s, carry = nl.AddFullAdder(fmt.Sprintf("fa%d", i), a[i], b[i], carry)
		}
		nl.MarkOutput(s)
	}
	nl.MarkOutput(carry)
	return nl
}

// ArrayMultiplier builds a width×width unsigned array multiplier with a
// 2·width-bit product: the gate-level view of the paper's MULT component,
// the netlist an IP provider would never disclose. Inputs are a[0..w) then
// b[0..w); outputs are p[0..2w) LSB first.
func ArrayMultiplier(width int) *Netlist {
	if width < 2 {
		panic("gate: ArrayMultiplier needs width >= 2")
	}
	nl := NewNetlist(fmt.Sprintf("mult%d", width))
	a := make([]NetID, width)
	b := make([]NetID, width)
	for i := 0; i < width; i++ {
		a[i] = nl.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < width; i++ {
		b[i] = nl.AddInput(fmt.Sprintf("b%d", i))
	}
	// Partial products pp[i][j] = a[j] AND b[i], weight i+j.
	pp := make([][]NetID, width)
	for i := 0; i < width; i++ {
		pp[i] = make([]NetID, width)
		for j := 0; j < width; j++ {
			pp[i][j] = nl.AddGate(And, fmt.Sprintf("pp%d_%d", i, j), a[j], b[i])
		}
	}
	// Carry-save reduction: acc holds the running sum bits of the first
	// row; each subsequent row is added with a ripple of full adders.
	acc := make([]NetID, 2*width)
	for k := range acc {
		acc[k] = InvalidNet
	}
	for j := 0; j < width; j++ {
		acc[j] = pp[0][j]
	}
	for i := 1; i < width; i++ {
		var carry NetID = InvalidNet
		for j := 0; j < width; j++ {
			k := i + j
			prefix := fmt.Sprintf("r%d_%d", i, j)
			switch {
			case acc[k] == InvalidNet && carry == InvalidNet:
				acc[k] = pp[i][j]
			case acc[k] == InvalidNet:
				acc[k], carry = nl.AddHalfAdder(prefix, pp[i][j], carry)
			case carry == InvalidNet:
				acc[k], carry = nl.AddHalfAdder(prefix, acc[k], pp[i][j])
			default:
				acc[k], carry = nl.AddFullAdder(prefix, acc[k], pp[i][j], carry)
			}
		}
		// Propagate the final carry of the row into the accumulator.
		k := i + width
		for carry != InvalidNet && k < 2*width {
			prefix := fmt.Sprintf("r%d_c%d", i, k)
			if acc[k] == InvalidNet {
				acc[k] = carry
				carry = InvalidNet
			} else {
				acc[k], carry = nl.AddHalfAdder(prefix, acc[k], carry)
				k++
			}
		}
	}
	for k := 0; k < 2*width; k++ {
		if acc[k] == InvalidNet {
			panic("gate: ArrayMultiplier produced an undriven product bit")
		}
		nl.MarkOutput(acc[k])
	}
	return nl
}

// HalfAdderIP builds the IP1 block of the paper's Figure 4: a half adder
// (sum/carry over two inputs) implemented with internal nets named
// I1..I6, whose stuck-at faults form IP1's symbolic fault list. Inputs
// are IIP1 and IIP2; outputs OIP1 (sum) then OIP2 (carry).
func HalfAdderIP() *Netlist {
	nl := NewNetlist("IP1")
	a := nl.AddInput("IIP1")
	b := nl.AddInput("IIP2")
	// NAND-based half adder with six internal lines:
	//   I1 = NAND(a,b); I2 = NAND(a,I1); I3 = NAND(b,I1);
	//   I4 = NAND(I2,I3) = a XOR b (sum); I5 = NOT I1 = a AND b (carry);
	//   I6 = BUF I4 (the sum line routed to the output).
	i1 := nl.AddGate(Nand, "I1", a, b)
	i2 := nl.AddGate(Nand, "I2", a, i1)
	i3 := nl.AddGate(Nand, "I3", b, i1)
	i4 := nl.AddGate(Nand, "I4", i2, i3)
	i5 := nl.AddGate(Not, "I5", i1)
	i6 := nl.AddGate(Buf, "I6", i4)
	oip1 := nl.AddGate(Buf, "OIP1", i6)
	oip2 := nl.AddGate(Buf, "OIP2", i5)
	nl.MarkOutput(oip1)
	nl.MarkOutput(oip2)
	return nl
}

// Figure4Design builds the complete example circuit of Figure 4 as a flat
// netlist (the full-disclosure reference): four primary inputs A..D, the
// AND gate producing E, the embedded IP1 half adder, and the output logic
// O1 = OIP1·D, O2 = OIP2+F with F = C·D.
func Figure4Design() *Netlist {
	nl := NewNetlist("fig4")
	a := nl.AddInput("A")
	b := nl.AddInput("B")
	c := nl.AddInput("C")
	d := nl.AddInput("D")
	e := nl.AddGate(And, "E", a, b)
	// IP1 flattened with its internal net names preserved.
	i1 := nl.AddGate(Nand, "I1", e, c)
	i2 := nl.AddGate(Nand, "I2", e, i1)
	i3 := nl.AddGate(Nand, "I3", c, i1)
	i4 := nl.AddGate(Nand, "I4", i2, i3)
	i5 := nl.AddGate(Not, "I5", i1)
	i6 := nl.AddGate(Buf, "I6", i4)
	oip1 := nl.AddGate(Buf, "OIP1", i6)
	oip2 := nl.AddGate(Buf, "OIP2", i5)
	f := nl.AddGate(And, "F", c, d)
	o1 := nl.AddGate(And, "O1", oip1, d)
	o2 := nl.AddGate(Or, "O2", oip2, f)
	nl.MarkOutput(o1)
	nl.MarkOutput(o2)
	return nl
}

// C17 builds the ISCAS-85 c17 benchmark: 5 inputs, 6 NAND gates, 2
// outputs — the canonical tiny test-generation benchmark, with net names
// following the ISCAS numbering.
func C17() *Netlist {
	nl := NewNetlist("c17")
	n1 := nl.AddInput("1")
	n2 := nl.AddInput("2")
	n3 := nl.AddInput("3")
	n6 := nl.AddInput("6")
	n7 := nl.AddInput("7")
	n10 := nl.AddGate(Nand, "10", n1, n3)
	n11 := nl.AddGate(Nand, "11", n3, n6)
	n16 := nl.AddGate(Nand, "16", n2, n11)
	n19 := nl.AddGate(Nand, "19", n11, n7)
	n22 := nl.AddGate(Nand, "22", n10, n16)
	n23 := nl.AddGate(Nand, "23", n16, n19)
	nl.MarkOutput(n22)
	nl.MarkOutput(n23)
	return nl
}

// RandomCombinational builds a pseudo-random combinational DAG with the
// given numbers of primary inputs, gates and outputs — the workload for
// fault-simulation equivalence property tests. The same seed always
// yields the same circuit.
func RandomCombinational(nIn, nGates, nOut int, seed int64) *Netlist {
	if nIn < 2 || nGates < 1 || nOut < 1 {
		panic("gate: RandomCombinational needs nIn>=2, nGates>=1, nOut>=1")
	}
	r := rand.New(rand.NewSource(seed))
	nl := NewNetlist(fmt.Sprintf("rand_%d_%d_%d", nIn, nGates, seed))
	avail := make([]NetID, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		avail = append(avail, nl.AddInput(fmt.Sprintf("in%d", i)))
	}
	kinds := []Kind{And, Nand, Or, Nor, Xor, Xnor, Not, Buf}
	for g := 0; g < nGates; g++ {
		k := kinds[r.Intn(len(kinds))]
		var in []NetID
		if k == Not || k == Buf {
			in = []NetID{avail[r.Intn(len(avail))]}
		} else {
			x := avail[r.Intn(len(avail))]
			y := avail[r.Intn(len(avail))]
			in = []NetID{x, y}
		}
		avail = append(avail, nl.AddGate(k, fmt.Sprintf("g%d", g), in...))
	}
	// Choose outputs among the last gates so most logic is observable.
	if nOut > nGates {
		nOut = nGates
	}
	for i := 0; i < nOut; i++ {
		nl.MarkOutput(avail[len(avail)-1-i])
	}
	return nl
}

// Embed flattens a sub-netlist into n: sub's primary inputs are wired to
// the given driver nets of n, every other sub net is recreated in n with
// the prefix prepended to its name, and sub's gates are copied. It
// returns sub's primary-output nets as nets of n (in sub's output order).
// Embed is the full-disclosure operation an IP provider performs on its
// own server — or the reference construction used to validate virtual
// simulation against a flattened design.
func (n *Netlist) Embed(sub *Netlist, drivers []NetID, prefix string) []NetID {
	if len(drivers) != len(sub.inputs) {
		panic(fmt.Sprintf("gate: Embed of %s needs %d drivers, got %d",
			sub.Name, len(sub.inputs), len(drivers)))
	}
	mapping := make(map[NetID]NetID, sub.NumNets())
	for i, id := range sub.inputs {
		n.checkNet(drivers[i])
		mapping[id] = drivers[i]
	}
	for id := 0; id < sub.NumNets(); id++ {
		if sub.nets[id].isPI {
			continue
		}
		mapping[NetID(id)] = n.AddNet(prefix + sub.nets[id].name)
	}
	if err := sub.build(); err != nil {
		panic(fmt.Sprintf("gate: Embed: %v", err))
	}
	for _, gi := range sub.levels {
		g := sub.gates[gi]
		in := make([]NetID, len(g.In))
		for i, id := range g.In {
			in[i] = mapping[id]
		}
		n.AddGateTo(g.Kind, mapping[g.Out], in...)
	}
	outs := make([]NetID, len(sub.outputs))
	for i, id := range sub.outputs {
		outs[i] = mapping[id]
	}
	return outs
}

// InputWord packs a uint64 into an input pattern for a netlist with up to
// 64 primary inputs (bit i of v drives input i).
func (n *Netlist) InputWord(v uint64) []signal.Bit {
	in := make([]signal.Bit, len(n.inputs))
	for i := range in {
		if v&(1<<uint(i)) != 0 {
			in[i] = signal.B1
		}
	}
	return in
}
