package gate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/signal"
)

// evalUint drives a netlist whose inputs are a-then-b fields and decodes
// the output as an unsigned integer.
func evalArith(t *testing.T, nl *Netlist, a, b uint64, widthA, widthB int) uint64 {
	t.Helper()
	in := make([]signal.Bit, widthA+widthB)
	for i := 0; i < widthA; i++ {
		if a&(1<<uint(i)) != 0 {
			in[i] = signal.B1
		}
	}
	for i := 0; i < widthB; i++ {
		if b&(1<<uint(i)) != 0 {
			in[widthA+i] = signal.B1
		}
	}
	out, err := nl.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	var v uint64
	for i, bit := range out {
		bv, ok := bit.Bool()
		if !ok {
			t.Fatalf("output bit %d is %v", i, bit)
		}
		if bv {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestRippleAdderExhaustive4(t *testing.T) {
	nl := RippleAdder(4)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			got := evalArith(t, nl, a, b, 4, 4)
			if got != a+b {
				t.Fatalf("%d+%d = %d, want %d", a, b, got, a+b)
			}
		}
	}
}

func TestRippleAdderRandom16(t *testing.T) {
	nl := RippleAdder(16)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := uint64(r.Intn(1 << 16))
		b := uint64(r.Intn(1 << 16))
		if got := evalArith(t, nl, a, b, 16, 16); got != a+b {
			t.Fatalf("%d+%d = %d", a, b, got)
		}
	}
}

func TestArrayMultiplierExhaustive3(t *testing.T) {
	nl := ArrayMultiplier(3)
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			got := evalArith(t, nl, a, b, 3, 3)
			if got != a*b {
				t.Fatalf("%d*%d = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestArrayMultiplierProperty16(t *testing.T) {
	nl := ArrayMultiplier(16)
	f := func(a, b uint16) bool {
		return evalArith(t, nl, uint64(a), uint64(b), 16, 16) == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestArrayMultiplierWidthGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 1 did not panic")
		}
	}()
	ArrayMultiplier(1)
}

func TestHalfAdderIPTruth(t *testing.T) {
	nl := HalfAdderIP()
	for a := uint64(0); a < 2; a++ {
		for b := uint64(0); b < 2; b++ {
			got := evalArith(t, nl, a, b, 1, 1)
			want := (a ^ b) | ((a & b) << 1) // out0 = sum, out1 = carry
			if got != want {
				t.Fatalf("IP1(%d,%d) = %02b, want %02b", a, b, got, want)
			}
		}
	}
	// Internal nets must carry the paper's names.
	for _, name := range []string{"I1", "I2", "I3", "I4", "I5", "I6"} {
		if nl.Net(name) == InvalidNet {
			t.Errorf("missing internal net %q", name)
		}
	}
}

func TestFigure4DesignFaultFree(t *testing.T) {
	nl := Figure4Design()
	// ABCD = 1100: E=1, IP1 inputs (1,0) -> sum=1, carry=0.
	// O1 = sum AND D = 1 AND 0 = 0; F = C AND D = 0; O2 = carry OR F = 0.
	in := []signal.Bit{signal.B1, signal.B1, signal.B0, signal.B0}
	out, err := nl.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B0 || out[1] != signal.B0 {
		t.Errorf("fig4(1100) = %v%v, want 00", out[0], out[1])
	}
	// ABCD = 1101: O1 = 1 AND 1 = 1.
	in[3] = signal.B1
	out, _ = nl.Eval(in)
	if out[0] != signal.B1 {
		t.Errorf("fig4(1101) O1 = %v, want 1", out[0])
	}
	// IP1's fault-free outputs for IIP1=1, IIP2=0 must be (1,0): the
	// paper's "fault-free configuration, 10".
	ev, err := nl.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(in); err != nil {
		t.Fatal(err)
	}
	if ev.Value(nl.Net("OIP1")) != signal.B1 || ev.Value(nl.Net("OIP2")) != signal.B0 {
		t.Errorf("IP1 outputs = %v%v, want 10",
			ev.Value(nl.Net("OIP1")), ev.Value(nl.Net("OIP2")))
	}
}

func TestEvaluatorFaultInjection(t *testing.T) {
	nl := Figure4Design()
	ev, err := nl.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	in := nl.InputWord(0b1011) // A=1, B=1, C=0, D=1
	// Fault-free: O1 = 1.
	out, err := ev.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B1 {
		t.Fatalf("fault-free O1 = %v", out[0])
	}
	// Inject I3 stuck-at-0: I4 = NAND(I2, 0) = 1... recompute: with
	// IIP1=1, IIP2=0: I1=1, I2=NAND(1,1)=0, I3 forced 0, I4=NAND(0,0)=1.
	// Sum stays 1? No: fault-free I3=NAND(0,1)=1, I4=NAND(0,1)=1. Same.
	// The observable effect depends on the circuit; we just verify the
	// injection forces the net itself.
	ev.SetFault(Fault{Net: nl.Net("I3"), Stuck: signal.B0})
	if _, err := ev.Eval(in); err != nil {
		t.Fatal(err)
	}
	if ev.Value(nl.Net("I3")) != signal.B0 {
		t.Error("fault injection did not force net value")
	}
	ev.ClearFaults()
	if _, err := ev.Eval(in); err != nil {
		t.Fatal(err)
	}
	if ev.Value(nl.Net("I3")) != signal.B1 {
		t.Error("ClearFaults did not restore fault-free value")
	}
}

func TestEvaluatorFaultOnPrimaryInput(t *testing.T) {
	nl := NewNetlist("pi")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	o := nl.AddGate(And, "o", a, b)
	nl.MarkOutput(o)
	ev, _ := nl.NewEvaluator()
	ev.SetFault(Fault{Net: a, Stuck: signal.B0})
	out, err := ev.Eval([]signal.Bit{signal.B1, signal.B1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B0 {
		t.Errorf("PI stuck-at-0 not applied: out = %v", out[0])
	}
}

func TestEvaluatorToggleCounting(t *testing.T) {
	nl := NewNetlist("tog")
	a := nl.AddInput("a")
	o := nl.AddGate(Not, "o", a)
	nl.MarkOutput(o)
	ev, _ := nl.NewEvaluator()
	ev.CountToggle = true
	seq := []signal.Bit{signal.B0, signal.B1, signal.B0, signal.B0, signal.B1}
	for _, b := range seq {
		if _, err := ev.Eval([]signal.Bit{b}); err != nil {
			t.Fatal(err)
		}
	}
	// a toggles 0->1->0->0->1: 3 transitions; o mirrors them: 3 more.
	if got := ev.Toggles(a); got != 3 {
		t.Errorf("input toggles = %d, want 3", got)
	}
	if got := ev.TotalToggles(); got != 6 {
		t.Errorf("total toggles = %d, want 6", got)
	}
	ev.ResetToggles()
	if ev.TotalToggles() != 0 {
		t.Error("ResetToggles did not clear")
	}
}

func TestEvaluatorOutputWord(t *testing.T) {
	nl := RippleAdder(2)
	ev, _ := nl.NewEvaluator()
	// 3 + 1 = 4 -> s0=0, s1=0, cout=1 -> word "100".
	if _, err := ev.Eval(nl.InputWord(0b0111)); err != nil { // a=3 (bits 0-1), b=1 (bits 2-3)
		t.Fatal(err)
	}
	if got := ev.OutputWord().String(); got != "100" {
		t.Errorf("output word = %q, want 100", got)
	}
}

func TestRandomCombinationalDeterministic(t *testing.T) {
	a := RandomCombinational(4, 20, 3, 7)
	b := RandomCombinational(4, 20, 3, 7)
	if a.NumGates() != b.NumGates() || a.NumNets() != b.NumNets() {
		t.Error("same seed produced different circuits")
	}
	if err := a.Build(); err != nil {
		t.Fatalf("random circuit invalid: %v", err)
	}
	// Same seed, same outputs for a batch of patterns.
	ea, _ := a.NewEvaluator()
	eb, _ := b.NewEvaluator()
	for v := uint64(0); v < 16; v++ {
		oa, _ := ea.Eval(a.InputWord(v))
		ob, _ := eb.Eval(b.InputWord(v))
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("pattern %d output %d differs", v, i)
			}
		}
	}
}

func TestRandomCombinationalGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad args did not panic")
		}
	}()
	RandomCombinational(1, 0, 0, 1)
}

func TestRippleAdderVsMultiplierGateCounts(t *testing.T) {
	// Sanity: multiplier gate count grows quadratically, adder linearly.
	a8 := RippleAdder(8)
	a16 := RippleAdder(16)
	if a16.NumGates() <= a8.NumGates() {
		t.Error("adder gate count not growing")
	}
	m4 := ArrayMultiplier(4)
	m8 := ArrayMultiplier(8)
	if m8.NumGates() < 3*m4.NumGates() {
		t.Errorf("multiplier growth suspicious: %d -> %d", m4.NumGates(), m8.NumGates())
	}
}

func TestC17Structure(t *testing.T) {
	nl := C17()
	if nl.NumGates() != 6 || len(nl.Inputs()) != 5 || len(nl.Outputs()) != 2 {
		t.Fatalf("c17 structure: %d gates, %d in, %d out",
			nl.NumGates(), len(nl.Inputs()), len(nl.Outputs()))
	}
	for _, g := range nl.Gates() {
		if g.Kind != Nand {
			t.Fatalf("c17 gate %s is %v, want NAND", g.Name, g.Kind)
		}
	}
	// Spot-check the function: all-ones input.
	out, err := nl.Eval([]signal.Bit{signal.B1, signal.B1, signal.B1, signal.B1, signal.B1})
	if err != nil {
		t.Fatal(err)
	}
	// 10=NAND(1,1)=0, 11=NAND(1,1)=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
	// 22=NAND(0,1)=1, 23=NAND(1,1)=0.
	if out[0] != signal.B1 || out[1] != signal.B0 {
		t.Errorf("c17(11111) = %v%v, want 1 0", out[0], out[1])
	}
}
