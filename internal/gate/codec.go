package gate

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// wireNet and wireGate form the portable on-disk/on-wire snapshot of a
// netlist. The codec exists for provider-side persistence and for the
// model-encryption baseline (internal/sealed), which ships an encrypted
// snapshot to the user — it is NOT part of the virtual-simulation
// protocol, which never serializes netlists across the IP boundary.
type wireNet struct {
	Name string
	IsPI bool
	IsPO bool
}

type wireGate struct {
	Kind int32
	In   []int32
	Out  int32
}

type wireNetlist struct {
	Name  string
	Nets  []wireNet
	Gates []wireGate
}

// MarshalBinary encodes the netlist structure.
func (n *Netlist) MarshalBinary() ([]byte, error) {
	w := wireNetlist{Name: n.Name}
	for _, ni := range n.nets {
		w.Nets = append(w.Nets, wireNet{Name: ni.name, IsPI: ni.isPI, IsPO: ni.isPO})
	}
	for _, g := range n.gates {
		wg := wireGate{Kind: int32(g.Kind), Out: int32(g.Out)}
		for _, in := range g.In {
			wg.In = append(wg.In, int32(in))
		}
		w.Gates = append(w.Gates, wg)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("gate: marshal %s: %w", n.Name, err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a snapshot produced by MarshalBinary into a
// fresh netlist (n must be empty). Structural violations in the snapshot
// (duplicate drivers, bad arities) are reported as errors rather than
// panics, since snapshots may come from untrusted storage.
func (n *Netlist) UnmarshalBinary(data []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gate: unmarshal: invalid snapshot: %v", r)
		}
	}()
	return n.unmarshalBinary(data)
}

func (n *Netlist) unmarshalBinary(data []byte) error {
	if len(n.nets) != 0 || len(n.gates) != 0 {
		return fmt.Errorf("gate: unmarshal into non-empty netlist %s", n.Name)
	}
	var w wireNetlist
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("gate: unmarshal: %w", err)
	}
	if n.byName == nil {
		n.byName = make(map[string]NetID)
	}
	n.Name = w.Name
	for _, wn := range w.Nets {
		if wn.IsPI {
			n.AddInput(wn.Name)
		} else {
			n.AddNet(wn.Name)
		}
	}
	for _, wg := range w.Gates {
		in := make([]NetID, len(wg.In))
		for i, id := range wg.In {
			if id < 0 || int(id) >= len(n.nets) {
				return fmt.Errorf("gate: unmarshal: gate input net %d out of range", id)
			}
			in[i] = NetID(id)
		}
		if wg.Out < 0 || int(wg.Out) >= len(n.nets) {
			return fmt.Errorf("gate: unmarshal: gate output net %d out of range", wg.Out)
		}
		n.AddGateTo(Kind(wg.Kind), NetID(wg.Out), in...)
	}
	for id, wn := range w.Nets {
		if wn.IsPO {
			n.MarkOutput(NetID(id))
		}
	}
	return n.Build()
}

// Clone returns an independent deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	b, err := n.MarshalBinary()
	if err != nil {
		panic(err) // marshalling an in-memory netlist cannot fail
	}
	c := NewNetlist("")
	if err := c.UnmarshalBinary(b); err != nil {
		panic(err)
	}
	return c
}
