package gate

import (
	"testing"

	"repro/internal/signal"
)

func TestMarshalRoundTrip(t *testing.T) {
	orig := ArrayMultiplier(6)
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := NewNetlist("")
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.NumGates() != orig.NumGates() || got.NumNets() != orig.NumNets() {
		t.Fatalf("structure mismatch after round trip")
	}
	for v := uint64(0); v < 64; v++ {
		in := orig.InputWord(v | (v^0x2A)<<6)
		a, err := orig.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("function mismatch at input %d output %d", v, i)
			}
		}
	}
}

func TestUnmarshalIntoNonEmptyRejected(t *testing.T) {
	blob, _ := RippleAdder(2).MarshalBinary()
	nl := RippleAdder(2)
	if err := nl.UnmarshalBinary(blob); err == nil {
		t.Error("unmarshal into populated netlist accepted")
	}
}

func TestUnmarshalGarbageRejected(t *testing.T) {
	nl := NewNetlist("")
	if err := nl.UnmarshalBinary([]byte("not a netlist")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestUnmarshalCorruptIndicesRejected(t *testing.T) {
	blob, _ := RippleAdder(2).MarshalBinary()
	// Flip bytes until decode either fails or produces a rejected
	// structure; the decoder must never panic.
	for i := 0; i < len(blob); i += 7 {
		c := append([]byte(nil), blob...)
		c[i] ^= 0xFF
		nl := NewNetlist("")
		_ = nl.UnmarshalBinary(c) // must not panic
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := HalfAdderIP()
	c := orig.Clone()
	if c.NumGates() != orig.NumGates() {
		t.Fatal("clone structure differs")
	}
	// Mutating the clone must not affect the original.
	c.AddInput("extra")
	if orig.Net("extra") != InvalidNet {
		t.Error("clone shares state with original")
	}
	// The clone now wants 3 inputs; the original still wants 2.
	if _, err := c.Eval([]signal.Bit{signal.B1, signal.B1}); err == nil {
		t.Error("mutated clone accepted stale arity")
	}
	if _, err := orig.Eval([]signal.Bit{signal.B1, signal.B1}); err != nil {
		t.Errorf("original broken by clone mutation: %v", err)
	}
}
