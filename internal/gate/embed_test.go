package gate

import (
	"math/rand"
	"testing"

	"repro/internal/signal"
)

func TestEmbedPreservesFunction(t *testing.T) {
	// Embed a 3-bit ripple adder behind two inverters and check the
	// composite against direct computation.
	sub := RippleAdder(3)
	top := NewNetlist("top")
	var drivers []NetID
	for i := 0; i < 6; i++ {
		in := top.AddInput(string(rune('a' + i)))
		inv := top.AddGate(Not, "n"+string(rune('a'+i)), in)
		drivers = append(drivers, inv)
	}
	outs := top.Embed(sub, drivers, "ADD.")
	for _, o := range outs {
		top.MarkOutput(o)
	}
	if err := top.Build(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		v := uint64(r.Intn(64))
		out, err := top.Eval(top.InputWord(v))
		if err != nil {
			t.Fatal(err)
		}
		// Inverted inputs: a' = ^a & 7, b' = ^b & 7.
		a := (^v) & 7
		b := (^(v >> 3)) & 7
		var got uint64
		for j, bit := range out {
			if bv, _ := bit.Bool(); bv {
				got |= 1 << uint(j)
			}
		}
		if got != a+b {
			t.Fatalf("embedded adder: %d+%d = %d", a, b, got)
		}
	}
}

func TestEmbedPrefixesInternalNets(t *testing.T) {
	sub := HalfAdderIP()
	top := NewNetlist("top")
	a := top.AddInput("a")
	b := top.AddInput("b")
	top.Embed(sub, []NetID{a, b}, "IP1.")
	if top.Net("IP1.I3") == InvalidNet {
		t.Error("internal net not prefixed")
	}
	if top.Net("I3") != InvalidNet {
		t.Error("unprefixed internal net leaked")
	}
	// Sub's primary inputs map to the drivers, not to new nets.
	if top.Net("IP1.IIP1") != InvalidNet {
		t.Error("sub primary input materialized as a net")
	}
}

func TestEmbedDriverCountChecked(t *testing.T) {
	sub := HalfAdderIP()
	top := NewNetlist("top")
	a := top.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Error("wrong driver count did not panic")
		}
	}()
	top.Embed(sub, []NetID{a}, "X.")
}

func TestEmbedTwiceNoCollision(t *testing.T) {
	sub := HalfAdderIP()
	top := NewNetlist("top")
	a := top.AddInput("a")
	b := top.AddInput("b")
	o1 := top.Embed(sub, []NetID{a, b}, "U1.")
	o2 := top.Embed(sub, []NetID{a, b}, "U2.")
	x := top.AddGate(Xor, "x", o1[0], o2[0])
	top.MarkOutput(x)
	if err := top.Build(); err != nil {
		t.Fatal(err)
	}
	// Identical instances on identical inputs: XOR of their sums is 0.
	for v := uint64(0); v < 4; v++ {
		out, err := top.Eval(top.InputWord(v))
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != signal.B0 {
			t.Fatalf("duplicate instances disagree at %d", v)
		}
	}
}

func TestEmbedFaultsStayLocalToInstance(t *testing.T) {
	// A fault injected into instance U1 must not affect instance U2.
	sub := HalfAdderIP()
	top := NewNetlist("top")
	a := top.AddInput("a")
	b := top.AddInput("b")
	o1 := top.Embed(sub, []NetID{a, b}, "U1.")
	o2 := top.Embed(sub, []NetID{a, b}, "U2.")
	top.MarkOutput(o1[0])
	top.MarkOutput(o2[0])
	ev, err := top.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	ev.SetFault(Fault{Net: top.Net("U1.I1"), Stuck: signal.B0})
	in := top.InputWord(0b01) // a=1, b=0 -> sum=1
	out, err := ev.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != signal.B1 {
		t.Error("fault in U1 corrupted U2's output")
	}
	if out[0] == signal.B1 {
		t.Error("fault in U1 had no effect on U1's output")
	}
}
