package gate

import (
	"fmt"

	"repro/internal/signal"
)

// Fault is a single stuck-at fault on a net.
type Fault struct {
	Net   NetID
	Stuck signal.Bit // B0 for stuck-at-0, B1 for stuck-at-1
}

// String renders the fault in the paper's symbolic spelling, relative to
// the given netlist (e.g. "I3sa0").
func (f Fault) String() string {
	sa := "sa?"
	switch f.Stuck {
	case signal.B0:
		sa = "sa0"
	case signal.B1:
		sa = "sa1"
	}
	return fmt.Sprintf("net%d%s", f.Net, sa)
}

// Symbol renders the fault with the net's name, e.g. "I3sa0".
func (f Fault) Symbol(n *Netlist) string {
	sa := "sa?"
	switch f.Stuck {
	case signal.B0:
		sa = "sa0"
	case signal.B1:
		sa = "sa1"
	}
	return n.NetName(f.Net) + sa
}

// Eval computes the primary-output values for the given primary-input
// values (in Inputs() order). It allocates a fresh state; use an
// Evaluator for repeated pattern simulation.
func (n *Netlist) Eval(inputs []signal.Bit) ([]signal.Bit, error) {
	ev, err := n.NewEvaluator()
	if err != nil {
		return nil, err
	}
	return ev.Eval(inputs)
}

// Evaluator holds reusable evaluation state for one netlist, amortizing
// allocation across patterns. Evaluators are not safe for concurrent use;
// create one per goroutine.
type Evaluator struct {
	n      *Netlist
	values []signal.Bit

	// fault injection state
	faults map[NetID]signal.Bit

	// bridging-fault state: wired-AND pairs and the per-pass driven
	// values of bridged nets (as opposed to their resolved values).
	bridges []Bridge
	driven  map[NetID]signal.Bit

	// toggle counting state
	prev        []signal.Bit
	toggles     []uint64
	havePrev    bool
	CountToggle bool
}

// NewEvaluator builds (levelizes) the netlist and returns a fresh
// evaluator over it.
func (n *Netlist) NewEvaluator() (*Evaluator, error) {
	if err := n.build(); err != nil {
		return nil, err
	}
	return &Evaluator{
		n:       n,
		values:  make([]signal.Bit, len(n.nets)),
		prev:    make([]signal.Bit, len(n.nets)),
		toggles: make([]uint64, len(n.nets)),
	}, nil
}

// SetFault injects a stuck-at fault for subsequent evaluations.
func (e *Evaluator) SetFault(f Fault) {
	if e.faults == nil {
		e.faults = make(map[NetID]signal.Bit)
	}
	e.faults[f.Net] = f.Stuck
}

// ClearFaults removes all injected faults.
func (e *Evaluator) ClearFaults() { e.faults = nil }

// Bridge is a wired-AND bridging fault between two nets: both nets
// assume the conjunction of their driven values — the classic model for
// a resistive short where the low level wins. This is one of the
// "general fault models" the paper notes the protocol extends to.
type Bridge struct {
	A, B NetID
}

// SetBridge installs a wired-AND bridging fault for subsequent
// evaluations. Bridges between nets on a combinational feedback path are
// resolved by bounded iteration and may conservatively report X.
func (e *Evaluator) SetBridge(b Bridge) {
	e.n.checkNet(b.A)
	e.n.checkNet(b.B)
	e.bridges = append(e.bridges, b)
}

// ClearBridges removes all bridging faults.
func (e *Evaluator) ClearBridges() { e.bridges = nil }

// bridgePeer returns the net bridged to id, if any.
func (e *Evaluator) bridgePeer(id NetID) (NetID, bool) {
	for _, b := range e.bridges {
		if b.A == id {
			return b.B, true
		}
		if b.B == id {
			return b.A, true
		}
	}
	return InvalidNet, false
}

// resolveBridged assigns a bridged net its wired-AND value, using the
// peer's driven value from this pass when available and its (stale or
// pessimistic) current value otherwise.
func (e *Evaluator) resolveBridged(id NetID, drivenVal signal.Bit) signal.Bit {
	peer, ok := e.bridgePeer(id)
	if !ok {
		return drivenVal
	}
	e.driven[id] = drivenVal
	pv, ok := e.driven[peer]
	if !ok {
		pv = e.values[peer]
	}
	return drivenVal.And(pv)
}

// Eval evaluates one input pattern and returns the primary-output values.
// The returned slice is reused across calls; copy it to retain it. With
// CountToggle set, per-net known-value transitions versus the previous
// pattern are accumulated (the raw material of toggle-based power
// estimation).
func (e *Evaluator) Eval(inputs []signal.Bit) ([]signal.Bit, error) {
	n := e.n
	if len(inputs) != len(n.inputs) {
		return nil, fmt.Errorf("gate: %s: got %d input values, want %d", n.Name, len(inputs), len(n.inputs))
	}
	if e.CountToggle && e.havePrev {
		copy(e.prev, e.values)
	}
	// Undriven nets read as X.
	for i := range e.values {
		if n.nets[i].driver == -1 && !n.nets[i].isPI {
			e.values[i] = signal.BX
		}
	}
	if len(e.bridges) == 0 {
		e.pass(inputs)
	} else {
		// Bridged nets start pessimistic, then bounded iteration reaches
		// the wired-AND fixpoint (two passes suffice for feed-forward
		// bridges; a third catches chained pairs).
		for _, b := range e.bridges {
			e.values[b.A] = signal.BX
			e.values[b.B] = signal.BX
		}
		for iter := 0; iter < 3; iter++ {
			e.driven = make(map[NetID]signal.Bit, 2*len(e.bridges))
			e.pass(inputs)
		}
	}
	if e.CountToggle {
		if e.havePrev {
			for i := range e.values {
				if e.values[i].Known() && e.prev[i].Known() && e.values[i] != e.prev[i] {
					e.toggles[i]++
				}
			}
		}
		e.havePrev = true
	}
	out := make([]signal.Bit, len(n.outputs))
	for i, id := range n.outputs {
		out[i] = e.values[id]
	}
	return out, nil
}

// pass runs one levelized evaluation sweep: primary-input assignment
// (with stuck-at and bridge application) followed by the gate loop.
func (e *Evaluator) pass(inputs []signal.Bit) {
	n := e.n
	for i, id := range n.inputs {
		v := inputs[i]
		if e.faults != nil {
			if b, ok := e.faults[id]; ok {
				v = b
			}
		}
		if len(e.bridges) > 0 {
			v = e.resolveBridged(id, v)
		}
		e.values[id] = v
	}
	for _, gi := range n.levels {
		g := &n.gates[gi]
		v := e.gateValue(g)
		if e.faults != nil {
			if b, ok := e.faults[g.Out]; ok {
				v = b
			}
		}
		if len(e.bridges) > 0 {
			v = e.resolveBridged(g.Out, v)
		}
		e.values[g.Out] = v
	}
}

// gateValue evaluates one gate over the current net values, using a small
// stack buffer to avoid per-gate allocation.
func (e *Evaluator) gateValue(g *Gate) signal.Bit {
	var buf [8]signal.Bit
	in := buf[:0]
	if len(g.In) > len(buf) {
		in = make([]signal.Bit, 0, len(g.In))
	}
	for _, id := range g.In {
		in = append(in, e.values[id])
	}
	return g.Kind.eval(in)
}

// Value returns the current value of a net after the last Eval.
func (e *Evaluator) Value(id NetID) signal.Bit {
	e.n.checkNet(id)
	return e.values[id]
}

// Toggles returns the accumulated toggle count of a net.
func (e *Evaluator) Toggles(id NetID) uint64 {
	e.n.checkNet(id)
	return e.toggles[id]
}

// TotalToggles sums toggle counts across all nets.
func (e *Evaluator) TotalToggles() uint64 {
	var t uint64
	for _, v := range e.toggles {
		t += v
	}
	return t
}

// ResetToggles clears toggle counters and pattern history.
func (e *Evaluator) ResetToggles() {
	for i := range e.toggles {
		e.toggles[i] = 0
	}
	e.havePrev = false
}

// OutputWord packs the primary-output values of the last Eval into a Word
// (bit i = output i).
func (e *Evaluator) OutputWord() signal.Word {
	w := signal.NewWord(len(e.n.outputs))
	for i, id := range e.n.outputs {
		w.Bits[i] = e.values[id]
	}
	return w
}
