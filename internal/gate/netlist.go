// Package gate implements structural gate-level netlists: the abstraction
// level at which IP providers hold the accurate—and IP-protected—view of
// their components. Netlists support levelized four-valued evaluation,
// evaluation under injected stuck-at faults, and per-net toggle counting;
// they are the substrate under the PPP-style power estimator
// (internal/ppp), the fault machinery (internal/fault), and the
// gate-level design modules (internal/module).
package gate

import (
	"fmt"

	"repro/internal/signal"
)

// Kind enumerates the primitive gate types.
type Kind int

// The supported primitive gates. Buf and Not are unary; the others accept
// two or more inputs.
const (
	Buf Kind = iota
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
)

var kindNames = [...]string{"BUF", "NOT", "AND", "NAND", "OR", "NOR", "XOR", "XNOR"}

// String returns the conventional gate-type mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// eval computes the gate function over four-valued inputs.
func (k Kind) eval(in []signal.Bit) signal.Bit {
	switch k {
	case Buf:
		return in[0].Or(in[0]) // normalizes Z to X like any gate input
	case Not:
		return in[0].Not()
	case And, Nand:
		v := in[0]
		for _, b := range in[1:] {
			v = v.And(b)
		}
		if k == Nand {
			v = v.Not()
		}
		return v
	case Or, Nor:
		v := in[0]
		for _, b := range in[1:] {
			v = v.Or(b)
		}
		if k == Nor {
			v = v.Not()
		}
		return v
	case Xor, Xnor:
		v := in[0]
		for _, b := range in[1:] {
			v = v.Xor(b)
		}
		if k == Xnor {
			v = v.Not()
		}
		return v
	}
	return signal.BX
}

// minInputs returns the arity constraint for the kind.
func (k Kind) minInputs() int {
	if k == Buf || k == Not {
		return 1
	}
	return 2
}

// NetID identifies a net (a named wire) within one netlist.
type NetID int

// InvalidNet is returned by lookups that fail.
const InvalidNet NetID = -1

// Gate is one primitive cell instance.
type Gate struct {
	Kind Kind
	Name string
	In   []NetID
	Out  NetID
}

type netInfo struct {
	name   string
	driver int // index of driving gate, or -1 for a primary input
	fanout int // number of gate inputs this net feeds
	isPI   bool
	isPO   bool
}

// Netlist is a combinational gate-level circuit: primary inputs, primitive
// gates, and primary outputs, connected by single-driver nets.
type Netlist struct {
	Name string

	nets    []netInfo
	gates   []Gate
	inputs  []NetID
	outputs []NetID
	byName  map[string]NetID

	levels  []int // gate indices in topological order (valid when built)
	ordered bool
}

// NewNetlist returns an empty netlist.
func NewNetlist(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]NetID)}
}

// AddNet creates an undriven net. Internal nets become driven when a gate
// names them as its output.
func (n *Netlist) AddNet(name string) NetID {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("gate: duplicate net name %q in %s", name, n.Name))
	}
	id := NetID(len(n.nets))
	n.nets = append(n.nets, netInfo{name: name, driver: -1})
	n.byName[name] = id
	return id
}

// AddInput creates a primary-input net.
func (n *Netlist) AddInput(name string) NetID {
	id := n.AddNet(name)
	n.nets[id].isPI = true
	n.inputs = append(n.inputs, id)
	return id
}

// MarkOutput flags an existing net as a primary output.
func (n *Netlist) MarkOutput(id NetID) {
	n.checkNet(id)
	if !n.nets[id].isPO {
		n.nets[id].isPO = true
		n.outputs = append(n.outputs, id)
	}
}

// AddGate instantiates a primitive gate driving a fresh net named outName
// and returns that net. Gate names default to the output net's name.
func (n *Netlist) AddGate(k Kind, outName string, in ...NetID) NetID {
	out := n.AddNet(outName)
	n.AddGateTo(k, out, in...)
	return out
}

// AddGateTo instantiates a primitive gate driving an existing undriven
// net. It panics on arity violations, unknown nets, or double drivers —
// structural errors that would otherwise surface as silent X values.
func (n *Netlist) AddGateTo(k Kind, out NetID, in ...NetID) {
	n.checkNet(out)
	if len(in) < k.minInputs() {
		panic(fmt.Sprintf("gate: %s gate %q needs at least %d inputs, got %d",
			k, n.nets[out].name, k.minInputs(), len(in)))
	}
	if (k == Buf || k == Not) && len(in) != 1 {
		panic(fmt.Sprintf("gate: unary gate %q got %d inputs", n.nets[out].name, len(in)))
	}
	if n.nets[out].driver != -1 || n.nets[out].isPI {
		panic(fmt.Sprintf("gate: net %q already driven", n.nets[out].name))
	}
	for _, i := range in {
		n.checkNet(i)
		n.nets[i].fanout++
	}
	g := Gate{Kind: k, Name: n.nets[out].name, In: append([]NetID(nil), in...), Out: out}
	n.nets[out].driver = len(n.gates)
	n.gates = append(n.gates, g)
	n.ordered = false
}

func (n *Netlist) checkNet(id NetID) {
	if id < 0 || int(id) >= len(n.nets) {
		panic(fmt.Sprintf("gate: invalid net id %d in %s", id, n.Name))
	}
}

// Net returns the id of the net with the given name.
func (n *Netlist) Net(name string) NetID {
	if id, ok := n.byName[name]; ok {
		return id
	}
	return InvalidNet
}

// NetName returns the name of a net.
func (n *Netlist) NetName(id NetID) string {
	n.checkNet(id)
	return n.nets[id].name
}

// Inputs returns the primary-input nets in declaration order.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary-output nets in declaration order.
func (n *Netlist) Outputs() []NetID { return n.outputs }

// NumGates returns the number of primitive gates.
func (n *Netlist) NumGates() int { return len(n.gates) }

// NumNets returns the number of nets.
func (n *Netlist) NumNets() int { return len(n.nets) }

// Gates returns the gate list (callers must not mutate it).
func (n *Netlist) Gates() []Gate { return n.gates }

// Fanout returns the number of gate inputs a net feeds.
func (n *Netlist) Fanout(id NetID) int {
	n.checkNet(id)
	return n.nets[id].fanout
}

// IsInput reports whether the net is a primary input.
func (n *Netlist) IsInput(id NetID) bool { n.checkNet(id); return n.nets[id].isPI }

// IsOutput reports whether the net is a primary output.
func (n *Netlist) IsOutput(id NetID) bool { n.checkNet(id); return n.nets[id].isPO }

// build topologically orders the gates; it returns an error for
// combinational loops or undriven internal nets feeding gates.
func (n *Netlist) build() error {
	if n.ordered {
		return nil
	}
	// Kahn's algorithm over gates.
	indeg := make([]int, len(n.gates))
	consumers := make([][]int, len(n.nets)) // net -> gate indices reading it
	for gi, g := range n.gates {
		for _, in := range g.In {
			ni := n.nets[in]
			if ni.driver == -1 && !ni.isPI {
				return fmt.Errorf("gate: %s: net %q feeds gate %q but has no driver",
					n.Name, ni.name, g.Name)
			}
			if ni.driver != -1 {
				indeg[gi]++
			}
			consumers[in] = append(consumers[in], gi)
		}
	}
	order := make([]int, 0, len(n.gates))
	queue := make([]int, 0, len(n.gates))
	for gi, d := range indeg {
		if d == 0 {
			queue = append(queue, gi)
		}
	}
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		order = append(order, gi)
		for _, ci := range consumers[n.gates[gi].Out] {
			indeg[ci]--
			if indeg[ci] == 0 {
				queue = append(queue, ci)
			}
		}
	}
	if len(order) != len(n.gates) {
		return fmt.Errorf("gate: %s: combinational loop detected", n.Name)
	}
	n.levels = order
	n.ordered = true
	return nil
}

// Build finalizes the netlist for evaluation. It is idempotent and is
// called automatically by the evaluation entry points; exposing it lets
// construction code fail fast.
func (n *Netlist) Build() error { return n.build() }
