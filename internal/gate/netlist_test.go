package gate

import (
	"testing"

	"repro/internal/signal"
)

func TestKindString(t *testing.T) {
	if And.String() != "AND" || Not.String() != "NOT" || Xnor.String() != "XNOR" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind name wrong")
	}
}

func TestNetlistBasicConstruction(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	o := nl.AddGate(And, "o", a, b)
	nl.MarkOutput(o)
	if nl.NumGates() != 1 || nl.NumNets() != 3 {
		t.Errorf("gates=%d nets=%d", nl.NumGates(), nl.NumNets())
	}
	if nl.Net("o") != o || nl.Net("missing") != InvalidNet {
		t.Error("Net lookup wrong")
	}
	if nl.NetName(o) != "o" {
		t.Error("NetName wrong")
	}
	if !nl.IsInput(a) || nl.IsInput(o) || !nl.IsOutput(o) || nl.IsOutput(a) {
		t.Error("IsInput/IsOutput wrong")
	}
	if nl.Fanout(a) != 1 || nl.Fanout(o) != 0 {
		t.Error("fanout wrong")
	}
	if len(nl.Inputs()) != 2 || len(nl.Outputs()) != 1 {
		t.Error("inputs/outputs wrong")
	}
	// Marking twice must not duplicate.
	nl.MarkOutput(o)
	if len(nl.Outputs()) != 1 {
		t.Error("MarkOutput not idempotent")
	}
}

func TestNetlistDuplicateNamePanics(t *testing.T) {
	nl := NewNetlist("t")
	nl.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	nl.AddNet("a")
}

func TestNetlistDoubleDriverPanics(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	o := nl.AddGate(And, "o", a, b)
	defer func() {
		if recover() == nil {
			t.Error("double driver did not panic")
		}
	}()
	nl.AddGateTo(Or, o, a, b)
}

func TestNetlistArityPanics(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	for _, tc := range []struct {
		k  Kind
		in []NetID
	}{
		{And, []NetID{a}},
		{Not, []NetID{a, a}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v with %d inputs did not panic", tc.k, len(tc.in))
				}
			}()
			nl.AddGate(tc.k, "bad", tc.in...)
		}()
	}
}

func TestNetlistCombinationalLoopDetected(t *testing.T) {
	nl := NewNetlist("loop")
	a := nl.AddInput("a")
	x := nl.AddNet("x")
	y := nl.AddGate(And, "y", a, x)
	nl.AddGateTo(And, x, a, y)
	if err := nl.Build(); err == nil {
		t.Error("combinational loop not detected")
	}
}

func TestNetlistUndrivenNetDetected(t *testing.T) {
	nl := NewNetlist("undriven")
	a := nl.AddInput("a")
	x := nl.AddNet("x") // never driven
	nl.AddGate(And, "o", a, x)
	if err := nl.Build(); err == nil {
		t.Error("undriven net not detected")
	}
}

func evalBits(t *testing.T, nl *Netlist, in string) string {
	t.Helper()
	w, err := signal.ParseWord(in)
	if err != nil {
		t.Fatal(err)
	}
	// ParseWord is MSB-first; inputs are listed LSB-first in w.Bits order
	// reversed. Here we interpret in[0] of the string as input 0 for
	// readability, so reverse.
	bits := make([]signal.Bit, len(in))
	for i := range bits {
		bits[i] = w.Bits[len(in)-1-i]
	}
	out, err := nl.Eval(bits)
	if err != nil {
		t.Fatal(err)
	}
	s := ""
	for _, b := range out {
		s += b.String()
	}
	return s
}

func TestAllGateKindsEval(t *testing.T) {
	// One gate of each kind, both binary input combinations checked.
	cases := []struct {
		k    Kind
		a, b signal.Bit
		want signal.Bit
	}{
		{And, signal.B1, signal.B1, signal.B1},
		{And, signal.B1, signal.B0, signal.B0},
		{Nand, signal.B1, signal.B1, signal.B0},
		{Or, signal.B0, signal.B0, signal.B0},
		{Or, signal.B0, signal.B1, signal.B1},
		{Nor, signal.B0, signal.B0, signal.B1},
		{Xor, signal.B1, signal.B0, signal.B1},
		{Xor, signal.B1, signal.B1, signal.B0},
		{Xnor, signal.B1, signal.B1, signal.B1},
	}
	for _, tc := range cases {
		nl := NewNetlist("k")
		a := nl.AddInput("a")
		b := nl.AddInput("b")
		o := nl.AddGate(tc.k, "o", a, b)
		nl.MarkOutput(o)
		out, err := nl.Eval([]signal.Bit{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.want {
			t.Errorf("%v(%v,%v) = %v, want %v", tc.k, tc.a, tc.b, out[0], tc.want)
		}
	}
	// Unary kinds.
	nl := NewNetlist("u")
	a := nl.AddInput("a")
	nn := nl.AddGate(Not, "n", a)
	bb := nl.AddGate(Buf, "bf", a)
	nl.MarkOutput(nn)
	nl.MarkOutput(bb)
	out, err := nl.Eval([]signal.Bit{signal.B1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B0 || out[1] != signal.B1 {
		t.Errorf("NOT/BUF = %v %v", out[0], out[1])
	}
}

func TestThreeInputGate(t *testing.T) {
	nl := NewNetlist("t3")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	o := nl.AddGate(And, "o", a, b, c)
	nl.MarkOutput(o)
	out, err := nl.Eval([]signal.Bit{signal.B1, signal.B1, signal.B1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B1 {
		t.Errorf("AND3(1,1,1) = %v", out[0])
	}
	out, _ = nl.Eval([]signal.Bit{signal.B1, signal.B0, signal.B1})
	if out[0] != signal.B0 {
		t.Errorf("AND3(1,0,1) = %v", out[0])
	}
}

func TestEvalXPropagation(t *testing.T) {
	nl := NewNetlist("x")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	o := nl.AddGate(And, "o", a, b)
	nl.MarkOutput(o)
	out, err := nl.Eval([]signal.Bit{signal.BX, signal.B0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B0 {
		t.Errorf("X AND 0 = %v, want 0", out[0])
	}
	out, _ = nl.Eval([]signal.Bit{signal.BX, signal.B1})
	if out[0] != signal.BX {
		t.Errorf("X AND 1 = %v, want X", out[0])
	}
}

func TestEvalWrongInputCount(t *testing.T) {
	nl := RippleAdder(2)
	if _, err := nl.Eval([]signal.Bit{signal.B0}); err == nil {
		t.Error("wrong input count not rejected")
	}
}

func TestFaultSymbols(t *testing.T) {
	nl := NewNetlist("f")
	a := nl.AddInput("I3")
	f0 := Fault{Net: a, Stuck: signal.B0}
	f1 := Fault{Net: a, Stuck: signal.B1}
	if f0.Symbol(nl) != "I3sa0" || f1.Symbol(nl) != "I3sa1" {
		t.Errorf("symbols = %q %q", f0.Symbol(nl), f1.Symbol(nl))
	}
	if f0.String() == "" {
		t.Error("Fault.String empty")
	}
	bad := Fault{Net: a, Stuck: signal.BX}
	if bad.Symbol(nl) != "I3sa?" {
		t.Errorf("invalid stuck symbol = %q", bad.Symbol(nl))
	}
}
