package gate

import (
	"fmt"

	"repro/internal/signal"
)

// Sequential models a synchronous sequential circuit in the standard
// Huffman form: a combinational core plus a state register. State bits
// appear to the core as extra primary inputs (present state) and extra
// primary outputs (next state). This is the paper's "extension to
// sequential circuits": under the full-scan assumption the register is
// directly controllable and observable, so sequential fault simulation
// reduces to combinational fault simulation of the core — which is what
// internal/fault's ScanSimulate exploits.
type Sequential struct {
	// Comb is the combinational core.
	Comb *Netlist
	// StateIn are the core's present-state input nets (register outputs).
	StateIn []NetID
	// StateOut are the core's next-state output nets (register inputs).
	StateOut []NetID

	primaryIn  []NetID
	primaryOut []NetID
}

// NewSequential wraps a combinational core. stateIn must be core primary
// inputs; stateOut must be core primary outputs; they must have equal
// length (the register width).
func NewSequential(core *Netlist, stateIn, stateOut []NetID) (*Sequential, error) {
	if len(stateIn) != len(stateOut) {
		return nil, fmt.Errorf("gate: state register width mismatch: %d in, %d out", len(stateIn), len(stateOut))
	}
	inSet := make(map[NetID]bool, len(stateIn))
	for _, id := range stateIn {
		if !core.IsInput(id) {
			return nil, fmt.Errorf("gate: state input %s is not a core primary input", core.NetName(id))
		}
		inSet[id] = true
	}
	outSet := make(map[NetID]bool, len(stateOut))
	for _, id := range stateOut {
		if !core.IsOutput(id) {
			return nil, fmt.Errorf("gate: state output %s is not a core primary output", core.NetName(id))
		}
		outSet[id] = true
	}
	s := &Sequential{Comb: core, StateIn: stateIn, StateOut: stateOut}
	for _, id := range core.Inputs() {
		if !inSet[id] {
			s.primaryIn = append(s.primaryIn, id)
		}
	}
	for _, id := range core.Outputs() {
		if !outSet[id] {
			s.primaryOut = append(s.primaryOut, id)
		}
	}
	if err := core.Build(); err != nil {
		return nil, err
	}
	return s, nil
}

// PrimaryInputs returns the non-state inputs.
func (s *Sequential) PrimaryInputs() []NetID { return s.primaryIn }

// PrimaryOutputs returns the non-state outputs.
func (s *Sequential) PrimaryOutputs() []NetID { return s.primaryOut }

// StateWidth returns the register width.
func (s *Sequential) StateWidth() int { return len(s.StateIn) }

// ResetState returns the all-zero state.
func (s *Sequential) ResetState() []signal.Bit { return make([]signal.Bit, len(s.StateIn)) }

// SeqEvaluator steps a Sequential cycle by cycle.
type SeqEvaluator struct {
	seq   *Sequential
	ev    *Evaluator
	state []signal.Bit

	inIdx  map[NetID]int // core input net -> position in core input vector
	outIdx map[NetID]int
}

// NewEvaluator returns a fresh sequential evaluator starting from the
// reset (all-zero) state.
func (s *Sequential) NewEvaluator() (*SeqEvaluator, error) {
	ev, err := s.Comb.NewEvaluator()
	if err != nil {
		return nil, err
	}
	se := &SeqEvaluator{
		seq:    s,
		ev:     ev,
		state:  s.ResetState(),
		inIdx:  make(map[NetID]int),
		outIdx: make(map[NetID]int),
	}
	for i, id := range s.Comb.Inputs() {
		se.inIdx[id] = i
	}
	for i, id := range s.Comb.Outputs() {
		se.outIdx[id] = i
	}
	return se, nil
}

// State returns the current register contents.
func (se *SeqEvaluator) State() []signal.Bit { return append([]signal.Bit(nil), se.state...) }

// SetState loads the register (the scan-in operation of a full-scan
// design).
func (se *SeqEvaluator) SetState(state []signal.Bit) error {
	if len(state) != len(se.seq.StateIn) {
		return fmt.Errorf("gate: state width %d, want %d", len(state), len(se.seq.StateIn))
	}
	copy(se.state, state)
	return nil
}

// SetFault injects a stuck-at fault into the combinational core for all
// subsequent cycles.
func (se *SeqEvaluator) SetFault(f Fault) { se.ev.SetFault(f) }

// ClearFaults removes injected faults.
func (se *SeqEvaluator) ClearFaults() { se.ev.ClearFaults() }

// Step applies one clock cycle: the core evaluates over (inputs, state),
// the primary outputs are returned, and the register latches next state.
func (se *SeqEvaluator) Step(inputs []signal.Bit) ([]signal.Bit, error) {
	if len(inputs) != len(se.seq.primaryIn) {
		return nil, fmt.Errorf("gate: %d inputs, want %d", len(inputs), len(se.seq.primaryIn))
	}
	full := make([]signal.Bit, len(se.seq.Comb.Inputs()))
	for i, id := range se.seq.primaryIn {
		full[se.inIdx[id]] = inputs[i]
	}
	for i, id := range se.seq.StateIn {
		full[se.inIdx[id]] = se.state[i]
	}
	coreOut, err := se.ev.Eval(full)
	if err != nil {
		return nil, err
	}
	outs := make([]signal.Bit, len(se.seq.primaryOut))
	for i, id := range se.seq.primaryOut {
		outs[i] = coreOut[se.outIdx[id]]
	}
	for i, id := range se.seq.StateOut {
		se.state[i] = coreOut[se.outIdx[id]]
	}
	return outs, nil
}

// SequentialCounter builds a width-bit synchronous counter with an
// enable input: state' = state + en, output = state. A compact sequential
// workload for tests and benchmarks.
func SequentialCounter(width int) (*Sequential, error) {
	core := NewNetlist(fmt.Sprintf("ctr%d", width))
	en := core.AddInput("en")
	st := make([]NetID, width)
	for i := 0; i < width; i++ {
		st[i] = core.AddInput(fmt.Sprintf("q%d", i))
	}
	// Ripple increment: next[i] = q[i] XOR carry[i]; carry[0] = en,
	// carry[i+1] = carry[i] AND q[i].
	carry := en
	next := make([]NetID, width)
	for i := 0; i < width; i++ {
		next[i] = core.AddGate(Xor, fmt.Sprintf("n%d", i), st[i], carry)
		if i < width-1 {
			carry = core.AddGate(And, fmt.Sprintf("c%d", i), carry, st[i])
		}
	}
	// Observable output: the current state, buffered.
	outs := make([]NetID, width)
	for i := 0; i < width; i++ {
		outs[i] = core.AddGate(Buf, fmt.Sprintf("o%d", i), st[i])
		core.MarkOutput(outs[i])
	}
	for i := 0; i < width; i++ {
		core.MarkOutput(next[i])
	}
	return NewSequential(core, st, next)
}
