package gate

import (
	"testing"

	"repro/internal/signal"
)

func TestSequentialCounterCounts(t *testing.T) {
	seq, err := SequentialCounter(4)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := seq.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	en := []signal.Bit{signal.B1}
	for cycle := 1; cycle <= 20; cycle++ {
		if _, err := ev.Step(en); err != nil {
			t.Fatal(err)
		}
		var v uint64
		for i, b := range ev.State() {
			if bv, _ := b.Bool(); bv {
				v |= 1 << uint(i)
			}
		}
		if v != uint64(cycle%16) {
			t.Fatalf("after %d cycles state = %d", cycle, v)
		}
	}
}

func TestSequentialCounterEnableGates(t *testing.T) {
	seq, _ := SequentialCounter(4)
	ev, _ := seq.NewEvaluator()
	hold := []signal.Bit{signal.B0}
	for i := 0; i < 5; i++ {
		if _, err := ev.Step(hold); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range ev.State() {
		if b != signal.B0 {
			t.Fatal("counter advanced with enable low")
		}
	}
}

func TestSequentialOutputsMirrorState(t *testing.T) {
	seq, _ := SequentialCounter(3)
	ev, _ := seq.NewEvaluator()
	if err := ev.SetState([]signal.Bit{signal.B1, signal.B0, signal.B1}); err != nil {
		t.Fatal(err)
	}
	out, err := ev.Step([]signal.Bit{signal.B0})
	if err != nil {
		t.Fatal(err)
	}
	// Outputs show the PRESENT state (before latching).
	if out[0] != signal.B1 || out[1] != signal.B0 || out[2] != signal.B1 {
		t.Errorf("outputs = %v", out)
	}
}

func TestSequentialValidation(t *testing.T) {
	core := RippleAdder(2)
	ins := core.Inputs()
	outs := core.Outputs()
	if _, err := NewSequential(core, ins[:2], outs[:1]); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := NewSequential(core, []NetID{outs[0]}, outs[:1]); err == nil {
		t.Error("non-PI state input accepted")
	}
	if _, err := NewSequential(core, ins[:1], []NetID{ins[0]}); err == nil {
		t.Error("non-PO state output accepted")
	}
}

func TestSeqEvaluatorArityAndStateChecks(t *testing.T) {
	seq, _ := SequentialCounter(4)
	ev, _ := seq.NewEvaluator()
	if _, err := ev.Step(nil); err == nil {
		t.Error("wrong input arity accepted")
	}
	if err := ev.SetState([]signal.Bit{signal.B1}); err == nil {
		t.Error("wrong state width accepted")
	}
}

func TestBridgeWiredAndBasic(t *testing.T) {
	// Two independent buffers; bridge their outputs: both read AND.
	nl := NewNetlist("br")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	x := nl.AddGate(Buf, "x", a)
	y := nl.AddGate(Buf, "y", b)
	nl.MarkOutput(x)
	nl.MarkOutput(y)
	ev, err := nl.NewEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	ev.SetBridge(Bridge{A: x, B: y})
	cases := []struct {
		a, b, want signal.Bit
	}{
		{signal.B0, signal.B0, signal.B0},
		{signal.B0, signal.B1, signal.B0},
		{signal.B1, signal.B0, signal.B0},
		{signal.B1, signal.B1, signal.B1},
	}
	for _, tc := range cases {
		out, err := ev.Eval([]signal.Bit{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.want || out[1] != tc.want {
			t.Errorf("bridge(%v,%v) outputs = %v %v, want %v", tc.a, tc.b, out[0], out[1], tc.want)
		}
	}
	// Clearing restores independence.
	ev.ClearBridges()
	out, _ := ev.Eval([]signal.Bit{signal.B1, signal.B0})
	if out[0] != signal.B1 || out[1] != signal.B0 {
		t.Error("ClearBridges did not restore")
	}
}

func TestBridgePropagatesDownstream(t *testing.T) {
	// The bridged (lowered) value must feed downstream logic.
	nl := NewNetlist("brd")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	x := nl.AddGate(Buf, "x", a)
	y := nl.AddGate(Buf, "y", b)
	o := nl.AddGate(Or, "o", x, y)
	nl.MarkOutput(o)
	ev, _ := nl.NewEvaluator()
	ev.SetBridge(Bridge{A: x, B: y})
	out, err := ev.Eval([]signal.Bit{signal.B1, signal.B0})
	if err != nil {
		t.Fatal(err)
	}
	// x and y both become 0, so OR = 0 (fault-free would be 1).
	if out[0] != signal.B0 {
		t.Errorf("downstream of bridge = %v, want 0", out[0])
	}
}

func TestBridgeSelfIsNoOp(t *testing.T) {
	nl := NewNetlist("self")
	a := nl.AddInput("a")
	x := nl.AddGate(Buf, "x", a)
	nl.MarkOutput(x)
	ev, _ := nl.NewEvaluator()
	ev.SetBridge(Bridge{A: x, B: x})
	out, err := ev.Eval([]signal.Bit{signal.B1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B1 {
		t.Errorf("self bridge changed value: %v", out[0])
	}
}

func TestBridgeOnPrimaryInputs(t *testing.T) {
	nl := NewNetlist("pibr")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	oa := nl.AddGate(Buf, "oa", a)
	ob := nl.AddGate(Buf, "ob", b)
	nl.MarkOutput(oa)
	nl.MarkOutput(ob)
	ev, _ := nl.NewEvaluator()
	ev.SetBridge(Bridge{A: a, B: b})
	out, err := ev.Eval([]signal.Bit{signal.B1, signal.B0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B0 || out[1] != signal.B0 {
		t.Errorf("PI bridge outputs = %v %v, want 0 0", out[0], out[1])
	}
}
