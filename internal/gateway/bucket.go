package gateway

import (
	"sync"
	"time"
)

// bucket is a token bucket over an injectable clock: rate tokens per
// second refill up to burst, takers wait (they do not error) until
// their tokens are available. Waiting rather than rejecting is the
// right shape for per-tenant rate limits on a session protocol — a
// throttled tenant's calls slow down to the contracted rate but stay
// correct, while admission control (which does fast-fail) bounds how
// many such sessions exist at all.
//
// An oversized request (n > burst) is allowed through once the bucket
// is full and leaves it in debt, so sustained throughput still honors
// the rate.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

// newBucket returns a bucket starting full. rate <= 0 disables it.
func newBucket(rate, burst float64) *bucket {
	if burst <= 0 {
		burst = rate
	}
	if burst <= 0 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// wait blocks until n tokens are available and takes them. now and
// sleep are the clock seams (tests drive a fake clock; production
// passes time.Now and time.Sleep).
func (b *bucket) wait(n float64, now func() time.Time, sleep func(time.Duration)) {
	if b == nil || b.rate <= 0 || n <= 0 {
		return
	}
	for {
		b.mu.Lock()
		t := now()
		if !b.last.IsZero() {
			b.tokens += t.Sub(b.last).Seconds() * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
		b.last = t
		// A request larger than the whole bucket proceeds from full and
		// leaves debt; everything else waits for its exact tokens.
		need := n
		if need > b.burst {
			need = b.burst
		}
		if b.tokens >= need {
			b.tokens -= n
			b.mu.Unlock()
			return
		}
		shortfall := need - b.tokens
		b.mu.Unlock()
		d := time.Duration(shortfall / b.rate * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		sleep(d)
	}
}
