package gateway

import (
	"sync"
	"testing"
	"time"

	"repro/internal/rmi"
)

// fakeClock is a deterministic now/sleep pair: Sleep advances the
// clock instead of blocking, so token-bucket behavior is exact.
type fakeClock struct {
	mu    sync.Mutex
	t     time.Time
	slept time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.slept += d
	c.mu.Unlock()
}

func (c *fakeClock) sleptTotal() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}

// TestBucketBurstThenThrottle: a full bucket serves its burst without
// waiting, then each further token costs 1/rate seconds.
func TestBucketBurstThenThrottle(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(10, 10) // 10 tokens/sec, burst 10
	for i := 0; i < 10; i++ {
		b.wait(1, clk.now, clk.sleep)
	}
	if got := clk.sleptTotal(); got != 0 {
		t.Fatalf("burst of 10 slept %v, want 0", got)
	}
	b.wait(1, clk.now, clk.sleep)
	if got := clk.sleptTotal(); got < 90*time.Millisecond || got > 110*time.Millisecond {
		t.Fatalf("11th token slept %v, want ~100ms", got)
	}
}

// TestBucketOversizedRequestDebt: a request larger than the whole
// bucket proceeds once the bucket is full but leaves it in debt, so
// sustained throughput still honors the contracted rate.
func TestBucketOversizedRequestDebt(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(10, 10)
	b.wait(25, clk.now, clk.sleep) // full bucket lets it through
	if got := clk.sleptTotal(); got != 0 {
		t.Fatalf("oversized request from full bucket slept %v, want 0", got)
	}
	before := clk.sleptTotal()
	b.wait(1, clk.now, clk.sleep)
	// Debt is 15 tokens + 1 requested = 16 tokens at 10/s.
	if got := clk.sleptTotal() - before; got < 1500*time.Millisecond || got > 1700*time.Millisecond {
		t.Fatalf("post-debt token slept %v, want ~1.6s", got)
	}
}

// TestBucketDisabled: nil bucket and zero rate are both no-ops.
func TestBucketDisabled(t *testing.T) {
	clk := newFakeClock()
	var b *bucket
	b.wait(100, clk.now, clk.sleep)
	newBucket(0, 0).wait(100, clk.now, clk.sleep)
	if got := clk.sleptTotal(); got != 0 {
		t.Fatalf("disabled buckets slept %v", got)
	}
}

// TestBeforeCallThrottleAccounting: a rate-limited tenant's calls wait
// in its buckets, and the time spent is booked to the meter's
// Throttled counter — all under the fake clock, no real sleeping.
func TestBeforeCallThrottleAccounting(t *testing.T) {
	srv := rmi.NewServer("throttle-test")
	g, err := New(srv, Config{MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	clk := newFakeClock()
	g.now, g.sleep = clk.now, clk.sleep
	if err := g.AddTenant(TenantSpec{Name: "slow", Key: "00ff", CallsPerSec: 2}); err != nil {
		t.Fatal(err)
	}
	sess := &rmi.Session{Client: "slow", ID: "s1"}
	for i := 0; i < 4; i++ { // burst 2, then 2 throttled at 0.5s each
		if err := g.beforeCall(sess, "Eval", 10); err != nil {
			t.Fatalf("beforeCall %d: %v", i, err)
		}
	}
	m, _ := g.MeterFor("slow")
	if m.Throttled < 900*time.Millisecond || m.Throttled > 1100*time.Millisecond {
		t.Fatalf("Throttled = %v, want ~1s", m.Throttled)
	}
}

// TestReasonRoundTrip: every refusal reason survives the trip through
// error text, and foreign errors parse as ReasonNone.
func TestReasonRoundTrip(t *testing.T) {
	for _, r := range []Reason{ReasonOverCapacity, ReasonTenantConns, ReasonQueueFull, ReasonOverQuota, ReasonDraining} {
		err := refusal(r, "details %d", 42)
		if got := ReasonOf(err); got != r {
			t.Errorf("ReasonOf(%v) = %q, want %q", err, got, r)
		}
		wrapped := &rmi.HandshakeError{Msg: err.Error()}
		if got := ReasonOf(wrapped); got != r {
			t.Errorf("ReasonOf(HandshakeError{%v}) = %q, want %q", err, got, r)
		}
	}
	if got := ReasonOf(nil); got != ReasonNone {
		t.Errorf("ReasonOf(nil) = %q", got)
	}
	if got := ReasonOf(errFake); got != ReasonNone {
		t.Errorf("ReasonOf(plain error) = %q", got)
	}
}

var errFake = &rmi.HandshakeError{Msg: "some unrelated refusal"}
