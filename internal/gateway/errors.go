package gateway

import (
	"fmt"
	"strings"
)

// Reason is the typed cause of a gateway refusal. Refusals cross the
// wire as error text (the welcome frame's Err field for admission, a
// remote call error for quotas), so each one embeds a stable
// machine-readable marker — "gateway: [<reason>] ..." — that Reason
// recovers on the client side with ReasonOf. A rejection is always
// loud and typed: the dialer learns exactly why it was turned away,
// within the handshake deadline, never via a silent hang.
type Reason string

// The refusal reasons the gateway distinguishes.
const (
	// ReasonNone: the error is not a gateway refusal.
	ReasonNone Reason = ""
	// ReasonOverCapacity: the server is at MaxSessions.
	ReasonOverCapacity Reason = "over-capacity"
	// ReasonTenantConns: the tenant is at its connection limit.
	ReasonTenantConns Reason = "tenant-conns"
	// ReasonQueueFull: the bounded accept queue overflowed; the
	// connection was refused before any per-connection work.
	ReasonQueueFull Reason = "queue-full"
	// ReasonOverQuota: the tenant crossed its fee ceiling; further
	// calls are refused until the quota is raised.
	ReasonOverQuota Reason = "over-quota"
	// ReasonDraining: the gateway is shutting down gracefully.
	ReasonDraining Reason = "draining"
)

// reasonMarker frames the typed reason inside the wire error text.
const reasonMarkerOpen = "gateway: ["

// refusal builds a typed gateway error whose text survives the wire.
func refusal(r Reason, format string, args ...any) error {
	return fmt.Errorf("gateway: [%s] %s", r, fmt.Sprintf(format, args...))
}

// ReasonOf classifies an error (or any of its wrapping layers) as a
// typed gateway refusal, returning ReasonNone for everything else. It
// works on both sides of the wire: the server's own refusal values and
// the client's reconstructed errors (rmi.HandshakeError for admission,
// *rmi.RemoteError for per-call quota refusals) classify identically.
func ReasonOf(err error) Reason {
	if err == nil {
		return ReasonNone
	}
	s := err.Error()
	i := strings.Index(s, reasonMarkerOpen)
	if i < 0 {
		return ReasonNone
	}
	rest := s[i+len(reasonMarkerOpen):]
	j := strings.IndexByte(rest, ']')
	if j < 0 {
		return ReasonNone
	}
	switch r := Reason(rest[:j]); r {
	case ReasonOverCapacity, ReasonTenantConns, ReasonQueueFull, ReasonOverQuota, ReasonDraining:
		return r
	}
	return ReasonNone
}
