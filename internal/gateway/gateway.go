// Package gateway is the multi-tenant front end of an IP provider: the
// trust and robustness boundary between the open network and the
// provider's rmi.Server. The paper's economic model has providers
// selling estimation services per call, which implies a front end that
// survives thousands of concurrent IP users, hostile traffic, and
// overload without degrading the sessions it has admitted. The gateway
// layers four mechanisms over the transport:
//
//   - Admission control: a hard MaxSessions cap, per-tenant connection
//     limits, and a bounded accept queue. Every refusal is a loud,
//     typed wire error (see Reason) delivered within the handshake
//     deadline — never a silent hang, never an unexplained reset while
//     capacity remains to say why.
//   - Per-tenant identity and quotas: tenants are the HMAC session
//     identities (security.Key → TenantSpec), with token-bucket rate
//     limits on calls/sec and bytes/sec (throttling, so admitted work
//     stays correct), usage-fee metering aggregated from sess.Charge
//     into an append-only billing ledger, and fee ceilings enforced as
//     typed over-quota call errors that never poison other tenants.
//   - Slow-client protection: handshake, per-frame read (idle), and
//     per-frame write deadlines on every connection, composing with
//     the server's graceful Drain.
//   - Observability: a Prometheus /metrics endpoint, /healthz, and
//     /debug/pprof on an HTTP sidecar (see http.go).
package gateway

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/rmi"
)

// The gateway's default limits. They are deliberately conservative
// production values; tests and benchmarks set explicit ones.
const (
	DefaultMaxSessions       = 1024
	DefaultMaxConnsPerTenant = 64
	DefaultAcceptQueue       = 128
	DefaultHandshakeTimeout  = 5 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
	DefaultWriteTimeout      = 30 * time.Second
)

// Config carries the gateway's knobs. Zero values select the defaults
// above; negative durations disable the corresponding deadline
// (trusted in-process transports only).
type Config struct {
	// MaxSessions caps concurrently admitted sessions across all
	// tenants.
	MaxSessions int
	// MaxConnsPerTenant caps one tenant's concurrent sessions unless
	// its TenantSpec.MaxConns overrides.
	MaxConnsPerTenant int
	// AcceptQueue bounds how many connections beyond MaxSessions may be
	// in flight (accepted but not yet admitted); overflow is fast-failed
	// with a typed queue-full rejection.
	AcceptQueue int
	// HandshakeTimeout bounds a connection's pre-session phase.
	HandshakeTimeout time.Duration
	// IdleTimeout reaps connections that sit silent between requests.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response frame write (a client that
	// stops reading is cut loose, not buffered forever).
	WriteTimeout time.Duration
	// LedgerPath persists the billing ledger; empty keeps it in memory.
	LedgerPath string
	// Logf, when non-nil, receives (sampled) diagnostics.
	Logf func(format string, args ...any)
}

// withDefaults normalizes a Config.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxConnsPerTenant <= 0 {
		c.MaxConnsPerTenant = DefaultMaxConnsPerTenant
	}
	if c.AcceptQueue <= 0 {
		c.AcceptQueue = DefaultAcceptQueue
	}
	c.HandshakeTimeout = normalizeTimeout(c.HandshakeTimeout, DefaultHandshakeTimeout)
	c.IdleTimeout = normalizeTimeout(c.IdleTimeout, DefaultIdleTimeout)
	c.WriteTimeout = normalizeTimeout(c.WriteTimeout, DefaultWriteTimeout)
	return c
}

// normalizeTimeout maps zero to a default and negative to disabled.
func normalizeTimeout(d, def time.Duration) time.Duration {
	switch {
	case d > 0:
		return d
	case d < 0:
		return 0
	default:
		return def
	}
}

// Gateway wraps one rmi.Server with multi-tenant admission control,
// quotas, metering, and slow-client protection. Construct with New,
// register tenants with AddTenant, then Serve or Listen. The gateway
// owns the wrapped server's lifecycle hooks and deadline knobs.
type Gateway struct {
	// Server is the wrapped RPC endpoint.
	Server *rmi.Server

	cfg     Config
	metrics metrics
	ledger  *Ledger

	// now and sleep are the clock seams (tests inject a fake clock for
	// deterministic rate-limit behavior).
	now   func() time.Time
	sleep func(time.Duration)

	mu       sync.Mutex
	tenants  map[string]*tenantState
	admitted int // reserved + open sessions (the MaxSessions gauge)
	draining bool
	closed   bool
	ln       net.Listener

	conns     chan struct{} // occupancy tokens: MaxSessions+AcceptQueue
	rejecting chan struct{} // bounds concurrent fast-reject writers

	httpSrv *http.Server // metrics sidecar, nil until ServeMetrics

	logmu      sync.Mutex
	logWindow  int64
	logEmitted int
}

// New wraps srv in a gateway. The gateway takes ownership of the
// server's Hooks, HandshakeTimeout, IdleTimeout, and WriteTimeout.
func New(srv *rmi.Server, cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	ledger, err := OpenLedger(cfg.LedgerPath)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		Server:    srv,
		cfg:       cfg,
		ledger:    ledger,
		now:       time.Now,
		sleep:     time.Sleep,
		tenants:   make(map[string]*tenantState),
		conns: make(chan struct{}, cfg.MaxSessions+cfg.AcceptQueue),
		// The fast-reject lane costs one goroutine writing one frame per
		// connection, so it is sized well past the serving capacity: a
		// storm several times MaxSessions still gets typed rejections,
		// and only a flood beyond that hits the raw-close backstop.
		rejecting: make(chan struct{}, 4*(cfg.MaxSessions+cfg.AcceptQueue)),
	}
	srv.HandshakeTimeout = cfg.HandshakeTimeout
	if srv.HandshakeTimeout == 0 {
		srv.HandshakeTimeout = -1 // explicit opt-out propagates
	}
	srv.IdleTimeout = cfg.IdleTimeout
	srv.WriteTimeout = cfg.WriteTimeout
	srv.Hooks = &rmi.ServerHooks{
		Admit:        g.admit,
		SessionOpen:  g.sessionOpen,
		SessionClose: g.sessionClose,
		BeforeCall:   g.beforeCall,
		AfterCall:    g.afterCall,
	}
	return g, nil
}

// AddTenant registers a tenant: its key is authorized on the wrapped
// server and its limits armed.
func (g *Gateway) AddTenant(spec TenantSpec) error {
	key, err := spec.SessionKey()
	if err != nil {
		return err
	}
	g.mu.Lock()
	if _, dup := g.tenants[spec.Name]; dup {
		g.mu.Unlock()
		return fmt.Errorf("gateway: duplicate tenant %q", spec.Name)
	}
	g.tenants[spec.Name] = newTenantState(spec, g.cfg.MaxConnsPerTenant)
	g.mu.Unlock()
	g.Server.Authorize(spec.Name, key)
	return nil
}

// tenant returns the live state for a client identity, creating a
// default record for clients authorized directly on the server (the
// legacy single-client path) so they are metered and capped too.
func (g *Gateway) tenant(client string) *tenantState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tenantLocked(client)
}

func (g *Gateway) tenantLocked(client string) *tenantState {
	ts, ok := g.tenants[client]
	if !ok {
		ts = newTenantState(TenantSpec{Name: client}, g.cfg.MaxConnsPerTenant)
		g.tenants[client] = ts
	}
	return ts
}

// Meters snapshots every tenant's usage accounting.
func (g *Gateway) Meters() []Meter {
	g.mu.Lock()
	states := make([]*tenantState, 0, len(g.tenants))
	for _, ts := range g.tenants {
		states = append(states, ts)
	}
	g.mu.Unlock()
	out := make([]Meter, 0, len(states))
	for _, ts := range states {
		out = append(out, ts.meter())
	}
	return out
}

// MeterFor snapshots one tenant's usage accounting.
func (g *Gateway) MeterFor(tenant string) (Meter, bool) {
	g.mu.Lock()
	ts, ok := g.tenants[tenant]
	g.mu.Unlock()
	if !ok {
		return Meter{}, false
	}
	return ts.meter(), true
}

// Ledger exposes the billing ledger (reconciliation, tests).
func (g *Gateway) Ledger() *Ledger { return g.ledger }

// occupancy returns the admitted-session gauge and the accept-queue
// depth (live connections beyond admitted sessions).
func (g *Gateway) occupancy() (active, queued int) {
	g.mu.Lock()
	active = g.admitted
	g.mu.Unlock()
	if q := len(g.conns) - active; q > 0 {
		queued = q
	}
	return active, queued
}

// admit is the rmi Admit hook: it reserves an admission slot or
// returns a typed refusal. Lock order is g.mu then ts.mu, matched by
// sessionClose.
func (g *Gateway) admit(client string, remote net.Addr) error {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		g.metrics.rejectedDrn.Add(1)
		return refusal(ReasonDraining, "provider draining, not admitting sessions")
	}
	if g.admitted >= g.cfg.MaxSessions {
		g.mu.Unlock()
		g.metrics.rejectedCap.Add(1)
		g.logfSampled("gateway: rejected %s from %v: at MaxSessions=%d", client, remote, g.cfg.MaxSessions)
		return refusal(ReasonOverCapacity, "session limit %d reached, try again later", g.cfg.MaxSessions)
	}
	ts := g.tenantLocked(client)
	ts.mu.Lock()
	if ts.conns >= ts.maxConns {
		ts.rejects++
		ts.mu.Unlock()
		g.mu.Unlock()
		g.metrics.rejectedTen.Add(1)
		g.logfSampled("gateway: rejected %s from %v: tenant at %d conns", client, remote, ts.maxConns)
		return refusal(ReasonTenantConns, "tenant %q connection limit %d reached", client, ts.maxConns)
	}
	ts.conns++
	ts.sessions++
	ts.mu.Unlock()
	g.admitted++
	g.mu.Unlock()
	g.metrics.admitted.Add(1)
	return nil
}

// sessionOpen arms per-session fee tracking.
func (g *Gateway) sessionOpen(sess *rmi.Session) {
	ts := g.tenant(sess.Client)
	ts.mu.Lock()
	ts.lastFees[sess.ID] = 0
	ts.mu.Unlock()
}

// sessionClose settles the session's final fees into the ledger and
// releases its admission slot.
func (g *Gateway) sessionClose(sess *rmi.Session) {
	ts := g.tenant(sess.Client)
	g.settleFees(ts, sess)
	ts.mu.Lock()
	ts.conns--
	delete(ts.lastFees, sess.ID)
	ts.mu.Unlock()
	g.mu.Lock()
	g.admitted--
	g.mu.Unlock()
}

// settleFees samples the session's accumulated fees and appends the
// delta since the last sample to the tenant meter and the billing
// ledger — the meter and the ledger therefore always agree.
func (g *Gateway) settleFees(ts *tenantState, sess *rmi.Session) {
	fees := sess.Fees()
	ts.mu.Lock()
	last, tracked := ts.lastFees[sess.ID]
	delta := fees - last
	if !tracked || delta <= 0 {
		ts.mu.Unlock()
		return
	}
	ts.feeCents += delta
	ts.lastFees[sess.ID] = fees
	ts.mu.Unlock()
	if err := g.ledger.Append(g.now(), ts.spec.Name, sess.ID, delta); err != nil {
		g.metrics.ledgerErrs.Add(1)
		g.logfSampled("gateway: %v", err)
	}
}

// beforeCall enforces the tenant's fee ceiling (typed over-quota
// refusal) and rate limits (throttling — the call waits for its
// tokens, it does not fail).
func (g *Gateway) beforeCall(sess *rmi.Session, method string, payloadBytes int) error {
	ts := g.tenant(sess.Client)
	if ceiling := ts.spec.FeeCeilingCents; ceiling > 0 {
		ts.mu.Lock()
		over := ts.feeCents >= ceiling
		if over {
			ts.over++
		}
		ts.mu.Unlock()
		if over {
			g.metrics.overQuota.Add(1)
			return refusal(ReasonOverQuota, "tenant %q reached its fee ceiling (%.2f cents)",
				ts.spec.Name, ceiling)
		}
	}
	if ts.callBucket != nil || ts.byteBucket != nil {
		t0 := g.now()
		ts.callBucket.wait(1, g.now, g.sleep)
		ts.byteBucket.wait(float64(payloadBytes), g.now, g.sleep)
		if d := g.now().Sub(t0); d > 0 {
			ts.mu.Lock()
			ts.throttle += d
			ts.mu.Unlock()
		}
	}
	return nil
}

// afterCall meters one completed dispatch and settles fee deltas.
func (g *Gateway) afterCall(sess *rmi.Session, method string, payloadBytes int, d time.Duration, failed bool) {
	g.metrics.calls.Add(1)
	if failed {
		g.metrics.callsFailed.Add(1)
	}
	g.metrics.bytesIn.Add(int64(payloadBytes))
	g.metrics.latency.observe(d)
	ts := g.tenant(sess.Client)
	ts.mu.Lock()
	ts.calls++
	if failed {
		ts.failed++
	}
	ts.bytesIn += int64(payloadBytes)
	ts.mu.Unlock()
	g.settleFees(ts, sess)
}

// Serve accepts connections until the listener closes, bounding total
// in-flight connections at MaxSessions+AcceptQueue. Overflow is
// fast-failed: the dialer receives a typed queue-full rejection in its
// own codec within the handshake timeout. If even the rejection lane
// is saturated, the connection is closed immediately — the one thing
// the gateway never does is hang a client silently.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return errors.New("gateway: closed")
	}
	g.ln = ln
	g.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			stopped := g.closed || g.draining
			g.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		select {
		case g.conns <- struct{}{}:
			go func(c net.Conn) {
				defer func() { <-g.conns }()
				g.Server.ServeConn(c)
			}(conn)
		default:
			g.metrics.rejectedFull.Add(1)
			g.logfSampled("gateway: accept queue full, fast-failing %v", conn.RemoteAddr())
			select {
			case g.rejecting <- struct{}{}:
				go func(c net.Conn) {
					defer func() { <-g.rejecting }()
					rmi.RespondReject(c, g.cfg.HandshakeTimeout,
						refusal(ReasonQueueFull, "accept queue full (limit %d)", cap(g.conns)).Error())
				}(conn)
			default:
				conn.Close()
			}
		}
	}
}

// Listen starts the gateway on a TCP address; Serve runs on a
// background goroutine.
func (g *Gateway) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := g.Serve(ln); err != nil {
			g.logfSampled("gateway: serve: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Drain shuts the gateway down gracefully: the listener closes and new
// admissions are refused with a typed draining rejection, in-flight
// requests run to completion under the wrapped server's Drain, final
// fee deltas settle into the ledger as sessions close, and the metrics
// sidecar (if any) stops last so the drain itself is observable.
func (g *Gateway) Drain(timeout time.Duration) error {
	g.mu.Lock()
	g.draining = true
	ln := g.ln
	g.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	err := g.Server.Drain(timeout)
	g.shutdownHTTP()
	if cerr := g.ledger.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close stops the gateway immediately (no drain).
func (g *Gateway) Close() error {
	g.mu.Lock()
	g.closed = true
	ln := g.ln
	g.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	err := g.Server.Close()
	g.shutdownHTTP()
	if cerr := g.ledger.Close(); err == nil {
		err = cerr
	}
	return err
}

// Draining reports whether a graceful drain has begun.
func (g *Gateway) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// logfSampled logs through Config.Logf at most logBurstPerSec lines
// per second — a reject storm must not turn the gateway's own log into
// the bottleneck (the wrapped rmi.Server samples its log the same
// way).
const logBurstPerSec = 20

func (g *Gateway) logfSampled(format string, args ...any) {
	if g.cfg.Logf == nil {
		return
	}
	sec := g.now().Unix()
	g.logmu.Lock()
	if sec != g.logWindow {
		g.logWindow = sec
		g.logEmitted = 0
	}
	g.logEmitted++
	ok := g.logEmitted <= logBurstPerSec
	g.logmu.Unlock()
	if ok {
		g.cfg.Logf(format, args...)
	}
}
