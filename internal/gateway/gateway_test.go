package gateway

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/iplib"
	"repro/internal/leakcheck"
	"repro/internal/provider"
	"repro/internal/rmi"
	"repro/internal/security"
	"repro/internal/signal"
)

// startGateway brings up a full provider behind a gateway on an
// ephemeral TCP port. Tenants with empty keys get generated ones; the
// returned map holds every tenant's session key.
func startGateway(t *testing.T, cfg Config, tenants ...TenantSpec) (*Gateway, string, map[string]security.Key) {
	t.Helper()
	p := provider.New("gw-provider")
	if err := p.Register(provider.MultFastLowPower()); err != nil {
		t.Fatal(err)
	}
	g, err := New(p.Server, cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]security.Key, len(tenants))
	for _, spec := range tenants {
		if spec.Key == "" {
			key, err := security.NewKey()
			if err != nil {
				t.Fatal(err)
			}
			spec.Key = hex.EncodeToString(key)
		}
		raw, err := spec.SessionKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[spec.Name] = raw
		if err := g.AddTenant(spec); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := g.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g, addr, keys
}

// dial connects one tenant session and registers cleanup.
func dial(t *testing.T, addr, tenant string, key security.Key) *rmi.Client {
	t.Helper()
	cli, err := rmi.Dial(addr, tenant, key)
	if err != nil {
		t.Fatalf("dial %s: %v", tenant, err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// waitActive polls the admitted-session gauge to a target — session
// close is asynchronous with client close.
func waitActive(t *testing.T, g *Gateway, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if active, _ := g.occupancy(); active == want {
			return
		}
		if time.Now().After(deadline) {
			active, queued := g.occupancy()
			t.Fatalf("occupancy stuck at active=%d queued=%d, want active=%d", active, queued, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionBoundary is the exact-capacity contract: MaxSessions
// sessions are admitted, the next one is refused with a typed
// over-capacity error, and closing any admitted session frees exactly
// one slot.
func TestAdmissionBoundary(t *testing.T) {
	leakcheck.Check(t)
	const max = 3
	g, addr, keys := startGateway(t, Config{MaxSessions: max, AcceptQueue: 4},
		TenantSpec{Name: "alpha", MaxConns: max + 1})

	clients := make([]*rmi.Client, max)
	for i := range clients {
		clients[i] = dial(t, addr, "alpha", keys["alpha"])
	}
	waitActive(t, g, max)

	_, err := rmi.Dial(addr, "alpha", keys["alpha"])
	if err == nil {
		t.Fatal("session over MaxSessions was admitted")
	}
	var hs *rmi.HandshakeError
	if !errors.As(err, &hs) {
		t.Fatalf("over-capacity rejection not a HandshakeError: %v", err)
	}
	if got := ReasonOf(err); got != ReasonOverCapacity {
		t.Fatalf("rejection reason = %q, want %q (err: %v)", got, ReasonOverCapacity, err)
	}

	// Releasing one slot readmits exactly one session.
	clients[0].Close()
	waitActive(t, g, max-1)
	dial(t, addr, "alpha", keys["alpha"])
	waitActive(t, g, max)
}

// TestTenantConnLimit: one tenant saturating its own connection limit
// is refused with a tenant-scoped reason while other tenants still get
// in — per-tenant isolation at admission.
func TestTenantConnLimit(t *testing.T) {
	leakcheck.Check(t)
	_, addr, keys := startGateway(t, Config{MaxSessions: 8},
		TenantSpec{Name: "greedy", MaxConns: 1},
		TenantSpec{Name: "bystander"})

	dial(t, addr, "greedy", keys["greedy"])
	_, err := rmi.Dial(addr, "greedy", keys["greedy"])
	if got := ReasonOf(err); got != ReasonTenantConns {
		t.Fatalf("second greedy session: reason = %q, err = %v; want %q", got, err, ReasonTenantConns)
	}
	dial(t, addr, "bystander", keys["bystander"]) // unaffected
}

// TestQueueFullFastFail: with the serving slots and the accept queue
// both held, the next connection gets a typed queue-full rejection in
// its own codec, promptly — the gateway's core never-hang promise. The
// queue slot is held by a slowloris dialer, which the handshake
// deadline then reaps.
func TestQueueFullFastFail(t *testing.T) {
	leakcheck.Check(t)
	g, addr, keys := startGateway(t,
		Config{MaxSessions: 1, AcceptQueue: 1, HandshakeTimeout: 500 * time.Millisecond},
		TenantSpec{Name: "alpha", MaxConns: 4})

	dial(t, addr, "alpha", keys["alpha"]) // occupies the one serving slot
	waitActive(t, g, 1)

	loris, err := net.Dial("tcp", addr) // occupies the queue slot, says nothing
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()
	// Both slots held: the next dial must fail fast and typed.
	start := time.Now()
	_, err = rmi.Dial(addr, "alpha", keys["alpha"])
	if got := ReasonOf(err); got != ReasonQueueFull {
		t.Fatalf("overflow dial: reason = %q, err = %v; want %q", got, err, ReasonQueueFull)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("queue-full rejection took %v", d)
	}

	// Slow-client protection: the silent dialer is reaped at the
	// handshake deadline, freeing its queue slot.
	loris.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := loris.Read(make([]byte, 1)); err == nil {
		t.Fatal("slowloris connection still open after handshake deadline")
	}
}

// evalDigest runs the deterministic multiplier workload (n Evals of a
// fixed pattern sequence) and digests every output bit.
func evalDigest(ip *iplib.IPClient, width, n int) (string, error) {
	inst, err := ip.Bind("MultFastLowPower", width, nil)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	mask := uint64(1)<<width - 1
	for i := 0; i < n; i++ {
		a, b := uint64(i*3+1)&mask, uint64(i*5+2)&mask
		in := make([]signal.Bit, 2*width)
		for j := 0; j < width; j++ {
			if a>>j&1 == 1 {
				in[j] = signal.B1
			}
			if b>>j&1 == 1 {
				in[width+j] = signal.B1
			}
		}
		out, err := inst.Eval(in)
		if err != nil {
			return "", err
		}
		for _, bit := range out {
			h.Write([]byte{byte(bit)})
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TestQuotaExhaustionMidPipeline: a tenant crossing its fee ceiling
// mid-workload starts getting typed over-quota call errors on a
// still-live session, while an unrelated tenant's concurrent workload
// completes with the exact digest of an unpressured run — quota
// enforcement must never poison other tenants.
func TestQuotaExhaustionMidPipeline(t *testing.T) {
	leakcheck.Check(t)
	const width, n = 4, 12
	g, addr, keys := startGateway(t, Config{MaxSessions: 8},
		TenantSpec{Name: "capped", FeeCeilingCents: 0.000001},
		TenantSpec{Name: "free"})

	// Reference digest before any quota pressure exists.
	ref := dial(t, addr, "free", keys["free"])
	want, err := evalDigest(iplib.NewIPClient(ref), width, n)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()
	waitActive(t, g, 0)

	var wg sync.WaitGroup
	var freeDigest string
	var freeErr, cappedErr error
	cappedCli := dial(t, addr, "capped", keys["capped"])
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, cappedErr = evalDigest(iplib.NewIPClient(cappedCli), width, n)
	}()
	go func() {
		defer wg.Done()
		cli := dial(t, addr, "free", keys["free"])
		freeDigest, freeErr = evalDigest(iplib.NewIPClient(cli), width, n)
	}()
	wg.Wait()

	if cappedErr == nil {
		t.Fatal("capped tenant finished its workload under a near-zero fee ceiling")
	}
	var re *rmi.RemoteError
	if !errors.As(cappedErr, &re) {
		t.Fatalf("over-quota error not a RemoteError: %v", cappedErr)
	}
	if got := ReasonOf(cappedErr); got != ReasonOverQuota {
		t.Fatalf("capped tenant error reason = %q (err: %v), want %q", got, cappedErr, ReasonOverQuota)
	}
	if cappedCli.Dead() {
		t.Fatal("over-quota refusals killed the session transport")
	}
	if freeErr != nil {
		t.Fatalf("free tenant workload failed during capped tenant's quota exhaustion: %v", freeErr)
	}
	if freeDigest != want {
		t.Fatalf("free tenant digest changed under a neighbor's quota pressure:\n  got  %s\n  want %s", freeDigest, want)
	}
	m, _ := g.MeterFor("capped")
	if m.OverQuota == 0 {
		t.Fatal("capped tenant's meter recorded no over-quota refusals")
	}
}

// TestMetricsLedgerReconcile: after real traffic, the in-memory meter,
// the persisted ledger file, and the exported metrics all agree on
// every tenant's fees, and the sidecar serves healthz/metrics/pprof.
func TestMetricsLedgerReconcile(t *testing.T) {
	leakcheck.Check(t)
	ledgerPath := t.TempDir() + "/ledger.tsv"
	g, addr, keys := startGateway(t, Config{MaxSessions: 8, LedgerPath: ledgerPath},
		TenantSpec{Name: "alpha"}, TenantSpec{Name: "beta"})
	maddr, err := g.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	for _, tenant := range []string{"alpha", "beta", "alpha"} {
		cli := dial(t, addr, tenant, keys[tenant])
		if _, err := evalDigest(iplib.NewIPClient(cli), 4, 3); err != nil {
			t.Fatal(err)
		}
		cli.Close()
	}
	waitActive(t, g, 0)

	entries, err := ReadLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("ledger file empty after billable traffic")
	}
	sums := map[string]float64{}
	for _, e := range entries {
		sums[e.Tenant] += e.Cents
	}
	for _, tenant := range []string{"alpha", "beta"} {
		m, ok := g.MeterFor(tenant)
		if !ok {
			t.Fatalf("no meter for %s", tenant)
		}
		if m.FeeCents <= 0 {
			t.Fatalf("tenant %s metered no fees", tenant)
		}
		if math.Abs(sums[tenant]-m.FeeCents) > 1e-9 {
			t.Fatalf("tenant %s: ledger file %.9f != meter %.9f", tenant, sums[tenant], m.FeeCents)
		}
		if math.Abs(g.Ledger().Sum(tenant)-m.FeeCents) > 1e-9 {
			t.Fatalf("tenant %s: ledger sum %.9f != meter %.9f", tenant, g.Ledger().Sum(tenant), m.FeeCents)
		}
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + maddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"gocad_gateway_admissions_total 3",
		fmt.Sprintf("gocad_gateway_ledger_entries_total %d", len(entries)),
		`gocad_gateway_tenant_fee_cents_total{tenant="alpha"}`,
		"gocad_gateway_frame_latency_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// TestDrainingRefusesAdmission: once a drain begins, admission returns
// a typed draining refusal and healthz flips to 503.
func TestDrainingRefusesAdmission(t *testing.T) {
	leakcheck.Check(t)
	g, _, _ := startGateway(t, Config{MaxSessions: 4}, TenantSpec{Name: "alpha"})
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
	err := g.admit("alpha", &net.TCPAddr{})
	if got := ReasonOf(err); got != ReasonDraining {
		t.Fatalf("admit while draining: reason %q (err %v), want %q", got, err, ReasonDraining)
	}
	if !g.Draining() {
		t.Fatal("Draining() = false mid-drain")
	}
}

// TestRejectStormLogBounded: a reject storm must not amplify into a
// log storm — within one clock second the gateway emits at most
// logBurstPerSec diagnostic lines no matter how many rejections occur.
func TestRejectStormLogBounded(t *testing.T) {
	leakcheck.Check(t)
	var mu sync.Mutex
	lines := 0
	g, _, _ := startGateway(t, Config{
		MaxSessions: 1,
		Logf: func(string, ...any) {
			mu.Lock()
			lines++
			mu.Unlock()
		},
	}, TenantSpec{Name: "alpha"})
	g.now = func() time.Time { return time.Unix(1000, 0) } // freeze the log window

	g.mu.Lock()
	g.admitted = g.cfg.MaxSessions // saturate without real sessions
	g.mu.Unlock()
	for i := 0; i < 10000; i++ {
		if err := g.admit("alpha", &net.TCPAddr{}); err == nil {
			t.Fatal("admit succeeded at MaxSessions")
		}
	}
	g.mu.Lock()
	g.admitted = 0
	g.mu.Unlock()
	if got := g.metrics.rejectedCap.Load(); got != 10000 {
		t.Fatalf("rejection counter = %d, want 10000", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if lines > logBurstPerSec {
		t.Fatalf("10000 rejections emitted %d log lines, want <= %d", lines, logBurstPerSec)
	}
	if lines == 0 {
		t.Fatal("rejections emitted no log lines at all")
	}
}

// TestImplicitTenantMetered: clients authorized directly on the
// wrapped server (the legacy single-client path) still get a tenant
// record, caps, and metering.
func TestImplicitTenantMetered(t *testing.T) {
	leakcheck.Check(t)
	g, addr, _ := startGateway(t, Config{MaxSessions: 4, MaxConnsPerTenant: 1})
	key, err := security.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	g.Server.Authorize("legacy", key)

	cli := dial(t, addr, "legacy", key)
	if _, err := evalDigest(iplib.NewIPClient(cli), 4, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rmi.Dial(addr, "legacy", key); ReasonOf(err) != ReasonTenantConns {
		t.Fatalf("implicit tenant not capped: %v", err)
	}
	m, ok := g.MeterFor("legacy")
	if !ok || m.Calls == 0 || m.FeeCents <= 0 {
		t.Fatalf("implicit tenant not metered: %+v (ok=%v)", m, ok)
	}
}
