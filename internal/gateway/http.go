package gateway

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeMetrics starts the gateway's HTTP sidecar on addr and returns
// the bound address. The sidecar exposes:
//
//	/healthz       liveness — 200 "ok" while serving, 503 "draining"
//	               once a graceful drain begins (load balancers stop
//	               routing before the listener actually closes)
//	/metrics       Prometheus text exposition (see WriteMetrics)
//	/debug/pprof/  the standard pprof handlers
//
// The sidecar shares the process but not the listener with the RPC
// surface, so it stays scrapeable while the gateway drains; Drain and
// Close shut it down last.
func (g *Gateway) ServeMetrics(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("gateway: closed")
	}
	g.httpSrv = srv
	g.mu.Unlock()
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			g.logfSampled("gateway: metrics sidecar: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// shutdownHTTP stops the sidecar if one is running.
func (g *Gateway) shutdownHTTP() {
	g.mu.Lock()
	srv := g.httpSrv
	g.httpSrv = nil
	g.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if g.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.WriteMetrics(w); err != nil {
		g.logfSampled("gateway: metrics write: %v", err)
	}
}
