package gateway

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LedgerEntry is one append-only billing record: a fee delta observed
// on one tenant session. The ledger is the durable side of usage-fee
// metering — per-tenant sums over its entries reconcile exactly with
// the in-memory Meter.FeeCents.
type LedgerEntry struct {
	When    time.Time
	Tenant  string
	Session string
	Cents   float64
}

// Ledger is an append-only billing log. With a path it persists one
// line per entry (O_APPEND, so restarts extend rather than truncate);
// with an empty path it keeps the running sums in memory only.
type Ledger struct {
	mu   sync.Mutex
	f    *os.File
	sums map[string]float64
	n    int64
}

// OpenLedger opens (creating if needed) the billing ledger at path;
// an empty path yields an in-memory ledger.
func OpenLedger(path string) (*Ledger, error) {
	l := &Ledger{sums: make(map[string]float64)}
	if path == "" {
		return l, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("gateway: open ledger: %w", err)
	}
	l.f = f
	return l, nil
}

// Append records one fee delta.
func (l *Ledger) Append(when time.Time, tenant, session string, cents float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sums[tenant] += cents
	l.n++
	if l.f == nil {
		return nil
	}
	line := fmt.Sprintf("%s\t%s\t%s\t%.6f\n", when.UTC().Format(time.RFC3339Nano), tenant, session, cents)
	if _, err := l.f.WriteString(line); err != nil {
		return fmt.Errorf("gateway: ledger append: %w", err)
	}
	return nil
}

// Sum returns the ledger's running total for one tenant, in cents.
func (l *Ledger) Sum(tenant string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sums[tenant]
}

// Entries returns the number of records appended this process.
func (l *Ledger) Entries() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Close flushes and closes the backing file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// ReadLedger parses a persisted ledger file back into entries —
// loadgen and the reconciliation tests use it to audit the billing
// trail against each tenant's meter.
func ReadLedger(path string) ([]LedgerEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []LedgerEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("gateway: ledger %s: malformed line %q", path, line)
		}
		when, err := time.Parse(time.RFC3339Nano, parts[0])
		if err != nil {
			return nil, fmt.Errorf("gateway: ledger %s: bad timestamp %q: %w", path, parts[0], err)
		}
		cents, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("gateway: ledger %s: bad amount %q: %w", path, parts[3], err)
		}
		out = append(out, LedgerEntry{When: when, Tenant: parts[1], Session: parts[2], Cents: cents})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
