package gateway

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// latencyBuckets are the cumulative histogram bounds (seconds) for
// per-frame dispatch latency, 100µs to 10s on a coarse log scale.
var latencyBuckets = [numLatencyBuckets]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

const numLatencyBuckets = 16

// histogram is a fixed-bucket latency histogram on atomic counters.
type histogram struct {
	counts  [numLatencyBuckets + 1]atomic.Int64 // +1 for +Inf
	sumNano atomic.Int64
	total   atomic.Int64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && s > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNano.Add(int64(d))
	h.total.Add(1)
}

// metrics is the gateway-wide counter set. Per-tenant counters live on
// tenantState; this struct holds what is global: admission outcomes,
// queue depths, call volume, and the frame latency histogram.
type metrics struct {
	admitted     atomic.Int64 // sessions admitted (Admit accepted)
	rejectedCap  atomic.Int64 // rejections: server at MaxSessions
	rejectedTen  atomic.Int64 // rejections: tenant at its conn limit
	rejectedFull atomic.Int64 // rejections: accept queue overflow
	rejectedDrn  atomic.Int64 // rejections: draining
	calls        atomic.Int64
	callsFailed  atomic.Int64
	overQuota    atomic.Int64
	bytesIn      atomic.Int64
	ledgerErrs   atomic.Int64
	latency      histogram
}

// rejectedTotal sums every admission rejection.
func (m *metrics) rejectedTotal() int64 {
	return m.rejectedCap.Load() + m.rejectedTen.Load() + m.rejectedFull.Load() + m.rejectedDrn.Load()
}

// WriteMetrics renders the gateway's state in Prometheus text
// exposition format — the /metrics endpoint body. Tenants render in
// sorted order so scrapes are deterministic.
func (g *Gateway) WriteMetrics(w io.Writer) error {
	m := &g.metrics
	active, queued := g.occupancy()
	var b []byte
	line := func(format string, args ...any) {
		b = fmt.Appendf(b, format, args...)
		b = append(b, '\n')
	}

	line("# HELP gocad_gateway_sessions_active Currently admitted sessions.")
	line("# TYPE gocad_gateway_sessions_active gauge")
	line("gocad_gateway_sessions_active %d", active)
	line("# HELP gocad_gateway_accept_queue_depth Connections inside the bounded accept queue (handshaking or serving beyond admitted sessions).")
	line("# TYPE gocad_gateway_accept_queue_depth gauge")
	line("gocad_gateway_accept_queue_depth %d", queued)
	line("# HELP gocad_gateway_admissions_total Sessions admitted by admission control.")
	line("# TYPE gocad_gateway_admissions_total counter")
	line("gocad_gateway_admissions_total %d", m.admitted.Load())
	line("# HELP gocad_gateway_rejections_total Connections refused by admission control, by typed reason.")
	line("# TYPE gocad_gateway_rejections_total counter")
	line("gocad_gateway_rejections_total{reason=%q} %d", string(ReasonOverCapacity), m.rejectedCap.Load())
	line("gocad_gateway_rejections_total{reason=%q} %d", string(ReasonTenantConns), m.rejectedTen.Load())
	line("gocad_gateway_rejections_total{reason=%q} %d", string(ReasonQueueFull), m.rejectedFull.Load())
	line("gocad_gateway_rejections_total{reason=%q} %d", string(ReasonDraining), m.rejectedDrn.Load())
	line("# HELP gocad_gateway_calls_total Requests dispatched through the gateway.")
	line("# TYPE gocad_gateway_calls_total counter")
	line("gocad_gateway_calls_total %d", m.calls.Load())
	line("# HELP gocad_gateway_calls_failed_total Dispatched requests that returned an error.")
	line("# TYPE gocad_gateway_calls_failed_total counter")
	line("gocad_gateway_calls_failed_total %d", m.callsFailed.Load())
	line("# HELP gocad_gateway_over_quota_total Calls refused at a tenant fee ceiling.")
	line("# TYPE gocad_gateway_over_quota_total counter")
	line("gocad_gateway_over_quota_total %d", m.overQuota.Load())
	line("# HELP gocad_gateway_request_bytes_total Request payload bytes dispatched.")
	line("# TYPE gocad_gateway_request_bytes_total counter")
	line("gocad_gateway_request_bytes_total %d", m.bytesIn.Load())
	line("# HELP gocad_gateway_ledger_errors_total Billing ledger append failures.")
	line("# TYPE gocad_gateway_ledger_errors_total counter")
	line("gocad_gateway_ledger_errors_total %d", m.ledgerErrs.Load())
	line("# HELP gocad_gateway_ledger_entries_total Billing ledger records appended.")
	line("# TYPE gocad_gateway_ledger_entries_total counter")
	line("gocad_gateway_ledger_entries_total %d", g.ledger.Entries())

	meters := g.Meters()
	sort.Slice(meters, func(i, j int) bool { return meters[i].Tenant < meters[j].Tenant })
	line("# HELP gocad_gateway_tenant_sessions_total Admitted sessions per tenant.")
	line("# TYPE gocad_gateway_tenant_sessions_total counter")
	for _, t := range meters {
		line("gocad_gateway_tenant_sessions_total{tenant=%q} %d", t.Tenant, t.Sessions)
	}
	line("# HELP gocad_gateway_tenant_conns Active sessions per tenant.")
	line("# TYPE gocad_gateway_tenant_conns gauge")
	for _, t := range meters {
		line("gocad_gateway_tenant_conns{tenant=%q} %d", t.Tenant, t.ActiveConns)
	}
	line("# HELP gocad_gateway_tenant_calls_total Dispatched requests per tenant.")
	line("# TYPE gocad_gateway_tenant_calls_total counter")
	for _, t := range meters {
		line("gocad_gateway_tenant_calls_total{tenant=%q} %d", t.Tenant, t.Calls)
	}
	line("# HELP gocad_gateway_tenant_fee_cents_total Usage fees metered per tenant, in cents (ledger-reconciled).")
	line("# TYPE gocad_gateway_tenant_fee_cents_total counter")
	for _, t := range meters {
		line("gocad_gateway_tenant_fee_cents_total{tenant=%q} %g", t.Tenant, t.FeeCents)
	}
	line("# HELP gocad_gateway_tenant_over_quota_total Over-quota call refusals per tenant.")
	line("# TYPE gocad_gateway_tenant_over_quota_total counter")
	for _, t := range meters {
		line("gocad_gateway_tenant_over_quota_total{tenant=%q} %d", t.Tenant, t.OverQuota)
	}
	line("# HELP gocad_gateway_tenant_throttle_seconds_total Time spent waiting in per-tenant rate-limit buckets.")
	line("# TYPE gocad_gateway_tenant_throttle_seconds_total counter")
	for _, t := range meters {
		line("gocad_gateway_tenant_throttle_seconds_total{tenant=%q} %g", t.Tenant, t.Throttled.Seconds())
	}

	line("# HELP gocad_gateway_frame_latency_seconds Dispatch latency per request frame (decode to response ready).")
	line("# TYPE gocad_gateway_frame_latency_seconds histogram")
	var cum int64
	for i, le := range latencyBuckets {
		cum += m.latency.counts[i].Load()
		line("gocad_gateway_frame_latency_seconds_bucket{le=%q} %d", fmt.Sprintf("%g", le), cum)
	}
	cum += m.latency.counts[len(latencyBuckets)].Load()
	line(`gocad_gateway_frame_latency_seconds_bucket{le="+Inf"} %d`, cum)
	line("gocad_gateway_frame_latency_seconds_sum %g", time.Duration(m.latency.sumNano.Load()).Seconds())
	line("gocad_gateway_frame_latency_seconds_count %d", m.latency.total.Load())

	_, err := w.Write(b)
	return err
}
