package gateway

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/security"
)

// TenantSpec is one tenant's contract with the provider: identity, the
// shared HMAC session key, and the limits the gateway enforces on its
// behalf. Zero limit fields inherit the gateway's defaults (conns) or
// mean unlimited (rates, ceiling).
type TenantSpec struct {
	// Name is the tenant identity — the client name its sessions
	// authenticate as.
	Name string `json:"name"`
	// Key is the hex-encoded shared session key (security.Key).
	Key string `json:"key"`
	// MaxConns bounds the tenant's concurrent sessions; 0 inherits
	// Config.MaxConnsPerTenant.
	MaxConns int `json:"maxConns,omitempty"`
	// CallsPerSec token-bucket-throttles the tenant's request rate;
	// 0 means unthrottled.
	CallsPerSec float64 `json:"callsPerSec,omitempty"`
	// BytesPerSec token-bucket-throttles the tenant's inbound payload
	// bytes; 0 means unthrottled.
	BytesPerSec float64 `json:"bytesPerSec,omitempty"`
	// FeeCeilingCents caps the tenant's aggregate usage fees: once
	// crossed, further calls fail with a typed over-quota error (the
	// sessions themselves stay up — the client surfaces the error
	// without poisoning unrelated tenants). 0 means unlimited.
	FeeCeilingCents float64 `json:"feeCeilingCents,omitempty"`
}

// SessionKey decodes the tenant's hex session key.
func (t TenantSpec) SessionKey() (security.Key, error) {
	k, err := hex.DecodeString(t.Key)
	if err != nil {
		return nil, fmt.Errorf("gateway: tenant %q: bad key hex: %w", t.Name, err)
	}
	if len(k) == 0 {
		return nil, fmt.Errorf("gateway: tenant %q: empty key", t.Name)
	}
	return security.Key(k), nil
}

// tenantConfig is the on-disk shape of a -tenant-config file.
type tenantConfig struct {
	Tenants []TenantSpec `json:"tenants"`
}

// LoadTenantConfig reads a tenant config file (JSON: {"tenants":[...]}).
func LoadTenantConfig(path string) ([]TenantSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg tenantConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("gateway: tenant config %s: %w", path, err)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("gateway: tenant config %s: no tenants", path)
	}
	seen := make(map[string]bool, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("gateway: tenant config %s: tenant with empty name", path)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("gateway: tenant config %s: duplicate tenant %q", path, t.Name)
		}
		seen[t.Name] = true
		if _, err := t.SessionKey(); err != nil {
			return nil, err
		}
	}
	return cfg.Tenants, nil
}

// WriteTenantConfig writes a tenant config file (0600 — it holds keys).
func WriteTenantConfig(path string, tenants []TenantSpec) error {
	data, err := json.MarshalIndent(tenantConfig{Tenants: tenants}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o600)
}

// Meter is a snapshot of one tenant's usage accounting. FeeCents
// reconciles exactly with the billing ledger: every cent in the meter
// was appended to the ledger as a session fee delta, and vice versa.
type Meter struct {
	Tenant string
	// Sessions counts admitted sessions over the gateway's lifetime;
	// ActiveConns is the current gauge.
	Sessions    int64
	ActiveConns int
	// Calls / FailedCalls count dispatched requests; BytesIn sums their
	// payload bytes.
	Calls       int64
	FailedCalls int64
	BytesIn     int64
	// FeeCents aggregates the usage fees charged across the tenant's
	// sessions (the sess.Charge stream, sampled per call).
	FeeCents float64
	// RejectedConns counts admission rejections attributed to this
	// tenant (its own connection limit); OverQuota counts calls refused
	// at the fee ceiling.
	RejectedConns int64
	OverQuota     int64
	// Throttled is the cumulative time the tenant's calls spent waiting
	// in its rate-limit buckets.
	Throttled time.Duration
}

// tenantState is the gateway's live record for one tenant.
type tenantState struct {
	spec       TenantSpec
	maxConns   int
	callBucket *bucket
	byteBucket *bucket

	mu       sync.Mutex
	conns    int     // active sessions (reserved at Admit, released at SessionClose)
	sessions int64   // lifetime admitted sessions
	calls    int64   // dispatched requests
	failed   int64   // dispatched requests that returned an error
	bytesIn  int64   // request payload bytes
	feeCents float64 // aggregate fees, ledger-reconciled
	rejects  int64   // admission rejections (tenant conn limit)
	over     int64   // over-quota call refusals
	throttle time.Duration
	lastFees map[string]float64 // session ID → last sampled sess.Fees()
}

// newTenantState builds the live record from a spec and the gateway's
// per-tenant defaults.
func newTenantState(spec TenantSpec, defaultMaxConns int) *tenantState {
	maxConns := spec.MaxConns
	if maxConns <= 0 {
		maxConns = defaultMaxConns
	}
	ts := &tenantState{
		spec:     spec,
		maxConns: maxConns,
		lastFees: make(map[string]float64),
	}
	if spec.CallsPerSec > 0 {
		ts.callBucket = newBucket(spec.CallsPerSec, spec.CallsPerSec)
	}
	if spec.BytesPerSec > 0 {
		ts.byteBucket = newBucket(spec.BytesPerSec, spec.BytesPerSec)
	}
	return ts
}

// meter snapshots the tenant's accounting.
func (ts *tenantState) meter() Meter {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return Meter{
		Tenant:        ts.spec.Name,
		Sessions:      ts.sessions,
		ActiveConns:   ts.conns,
		Calls:         ts.calls,
		FailedCalls:   ts.failed,
		BytesIn:       ts.bytesIn,
		FeeCents:      ts.feeCents,
		RejectedConns: ts.rejects,
		OverQuota:     ts.over,
		Throttled:     ts.throttle,
	}
}
