package iplib

import (
	"fmt"

	"repro/internal/wire"
)

// Hand-written wire-format-v1 payload codecs (DESIGN.md §12) for every
// protocol envelope: the batch traffic Table 2 measures (power/timing
// pattern batches), per-call evaluation, the fault-protocol envelopes,
// and the setup envelopes (catalogue, bind, negotiate). Each AppendTo
// appends the struct's fields in declaration order using the primitives
// of internal/wire; each DecodeFrom consumes its input exactly and
// validates every length prefix — payload bytes come off the network.
// The setup envelopes matter less for throughput but still pay gob's
// per-Decoder engine compilation on every call, which dominates the
// bind path once everything else is hand-coded.
//
// These methods implement rmi.BinaryAppender and rmi.BinaryDecoder, so
// under the binary codec rmi.EncodePayload / rmi.Decode bypass
// reflection entirely for these types.

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r EvalReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, r.Instance)
	return wire.AppendBits(b, r.Inputs)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *EvalReq) DecodeFrom(buf []byte) error {
	var err error
	*r = EvalReq{}
	if r.Instance, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: EvalReq instance: %w", err)
	}
	if r.Inputs, buf, err = wire.Bits(buf); err != nil {
		return fmt.Errorf("iplib: EvalReq inputs: %w", err)
	}
	return trailing("EvalReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r EvalResp) AppendTo(b []byte) []byte {
	return wire.AppendBits(b, r.Outputs)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *EvalResp) DecodeFrom(buf []byte) error {
	var err error
	*r = EvalResp{}
	if r.Outputs, buf, err = wire.Bits(buf); err != nil {
		return fmt.Errorf("iplib: EvalResp outputs: %w", err)
	}
	return trailing("EvalResp", buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r PowerBatchReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, r.Instance)
	b = wire.AppendPatterns(b, r.Patterns)
	return wire.AppendBool(b, r.SkipCompute)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *PowerBatchReq) DecodeFrom(buf []byte) error {
	var err error
	*r = PowerBatchReq{}
	if r.Instance, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: PowerBatchReq instance: %w", err)
	}
	if r.Patterns, buf, err = wire.Patterns(buf); err != nil {
		return fmt.Errorf("iplib: PowerBatchReq patterns: %w", err)
	}
	if r.SkipCompute, buf, err = wire.Bool(buf); err != nil {
		return fmt.Errorf("iplib: PowerBatchReq skip-compute: %w", err)
	}
	return trailing("PowerBatchReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r PowerBatchResp) AppendTo(b []byte) []byte {
	b = wire.AppendFloat64s(b, r.PowerPerPattern)
	return wire.AppendFloat64(b, r.FeeCents)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *PowerBatchResp) DecodeFrom(buf []byte) error {
	var err error
	*r = PowerBatchResp{}
	if r.PowerPerPattern, buf, err = wire.Float64s(buf); err != nil {
		return fmt.Errorf("iplib: PowerBatchResp values: %w", err)
	}
	if r.FeeCents, buf, err = wire.Float64(buf); err != nil {
		return fmt.Errorf("iplib: PowerBatchResp fee: %w", err)
	}
	return trailing("PowerBatchResp", buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r TimingBatchReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, r.Instance)
	return wire.AppendPatterns(b, r.Patterns)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *TimingBatchReq) DecodeFrom(buf []byte) error {
	var err error
	*r = TimingBatchReq{}
	if r.Instance, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: TimingBatchReq instance: %w", err)
	}
	if r.Patterns, buf, err = wire.Patterns(buf); err != nil {
		return fmt.Errorf("iplib: TimingBatchReq patterns: %w", err)
	}
	return trailing("TimingBatchReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r TimingBatchResp) AppendTo(b []byte) []byte {
	b = wire.AppendFloat64s(b, r.DelayPerPattern)
	return wire.AppendFloat64(b, r.FeeCents)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *TimingBatchResp) DecodeFrom(buf []byte) error {
	var err error
	*r = TimingBatchResp{}
	if r.DelayPerPattern, buf, err = wire.Float64s(buf); err != nil {
		return fmt.Errorf("iplib: TimingBatchResp values: %w", err)
	}
	if r.FeeCents, buf, err = wire.Float64(buf); err != nil {
		return fmt.Errorf("iplib: TimingBatchResp fee: %w", err)
	}
	return trailing("TimingBatchResp", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r StaticReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, r.Instance)
	return wire.AppendString(b, r.Param)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *StaticReq) DecodeFrom(buf []byte) error {
	var err error
	*r = StaticReq{}
	if r.Instance, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: StaticReq instance: %w", err)
	}
	if r.Param, buf, err = wire.String(buf); err != nil {
		return fmt.Errorf("iplib: StaticReq param: %w", err)
	}
	return trailing("StaticReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r StaticResp) AppendTo(b []byte) []byte {
	return wire.AppendFloat64(b, r.Value)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *StaticResp) DecodeFrom(buf []byte) error {
	var err error
	*r = StaticResp{}
	if r.Value, buf, err = wire.Float64(buf); err != nil {
		return fmt.Errorf("iplib: StaticResp value: %w", err)
	}
	return trailing("StaticResp", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r FaultListReq) AppendTo(b []byte) []byte {
	return wire.AppendUvarint(b, r.Instance)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *FaultListReq) DecodeFrom(buf []byte) error {
	var err error
	*r = FaultListReq{}
	if r.Instance, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: FaultListReq instance: %w", err)
	}
	return trailing("FaultListReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r FaultListResp) AppendTo(b []byte) []byte {
	return wire.AppendStrings(b, r.Names)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *FaultListResp) DecodeFrom(buf []byte) error {
	var err error
	*r = FaultListResp{}
	if r.Names, buf, err = wire.Strings(buf); err != nil {
		return fmt.Errorf("iplib: FaultListResp names: %w", err)
	}
	return trailing("FaultListResp", buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r FaultTableReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, r.Instance)
	return wire.AppendBits(b, r.Inputs)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *FaultTableReq) DecodeFrom(buf []byte) error {
	var err error
	*r = FaultTableReq{}
	if r.Instance, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: FaultTableReq instance: %w", err)
	}
	if r.Inputs, buf, err = wire.Bits(buf); err != nil {
		return fmt.Errorf("iplib: FaultTableReq inputs: %w", err)
	}
	return trailing("FaultTableReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r FaultTableResp) AppendTo(b []byte) []byte {
	return r.Table.AppendTo(b)
}

// DecodeFrom implements rmi.BinaryDecoder. The table is the whole
// payload, so its own exact-consumption decode applies directly.
func (r *FaultTableResp) DecodeFrom(buf []byte) error {
	*r = FaultTableResp{}
	return r.Table.DecodeFrom(buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r TestSetReq) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, r.Instance)
	b = wire.AppendVarint(b, int64(r.MaxCandidates))
	return wire.AppendVarint(b, r.Seed)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *TestSetReq) DecodeFrom(buf []byte) error {
	var err error
	*r = TestSetReq{}
	if r.Instance, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: TestSetReq instance: %w", err)
	}
	var mc int64
	if mc, buf, err = wire.Varint(buf); err != nil {
		return fmt.Errorf("iplib: TestSetReq max candidates: %w", err)
	}
	r.MaxCandidates = int(mc)
	if r.Seed, buf, err = wire.Varint(buf); err != nil {
		return fmt.Errorf("iplib: TestSetReq seed: %w", err)
	}
	return trailing("TestSetReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
//
//gocad:noalloc
func (r TestSetResp) AppendTo(b []byte) []byte {
	b = wire.AppendPatterns(b, r.Patterns)
	b = wire.AppendFloat64(b, r.Coverage)
	return wire.AppendFloat64(b, r.FeeCents)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *TestSetResp) DecodeFrom(buf []byte) error {
	var err error
	*r = TestSetResp{}
	if r.Patterns, buf, err = wire.Patterns(buf); err != nil {
		return fmt.Errorf("iplib: TestSetResp patterns: %w", err)
	}
	if r.Coverage, buf, err = wire.Float64(buf); err != nil {
		return fmt.Errorf("iplib: TestSetResp coverage: %w", err)
	}
	if r.FeeCents, buf, err = wire.Float64(buf); err != nil {
		return fmt.Errorf("iplib: TestSetResp fee: %w", err)
	}
	return trailing("TestSetResp", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (FeesReq) AppendTo(b []byte) []byte { return b }

// DecodeFrom implements rmi.BinaryDecoder.
func (r *FeesReq) DecodeFrom(buf []byte) error {
	*r = FeesReq{}
	return trailing("FeesReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r FeesResp) AppendTo(b []byte) []byte {
	return wire.AppendFloat64(b, r.TotalCents)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *FeesResp) DecodeFrom(buf []byte) error {
	var err error
	*r = FeesResp{}
	if r.TotalCents, buf, err = wire.Float64(buf); err != nil {
		return fmt.Errorf("iplib: FeesResp total: %w", err)
	}
	return trailing("FeesResp", buf)
}

// appendOffer / decodeOffer are the shared EstimatorOffer sub-codec
// (used by the negotiate, bind and catalogue envelopes).
func appendOffer(b []byte, o EstimatorOffer) []byte {
	b = wire.AppendString(b, o.Name)
	b = wire.AppendString(b, o.Param)
	b = wire.AppendFloat64(b, o.ErrPct)
	b = wire.AppendFloat64(b, o.CostCents)
	b = wire.AppendFloat64(b, o.CPUTimeMS)
	return wire.AppendBool(b, o.Remote)
}

func decodeOffer(buf []byte) (EstimatorOffer, []byte, error) {
	var o EstimatorOffer
	var err error
	if o.Name, buf, err = wire.String(buf); err != nil {
		return o, buf, err
	}
	if o.Param, buf, err = wire.String(buf); err != nil {
		return o, buf, err
	}
	if o.ErrPct, buf, err = wire.Float64(buf); err != nil {
		return o, buf, err
	}
	if o.CostCents, buf, err = wire.Float64(buf); err != nil {
		return o, buf, err
	}
	if o.CPUTimeMS, buf, err = wire.Float64(buf); err != nil {
		return o, buf, err
	}
	o.Remote, buf, err = wire.Bool(buf)
	return o, buf, err
}

func appendOffers(b []byte, os []EstimatorOffer) []byte {
	b = wire.AppendUvarint(b, uint64(len(os)))
	for _, o := range os {
		b = appendOffer(b, o)
	}
	return b
}

func decodeOffers(buf []byte) ([]EstimatorOffer, []byte, error) {
	n, buf, err := wire.Uvarint(buf)
	if err != nil {
		return nil, buf, err
	}
	// Each offer spans ≥ 28 bytes (two length prefixes, three floats, a
	// bool); bound the prealloc by what the buffer can actually hold.
	if n > uint64(len(buf)/28)+1 {
		return nil, buf, fmt.Errorf("iplib: offer count %d exceeds buffer", n)
	}
	if n == 0 {
		return nil, buf, nil
	}
	out := make([]EstimatorOffer, 0, n)
	for i := uint64(0); i < n; i++ {
		var o EstimatorOffer
		if o, buf, err = decodeOffer(buf); err != nil {
			return nil, buf, err
		}
		out = append(out, o)
	}
	return out, buf, nil
}

// AppendTo implements rmi.BinaryAppender.
func (r NegotiateReq) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, r.Component)
	b = wire.AppendUvarint(b, uint64(len(r.Constraints)))
	for _, c := range r.Constraints {
		b = wire.AppendString(b, c.Param)
		b = wire.AppendFloat64(b, c.MaxErrPct)
		b = wire.AppendFloat64(b, c.MaxCostCents)
		b = wire.AppendBool(b, c.ForbidRemote)
	}
	return b
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *NegotiateReq) DecodeFrom(buf []byte) error {
	var err error
	*r = NegotiateReq{}
	if r.Component, buf, err = wire.String(buf); err != nil {
		return fmt.Errorf("iplib: NegotiateReq component: %w", err)
	}
	var n uint64
	if n, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: NegotiateReq count: %w", err)
	}
	// A constraint spans ≥ 18 bytes (prefix, two floats, a bool).
	if n > uint64(len(buf)/18)+1 {
		return fmt.Errorf("iplib: NegotiateReq constraint count %d exceeds buffer", n)
	}
	for i := uint64(0); i < n; i++ {
		var c ModelConstraint
		if c.Param, buf, err = wire.String(buf); err != nil {
			return fmt.Errorf("iplib: NegotiateReq constraint param: %w", err)
		}
		if c.MaxErrPct, buf, err = wire.Float64(buf); err != nil {
			return fmt.Errorf("iplib: NegotiateReq constraint err: %w", err)
		}
		if c.MaxCostCents, buf, err = wire.Float64(buf); err != nil {
			return fmt.Errorf("iplib: NegotiateReq constraint cost: %w", err)
		}
		if c.ForbidRemote, buf, err = wire.Bool(buf); err != nil {
			return fmt.Errorf("iplib: NegotiateReq constraint remote: %w", err)
		}
		r.Constraints = append(r.Constraints, c)
	}
	return trailing("NegotiateReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r NegotiateResp) AppendTo(b []byte) []byte {
	b = appendOffers(b, r.Offers)
	return wire.AppendStrings(b, r.Rejections)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *NegotiateResp) DecodeFrom(buf []byte) error {
	var err error
	*r = NegotiateResp{}
	if r.Offers, buf, err = decodeOffers(buf); err != nil {
		return fmt.Errorf("iplib: NegotiateResp offers: %w", err)
	}
	if r.Rejections, buf, err = wire.Strings(buf); err != nil {
		return fmt.Errorf("iplib: NegotiateResp rejections: %w", err)
	}
	return trailing("NegotiateResp", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (CatalogueReq) AppendTo(b []byte) []byte { return b }

// DecodeFrom implements rmi.BinaryDecoder.
func (r *CatalogueReq) DecodeFrom(buf []byte) error {
	*r = CatalogueReq{}
	return trailing("CatalogueReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r CatalogueResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(r.Specs)))
	for _, s := range r.Specs {
		b = wire.AppendString(b, s.Name)
		b = wire.AppendString(b, s.Description)
		b = wire.AppendVarint(b, int64(s.MinWidth))
		b = wire.AppendVarint(b, int64(s.MaxWidth))
		b = wire.AppendString(b, s.PublicFactory)
		b = appendOffers(b, s.Estimators)
		b = wire.AppendBool(b, s.Testability)
		b = wire.AppendFloat64(b, s.LicenseCents)
	}
	return b
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *CatalogueResp) DecodeFrom(buf []byte) error {
	var err error
	*r = CatalogueResp{}
	var n uint64
	if n, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: CatalogueResp count: %w", err)
	}
	// A spec spans ≥ 16 bytes (five prefixes, two varints, bool, float).
	if n > uint64(len(buf)/16)+1 {
		return fmt.Errorf("iplib: CatalogueResp spec count %d exceeds buffer", n)
	}
	for i := uint64(0); i < n; i++ {
		var s ComponentSpec
		if s.Name, buf, err = wire.String(buf); err != nil {
			return fmt.Errorf("iplib: CatalogueResp name: %w", err)
		}
		if s.Description, buf, err = wire.String(buf); err != nil {
			return fmt.Errorf("iplib: CatalogueResp description: %w", err)
		}
		var w int64
		if w, buf, err = wire.Varint(buf); err != nil {
			return fmt.Errorf("iplib: CatalogueResp min width: %w", err)
		}
		s.MinWidth = int(w)
		if w, buf, err = wire.Varint(buf); err != nil {
			return fmt.Errorf("iplib: CatalogueResp max width: %w", err)
		}
		s.MaxWidth = int(w)
		if s.PublicFactory, buf, err = wire.String(buf); err != nil {
			return fmt.Errorf("iplib: CatalogueResp factory: %w", err)
		}
		if s.Estimators, buf, err = decodeOffers(buf); err != nil {
			return fmt.Errorf("iplib: CatalogueResp estimators: %w", err)
		}
		if s.Testability, buf, err = wire.Bool(buf); err != nil {
			return fmt.Errorf("iplib: CatalogueResp testability: %w", err)
		}
		if s.LicenseCents, buf, err = wire.Float64(buf); err != nil {
			return fmt.Errorf("iplib: CatalogueResp license: %w", err)
		}
		r.Specs = append(r.Specs, s)
	}
	return trailing("CatalogueResp", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r BindReq) AppendTo(b []byte) []byte {
	b = wire.AppendString(b, r.Component)
	b = wire.AppendVarint(b, int64(r.Width))
	return wire.AppendStrings(b, r.Models)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *BindReq) DecodeFrom(buf []byte) error {
	var err error
	*r = BindReq{}
	if r.Component, buf, err = wire.String(buf); err != nil {
		return fmt.Errorf("iplib: BindReq component: %w", err)
	}
	var w int64
	if w, buf, err = wire.Varint(buf); err != nil {
		return fmt.Errorf("iplib: BindReq width: %w", err)
	}
	r.Width = int(w)
	if r.Models, buf, err = wire.Strings(buf); err != nil {
		return fmt.Errorf("iplib: BindReq models: %w", err)
	}
	return trailing("BindReq", buf)
}

// AppendTo implements rmi.BinaryAppender.
func (r BindResp) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, r.Instance)
	b = wire.AppendFloat64(b, r.LicenseCents)
	return appendOffers(b, r.Enabled)
}

// DecodeFrom implements rmi.BinaryDecoder.
func (r *BindResp) DecodeFrom(buf []byte) error {
	var err error
	*r = BindResp{}
	if r.Instance, buf, err = wire.Uvarint(buf); err != nil {
		return fmt.Errorf("iplib: BindResp instance: %w", err)
	}
	if r.LicenseCents, buf, err = wire.Float64(buf); err != nil {
		return fmt.Errorf("iplib: BindResp license: %w", err)
	}
	if r.Enabled, buf, err = decodeOffers(buf); err != nil {
		return fmt.Errorf("iplib: BindResp enabled: %w", err)
	}
	return trailing("BindResp", buf)
}

// trailing rejects unconsumed payload bytes: every DecodeFrom must eat
// its input exactly or the frame is corrupt.
func trailing(typ string, buf []byte) error {
	if len(buf) != 0 {
		return fmt.Errorf("iplib: %d trailing bytes after %s", len(buf), typ)
	}
	return nil
}
