package iplib

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/rmi"
	"repro/internal/signal"
)

// pair couples one envelope value with the zero-valued pointer the
// decode side fills in, mirroring how rmi dispatches payloads.
type pair struct {
	name string
	in   any // envelope value (rmi.BinaryAppender)
	out  any // pointer to zero value (rmi.BinaryDecoder)
}

func binaryPairs() []pair {
	bits := []signal.Bit{signal.B0, signal.B1, signal.BX, signal.BZ, signal.B1}
	patterns := [][]signal.Bit{bits, {signal.B1}, nil, {signal.B0, signal.B0, signal.B0, signal.B0}}
	table := fault.DetectionTable{
		Input:     signal.Word{Bits: bits},
		FaultFree: signal.Word{Bits: []signal.Bit{signal.B1, signal.B0}},
		Rows: []fault.DetectionRow{
			{Output: signal.Word{Bits: []signal.Bit{signal.B0, signal.B1}}, Faults: []string{"f3/sa0", "f7/sa1"}},
			{Output: signal.Word{}, Faults: nil},
		},
	}
	return []pair{
		{"EvalReq", EvalReq{Instance: 42, Inputs: bits}, &EvalReq{}},
		{"EvalReq/empty", EvalReq{}, &EvalReq{}},
		{"EvalResp", EvalResp{Outputs: bits}, &EvalResp{}},
		{"PowerBatchReq", PowerBatchReq{Instance: 7, Patterns: patterns, SkipCompute: true}, &PowerBatchReq{}},
		{"PowerBatchReq/empty", PowerBatchReq{}, &PowerBatchReq{}},
		{"PowerBatchResp", PowerBatchResp{PowerPerPattern: []float64{0.25, -1e300, 0}, FeeCents: 12.5}, &PowerBatchResp{}},
		{"TimingBatchReq", TimingBatchReq{Instance: 1 << 60, Patterns: patterns}, &TimingBatchReq{}},
		{"TimingBatchResp", TimingBatchResp{DelayPerPattern: []float64{13.25}, FeeCents: 0.01}, &TimingBatchResp{}},
		{"StaticReq", StaticReq{Instance: 3, Param: "area"}, &StaticReq{}},
		{"StaticResp", StaticResp{Value: 128.5}, &StaticResp{}},
		{"FaultListReq", FaultListReq{Instance: 9}, &FaultListReq{}},
		{"FaultListResp", FaultListResp{Names: []string{"a/sa0", "b/sa1", ""}}, &FaultListResp{}},
		{"FaultTableReq", FaultTableReq{Instance: 5, Inputs: bits}, &FaultTableReq{}},
		{"FaultTableResp", FaultTableResp{Table: table}, &FaultTableResp{}},
		{"FaultTableResp/empty", FaultTableResp{}, &FaultTableResp{}},
		{"TestSetReq", TestSetReq{Instance: 2, MaxCandidates: 31, Seed: -12345}, &TestSetReq{}},
		{"TestSetResp", TestSetResp{Patterns: patterns, Coverage: 0.75, FeeCents: 3}, &TestSetResp{}},
		{"FeesReq", FeesReq{}, &FeesReq{}},
		{"FeesResp", FeesResp{TotalCents: 99.75}, &FeesResp{}},
		{"NegotiateReq", NegotiateReq{Component: "Mult", Constraints: []ModelConstraint{
			{Param: "power", MaxErrPct: 5, MaxCostCents: 0.25, ForbidRemote: true},
			{Param: "", MaxErrPct: -1, MaxCostCents: 0, ForbidRemote: false},
		}}, &NegotiateReq{}},
		{"NegotiateReq/empty", NegotiateReq{}, &NegotiateReq{}},
		{"NegotiateResp", NegotiateResp{Offers: []EstimatorOffer{
			{Name: "pw-fast", Param: "power", ErrPct: 8, CostCents: 0.1, CPUTimeMS: 2.5, Remote: true},
		}, Rejections: []string{"", "too pricey"}}, &NegotiateResp{}},
		{"CatalogueReq", CatalogueReq{}, &CatalogueReq{}},
		{"CatalogueResp", CatalogueResp{Specs: []ComponentSpec{
			{Name: "Mult", Description: "fast\x00multiplier", MinWidth: 2, MaxWidth: 64,
				PublicFactory: "mult", Testability: true, LicenseCents: 150,
				Estimators: []EstimatorOffer{{Name: "pw", Param: "power", ErrPct: 3}}},
			{Name: "Add", MinWidth: 1, MaxWidth: 8},
		}}, &CatalogueResp{}},
		{"CatalogueResp/empty", CatalogueResp{}, &CatalogueResp{}},
		{"BindReq", BindReq{Component: "Mult", Width: 16, Models: []string{"pw", "tm"}}, &BindReq{}},
		{"BindResp", BindResp{Instance: 11, LicenseCents: 150, Enabled: []EstimatorOffer{
			{Name: "pw", Param: "power", ErrPct: 3, CostCents: 0.5, CPUTimeMS: 1, Remote: true},
		}}, &BindResp{}},
	}
}

// TestBinaryPayloadRoundTrip proves every hand-written payload codec is
// the identity through the rmi payload path: EncodePayload under the
// binary codec must produce a binary-tagged payload, and Decode must
// reconstruct the envelope exactly.
func TestBinaryPayloadRoundTrip(t *testing.T) {
	for _, p := range binaryPairs() {
		t.Run(p.name, func(t *testing.T) {
			if _, ok := p.in.(rmi.BinaryAppender); !ok {
				t.Fatalf("%T does not implement rmi.BinaryAppender", p.in)
			}
			if _, ok := p.out.(rmi.BinaryDecoder); !ok {
				t.Fatalf("%T does not implement rmi.BinaryDecoder", p.out)
			}
			raw, err := rmi.EncodePayload(p.in, rmi.CodecBinary)
			if err != nil {
				t.Fatal(err)
			}
			if len(raw) == 0 || raw[0] != 0x00 {
				t.Fatalf("binary payload not tagged: % x", raw)
			}
			if err := rmi.Decode(raw, p.out); err != nil {
				t.Fatal(err)
			}
			got := reflect.ValueOf(p.out).Elem().Interface()
			if !reflect.DeepEqual(got, p.in) {
				t.Errorf("round trip mutated envelope:\n in: %#v\nout: %#v", p.in, got)
			}
		})
	}
}

// TestBinaryPayloadGobParity proves codec interchangeability at the
// payload level: the same envelope travels through gob (as on a
// gob-codec connection) and through the binary codec, and both decodes
// agree field for field.
func TestBinaryPayloadGobParity(t *testing.T) {
	for _, p := range binaryPairs() {
		t.Run(p.name, func(t *testing.T) {
			viaGob, err := rmi.EncodePayload(p.in, rmi.CodecGob)
			if err != nil {
				t.Fatal(err)
			}
			if len(viaGob) > 0 && viaGob[0] == 0x00 {
				t.Fatalf("gob payload carries the binary tag: % x", viaGob)
			}
			gobOut := reflect.New(reflect.TypeOf(p.in))
			if err := rmi.Decode(viaGob, gobOut.Interface()); err != nil {
				t.Fatal(err)
			}
			viaBin, err := rmi.EncodePayload(p.in, rmi.CodecBinary)
			if err != nil {
				t.Fatal(err)
			}
			binOut := reflect.New(reflect.TypeOf(p.in))
			if err := rmi.Decode(viaBin, binOut.Interface()); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gobOut.Elem().Interface(), binOut.Elem().Interface()) {
				t.Errorf("codecs decode differently:\ngob: %#v\nbin: %#v",
					gobOut.Elem().Interface(), binOut.Elem().Interface())
			}
		})
	}
}

// TestBinaryPayloadTruncationErrors feeds every proper prefix of every
// encoding to the decoder: each must fail cleanly — no panic, no silent
// success on a short buffer.
func TestBinaryPayloadTruncationErrors(t *testing.T) {
	for _, p := range binaryPairs() {
		raw, err := rmi.EncodePayload(p.in, rmi.CodecBinary)
		if err != nil {
			t.Fatal(err)
		}
		body := raw[1:] // strip the codec tag; DecodeFrom sees the body
		dec := p.out.(rmi.BinaryDecoder)
		for cut := 0; cut < len(body); cut++ {
			if err := dec.DecodeFrom(body[:cut]); err == nil {
				// A proper prefix may decode only if the full encoding is
				// empty (FeesReq) — otherwise it must error.
				t.Errorf("%s: decode of %d/%d-byte prefix succeeded", p.name, cut, len(body))
			}
		}
	}
}

// TestBinaryPayloadTrailingBytesError: extra bytes after a valid
// encoding must be rejected, keeping the encoding canonical.
func TestBinaryPayloadTrailingBytesError(t *testing.T) {
	for _, p := range binaryPairs() {
		raw, err := rmi.EncodePayload(p.in, rmi.CodecBinary)
		if err != nil {
			t.Fatal(err)
		}
		dec := p.out.(rmi.BinaryDecoder)
		if err := dec.DecodeFrom(append(append([]byte(nil), raw[1:]...), 0xEE)); err == nil {
			t.Errorf("%s: decode with a trailing byte succeeded", p.name)
		}
	}
}
