package iplib

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/rmi"
	"repro/internal/signal"
)

// IPClient is the typed stub layer over one provider session — the
// downloaded RMI stub of the paper's three-part component split. It
// carries no IP: every method is a thin envelope around internal/rmi.
type IPClient struct {
	// RPC is the underlying authenticated client (exposed so callers can
	// set the network profile and meter).
	RPC *rmi.Client

	// journal, when armed via EnableRecovery, replays session state
	// (binds, estimation batches) after an automatic reconnect.
	journal *sessionJournal
}

// NewIPClient wraps an authenticated RPC client.
func NewIPClient(rpc *rmi.Client) *IPClient { return &IPClient{RPC: rpc} }

// Catalogue lists the provider's components.
func (c *IPClient) Catalogue() ([]ComponentSpec, error) {
	var resp CatalogueResp
	if err := c.RPC.Call(MethodCatalogue, CatalogueReq{}, &resp); err != nil {
		return nil, err
	}
	return resp.Specs, nil
}

// Bind instantiates a component at the given width with the selected
// models (nil = all offered) and returns the bound instance.
func (c *IPClient) Bind(component string, width int, models []string) (*BoundInstance, error) {
	var resp BindResp
	err := c.RPC.Call(MethodBind, BindReq{Component: component, Width: width, Models: models}, &resp)
	if err != nil {
		return nil, err
	}
	return &BoundInstance{client: c, id: resp.Instance, component: component, width: width, enabled: resp.Enabled}, nil
}

// Negotiate asks the provider for its best admissible offer per
// constraint before binding. Offers[i]/Rejections[i] align with
// constraints[i]; an empty rejection means the offer stands.
func (c *IPClient) Negotiate(component string, constraints []ModelConstraint) (*NegotiateResp, error) {
	var resp NegotiateResp
	req := NegotiateReq{Component: component, Constraints: constraints}
	if err := c.RPC.Call(MethodNegotiate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Fees returns the session's accumulated bill in cents.
func (c *IPClient) Fees() (float64, error) {
	var resp FeesResp
	if err := c.RPC.Call(MethodFees, FeesReq{}, &resp); err != nil {
		return 0, err
	}
	return resp.TotalCents, nil
}

// BoundInstance is one instantiated remote component.
type BoundInstance struct {
	client    *IPClient
	id        uint64
	component string
	width     int
	enabled   []EstimatorOffer
}

// ID returns the provider-side instance handle.
func (b *BoundInstance) ID() uint64 { return b.id }

// Width returns the negotiated instantiation width.
func (b *BoundInstance) Width() int { return b.width }

// Component returns the catalogue name.
func (b *BoundInstance) Component() string { return b.component }

// Enabled returns the estimator offers enabled at bind time.
func (b *BoundInstance) Enabled() []EstimatorOffer {
	return append([]EstimatorOffer(nil), b.enabled...)
}

// Meter returns the session's network meter (nil when unmetered).
func (b *BoundInstance) Meter() *netsim.Meter { return b.client.RPC.Meter }

// Eval evaluates the component functionality remotely (the MR path).
func (b *BoundInstance) Eval(inputs []signal.Bit) ([]signal.Bit, error) {
	var resp EvalResp
	err := b.client.RPC.Call(MethodEval, EvalReq{Instance: b.id, Inputs: inputs}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Outputs, nil
}

// PowerBatch runs the provider's gate-level power estimator over a
// buffered pattern sequence, returning per-pattern power.
func (b *BoundInstance) PowerBatch(patterns [][]signal.Bit, skipCompute bool) ([]float64, error) {
	var resp PowerBatchResp
	req := PowerBatchReq{Instance: b.id, Patterns: patterns, SkipCompute: skipCompute}
	if err := b.client.RPC.Call(MethodPowerBatch, req, &resp); err != nil {
		return nil, err
	}
	return resp.PowerPerPattern, nil
}

// PowerBatchAsync is PowerBatch on a worker goroutine — the nonblocking
// estimation path. The callback runs when the batch completes.
func (b *BoundInstance) PowerBatchAsync(patterns [][]signal.Bit, skipCompute bool, done func([]float64, error)) {
	resp := new(PowerBatchResp)
	req := PowerBatchReq{Instance: b.id, Patterns: patterns, SkipCompute: skipCompute}
	p := b.client.RPC.Go(MethodPowerBatch, req, resp)
	go func() {
		<-p.Done
		if err := p.Err(); err != nil {
			done(nil, err)
			return
		}
		done(resp.PowerPerPattern, nil)
	}()
}

// TimingBatch runs the provider's input-dependent timing analysis over a
// buffered pattern sequence, returning per-pattern switching delay (ps).
func (b *BoundInstance) TimingBatch(patterns [][]signal.Bit) ([]float64, error) {
	var resp TimingBatchResp
	req := TimingBatchReq{Instance: b.id, Patterns: patterns}
	if err := b.client.RPC.Call(MethodTimingBatch, req, &resp); err != nil {
		return nil, err
	}
	return resp.DelayPerPattern, nil
}

// Static returns a static metric computed from the private implementation
// (area in equivalent gates, delay in picoseconds).
func (b *BoundInstance) Static(param string) (float64, error) {
	var resp StaticResp
	if err := b.client.RPC.Call(MethodStatic, StaticReq{Instance: b.id, Param: param}, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// TestSet purchases a compacted test sequence for the component.
func (b *BoundInstance) TestSet(maxCandidates int, seed int64) (*fault.TestSet, error) {
	var resp TestSetResp
	req := TestSetReq{Instance: b.id, MaxCandidates: maxCandidates, Seed: seed}
	if err := b.client.RPC.Call(MethodTestSet, req, &resp); err != nil {
		return nil, err
	}
	return &fault.TestSet{Patterns: resp.Patterns, Coverage: resp.Coverage}, nil
}

// FaultList implements fault.TestabilityService.
func (b *BoundInstance) FaultList() ([]string, error) {
	var resp FaultListResp
	if err := b.client.RPC.Call(MethodFaultList, FaultListReq{Instance: b.id}, &resp); err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// DetectionTable implements fault.TestabilityService.
func (b *BoundInstance) DetectionTable(inputs []signal.Bit) (*fault.DetectionTable, error) {
	var resp FaultTableResp
	req := FaultTableReq{Instance: b.id, Inputs: inputs}
	if err := b.client.RPC.Call(MethodFaultTable, req, &resp); err != nil {
		return nil, err
	}
	return &resp.Table, nil
}

// compile-time check: a bound instance is a remote testability service.
var _ fault.TestabilityService = (*BoundInstance)(nil)

// String identifies the instance in diagnostics.
func (b *BoundInstance) String() string {
	return fmt.Sprintf("%s#%d(width=%d)", b.component, b.id, b.width)
}
