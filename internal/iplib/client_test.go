package iplib

import (
	"net"
	"testing"

	"repro/internal/fault"
	"repro/internal/rmi"
	"repro/internal/security"
	"repro/internal/signal"
)

// fakeProvider implements just enough of the wire protocol to exercise
// every client stub, without importing internal/provider (which would be
// an import cycle).
func fakeProvider(t *testing.T) *IPClient {
	t.Helper()
	srv := rmi.NewServer("fake")
	key, err := security.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	srv.Authorize("u", key)

	srv.Handle(MethodCatalogue, func(s *rmi.Session, p []byte) (any, error) {
		return CatalogueResp{Specs: []ComponentSpec{{
			Name: "Thing", MinWidth: 1, MaxWidth: 8, PublicFactory: "behavioral-mult",
		}}}, nil
	})
	srv.Handle(MethodBind, func(s *rmi.Session, p []byte) (any, error) {
		var req BindReq
		if err := rmi.Decode(p, &req); err != nil {
			return nil, err
		}
		return BindResp{Instance: 7, LicenseCents: 3,
			Enabled: []EstimatorOffer{{Name: "e", Param: "power.avg", Remote: true}}}, nil
	})
	srv.Handle(MethodEval, func(s *rmi.Session, p []byte) (any, error) {
		var req EvalReq
		if err := rmi.Decode(p, &req); err != nil {
			return nil, err
		}
		out := make([]signal.Bit, len(req.Inputs))
		for i, b := range req.Inputs {
			out[i] = b.Not()
		}
		return EvalResp{Outputs: out}, nil
	})
	srv.Handle(MethodPowerBatch, func(s *rmi.Session, p []byte) (any, error) {
		var req PowerBatchReq
		if err := rmi.Decode(p, &req); err != nil {
			return nil, err
		}
		if req.SkipCompute {
			return PowerBatchResp{FeeCents: 1}, nil
		}
		vals := make([]float64, len(req.Patterns))
		for i := range vals {
			vals[i] = float64(i)
		}
		return PowerBatchResp{PowerPerPattern: vals, FeeCents: 1}, nil
	})
	srv.Handle(MethodStatic, func(s *rmi.Session, p []byte) (any, error) {
		return StaticResp{Value: 123}, nil
	})
	srv.Handle(MethodFaultList, func(s *rmi.Session, p []byte) (any, error) {
		return FaultListResp{Names: []string{"f0sa0"}}, nil
	})
	srv.Handle(MethodFaultTable, func(s *rmi.Session, p []byte) (any, error) {
		return FaultTableResp{Table: fault.DetectionTable{
			Input:     signal.WordFromUint64(1, 2),
			FaultFree: signal.WordFromUint64(0, 1),
			Rows: []fault.DetectionRow{
				{Output: signal.WordFromUint64(1, 1), Faults: []string{"f0sa0"}},
			},
		}}, nil
	})
	srv.Handle(MethodTestSet, func(s *rmi.Session, p []byte) (any, error) {
		return TestSetResp{
			Patterns: [][]signal.Bit{{signal.B1, signal.B0}},
			Coverage: 0.5, FeeCents: 2,
		}, nil
	})
	srv.Handle(MethodNegotiate, func(s *rmi.Session, p []byte) (any, error) {
		var req NegotiateReq
		if err := rmi.Decode(p, &req); err != nil {
			return nil, err
		}
		resp := NegotiateResp{
			Offers:     make([]EstimatorOffer, len(req.Constraints)),
			Rejections: make([]string, len(req.Constraints)),
		}
		for i := range req.Constraints {
			resp.Offers[i] = EstimatorOffer{Name: "best", Param: req.Constraints[i].Param}
		}
		return resp, nil
	})
	srv.Handle(MethodFees, func(s *rmi.Session, p []byte) (any, error) {
		return FeesResp{TotalCents: s.Fees()}, nil
	})

	a, b := net.Pipe()
	go srv.ServeConn(a)
	rpc, err := rmi.NewClient(b, "u", key)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rpc.Close() })
	return NewIPClient(rpc)
}

func TestClientCatalogueStub(t *testing.T) {
	c := fakeProvider(t)
	specs, err := c.Catalogue()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "Thing" {
		t.Errorf("catalogue = %+v", specs)
	}
}

func TestClientBindAndAccessors(t *testing.T) {
	c := fakeProvider(t)
	b, err := c.Bind("Thing", 4, []string{"e"})
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() != 7 || b.Width() != 4 || b.Component() != "Thing" {
		t.Errorf("bound = %v", b)
	}
	if len(b.Enabled()) != 1 || !b.Enabled()[0].Remote {
		t.Errorf("enabled = %v", b.Enabled())
	}
	if b.String() == "" {
		t.Error("String empty")
	}
	if b.Meter() != nil {
		t.Error("unmetered client returned a meter")
	}
}

func TestClientEvalStub(t *testing.T) {
	c := fakeProvider(t)
	b, _ := c.Bind("Thing", 4, nil)
	out, err := b.Eval([]signal.Bit{signal.B1, signal.B0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != signal.B0 || out[1] != signal.B1 {
		t.Errorf("eval = %v", out)
	}
}

func TestClientPowerBatchStub(t *testing.T) {
	c := fakeProvider(t)
	b, _ := c.Bind("Thing", 4, nil)
	vals, err := b.PowerBatch([][]signal.Bit{{signal.B0}, {signal.B1}}, false)
	if err != nil || len(vals) != 2 {
		t.Fatalf("power = %v, %v", vals, err)
	}
	ack, err := b.PowerBatch(nil, true)
	if err != nil || len(ack) != 0 {
		t.Fatalf("skip-compute = %v, %v", ack, err)
	}
	done := make(chan struct{})
	b.PowerBatchAsync([][]signal.Bit{{signal.B1}}, false, func(vals []float64, err error) {
		if err != nil || len(vals) != 1 {
			t.Errorf("async = %v, %v", vals, err)
		}
		close(done)
	})
	<-done
}

func TestClientStaticStub(t *testing.T) {
	c := fakeProvider(t)
	b, _ := c.Bind("Thing", 4, nil)
	v, err := b.Static("area")
	if err != nil || v != 123 {
		t.Fatalf("static = %v, %v", v, err)
	}
}

func TestClientTestabilityStubs(t *testing.T) {
	c := fakeProvider(t)
	b, _ := c.Bind("Thing", 4, nil)
	names, err := b.FaultList()
	if err != nil || len(names) != 1 {
		t.Fatalf("fault list = %v, %v", names, err)
	}
	dt, err := b.DetectionTable([]signal.Bit{signal.B0, signal.B1})
	if err != nil || len(dt.Rows) != 1 {
		t.Fatalf("table = %v, %v", dt, err)
	}
	if _, ok := dt.OutputFor("f0sa0"); !ok {
		t.Error("table content lost in transit")
	}
}

func TestClientTestSetStub(t *testing.T) {
	c := fakeProvider(t)
	b, _ := c.Bind("Thing", 4, nil)
	ts, err := b.TestSet(100, 1)
	if err != nil || len(ts.Patterns) != 1 || ts.Coverage != 0.5 {
		t.Fatalf("test set = %+v, %v", ts, err)
	}
}

func TestClientNegotiateStub(t *testing.T) {
	c := fakeProvider(t)
	resp, err := c.Negotiate("Thing", []ModelConstraint{{Param: "power.avg"}})
	if err != nil || len(resp.Offers) != 1 || resp.Offers[0].Name != "best" {
		t.Fatalf("negotiate = %+v, %v", resp, err)
	}
}

func TestClientFeesStub(t *testing.T) {
	c := fakeProvider(t)
	fees, err := c.Fees()
	if err != nil || fees != 0 {
		t.Fatalf("fees = %v, %v", fees, err)
	}
}
