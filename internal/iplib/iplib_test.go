package iplib

import (
	"strings"
	"testing"
	"time"

	"repro/internal/estim"
	"repro/internal/module"
	"repro/internal/signal"
)

func validSpec() ComponentSpec {
	return ComponentSpec{
		Name:          "X",
		Description:   "test",
		MinWidth:      2,
		MaxWidth:      8,
		PublicFactory: "behavioral-mult",
		Estimators: []EstimatorOffer{
			{Name: "c", Param: string(estim.ParamAvgPower), ErrPct: 30},
		},
		LicenseCents: 1,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*ComponentSpec){
		func(s *ComponentSpec) { s.Name = "" },
		func(s *ComponentSpec) { s.MinWidth = 0 },
		func(s *ComponentSpec) { s.MaxWidth = 1 },
		func(s *ComponentSpec) { s.Estimators = append(s.Estimators, s.Estimators[0]) },
		func(s *ComponentSpec) { s.Estimators[0].Param = "" },
	}
	for i, mutate := range cases {
		s := validSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestSpecOfferLookup(t *testing.T) {
	s := validSpec()
	if _, ok := s.Offer("c"); !ok {
		t.Error("existing offer not found")
	}
	if _, ok := s.Offer("z"); ok {
		t.Error("missing offer found")
	}
}

func TestEstimatorOfferTypedAccessors(t *testing.T) {
	o := EstimatorOffer{Name: "e", Param: string(estim.ParamDelay), CPUTimeMS: 1500}
	if o.Parameter() != estim.ParamDelay {
		t.Error("Parameter() wrong")
	}
	if o.CPUTime() != 1500*time.Millisecond {
		t.Errorf("CPUTime() = %v", o.CPUTime())
	}
}

func TestSpecPortDataCoversEverything(t *testing.T) {
	s := validSpec()
	pd := s.PortData()
	// Name and every estimator name must be enumerated for the policy.
	found := map[string]bool{}
	for _, v := range pd {
		if str, ok := v.(string); ok {
			found[str] = true
		}
	}
	if !found["X"] || !found["c"] {
		t.Errorf("PortData misses identity fields: %v", pd)
	}
}

func TestFactoryRegistryBuiltins(t *testing.T) {
	r := NewFactoryRegistry()
	a := module.NewWordConnector("a", 4)
	b := module.NewWordConnector("b", 4)
	o := module.NewWordConnector("o", 8)
	m, err := r.Build("behavioral-mult", "M", 4, []*module.Connector{a, b}, []*module.Connector{o})
	if err != nil {
		t.Fatal(err)
	}
	if m.ModuleName() != "M" {
		t.Error("factory ignored instance name")
	}
	// Adder factory exists too.
	a2 := module.NewWordConnector("a2", 4)
	b2 := module.NewWordConnector("b2", 4)
	o2 := module.NewWordConnector("o2", 5)
	if _, err := r.Build("behavioral-adder", "A", 4, []*module.Connector{a2, b2}, []*module.Connector{o2}); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryRegistryErrors(t *testing.T) {
	r := NewFactoryRegistry()
	if _, err := r.Build("no-such", "X", 4, nil, nil); err == nil {
		t.Error("unknown factory accepted")
	}
	if _, err := r.Build("behavioral-mult", "X", 4, nil, nil); err == nil {
		t.Error("wrong connector shape accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register("behavioral-mult", nil)
}

func TestFactoryRegistryCustom(t *testing.T) {
	r := NewFactoryRegistry()
	r.Register("custom", func(name string, width int, ins, outs []*module.Connector) (module.Module, error) {
		return module.NewRegister(name, width, nil, nil), nil
	})
	m, err := r.Build("custom", "R", 4, nil, nil)
	if err != nil || m.ModuleName() != "R" {
		t.Errorf("custom factory failed: %v, %v", m, err)
	}
}

func TestProtocolEnvelopesDeclarePortData(t *testing.T) {
	bits := []signal.Bit{signal.B0, signal.B1}
	envelopes := []interface{ PortData() []any }{
		CatalogueReq{},
		CatalogueResp{Specs: []ComponentSpec{validSpec()}},
		BindReq{Component: "X", Width: 4, Models: []string{"c"}},
		BindResp{Instance: 1, Enabled: []EstimatorOffer{{Name: "c", Param: "p"}}},
		EvalReq{Instance: 1, Inputs: bits},
		EvalResp{Outputs: bits},
		PowerBatchReq{Instance: 1, Patterns: [][]signal.Bit{bits}},
		PowerBatchResp{PowerPerPattern: []float64{1}},
		StaticReq{Instance: 1, Param: "area"},
		StaticResp{Value: 3},
		FaultListReq{Instance: 1},
		FaultListResp{Names: []string{"f0sa0"}},
		FaultTableReq{Instance: 1, Inputs: bits},
		FeesReq{},
		FeesResp{TotalCents: 2},
	}
	for _, e := range envelopes {
		// PortData must not panic and must be checkable by the policy's
		// type allowlist (verified end to end in rmi tests; here we just
		// assert envelopes enumerate something sensible or nil).
		_ = e.PortData()
	}
}

func TestMethodNamesDistinct(t *testing.T) {
	names := []string{
		MethodCatalogue, MethodBind, MethodEval, MethodPowerBatch,
		MethodStatic, MethodFaultList, MethodFaultTable, MethodFees,
	}
	seen := map[string]bool{}
	for _, n := range names {
		if !strings.HasPrefix(n, "ip.") {
			t.Errorf("method %q outside the ip. namespace", n)
		}
		if seen[n] {
			t.Errorf("duplicate method name %q", n)
		}
		seen[n] = true
	}
}
