package iplib

// PortValueCount implementations (rmi.PortCounter) for every protocol
// envelope. Each returns exactly the value total the marshalling
// policy's canonical walk computes over PortData(), letting the RMI
// outbound check skip the []any boxing on the hot path. The envelope
// tests cross-check every count against security.ValueCount, so the two
// definitions cannot drift silently.

import "repro/internal/signal"

// patternsValueCount totals a pattern batch ([][]signal.Bit counts one
// value per bit).
func patternsValueCount(patterns [][]signal.Bit) int {
	n := 0
	for _, p := range patterns {
		n += len(p)
	}
	return n
}

// offersValueCount totals a slice of EstimatorOffer (six scalar fields
// each, matching the PortData flattening).
func offersValueCount(offers []EstimatorOffer) int { return 6 * len(offers) }

// PortValueCount implements rmi.PortCounter.
func (r NegotiateReq) PortValueCount() int { return 1 + 4*len(r.Constraints) }

// PortValueCount implements rmi.PortCounter.
func (r NegotiateResp) PortValueCount() int {
	return len(r.Rejections) + offersValueCount(r.Offers)
}

// PortValueCount implements rmi.PortCounter.
func (CatalogueReq) PortValueCount() int { return 0 }

// PortValueCount implements rmi.PortCounter.
func (r CatalogueResp) PortValueCount() int {
	n := 0
	for _, s := range r.Specs {
		n += s.PortValueCount()
	}
	return n
}

// PortValueCount implements rmi.PortCounter.
func (s ComponentSpec) PortValueCount() int { return 7 + offersValueCount(s.Estimators) }

// PortValueCount implements rmi.PortCounter.
func (r BindReq) PortValueCount() int { return 2 + len(r.Models) }

// PortValueCount implements rmi.PortCounter.
func (r BindResp) PortValueCount() int { return 2 + offersValueCount(r.Enabled) }

// PortValueCount implements rmi.PortCounter.
func (r EvalReq) PortValueCount() int { return 1 + len(r.Inputs) }

// PortValueCount implements rmi.PortCounter.
func (r EvalResp) PortValueCount() int { return len(r.Outputs) }

// PortValueCount implements rmi.PortCounter.
func (r PowerBatchReq) PortValueCount() int { return 2 + patternsValueCount(r.Patterns) }

// PortValueCount implements rmi.PortCounter.
func (r PowerBatchResp) PortValueCount() int { return 1 + len(r.PowerPerPattern) }

// PortValueCount implements rmi.PortCounter.
func (r TimingBatchReq) PortValueCount() int { return 1 + patternsValueCount(r.Patterns) }

// PortValueCount implements rmi.PortCounter.
func (r TimingBatchResp) PortValueCount() int { return 1 + len(r.DelayPerPattern) }

// PortValueCount implements rmi.PortCounter.
func (r StaticReq) PortValueCount() int { return 2 }

// PortValueCount implements rmi.PortCounter.
func (StaticResp) PortValueCount() int { return 1 }

// PortValueCount implements rmi.PortCounter.
func (FaultListReq) PortValueCount() int { return 1 }

// PortValueCount implements rmi.PortCounter.
func (r FaultListResp) PortValueCount() int { return len(r.Names) }

// PortValueCount implements rmi.PortCounter.
func (r FaultTableReq) PortValueCount() int { return 1 + len(r.Inputs) }

// PortValueCount implements rmi.PortCounter.
func (r FaultTableResp) PortValueCount() int {
	n := r.Table.Input.Width() + r.Table.FaultFree.Width()
	for _, row := range r.Table.Rows {
		n += row.Output.Width() + len(row.Faults)
	}
	return n
}

// PortValueCount implements rmi.PortCounter.
func (TestSetReq) PortValueCount() int { return 3 }

// PortValueCount implements rmi.PortCounter.
func (r TestSetResp) PortValueCount() int { return 2 + patternsValueCount(r.Patterns) }

// PortValueCount implements rmi.PortCounter.
func (FeesReq) PortValueCount() int { return 0 }

// PortValueCount implements rmi.PortCounter.
func (FeesResp) PortValueCount() int { return 1 }
