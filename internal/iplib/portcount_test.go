package iplib

import (
	"testing"

	"repro/internal/rmi"
	"repro/internal/security"
)

// Every protocol envelope must take the policy's self-counting fast
// path.
var _ = []rmi.PortCounter{
	NegotiateReq{}, NegotiateResp{}, CatalogueReq{}, CatalogueResp{},
	ComponentSpec{}, BindReq{}, BindResp{}, EvalReq{}, EvalResp{},
	PowerBatchReq{}, PowerBatchResp{}, TimingBatchReq{}, TimingBatchResp{},
	StaticReq{}, StaticResp{}, FaultListReq{}, FaultListResp{},
	FaultTableReq{}, FaultTableResp{}, TestSetReq{}, TestSetResp{},
	FeesReq{}, FeesResp{},
}

// TestPortValueCountMatchesCanonicalWalk pins every PortValueCount to
// the marshalling policy's canonical metric: the fast path the RMI
// outbound check takes must agree with the per-element walk it
// replaces, for every envelope the wire can carry.
func TestPortValueCountMatchesCanonicalWalk(t *testing.T) {
	for _, p := range binaryPairs() {
		t.Run(p.name, func(t *testing.T) {
			pd, ok := p.in.(rmi.PortData)
			if !ok {
				t.Fatalf("%T does not implement rmi.PortData", p.in)
			}
			pc, ok := p.in.(rmi.PortCounter)
			if !ok {
				t.Fatalf("%T does not implement rmi.PortCounter", p.in)
			}
			want := 0
			for _, v := range pd.PortData() {
				n, err := security.ValueCount(v)
				if err != nil {
					t.Fatalf("canonical walk rejected %T: %v", v, err)
				}
				want += n
			}
			if got := pc.PortValueCount(); got != want {
				t.Errorf("PortValueCount() = %d, canonical walk = %d", got, want)
			}
		})
	}
}
