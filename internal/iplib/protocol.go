package iplib

import (
	"repro/internal/fault"
	"repro/internal/signal"
)

// Remote method names of the JavaCAD client/server protocol.
const (
	// MethodCatalogue lists the provider's component specs.
	MethodCatalogue = "ip.catalogue"
	// MethodBind instantiates a component for this session (negotiating
	// width and enabled models) and returns an instance handle.
	MethodBind = "ip.bind"
	// MethodEval evaluates the component's functionality remotely — the
	// fully-remote-module (MR) path.
	MethodEval = "ip.eval"
	// MethodPowerBatch runs the provider's accurate gate-level power
	// estimator over a buffer of input patterns.
	MethodPowerBatch = "ip.power.batch"
	// MethodStatic returns a static metric (area, critical-path delay).
	MethodStatic = "ip.static"
	// MethodTimingBatch runs the provider's input-dependent timing
	// analysis over a buffer of patterns (per-pattern switching delay,
	// which needs the gate-level structure and so runs remotely).
	MethodTimingBatch = "ip.timing.batch"
	// MethodFaultList returns the component's symbolic fault list
	// (phase one of virtual fault simulation).
	MethodFaultList = "ip.fault.list"
	// MethodFaultTable returns the detection table for one component
	// input configuration (phase two).
	MethodFaultTable = "ip.fault.table"
	// MethodFees returns the session's accumulated bill.
	MethodFees = "ip.fees"
	// MethodTestSet sells a compacted component test sequence — "a good
	// test sequence is IP that might need protection", so it is served
	// (and billed) rather than derivable by the user.
	MethodTestSet = "ip.testset"
	// MethodNegotiate implements the paper's future-work item
	// ("flexible simulation setup with interactive client-server
	// negotiation of simulation parameters"): the client states
	// per-parameter accuracy/cost constraints, the provider answers with
	// the best admissible offer for each, or the reason none fits.
	MethodNegotiate = "ip.negotiate"
)

// ModelConstraint is one negotiation demand: the client's bounds for one
// parameter's estimator. Zero-valued bounds are unconstrained; a negative
// MaxCostCents demands a free model.
type ModelConstraint struct {
	Param        string
	MaxErrPct    float64
	MaxCostCents float64
	ForbidRemote bool
}

// NegotiateReq opens a negotiation round for one component.
type NegotiateReq struct {
	Component   string
	Constraints []ModelConstraint
}

// PortData implements rmi.PortData.
func (r NegotiateReq) PortData() []any {
	out := []any{r.Component}
	for _, c := range r.Constraints {
		out = append(out, c.Param, c.MaxErrPct, c.MaxCostCents, c.ForbidRemote)
	}
	return out
}

// NegotiateResp answers constraint by constraint: Offers[i] is the best
// admissible offer for Constraints[i] when Rejections[i] is empty;
// otherwise Rejections[i] explains why nothing fits (the client would
// fall back to the null estimator, or relax and retry).
type NegotiateResp struct {
	Offers     []EstimatorOffer
	Rejections []string
}

// PortData implements rmi.PortData.
func (r NegotiateResp) PortData() []any {
	out := []any{r.Rejections}
	for _, e := range r.Offers {
		out = append(out, e.Name, e.Param, e.ErrPct, e.CostCents, e.CPUTimeMS, e.Remote)
	}
	return out
}

// CatalogueReq asks for the provider's catalogue.
type CatalogueReq struct{}

// PortData implements rmi.PortData.
func (CatalogueReq) PortData() []any { return nil }

// CatalogueResp carries the catalogue.
type CatalogueResp struct{ Specs []ComponentSpec }

// PortData implements rmi.PortData.
func (r CatalogueResp) PortData() []any {
	var out []any
	for _, s := range r.Specs {
		out = append(out, s.PortData()...)
	}
	return out
}

// BindReq instantiates a component. Models selects the estimator offers
// to enable (empty = all).
type BindReq struct {
	Component string
	Width     int
	Models    []string
}

// PortData implements rmi.PortData.
func (r BindReq) PortData() []any { return []any{r.Component, r.Width, r.Models} }

// BindResp returns the instance handle and the negotiated terms.
type BindResp struct {
	Instance     uint64
	LicenseCents float64
	Enabled      []EstimatorOffer
}

// PortData implements rmi.PortData.
func (r BindResp) PortData() []any {
	out := []any{r.Instance, r.LicenseCents}
	for _, e := range r.Enabled {
		out = append(out, e.Name, e.Param, e.ErrPct, e.CostCents, e.CPUTimeMS, e.Remote)
	}
	return out
}

// EvalReq evaluates the instance's functionality over component inputs.
type EvalReq struct {
	Instance uint64
	Inputs   []signal.Bit
}

// PortData implements rmi.PortData.
func (r EvalReq) PortData() []any { return []any{r.Instance, r.Inputs} }

// EvalResp returns the component outputs.
type EvalResp struct{ Outputs []signal.Bit }

// PortData implements rmi.PortData.
func (r EvalResp) PortData() []any { return []any{r.Outputs} }

// PowerBatchReq carries a buffer of component input patterns for the
// provider's gate-level power estimator. SkipCompute reproduces the
// Figure 3 methodology: the provider acknowledges the batch without
// running the power simulator, so the measured cost is pure RMI overhead.
type PowerBatchReq struct {
	Instance    uint64
	Patterns    [][]signal.Bit
	SkipCompute bool
}

// PortData implements rmi.PortData.
func (r PowerBatchReq) PortData() []any { return []any{r.Instance, r.Patterns, r.SkipCompute} }

// PowerBatchResp returns per-pattern power values (empty when the batch
// was acknowledged with SkipCompute).
type PowerBatchResp struct {
	PowerPerPattern []float64
	FeeCents        float64
}

// PortData implements rmi.PortData.
func (r PowerBatchResp) PortData() []any { return []any{r.PowerPerPattern, r.FeeCents} }

// TimingBatchReq carries a buffer of component input patterns for the
// provider's dynamic timing analysis.
type TimingBatchReq struct {
	Instance uint64
	Patterns [][]signal.Bit
}

// PortData implements rmi.PortData.
func (r TimingBatchReq) PortData() []any { return []any{r.Instance, r.Patterns} }

// TimingBatchResp returns per-pattern switching delays in picoseconds.
type TimingBatchResp struct {
	DelayPerPattern []float64
	FeeCents        float64
}

// PortData implements rmi.PortData.
func (r TimingBatchResp) PortData() []any { return []any{r.DelayPerPattern, r.FeeCents} }

// StaticReq asks for a static metric of the instance.
type StaticReq struct {
	Instance uint64
	Param    string // "area" or "delay"
}

// PortData implements rmi.PortData.
func (r StaticReq) PortData() []any { return []any{r.Instance, r.Param} }

// StaticResp returns the metric value.
type StaticResp struct{ Value float64 }

// PortData implements rmi.PortData.
func (r StaticResp) PortData() []any { return []any{r.Value} }

// FaultListReq asks for the instance's symbolic fault list.
type FaultListReq struct{ Instance uint64 }

// PortData implements rmi.PortData.
func (r FaultListReq) PortData() []any { return []any{r.Instance} }

// FaultListResp carries the symbolic names (and nothing else).
type FaultListResp struct{ Names []string }

// PortData implements rmi.PortData.
func (r FaultListResp) PortData() []any { return []any{r.Names} }

// FaultTableReq asks for the detection table at one input configuration.
type FaultTableReq struct {
	Instance uint64
	Inputs   []signal.Bit
}

// PortData implements rmi.PortData.
func (r FaultTableReq) PortData() []any { return []any{r.Instance, r.Inputs} }

// FaultTableResp carries the detection table: erroneous output patterns
// and symbolic fault names — exactly the information the paper's protocol
// discloses, no more.
type FaultTableResp struct{ Table fault.DetectionTable }

// PortData implements rmi.PortData.
func (r FaultTableResp) PortData() []any {
	out := []any{r.Table.Input, r.Table.FaultFree}
	for _, row := range r.Table.Rows {
		out = append(out, row.Output, row.Faults)
	}
	return out
}

// TestSetReq asks for a compacted test sequence for the instance.
type TestSetReq struct {
	Instance      uint64
	MaxCandidates int
	Seed          int64
}

// PortData implements rmi.PortData.
func (r TestSetReq) PortData() []any { return []any{r.Instance, r.MaxCandidates, r.Seed} }

// TestSetResp carries the purchased test sequence: component input
// patterns and the coverage they achieve (against the provider's private
// fault list — the user can verify the claim through virtual fault
// simulation).
type TestSetResp struct {
	Patterns [][]signal.Bit
	Coverage float64
	FeeCents float64
}

// PortData implements rmi.PortData.
func (r TestSetResp) PortData() []any { return []any{r.Patterns, r.Coverage, r.FeeCents} }

// FeesReq asks for the session bill.
type FeesReq struct{}

// PortData implements rmi.PortData.
func (FeesReq) PortData() []any { return nil }

// FeesResp returns the accumulated bill in cents.
type FeesResp struct{ TotalCents float64 }

// PortData implements rmi.PortData.
func (r FeesResp) PortData() []any { return []any{r.TotalCents} }
