package iplib

import (
	"fmt"
	"sync"

	"repro/internal/rmi"
)

// Idempotent reports whether an RMI method of the IP protocol may safely
// be re-invoked after an ambiguous transport failure (the request may or
// may not have executed server-side). The rules per method:
//
//   - Pure reads (catalogue, fees, negotiate, static, fault.list) are
//     idempotent.
//   - Deterministic computations (eval, power.batch, timing.batch,
//     fault.table) are idempotent for results; a duplicate execution can
//     double-bill usage fees, which providers tolerate (per-pattern fees
//     are small) — at-most-once billing is not guaranteed under retry.
//   - bind mutates session state (allocates an instance handle, charges
//     a license); testset sells a priced artifact. Neither is retried
//     blindly; bind is re-established only by deliberate session replay.
func Idempotent(method string) bool {
	switch method {
	case MethodCatalogue, MethodFees, MethodNegotiate, MethodStatic,
		MethodFaultList, MethodFaultTable, MethodEval,
		MethodPowerBatch, MethodTimingBatch:
		return true
	}
	return false
}

// journalEntry is one replayable call of the session journal.
type journalEntry struct {
	method string
	args   rmi.PortData
	// boundID is, for bind entries, the instance handle the original
	// call returned; the replayed bind must reproduce it exactly for
	// outstanding BoundInstance stubs to stay valid.
	boundID uint64
}

// sessionJournal records, in exact wire order, the calls that establish
// or advance provider-side session state: binds (instance handles) and
// estimation batches (the provider's gate-level simulators are stateful
// — each pattern's power depends on the previous pattern, so recreating
// an instance is not enough; its pattern history must be re-driven for
// post-reconnect results to match a fault-free run bit for bit).
type sessionJournal struct {
	mu      sync.Mutex
	entries []journalEntry
}

// record observes one successful call (it runs under the RPC connection
// lock, so append order is wire order) and journals it if it affects
// session state.
func (j *sessionJournal) record(method string, args rmi.PortData, reply any) {
	var e journalEntry
	switch method {
	case MethodBind:
		resp, ok := reply.(*BindResp)
		if !ok {
			return
		}
		e = journalEntry{method: method, args: args, boundID: resp.Instance}
	case MethodPowerBatch, MethodTimingBatch:
		e = journalEntry{method: method, args: args}
	default:
		return
	}
	j.mu.Lock()
	j.entries = append(j.entries, e)
	j.mu.Unlock()
}

// replay re-establishes the session on a fresh connection by re-issuing
// every journaled call in original order. Instance handles are
// session-scoped counters, so replaying binds in order reproduces the
// original IDs; replaying batches re-drives the simulators through the
// same pattern history. Any failure aborts the replay — the transport
// layer treats it as a failed reconnect and backs off.
func (j *sessionJournal) replay(do func(method string, args rmi.PortData, reply any) error) error {
	j.mu.Lock()
	entries := append([]journalEntry(nil), j.entries...)
	j.mu.Unlock()
	for _, e := range entries {
		switch e.method {
		case MethodBind:
			var resp BindResp
			if err := do(e.method, e.args, &resp); err != nil {
				return err
			}
			if resp.Instance != e.boundID {
				return fmt.Errorf("iplib: replayed bind returned instance %d, original was %d", resp.Instance, e.boundID)
			}
		case MethodPowerBatch:
			var resp PowerBatchResp
			if err := do(e.method, e.args, &resp); err != nil {
				return err
			}
		case MethodTimingBatch:
			var resp TimingBatchResp
			if err := do(e.method, e.args, &resp); err != nil {
				return err
			}
		}
	}
	return nil
}

// Entries returns how many calls the journal holds (for tests and
// observability).
func (j *sessionJournal) Entries() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// EnableRecovery arms transparent session re-establishment on the
// underlying RPC client: the protocol's idempotency table gates retry,
// and a session journal replays binds and estimation batches after every
// automatic reconnect, so a provider connection killed mid-simulation
// heals with results identical to a fault-free run. The replayed session
// is billed afresh by the provider (fees restart with the new session).
func (c *IPClient) EnableRecovery() {
	if c.journal != nil {
		return
	}
	j := &sessionJournal{}
	c.journal = j
	c.RPC.Idempotent = Idempotent
	c.RPC.Recorder = j.record
	c.RPC.OnReconnect = j.replay
}

// JournalLen reports the size of the recovery journal (zero when
// recovery is disabled).
func (c *IPClient) JournalLen() int {
	if c.journal == nil {
		return 0
	}
	return c.journal.Entries()
}
