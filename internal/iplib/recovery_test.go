package iplib

import (
	"errors"
	"testing"

	"repro/internal/rmi"
	"repro/internal/signal"
)

func TestIdempotencyTable(t *testing.T) {
	tests := []struct {
		method string
		want   bool
	}{
		{MethodCatalogue, true},
		{MethodFees, true},
		{MethodNegotiate, true},
		{MethodStatic, true},
		{MethodFaultList, true},
		{MethodFaultTable, true},
		{MethodEval, true},
		{MethodPowerBatch, true},
		{MethodTimingBatch, true},
		{MethodBind, false},    // allocates an instance, charges a license
		{MethodTestSet, false}, // sells a priced artifact
		{"ip.unknown", false},  // default-deny for unlisted methods
	}
	for _, tc := range tests {
		if got := Idempotent(tc.method); got != tc.want {
			t.Errorf("Idempotent(%q) = %v, want %v", tc.method, got, tc.want)
		}
	}
}

func TestJournalRecordsOnlySessionState(t *testing.T) {
	j := &sessionJournal{}
	j.record(MethodBind, BindReq{Component: "X", Width: 4}, &BindResp{Instance: 1})
	j.record(MethodPowerBatch, PowerBatchReq{Instance: 1}, &PowerBatchResp{})
	j.record(MethodTimingBatch, TimingBatchReq{Instance: 1}, &TimingBatchResp{})
	// Stateless and read-only calls stay out of the journal.
	j.record(MethodCatalogue, CatalogueReq{}, &CatalogueResp{})
	j.record(MethodEval, EvalReq{Instance: 1}, &EvalResp{})
	j.record(MethodFees, FeesReq{}, &FeesResp{})
	if got := j.Entries(); got != 3 {
		t.Errorf("journal entries = %d, want 3 (bind + two batches)", got)
	}
}

func TestJournalReplayPreservesOrderAndVerifiesBindIDs(t *testing.T) {
	j := &sessionJournal{}
	j.record(MethodBind, BindReq{Component: "X", Width: 4}, &BindResp{Instance: 1})
	j.record(MethodPowerBatch, PowerBatchReq{Instance: 1, Patterns: [][]signal.Bit{{signal.B1}}}, &PowerBatchResp{})
	j.record(MethodBind, BindReq{Component: "Y", Width: 8}, &BindResp{Instance: 2})

	var order []string
	nextInstance := uint64(0)
	err := j.replay(func(method string, args rmi.PortData, reply any) error {
		order = append(order, method)
		if r, ok := reply.(*BindResp); ok {
			// A fresh session hands out instance IDs from 1 again, so an
			// in-order replay reproduces the original handles.
			nextInstance++
			r.Instance = nextInstance
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	want := []string{MethodBind, MethodPowerBatch, MethodBind}
	if len(order) != len(want) {
		t.Fatalf("replayed %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("replay order %v, want %v", order, want)
		}
	}

	// A replayed bind returning a different handle must abort the replay:
	// outstanding BoundInstance stubs would silently point at the wrong
	// provider-side instance.
	err = j.replay(func(method string, args rmi.PortData, reply any) error {
		if r, ok := reply.(*BindResp); ok {
			r.Instance = 99
		}
		return nil
	})
	if err == nil {
		t.Fatal("replay accepted a bind that returned a different instance ID")
	}

	// A failing call aborts too.
	boom := errors.New("boom")
	err = j.replay(func(method string, args rmi.PortData, reply any) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("replay err = %v, want the call error", err)
	}
}

func TestEnableRecoveryArmsHooksOnce(t *testing.T) {
	c := fakeProvider(t)
	if c.JournalLen() != 0 {
		t.Fatal("journal exists before EnableRecovery")
	}
	c.EnableRecovery()
	if c.RPC.Idempotent == nil || c.RPC.Recorder == nil || c.RPC.OnReconnect == nil {
		t.Fatal("EnableRecovery left RPC hooks unset")
	}
	j := c.journal
	c.EnableRecovery()
	if c.journal != j {
		t.Error("second EnableRecovery replaced the journal")
	}

	// Live calls through the stub layer land in the journal in call order.
	inst, err := c.Bind("Thing", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.PowerBatch([][]signal.Bit{{signal.B0, signal.B1}}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Catalogue(); err != nil {
		t.Fatal(err)
	}
	if got := c.JournalLen(); got != 2 {
		t.Errorf("journal length = %d, want 2 (bind + batch; catalogue not journaled)", got)
	}
}
