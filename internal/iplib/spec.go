// Package iplib defines how IP components are packaged and traded in
// gocad: the open specification an IP provider publishes (catalogue
// entries with functional-model and estimator offers — the VSIA-style
// "setup" of the paper's Figure 1), the wire protocol between JavaCAD
// clients and servers (envelopes and method names), and the client-side
// stubs a user's design environment calls.
//
// A component splits into the paper's three parts:
//
//   - the PUBLIC PART: a functional model the user downloads and runs
//     locally. Go cannot load code at runtime, so the spec names a
//     factory in the client-side FactoryRegistry — the documented
//     substitution for "loadable bytecode" (see DESIGN.md);
//   - the STUB: the typed client in this package, which invokes remote
//     methods over internal/rmi without carrying any IP;
//   - the PRIVATE PART: the gate-level netlist and accurate estimators,
//     which exist only inside internal/provider's server and whose
//     content never crosses the wire.
package iplib

import (
	"fmt"
	"time"

	"repro/internal/estim"
	"repro/internal/module"
)

// EstimatorOffer describes one estimator a provider makes available for a
// component, with the accuracy/cost/speed figures the user trades off
// during setup (the rows of the paper's Table 1).
type EstimatorOffer struct {
	Name      string
	Param     string // estim.Parameter, as a wire-friendly string
	ErrPct    float64
	CostCents float64 // per call
	CPUTimeMS float64 // expected compute time per call
	Remote    bool    // requires the provider's server (and its fees)
}

// Parameter returns the typed parameter name.
func (o EstimatorOffer) Parameter() estim.Parameter { return estim.Parameter(o.Param) }

// CPUTime returns the typed expected CPU time.
func (o EstimatorOffer) CPUTime() time.Duration {
	return time.Duration(o.CPUTimeMS * float64(time.Millisecond))
}

// ComponentSpec is a catalogue entry: everything a provider discloses
// about a component before purchase.
type ComponentSpec struct {
	// Name is the catalogue name, e.g. "MultFastLowPower".
	Name        string
	Description string
	// MinWidth and MaxWidth bound the parametric instantiation width.
	MinWidth, MaxWidth int
	// PublicFactory names the functional model in the client-side
	// FactoryRegistry (the downloadable public part).
	PublicFactory string
	// Estimators are the offered cost-metric models.
	Estimators []EstimatorOffer
	// Testability reports whether the provider answers virtual
	// fault-simulation queries for this component.
	Testability bool
	// LicenseCents is the one-time fee charged at instantiation.
	LicenseCents float64
}

// PortData implements rmi.PortData: a spec is pure catalogue metadata.
func (s ComponentSpec) PortData() []any {
	out := []any{s.Name, s.Description, s.MinWidth, s.MaxWidth,
		s.PublicFactory, s.Testability, s.LicenseCents}
	for _, e := range s.Estimators {
		out = append(out, e.Name, e.Param, e.ErrPct, e.CostCents, e.CPUTimeMS, e.Remote)
	}
	return out
}

// Validate checks the spec for obvious inconsistencies.
func (s ComponentSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("iplib: spec without name")
	}
	if s.MinWidth <= 0 || s.MaxWidth < s.MinWidth {
		return fmt.Errorf("iplib: %s: invalid width range [%d, %d]", s.Name, s.MinWidth, s.MaxWidth)
	}
	seen := map[string]bool{}
	for _, e := range s.Estimators {
		if seen[e.Name] {
			return fmt.Errorf("iplib: %s: duplicate estimator %q", s.Name, e.Name)
		}
		seen[e.Name] = true
		if e.Param == "" {
			return fmt.Errorf("iplib: %s: estimator %q without parameter", s.Name, e.Name)
		}
	}
	return nil
}

// Offer returns the estimator offer with the given name.
func (s ComponentSpec) Offer(name string) (EstimatorOffer, bool) {
	for _, e := range s.Estimators {
		if e.Name == name {
			return e, true
		}
	}
	return EstimatorOffer{}, false
}

// Factory builds a local functional model (the public part) with the
// given instance name and width over the given connectors.
type Factory func(name string, width int, ins, outs []*module.Connector) (module.Module, error)

// FactoryRegistry maps public-part names to local factories — the
// client-side stand-in for bytecode download.
type FactoryRegistry struct {
	factories map[string]Factory
}

// NewFactoryRegistry returns a registry preloaded with the standard
// gocad functional models.
func NewFactoryRegistry() *FactoryRegistry {
	r := &FactoryRegistry{factories: make(map[string]Factory)}
	r.Register("behavioral-mult", func(name string, width int, ins, outs []*module.Connector) (module.Module, error) {
		if len(ins) != 2 || len(outs) != 1 {
			return nil, fmt.Errorf("iplib: behavioral-mult needs 2 inputs and 1 output")
		}
		return module.NewMult(name, width, ins[0], ins[1], outs[0]), nil
	})
	r.Register("behavioral-adder", func(name string, width int, ins, outs []*module.Connector) (module.Module, error) {
		if len(ins) != 2 || len(outs) != 1 {
			return nil, fmt.Errorf("iplib: behavioral-adder needs 2 inputs and 1 output")
		}
		return module.NewAdder(name, width, ins[0], ins[1], outs[0]), nil
	})
	return r
}

// Register adds a factory under a public-part name.
func (r *FactoryRegistry) Register(name string, f Factory) {
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("iplib: duplicate factory %q", name))
	}
	r.factories[name] = f
}

// Build instantiates a public part by name.
func (r *FactoryRegistry) Build(factory, instance string, width int, ins, outs []*module.Connector) (module.Module, error) {
	f, ok := r.factories[factory]
	if !ok {
		return nil, fmt.Errorf("iplib: unknown public part %q", factory)
	}
	return f(instance, width, ins, outs)
}
