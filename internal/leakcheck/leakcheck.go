// Package leakcheck is a stdlib-only goroutine-leak gate for tests: it
// snapshots the goroutine count when armed and, at cleanup, retries for
// a grace period waiting for the count to return to the baseline. The
// failover paths this repo grew — mux pumps, pool workers, hedge losers,
// drain waiters — all end in goroutines that are easy to orphan; wrapping
// their tests in Check makes an orphan a test failure with a full stack
// dump instead of a slow background rot.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long cleanup waits for stragglers to exit: goroutines
// legitimately take a few scheduler beats to unwind after Close.
const grace = 2 * time.Second

// Check arms the leak gate: it snapshots runtime.NumGoroutine now and
// registers a cleanup that fails the test if, after the grace period,
// more goroutines are running than at the snapshot. Call it first in
// the test, before spawning anything.
func Check(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutines still running, %d at test start; stacks:\n%s",
			n, base, stacks())
	})
}

// stacks dumps every goroutine's stack, trimming the snapshot machinery
// itself so the report points at the leak.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	all := string(buf[:n])
	var keep []string
	for _, g := range strings.Split(all, "\n\n") {
		if strings.Contains(g, "leakcheck.stacks") {
			continue
		}
		keep = append(keep, g)
	}
	return strings.Join(keep, "\n\n")
}
