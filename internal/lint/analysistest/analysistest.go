// Package analysistest runs a lint.Analyzer over a fixture package and
// checks its diagnostics against golang.org/x/tools-style expectations:
// a fixture line produces findings iff it carries a trailing
//
//	// want "regexp" ["regexp" ...]
//
// comment, one quoted regexp per expected diagnostic on that line. The
// fixture directory is loaded under a caller-chosen fake import path, so
// a fixture can stand in for an in-scope package (the analyzers gate on
// import-path prefixes) while importing the real repro packages whose
// types the checks match on.
package analysistest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the quoted patterns of a want comment — either
// interpreted ("...") or raw (`...`) string syntax.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one expected diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads dir as importPath and applies the analyzer, failing t on any
// mismatch between reported diagnostics and // want expectations.
func Run(t *testing.T, dir, importPath string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	expects := parseExpectations(t, dir)
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("%s: unexpected diagnostic: %s", filepath.Base(d.Pos.Filename), d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(e.file), e.line, e.pattern)
		}
	}
}

// claim marks the first unmatched expectation covering d and reports
// whether one existed.
func claim(expects []*expectation, d lint.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.line != d.Pos.Line || e.file != d.Pos.Filename {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseExpectations scans every fixture file for // want comments.
func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var out []*expectation
	for _, entry := range entries {
		if entry.IsDir() || filepath.Ext(entry.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, entry.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllString(text[len("want "):], -1) {
					unq, err := strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", path, pos.Line, m, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", path, pos.Line, unq, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}
