// Package capability statically enforces the paper's downloaded-part
// sandbox (PAPER.md: Java-security-manager confinement of IP parts).
// The runtime half lives in internal/security — a Sandbox granting only
// CapProviderChannel by default — but a runtime check only fires on the
// paths a test happens to execute. This analyzer closes the gap
// statically: over the sandboxed package set (public-part skeletons in
// internal/module, the sealed-evaluation path in internal/sealed, and
// the kernel packages a downloaded behavior runs inside), it enforces
//
//  1. an import gate — sandboxed packages may import only each other,
//     the blessed provider-channel seam repro/internal/security, and
//     capability-free stdlib; os, os/exec, net, syscall, unsafe,
//     reflect and friends are forbidden outright; and
//  2. a call-graph reachability check — starting from the entry points
//     a downloaded part is invoked through (exported functions and
//     methods, plus package init), any transitively reachable call into
//     a forbidden package or a wall-clock API (time.Now and the timer
//     constructors) is reported with the full call chain, so the
//     finding names how the sandboxed surface reaches the capability.
//
// Within a sandboxed package every exported declaration is an entry
// point: the provider cannot know which skeleton hooks a user design
// wires up. Unexported functions are only constrained when reachable
// from one. The forbidden-call check runs intra-package; cross-package
// escapes cannot evade it because every import either lies inside the
// sandboxed set (whose own entry points are checked the same way) or is
// rejected by the import gate.
package capability

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// SandboxPackages is the sandboxed set: code that runs on behalf of a
// downloaded part. The set is import-closed over repro packages (each
// member may import only other members plus the blessed seam), which the
// import gate enforces.
var SandboxPackages = []string{
	"repro/internal/module",
	"repro/internal/sealed",
	"repro/internal/gate",
	"repro/internal/signal",
	"repro/internal/estim",
	"repro/internal/sim",
}

// BlessedImports is the single sanctioned capability seam: the
// provider-channel policy and sandbox types of internal/security. All
// outside-world traffic from a downloaded part must flow through it.
var BlessedImports = []string{
	"repro/internal/security",
}

// forbiddenPrefixes are import-path prefixes a sandboxed package may
// never depend on (prefix match, so "os" also covers os/exec and
// os/signal). They grant filesystem, process, network, or
// type-system-escape capabilities the paper's sandbox denies to
// downloaded parts.
var forbiddenPrefixes = []string{
	"os",
	"net",
	"syscall",
	"unsafe",
	"reflect",
	"plugin",
	"io/ioutil",
}

// wallClockFuncs are the package-level time functions that read or
// schedule against the wall clock. Pure time arithmetic (time.Duration,
// time.Time values passed in) stays legal: the sandbox forbids
// *observing* real time, not representing it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// Analyzer is the capability check.
var Analyzer = &lint.Analyzer{
	Name: "capability",
	Doc: "statically enforce the downloaded-part sandbox: packages reachable from " +
		"public-part skeletons may not import or call os/net/exec/unsafe/reflect or " +
		"wall-clock APIs except through the internal/security provider-channel seam; " +
		"violations name the full call chain",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathMatchesAny(pass.Pkg.Path(), SandboxPackages) {
		return nil
	}
	checkImports(pass)
	checkReachability(pass)
	return nil
}

// checkImports is the import gate.
func checkImports(pass *lint.Pass) {
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case strings.HasPrefix(path, "repro/"):
				if !lint.PathMatchesAny(path, SandboxPackages) &&
					!lint.PathMatchesAny(path, BlessedImports) {
					pass.Reportf(spec.Pos(),
						"sandboxed package %s imports %s: downloaded-part code may only depend on other sandboxed packages and the provider-channel seam (repro/internal/security)",
						pass.Pkg.Path(), path)
				}
			case lint.PathMatchesAny(path, forbiddenPrefixes):
				pass.Reportf(spec.Pos(),
					"sandboxed package %s imports %s: forbidden capability for downloaded-part code (paper's sandbox allows outside-world access only through the internal/security provider channel)",
					pass.Pkg.Path(), path)
			}
		}
	}
}

// forbiddenCall is one direct call from a sandboxed function into a
// capability the sandbox denies.
type forbiddenCall struct {
	pos  token.Pos
	what string // e.g. "time.Now" or "os.Getenv"
}

// funcNode is the per-declaration call-graph node.
type funcNode struct {
	decl      *ast.FuncDecl
	callees   []*types.Func // intra-package static callees, in source order
	forbidden []forbiddenCall
}

// checkReachability builds the intra-package static call graph and walks
// it from every entry point, reporting forbidden calls with their chain.
func checkReachability(pass *lint.Pass) {
	nodes := map[*types.Func]*funcNode{}
	var order []*types.Func // deterministic iteration order (source order)
	pass.Funcs(func(fd *ast.FuncDecl) {
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		node := &funcNode{decl: fd}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lint.Callee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if what, bad := forbiddenCallee(callee); bad {
				node.forbidden = append(node.forbidden, forbiddenCall{pos: call.Pos(), what: what})
				return true
			}
			if lint.FuncPkgPath(callee) == pass.Pkg.Path() {
				node.callees = append(node.callees, callee)
			}
			return true
		})
		nodes[fn] = node
		order = append(order, fn)
	})
	sort.Slice(order, func(i, j int) bool {
		return nodes[order[i]].decl.Pos() < nodes[order[j]].decl.Pos()
	})

	// BFS from every entry point at once, remembering how each function
	// was first reached so findings can print a concrete chain.
	parent := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, fn := range order {
		if isEntryPoint(nodes[fn].decl) {
			parent[fn] = nil
			queue = append(queue, fn)
		}
	}
	reported := map[token.Pos]bool{}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := nodes[fn]
		for _, fc := range node.forbidden {
			if reported[fc.pos] {
				continue
			}
			reported[fc.pos] = true
			pass.Reportf(fc.pos,
				"sandboxed code reaches %s (chain: %s -> %s): downloaded parts may touch the outside world only through the provider-channel seam (repro/internal/security)",
				fc.what, chain(parent, fn), fc.what)
		}
		for _, callee := range node.callees {
			if _, seen := parent[callee]; seen {
				continue
			}
			if _, known := nodes[callee]; !known {
				continue // method value on an imported type, etc.
			}
			parent[callee] = fn
			queue = append(queue, callee)
		}
	}
}

// forbiddenCallee reports whether fn is a call into a forbidden package
// or a wall-clock time function, and if so, a printable name for it.
func forbiddenCallee(fn *types.Func) (string, bool) {
	pkg := lint.FuncPkgPath(fn)
	if pkg == "" {
		return "", false
	}
	if lint.PathMatchesAny(pkg, forbiddenPrefixes) {
		return pkg + "." + fn.Name(), true
	}
	if pkg == "time" && wallClockFuncs[fn.Name()] && lint.IsPkgFunc(fn, "time", fn.Name()) {
		return "time." + fn.Name(), true
	}
	return "", false
}

// isEntryPoint reports whether a declaration is a surface a downloaded
// part is invoked through: any exported function or method, or init.
func isEntryPoint(fd *ast.FuncDecl) bool {
	return fd.Name.IsExported() || fd.Name.Name == "init"
}

// chain renders the first-discovered call path from an entry point down
// to fn, e.g. "HandleEvent -> meter".
func chain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, f.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}
