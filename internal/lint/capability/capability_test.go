package capability_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/capability"
)

func TestSandboxedFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/sandboxed", "repro/internal/module/fixture", capability.Analyzer)
}

func TestOutOfScopeFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/outofscope", "repro/internal/trace/fixture", capability.Analyzer)
}
