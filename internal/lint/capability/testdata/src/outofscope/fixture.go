// Package fixture stands in for a package outside the sandboxed set
// (loaded as repro/internal/trace/fixture): the same patterns the
// sandboxed fixture flags must produce no findings here, because the
// capability check binds downloaded-part code only.
package fixture

import (
	"os"
	"time"
)

// Snapshot freely reads the wall clock and the environment: tooling
// outside the sandbox keeps its host capabilities.
func Snapshot() (time.Time, string) {
	return time.Now(), os.Getenv("HOME")
}
