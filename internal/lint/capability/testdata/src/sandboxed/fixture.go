// Package fixture stands in for a sandboxed public-part skeleton
// package (loaded as repro/internal/module/fixture): the import gate
// must reject the os import, the reachability walk must flag the
// wall-clock read behind the exported entry point with its chain, and
// the blessed security seam plus genuinely unreachable code must stay
// silent.
package fixture

import (
	"os" // want `forbidden capability for downloaded-part code`
	"time"

	// The multi-tenant gateway is provider-operator machinery (admission
	// control, billing, the network listener); downloaded-part code must
	// never reach it.
	_ "repro/internal/gateway" // want `may only depend on other sandboxed packages`

	"repro/internal/security"
)

// Part is a downloaded-part skeleton; its exported methods are the
// surface a user design invokes.
type Part struct {
	sb *security.Sandbox
}

// HandleEvent is an entry point that reaches the wall clock two hops
// down — the finding must name the full chain.
func (p *Part) HandleEvent() {
	p.meter()
}

func (p *Part) meter() {
	stamp()
}

func stamp() {
	_ = time.Now() // want `sandboxed code reaches time\.Now \(chain: HandleEvent -> meter -> stamp -> time\.Now\)`
}

// Wait only does duration arithmetic on values handed in — representing
// time is legal, observing it is not.
func (p *Part) Wait(d time.Duration) time.Duration {
	return d * 2
}

// CheckRead goes through the blessed provider-channel seam; the runtime
// sandbox decides, the analyzer stays silent.
func (p *Part) CheckRead() error {
	return p.sb.Require(security.CapFileRead)
}

// orphan is unexported and never called from any entry point, so its
// forbidden call produces no chain finding — the import gate above
// already owns the os import itself.
func orphan() int {
	return os.Getpid()
}
