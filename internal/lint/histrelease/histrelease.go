// Package histrelease generalizes the PrimaryOutput history leak fixed
// in PR 2 into a machine-checked rule: kernel code that observes a
// scheduler run's primary-output history (PrimaryOutput.History) owns
// that history and must release it (ReleaseHistory or ClearHistory) on
// every path out of the function — otherwise each of the thousands of
// single-use injection schedulers a fault-simulation run creates leaves
// its observations behind, and memory grows without bound.
//
// The check is lexical within one function: after a History call, a
// release must appear before any return statement; alternatively a
// deferred release anywhere in the function covers all paths. It applies
// to non-test code under internal/sim, internal/fault and internal/core
// — one-shot consumers (examples, cmd binaries, trace export) exit the
// process and are out of scope.
package histrelease

import (
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/lint"
)

// TargetPackages is the import-path scope of the check (prefix match).
var TargetPackages = []string{
	"repro/internal/sim",
	"repro/internal/fault",
	"repro/internal/core",
}

// modulePkg declares PrimaryOutput.
const modulePkg = "repro/internal/module"

// Analyzer is the histrelease check.
var Analyzer = &lint.Analyzer{
	Name: "histrelease",
	Doc: "a function observing PrimaryOutput.History must reach ReleaseHistory/" +
		"ClearHistory on all paths (PrimaryOutput histories leak per scheduler run)",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathMatchesAny(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	pass.Funcs(func(decl *ast.FuncDecl) {
		checkFunc(pass, decl.Body)
	})
	return nil
}

// primaryOutputMethod reports whether call invokes the named method on
// module.PrimaryOutput.
func primaryOutputMethod(pass *lint.Pass, call *ast.CallExpr, names ...string) bool {
	fn := lint.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	pkgPath, typeName := lint.ReceiverNamed(fn)
	if pkgPath != modulePkg || typeName != "PrimaryOutput" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	var observes, releases, returns []token.Pos
	deferredRelease := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if primaryOutputMethod(pass, n, "History") {
				observes = append(observes, n.Pos())
			}
			if primaryOutputMethod(pass, n, "ReleaseHistory", "ClearHistory") {
				releases = append(releases, n.Pos())
			}
		case *ast.DeferStmt:
			// A deferred release (direct or inside a deferred closure)
			// covers every path out of the function.
			ast.Inspect(n, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && primaryOutputMethod(pass, c, "ReleaseHistory", "ClearHistory") {
					deferredRelease = true
				}
				return true
			})
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})
	if len(observes) == 0 || deferredRelease {
		return
	}
	sort.Slice(releases, func(i, j int) bool { return releases[i] < releases[j] })
	sort.Slice(returns, func(i, j int) bool { return returns[i] < returns[j] })
	for _, obs := range observes {
		rel := firstAfter(releases, obs)
		if rel == token.NoPos {
			pass.Reportf(obs,
				"PrimaryOutput history observed but never released: call ReleaseHistory (or ClearHistory) once the run's outputs are consumed")
			continue
		}
		if ret := firstAfter(returns, obs); ret != token.NoPos && ret < rel {
			pass.Reportf(obs,
				"PrimaryOutput history may leak: return at line %d precedes the ReleaseHistory call (release on every path, or defer it)",
				pass.Fset.Position(ret).Line)
		}
	}
}

// firstAfter returns the first position in sorted ps strictly after pos,
// or NoPos.
func firstAfter(ps []token.Pos, pos token.Pos) token.Pos {
	for _, p := range ps {
		if p > pos {
			return p
		}
	}
	return token.NoPos
}
