package histrelease_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/histrelease"
)

func TestHistoryRelease(t *testing.T) {
	analysistest.Run(t, "testdata/src/hist", "repro/internal/core/fixture", histrelease.Analyzer)
}
