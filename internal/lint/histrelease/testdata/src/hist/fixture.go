// Package fixture exercises the histrelease analyzer. It is loaded
// under repro/internal/core/fixture — the scope that covers the
// scenario harness where the original leak lived; neverReleased mirrors
// the pre-fix scenario.Run, so reintroducing that leak is exactly what
// this analyzer (and the repo-clean test) would catch.
package fixture

import (
	"repro/internal/module"
	"repro/internal/sim"
)

func releaseOK(out *module.PrimaryOutput, id sim.SchedulerID) int {
	n := len(out.History(id))
	out.ReleaseHistory(id)
	return n
}

func deferOK(out *module.PrimaryOutput, id sim.SchedulerID) int {
	defer out.ReleaseHistory(id)
	return len(out.History(id))
}

func clearOK(out *module.PrimaryOutput, id sim.SchedulerID) int {
	n := len(out.History(id))
	out.ClearHistory()
	return n
}

func neverReleased(out *module.PrimaryOutput, id sim.SchedulerID) int {
	return len(out.History(id)) // want "never released"
}

func returnBeforeRelease(out *module.PrimaryOutput, id sim.SchedulerID, err error) (int, error) {
	n := len(out.History(id)) // want "may leak: return at line"
	if err != nil {
		return 0, err
	}
	out.ReleaseHistory(id)
	return n, nil
}
