package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive, staticcheck-style:
//
//	//lint:ignore analyzer1[,analyzer2...] reason
//
// placed either on the line of the finding (trailing comment) or on the
// line immediately above it. The reason is mandatory: a suppression
// without a recorded justification is itself reported, so silent
// opt-outs cannot accumulate.
const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string
	reason    string
	pos       token.Position
}

// covers reports whether the directive suppresses the named analyzer.
func (d ignoreDirective) covers(name string) bool {
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// ignoreIndex maps file -> line -> directives for one package.
type ignoreIndex map[string]map[int]ignoreDirective

// collectIgnores parses every //lint:ignore directive in the package.
// Malformed directives (no analyzer list, or no reason) are reported as
// diagnostics of the pseudo-analyzer "lintdirective" via report.
func collectIgnores(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, ok := strings.Cut(rest, " ")
				if !ok || names == "" || strings.TrimSpace(reason) == "" {
					report(Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore analyzer[,analyzer] reason\"",
					})
					continue
				}
				d := ignoreDirective{
					analyzers: strings.Split(names, ","),
					reason:    strings.TrimSpace(reason),
					pos:       pos,
				}
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int]ignoreDirective)
				}
				idx[pos.Filename][pos.Line] = d
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic is covered by a directive on
// its own line or the line above.
func (idx ignoreIndex) suppressed(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok && dir.covers(d.Analyzer) {
			return true
		}
	}
	return false
}
