package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive, staticcheck-style:
//
//	//lint:ignore analyzer1[,analyzer2...] reason
//
// placed either on the line of the finding (trailing comment) or on the
// line immediately above it. The reason is mandatory: a suppression
// without a recorded justification is itself reported, so silent
// opt-outs cannot accumulate. Directives are also validated against the
// analyzer suite actually running: naming an analyzer that does not
// exist (a typo, or a check that was renamed or retired) is reported,
// and a well-formed directive that suppresses nothing is reported as
// stale — both via the pseudo-analyzer "lintdirective" — so dead
// suppressions are pruned instead of silently rotting.
const ignorePrefix = "//lint:ignore"

// directiveAnalyzer is the pseudo-analyzer name under which directive
// problems (malformed, unknown analyzer, stale) are reported.
const directiveAnalyzer = "lintdirective"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string
	reason    string
	pos       token.Position
	// used records whether the directive suppressed at least one
	// diagnostic in this run; an unused well-formed directive is stale.
	used bool
}

// covers reports whether the directive suppresses the named analyzer.
func (d *ignoreDirective) covers(name string) bool {
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// ignoreIndex maps file -> line -> directives for one package.
type ignoreIndex map[string]map[int]*ignoreDirective

// collectIgnores parses every //lint:ignore directive in the package.
// Malformed directives (no analyzer list, or no reason) and directives
// naming analyzers absent from the known set are reported as diagnostics
// of the pseudo-analyzer "lintdirective" via report. known maps every
// analyzer name in the running suite to true; a nil map disables the
// unknown-name check.
func collectIgnores(fset *token.FileSet, files []*ast.File, report func(Diagnostic), known map[string]bool) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, ok := strings.Cut(rest, " ")
				if !ok || names == "" || strings.TrimSpace(reason) == "" {
					report(Diagnostic{
						Analyzer: directiveAnalyzer,
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore analyzer[,analyzer] reason\"",
					})
					continue
				}
				d := &ignoreDirective{
					analyzers: strings.Split(names, ","),
					reason:    strings.TrimSpace(reason),
					pos:       pos,
				}
				if known != nil {
					for _, a := range d.analyzers {
						if !known[a] && a != directiveAnalyzer {
							report(Diagnostic{
								Analyzer: directiveAnalyzer,
								Pos:      pos,
								Message:  "//lint:ignore names unknown analyzer \"" + a + "\": not in the running suite (typo, renamed, or retired check)",
							})
						}
					}
				}
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int]*ignoreDirective)
				}
				idx[pos.Filename][pos.Line] = d
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic is covered by a directive on
// its own line or the line above, marking the covering directive used.
func (idx ignoreIndex) suppressed(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := lines[line]; ok && dir.covers(d.Analyzer) {
			dir.used = true
			return true
		}
	}
	return false
}

// staleDirectives reports every well-formed directive that names at
// least one analyzer from the running suite yet suppressed nothing —
// the finding it once silenced has been refactored away, so the
// directive should be pruned. Directives naming only unknown analyzers
// are skipped (already reported as unknown).
func (idx ignoreIndex) staleDirectives(report func(Diagnostic), known map[string]bool) {
	for _, lines := range idx {
		for _, d := range lines {
			if d.used {
				continue
			}
			inSuite := known == nil
			for _, a := range d.analyzers {
				if known[a] {
					inSuite = true
					break
				}
			}
			if !inSuite {
				continue
			}
			report(Diagnostic{
				Analyzer: directiveAnalyzer,
				Pos:      d.pos,
				Message:  "stale //lint:ignore directive: it suppresses no finding on this or the next line; remove it",
			})
		}
	}
}
