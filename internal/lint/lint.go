// Package lint is gocad's in-tree static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// model (Analyzer, Pass, Diagnostic) over the standard library's go/ast
// and go/types, plus a package loader built on `go list -export` so
// analyzers see fully type-checked packages without vendoring x/tools.
//
// The analyzers under internal/lint/* machine-enforce the kernel
// invariants the paper's guarantees rest on — bit-identical replay,
// worker-count determinism, pooled-token lifetime, history release, and
// RMI latency/error discipline — so they survive refactors instead of
// living in comments. cmd/gocad-lint is the multichecker binary CI runs.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check. Run inspects a single package through its
// Pass and reports findings; it must be deterministic (diagnostics are
// sorted by position, so report order does not matter).
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `gocad-lint -help`.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position fully resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col: message (analyzer) form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Callee resolves the static callee of a call expression, or nil for
// calls through function values, builtins, and type conversions. For
// method calls (including interface methods) it returns the method; for
// package-level functions, the function.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// FuncPkgPath returns the import path of the package declaring fn, or ""
// (builtins, error.Error, and other universe-scope functions).
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || FuncPkgPath(fn) != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ReceiverNamed returns the defining package path and type name of a
// method's receiver (dereferencing one pointer), or ("", "") when fn is
// not a method on a named type.
func ReceiverNamed(fn *types.Func) (pkgPath, typeName string) {
	if fn == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return "", ""
	}
	if named.Obj().Pkg() != nil {
		pkgPath = named.Obj().Pkg().Path()
	}
	return pkgPath, named.Obj().Name()
}

// ReturnsError reports whether fn's last result is the built-in error
// type.
func ReturnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// HasPathPrefix reports whether path is prefix itself or a package
// below it ("a/b" matches "a/b" and "a/b/c", never "a/bc").
func HasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// PathMatchesAny reports whether path is under any of the prefixes.
func PathMatchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if HasPathPrefix(path, p) {
			return true
		}
	}
	return false
}

// Funcs visits every function and method declaration with a body in the
// pass's files.
func (p *Pass) Funcs(visit func(decl *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
