package lint_test

import (
	"go/ast"
	"testing"

	"repro/internal/lint"
)

// callcount reports every function call — a trivial analyzer used to
// exercise the framework's directive filtering and diagnostic plumbing
// independent of any real check.
var callcount = &lint.Analyzer{
	Name: "callcount",
	Doc:  "reports every function call (framework test analyzer)",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call")
				}
				return true
			})
		}
		return nil
	},
}

func TestIgnoreDirectives(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/ignore", "repro/fixture/ignore", ".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{callcount})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		analyzer string
		line     int
	}
	want := []key{
		{"lintdirective", 16}, // //lint:ignore with no reason
		{"callcount", 17},     // the malformed directive suppresses nothing
		{"callcount", 21},     // undirected call in plainCall
		{"lintdirective", 25}, // directive naming an analyzer outside the suite
		{"callcount", 26},     // unknown-analyzer directive suppresses nothing
		{"lintdirective", 30}, // well-formed directive with no finding to suppress
	}
	var got []key
	for _, d := range diags {
		got = append(got, key{d.Analyzer, d.Pos.Line})
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestLoadTargets checks that Load type-checks real repo packages and
// scopes analysis to non-test files only.
func TestLoadTargets(t *testing.T) {
	pkgs, err := lint.Load(".", "repro/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "repro/internal/sim" {
		t.Errorf("import path %q", p.ImportPath)
	}
	if len(p.Files) == 0 || p.Types == nil || len(p.Info.Uses) == 0 {
		t.Fatalf("package not fully loaded: %d files", len(p.Files))
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go" {
			t.Errorf("test file loaded: %s", name)
		}
	}
}
