package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, fully type-checked package ready for analysis.
// Only non-test files are loaded: the invariants the analyzers enforce
// (determinism, token lifetime, lock discipline) bind production code;
// tests are free to use wall clocks and global randomness.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over the patterns
// and returns every listed package (targets and dependencies).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data produced by
// `go list -export`, through the standard gc importer.
type exportImporter struct {
	gc      types.ImporterFrom
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.ImportFrom(path, dir, mode)
}

// newInfo allocates the type-information maps the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// parseFiles parses the named files in dir with comments retained.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck checks already-parsed files as import path ipath, resolving
// imports through imp.
func typeCheck(fset *token.FileSet, ipath, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := newInfo()
	tpkg, _ := conf.Check(ipath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v (and %d more)", ipath, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{ImportPath: ipath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load lists the patterns with the go tool (run in dir, which must lie
// inside the module) and returns every matched package parsed from
// source and type-checked against the export data of its dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, err := typeCheck(fset, t.ImportPath, t.Dir, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir type-checks a single directory of Go files (an analysistest
// fixture) under the given fake import path. Imports are resolved
// against the enclosing module: moduleDir is any directory inside it
// (test packages pass "."). The fake path lets a fixture stand in for an
// in-scope package (e.g. "repro/internal/sim/fixture") while importing
// the real repro packages it exercises.
func LoadDir(dir, importPath, moduleDir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	// Collect the fixture's imports and resolve them (plus dependencies)
	// to export data in one go list run.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		listed, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	return typeCheck(fset, importPath, dir, files, imp)
}
