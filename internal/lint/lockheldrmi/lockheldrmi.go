// Package lockheldrmi forbids calling into the RMI layer while holding a
// sync.Mutex or sync.RWMutex. An RMI call blocks for a full network
// round trip — and with PR 1's resilience stack, potentially a whole
// backoff-retry-reconnect ladder lasting seconds — so performing one
// under a lock turns a latency hazard into a system-wide stall (every
// goroutine touching the lock queues behind the network) and, when the
// RMI completion path takes the same lock, a deadlock.
//
// Two call surfaces count as RMI: internal/rmi's client side
// (rmi.Client and rmi.Pending methods, plus Dial/NewClient, which
// perform the handshake) and all of internal/iplib, whose typed stubs
// are documented as thin envelopes around internal/rmi — each method is
// a round trip. internal/rmi's server-side types (Session, Server) and
// the Encode/Decode helpers are local and exempt.
//
// The analysis is lexical within one function: Lock/RLock marks the
// mutex held, Unlock/RUnlock releases it, and a deferred unlock keeps it
// held to the end of the function. Functions whose name ends in "Locked"
// follow the codebase's convention that the caller holds a lock, so any
// direct RMI call inside them is flagged too. Nested function literals
// run at an unknown later time and are analyzed with a fresh lock state.
package lockheldrmi

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
)

// rmiPackages are the call surfaces treated as network round trips.
var rmiPackages = []string{
	"repro/internal/rmi",
	"repro/internal/iplib",
}

// rmiPkg is the transport package; only its client side blocks on the
// network.
const rmiPkg = "repro/internal/rmi"

// rmiClientTypes are the internal/rmi receiver types whose methods are
// round trips (or block on one, as Pending.Err does).
var rmiClientTypes = map[string]bool{"Client": true, "Pending": true}

// rmiClientFuncs are the package-level internal/rmi functions that
// perform a network handshake.
var rmiClientFuncs = map[string]bool{"Dial": true, "NewClient": true}

// rmiNonBlockingClient are rmi.Client methods that only read local,
// mutex-guarded state — never the wire. With the multiplexed transport
// these are the sanctioned observability accessors (session identity,
// liveness, reconnect count, pipeline high-water mark); holding a caller
// lock across them is fine, and callers legitimately consult them inside
// their own critical sections.
var rmiNonBlockingClient = map[string]bool{
	"Session":      true,
	"Dead":         true,
	"Reconnects":   true,
	"PeakInFlight": true,
}

// isRMICall reports whether fn blocks on a network round trip.
func isRMICall(fn *types.Func) bool {
	pkg := lint.FuncPkgPath(fn)
	if pkg == "repro/internal/iplib" {
		return true
	}
	if pkg != rmiPkg {
		return false
	}
	if _, typeName := lint.ReceiverNamed(fn); typeName != "" {
		if typeName == "Client" && rmiNonBlockingClient[fn.Name()] {
			return false
		}
		return rmiClientTypes[typeName]
	}
	return rmiClientFuncs[fn.Name()]
}

// Analyzer is the lockheld-rmi check.
var Analyzer = &lint.Analyzer{
	Name: "lockheld-rmi",
	Doc: "forbid RMI calls (internal/rmi, internal/iplib) while a sync.Mutex/RWMutex " +
		"is held: a network round trip under a lock stalls every contender and " +
		"risks deadlock with the retry/reconnect machinery",
	Run: run,
}

func run(pass *lint.Pass) error {
	// The RMI packages implement the transport; their own internal
	// locking is the serialization the protocol requires.
	if lint.PathMatchesAny(pass.Pkg.Path(), rmiPackages) {
		return nil
	}
	pass.Funcs(func(decl *ast.FuncDecl) {
		checkFunc(pass, decl.Name.Name, decl.Body)
	})
	return nil
}

// evKind is one lock-relevant occurrence in a function body.
type evKind int

const (
	evLock evKind = iota
	evUnlock
	evDeferUnlock
	evRMICall
)

type event struct {
	pos  token.Pos
	kind evKind
	key  string // rendered mutex receiver, e.g. "e.mu"
	desc string // rendered RMI callee, for the message
}

// checkFunc simulates lock state through body in source order. Nested
// function literals are queued and analyzed separately (their bodies run
// later, without the enclosing lexical locks — a goroutine spawned under
// a lock does not hold it).
func checkFunc(pass *lint.Pass, name string, body *ast.BlockStmt) {
	var events []event
	var nested []*ast.FuncLit

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				nested = append(nested, m)
				return false
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.CallExpr:
				fn := lint.Callee(pass.TypesInfo, m)
				if fn == nil {
					return true
				}
				if key, kind, ok := mutexOp(pass, m, fn); ok {
					if kind == evUnlock && inDefer {
						kind = evDeferUnlock
					}
					events = append(events, event{pos: m.Pos(), kind: kind, key: key})
					return true
				}
				if isRMICall(fn) {
					events = append(events, event{pos: m.Pos(), kind: evRMICall,
						desc: calleeLabel(fn)})
				}
			}
			return true
		})
	}
	walk(body, false)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]bool{}
	// The *Locked suffix convention: the caller holds a lock for the
	// whole body.
	convention := strings.HasSuffix(name, "Locked")
	for _, e := range events {
		switch e.kind {
		case evLock, evDeferUnlock:
			// A deferred unlock means the lock stays held from here to
			// every return — for call-site purposes, identical to held.
			if e.kind == evLock {
				held[e.key] = true
			}
		case evUnlock:
			delete(held, e.key)
		case evRMICall:
			if len(held) > 0 {
				pass.Reportf(e.pos,
					"RMI call %s while mutex %s is held: a network round trip (plus retries and reconnects) under a lock stalls every contender", e.desc, anyKey(held))
			} else if convention {
				pass.Reportf(e.pos,
					"RMI call %s inside %s: the *Locked naming convention means the caller holds a mutex across this network round trip", e.desc, name)
			}
		}
	}

	for _, fl := range nested {
		checkFunc(pass, name+".func", fl.Body)
	}
}

// mutexOp classifies a call as a sync.Mutex/RWMutex lock or unlock and
// returns a stable key for the receiver expression.
func mutexOp(pass *lint.Pass, call *ast.CallExpr, fn *types.Func) (key string, kind evKind, ok bool) {
	pkgPath, typeName := lint.ReceiverNamed(fn)
	if pkgPath != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		kind = evLock
	case "Unlock", "RUnlock":
		kind = evUnlock
	default:
		return "", 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// calleeLabel renders the flagged callee for the diagnostic.
func calleeLabel(fn *types.Func) string {
	if _, typeName := lint.ReceiverNamed(fn); typeName != "" {
		return typeName + "." + fn.Name()
	}
	return fn.Name()
}

// anyKey returns one held mutex key for the message (deterministically:
// the smallest).
func anyKey(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}
