package lockheldrmi_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lockheldrmi"
)

func TestLockHeldRMI(t *testing.T) {
	analysistest.Run(t, "testdata/src/locks", "repro/fixture/locks", lockheldrmi.Analyzer)
}
