// Package fixture exercises the lockheld-rmi analyzer: RMI round trips
// (iplib stubs, rmi.Client methods) under a held sync.Mutex are
// flagged; server-side rmi types and fresh-state goroutines are not.
package fixture

import (
	"sync"

	"repro/internal/iplib"
	"repro/internal/rmi"
)

type gateway struct {
	mu     sync.Mutex
	client *iplib.IPClient
}

func underLock(g *gateway) (float64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.client.Fees() // want "while mutex g.mu is held"
}

func unlockFirst(g *gateway) (float64, error) {
	g.mu.Lock()
	g.mu.Unlock()
	return g.client.Fees()
}

func flushLocked(g *gateway) (float64, error) {
	return g.client.Fees() // want `\*Locked naming convention`
}

func goroutineOK(g *gateway, out chan<- float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		v, _ := g.client.Fees()
		out <- v
	}()
}

func clientUnderLock(mu *sync.Mutex, c *rmi.Client) error {
	mu.Lock()
	defer mu.Unlock()
	return c.Close() // want "while mutex mu is held"
}

func rwLockHeld(mu *sync.RWMutex, c *rmi.Client) error {
	mu.RLock()
	defer mu.RUnlock()
	return c.Call("m", nil, nil) // want "while mutex mu is held"
}

// Non-blocking client accessors read local mux state, never the wire;
// consulting them inside a critical section is sanctioned.
func accessorsOK(mu *sync.Mutex, c *rmi.Client) (string, bool, int) {
	mu.Lock()
	defer mu.Unlock()
	return c.Session(), c.Dead() || c.Reconnects() > 0, c.PeakInFlight()
}

func serverSideOK(sess *rmi.Session, mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	sess.Charge(1)
}

func encodeOK(mu *sync.Mutex, v any) ([]byte, error) {
	mu.Lock()
	defer mu.Unlock()
	return rmi.Encode(v)
}
