// The tenant-table shapes from the multi-tenant gateway: a mutex
// guarding per-tenant accounting must never be held across an RMI
// round trip — one slow tenant's wire stall would freeze admission for
// every other tenant. Server-side sampling (rmi.Session methods) under
// the same mutex stays sanctioned: it reads local state, not the wire.
package fixture

import (
	"sync"

	"repro/internal/iplib"
	"repro/internal/rmi"
)

type tenantTable struct {
	mu       sync.Mutex
	feeCents map[string]float64
	probe    *iplib.IPClient
}

// reconcileUnderLock audits a tenant's fees by asking the provider over
// the wire while the whole table is locked — the admission-freeze bug.
func (tt *tenantTable) reconcileUnderLock(tenant string) (float64, error) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	remote, err := tt.probe.Fees() // want "while mutex tt.mu is held"
	if err != nil {
		return 0, err
	}
	return remote - tt.feeCents[tenant], nil
}

// settle samples the session server-side first (local state, no wire),
// then locks only for the bookkeeping — the sanctioned shape.
func (tt *tenantTable) settle(tenant string, sess *rmi.Session) {
	fees := sess.Fees()
	tt.mu.Lock()
	defer tt.mu.Unlock()
	tt.feeCents[tenant] = fees
}

// chargeUnderLock touches only server-side session state inside the
// critical section; rmi.Session is exempt.
func (tt *tenantTable) chargeUnderLock(sess *rmi.Session, cents float64) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	sess.Charge(cents)
	tt.feeCents[sess.Client] += cents
}
