// Package noalloc turns PR 7's zero-allocation guarantees from a
// benchdiff advisory into a hard lint gate. A hot-path function is
// annotated
//
//	//gocad:noalloc
//
// in its doc comment, and this analyzer runs the compiler's escape
// analysis (go build -gcflags=-m) over the annotated package, failing
// when any annotated function contains a heap allocation ("escapes to
// heap" / "moved to heap"; "leaking param" lines are ownership notes,
// not allocations, and are ignored).
//
// The annotation contract (DESIGN.md §13): an annotated function must
// keep its slow paths — growth, error construction, anything that
// legitimately allocates — outlined into separate //go:noinline
// helpers. The compiler attributes an inlined callee's allocations to
// the caller's call-site line, so a slow-path helper that gets inlined
// back would (correctly) fail the gate; //go:noinline keeps the
// attribution, and the annotation's meaning, exact: the annotated
// body itself performs zero heap allocations in steady state.
//
// The build runs with the process environment's GOFLAGS, so CI invokes
// the gate under the same flags as make bench and the escape analysis
// matches benchmark conditions. Build caching makes repeat runs cheap:
// the go tool replays -m diagnostics from the cache.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// Directive marks a function whose body must not allocate.
const Directive = "//gocad:noalloc"

// Analyzer is the noalloc check.
var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc: "run the compiler's escape analysis over //gocad:noalloc-annotated " +
		"hot-path functions and fail when an annotated function gains a heap " +
		"allocation (slow paths must be outlined into //go:noinline helpers)",
	Run: run,
}

// region is one annotated function's source extent.
type region struct {
	name      string
	file      string
	startLine int
	endLine   int
}

func run(pass *lint.Pass) error {
	var regions []region
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			start := pass.Fset.Position(fd.Pos())
			end := pass.Fset.Position(fd.Body.Rbrace)
			regions = append(regions, region{
				name:      funcDisplayName(fd),
				file:      start.Filename,
				startLine: start.Line,
				endLine:   end.Line,
			})
		}
	}
	if len(regions) == 0 {
		return nil
	}
	allocs, err := escapeSites(pass)
	if err != nil {
		return err
	}
	for _, a := range allocs {
		for _, r := range regions {
			if a.file == r.file && a.line >= r.startLine && a.line <= r.endLine {
				pass.Reportf(linePos(pass, a.file, a.line),
					"//gocad:noalloc function %s allocates: %s (outline the slow path into a //go:noinline helper, or drop the annotation)",
					r.name, a.msg)
				break
			}
		}
	}
	return nil
}

// annotated reports whether the declaration's doc comment carries the
// noalloc directive on a line of its own.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// funcDisplayName renders "Name" or "(Recv).Name" for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// escapeSite is one compiler-reported heap allocation.
type escapeSite struct {
	file string
	line int
	msg  string
}

// escapeRe matches the file:line:col: message lines of -gcflags=-m.
var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeSites builds the pass's package with -gcflags=-m and returns
// every reported heap allocation, resolved to absolute-ish file paths
// matching the pass's FileSet positions.
func escapeSites(pass *lint.Pass) ([]escapeSite, error) {
	if len(pass.Files) == 0 {
		return nil, nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	args := []string{"build", "-gcflags=-m"}
	if pass.Pkg.Name() == "main" {
		args = append(args, "-o", os.DevNull)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("noalloc: go build -gcflags=-m in %s: %v\n%s", dir, err, out)
	}
	var sites []escapeSite
	for _, raw := range strings.Split(string(out), "\n") {
		m := escapeRe.FindStringSubmatch(raw)
		if m == nil {
			continue
		}
		msg := m[4]
		if !isAllocation(msg) {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		sites = append(sites, escapeSite{file: file, line: line, msg: msg})
	}
	return sites, nil
}

// isAllocation distinguishes real heap allocations from the escape
// analysis's ownership commentary.
func isAllocation(msg string) bool {
	if strings.HasPrefix(msg, "leaking param") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// linePos resolves (file, line) back to a token.Pos in the pass's
// FileSet so the diagnostic lands on the allocating line.
func linePos(pass *lint.Pass, file string, line int) token.Pos {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || tf.Name() != file {
			continue
		}
		if line >= 1 && line <= tf.LineCount() {
			return tf.LineStart(line)
		}
		return f.Pos()
	}
	return pass.Files[0].Pos()
}
