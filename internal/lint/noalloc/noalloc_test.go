package noalloc_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/noalloc"
)

func TestHotFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/hot", "repro/internal/sim/fixture", noalloc.Analyzer)
}
