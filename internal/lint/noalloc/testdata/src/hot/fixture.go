// Package hot is the noalloc fixture: an annotated function that leaks
// an allocation must be flagged, an annotated allocation-free function
// and an unannotated allocator must stay silent, and an annotated
// function whose slow path is outlined behind //go:noinline must pass.
package hot

var sink *int

// Leaky promises zero allocations but lets a new escape.
//
//gocad:noalloc
func Leaky() {
	x := new(int) // want `//gocad:noalloc function Leaky allocates`
	sink = x
}

// Clean appends into a caller-owned buffer: no heap traffic.
//
//gocad:noalloc
func Clean(b []byte, v byte) []byte {
	return append(b, v)
}

// Unchecked allocates freely — no annotation, no finding.
func Unchecked() *int {
	return new(int)
}

// Outlined keeps its allocating slow path behind a //go:noinline
// helper, so the annotated body itself is allocation-free.
//
//gocad:noalloc
func Outlined(b []byte) []byte {
	if cap(b)-len(b) < 1 {
		b = grow(b)
	}
	return append(b, 0)
}

//go:noinline
func grow(b []byte) []byte {
	nb := make([]byte, len(b), 2*cap(b)+1)
	copy(nb, b)
	return nb
}
