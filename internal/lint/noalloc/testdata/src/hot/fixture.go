// Package hot is the noalloc fixture: an annotated function that leaks
// an allocation must be flagged, an annotated allocation-free function
// and an unannotated allocator must stay silent, and an annotated
// function whose slow path is outlined behind //go:noinline must pass.
package hot

var sink *int

// Leaky promises zero allocations but lets a new escape.
//
//gocad:noalloc
func Leaky() {
	x := new(int) // want `//gocad:noalloc function Leaky allocates`
	sink = x
}

// Clean appends into a caller-owned buffer: no heap traffic.
//
//gocad:noalloc
func Clean(b []byte, v byte) []byte {
	return append(b, v)
}

// Unchecked allocates freely — no annotation, no finding.
func Unchecked() *int {
	return new(int)
}

// Outlined keeps its allocating slow path behind a //go:noinline
// helper, so the annotated body itself is allocation-free.
//
//gocad:noalloc
func Outlined(b []byte) []byte {
	if cap(b)-len(b) < 1 {
		b = grow(b)
	}
	return append(b, 0)
}

//go:noinline
func grow(b []byte) []byte {
	nb := make([]byte, len(b), 2*cap(b)+1)
	copy(nb, b)
	return nb
}

// The struct-of-arrays cases mirror the event kernel's calendar
// buckets: parallel lanes at full length with a count field, written by
// index. Indexed lane writes into caller-owned storage are
// allocation-free; boxing a lane value into an interface is not.

type lanes struct {
	n    int
	seqs []uint64
	vals []any
}

// LaneWriteClean fills pre-sized lanes by index and bumps the count —
// the calendar enqueue shape. No heap traffic.
//
//gocad:noalloc
func LaneWriteClean(b *lanes, seq uint64, v any) {
	i := b.n
	b.seqs[i] = seq
	b.vals[i] = v
	b.n = i + 1
}

// LaneWriteBoxed boxes a scalar into an interface lane per call — the
// regression the typed lanes exist to prevent.
//
//gocad:noalloc
func LaneWriteBoxed(b *lanes, seq uint64) {
	i := b.n
	b.seqs[i] = seq
	b.vals[i] = seq // want `//gocad:noalloc function LaneWriteBoxed allocates`
	b.n = i + 1
}

// LaneGrowOutlined keeps the lane-doubling slow path behind a
// //go:noinline helper, the same shape as the kernel's growBucketLanes.
//
//gocad:noalloc
func LaneGrowOutlined(b *lanes, seq uint64, v any) {
	if b.n == len(b.seqs) {
		growLanes(b)
	}
	LaneWriteClean(b, seq, v)
}

//go:noinline
func growLanes(b *lanes) {
	c := 2*len(b.seqs) + 8
	seqs := make([]uint64, c)
	copy(seqs, b.seqs)
	vals := make([]any, c)
	copy(vals, b.vals)
	b.seqs, b.vals = seqs, vals
}
