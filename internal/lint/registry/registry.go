// Package registry enumerates the gocad-lint analyzer suite in one
// place, so the command, the CI gate and the repo-cleanliness test all
// run exactly the same checks. It lives apart from package lint to keep
// the framework free of analyzer imports (and the analyzers free of
// each other).
package registry

import (
	"repro/internal/lint"
	"repro/internal/lint/capability"
	"repro/internal/lint/histrelease"
	"repro/internal/lint/lockheldrmi"
	"repro/internal/lint/noalloc"
	"repro/internal/lint/remoteerr"
	"repro/internal/lint/simdeterminism"
	"repro/internal/lint/tokenpool"
	"repro/internal/lint/wiresym"
)

// All returns the full analyzer suite in its canonical order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		simdeterminism.Analyzer,
		tokenpool.Analyzer,
		histrelease.Analyzer,
		lockheldrmi.Analyzer,
		remoteerr.Analyzer,
		capability.Analyzer,
		wiresym.Analyzer,
		noalloc.Analyzer,
	}
}
