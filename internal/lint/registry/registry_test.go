package registry_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/registry"
)

// TestRepoIsClean is the CI acceptance gate in test form: the analyzer
// suite must find nothing in the tree. Reverting the scenario.Run
// history release, adding a time.Now() to the scheduler, or dispatching
// RMI under a lock makes this test (and ci.sh) fail.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load(".", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := lint.RunAnalyzers(pkgs, registry.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
	}
}

// TestSuiteComplete pins the analyzer roster so a dropped registration
// fails loudly instead of silently weakening CI.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"simdeterminism", "tokenpool", "histrelease", "lockheld-rmi",
		"remote-err", "capability", "wiresym", "noalloc",
	}
	all := registry.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks doc or run function", a.Name)
		}
	}
}
