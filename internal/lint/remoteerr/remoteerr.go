// Package remoteerr forbids silently discarding the error result of a
// remote-surface call. Errors from internal/rmi, internal/iplib,
// internal/provider and internal/estim are not incidental: they carry
// ErrProviderDead, the signal the whole graceful-degradation design
// (PR 1) pivots on — an estimator that never sees the error never
// degrades, and the run hangs on a dead provider or silently produces
// partial results with no degradation record.
//
// A call discards its error when it stands alone as an expression
// statement. Deferred calls (defer c.Close()) and goroutine launches are
// exempt — their results are unusable by construction — and assigning
// the error to blank (`_ = c.Close()`) is accepted as an explicit,
// greppable acknowledgment.
package remoteerr

import (
	"go/ast"

	"repro/internal/lint"
)

// remotePackages are the error sources whose failures drive degradation.
// The gateway belongs here for the same reason as the transport: a
// discarded AddTenant or Drain error means a tenant silently not
// registered or a shutdown that lost billing records.
var remotePackages = []string{
	"repro/internal/rmi",
	"repro/internal/iplib",
	"repro/internal/provider",
	"repro/internal/estim",
	"repro/internal/gateway",
}

// Analyzer is the remote-err check.
var Analyzer = &lint.Analyzer{
	Name: "remote-err",
	Doc: "errors from RMI, estimator and provider calls must not be discarded: " +
		"ErrProviderDead drives graceful degradation",
	Run: run,
}

func run(pass *lint.Pass) error {
	// The remote packages themselves are the implementation; internal
	// plumbing calls are their own responsibility.
	if lint.PathMatchesAny(pass.Pkg.Path(), remotePackages) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.Callee(pass.TypesInfo, call)
			if fn == nil || !lint.ReturnsError(fn) {
				return true
			}
			if !lint.PathMatchesAny(lint.FuncPkgPath(fn), remotePackages) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error from %s discarded: remote failures (ErrProviderDead) drive graceful degradation and must be handled (or explicitly acknowledged with _ =)",
				label(fn))
			return true
		})
	}
	return nil
}

func label(fn interface {
	Name() string
}) string {
	if f, ok := fn.(interface{ FullName() string }); ok {
		return f.FullName()
	}
	return fn.Name()
}
