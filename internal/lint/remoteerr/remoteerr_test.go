package remoteerr_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/remoteerr"
)

func TestRemoteErrors(t *testing.T) {
	analysistest.Run(t, "testdata/src/remote", "repro/fixture/remote", remoteerr.Analyzer)
}
