// Package fixture exercises the remote-err analyzer: errors from
// remote-surface calls must be handled or explicitly acknowledged.
package fixture

import (
	"repro/internal/gateway"
	"repro/internal/iplib"
	"repro/internal/rmi"
)

func discard(c *rmi.Client) {
	c.Close() // want "error from .* discarded"
}

func discardGateway(g *gateway.Gateway, spec gateway.TenantSpec) {
	g.AddTenant(spec) // want "error from .* discarded"
	g.Drain(0)        // want "error from .* discarded"
}

func gatewayAcknowledged(g *gateway.Gateway) {
	_ = g.Close()
}

func discardStub(c *iplib.IPClient) {
	c.Fees() // want "error from .* discarded"
}

func acknowledged(c *rmi.Client) {
	_ = c.Close()
}

func handled(c *rmi.Client) error {
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}

func deferredOK(c *rmi.Client) {
	defer c.Close()
}

func goroutineOK(c *rmi.Client) {
	go c.Close()
}

func localOK() {
	helper()
}

func helper() error { return nil }
