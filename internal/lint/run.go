package lint

import (
	"sort"
	"time"
)

// Timing records the cumulative wall time one analyzer spent across all
// packages in a run.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// RunAnalyzers applies every analyzer to every package, filters findings
// through //lint:ignore directives, and returns the surviving
// diagnostics sorted by position. Analyzer errors (not findings) abort.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersTimed(pkgs, analyzers)
	return diags, err
}

// RunAnalyzersTimed is RunAnalyzers plus per-analyzer wall-time
// accounting. Timings are returned in the order analyzers were given,
// each entry summing that analyzer's Run time over every package.
//
// Directive hygiene is enforced here because only the runner knows the
// full suite: //lint:ignore comments naming analyzers outside the run
// are reported as unknown, and well-formed directives that suppress no
// finding are reported as stale (both under the "lintdirective"
// pseudo-analyzer).
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	known := make(map[string]bool, len(analyzers))
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		collect := func(d Diagnostic) { raw = append(raw, d) }
		// Directive diagnostics (malformed/unknown/stale) bypass the
		// suppression filter: a directive cannot vouch for itself.
		var direct []Diagnostic
		report := func(d Diagnostic) { direct = append(direct, d) }
		ignores := collectIgnores(pkg.Fset, pkg.Files, report, known)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    collect,
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, err
			}
		}
		for _, d := range raw {
			if !ignores.suppressed(d) {
				out = append(out, d)
			}
		}
		ignores.staleDirectives(report, known)
		out = append(out, direct...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: elapsed[a.Name]})
	}
	return out, timings, nil
}
