package lint

import "sort"

// RunAnalyzers applies every analyzer to every package, filters findings
// through //lint:ignore directives, and returns the surviving
// diagnostics sorted by position. Analyzer errors (not findings) abort.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		collect := func(d Diagnostic) { raw = append(raw, d) }
		ignores := collectIgnores(pkg.Fset, pkg.Files, collect)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		for _, d := range raw {
			if !ignores.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
