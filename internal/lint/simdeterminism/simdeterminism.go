// Package simdeterminism forbids the three nondeterminism sources that
// would silently break gocad's replay guarantees in kernel code:
//
//  1. time.Now — PR 1's wire-order session replay and the paper's
//     bit-identical virtual simulation require runs to be pure functions
//     of their inputs; wall-clock reads leak real time into results.
//  2. The global math/rand source — unseeded (or globally re-seeded)
//     randomness differs between runs and between concurrently running
//     schedulers. All randomness must flow through an explicitly seeded
//     *rand.Rand the caller passes in.
//  3. Map iteration feeding an ordered accumulator — Go randomizes map
//     range order per run, so appending to a result slice from inside a
//     map range makes output order (and everything downstream, e.g.
//     PR 2's index-ordered merges) differ run to run.
//
// The check applies to non-test code under internal/sim, internal/fault,
// internal/core and internal/replica (circuit breakers must read time
// through their injected Clock, never the wall clock directly — the
// chaos harness's determinism depends on it). Wall-clock metering that
// never feeds simulation results (scenario timing columns) is suppressed
// case by case with
// //lint:ignore simdeterminism directives carrying the justification.
package simdeterminism

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// TargetPackages is the import-path scope of the check (prefix match).
var TargetPackages = []string{
	"repro/internal/sim",
	"repro/internal/fault",
	"repro/internal/core",
	"repro/internal/replica",
	"repro/internal/shard",
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators — the sanctioned way to be random.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the simdeterminism check.
var Analyzer = &lint.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid time.Now, the global math/rand source, and map-range iteration " +
		"feeding ordered results in simulation kernel packages (replay and " +
		"worker-count determinism)",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathMatchesAny(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags time.Now and global math/rand source calls.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	pkg := lint.FuncPkgPath(fn)
	switch pkg {
	case "time":
		if lint.IsPkgFunc(fn, "time", "Now") {
			pass.Reportf(call.Pos(),
				"time.Now in simulation kernel code: runs must be pure functions of their inputs")
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil { // *rand.Rand methods are fine
			return
		}
		if randConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s source in simulation kernel code: route randomness through an explicitly seeded *rand.Rand passed by the caller", pkg, fn.Name())
	}
}

// checkMapRange flags `for ... range m` over a map whose body appends to
// an accumulator declared outside the loop: the append order then
// depends on Go's randomized map iteration.
func checkMapRange(pass *lint.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		if accumulatorEscapesLoop(pass, call.Args[0], rng) {
			pass.Reportf(call.Pos(),
				"append to an accumulator declared outside this map range: result order depends on randomized map iteration; iterate a sorted key slice instead")
		}
		return true
	})
}

// accumulatorEscapesLoop reports whether the append destination lives
// outside the range statement (an outer local, a field, an element of an
// outer container).
func accumulatorEscapesLoop(pass *lint.Pass, dst ast.Expr, rng *ast.RangeStmt) bool {
	switch dst := ast.Unparen(dst).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[dst]
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Fields and container elements outlive the loop by construction.
		return true
	}
	return false
}
