package simdeterminism_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/simdeterminism"
)

func TestKernelScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/kernel", "repro/internal/sim/fixture", simdeterminism.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/outofscope", "repro/internal/trace/fixture", simdeterminism.Analyzer)
}
