package simdeterminism_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/simdeterminism"
)

func TestKernelScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/kernel", "repro/internal/sim/fixture", simdeterminism.Analyzer)
}

// TestReplicaScope pins the breaker-clock invariant: in the replica
// package a time.Now CALL is flagged (it defeats the injected Clock the
// chaos harness freezes), while naming time.Now as a value — the
// production Clock default — stays legal.
func TestReplicaScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/breaker", "repro/internal/replica/fixture", simdeterminism.Analyzer)
}

// TestShardScope pins the shard engine into the determinism scope: the
// partitioner and barrier loop must stay free of wall clocks, global
// randomness, and map-order-dependent merges — the invariants the
// bit-identity matrix relies on.
func TestShardScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/shardpkg", "repro/internal/shard/fixture", simdeterminism.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/outofscope", "repro/internal/trace/fixture", simdeterminism.Analyzer)
}
