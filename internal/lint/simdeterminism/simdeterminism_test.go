package simdeterminism_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/simdeterminism"
)

func TestKernelScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/kernel", "repro/internal/sim/fixture", simdeterminism.Analyzer)
}

// TestReplicaScope pins the breaker-clock invariant: in the replica
// package a time.Now CALL is flagged (it defeats the injected Clock the
// chaos harness freezes), while naming time.Now as a value — the
// production Clock default — stays legal.
func TestReplicaScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/breaker", "repro/internal/replica/fixture", simdeterminism.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/src/outofscope", "repro/internal/trace/fixture", simdeterminism.Analyzer)
}
