// Package fixture exercises the simdeterminism analyzer in the replica
// scope. It is loaded under the fake import path
// repro/internal/replica/fixture: circuit breakers must read time
// through their injected Clock so chaos tests can freeze it — a direct
// time.Now() CALL defeats the injection, while naming time.Now as a
// VALUE (the production default for the Clock field) is exactly how the
// seam is wired and must stay legal.
package fixture

import "time"

// clock is the injectable time source, mirroring replica.Clock.
type clock func() time.Time

// defaultClock assigns time.Now as a value: the sanctioned production
// default. No call happens here, so the analyzer must stay quiet.
var defaultClock clock = time.Now

type breaker struct {
	now      clock
	openedAt time.Time
}

func (b *breaker) tripInjected() {
	b.openedAt = b.now() // reading through the injected seam is fine
}

func (b *breaker) tripWallClock() {
	b.openedAt = time.Now() // want "time.Now in simulation kernel code"
}

func halfOpenEligible(b *breaker, openFor time.Duration) bool {
	return time.Now().Sub(b.openedAt) >= openFor // want "time.Now in simulation kernel code"
}
