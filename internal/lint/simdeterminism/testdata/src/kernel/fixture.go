// Package fixture exercises the simdeterminism analyzer. It is loaded
// under the fake import path repro/internal/sim/fixture, so the kernel
// scope applies — the same scope that catches a time.Now() added to
// the scheduler.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now in simulation kernel code"
}

func globalSource() int {
	return rand.Intn(6) // want `global math/rand\.Intn source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle source`
}

func seededOK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func suppressedOK() time.Time {
	//lint:ignore simdeterminism fixture: metering only, never feeds simulation results
	return time.Now()
}

func mapOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to an accumulator declared outside this map range"
	}
	return out
}

func sliceRangeOK(xs, out []string) []string {
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func loopLocalOK(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
