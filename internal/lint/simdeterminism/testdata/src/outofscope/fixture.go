// Package fixture carries the same violations as the kernel fixture but
// is loaded under repro/internal/trace/fixture — outside the analyzer's
// scope — and must produce no findings: trace export and other one-shot
// consumers may read the wall clock.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func globalSource() int { return rand.Intn(6) }
