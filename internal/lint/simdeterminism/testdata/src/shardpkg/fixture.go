// Package fixture exercises the simdeterminism analyzer under the fake
// import path repro/internal/shard/fixture, pinning the shard engine
// into the check's scope: a wall clock or an unseeded random source in
// barrier or merge code would break bit-identity across shard counts,
// and map-range order feeding the capture merge would break it across
// runs.
package fixture

import (
	"math/rand"
	"time"
)

func barrierDeadline() time.Time {
	return time.Now() // want "time.Now in simulation kernel code"
}

func randomShardPick(n int) int {
	return rand.Intn(n) // want `global math/rand\.Intn source`
}

func seededPartitionOK(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func mergeOrder(owners map[string]int) []string {
	var merged []string
	for name := range owners {
		merged = append(merged, name) // want "append to an accumulator declared outside this map range"
	}
	return merged
}

func sortedMergeOK(captures []string) []string {
	var merged []string
	for _, c := range captures {
		merged = append(merged, c)
	}
	return merged
}
