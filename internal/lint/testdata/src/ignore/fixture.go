// Package fixture exercises //lint:ignore directive handling: a
// well-formed directive suppresses, a directive without a justification
// is itself reported and suppresses nothing, a directive naming an
// analyzer outside the running suite is reported as unknown, and a
// well-formed directive that suppresses nothing is reported as stale.
package fixture

func target() {}

func suppressedCall() {
	//lint:ignore callcount fixture: justified suppression
	target()
}

func malformedDirective() {
	//lint:ignore callcount
	target()
}

func plainCall() {
	target()
}

func unknownAnalyzer() {
	//lint:ignore nosuchcheck fixture: analyzer name typo
	target()
}

func staleDirective() {
	//lint:ignore callcount fixture: the call this once silenced was refactored away
	var x int
	_ = x
}
