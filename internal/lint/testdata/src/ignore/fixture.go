// Package fixture exercises //lint:ignore directive handling: a
// well-formed directive suppresses, a directive without a justification
// is itself reported and suppresses nothing.
package fixture

func target() {}

func suppressedCall() {
	//lint:ignore callcount fixture: justified suppression
	target()
}

func malformedDirective() {
	//lint:ignore callcount
	target()
}

func plainCall() {
	target()
}
