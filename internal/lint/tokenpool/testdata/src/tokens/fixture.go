// Package fixture exercises the tokenpool analyzer against the real
// sim package's pooled-token API.
package fixture

import (
	"repro/internal/signal"
	"repro/internal/sim"
)

type sink struct{}

func (sink) HandlerName() string                 { return "sink" }
func (sink) HandleToken(*sim.Context, sim.Token) {}

type holder struct{ tok *sim.SignalToken }

func postOK(s *sim.Scheduler) {
	tok := sim.AcquireSignalToken(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	s.Post(tok)
}

func doublePost(s *sim.Scheduler) {
	tok := sim.AcquireSignalToken(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	s.Post(tok)
	s.Post(tok) // want "posted twice"
}

func useAfterPost(s *sim.Scheduler) sim.Time {
	tok := sim.AcquireSignalToken(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	s.Post(tok)
	return tok.When() // want "used after Post"
}

func escapeReturn() *sim.SignalToken {
	tok := sim.AcquireSignalToken(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	return tok // want "returned"
}

func escapeStore(h *holder, s *sim.Scheduler) {
	tok := sim.AcquireSignalToken(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	h.tok = tok // want "stored in a field or container element"
	s.Post(tok)
}

func escapeSend(ch chan *sim.SignalToken) {
	tok := sim.AcquireSignalToken(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	ch <- tok // want "sent on a channel"
}

func handBuiltOK(h *holder) *sim.SignalToken {
	tok := &sim.SignalToken{}
	h.tok = tok
	return tok
}

func reacquireOK(s *sim.Scheduler) {
	tok := sim.AcquireSignalToken(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	s.Post(tok)
	tok = sim.AcquireSignalToken(2, sink{}, 0, signal.BitValue{B: signal.B0}, "src")
	s.Post(tok)
}

// Arena API: (*sim.Context).AcquireSignal hands out arena-owned tokens
// with the same post-transfers-ownership contract as the pool.

func arenaPostOK(ctx *sim.Context) {
	tok := ctx.AcquireSignal(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	ctx.Post(tok)
}

func arenaDoublePost(ctx *sim.Context) {
	tok := ctx.AcquireSignal(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	ctx.Post(tok)
	ctx.Post(tok) // want "posted twice"
}

func arenaUseAfterPost(ctx *sim.Context) sim.Time {
	tok := ctx.AcquireSignal(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	ctx.Post(tok)
	return tok.When() // want "used after Post"
}

func arenaEscapeReturn(ctx *sim.Context) *sim.SignalToken {
	tok := ctx.AcquireSignal(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	return tok // want "returned"
}

func arenaEscapeStore(ctx *sim.Context, h *holder) {
	tok := ctx.AcquireSignal(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	h.tok = tok // want "stored in a field or container element"
	ctx.Post(tok)
}

func arenaReacquireOK(ctx *sim.Context) {
	tok := ctx.AcquireSignal(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	ctx.Post(tok)
	tok = ctx.AcquireSignal(2, sink{}, 0, signal.BitValue{B: signal.B0}, "src")
	ctx.Post(tok)
}

// Retention-by-index: since the calendar kernel copies token fields
// into struct-of-arrays lanes at Post and releases the carrier, any
// code that parks the carrier itself in a container is holding a token
// the scheduler will recycle under it.

func escapeSliceIndex(s *sim.Scheduler, held []*sim.SignalToken) {
	tok := sim.AcquireSignalToken(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	held[0] = tok // want "stored in a field or container element"
	s.Post(tok)
}

func arenaEscapeSliceIndex(ctx *sim.Context, held []*sim.SignalToken) {
	tok := ctx.AcquireSignal(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	held[0] = tok // want "stored in a field or container element"
	ctx.Post(tok)
}

func arenaEscapeMapStore(ctx *sim.Context, held map[int]*sim.SignalToken) {
	tok := ctx.AcquireSignal(1, sink{}, 0, signal.BitValue{B: signal.B1}, "src")
	held[0] = tok // want "stored in a field or container element"
	ctx.Post(tok)
}
