// Package tokenpool enforces the lifecycle rules of pooled SignalTokens
// documented on sim.AcquireSignalToken: the scheduler recycles a pooled
// token automatically after delivery, so the poster must treat Post as a
// transfer of ownership. Concretely, within a function:
//
//   - a variable holding the result of AcquireSignalToken must not be
//     used again (read, re-posted, passed anywhere) after it has been
//     passed to Post/PostSignal — the scheduler may already have zeroed
//     and recycled it, so the access races with an unrelated event;
//   - a pooled token must not escape the posting function (returned,
//     stored in a field, slice, map or composite literal, or sent on a
//     channel) — retention past delivery is exactly the use-after-free
//     the pool's contract forbids. Hand-built &sim.SignalToken{} values
//     are never recycled and may be retained freely.
//
// The same rules cover the slab-arena API (*sim.Context).AcquireSignal:
// delivery releases arena tokens into the delivering scheduler's free
// list, so a token must not be retained or touched after Post.
//
// The analysis is lexical within one function: events are ordered by
// source position, which matches execution order for straight-line code
// and is conservative for the rest.
package tokenpool

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint"
)

// simPkg is the package whose pool contract we enforce.
const simPkg = "repro/internal/sim"

// Analyzer is the tokenpool check.
var Analyzer = &lint.Analyzer{
	Name: "tokenpool",
	Doc: "forbid retaining or reusing a pooled *sim.SignalToken after it has been " +
		"posted (the scheduler recycles pooled tokens on delivery)",
	Run: run,
}

// eventKind orders what can happen to a pooled token variable.
type eventKind int

const (
	evAcquire eventKind = iota // var (re)bound to AcquireSignalToken result
	evPost                     // var passed to Post/PostSignal
	evUse                      // any other read of the var
	evEscape                   // var stored/returned/sent beyond the function
)

// event is one occurrence, ordered by position.
type event struct {
	pos  token.Pos
	kind eventKind
	obj  types.Object
	how  string // escape description
}

func run(pass *lint.Pass) error {
	pass.Funcs(func(decl *ast.FuncDecl) {
		checkFunc(pass, decl.Body)
	})
	return nil
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	pooled := findAcquisitions(pass, body)
	if len(pooled) == 0 {
		return
	}
	events := collectEvents(pass, body, pooled)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	active := map[types.Object]bool{}
	posted := map[types.Object]bool{}
	for _, e := range events {
		switch e.kind {
		case evAcquire:
			active[e.obj], posted[e.obj] = true, false
		case evPost:
			if !active[e.obj] {
				continue
			}
			if posted[e.obj] {
				pass.Reportf(e.pos,
					"pooled SignalToken %s posted twice: the first delivery recycles it", e.obj.Name())
			}
			posted[e.obj] = true
		case evUse:
			if active[e.obj] && posted[e.obj] {
				pass.Reportf(e.pos,
					"pooled SignalToken %s used after Post: the scheduler recycles pooled tokens on delivery", e.obj.Name())
			}
		case evEscape:
			if active[e.obj] {
				pass.Reportf(e.pos,
					"pooled SignalToken %s %s: pooled tokens must not outlive their post; hand-build &sim.SignalToken{} for retained tokens", e.obj.Name(), e.how)
			}
		}
	}
}

// findAcquisitions returns the objects of variables ever assigned the
// result of sim.AcquireSignalToken within body.
func findAcquisitions(pass *lint.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		if !isAcquireCall(pass, assign.Rhs[0]) {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			if obj := identObj(pass, id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isAcquireCall reports whether e is a call that hands out a recycled
// token: the pooled sim.AcquireSignalToken, or the arena-owned
// (*sim.Context).AcquireSignal. Both transfer ownership on Post — the
// scheduler releases arena tokens into the delivering scheduler's free
// list exactly as it recycles pooled tokens — so the same lifecycle
// rules apply.
func isAcquireCall(pass *lint.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := lint.Callee(pass.TypesInfo, call)
	if lint.IsPkgFunc(fn, simPkg, "AcquireSignalToken") {
		return true
	}
	if fn == nil || fn.Name() != "AcquireSignal" {
		return false
	}
	recvPkg, recvType := lint.ReceiverNamed(fn)
	return recvPkg == simPkg && recvType == "Context"
}

// identObj resolves an identifier to its object (use or definition).
func identObj(pass *lint.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// collectEvents walks body and records every touch of a pooled variable,
// classifying the context it appears in.
func collectEvents(pass *lint.Pass, body *ast.BlockStmt, pooled map[types.Object]bool) []event {
	var events []event
	// consumed marks identifiers already claimed by a structured event so
	// the generic ident walk does not double-report them.
	consumed := map[*ast.Ident]bool{}
	pooledIdent := func(e ast.Expr) (*ast.Ident, types.Object) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, nil
		}
		obj := identObj(pass, id)
		if obj == nil || !pooled[obj] {
			return nil, nil
		}
		return id, obj
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				// Re-acquisition rebinds the variable.
				if isAcquireCall(pass, rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := identObj(pass, id); obj != nil {
							consumed[id] = true
							events = append(events, event{pos: n.Pos(), kind: evAcquire, obj: obj})
						}
					}
					continue
				}
				id, obj := pooledIdent(rhs)
				if id == nil {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					consumed[id] = true
					events = append(events, event{pos: id.Pos(), kind: evEscape, obj: obj,
						how: "stored in a field or container element"})
				case *ast.Ident:
					// Aliasing: the alias inherits pooled semantics.
					if aliasObj := identObj(pass, lhs); aliasObj != nil {
						pooled[aliasObj] = true
						consumed[id] = true
						events = append(events, event{pos: id.Pos(), kind: evUse, obj: obj})
						events = append(events, event{pos: id.Pos() + 1, kind: evAcquire, obj: aliasObj})
					}
				}
			}
		case *ast.CallExpr:
			if isPostCall(pass, n) {
				for _, arg := range n.Args {
					if id, obj := pooledIdent(arg); id != nil {
						consumed[id] = true
						events = append(events, event{pos: id.Pos(), kind: evPost, obj: obj})
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, obj := pooledIdent(r); id != nil {
					consumed[id] = true
					events = append(events, event{pos: id.Pos(), kind: evEscape, obj: obj,
						how: "returned"})
				}
			}
		case *ast.SendStmt:
			if id, obj := pooledIdent(n.Value); id != nil {
				consumed[id] = true
				events = append(events, event{pos: id.Pos(), kind: evEscape, obj: obj,
					how: "sent on a channel"})
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if id, obj := pooledIdent(elt); id != nil {
					consumed[id] = true
					events = append(events, event{pos: id.Pos(), kind: evEscape, obj: obj,
						how: "stored in a composite literal"})
				}
			}
		case *ast.Ident:
			if consumed[n] {
				return true
			}
			if obj := identObj(pass, n); obj != nil && pooled[obj] && pass.TypesInfo.Uses[n] != nil {
				events = append(events, event{pos: n.Pos(), kind: evUse, obj: obj})
			}
		}
		return true
	})
	return events
}

// isPostCall reports whether call is a Post or PostSignal method call
// (scheduler or context — any receiver named Post* that takes a token).
func isPostCall(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := lint.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Name() != "Post" && fn.Name() != "PostSignal" {
		return false
	}
	return lint.FuncPkgPath(fn) == simPkg
}
