package tokenpool_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/tokenpool"
)

func TestTokenLifecycle(t *testing.T) {
	analysistest.Run(t, "testdata/src/tokens", "repro/fixture/tokens", tokenpool.Analyzer)
}
