// Package fixture stands in for a wire-codec package (loaded as
// repro/internal/iplib/fixture) and seeds one violation per wiresym
// invariant: a one-sided codec each way, a field-order drift, a decoder
// that accepts trailing garbage, and an unbounded decoded count — plus
// clean codecs proving the accepted forms stay silent.
package fixture

import (
	"fmt"

	"repro/internal/wire"
)

// trailing mirrors the iplib helper the analyzer recognizes.
func trailing(typ string, buf []byte) error {
	if len(buf) != 0 {
		return fmt.Errorf("%s: %d trailing bytes", typ, len(buf))
	}
	return nil
}

// Good is a fully symmetric codec: same fields, same order, bounded
// count, trailing rejection.
type Good struct {
	ID   uint64
	Vals []float64
}

func (g *Good) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, g.ID)
	return wire.AppendFloat64s(b, g.Vals)
}

func (g *Good) DecodeFrom(buf []byte) error {
	var err error
	*g = Good{}
	if g.ID, buf, err = wire.Uvarint(buf); err != nil {
		return err
	}
	if g.Vals, buf, err = wire.Float64s(buf); err != nil {
		return err
	}
	return trailing("Good", buf)
}

// Orphan can be encoded but never parsed.
type Orphan struct{ A uint64 }

func (o *Orphan) AppendTo(b []byte) []byte { // want `Orphan has AppendTo but no matching DecodeFrom`
	return wire.AppendUvarint(b, o.A)
}

// Widow can be parsed but never produced.
type Widow struct{ A uint64 }

func (w *Widow) DecodeFrom(buf []byte) error { // want `Widow has DecodeFrom but no matching AppendTo`
	var err error
	if w.A, buf, err = wire.Uvarint(buf); err != nil {
		return err
	}
	return trailing("Widow", buf)
}

// Drift gained field B on the encoder side only — the classic silent
// wire-format divergence.
type Drift struct {
	A uint64
	B string
}

func (d *Drift) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, d.A)
	return wire.AppendString(b, d.B)
}

func (d *Drift) DecodeFrom(buf []byte) error { // want `field mismatch for Drift: encoder touches \[A B\], decoder touches \[A\]`
	var err error
	*d = Drift{}
	if d.A, buf, err = wire.Uvarint(buf); err != nil {
		return err
	}
	return trailing("Drift", buf)
}

// Loose decodes its field but accepts any trailing garbage.
type Loose struct{ A uint64 }

func (l *Loose) AppendTo(b []byte) []byte {
	return wire.AppendUvarint(b, l.A)
}

func (l *Loose) DecodeFrom(buf []byte) error { // want `Loose\.DecodeFrom does not reject trailing bytes`
	var err error
	l.A, buf, err = wire.Uvarint(buf)
	_ = buf
	return err
}

// Hungry trusts a decoded count to size an allocation with no bound
// check: a 3-byte frame can demand gigabytes.
type Hungry struct{ Rows []float64 }

func (h *Hungry) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(h.Rows)))
	for _, v := range h.Rows {
		b = wire.AppendFloat64(b, v)
	}
	return b
}

func (h *Hungry) DecodeFrom(buf []byte) error {
	var err error
	*h = Hungry{}
	var n uint64
	if n, buf, err = wire.Uvarint(buf); err != nil {
		return err
	}
	h.Rows = make([]float64, n) // want `count "n" from wire\.Uvarint used to size an allocation without a bound check`
	for i := range h.Rows {
		if h.Rows[i], buf, err = wire.Float64(buf); err != nil {
			return err
		}
	}
	return trailing("Hungry", buf)
}

// Bounded guards a derived quantity (packed bytes) against the input
// before sizing the loop — the wire.Bits pattern; must stay silent.
type Bounded struct{ Flags []bool }

func (bo *Bounded) AppendTo(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(bo.Flags)))
	for _, f := range bo.Flags {
		b = wire.AppendBool(b, f)
	}
	return b
}

func (bo *Bounded) DecodeFrom(buf []byte) error {
	var err error
	*bo = Bounded{}
	var n uint64
	if n, buf, err = wire.Uvarint(buf); err != nil {
		return err
	}
	if n > uint64(len(buf)) {
		return fmt.Errorf("Bounded: count %d exceeds %d remaining bytes", n, len(buf))
	}
	bo.Flags = make([]bool, n)
	for i := range bo.Flags {
		if bo.Flags[i], buf, err = wire.Bool(buf); err != nil {
			return err
		}
	}
	return trailing("Bounded", buf)
}

// Nested delegates decoding to an inner codec — the delegation form of
// trailing rejection; must stay silent.
type Nested struct{ Inner Good }

func (ne *Nested) AppendTo(b []byte) []byte {
	return ne.Inner.AppendTo(b)
}

func (ne *Nested) DecodeFrom(buf []byte) error {
	return ne.Inner.DecodeFrom(buf)
}
