// Package wiresym machine-checks wire format v1's codec invariants
// (DESIGN.md §12) so the hand-rolled binary envelopes cannot silently
// drift when a struct gains a field:
//
//  1. Pairing — within a codec package, every type with an AppendTo
//     method must have a DecodeFrom and vice versa. A one-sided codec is
//     a type that can be sent but never parsed (or parsed but never
//     produced), which only surfaces as a cross-version interop failure.
//  2. Field symmetry — the sequence of distinct receiver fields the
//     encoder touches must equal, in first-use order, the sequence the
//     decoder touches. Adding a field to AppendTo without updating
//     DecodeFrom (or reordering one side) is exactly the drift the
//     fuzzers only catch probabilistically.
//  3. Trailing-byte rejection — every DecodeFrom must end by rejecting
//     unconsumed input: a call to a trailing() helper, an explicit
//     len(buf)-vs-0 check, or delegation to another DecodeFrom.
//     Decoders that ignore trailing bytes accept corrupted or truncated
//     frames as valid.
//  4. Count-bound validation — a count decoded via wire.Uvarint that
//     sizes work (a make, a decode loop) must first be bounded against
//     the remaining input length, directly or through a derived
//     quantity. An unbounded count lets a 10-byte frame demand a
//     multi-gigabyte allocation.
package wiresym

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint"
)

// TargetPackages are the wire-codec packages (prefix match).
var TargetPackages = []string{
	"repro/internal/iplib",
	"repro/internal/rmi",
	"repro/internal/fault",
	"repro/internal/wire",
}

// Analyzer is the wiresym check.
var Analyzer = &lint.Analyzer{
	Name: "wiresym",
	Doc: "pair every AppendTo with its DecodeFrom and check field-for-field " +
		"symmetry, trailing-byte rejection, and count-bound validation, so wire " +
		"format v1 cannot silently drift when an envelope gains a field",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.PathMatchesAny(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	type pair struct {
		appendTo   *ast.FuncDecl
		decodeFrom *ast.FuncDecl
	}
	pairs := map[string]*pair{}
	var names []string // receiver type names in source order
	pass.Funcs(func(fd *ast.FuncDecl) {
		checkCountBounds(pass, fd)
		if fd.Recv == nil {
			return
		}
		if fd.Name.Name != "AppendTo" && fd.Name.Name != "DecodeFrom" {
			return
		}
		recv := receiverTypeName(fd)
		if recv == "" {
			return
		}
		p := pairs[recv]
		if p == nil {
			p = &pair{}
			pairs[recv] = p
			names = append(names, recv)
		}
		if fd.Name.Name == "AppendTo" {
			p.appendTo = fd
		} else {
			p.decodeFrom = fd
		}
	})
	for _, recv := range names {
		p := pairs[recv]
		switch {
		case p.decodeFrom == nil:
			pass.Reportf(p.appendTo.Pos(),
				"%s has AppendTo but no matching DecodeFrom: a one-sided codec can be encoded but never parsed", recv)
			continue
		case p.appendTo == nil:
			pass.Reportf(p.decodeFrom.Pos(),
				"%s has DecodeFrom but no matching AppendTo: a one-sided codec can be parsed but never produced", recv)
			continue
		}
		enc := fieldSequence(pass, p.appendTo)
		dec := fieldSequence(pass, p.decodeFrom)
		if !equalStrings(enc, dec) {
			pass.Reportf(p.decodeFrom.Pos(),
				"AppendTo/DecodeFrom field mismatch for %s: encoder touches [%s], decoder touches [%s] — wire format v1 requires field-for-field symmetry",
				recv, strings.Join(enc, " "), strings.Join(dec, " "))
		}
		if !rejectsTrailing(p.decodeFrom) {
			pass.Reportf(p.decodeFrom.Pos(),
				"%s.DecodeFrom does not reject trailing bytes: end with trailing(...), an explicit len check against 0, or delegation to another DecodeFrom", recv)
		}
	}
	return nil
}

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// receiverTypeName extracts the named receiver type, dereferencing one
// pointer ("*EvalReq" and "EvalReq" both yield "EvalReq").
func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// fieldSequence returns the distinct receiver fields a codec method
// touches, in first-use source order. Reading len(r.F), ranging over
// r.F, assigning r.F, and delegating r.F.DecodeFrom(...) all count as
// touching F.
func fieldSequence(pass *lint.Pass, fd *ast.FuncDecl) []string {
	recvObj := map[string]bool{} // names bound to the receiver
	for _, f := range fd.Recv.List {
		for _, n := range f.Names {
			if n.Name != "_" {
				recvObj[n.Name] = true
			}
		}
	}
	seen := map[string]bool{}
	var seq []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !recvObj[id.Name] || !isReceiverIdent(pass, fd, id) {
			return true
		}
		if !seen[sel.Sel.Name] {
			seen[sel.Sel.Name] = true
			seq = append(seq, sel.Sel.Name)
		}
		return true
	})
	return seq
}

// isReceiverIdent confirms id resolves to the method's receiver
// parameter, not a shadowing local.
func isReceiverIdent(pass *lint.Pass, fd *ast.FuncDecl, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	for _, f := range fd.Recv.List {
		for _, n := range f.Names {
			if pass.TypesInfo.Defs[n] == obj {
				return true
			}
		}
	}
	return false
}

// rejectsTrailing reports whether a DecodeFrom body contains any of the
// accepted trailing-byte rejection forms.
func rejectsTrailing(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "trailing" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "trailing" {
					found = true
				}
				// Delegation: the trailing check is the delegate's job.
				if fun.Sel.Name == "DecodeFrom" {
					found = true
				}
			}
		case *ast.BinaryExpr:
			if isLenVsZero(n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isLenVsZero matches `len(x) != 0`, `len(x) > 0`, `0 != len(x)`, and
// the equality forms used in early-return styles.
func isLenVsZero(b *ast.BinaryExpr) bool {
	switch b.Op {
	case token.NEQ, token.GTR, token.LSS, token.EQL, token.GEQ, token.LEQ:
	default:
		return false
	}
	return (isLenCall(b.X) && isZero(b.Y)) || (isZero(b.X) && isLenCall(b.Y))
}

func isLenCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "len"
}

func isZero(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// checkCountBounds enforces invariant 4 over one function: every
// variable assigned from wire.Uvarint that later sizes a make or bounds
// a loop must first appear (directly or via a derived variable) in a
// comparison against len(...) of the remaining input.
func checkCountBounds(pass *lint.Pass, fd *ast.FuncDecl) {
	// Collect, in source order: count origins and assignments (the raw
	// material for derived-variable tracking).
	var assigns []*ast.AssignStmt
	var counts []*ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		assigns = append(assigns, as)
		if len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.Callee(pass.TypesInfo, call)
		if !lint.IsPkgFunc(fn, "repro/internal/wire", "Uvarint") {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			counts = append(counts, id)
		}
		return true
	})
	for _, countID := range counts {
		origin := identObj(pass, countID)
		if origin == nil {
			continue
		}
		derived := map[any]bool{origin: true}
		// Forward sweep: anything computed from a tracked variable is
		// itself tracked (e.g. packed := (n+3)/4 in wire.Bits).
		for _, as := range assigns {
			if as.Pos() <= countID.Pos() {
				continue
			}
			mentions := false
			for _, r := range as.Rhs {
				if exprMentions(pass, r, derived) {
					mentions = true
					break
				}
			}
			if !mentions || len(as.Lhs) != 1 {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := identObj(pass, id); obj != nil {
					derived[obj] = true
				}
			}
		}
		var guards []token.Pos
		type use struct {
			pos  token.Pos
			what string
		}
		var uses []use
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ, token.EQL:
					xTracked, yTracked := exprMentions(pass, n.X, derived), exprMentions(pass, n.Y, derived)
					xLen, yLen := containsLenCall(n.X), containsLenCall(n.Y)
					if (xTracked && yLen) || (yTracked && xLen) {
						guards = append(guards, n.Pos())
					}
				}
			case *ast.ForStmt:
				if n.Cond != nil && exprMentions(pass, n.Cond, derived) {
					uses = append(uses, use{n.Pos(), "bound a decode loop"})
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" && len(n.Args) >= 2 {
					for _, arg := range n.Args[1:] {
						if exprMentions(pass, arg, derived) {
							uses = append(uses, use{n.Pos(), "size an allocation"})
							break
						}
					}
				}
			}
			return true
		})
		for _, u := range uses {
			guarded := false
			for _, g := range guards {
				if g < u.pos {
					guarded = true
					break
				}
			}
			if !guarded {
				pass.Reportf(u.pos,
					"count %q from wire.Uvarint used to %s without a bound check against the remaining input: a short frame can demand an arbitrarily large amount of work",
					countID.Name, u.what)
			}
		}
	}
}

// identObj resolves an identifier to its object whether the occurrence
// defines (:=) or uses (=) it.
func identObj(pass *lint.Pass, id *ast.Ident) any {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return nil
}

// exprMentions reports whether e contains an identifier resolving to a
// tracked object.
func exprMentions(pass *lint.Pass, e ast.Expr, tracked map[any]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := identObj(pass, id); obj != nil && tracked[obj] {
			found = true
		}
		return !found
	})
	return found
}

// containsLenCall reports whether e contains a call to the builtin len.
func containsLenCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
				found = true
			}
		}
		return !found
	})
	return found
}
