package wiresym_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/wiresym"
)

func TestCodecFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/codec", "repro/internal/iplib/fixture", wiresym.Analyzer)
}
