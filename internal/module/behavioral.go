package module

import (
	"fmt"

	"repro/internal/signal"
	"repro/internal/sim"
)

// FuncBitModule is a behavioral-level component over bit connectors: its
// functionality is an arbitrary Go function from input bits to output
// bits. This is the behavioral abstraction level the paper lists as
// devised ("we have devised an implementation at the behavioral level"),
// and it is also the natural shape of a downloaded PUBLIC PART: an IP
// provider ships the abstract function (a multiplication, a half-adder
// truth function) while the gate-level structure stays on its server.
type FuncBitModule struct {
	*Skeleton
	ins   []*Port
	outs  []*Port
	fn    func([]signal.Bit) []signal.Bit
	Delay sim.Time
}

// funcState caches the last driven outputs for change suppression.
type funcState struct{ last []signal.Bit }

// NewFuncBitModule returns a behavioral component with nIn bit inputs and
// nOut bit outputs computing fn.
func NewFuncBitModule(name string, fn func([]signal.Bit) []signal.Bit, ins, outs []*Connector) *FuncBitModule {
	m := &FuncBitModule{fn: fn, Delay: 1}
	m.Skeleton = NewSkeleton(name, m)
	for i, c := range ins {
		m.ins = append(m.ins, m.AddPort(fmt.Sprintf("in%d", i), In, 1, c))
	}
	for i, c := range outs {
		m.outs = append(m.outs, m.AddPort(fmt.Sprintf("out%d", i), Out, 1, c))
	}
	return m
}

// ProcessInputEvent recomputes the function and drives changed outputs.
func (m *FuncBitModule) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	in := make([]signal.Bit, len(m.ins))
	for i, p := range m.ins {
		in[i] = ctx.InputBitOn(p)
	}
	out := m.fn(in)
	if len(out) != len(m.outs) {
		panic(fmt.Sprintf("module: %s function returned %d bits, want %d", m.ModuleName(), len(out), len(m.outs)))
	}
	st, _ := ctx.State().(*funcState)
	if st == nil {
		st = &funcState{last: make([]signal.Bit, len(m.outs))}
		for i := range st.last {
			st.last[i] = signal.BZ // sentinel: never driven
		}
		ctx.SetState(st)
	}
	for i, p := range m.outs {
		if out[i] == st.last[i] {
			continue
		}
		st.last[i] = out[i]
		ctx.Drive(p, signal.BitValue{B: out[i]}, m.Delay)
	}
}

// FuncWordModule is the word-level behavioral counterpart: a function
// from input words to output words.
type FuncWordModule struct {
	*Skeleton
	ins   []*Port
	outs  []*Port
	fn    func([]signal.Word) []signal.Word
	Delay sim.Time
}

// NewFuncWordModule returns a behavioral word-level component; widths[i]
// gives the width of each port, inputs first.
func NewFuncWordModule(name string, fn func([]signal.Word) []signal.Word, inWidths, outWidths []int, ins, outs []*Connector) *FuncWordModule {
	if len(inWidths) != len(ins) || len(outWidths) != len(outs) {
		panic(fmt.Sprintf("module: %s width/connector count mismatch", name))
	}
	m := &FuncWordModule{fn: fn, Delay: 1}
	m.Skeleton = NewSkeleton(name, m)
	for i, c := range ins {
		m.ins = append(m.ins, m.AddPort(fmt.Sprintf("in%d", i), In, inWidths[i], c))
	}
	for i, c := range outs {
		m.outs = append(m.outs, m.AddPort(fmt.Sprintf("out%d", i), Out, outWidths[i], c))
	}
	return m
}

// ProcessInputEvent recomputes once every input holds a word.
func (m *FuncWordModule) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	in := make([]signal.Word, len(m.ins))
	for i, p := range m.ins {
		wv, ok := ctx.Input(p).(signal.WordValue)
		if !ok {
			return
		}
		in[i] = wv.W
	}
	out := m.fn(in)
	if len(out) != len(m.outs) {
		panic(fmt.Sprintf("module: %s function returned %d words, want %d", m.ModuleName(), len(out), len(m.outs)))
	}
	for i, p := range m.outs {
		ctx.Drive(p, signal.WordValue{W: out[i]}, m.Delay)
	}
}
