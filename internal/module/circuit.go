package module

import (
	"repro/internal/estim"
	"repro/internal/sim"
)

// Circuit is a hierarchical collection of interconnected components. A
// Circuit is itself a Module (with no ports of its own), so designs
// compose to arbitrary depth. The circuit never receives tokens; it
// exists to own its children for elaboration, setup application, and
// simulation control.
type Circuit struct {
	*Skeleton
	children []Module
}

// NewCircuit returns a circuit containing the given modules.
func NewCircuit(name string, modules ...Module) *Circuit {
	c := &Circuit{Skeleton: NewSkeleton(name, nil)}
	c.children = append(c.children, modules...)
	return c
}

// Add appends a module to the circuit.
func (c *Circuit) Add(ms ...Module) { c.children = append(c.children, ms...) }

// Children returns the circuit's direct submodules.
func (c *Circuit) Children() []Module { return c.children }

// Leaves returns every non-container module in the hierarchy, depth
// first. These are the handlers a simulation must reset and the
// components estimation setups select estimators for.
func (c *Circuit) Leaves() []Module {
	var out []Module
	var walk func(m Module)
	walk = func(m Module) {
		kids := m.Children()
		if len(kids) == 0 {
			out = append(out, m)
			return
		}
		for _, k := range kids {
			walk(k)
		}
	}
	for _, m := range c.children {
		walk(m)
	}
	return out
}

// ApplySetup hierarchically applies an estimation setup to a module and
// all its submodules — the paper's setup.apply(<module>). Applying to the
// circuit (the top module) applies the same criteria to every component.
func ApplySetup(s *estim.Setup, root Module) {
	kids := root.Children()
	if len(kids) == 0 {
		s.SelectFor(root)
		return
	}
	for _, k := range kids {
		ApplySetup(s, k)
	}
}

// Simulation is the paper's SimulationController: it owns a design and
// runs event-driven simulations over it, optionally estimating cost
// metrics under a setup. Multiple setups for the same design and multiple
// simulations performed concurrently are both supported.
type Simulation struct {
	circuit *Circuit
	ctrl    *sim.Controller
	// Until bounds the simulated time; zero runs until the queue drains.
	Until sim.Time
	// EventLimit overrides the kernel's default event budget when nonzero.
	EventLimit uint64
}

// NewSimulation returns a simulation controller over the circuit.
func NewSimulation(c *Circuit) *Simulation {
	leaves := c.Leaves()
	handlers := make([]sim.Handler, len(leaves))
	for i, m := range leaves {
		handlers[i] = m
	}
	return &Simulation{circuit: c, ctrl: sim.NewController(handlers...)}
}

// Circuit returns the design under simulation.
func (s *Simulation) Circuit() *Circuit { return s.circuit }

// Start runs one simulation with the given setup (nil to simulate without
// estimation). When a setup is supplied it is first applied hierarchically
// to the whole design, and every leaf module receives an estimation token
// at the end of each simulation time instant.
func (s *Simulation) Start(setup *estim.Setup) sim.Stats {
	return s.start(setup, nil)
}

// StartConfigured is Start with access to the scheduler before the run
// begins — used by fault simulation to install handler overrides.
func (s *Simulation) StartConfigured(setup *estim.Setup, configure func(*sim.Scheduler)) sim.Stats {
	return s.start(setup, configure)
}

func (s *Simulation) start(setup *estim.Setup, configure func(*sim.Scheduler)) sim.Stats {
	if setup != nil {
		ApplySetup(setup, s.circuit)
	}
	s.ctrl.Options = sim.RunOptions{Until: s.Until}
	s.ctrl.EventLimit = s.EventLimit
	leaves := s.circuit.Leaves()
	return s.ctrl.Start(setup, func(sched *sim.Scheduler) {
		if setup != nil {
			// One token per scheduler, reused across instants and leaves:
			// the hook dispatches it synchronously on the scheduler's own
			// goroutine and HandleToken only reads its fields.
			tok := &sim.EstimationToken{Setup: setup}
			sched.AddInstantHook(func(ctx *sim.Context, completed sim.Time) {
				for _, m := range leaves {
					tok.T, tok.Dst = completed, m
					m.HandleToken(ctx, tok)
				}
			})
		}
		if configure != nil {
			configure(sched)
		}
	})
}

// StartConcurrent runs n independent simulations of the design
// concurrently, one scheduler each, with per-run setups. The kernel's
// state isolation guarantees the runs cannot interfere.
func (s *Simulation) StartConcurrent(setups []*estim.Setup) []sim.Stats {
	for _, st := range setups {
		if st != nil {
			ApplySetup(st, s.circuit)
		}
	}
	s.ctrl.Options = sim.RunOptions{Until: s.Until}
	s.ctrl.EventLimit = s.EventLimit
	leaves := s.circuit.Leaves()
	return s.ctrl.StartConcurrent(len(setups),
		func(i int) any {
			if setups[i] == nil {
				return nil
			}
			return setups[i]
		},
		func(i int, sched *sim.Scheduler) {
			setup := setups[i]
			if setup == nil {
				return
			}
			tok := &sim.EstimationToken{Setup: setup}
			sched.AddInstantHook(func(ctx *sim.Context, completed sim.Time) {
				for _, m := range leaves {
					tok.T, tok.Dst = completed, m
					m.HandleToken(ctx, tok)
				}
			})
		})
}
