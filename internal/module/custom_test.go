package module

import (
	"fmt"
	"testing"

	"repro/internal/signal"
)

// videoFrame is an abstract design representation payload — the paper's
// example of a custom connector semantics: "video signals handled by a
// DSP". It carries structured data rather than bits or words.
type videoFrame struct {
	Seq    int
	Pixels []uint8
}

func (f videoFrame) ValueWidth() int { return 8 * len(f.Pixels) }

func (f videoFrame) EqualValue(o signal.Value) bool {
	of, ok := o.(videoFrame)
	if !ok || of.Seq != f.Seq || len(of.Pixels) != len(f.Pixels) {
		return false
	}
	for i := range f.Pixels {
		if of.Pixels[i] != f.Pixels[i] {
			return false
		}
	}
	return true
}

func (f videoFrame) CloneValue() signal.Value {
	return videoFrame{Seq: f.Seq, Pixels: append([]uint8(nil), f.Pixels...)}
}

func (f videoFrame) String() string { return fmt.Sprintf("frame#%d(%dpx)", f.Seq, len(f.Pixels)) }

// newVideoConnector enforces the custom semantics: only frames with the
// configured resolution may cross.
func newVideoConnector(name string, pixels int) *Connector {
	return NewCustomConnector(name, 8*pixels, func(v signal.Value) error {
		f, ok := v.(videoFrame)
		if !ok {
			return fmt.Errorf("connector %q carries video frames, got %T", name, v)
		}
		if len(f.Pixels) != pixels {
			return fmt.Errorf("connector %q carries %d-pixel frames, got %d", name, pixels, len(f.Pixels))
		}
		return nil
	})
}

// dspInvert is a toy DSP module: it inverts every pixel of each frame.
type dspInvert struct {
	*Skeleton
	in, out *Port
}

func newDSPInvert(name string, pixels int, in, out *Connector) *dspInvert {
	m := &dspInvert{}
	m.Skeleton = NewSkeleton(name, m)
	m.in = m.AddPort("in", In, 8*pixels, in)
	m.out = m.AddPort("out", Out, 8*pixels, out)
	return m
}

func (m *dspInvert) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	f, ok := ev.Value.(videoFrame)
	if !ok {
		return
	}
	g := f.CloneValue().(videoFrame)
	for i := range g.Pixels {
		g.Pixels[i] = ^g.Pixels[i]
	}
	ctx.Drive(m.out, g, 1)
}

func TestCustomConnectorVideoPipeline(t *testing.T) {
	const pixels = 4
	src := newVideoConnector("src", pixels)
	dst := newVideoConnector("dst", pixels)
	frames := []signal.Value{
		videoFrame{Seq: 0, Pixels: []uint8{0x00, 0x10, 0x20, 0x30}},
		videoFrame{Seq: 1, Pixels: []uint8{0xFF, 0xFE, 0xFD, 0xFC}},
	}
	in := NewPatternInput("cam", 8*pixels, frames, 10, src)
	dsp := newDSPInvert("dsp", pixels, src, dst)
	out := NewPrimaryOutput("sink", 8*pixels, dst)
	st := NewSimulation(NewCircuit("video", in, dsp, out)).Start(nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	h := out.LastHistory()
	if len(h) != 2 {
		t.Fatalf("frames observed = %d", len(h))
	}
	first := h[0].Value.(videoFrame)
	if first.Pixels[0] != 0xFF || first.Pixels[3] != 0xCF {
		t.Errorf("inverted frame wrong: %v", first.Pixels)
	}
}

func TestCustomConnectorRejectsForeignPayload(t *testing.T) {
	const pixels = 2
	src := newVideoConnector("src", pixels)
	dst := newVideoConnector("dst", pixels)
	// A word where a frame is expected.
	in := NewPatternInput("bad", 8*pixels, []signal.Value{word(3, 16)}, 10, src)
	dsp := newDSPInvert("dsp", pixels, src, dst)
	s := NewSimulation(NewCircuit("video", in, dsp))
	defer func() {
		if recover() == nil {
			t.Error("foreign payload crossed a custom connector")
		}
	}()
	s.Start(nil)
}

func TestCustomConnectorRejectsWrongResolution(t *testing.T) {
	const pixels = 2
	src := newVideoConnector("src", pixels)
	dst := newVideoConnector("dst", pixels)
	in := NewPatternInput("cam", 8*pixels, []signal.Value{
		videoFrame{Seq: 0, Pixels: []uint8{1, 2, 3}}, // 3 pixels on a 2-pixel link
	}, 10, src)
	dsp := newDSPInvert("dsp", pixels, src, dst)
	s := NewSimulation(NewCircuit("video", in, dsp))
	defer func() {
		if recover() == nil {
			t.Error("wrong-resolution frame crossed")
		}
	}()
	s.Start(nil)
}
