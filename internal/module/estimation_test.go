package module

import (
	"sync"
	"testing"
	"time"

	"repro/internal/estim"
	"repro/internal/signal"
)

// figure2Circuit builds the paper's Figure 2 design: two random inputs
// feeding registers feeding a multiplier, all local.
func figure2Circuit(width, patterns int, seed int64) (*Circuit, *Mult, *PrimaryOutput) {
	a := NewWordConnector("A", width)
	ar := NewWordConnector("AR", width)
	b := NewWordConnector("B", width)
	br := NewWordConnector("BR", width)
	o := NewWordConnector("O", 2*width)

	ina := NewRandomPrimaryInput("INA", width, seed, patterns, 10, a)
	rega := NewRegister("REGA", width, a, ar)
	inb := NewRandomPrimaryInput("INB", width, seed+1, patterns, 10, b)
	regb := NewRegister("REGB", width, b, br)
	mult := NewMult("MULT", width, ar, br, o)
	out := NewPrimaryOutput("OUT", 2*width, o)
	c := NewCircuit("Example", ina, rega, inb, regb, mult, out)
	return c, mult, out
}

func TestFigure2SimulationProducesProducts(t *testing.T) {
	c, _, out := figure2Circuit(16, 100, 7)
	s := NewSimulation(c)
	st := s.Start(nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	h := out.LastHistory()
	if len(h) == 0 {
		t.Fatal("no products observed")
	}
	// Every observed value must be a known 32-bit word.
	for _, obs := range h {
		w, ok := obs.Value.(signal.WordValue)
		if !ok || w.W.Width() != 32 {
			t.Fatalf("bad product payload %v", obs.Value)
		}
	}
}

func TestEstimationDuringSimulation(t *testing.T) {
	c, mult, _ := figure2Circuit(8, 10, 1)
	mult.AddEstimator(&estim.Constant{
		Meta:  estim.Meta{Name: "const-power", Param: estim.ParamAvgPower, ErrPct: 25},
		Value: 50,
	})
	mult.AddEstimator(&estim.LinearRegression{
		Meta: estim.Meta{Name: "lr-power", Param: estim.ParamAvgPower, ErrPct: 20},
		Base: 5, Slope: 1,
	})
	setup := estim.NewSetup("s")
	setup.Set(estim.ParamAvgPower, estim.Criteria{Prefer: estim.PreferAccuracy})
	s := NewSimulation(c)
	st := s.Start(setup)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	agg, ok := setup.AggregateFor("MULT", estim.ParamAvgPower)
	if !ok || agg.Count == 0 {
		t.Fatal("no power estimates recorded")
	}
	// The accuracy-preferring setup must have chosen the regression.
	for _, smp := range setup.Samples() {
		if smp.Module == "MULT" && smp.Param == estim.ParamAvgPower && smp.Estimator != "lr-power" {
			t.Fatalf("estimator used = %q, want lr-power", smp.Estimator)
		}
	}
	// Modules without candidates got the null estimator plus a warning.
	if len(setup.Warnings()) == 0 {
		t.Error("expected warnings for estimator-less modules")
	}
}

func TestNullEstimatorKeepsSimulationAlive(t *testing.T) {
	c, _, out := figure2Circuit(8, 5, 2)
	setup := estim.NewSetup("null-everything")
	setup.Set(estim.ParamArea, estim.Criteria{})
	s := NewSimulation(c)
	st := s.Start(setup)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if len(out.LastHistory()) == 0 {
		t.Error("simulation with null estimators produced no output")
	}
	// All estimates are nulls.
	for _, smp := range setup.Samples() {
		if !smp.Value.IsNull() {
			t.Fatalf("unexpected non-null estimate %v", smp)
		}
	}
}

func TestConcurrentSetupsIndependent(t *testing.T) {
	c, mult, _ := figure2Circuit(8, 20, 3)
	mult.AddEstimator(&estim.Constant{
		Meta:  estim.Meta{Name: "const-power", Param: estim.ParamAvgPower, ErrPct: 25, CPUTime: 0},
		Value: 50,
	})
	mult.AddEstimator(&estim.LinearRegression{
		Meta: estim.Meta{Name: "lr-power", Param: estim.ParamAvgPower, ErrPct: 20, CPUTime: time.Second},
		Base: 5, Slope: 1,
	})
	fast := estim.NewSetup("fast")
	fast.Set(estim.ParamAvgPower, estim.Criteria{Prefer: estim.PreferSpeed})
	accurate := estim.NewSetup("accurate")
	accurate.Set(estim.ParamAvgPower, estim.Criteria{Prefer: estim.PreferAccuracy})

	s := NewSimulation(c)
	stats := s.StartConcurrent([]*estim.Setup{fast, accurate})
	for _, st := range stats {
		if st.Err != nil {
			t.Fatal(st.Err)
		}
	}
	for _, smp := range fast.Samples() {
		if smp.Module == "MULT" && smp.Estimator != "const-power" {
			t.Fatalf("fast setup used %q", smp.Estimator)
		}
	}
	for _, smp := range accurate.Samples() {
		if smp.Module == "MULT" && smp.Estimator != "lr-power" {
			t.Fatalf("accurate setup used %q", smp.Estimator)
		}
	}
	fa, _ := fast.AggregateFor("MULT", estim.ParamAvgPower)
	aa, _ := accurate.AggregateFor("MULT", estim.ParamAvgPower)
	if fa.Count == 0 || aa.Count == 0 {
		t.Fatal("concurrent setups missing estimates")
	}
	if fa.Mean() != 50 {
		t.Errorf("fast mean = %v, want constant 50", fa.Mean())
	}
}

func TestApplySetupHierarchical(t *testing.T) {
	inner := NewCircuit("inner")
	r := NewRegister("r", 4, nil, nil)
	r.AddEstimator(&estim.Constant{Meta: estim.Meta{Name: "area-r", Param: estim.ParamArea}, Value: 8})
	inner.Add(r)
	top := NewCircuit("top", inner)
	setup := estim.NewSetup("s")
	setup.Set(estim.ParamArea, estim.Criteria{})
	ApplySetup(setup, top)
	if e, ok := r.SelectedEstimator(setup, estim.ParamArea); !ok || e.EstimatorName() != "area-r" {
		t.Error("setup did not reach nested module")
	}
}

func TestEstimatorFailureRecordsNull(t *testing.T) {
	c, mult, _ := figure2Circuit(8, 3, 4)
	mult.AddEstimator(&estim.Func{
		Meta: estim.Meta{Name: "broken", Param: estim.ParamDelay},
		Fn: func(*estim.EvalContext) (estim.ParamValue, error) {
			return nil, errTest
		},
	})
	setup := estim.NewSetup("s")
	setup.Set(estim.ParamDelay, estim.Criteria{})
	s := NewSimulation(c)
	if st := s.Start(setup); st.Err != nil {
		t.Fatal(st.Err)
	}
	found := false
	for _, smp := range setup.Samples() {
		if smp.Module == "MULT" && smp.Estimator == "broken" {
			found = true
			if !smp.Value.IsNull() {
				t.Fatal("failed estimate not recorded as null")
			}
		}
	}
	if !found {
		t.Error("broken estimator never invoked")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "synthetic estimator failure" }

func TestDesignTotalAdditiveComposition(t *testing.T) {
	// Two registers with known constant areas: the design total must be
	// their sum — the local, additive metric composition rule.
	c1 := NewWordConnector("c1", 4)
	c2 := NewWordConnector("c2", 4)
	c3 := NewWordConnector("c3", 4)
	in := NewPatternInput("in", 4, []signal.Value{word(1, 4), word(2, 4)}, 5, c1)
	r1 := NewRegister("r1", 4, c1, c2)
	r2 := NewRegister("r2", 4, c2, c3)
	out := NewPrimaryOutput("out", 4, c3)
	r1.AddEstimator(&estim.Constant{Meta: estim.Meta{Name: "a1", Param: estim.ParamArea}, Value: 10})
	r2.AddEstimator(&estim.Constant{Meta: estim.Meta{Name: "a2", Param: estim.ParamArea}, Value: 15})
	setup := estim.NewSetup("area")
	setup.Set(estim.ParamArea, estim.Criteria{})
	s := NewSimulation(NewCircuit("top", in, r1, r2, out))
	if st := s.Start(setup); st.Err != nil {
		t.Fatal(st.Err)
	}
	if got := setup.DesignTotal(estim.ParamArea); got != 25 {
		t.Errorf("design area = %v, want 25", got)
	}
}

func TestPrimaryOutputConcurrentHistories(t *testing.T) {
	c, _, out := figure2Circuit(8, 10, 9)
	s := NewSimulation(c)
	var mu sync.Mutex
	counts := map[int]int{}
	out.OnValue = func(ctx *Ctx, obs Observation) {
		mu.Lock()
		counts[int(ctx.Sim.SchedulerID())]++
		mu.Unlock()
	}
	stats := s.StartConcurrent([]*estim.Setup{nil, nil, nil})
	if len(stats) != 3 {
		t.Fatal("missing stats")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(counts) != 3 {
		t.Fatalf("outputs observed on %d schedulers, want 3", len(counts))
	}
	first := -1
	for _, n := range counts {
		if first == -1 {
			first = n
		} else if n != first {
			t.Errorf("scheduler output counts differ: %v", counts)
		}
	}
}
