package module

import (
	"math/rand"
	"sync"

	"repro/internal/signal"
	"repro/internal/sim"
)

// RandomPrimaryInput drives a connector with a fresh pseudo-random word
// every period, for a configurable number of patterns — the stimulus
// generator of the paper's Figure 2 example. The sequence is a pure
// function of the seed, so concurrent schedulers over the same design see
// identical stimuli.
type RandomPrimaryInput struct {
	*Skeleton
	out    *Port
	width  int
	seed   int64
	count  int
	period sim.Time
}

// randState is the generator's per-scheduler state.
type randState struct {
	rng  *rand.Rand
	sent int
}

// NewRandomPrimaryInput returns a generator named name producing count
// width-bit random words on out, one every period time units starting at
// time period.
func NewRandomPrimaryInput(name string, width int, seed int64, count int, period sim.Time, out *Connector) *RandomPrimaryInput {
	m := &RandomPrimaryInput{width: width, seed: seed, count: count, period: period}
	m.Skeleton = NewSkeleton(name, m)
	m.out = m.AddPort("out", Out, width, out)
	return m
}

// ProcessInputEvent implements Behavior; the generator has no inputs.
func (m *RandomPrimaryInput) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {}

// Reset seeds the per-scheduler generator and the first self-trigger.
func (m *RandomPrimaryInput) Reset(ctx *Ctx) {
	ctx.SetState(&randState{rng: rand.New(rand.NewSource(m.seed))})
	if m.count > 0 {
		ctx.ScheduleSelf(m.period, "pattern", nil)
	}
}

// ProcessSelfEvent emits the next random word and reschedules.
func (m *RandomPrimaryInput) ProcessSelfEvent(ctx *Ctx, tok *sim.SelfToken) {
	st := ctx.State().(*randState)
	if st.sent >= m.count {
		return
	}
	st.sent++
	var v uint64
	if m.width >= 64 {
		v = st.rng.Uint64()
	} else {
		v = st.rng.Uint64() & ((1 << uint(m.width)) - 1)
	}
	ctx.Drive(m.out, signal.WordValue{W: signal.WordFromUint64(v, m.width)}, 0)
	if st.sent < m.count {
		ctx.ScheduleSelf(m.period, "pattern", nil)
	}
}

// PatternInput drives a connector with a fixed sequence of values, one
// per period — the deterministic stimulus used by tests and fault
// simulation (the user's test sequence).
type PatternInput struct {
	*Skeleton
	out      *Port
	patterns []signal.Value
	period   sim.Time
}

// patState is the per-scheduler cursor.
type patState struct{ next int }

// NewPatternInput returns a stimulus module replaying patterns on out.
func NewPatternInput(name string, width int, patterns []signal.Value, period sim.Time, out *Connector) *PatternInput {
	m := &PatternInput{patterns: patterns, period: period}
	m.Skeleton = NewSkeleton(name, m)
	m.out = m.AddPort("out", Out, width, out)
	return m
}

// ProcessInputEvent implements Behavior; the generator has no inputs.
func (m *PatternInput) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {}

// Reset seeds the first self-trigger.
func (m *PatternInput) Reset(ctx *Ctx) {
	ctx.SetState(&patState{})
	if len(m.patterns) > 0 {
		ctx.ScheduleSelf(m.period, "pattern", nil)
	}
}

// ProcessSelfEvent emits the next pattern and reschedules.
func (m *PatternInput) ProcessSelfEvent(ctx *Ctx, tok *sim.SelfToken) {
	st := ctx.State().(*patState)
	if st.next >= len(m.patterns) {
		return
	}
	ctx.Drive(m.out, m.patterns[st.next], 0)
	st.next++
	if st.next < len(m.patterns) {
		ctx.ScheduleSelf(m.period, "pattern", nil)
	}
}

// ConstInput drives a single constant value at simulation start.
type ConstInput struct {
	*Skeleton
	out   *Port
	value signal.Value
}

// NewConstInput returns a module driving value once at time 1.
func NewConstInput(name string, width int, value signal.Value, out *Connector) *ConstInput {
	m := &ConstInput{value: value}
	m.Skeleton = NewSkeleton(name, m)
	m.out = m.AddPort("out", Out, width, out)
	return m
}

// ProcessInputEvent implements Behavior; the module has no inputs.
func (m *ConstInput) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {}

// Reset seeds the single emission.
func (m *ConstInput) Reset(ctx *Ctx) { ctx.ScheduleSelf(1, "const", nil) }

// ProcessSelfEvent emits the constant.
func (m *ConstInput) ProcessSelfEvent(ctx *Ctx, tok *sim.SelfToken) {
	ctx.Drive(m.out, m.value, 0)
}

// Observation is one value seen by a PrimaryOutput.
type Observation struct {
	Time  sim.Time
	Value signal.Value
}

// PrimaryOutput records every value arriving on its input, per scheduler.
// Histories survive the end of a run (they are the simulation's product)
// until ClearHistory is called.
type PrimaryOutput struct {
	*Skeleton
	in *Port

	histMu  sync.Mutex
	history map[sim.SchedulerID][]Observation
	// OnValue, when non-nil, is invoked for every observed value.
	OnValue func(ctx *Ctx, obs Observation)
}

// NewPrimaryOutput returns an output monitor on in.
func NewPrimaryOutput(name string, width int, in *Connector) *PrimaryOutput {
	m := &PrimaryOutput{history: make(map[sim.SchedulerID][]Observation)}
	m.Skeleton = NewSkeleton(name, m)
	m.in = m.AddPort("in", In, width, in)
	return m
}

// ProcessInputEvent records the observation.
func (m *PrimaryOutput) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	obs := Observation{Time: ctx.Now(), Value: ev.Value}
	m.histMu.Lock()
	m.history[ctx.Sim.SchedulerID()] = append(m.history[ctx.Sim.SchedulerID()], obs)
	m.histMu.Unlock()
	if m.OnValue != nil {
		m.OnValue(ctx, obs)
	}
}

// History returns the observations recorded for one scheduler.
func (m *PrimaryOutput) History(id sim.SchedulerID) []Observation {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	return append([]Observation(nil), m.history[id]...)
}

// LastHistory returns the observations of the most recent run when only
// one history is present; it returns nil when zero or several runs have
// recorded output (use History with an explicit scheduler ID then).
func (m *PrimaryOutput) LastHistory() []Observation {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	if len(m.history) != 1 {
		return nil
	}
	for _, h := range m.history {
		return append([]Observation(nil), h...)
	}
	return nil
}

// ReleaseHistory discards the observations of one scheduler once its run's
// outputs have been consumed, so long-running fault simulations (one fresh
// scheduler per injection) do not accumulate histories across injections.
func (m *PrimaryOutput) ReleaseHistory(id sim.SchedulerID) {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	delete(m.history, id)
}

// HistoryCount returns the number of schedulers with recorded
// observations — the leak metric regression tests watch.
func (m *PrimaryOutput) HistoryCount() int {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	return len(m.history)
}

// ClearHistory discards all recorded observations.
func (m *PrimaryOutput) ClearHistory() {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	m.history = make(map[sim.SchedulerID][]Observation)
}
