package module

import (
	"testing"

	"repro/internal/signal"
	"repro/internal/sim"
)

func word(v uint64, w int) signal.Value { return signal.WordValue{W: signal.WordFromUint64(v, w)} }

func TestDirectionString(t *testing.T) {
	if In.String() != "in" || Out.String() != "out" || InOut.String() != "inout" {
		t.Error("direction names wrong")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction empty")
	}
}

func TestConnectorPointToPoint(t *testing.T) {
	c := NewWordConnector("c", 4)
	m1 := NewRegister("r1", 4, c, nil)
	_ = m1
	m2 := NewRegister("r2", 4, nil, c)
	_ = m2
	a, b := c.Ends()
	if a == nil || b == nil {
		t.Fatal("connector ends not attached")
	}
	defer func() {
		if recover() == nil {
			t.Error("third attachment did not panic")
		}
	}()
	NewRegister("r3", 4, c, nil)
}

func TestConnectorWidthMismatchPanics(t *testing.T) {
	c := NewWordConnector("c", 4)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	NewRegister("r", 8, c, nil)
}

func TestWordConnectorValidatesPayload(t *testing.T) {
	c := NewWordConnector("c", 4)
	if err := c.Validate(word(3, 4)); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
	if err := c.Validate(word(3, 5)); err == nil {
		t.Error("wrong width accepted")
	}
	if err := c.Validate(signal.BitValue{B: signal.B1}); err == nil {
		t.Error("bit on word connector accepted")
	}
}

func TestBitConnectorValidatesPayload(t *testing.T) {
	c := NewBitConnector("c")
	if err := c.Validate(signal.BitValue{B: signal.B0}); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
	if err := c.Validate(word(0, 1)); err == nil {
		t.Error("word on bit connector accepted")
	}
}

func TestWordConnectorZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width did not panic")
		}
	}()
	NewWordConnector("c", 0)
}

func TestSkeletonPortLookup(t *testing.T) {
	r := NewRegister("r", 4, nil, nil)
	if r.Port("d") == nil || r.Port("q") == nil || r.Port("nope") != nil {
		t.Error("port lookup wrong")
	}
	if len(r.Ports()) != 2 {
		t.Error("port count wrong")
	}
	if r.Ports()[0].Module() != "r" {
		t.Error("port owner wrong")
	}
	if r.HandlerName() != "r" || r.ModuleName() != "r" {
		t.Error("names wrong")
	}
	if r.Children() != nil {
		t.Error("leaf module has children")
	}
}

// runCircuit wires a simulation and runs it to completion.
func runCircuit(t *testing.T, c *Circuit) sim.Stats {
	t.Helper()
	s := NewSimulation(c)
	st := s.Start(nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	return st
}

func TestPatternInputToPrimaryOutput(t *testing.T) {
	conn := NewWordConnector("c", 4)
	in := NewPatternInput("in", 4, []signal.Value{word(1, 4), word(2, 4), word(3, 4)}, 10, conn)
	out := NewPrimaryOutput("out", 4, conn)
	runCircuit(t, NewCircuit("top", in, out))
	h := out.LastHistory()
	if len(h) != 3 {
		t.Fatalf("observed %d values, want 3", len(h))
	}
	for i, want := range []uint64{1, 2, 3} {
		v, _ := h[i].Value.(signal.WordValue).W.Uint64()
		if v != want {
			t.Errorf("observation %d = %d, want %d", i, v, want)
		}
		if h[i].Time != sim.Time(10*(i+1)) {
			t.Errorf("observation %d at %d, want %d", i, h[i].Time, 10*(i+1))
		}
	}
}

func TestRegisterDelaysValue(t *testing.T) {
	c1 := NewWordConnector("c1", 4)
	c2 := NewWordConnector("c2", 4)
	in := NewPatternInput("in", 4, []signal.Value{word(9, 4)}, 5, c1)
	reg := NewRegister("reg", 4, c1, c2)
	out := NewPrimaryOutput("out", 4, c2)
	runCircuit(t, NewCircuit("top", in, reg, out))
	h := out.LastHistory()
	if len(h) != 1 || h[0].Time != 6 {
		t.Fatalf("register output = %+v, want value at t=6", h)
	}
}

func TestMultComputesProduct(t *testing.T) {
	a := NewWordConnector("a", 8)
	b := NewWordConnector("b", 8)
	o := NewWordConnector("o", 16)
	ina := NewPatternInput("ina", 8, []signal.Value{word(12, 8)}, 1, a)
	inb := NewPatternInput("inb", 8, []signal.Value{word(11, 8)}, 1, b)
	mult := NewMult("mult", 8, a, b, o)
	out := NewPrimaryOutput("out", 16, o)
	runCircuit(t, NewCircuit("top", ina, inb, mult, out))
	h := out.LastHistory()
	if len(h) == 0 {
		t.Fatal("no product observed")
	}
	v, ok := h[len(h)-1].Value.(signal.WordValue).W.Uint64()
	if !ok || v != 132 {
		t.Errorf("product = %d, want 132", v)
	}
}

func TestMultWidthGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 33 did not panic")
		}
	}()
	NewMult("m", 33, nil, nil, nil)
}

func TestAdderAndSub(t *testing.T) {
	a := NewWordConnector("a", 4)
	b := NewWordConnector("b", 4)
	o := NewWordConnector("o", 5)
	ina := NewPatternInput("ina", 4, []signal.Value{word(9, 4)}, 1, a)
	inb := NewPatternInput("inb", 4, []signal.Value{word(8, 4)}, 1, b)
	add := NewAdder("add", 4, a, b, o)
	out := NewPrimaryOutput("out", 5, o)
	runCircuit(t, NewCircuit("top", ina, inb, add, out))
	h := out.LastHistory()
	v, _ := h[len(h)-1].Value.(signal.WordValue).W.Uint64()
	if v != 17 {
		t.Errorf("sum = %d, want 17", v)
	}

	a2 := NewWordConnector("a2", 4)
	b2 := NewWordConnector("b2", 4)
	o2 := NewWordConnector("o2", 4)
	ina2 := NewPatternInput("ina2", 4, []signal.Value{word(3, 4)}, 1, a2)
	inb2 := NewPatternInput("inb2", 4, []signal.Value{word(5, 4)}, 1, b2)
	sub := NewSub("sub", 4, a2, b2, o2)
	out2 := NewPrimaryOutput("out2", 4, o2)
	runCircuit(t, NewCircuit("top2", ina2, inb2, sub, out2))
	h2 := out2.LastHistory()
	v2, _ := h2[len(h2)-1].Value.(signal.WordValue).W.Uint64()
	if v2 != (3-5)&0xF {
		t.Errorf("difference = %d, want %d", v2, (3-5)&0xF)
	}
}

func TestComparator(t *testing.T) {
	a := NewWordConnector("a", 4)
	b := NewWordConnector("b", 4)
	o := NewBitConnector("o")
	ina := NewPatternInput("ina", 4, []signal.Value{word(7, 4)}, 1, a)
	inb := NewPatternInput("inb", 4, []signal.Value{word(7, 4)}, 1, b)
	cmp := NewComparator("cmp", 4, a, b, o)
	out := NewPrimaryOutput("out", 1, o)
	runCircuit(t, NewCircuit("top", ina, inb, cmp, out))
	h := out.LastHistory()
	if len(h) == 0 || h[len(h)-1].Value.(signal.BitValue).B != signal.B1 {
		t.Error("comparator did not report equality")
	}
}

func TestMux2SelectsInputs(t *testing.T) {
	a := NewWordConnector("a", 4)
	b := NewWordConnector("b", 4)
	s := NewBitConnector("s")
	o := NewWordConnector("o", 4)
	ina := NewPatternInput("ina", 4, []signal.Value{word(1, 4)}, 1, a)
	inb := NewPatternInput("inb", 4, []signal.Value{word(2, 4)}, 1, b)
	sel := NewPatternInput("sel", 1, []signal.Value{signal.BitValue{B: signal.B1}}, 2, s)
	mux := NewMux2("mux", 4, a, b, s, o)
	out := NewPrimaryOutput("out", 4, o)
	runCircuit(t, NewCircuit("top", ina, inb, sel, mux, out))
	h := out.LastHistory()
	v, _ := h[len(h)-1].Value.(signal.WordValue).W.Uint64()
	if v != 2 {
		t.Errorf("mux selected %d, want 2 (sel=1)", v)
	}
}

func TestClockGenAndCounter(t *testing.T) {
	clk := NewBitConnector("clk")
	q := NewWordConnector("q", 8)
	gen := NewClockGen("gen", 5, 4, clk)
	cnt := NewCounter("cnt", 8, clk, q)
	out := NewPrimaryOutput("out", 8, q)
	runCircuit(t, NewCircuit("top", gen, cnt, out))
	h := out.LastHistory()
	if len(h) != 4 {
		t.Fatalf("counter emitted %d values over 4 clock cycles, want 4", len(h))
	}
	last, _ := h[len(h)-1].Value.(signal.WordValue).W.Uint64()
	if last != 4 {
		t.Errorf("final count = %d, want 4", last)
	}
}

func TestFanoutPerBranchDelays(t *testing.T) {
	src := NewWordConnector("src", 4)
	b1 := NewWordConnector("b1", 4)
	b2 := NewWordConnector("b2", 4)
	in := NewPatternInput("in", 4, []signal.Value{word(5, 4)}, 1, src)
	fo := NewFanout("fo", 4, src, []*Connector{b1, b2}, []sim.Time{0, 7})
	o1 := NewPrimaryOutput("o1", 4, b1)
	o2 := NewPrimaryOutput("o2", 4, b2)
	runCircuit(t, NewCircuit("top", in, fo, o1, o2))
	h1, h2 := o1.LastHistory(), o2.LastHistory()
	if len(h1) != 1 || len(h2) != 1 {
		t.Fatal("fanout branch missing event")
	}
	if h1[0].Time != 1 || h2[0].Time != 8 {
		t.Errorf("branch times = %d, %d; want 1, 8", h1[0].Time, h2[0].Time)
	}
}

func TestFanoutDelayCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched delays did not panic")
		}
	}()
	NewFanout("fo", 4, nil, []*Connector{nil, nil}, []sim.Time{1})
}

func TestDelayModule(t *testing.T) {
	a := NewWordConnector("a", 4)
	b := NewWordConnector("b", 4)
	in := NewPatternInput("in", 4, []signal.Value{word(3, 4)}, 1, a)
	d := NewDelay("d", 4, 9, a, b)
	out := NewPrimaryOutput("out", 4, b)
	runCircuit(t, NewCircuit("top", in, d, out))
	h := out.LastHistory()
	if len(h) != 1 || h[0].Time != 10 {
		t.Errorf("delayed event at %v, want t=10", h)
	}
}

func TestConstInput(t *testing.T) {
	c := NewWordConnector("c", 4)
	in := NewConstInput("k", 4, word(13, 4), c)
	out := NewPrimaryOutput("out", 4, c)
	runCircuit(t, NewCircuit("top", in, out))
	h := out.LastHistory()
	if len(h) != 1 {
		t.Fatal("constant not observed")
	}
	v, _ := h[0].Value.(signal.WordValue).W.Uint64()
	if v != 13 {
		t.Errorf("constant = %d, want 13", v)
	}
}

func TestRandomPrimaryInputDeterministic(t *testing.T) {
	run := func() []uint64 {
		c := NewWordConnector("c", 16)
		in := NewRandomPrimaryInput("in", 16, 42, 10, 3, c)
		out := NewPrimaryOutput("out", 16, c)
		runCircuit(t, NewCircuit("top", in, out))
		var vals []uint64
		for _, obs := range out.LastHistory() {
			v, _ := obs.Value.(signal.WordValue).W.Uint64()
			vals = append(vals, v)
		}
		return vals
	}
	a, b := run(), run()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("pattern counts = %d, %d; want 10", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pattern %d", i)
		}
	}
}

func TestDrivingInputPortPanics(t *testing.T) {
	c := NewWordConnector("c", 4)
	reg := NewRegister("r", 4, c, nil)
	sched := sim.NewScheduler()
	ctx := sched.NewContext()
	mctx := &Ctx{Sim: ctx, sk: reg.Skeleton}
	defer func() {
		if recover() == nil {
			t.Error("driving input port did not panic")
		}
	}()
	mctx.Drive(reg.Port("d"), word(0, 4), 0)
}

func TestDrivingForeignPortPanics(t *testing.T) {
	r1 := NewRegister("r1", 4, nil, nil)
	r2 := NewRegister("r2", 4, nil, nil)
	sched := sim.NewScheduler()
	mctx := &Ctx{Sim: sched.NewContext(), sk: r1.Skeleton}
	defer func() {
		if recover() == nil {
			t.Error("driving foreign port did not panic")
		}
	}()
	mctx.Drive(r2.Port("q"), word(0, 4), 0)
}

func TestDanglingConnectorDropsEvent(t *testing.T) {
	// A register whose output connector has no peer: events vanish
	// harmlessly.
	c1 := NewWordConnector("c1", 4)
	c2 := NewWordConnector("c2", 4) // no reader
	in := NewPatternInput("in", 4, []signal.Value{word(1, 4)}, 1, c1)
	reg := NewRegister("reg", 4, c1, c2)
	st := runCircuit(t, NewCircuit("top", in, reg))
	if st.Err != nil {
		t.Fatal(st.Err)
	}
}

func TestCircuitHierarchyLeaves(t *testing.T) {
	c1 := NewWordConnector("c1", 4)
	in := NewPatternInput("in", 4, nil, 1, c1)
	out := NewPrimaryOutput("out", 4, c1)
	inner := NewCircuit("inner", in)
	top := NewCircuit("top", inner, out)
	leaves := top.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %d, want 2", len(leaves))
	}
	names := map[string]bool{}
	for _, l := range leaves {
		names[l.ModuleName()] = true
	}
	if !names["in"] || !names["out"] {
		t.Errorf("leaf names = %v", names)
	}
}
