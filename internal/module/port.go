// Package module implements gocad's design model — the JavaCAD
// Foundation Packages' component layer. Any design component embeds
// Skeleton (the paper's ModuleSkeleton), is specialized by a behavior
// that processes input events, and exposes ports tied together by
// point-to-point zero-delay connectors. The package also provides the
// standard module library: primary inputs/outputs, registers, behavioral
// arithmetic, gates, netlist-backed components, fan-out and delay
// modules, clock generators, and mixed-level adapters.
package module

import (
	"fmt"

	"repro/internal/signal"
)

// Direction tells whether a port provides an input connection, an output
// connection, or both.
type Direction int

// Port directions.
const (
	In Direction = iota
	Out
	InOut
)

// String returns "in", "out" or "inout".
func (d Direction) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Port identifies one connection point of a module.
type Port struct {
	Name  string
	Dir   Direction
	Width int
	// Index is the port's position in its module's port list; signal
	// tokens address ports by this index.
	Index int

	owner *Skeleton
	conn  *Connector
}

// Connector returns the connector tied to the port, or nil.
func (p *Port) Connector() *Connector { return p.conn }

// Owner returns the skeleton of the owning module (nil for detached
// ports). It is the delivery target for tokens addressed to this port.
func (p *Port) Owner() *Skeleton { return p.owner }

// Module returns the name of the owning module.
func (p *Port) Module() string {
	if p.owner == nil {
		return ""
	}
	return p.owner.name
}

// Connector ties two ports together and forwards events between modules.
// Connectors represent point-to-point zero-delay connections; multiple
// fan-out nets and net delays are modeled by explicit fan-out and delay
// modules, which gives designers per-branch control. A connector enforces
// a communication semantics via its Validate hook: the built-in bit- and
// word-level connectors check payload type and width, and custom
// connectors for abstract representations (the paper's example: video
// signals handled by a DSP) can enforce their own.
type Connector struct {
	Name  string
	Width int
	// Validate rejects payloads that violate the connector's semantics.
	Validate func(signal.Value) error

	a, b *Port
}

// NewBitConnector returns a connector carrying single four-valued bits —
// the gate-level connection type.
func NewBitConnector(name string) *Connector {
	return &Connector{
		Name:  name,
		Width: 1,
		Validate: func(v signal.Value) error {
			if _, ok := v.(signal.BitValue); !ok {
				return fmt.Errorf("module: connector %q carries bits, got %T", name, v)
			}
			return nil
		},
	}
}

// NewWordConnector returns a connector carrying words of the given width
// — the word-level (RTL) connection type.
func NewWordConnector(name string, width int) *Connector {
	if width <= 0 {
		panic(fmt.Sprintf("module: word connector %q with width %d", name, width))
	}
	return &Connector{
		Name:  name,
		Width: width,
		Validate: func(v signal.Value) error {
			w, ok := v.(signal.WordValue)
			if !ok {
				return fmt.Errorf("module: connector %q carries words, got %T", name, v)
			}
			if w.W.Width() != width {
				return fmt.Errorf("module: connector %q carries %d-bit words, got %d bits",
					name, width, w.W.Width())
			}
			return nil
		},
	}
}

// NewCustomConnector returns a connector with caller-supplied semantics.
// width may be 0 when not meaningful for the representation.
func NewCustomConnector(name string, width int, validate func(signal.Value) error) *Connector {
	return &Connector{Name: name, Width: width, Validate: validate}
}

// attach binds a port to one of the connector's two ends.
func (c *Connector) attach(p *Port) {
	switch {
	case c.a == nil:
		c.a = p
	case c.b == nil:
		c.b = p
	default:
		panic(fmt.Sprintf("module: connector %q already ties %s.%s and %s.%s; connectors are point-to-point",
			c.Name, c.a.Module(), c.a.Name, c.b.Module(), c.b.Name))
	}
}

// peer returns the port on the other end, or nil if unattached.
func (c *Connector) peer(p *Port) *Port {
	switch p {
	case c.a:
		return c.b
	case c.b:
		return c.a
	}
	return nil
}

// Ends returns the two attached ports (either may be nil).
func (c *Connector) Ends() (*Port, *Port) { return c.a, c.b }

// Peer returns the port on the other end of the connector, or nil when p
// is not attached to it or the far end is dangling.
func (c *Connector) Peer(p *Port) *Port { return c.peer(p) }

// InputEnd returns the attached port that receives events (direction In
// or InOut), or nil.
func (c *Connector) InputEnd() *Port {
	for _, p := range []*Port{c.a, c.b} {
		if p != nil && (p.Dir == In || p.Dir == InOut) {
			return p
		}
	}
	return nil
}
