package module

import (
	"fmt"

	"repro/internal/signal"
	"repro/internal/sim"
)

// Register is a width-bit storage element: every value arriving on its
// input appears on its output after the register delay — the proprietary
// register macro of the paper's Figure 2 example.
type Register struct {
	*Skeleton
	in, out *Port
	// Delay is the input-to-output latency in time units (default 1).
	Delay sim.Time
}

// NewRegister returns a register between the two connectors.
func NewRegister(name string, width int, in, out *Connector) *Register {
	m := &Register{Delay: 1}
	m.Skeleton = NewSkeleton(name, m)
	m.in = m.AddPort("d", In, width, in)
	m.out = m.AddPort("q", Out, width, out)
	return m
}

// ProcessInputEvent forwards the sampled value after the register delay.
func (m *Register) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	if ev.Port != m.in {
		return
	}
	ctx.Drive(m.out, ev.Value, m.Delay)
}

// binaryOp is the shared machinery of two-input word-level arithmetic
// modules: when both inputs hold known words, compute and drive.
type binaryOp struct {
	*Skeleton
	a, b, o *Port
	// Delay is the propagation delay in time units.
	Delay sim.Time
	fn    func(a, b uint64) uint64
	outW  int
}

func newBinaryOp(name string, widthIn, widthOut int, a, b, o *Connector, fn func(x, y uint64) uint64) *binaryOp {
	if widthIn > 32 {
		panic(fmt.Sprintf("module: behavioral arithmetic limited to 32-bit operands, got %d", widthIn))
	}
	m := &binaryOp{Delay: 1, fn: fn, outW: widthOut}
	m.Skeleton = NewSkeleton(name, m)
	m.a = m.AddPort("a", In, widthIn, a)
	m.b = m.AddPort("b", In, widthIn, b)
	m.o = m.AddPort("o", Out, widthOut, o)
	return m
}

// ProcessInputEvent recomputes the operation when both operands are known.
func (m *binaryOp) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	aw, aok := ctx.InputWordOn(m.a)
	bw, bok := ctx.InputWordOn(m.b)
	if !aok || !bok {
		return
	}
	av, _ := aw.Uint64()
	bv, _ := bw.Uint64()
	v := m.fn(av, bv)
	if m.outW < 64 {
		v &= (1 << uint(m.outW)) - 1
	}
	ctx.Drive(m.o, signal.WordValue{W: signal.WordFromUint64(v, m.outW)}, m.Delay)
}

// Mult is the behavioral word-level multiplier: the abstract functional
// model of the paper's MULT IP component (the public part an IP provider
// would let users download). The product of two width-bit words appears
// on the 2·width-bit output.
type Mult struct{ *binaryOp }

// NewMult returns a behavioral multiplier. Operand width is limited to 32
// bits (the product must fit a uint64); wider datapaths use NetlistModule
// over a gate.ArrayMultiplier.
func NewMult(name string, width int, a, b, o *Connector) *Mult {
	return &Mult{newBinaryOp(name, width, 2*width, a, b, o,
		func(x, y uint64) uint64 { return x * y })}
}

// Adder is a behavioral word-level adder with a width+1-bit sum.
type Adder struct{ *binaryOp }

// NewAdder returns a behavioral adder.
func NewAdder(name string, width int, a, b, o *Connector) *Adder {
	return &Adder{newBinaryOp(name, width, width+1, a, b, o,
		func(x, y uint64) uint64 { return x + y })}
}

// Sub is a behavioral word-level subtractor (modulo 2^width).
type Sub struct{ *binaryOp }

// NewSub returns a behavioral subtractor.
func NewSub(name string, width int, a, b, o *Connector) *Sub {
	return &Sub{newBinaryOp(name, width, width, a, b, o,
		func(x, y uint64) uint64 { return x - y })}
}

// Comparator drives 1 when a == b, else 0, on a bit connector.
type Comparator struct {
	*Skeleton
	a, b, o *Port
	Delay   sim.Time
}

// NewComparator returns a word equality comparator.
func NewComparator(name string, width int, a, b, o *Connector) *Comparator {
	m := &Comparator{Delay: 1}
	m.Skeleton = NewSkeleton(name, m)
	m.a = m.AddPort("a", In, width, a)
	m.b = m.AddPort("b", In, width, b)
	m.o = m.AddPort("eq", Out, 1, o)
	return m
}

// ProcessInputEvent recompares when both operands are present.
func (m *Comparator) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	av, aok := ctx.Input(m.a).(signal.WordValue)
	bv, bok := ctx.Input(m.b).(signal.WordValue)
	if !aok || !bok {
		return
	}
	ctx.Drive(m.o, signal.BitValue{B: signal.FromBool(av.W.Equal(bv.W))}, m.Delay)
}

// Mux2 selects between two word inputs under a bit select.
type Mux2 struct {
	*Skeleton
	a, b, sel, o *Port
	Delay        sim.Time
}

// NewMux2 returns a 2-way word multiplexer (sel=0 selects a).
func NewMux2(name string, width int, a, b, sel, o *Connector) *Mux2 {
	m := &Mux2{Delay: 1}
	m.Skeleton = NewSkeleton(name, m)
	m.a = m.AddPort("a", In, width, a)
	m.b = m.AddPort("b", In, width, b)
	m.sel = m.AddPort("sel", In, 1, sel)
	m.o = m.AddPort("o", Out, width, o)
	return m
}

// ProcessInputEvent re-selects whenever any input changes.
func (m *Mux2) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	s := ctx.InputBitOn(m.sel)
	var src *Port
	switch s {
	case signal.B0:
		src = m.a
	case signal.B1:
		src = m.b
	default:
		return
	}
	v := ctx.Input(src)
	if v == nil {
		return
	}
	ctx.Drive(m.o, v, m.Delay)
}

// Counter emits an incrementing word every clock event on its bit input.
type Counter struct {
	*Skeleton
	clk, o *Port
	width  int
	Delay  sim.Time
}

type counterState struct{ v uint64 }

// NewCounter returns a rising-edge counter.
func NewCounter(name string, width int, clk, o *Connector) *Counter {
	m := &Counter{width: width, Delay: 1}
	m.Skeleton = NewSkeleton(name, m)
	m.clk = m.AddPort("clk", In, 1, clk)
	m.o = m.AddPort("q", Out, width, o)
	return m
}

// Reset zeroes the count.
func (m *Counter) Reset(ctx *Ctx) { ctx.SetState(&counterState{}) }

// ProcessInputEvent increments on rising clock edges.
func (m *Counter) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	if ev.Port != m.clk {
		return
	}
	bv, ok := ev.Value.(signal.BitValue)
	if !ok || bv.B != signal.B1 {
		return
	}
	st, _ := ctx.State().(*counterState)
	if st == nil {
		st = &counterState{}
		ctx.SetState(st)
	}
	st.v++
	v := st.v
	if m.width < 64 {
		v &= (1 << uint(m.width)) - 1
	}
	ctx.Drive(m.o, signal.WordValue{W: signal.WordFromUint64(v, m.width)}, m.Delay)
}

// ClockGen is an autonomous clock generator — the paper's example of a
// self-triggering component. It toggles its bit output every half period.
type ClockGen struct {
	*Skeleton
	out *Port
	// HalfPeriod is the time between edges.
	HalfPeriod sim.Time
	// Cycles bounds the number of full clock cycles; 0 means free-running
	// (bounded only by the simulation's Until time).
	Cycles int
}

type clockState struct {
	level signal.Bit
	edges int
}

// NewClockGen returns a clock generator with the given half period.
func NewClockGen(name string, halfPeriod sim.Time, cycles int, out *Connector) *ClockGen {
	m := &ClockGen{HalfPeriod: halfPeriod, Cycles: cycles}
	m.Skeleton = NewSkeleton(name, m)
	m.out = m.AddPort("clk", Out, 1, out)
	return m
}

// ProcessInputEvent implements Behavior; the clock has no inputs.
func (m *ClockGen) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {}

// Reset seeds the first edge.
func (m *ClockGen) Reset(ctx *Ctx) {
	ctx.SetState(&clockState{level: signal.B0})
	ctx.ScheduleSelf(m.HalfPeriod, "edge", nil)
}

// ProcessSelfEvent toggles the clock and reschedules.
func (m *ClockGen) ProcessSelfEvent(ctx *Ctx, tok *sim.SelfToken) {
	st := ctx.State().(*clockState)
	st.level = st.level.Not()
	st.edges++
	ctx.Drive(m.out, signal.BitValue{B: st.level}, 0)
	if m.Cycles == 0 || st.edges < 2*m.Cycles {
		ctx.ScheduleSelf(m.HalfPeriod, "edge", nil)
	}
}
