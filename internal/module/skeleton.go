package module

import (
	"fmt"
	"sync"

	"repro/internal/estim"
	"repro/internal/signal"
	"repro/internal/sim"
)

// Module is gocad's design-component interface. Every component is built
// around an embedded *Skeleton, which implements the full interface; the
// component's specific functionality lives in its Behavior.
type Module interface {
	sim.Handler
	estim.Component
	// Ports returns the component's connection points.
	Ports() []*Port
	// Children returns submodules for hierarchical designs; leaf modules
	// return nil.
	Children() []Module
}

// PortEvent is one input event as seen by a behavior: which port, the new
// value, and the value the port held before.
type PortEvent struct {
	Port  *Port
	Value signal.Value
	Prev  signal.Value
}

// Behavior is the specialization point of a module — the paper's
// processInputEvent method. All other machinery (initialization, event
// handling, setup control, estimator selection and invocation) comes from
// Skeleton and need not be overridden.
//
// The *Ctx and *PortEvent arguments are valid only for the duration of
// the call: the skeleton reuses them across deliveries on the same
// scheduler, so implementations must not retain either past return
// (copy the fields instead).
type Behavior interface {
	ProcessInputEvent(ctx *Ctx, ev *PortEvent)
}

// SelfBehavior is implemented by autonomous modules that schedule events
// for themselves (clock and stimulus generators).
type SelfBehavior interface {
	ProcessSelfEvent(ctx *Ctx, tok *sim.SelfToken)
}

// ControlBehavior is implemented by modules that react to control tokens
// (runtime parameter changes, design traversal messages).
type ControlBehavior interface {
	ProcessControl(ctx *Ctx, tok *sim.ControlToken)
}

// ResetBehavior is implemented by modules that need per-scheduler
// initialization before a run — typically to seed a first self-trigger.
type ResetBehavior interface {
	Reset(ctx *Ctx)
}

// runState is a module's per-scheduler mutable state: current and
// previous values on every port, plus behavior-private state.
type runState struct {
	in      []signal.Value
	prevIn  []signal.Value
	out     []signal.Value
	prevOut []signal.Value
	user    any
	// dirty is set when an input event arrives and cleared once the
	// module's estimators have run, so estimation happens once per
	// stimulus (per pattern), not once per simulation instant.
	dirty bool
	// mctx and pev are dispatch scratch, reused across deliveries on
	// this scheduler so the hot token path allocates nothing. Behaviors
	// receive them for the duration of one call only (see Behavior).
	mctx Ctx
	pev  PortEvent
	// ec is estimation scratch: the EvalContext (and the port-value
	// slices it carries) is rebuilt in place for every estimation round
	// on this scheduler. Estimators see it for one Estimate call only.
	ec estim.EvalContext
}

// Skeleton implements Module. Concrete components embed *Skeleton and
// pass themselves (their Behavior) to NewSkeleton.
type Skeleton struct {
	name     string
	behavior Behavior
	ports    []*Port

	state sim.StateTable

	estMu      sync.RWMutex
	candidates map[estim.Parameter][]estim.Estimator
	selected   map[*estim.Setup]map[estim.Parameter]estim.Estimator
}

// NewSkeleton returns a skeleton for a component named name whose
// functionality is implemented by behavior. behavior may be nil for
// purely passive components.
func NewSkeleton(name string, behavior Behavior) *Skeleton {
	return &Skeleton{
		name:       name,
		behavior:   behavior,
		candidates: make(map[estim.Parameter][]estim.Estimator),
		selected:   make(map[*estim.Setup]map[estim.Parameter]estim.Estimator),
	}
}

// AddPort creates a port on the module and ties it to the connector.
func (sk *Skeleton) AddPort(name string, dir Direction, width int, conn *Connector) *Port {
	p := &Port{Name: name, Dir: dir, Width: width, Index: len(sk.ports), owner: sk}
	if conn != nil {
		if conn.Width != 0 && width != 0 && conn.Width != width {
			panic(fmt.Sprintf("module: port %s.%s width %d does not match connector %q width %d",
				sk.name, name, width, conn.Name, conn.Width))
		}
		conn.attach(p)
		p.conn = conn
	}
	sk.ports = append(sk.ports, p)
	return p
}

// HandlerName implements sim.Handler.
func (sk *Skeleton) HandlerName() string { return sk.name }

// Base returns the skeleton itself. Signal tokens are addressed to the
// embedded *Skeleton (ports record it as their owner), so kernel-level
// operations that key on the delivery target — e.g. per-scheduler handler
// overrides during fault injection — must use Base(), not the outer
// module value.
func (sk *Skeleton) Base() *Skeleton { return sk }

// ModuleName implements estim.Component.
func (sk *Skeleton) ModuleName() string { return sk.name }

// Ports returns the module's ports in index order.
func (sk *Skeleton) Ports() []*Port { return sk.ports }

// Port returns the port with the given name, or nil.
func (sk *Skeleton) Port(name string) *Port {
	for _, p := range sk.ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Children returns nil: skeletons are leaf modules. Hierarchical
// containers (Circuit) override this.
func (sk *Skeleton) Children() []Module { return nil }

// stateFor returns (creating on demand) the per-scheduler run state.
func (sk *Skeleton) stateFor(id sim.SchedulerID) *runState {
	return sk.state.GetOrCreate(id, func() any {
		n := len(sk.ports)
		return &runState{
			in:      make([]signal.Value, n),
			prevIn:  make([]signal.Value, n),
			out:     make([]signal.Value, n),
			prevOut: make([]signal.Value, n),
		}
	}).(*runState)
}

// ResetState implements sim.Resettable: it discards stale per-scheduler
// state and runs the behavior's Reset hook.
func (sk *Skeleton) ResetState(ctx *sim.Context) {
	sk.state.Delete(ctx.SchedulerID())
	sk.stateFor(ctx.SchedulerID())
	if rb, ok := sk.behavior.(ResetBehavior); ok {
		rb.Reset(&Ctx{Sim: ctx, sk: sk})
	}
}

// ReleaseState implements sim.StateHolder.
func (sk *Skeleton) ReleaseState(id sim.SchedulerID) { sk.state.Delete(id) }

// StateLen returns the number of schedulers currently holding run state in
// the module's state table — the leak-audit hook: after every simulation
// of a design completes, each module's StateLen must return to its
// pre-run baseline.
func (sk *Skeleton) StateLen() int { return sk.state.Len() }

// HandleToken implements sim.Handler: it dispatches signal tokens to the
// behavior, estimation tokens to the selected estimators, and self and
// control tokens to the corresponding optional behaviors.
func (sk *Skeleton) HandleToken(ctx *sim.Context, tok sim.Token) {
	switch t := tok.(type) {
	case *sim.SignalToken:
		if t.Port < 0 || t.Port >= len(sk.ports) {
			panic(fmt.Sprintf("module: %s has no port %d", sk.name, t.Port))
		}
		rs := sk.stateFor(ctx.SchedulerID())
		prev := rs.in[t.Port]
		rs.prevIn[t.Port] = prev
		rs.in[t.Port] = t.Value
		rs.dirty = true
		if sk.behavior != nil {
			rs.mctx = Ctx{Sim: ctx, sk: sk}
			rs.pev = PortEvent{Port: sk.ports[t.Port], Value: t.Value, Prev: prev}
			sk.behavior.ProcessInputEvent(&rs.mctx, &rs.pev)
		}
	case *sim.EstimationToken:
		setup, _ := t.Setup.(*estim.Setup)
		if setup == nil {
			setup, _ = ctx.Setup.(*estim.Setup)
		}
		if setup != nil {
			sk.runEstimators(ctx, setup)
		}
	case *sim.SelfToken:
		if sb, ok := sk.behavior.(SelfBehavior); ok {
			rs := sk.stateFor(ctx.SchedulerID())
			rs.mctx = Ctx{Sim: ctx, sk: sk}
			sb.ProcessSelfEvent(&rs.mctx, t)
		}
	case *sim.ControlToken:
		if cb, ok := sk.behavior.(ControlBehavior); ok {
			rs := sk.stateFor(ctx.SchedulerID())
			rs.mctx = Ctx{Sim: ctx, sk: sk}
			cb.ProcessControl(&rs.mctx, t)
		}
	}
}

// runEstimators invokes the estimators this setup selected for the module
// and records their values. Estimation failures are recorded as null
// values rather than aborting the simulation.
func (sk *Skeleton) runEstimators(ctx *sim.Context, setup *estim.Setup) {
	sk.estMu.RLock()
	sel := sk.selected[setup]
	sk.estMu.RUnlock()
	if len(sel) == 0 {
		return
	}
	rs := sk.stateFor(ctx.SchedulerID())
	if !rs.dirty {
		return
	}
	rs.dirty = false
	ec := &rs.ec
	ec.Module = sk.name
	ec.Now = int64(ctx.Now())
	ec.Inputs = sk.portValues(ec.Inputs[:0], rs.in, In)
	ec.PrevIn = sk.portValues(ec.PrevIn[:0], rs.prevIn, In)
	ec.Outputs = sk.portValues(ec.Outputs[:0], rs.out, Out)
	ec.PrevOut = sk.portValues(ec.PrevOut[:0], rs.prevOut, Out)
	for param, e := range sel {
		v, err := e.Estimate(ec)
		if err != nil {
			v = estim.NullValue{}
		}
		setup.Record(sk.name, param, int64(ctx.Now()), v, e)
	}
}

// portValues appends the values of ports matching the direction (InOut
// ports appear in both views) to dst.
func (sk *Skeleton) portValues(dst []signal.Value, vals []signal.Value, dir Direction) []signal.Value {
	for i, p := range sk.ports {
		if p.Dir == dir || p.Dir == InOut {
			dst = append(dst, vals[i])
		}
	}
	return dst
}

// AddEstimator registers a candidate estimator for one of the module's
// parameters — the paper's addEstimator, called from a component's
// constructor.
func (sk *Skeleton) AddEstimator(e estim.Estimator) {
	sk.estMu.Lock()
	defer sk.estMu.Unlock()
	sk.candidates[e.Parameter()] = append(sk.candidates[e.Parameter()], e)
}

// Candidates implements estim.Component.
func (sk *Skeleton) Candidates(p estim.Parameter) []estim.Estimator {
	sk.estMu.RLock()
	defer sk.estMu.RUnlock()
	return append([]estim.Estimator(nil), sk.candidates[p]...)
}

// SelectEstimator implements estim.Component: it stores the setup's
// choice in the per-setup estimator table (the paper's hash table keyed
// by setup controller).
func (sk *Skeleton) SelectEstimator(s *estim.Setup, p estim.Parameter, e estim.Estimator) {
	sk.estMu.Lock()
	defer sk.estMu.Unlock()
	m := sk.selected[s]
	if m == nil {
		m = make(map[estim.Parameter]estim.Estimator)
		sk.selected[s] = m
	}
	m[p] = e
}

// SelectedEstimator returns the estimator a setup selected for a
// parameter, if any.
func (sk *Skeleton) SelectedEstimator(s *estim.Setup, p estim.Parameter) (estim.Estimator, bool) {
	sk.estMu.RLock()
	defer sk.estMu.RUnlock()
	e, ok := sk.selected[s][p]
	return e, ok
}

// PortValues snapshots the current values held by the module's ports of
// the given direction for one scheduler, in port-index order. Fault
// simulation uses this to capture the signal configuration at an IP
// component's inputs — the only design information forwarded to the
// provider.
func (sk *Skeleton) PortValues(id sim.SchedulerID, dir Direction) []signal.Value {
	rs := sk.stateFor(id)
	var out []signal.Value
	for i, p := range sk.ports {
		if p.Dir == dir || p.Dir == InOut {
			out = append(out, rs.in[i])
			if p.Dir == Out {
				out[len(out)-1] = rs.out[i]
			}
		}
	}
	return out
}

// OutputPorts returns the module's output ports in index order.
func (sk *Skeleton) OutputPorts() []*Port {
	var out []*Port
	for _, p := range sk.ports {
		if p.Dir == Out || p.Dir == InOut {
			out = append(out, p)
		}
	}
	return out
}

// InputPorts returns the module's input ports in index order.
func (sk *Skeleton) InputPorts() []*Port {
	var out []*Port
	for _, p := range sk.ports {
		if p.Dir == In || p.Dir == InOut {
			out = append(out, p)
		}
	}
	return out
}

// EstimationParams implements estim.Component.
func (sk *Skeleton) EstimationParams() []estim.Parameter {
	sk.estMu.RLock()
	defer sk.estMu.RUnlock()
	ps := make([]estim.Parameter, 0, len(sk.candidates))
	for p := range sk.candidates {
		ps = append(ps, p)
	}
	return ps
}

// Ctx bundles the kernel context with the module it is delivering to,
// giving behaviors their API surface.
type Ctx struct {
	Sim *sim.Context
	sk  *Skeleton
}

// Now returns the current simulation time.
func (c *Ctx) Now() sim.Time { return c.Sim.Now() }

// Module returns the skeleton of the module being handled.
func (c *Ctx) Module() *Skeleton { return c.sk }

// Drive sends value from the module's output port across its connector,
// delivering it to the peer module after delay time units. Driving an
// input port, an invalid payload, or a dangling connector is tolerated
// per the paper's semantics only for dangling connectors (no peer — the
// event is dropped); the first two panic as structural design errors.
func (c *Ctx) Drive(port *Port, value signal.Value, delay sim.Time) {
	if port.owner != c.sk {
		panic(fmt.Sprintf("module: %s driving foreign port %s.%s", c.sk.name, port.Module(), port.Name))
	}
	if port.Dir == In {
		panic(fmt.Sprintf("module: %s driving input port %s", c.sk.name, port.Name))
	}
	if port.conn != nil && port.conn.Validate != nil {
		if err := port.conn.Validate(value); err != nil {
			panic(err)
		}
	}
	rs := c.sk.stateFor(c.Sim.SchedulerID())
	rs.prevOut[port.Index] = rs.out[port.Index]
	rs.out[port.Index] = value
	if port.conn == nil {
		return
	}
	peer := port.conn.peer(port)
	if peer == nil {
		return
	}
	c.Sim.Post(c.Sim.AcquireSignal(c.Sim.Now()+delay, peer.owner, peer.Index, value, c.sk.name))
}

// ScheduleSelf posts a self-trigger token for the module.
func (c *Ctx) ScheduleSelf(delay sim.Time, tag string, payload any) {
	c.Sim.Post(&sim.SelfToken{T: c.Sim.Now() + delay, Dst: c.sk, Tag: tag, Payload: payload})
}

// Input returns the current value on a port (nil if never driven).
func (c *Ctx) Input(port *Port) signal.Value {
	return c.sk.stateFor(c.Sim.SchedulerID()).in[port.Index]
}

// State returns the behavior-private per-scheduler state.
func (c *Ctx) State() any { return c.sk.stateFor(c.Sim.SchedulerID()).user }

// SetState stores behavior-private per-scheduler state.
func (c *Ctx) SetState(v any) { c.sk.stateFor(c.Sim.SchedulerID()).user = v }

// InputWordOn reads the port's current value as a word, reporting whether
// a known word of the port's width is present.
func (c *Ctx) InputWordOn(port *Port) (signal.Word, bool) {
	v := c.Input(port)
	wv, ok := v.(signal.WordValue)
	if !ok || !wv.W.Known() {
		return signal.Word{}, false
	}
	return wv.W, true
}

// InputBitOn reads the port's current value as a bit (BX if absent).
func (c *Ctx) InputBitOn(port *Port) signal.Bit {
	v := c.Input(port)
	bv, ok := v.(signal.BitValue)
	if !ok {
		return signal.BX
	}
	return bv.B
}
