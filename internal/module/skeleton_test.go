package module

import (
	"testing"

	"repro/internal/estim"
	"repro/internal/signal"
	"repro/internal/sim"
)

// ctlModule exercises the optional behavior interfaces: control tokens
// and behavior-private state.
type ctlModule struct {
	*Skeleton
	out      *Port
	controls []string
}

func newCtlModule(name string, out *Connector) *ctlModule {
	m := &ctlModule{}
	m.Skeleton = NewSkeleton(name, m)
	m.out = m.AddPort("out", Out, 4, out)
	return m
}

func (m *ctlModule) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {}

func (m *ctlModule) ProcessControl(ctx *Ctx, tok *sim.ControlToken) {
	m.controls = append(m.controls, tok.Command)
	if tok.Command == "emit" {
		ctx.Drive(m.out, word(7, 4), 1)
	}
}

func TestControlTokenDispatch(t *testing.T) {
	c := NewWordConnector("c", 4)
	m := newCtlModule("m", c)
	out := NewPrimaryOutput("out", 4, c)
	ctrl := sim.NewController(m.Skeleton, out.Skeleton)
	ctrl.Seed = func(ctx *sim.Context) {
		ctx.Post(&sim.ControlToken{T: 1, Dst: m.Skeleton, Command: "emit"})
		ctx.Post(&sim.ControlToken{T: 2, Dst: m.Skeleton, Command: "noop"})
	}
	st := ctrl.Start(nil, nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if len(m.controls) != 2 || m.controls[0] != "emit" {
		t.Errorf("controls = %v", m.controls)
	}
	if len(out.LastHistory()) != 1 {
		t.Error("control-driven emission missing")
	}
}

func TestPortValuesSnapshots(t *testing.T) {
	c1 := NewWordConnector("c1", 4)
	c2 := NewWordConnector("c2", 4)
	in := NewPatternInput("in", 4, []signal.Value{word(9, 4)}, 1, c1)
	reg := NewRegister("reg", 4, c1, c2)
	out := NewPrimaryOutput("out", 4, c2)
	s := NewSimulation(NewCircuit("t", in, reg, out))
	// Capture port values during the run via an instant hook.
	var lastIn, lastOut []signal.Value
	st := s.StartConfigured(nil, func(sched *sim.Scheduler) {
		sched.AddInstantHook(func(ctx *sim.Context, _ sim.Time) {
			lastIn = reg.PortValues(ctx.SchedulerID(), In)
			lastOut = reg.PortValues(ctx.SchedulerID(), Out)
		})
	})
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if len(lastIn) != 1 || lastIn[0] == nil {
		t.Fatalf("input snapshot = %v", lastIn)
	}
	v, _ := lastIn[0].(signal.WordValue).W.Uint64()
	if v != 9 {
		t.Errorf("captured input = %d", v)
	}
	if len(lastOut) != 1 || lastOut[0] == nil {
		t.Fatalf("output snapshot = %v", lastOut)
	}
}

func TestInputAndOutputPortLists(t *testing.T) {
	reg := NewRegister("r", 4, nil, nil)
	ins := reg.InputPorts()
	outs := reg.OutputPorts()
	if len(ins) != 1 || ins[0].Name != "d" {
		t.Errorf("inputs = %v", ins)
	}
	if len(outs) != 1 || outs[0].Name != "q" {
		t.Errorf("outputs = %v", outs)
	}
	if reg.Base() != reg.Skeleton {
		t.Error("Base identity wrong")
	}
}

func TestCandidatesReturnsCopy(t *testing.T) {
	r := NewRegister("r", 4, nil, nil)
	r.AddEstimator(&estim.Constant{Meta: estim.Meta{Name: "a", Param: estim.ParamArea}, Value: 1})
	c1 := r.Candidates(estim.ParamArea)
	c1[0] = nil
	c2 := r.Candidates(estim.ParamArea)
	if c2[0] == nil {
		t.Error("Candidates leaked internal slice")
	}
	params := r.EstimationParams()
	if len(params) != 1 || params[0] != estim.ParamArea {
		t.Errorf("EstimationParams = %v", params)
	}
}

func TestSelectedEstimatorLookup(t *testing.T) {
	r := NewRegister("r", 4, nil, nil)
	e := &estim.Constant{Meta: estim.Meta{Name: "a", Param: estim.ParamArea}, Value: 1}
	r.AddEstimator(e)
	s := estim.NewSetup("s")
	s.Set(estim.ParamArea, estim.Criteria{})
	s.SelectFor(r)
	got, ok := r.SelectedEstimator(s, estim.ParamArea)
	if !ok || got.EstimatorName() != "a" {
		t.Errorf("selected = %v, %v", got, ok)
	}
	other := estim.NewSetup("other")
	if _, ok := r.SelectedEstimator(other, estim.ParamArea); ok {
		t.Error("selection leaked across setups")
	}
}

func TestConnectorInputEnd(t *testing.T) {
	c := NewWordConnector("c", 4)
	in := NewPatternInput("in", 4, nil, 1, c) // attaches Out port
	_ = in
	if c.InputEnd() != nil {
		t.Error("InputEnd found on output-only connector")
	}
	reg := NewRegister("r", 4, c, nil)
	ie := c.InputEnd()
	if ie == nil || ie.Owner() != reg.Skeleton {
		t.Error("InputEnd wrong")
	}
	if c.Peer(ie) == nil {
		t.Error("Peer lookup failed")
	}
}

func TestMuxWithUnknownSelectHolds(t *testing.T) {
	a := NewWordConnector("a", 4)
	b := NewWordConnector("b", 4)
	s := NewBitConnector("s")
	o := NewWordConnector("o", 4)
	ina := NewPatternInput("ina", 4, []signal.Value{word(1, 4)}, 1, a)
	inb := NewPatternInput("inb", 4, []signal.Value{word(2, 4)}, 1, b)
	selIn := NewPatternInput("sel", 1, []signal.Value{signal.BitValue{B: signal.BX}}, 2, s)
	mux := NewMux2("mux", 4, a, b, s, o)
	out := NewPrimaryOutput("out", 4, o)
	st := NewSimulation(NewCircuit("t", ina, inb, selIn, mux, out)).Start(nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if len(out.LastHistory()) != 0 {
		t.Error("mux drove output with X select")
	}
}

func TestLastHistoryAmbiguousAfterTwoRuns(t *testing.T) {
	c := NewWordConnector("c", 4)
	in := NewPatternInput("in", 4, []signal.Value{word(1, 4)}, 1, c)
	out := NewPrimaryOutput("out", 4, c)
	s := NewSimulation(NewCircuit("t", in, out))
	if st := s.Start(nil); st.Err != nil {
		t.Fatal(st.Err)
	}
	if st := s.Start(nil); st.Err != nil {
		t.Fatal(st.Err)
	}
	if out.LastHistory() != nil {
		t.Error("LastHistory must refuse when two runs recorded")
	}
	out.ClearHistory()
	if out.LastHistory() != nil {
		t.Error("LastHistory after clear must be nil")
	}
}

func TestFuncBitModuleBehavioral(t *testing.T) {
	// A behavioral majority gate.
	ins := []*Connector{NewBitConnector("i0"), NewBitConnector("i1"), NewBitConnector("i2")}
	o := NewBitConnector("o")
	maj := NewFuncBitModule("maj", func(in []signal.Bit) []signal.Bit {
		n := 0
		for _, b := range in {
			if b == signal.B1 {
				n++
			}
		}
		return []signal.Bit{signal.FromBool(n >= 2)}
	}, ins, []*Connector{o})
	p0 := NewPatternInput("p0", 1, []signal.Value{signal.BitValue{B: signal.B1}}, 1, ins[0])
	p1 := NewPatternInput("p1", 1, []signal.Value{signal.BitValue{B: signal.B1}}, 2, ins[1])
	p2 := NewPatternInput("p2", 1, []signal.Value{signal.BitValue{B: signal.B0}}, 3, ins[2])
	out := NewPrimaryOutput("out", 1, o)
	st := NewSimulation(NewCircuit("t", maj, p0, p1, p2, out)).Start(nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	h := out.LastHistory()
	if len(h) == 0 {
		t.Fatal("no majority output")
	}
	if h[len(h)-1].Value.(signal.BitValue).B != signal.B1 {
		t.Error("majority(1,1,0) != 1")
	}
}

func TestFuncWordModuleBehavioral(t *testing.T) {
	a := NewWordConnector("a", 8)
	o := NewWordConnector("o", 8)
	sq := NewFuncWordModule("twice", func(in []signal.Word) []signal.Word {
		v, _ := in[0].Uint64()
		return []signal.Word{signal.WordFromUint64(v*2&0xFF, 8)}
	}, []int{8}, []int{8}, []*Connector{a}, []*Connector{o})
	in := NewPatternInput("in", 8, []signal.Value{word(21, 8)}, 1, a)
	out := NewPrimaryOutput("out", 8, o)
	st := NewSimulation(NewCircuit("t", sq, in, out)).Start(nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	h := out.LastHistory()
	if len(h) != 1 {
		t.Fatal("no output")
	}
	v, _ := h[0].Value.(signal.WordValue).W.Uint64()
	if v != 42 {
		t.Errorf("2*21 = %d", v)
	}
}

func TestFuncBitModuleWrongArityPanics(t *testing.T) {
	ins := []*Connector{NewBitConnector("i")}
	o := NewBitConnector("o")
	bad := NewFuncBitModule("bad", func(in []signal.Bit) []signal.Bit {
		return nil // wrong output count
	}, ins, []*Connector{o})
	in := NewPatternInput("in", 1, []signal.Value{signal.BitValue{B: signal.B1}}, 1, ins[0])
	s := NewSimulation(NewCircuit("t", bad, in))
	defer func() {
		if recover() == nil {
			t.Error("wrong function arity did not panic")
		}
	}()
	s.Start(nil)
}
