package module

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/signal"
	"repro/internal/sim"
)

// Fanout replicates its input event to N output connectors, because
// connectors themselves are strictly point-to-point. Each branch can have
// its own propagation delay — the paper's "custom fan-out modules can
// provide different delays to propagate a signal toward different target
// connectors".
type Fanout struct {
	*Skeleton
	in     *Port
	outs   []*Port
	delays []sim.Time
}

// NewFanout returns a fan-out module. delays may be nil (all zero) or
// have one entry per output connector.
func NewFanout(name string, width int, in *Connector, outs []*Connector, delays []sim.Time) *Fanout {
	if delays != nil && len(delays) != len(outs) {
		panic(fmt.Sprintf("module: fanout %q has %d outputs but %d delays", name, len(outs), len(delays)))
	}
	m := &Fanout{delays: delays}
	m.Skeleton = NewSkeleton(name, m)
	m.in = m.AddPort("in", In, width, in)
	for i, c := range outs {
		m.outs = append(m.outs, m.AddPort(fmt.Sprintf("out%d", i), Out, width, c))
	}
	return m
}

// ProcessInputEvent replicates the event to every branch.
func (m *Fanout) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	for i, p := range m.outs {
		var d sim.Time
		if m.delays != nil {
			d = m.delays[i]
		}
		ctx.Drive(p, ev.Value, d)
	}
}

// Delay forwards its input to its output after a fixed delay — the
// special module representing net delay on a connection.
type Delay struct {
	*Skeleton
	in, out *Port
	// D is the propagation delay.
	D sim.Time
}

// NewDelay returns a delay element.
func NewDelay(name string, width int, d sim.Time, in, out *Connector) *Delay {
	m := &Delay{D: d}
	m.Skeleton = NewSkeleton(name, m)
	m.in = m.AddPort("in", In, width, in)
	m.out = m.AddPort("out", Out, width, out)
	return m
}

// ProcessInputEvent forwards after the delay.
func (m *Delay) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	ctx.Drive(m.out, ev.Value, m.D)
}

// GateModule is a single logic gate as an event-driven module over bit
// connectors — the gate-level abstraction of the design model.
type GateModule struct {
	*Skeleton
	kind gate.Kind
	ins  []*Port
	out  *Port
	// Delay is the gate propagation delay (default 1).
	Delay sim.Time
}

// NewGateModule returns a gate of the given kind over bit connectors.
func NewGateModule(name string, kind gate.Kind, ins []*Connector, out *Connector) *GateModule {
	m := &GateModule{kind: kind, Delay: 1}
	m.Skeleton = NewSkeleton(name, m)
	for i, c := range ins {
		m.ins = append(m.ins, m.AddPort(fmt.Sprintf("in%d", i), In, 1, c))
	}
	m.out = m.AddPort("out", Out, 1, out)
	return m
}

// ProcessInputEvent re-evaluates the gate whenever an input changes, and
// drives the output only on value changes (event-driven suppression).
func (m *GateModule) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	bits := make([]signal.Bit, len(m.ins))
	for i, p := range m.ins {
		bits[i] = ctx.InputBitOn(p)
	}
	v := evalKind(m.kind, bits)
	prev, _ := ctx.State().(signal.Bit)
	if st := ctx.State(); st != nil && prev == v {
		return
	}
	ctx.SetState(v)
	ctx.Drive(m.out, signal.BitValue{B: v}, m.Delay)
}

// evalKind evaluates a gate kind over bit values.
func evalKind(k gate.Kind, in []signal.Bit) signal.Bit {
	switch k {
	case gate.Buf:
		return in[0].Or(in[0])
	case gate.Not:
		return in[0].Not()
	}
	v := in[0]
	for _, b := range in[1:] {
		switch k {
		case gate.And, gate.Nand:
			v = v.And(b)
		case gate.Or, gate.Nor:
			v = v.Or(b)
		case gate.Xor, gate.Xnor:
			v = v.Xor(b)
		}
	}
	switch k {
	case gate.Nand, gate.Nor, gate.Xnor:
		v = v.Not()
	}
	return v
}

// NetlistModule wraps a gate.Netlist as one event-driven component: bit
// inputs and outputs in the netlist's port order. This is how a provider
// packages a gate-level implementation behind the module interface — and
// the mixed-level bridge, since a NetlistModule instantiates seamlessly
// next to RTL modules.
type NetlistModule struct {
	*Skeleton
	nl    *gate.Netlist
	ins   []*Port
	outs  []*Port
	Delay sim.Time
}

// netlistState holds the per-scheduler evaluator (evaluators are not
// concurrency-safe) plus the last driven outputs for change suppression.
type netlistState struct {
	ev   *gate.Evaluator
	last []signal.Bit
}

// NewNetlistModule returns a module evaluating nl. ins and outs must
// match the netlist's primary input and output counts.
func NewNetlistModule(name string, nl *gate.Netlist, ins, outs []*Connector) *NetlistModule {
	if len(ins) != len(nl.Inputs()) || len(outs) != len(nl.Outputs()) {
		panic(fmt.Sprintf("module: netlist %s has %d/%d ports, got %d/%d connectors",
			nl.Name, len(nl.Inputs()), len(nl.Outputs()), len(ins), len(outs)))
	}
	if err := nl.Build(); err != nil {
		panic(err)
	}
	m := &NetlistModule{nl: nl, Delay: 1}
	m.Skeleton = NewSkeleton(name, m)
	for i, c := range ins {
		m.ins = append(m.ins, m.AddPort(fmt.Sprintf("in%d", i), In, 1, c))
	}
	for i, c := range outs {
		m.outs = append(m.outs, m.AddPort(fmt.Sprintf("out%d", i), Out, 1, c))
	}
	return m
}

// Netlist exposes the wrapped netlist (provider-side code only; in a
// remote deployment the netlist never reaches the user).
func (m *NetlistModule) Netlist() *gate.Netlist { return m.nl }

// ProcessInputEvent re-evaluates the netlist over the current port values
// and drives outputs that changed.
func (m *NetlistModule) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	st, _ := ctx.State().(*netlistState)
	if st == nil {
		e, err := m.nl.NewEvaluator()
		if err != nil {
			panic(err)
		}
		st = &netlistState{ev: e, last: make([]signal.Bit, len(m.outs))}
		for i := range st.last {
			st.last[i] = signal.BZ // sentinel: never driven
		}
		ctx.SetState(st)
	}
	in := make([]signal.Bit, len(m.ins))
	for i, p := range m.ins {
		in[i] = ctx.InputBitOn(p)
	}
	out, err := st.ev.Eval(in)
	if err != nil {
		panic(err)
	}
	for i, p := range m.outs {
		if out[i] == st.last[i] {
			continue
		}
		st.last[i] = out[i]
		ctx.Drive(p, signal.BitValue{B: out[i]}, m.Delay)
	}
}

// WordToBits splits a word connector into per-bit connectors — the
// interface module between a part of the design described at the RTL and
// a part described at the gate level.
type WordToBits struct {
	*Skeleton
	in   *Port
	outs []*Port
}

// NewWordToBits returns the word-to-bits adapter; outs[i] carries bit i.
func NewWordToBits(name string, width int, in *Connector, outs []*Connector) *WordToBits {
	if len(outs) != width {
		panic(fmt.Sprintf("module: %s needs %d bit connectors, got %d", name, width, len(outs)))
	}
	m := &WordToBits{}
	m.Skeleton = NewSkeleton(name, m)
	m.in = m.AddPort("in", In, width, in)
	for i, c := range outs {
		m.outs = append(m.outs, m.AddPort(fmt.Sprintf("bit%d", i), Out, 1, c))
	}
	return m
}

// ProcessInputEvent fans the word out bit by bit.
func (m *WordToBits) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	wv, ok := ev.Value.(signal.WordValue)
	if !ok {
		return
	}
	for i, p := range m.outs {
		ctx.Drive(p, signal.BitValue{B: wv.W.Bit(i)}, 0)
	}
}

// BitsToWord assembles per-bit connectors into a word connector.
type BitsToWord struct {
	*Skeleton
	ins []*Port
	out *Port
}

// NewBitsToWord returns the bits-to-word adapter; ins[i] carries bit i.
func NewBitsToWord(name string, width int, ins []*Connector, out *Connector) *BitsToWord {
	if len(ins) != width {
		panic(fmt.Sprintf("module: %s needs %d bit connectors, got %d", name, width, len(ins)))
	}
	m := &BitsToWord{}
	m.Skeleton = NewSkeleton(name, m)
	for i, c := range ins {
		m.ins = append(m.ins, m.AddPort(fmt.Sprintf("bit%d", i), In, 1, c))
	}
	m.out = m.AddPort("out", Out, width, out)
	return m
}

// ProcessInputEvent reassembles and drives the word (unknown bits X).
func (m *BitsToWord) ProcessInputEvent(ctx *Ctx, ev *PortEvent) {
	w := signal.UnknownWord(len(m.ins))
	for i, p := range m.ins {
		w.Bits[i] = ctx.InputBitOn(p)
	}
	ctx.Drive(m.out, signal.WordValue{W: w}, 0)
}
