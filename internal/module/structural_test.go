package module

import (
	"math/rand"
	"testing"

	"repro/internal/gate"
	"repro/internal/signal"
)

func TestGateModuleEval(t *testing.T) {
	a := NewBitConnector("a")
	b := NewBitConnector("b")
	o := NewBitConnector("o")
	ina := NewPatternInput("ina", 1, []signal.Value{signal.BitValue{B: signal.B1}}, 1, a)
	inb := NewPatternInput("inb", 1, []signal.Value{signal.BitValue{B: signal.B1}}, 1, b)
	g := NewGateModule("g", gate.Nand, []*Connector{a, b}, o)
	out := NewPrimaryOutput("out", 1, o)
	runCircuit(t, NewCircuit("top", ina, inb, g, out))
	h := out.LastHistory()
	if len(h) == 0 {
		t.Fatal("no gate output")
	}
	if got := h[len(h)-1].Value.(signal.BitValue).B; got != signal.B0 {
		t.Errorf("NAND(1,1) = %v, want 0", got)
	}
}

func TestGateModuleSuppressesUnchangedOutput(t *testing.T) {
	a := NewBitConnector("a")
	o := NewBitConnector("o")
	// Input toggles 0,0,1: BUF output should fire for the first 0 (X->0
	// counts as a change from the unset state) and then for the 1.
	seq := []signal.Value{
		signal.BitValue{B: signal.B0},
		signal.BitValue{B: signal.B0},
		signal.BitValue{B: signal.B1},
	}
	in := NewPatternInput("in", 1, seq, 1, a)
	g := NewGateModule("g", gate.Buf, []*Connector{a}, o)
	out := NewPrimaryOutput("out", 1, o)
	runCircuit(t, NewCircuit("top", in, g, out))
	if got := len(out.LastHistory()); got != 2 {
		t.Errorf("gate fired %d times, want 2 (event-driven suppression)", got)
	}
}

func TestNetlistModuleMatchesDirectEval(t *testing.T) {
	nl := gate.RippleAdder(3)
	width := 6
	// Drive the 6 inputs from a word via WordToBits, read the 4 outputs
	// via BitsToWord — a full mixed-level pipeline.
	wconn := NewWordConnector("w", width)
	bitConns := make([]*Connector, width)
	for i := range bitConns {
		bitConns[i] = NewBitConnector("b" + string(rune('0'+i)))
	}
	outBits := make([]*Connector, 4)
	for i := range outBits {
		outBits[i] = NewBitConnector("ob" + string(rune('0'+i)))
	}
	oconn := NewWordConnector("o", 4)

	r := rand.New(rand.NewSource(5))
	var vals []signal.Value
	var raw []uint64
	for i := 0; i < 20; i++ {
		v := uint64(r.Intn(64))
		raw = append(raw, v)
		vals = append(vals, word(v, width))
	}
	in := NewPatternInput("in", width, vals, 10, wconn)
	split := NewWordToBits("split", width, wconn, bitConns)
	nm := NewNetlistModule("rca", nl, bitConns, outBits)
	join := NewBitsToWord("join", 4, outBits, oconn)
	out := NewPrimaryOutput("out", 4, oconn)
	runCircuit(t, NewCircuit("top", in, split, nm, join, out))

	h := out.LastHistory()
	if len(h) == 0 {
		t.Fatal("no outputs")
	}
	// The final stable observation per pattern instant must equal the sum
	// a+b where a = low 3 bits, b = high 3 bits. Check the last value
	// observed before each next pattern time.
	byTime := map[int64]uint64{}
	for _, obs := range h {
		if wv, ok := obs.Value.(signal.WordValue); ok {
			if v, known := wv.W.Uint64(); known {
				byTime[int64(obs.Time)] = v
			}
		}
	}
	checked := 0
	for i, v := range raw {
		a := v & 7
		b := (v >> 3) & 7
		// Pattern i issued at t=10*(i+1); netlist output settles within
		// the same region (delays: split 0, netlist 1, join 0).
		tEmit := int64(10*(i+1)) + 1
		got, ok := byTime[tEmit]
		if !ok {
			continue // output unchanged from previous pattern
		}
		if got != a+b {
			t.Errorf("pattern %d: %d+%d = %d, want %d", i, a, b, got, a+b)
		}
		checked++
	}
	if checked < 10 {
		t.Errorf("only %d patterns produced distinct sums; wiring suspect", checked)
	}
}

func TestNetlistModulePortCountMismatchPanics(t *testing.T) {
	nl := gate.RippleAdder(2)
	defer func() {
		if recover() == nil {
			t.Error("port mismatch did not panic")
		}
	}()
	NewNetlistModule("bad", nl, []*Connector{nil}, []*Connector{nil})
}

func TestWordToBitsWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	NewWordToBits("w2b", 4, nil, []*Connector{nil})
}

func TestBitsToWordAssembly(t *testing.T) {
	ins := []*Connector{NewBitConnector("i0"), NewBitConnector("i1")}
	o := NewWordConnector("o", 2)
	p0 := NewPatternInput("p0", 1, []signal.Value{signal.BitValue{B: signal.B1}}, 1, ins[0])
	p1 := NewPatternInput("p1", 1, []signal.Value{signal.BitValue{B: signal.B0}}, 2, ins[1])
	j := NewBitsToWord("j", 2, ins, o)
	out := NewPrimaryOutput("out", 2, o)
	runCircuit(t, NewCircuit("top", p0, p1, j, out))
	h := out.LastHistory()
	if len(h) == 0 {
		t.Fatal("no assembled word")
	}
	last := h[len(h)-1].Value.(signal.WordValue).W
	if last.Bit(0) != signal.B1 || last.Bit(1) != signal.B0 {
		t.Errorf("assembled word = %v", last)
	}
}

func TestBitsToWordUnknownBitsAreX(t *testing.T) {
	ins := []*Connector{NewBitConnector("i0"), NewBitConnector("i1")}
	o := NewWordConnector("o", 2)
	p0 := NewPatternInput("p0", 1, []signal.Value{signal.BitValue{B: signal.B1}}, 1, ins[0])
	j := NewBitsToWord("j", 2, ins, o)
	out := NewPrimaryOutput("out", 2, o)
	runCircuit(t, NewCircuit("top", p0, j, out))
	h := out.LastHistory()
	if len(h) == 0 {
		t.Fatal("no word")
	}
	w := h[0].Value.(signal.WordValue).W
	if w.Bit(1) != signal.BX {
		t.Errorf("undriven bit = %v, want X", w.Bit(1))
	}
}
