package module

import "fmt"

// Issue is one design-rule finding from Validate.
type Issue struct {
	// Severity is "error" for structures that will misbehave or panic at
	// simulation time, "warning" for suspicious-but-legal ones.
	Severity string
	Module   string
	Port     string
	Msg      string
}

func (i Issue) String() string {
	where := i.Module
	if i.Port != "" {
		where += "." + i.Port
	}
	return fmt.Sprintf("%s: %s: %s", i.Severity, where, i.Msg)
}

// Validate runs design-rule checks over a circuit before simulation:
//
//   - two output (or two input) ends tied to one connector — a connector
//     must join a producer to a consumer;
//   - dangling input ports (no connector, or a connector with no driver):
//     the module will never receive events on them;
//   - dangling output connectors (no reader): events will be dropped;
//   - width mismatches between a port and its connector (normally caught
//     at construction, but detached ports re-wired by hand can drift).
//
// Validate is advisory: gocad simulates designs with warnings (the paper
// allows partially-wired exploration), but errors indicate a structure
// that cannot behave as intended.
func Validate(c *Circuit) []Issue {
	var issues []Issue
	for _, m := range c.Leaves() {
		for _, p := range m.Ports() {
			conn := p.Connector()
			if conn == nil {
				sev := "warning"
				msg := "port has no connector"
				if p.Dir == In {
					msg = "input port has no connector; it will never receive events"
				}
				issues = append(issues, Issue{Severity: sev, Module: m.ModuleName(), Port: p.Name, Msg: msg})
				continue
			}
			if conn.Width != 0 && p.Width != 0 && conn.Width != p.Width {
				issues = append(issues, Issue{
					Severity: "error", Module: m.ModuleName(), Port: p.Name,
					Msg: fmt.Sprintf("port width %d does not match connector %q width %d", p.Width, conn.Name, conn.Width),
				})
			}
			peer := conn.Peer(p)
			if peer == nil {
				msg := "connector has no far end; events will be dropped"
				sev := "warning"
				if p.Dir == In {
					msg = "input connector has no driver; the port will never receive events"
				}
				issues = append(issues, Issue{Severity: sev, Module: m.ModuleName(), Port: p.Name, Msg: msg})
				continue
			}
			// Direction agreement (report once, from the lower module name).
			if p.Dir == peer.Dir && p.Dir != InOut && m.ModuleName() <= peer.Module() {
				issues = append(issues, Issue{
					Severity: "error", Module: m.ModuleName(), Port: p.Name,
					Msg: fmt.Sprintf("connector %q ties two %s ports (%s.%s and %s.%s)",
						conn.Name, p.Dir, m.ModuleName(), p.Name, peer.Module(), peer.Name),
				})
			}
		}
	}
	return issues
}

// Errors filters Validate output down to hard errors.
func Errors(issues []Issue) []Issue {
	var out []Issue
	for _, i := range issues {
		if i.Severity == "error" {
			out = append(out, i)
		}
	}
	return out
}
