package module

import (
	"strings"
	"testing"

	"repro/internal/signal"
)

func issuesContain(issues []Issue, substr string) bool {
	for _, i := range issues {
		if strings.Contains(i.String(), substr) {
			return true
		}
	}
	return false
}

func TestValidateCleanDesign(t *testing.T) {
	c1 := NewWordConnector("c1", 4)
	c2 := NewWordConnector("c2", 4)
	in := NewPatternInput("in", 4, []signal.Value{word(1, 4)}, 1, c1)
	reg := NewRegister("reg", 4, c1, c2)
	out := NewPrimaryOutput("out", 4, c2)
	issues := Validate(NewCircuit("clean", in, reg, out))
	if len(Errors(issues)) != 0 {
		t.Errorf("clean design has errors: %v", issues)
	}
	if len(issues) != 0 {
		t.Errorf("clean design has findings: %v", issues)
	}
}

func TestValidateDanglingInput(t *testing.T) {
	reg := NewRegister("reg", 4, nil, nil)
	issues := Validate(NewCircuit("d", reg))
	if !issuesContain(issues, "never receive events") {
		t.Errorf("dangling input not reported: %v", issues)
	}
}

func TestValidateUndrivenConnector(t *testing.T) {
	c1 := NewWordConnector("c1", 4)
	reg := NewRegister("reg", 4, c1, nil) // c1 has no producer
	issues := Validate(NewCircuit("d", reg))
	if !issuesContain(issues, "no driver") {
		t.Errorf("undriven input connector not reported: %v", issues)
	}
}

func TestValidateDroppedOutput(t *testing.T) {
	c1 := NewWordConnector("c1", 4)
	c2 := NewWordConnector("c2", 4)
	in := NewPatternInput("in", 4, nil, 1, c1)
	reg := NewRegister("reg", 4, c1, c2) // c2 unread
	issues := Validate(NewCircuit("d", in, reg))
	if !issuesContain(issues, "dropped") {
		t.Errorf("dropped-output connector not reported: %v", issues)
	}
	// Warnings only — no hard errors.
	if len(Errors(issues)) != 0 {
		t.Errorf("warnings misclassified: %v", issues)
	}
}

func TestValidateTwoProducers(t *testing.T) {
	c1 := NewWordConnector("c1", 4)
	a := NewPatternInput("a", 4, nil, 1, c1)
	b := NewPatternInput("b", 4, nil, 1, c1) // second producer on c1
	_ = a
	_ = b
	issues := Validate(NewCircuit("d", a, b))
	errs := Errors(issues)
	if !issuesContain(errs, "ties two out ports") {
		t.Errorf("double producer not reported as error: %v", issues)
	}
}

func TestIssueString(t *testing.T) {
	i := Issue{Severity: "error", Module: "m", Port: "p", Msg: "boom"}
	if i.String() != "error: m.p: boom" {
		t.Errorf("String = %q", i.String())
	}
	i2 := Issue{Severity: "warning", Module: "m", Msg: "meh"}
	if !strings.HasPrefix(i2.String(), "warning: m:") {
		t.Errorf("String = %q", i2.String())
	}
}
