package netsim

import (
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"net"
	"sync"
	"time"
)

// ErrChaosPartition is the dial error a partitioned replica surfaces.
var ErrChaosPartition = errors.New("netsim: chaos partition: dial refused")

// ChaosKind enumerates the per-replica failure scenarios the chaos
// harness scripts. Every scenario is deterministic: given the same seed
// the same replicas fail the same way at the same operation counts.
type ChaosKind int

const (
	// ChaosNone leaves the replica perfectly healthy (the guaranteed
	// survivor every schedule keeps).
	ChaosNone ChaosKind = iota
	// ChaosKill resets the first connection mid-stream; every later
	// dial is refused — a crashed replica that stays down.
	ChaosKill
	// ChaosPartition refuses every dial from the start — a replica on
	// the wrong side of a network split.
	ChaosPartition
	// ChaosSlowDrip keeps the replica alive but drips early writes
	// byte-at-a-time — a pathologically slow but correct peer.
	ChaosSlowDrip
	// ChaosFlap resets the first connection mid-stream but accepts
	// later dials cleanly — a transient crash with recovery.
	ChaosFlap
)

func (k ChaosKind) String() string {
	switch k {
	case ChaosNone:
		return "none"
	case ChaosKill:
		return "kill"
	case ChaosPartition:
		return "partition"
	case ChaosSlowDrip:
		return "slow-drip"
	case ChaosFlap:
		return "flap"
	}
	return fmt.Sprintf("ChaosKind(%d)", int(k))
}

// ReplicaScript is the scripted behavior of one replica across the
// lifetime of a run.
type ReplicaScript struct {
	// Kind is the scenario, for reporting.
	Kind ChaosKind
	// Plan is the fault plan wrapped onto the replica's first
	// connection (nil = clean).
	Plan *FaultPlan
	// RefuseFrom is the 0-based dial index from which dials are
	// refused with ErrChaosPartition; -1 never refuses.
	RefuseFrom int
}

// ChaosSchedule is a seeded, deterministic fault schedule across a
// replica set: one script per replica, with one designated replica left
// untouched so the standing invariant "bit-identical results while at
// least one replica stays healthy" is testable at every seed. Dial
// counts are tracked per replica so the same schedule instance must not
// be shared between runs — derive a fresh one per run from the seed.
type ChaosSchedule struct {
	Scripts []ReplicaScript
	Healthy int // index of the guaranteed-healthy replica

	mu    sync.Mutex
	dials []int
}

// ScriptedSchedule builds a schedule from explicit per-replica scripts —
// the constructor for hand-written scenarios; NewChaosSchedule derives
// seeded random ones. healthy is the guaranteed-healthy index (-1 if no
// replica is).
func ScriptedSchedule(healthy int, scripts ...ReplicaScript) *ChaosSchedule {
	return &ChaosSchedule{Scripts: scripts, Healthy: healthy, dials: make([]int, len(scripts))}
}

// NewChaosSchedule derives the schedule for n replicas from seed,
// keeping replica (seed mod n) healthy and scripting a seeded-random
// scenario for every other replica. Faulty scenarios are drawn from
// {kill, partition, slow-drip, flap} with seeded parameters (reset
// write counts 3..12, drip delays ≤ 50µs on early writes).
func NewChaosSchedule(seed uint64, n int) *ChaosSchedule {
	r := mrand.New(mrand.NewPCG(seed, 0xc4a05))
	cs := &ChaosSchedule{
		Scripts: make([]ReplicaScript, n),
		Healthy: int(seed % uint64(n)),
		dials:   make([]int, n),
	}
	for i := range cs.Scripts {
		if i == cs.Healthy {
			cs.Scripts[i] = ReplicaScript{Kind: ChaosNone, RefuseFrom: -1}
			continue
		}
		switch kind := ChaosKind(1 + r.IntN(4)); kind {
		case ChaosKill:
			cs.Scripts[i] = ReplicaScript{
				Kind:       ChaosKill,
				Plan:       ResetAfterWrites(3 + r.IntN(10)),
				RefuseFrom: 1,
			}
		case ChaosPartition:
			cs.Scripts[i] = ReplicaScript{Kind: ChaosPartition, RefuseFrom: 0}
		case ChaosSlowDrip:
			plan := SlowDripWrite(2+r.IntN(4), time.Duration(10+r.IntN(40))*time.Microsecond)
			cs.Scripts[i] = ReplicaScript{Kind: ChaosSlowDrip, Plan: plan, RefuseFrom: -1}
		case ChaosFlap:
			cs.Scripts[i] = ReplicaScript{
				Kind:       ChaosFlap,
				Plan:       ResetAfterWrites(3 + r.IntN(10)),
				RefuseFrom: -1,
			}
		}
	}
	return cs
}

// Dialer wraps replica i's base dialer with its script: refused dial
// indexes fail with ErrChaosPartition, the first successful connection
// carries the script's fault plan, later connections are clean (the
// flap recovery path).
func (cs *ChaosSchedule) Dialer(i int, base func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		cs.mu.Lock()
		idx := cs.dials[i]
		cs.dials[i]++
		s := cs.Scripts[i]
		cs.mu.Unlock()
		if s.RefuseFrom >= 0 && idx >= s.RefuseFrom {
			return nil, fmt.Errorf("replica %d (%s) dial %d: %w", i, s.Kind, idx, ErrChaosPartition)
		}
		conn, err := base()
		if err != nil {
			return nil, err
		}
		if idx == 0 && s.Plan != nil {
			return s.Plan.Wrap(conn), nil
		}
		return conn, nil
	}
}

// Dials returns how many dial attempts replica i has absorbed.
func (cs *ChaosSchedule) Dials(i int) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.dials[i]
}

// AllDeadSchedule scripts every replica dead — kills the first
// connection of each and refuses all redials — for the degradation half
// of the invariant: the run must end in explicit, reported degradation,
// never a hang or silently partial results.
func AllDeadSchedule(seed uint64, n int) *ChaosSchedule {
	r := mrand.New(mrand.NewPCG(seed, 0xdead))
	cs := &ChaosSchedule{
		Scripts: make([]ReplicaScript, n),
		Healthy: -1,
		dials:   make([]int, n),
	}
	for i := range cs.Scripts {
		if r.IntN(2) == 0 {
			cs.Scripts[i] = ReplicaScript{Kind: ChaosPartition, RefuseFrom: 0}
		} else {
			cs.Scripts[i] = ReplicaScript{
				Kind:       ChaosKill,
				Plan:       ResetAfterWrites(1 + r.IntN(6)),
				RefuseFrom: 1,
			}
		}
	}
	return cs
}
