package netsim

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// TestFaultPartialLeavesConnOpen pins the torn-write contract: the peer
// receives exactly Keep bytes, the writer sees the short count plus
// ErrInjectedPartial, and — unlike truncate — the connection survives
// and later writes go through.
func TestFaultPartialLeavesConnOpen(t *testing.T) {
	msg := []byte("0123456789")
	fc, peer := pipePair(t, PartialWrite(1, 4))
	got := readChunks(peer)

	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjectedPartial) {
		t.Fatalf("partial write err = %v, want ErrInjectedPartial", err)
	}
	if n != 4 {
		t.Fatalf("partial write n = %d, want 4", n)
	}
	// The stream is torn, not dead: a follow-up write still flows.
	if _, err := fc.Write([]byte("ab")); err != nil {
		t.Fatalf("write after partial: %v", err)
	}
	fc.Close()
	var received []byte
	for c := range got {
		received = append(received, c...)
	}
	if want := []byte("0123ab"); !bytes.Equal(received, want) {
		t.Fatalf("peer received %q, want %q", received, want)
	}
}

// TestFaultPartialKeepClamp bounds Keep at the buffer length.
func TestFaultPartialKeepClamp(t *testing.T) {
	fc, peer := pipePair(t, PartialWrite(1, 99))
	got := readChunks(peer)
	n, err := fc.Write([]byte("xy"))
	if !errors.Is(err, ErrInjectedPartial) || n != 2 {
		t.Fatalf("clamped partial = (%d, %v), want (2, ErrInjectedPartial)", n, err)
	}
	fc.Close()
	var received int
	for c := range got {
		received += len(c)
	}
	if received != 2 {
		t.Fatalf("peer received %d bytes, want 2", received)
	}
}

// TestFaultSlowDripDeliversEverything pins the slow-peer contract: all
// bytes arrive intact and in order, just slowly, and the write reports
// full success.
func TestFaultSlowDripDeliversEverything(t *testing.T) {
	msg := []byte("abcdefgh")
	fc, peer := pipePair(t, SlowDripWrite(1, 100*time.Microsecond))
	got := readChunks(peer)

	start := time.Now()
	n, err := fc.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("drip write = (%d, %v), want (%d, nil)", n, err, len(msg))
	}
	if d := time.Since(start); d < 7*100*time.Microsecond {
		t.Fatalf("drip write finished in %v, faster than the scripted pacing", d)
	}
	fc.Close()
	var received []byte
	for c := range got {
		received = append(received, c...)
	}
	if !bytes.Equal(received, msg) {
		t.Fatalf("peer received %q, want %q", received, msg)
	}
}

// TestFaultSlowDripShortRead pins the read side: the scripted read
// returns exactly one byte after the delay — a legal short read that
// must not confuse a length-prefixed codec.
func TestFaultSlowDripShortRead(t *testing.T) {
	fc, peer := pipePair(t, SlowDripRead(1, 0))
	go peer.Write([]byte("hello"))

	buf := make([]byte, 16)
	n, err := fc.Read(buf)
	if err != nil || n != 1 {
		t.Fatalf("drip read = (%d, %v), want (1, nil)", n, err)
	}
	if buf[0] != 'h' {
		t.Fatalf("drip read byte = %q, want 'h'", buf[0])
	}
	// The next (unscripted) read drains normally.
	n, err = fc.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("follow-up read = (%d, %v)", n, err)
	}
}

// newPipeBase returns a base dialer handing out fresh in-memory pipes
// with a discarding peer, for schedule-level dial accounting tests.
func newPipeBase(t *testing.T) func() (net.Conn, error) {
	t.Helper()
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		t.Cleanup(func() { a.Close(); b.Close() })
		go func() {
			buf := make([]byte, 256)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		return a, nil
	}
}

// TestChaosScheduleDeterministic: the same seed derives byte-identical
// scripts; different seeds (eventually) differ.
func TestChaosScheduleDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		a := NewChaosSchedule(seed, 3)
		b := NewChaosSchedule(seed, 3)
		if a.Healthy != b.Healthy {
			t.Fatalf("seed %d: healthy %d vs %d", seed, a.Healthy, b.Healthy)
		}
		for i := range a.Scripts {
			if a.Scripts[i].Kind != b.Scripts[i].Kind || a.Scripts[i].RefuseFrom != b.Scripts[i].RefuseFrom {
				t.Fatalf("seed %d replica %d: script mismatch %+v vs %+v", seed, i, a.Scripts[i], b.Scripts[i])
			}
		}
	}
}

// TestChaosScheduleKeepsOneHealthy: every seed leaves exactly the
// designated replica unscripted.
func TestChaosScheduleKeepsOneHealthy(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cs := NewChaosSchedule(seed, 3)
		if cs.Healthy < 0 || cs.Healthy >= 3 {
			t.Fatalf("seed %d: healthy index %d out of range", seed, cs.Healthy)
		}
		for i, s := range cs.Scripts {
			if i == cs.Healthy {
				if s.Kind != ChaosNone || s.Plan != nil || s.RefuseFrom != -1 {
					t.Fatalf("seed %d: healthy replica scripted: %+v", seed, s)
				}
			} else if s.Kind == ChaosNone {
				t.Fatalf("seed %d replica %d: faulty slot left unscripted", seed, i)
			}
		}
	}
}

// TestChaosDialerRefusesFromIndex: a partition refuses every dial; a
// kill accepts the first and refuses redials; dial counts are tracked.
func TestChaosDialerRefusesFromIndex(t *testing.T) {
	base := newPipeBase(t)
	cs := &ChaosSchedule{
		Scripts: []ReplicaScript{
			{Kind: ChaosPartition, RefuseFrom: 0},
			{Kind: ChaosKill, Plan: ResetAfterWrites(1), RefuseFrom: 1},
			{Kind: ChaosNone, RefuseFrom: -1},
		},
		Healthy: 2,
		dials:   make([]int, 3),
	}

	if _, err := cs.Dialer(0, base)(); !errors.Is(err, ErrChaosPartition) {
		t.Fatalf("partitioned replica dial err = %v, want ErrChaosPartition", err)
	}

	kill := cs.Dialer(1, base)
	conn, err := kill()
	if err != nil {
		t.Fatalf("killed replica first dial: %v", err)
	}
	if _, ok := conn.(*FaultyConn); !ok {
		t.Fatalf("first connection of scripted replica is %T, want *FaultyConn", conn)
	}
	if _, err := kill(); !errors.Is(err, ErrChaosPartition) {
		t.Fatalf("killed replica redial err = %v, want ErrChaosPartition", err)
	}

	healthy := cs.Dialer(2, base)
	for i := 0; i < 3; i++ {
		if _, err := healthy(); err != nil {
			t.Fatalf("healthy replica dial %d: %v", i, err)
		}
	}

	for i, want := range []int{1, 2, 3} {
		if got := cs.Dials(i); got != want {
			t.Fatalf("Dials(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestChaosFlapRecovers: a flapping replica's second connection is
// clean — no fault plan attached.
func TestChaosFlapRecovers(t *testing.T) {
	base := newPipeBase(t)
	cs := &ChaosSchedule{
		Scripts: []ReplicaScript{{Kind: ChaosFlap, Plan: ResetAfterWrites(1), RefuseFrom: -1}},
		Healthy: -1,
		dials:   make([]int, 1),
	}
	dial := cs.Dialer(0, base)
	first, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := first.(*FaultyConn); !ok {
		t.Fatalf("flap first connection is %T, want *FaultyConn", first)
	}
	second, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := second.(*FaultyConn); ok {
		t.Fatal("flap recovery connection still fault-wrapped")
	}
}

// TestChaosAllDeadScheduleKillsEveryone: no replica survives an
// AllDeadSchedule — every script either refuses dials outright or kills
// the first connection and refuses redials.
func TestChaosAllDeadScheduleKillsEveryone(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		cs := AllDeadSchedule(seed, 3)
		if cs.Healthy != -1 {
			t.Fatalf("seed %d: all-dead schedule has healthy index %d", seed, cs.Healthy)
		}
		for i, s := range cs.Scripts {
			switch s.Kind {
			case ChaosPartition:
				if s.RefuseFrom != 0 {
					t.Fatalf("seed %d replica %d: partition refuses from %d", seed, i, s.RefuseFrom)
				}
			case ChaosKill:
				if s.Plan == nil || s.RefuseFrom != 1 {
					t.Fatalf("seed %d replica %d: kill script %+v lets redials through", seed, i, s)
				}
			default:
				t.Fatalf("seed %d replica %d: survivable kind %v", seed, i, s.Kind)
			}
		}
	}
}
