package netsim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is the error surfaced by a scripted connection reset
// or truncation. Transports treat it like any peer reset.
var ErrInjectedReset = errors.New("netsim: injected connection reset")

// ErrInjectedPartial is the error surfaced by a scripted partial write:
// some bytes reached the peer, the rest never will, and the connection
// is still open — the stream is torn mid-frame without a socket error.
var ErrInjectedPartial = errors.New("netsim: injected partial write")

// FaultOp selects which transport operation a fault rule triggers on.
type FaultOp int

// The two operations a FaultyConn can intercept.
const (
	// OnWrite fires on the Nth Write call of the connection.
	OnWrite FaultOp = iota
	// OnRead fires on the Nth Read call of the connection.
	OnRead
)

func (o FaultOp) String() string {
	if o == OnRead {
		return "read"
	}
	return "write"
}

// FaultKind is the scripted failure mode.
type FaultKind int

// The failure modes of the paper's unreliable-Internet setting, made
// deterministic so every client failure path is unit-testable.
const (
	// FaultDrop silently swallows a write: the caller sees success but no
	// bytes reach the peer, which then hangs awaiting the frame — the
	// classic lost-datagram path that only a deadline can detect.
	// On a read, Drop degenerates to Reset.
	FaultDrop FaultKind = iota
	// FaultReset closes the connection before performing the operation,
	// surfacing ErrInjectedReset — a mid-call connection kill.
	FaultReset
	// FaultTruncate performs only Keep bytes of a write, then closes the
	// connection — a reset in the middle of a frame.
	FaultTruncate
	// FaultDelay sleeps Delay before performing the operation — a
	// latency spike (expired deadlines without connection loss).
	FaultDelay
	// FaultPartial performs only Keep bytes of a write and reports
	// ErrInjectedPartial with the short count, but leaves the connection
	// OPEN — the torn-write case a codec must treat as fatal for the
	// stream without the comfort of a closed socket. On a read it
	// degenerates to a legal 1-byte short read (streams may always
	// return fewer bytes than asked).
	FaultPartial
	// FaultSlowDrip performs the operation one byte at a time, sleeping
	// Delay between bytes — a pathologically slow peer that stays
	// protocol-correct. Writes drip the whole buffer; reads return one
	// byte per call after the delay.
	FaultSlowDrip
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultDelay:
		return "delay"
	case FaultPartial:
		return "partial"
	case FaultSlowDrip:
		return "slow-drip"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultRule scripts one failure at a deterministic operation count.
type FaultRule struct {
	// Op is the operation class the rule watches.
	Op FaultOp
	// Nth is the 1-based operation index (within Op's counter) at which
	// the fault fires. Each rule fires at most once.
	Nth int
	// Kind is the failure mode.
	Kind FaultKind
	// Delay is the injected latency for FaultDelay.
	Delay time.Duration
	// Keep is the number of bytes actually written for FaultTruncate.
	Keep int
}

func (r FaultRule) String() string {
	return fmt.Sprintf("%s@%s#%d", r.Kind, r.Op, r.Nth)
}

// FaultPlan is a deterministic failure script for one connection: a set
// of rules keyed to operation counts, so tests exercise drops, resets,
// truncations, and delay spikes without a real network.
type FaultPlan struct {
	Rules []FaultRule
}

// DropWrite returns a plan swallowing the nth write.
func DropWrite(n int) *FaultPlan {
	return &FaultPlan{Rules: []FaultRule{{Op: OnWrite, Nth: n, Kind: FaultDrop}}}
}

// ResetAfterWrites returns a plan killing the connection at the nth write.
func ResetAfterWrites(n int) *FaultPlan {
	return &FaultPlan{Rules: []FaultRule{{Op: OnWrite, Nth: n, Kind: FaultReset}}}
}

// ResetAfterReads returns a plan killing the connection at the nth read.
func ResetAfterReads(n int) *FaultPlan {
	return &FaultPlan{Rules: []FaultRule{{Op: OnRead, Nth: n, Kind: FaultReset}}}
}

// TruncateWrite returns a plan cutting the nth write after keep bytes and
// resetting — a reset mid-frame.
func TruncateWrite(n, keep int) *FaultPlan {
	return &FaultPlan{Rules: []FaultRule{{Op: OnWrite, Nth: n, Kind: FaultTruncate, Keep: keep}}}
}

// DelayRead returns a plan stalling the nth read by d — a delay spike.
func DelayRead(n int, d time.Duration) *FaultPlan {
	return &FaultPlan{Rules: []FaultRule{{Op: OnRead, Nth: n, Kind: FaultDelay, Delay: d}}}
}

// PartialWrite returns a plan tearing the nth write after keep bytes
// while leaving the connection open.
func PartialWrite(n, keep int) *FaultPlan {
	return &FaultPlan{Rules: []FaultRule{{Op: OnWrite, Nth: n, Kind: FaultPartial, Keep: keep}}}
}

// SlowDripWrite returns a plan dripping the nth write byte-at-a-time
// with perByte between bytes.
func SlowDripWrite(n int, perByte time.Duration) *FaultPlan {
	return &FaultPlan{Rules: []FaultRule{{Op: OnWrite, Nth: n, Kind: FaultSlowDrip, Delay: perByte}}}
}

// SlowDripRead returns a plan turning the nth read into a delayed
// single-byte read.
func SlowDripRead(n int, perByte time.Duration) *FaultPlan {
	return &FaultPlan{Rules: []FaultRule{{Op: OnRead, Nth: n, Kind: FaultSlowDrip, Delay: perByte}}}
}

// Wrap returns conn with the plan applied. A nil plan returns a
// FaultyConn that never fires (a clean passthrough).
func (p *FaultPlan) Wrap(conn net.Conn) *FaultyConn {
	fc := &FaultyConn{Conn: conn}
	if p != nil {
		fc.rules = append(fc.rules, p.Rules...)
	}
	return fc
}

// FaultyConn wraps a net.Conn and applies a FaultPlan at scripted
// operation counts. It is safe for the usual one-reader/one-writer
// concurrent connection use.
type FaultyConn struct {
	net.Conn

	mu     sync.Mutex
	rules  []FaultRule
	reads  int
	writes int
	fired  []FaultRule
}

// Fired returns the rules that have triggered so far, in firing order.
func (c *FaultyConn) Fired() []FaultRule {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FaultRule(nil), c.fired...)
}

// match consumes and returns the rule firing at this operation, if any.
func (c *FaultyConn) match(op FaultOp, nth int) (FaultRule, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, r := range c.rules {
		if r.Op == op && r.Nth == nth {
			c.rules = append(c.rules[:i], c.rules[i+1:]...)
			c.fired = append(c.fired, r)
			return r, true
		}
	}
	return FaultRule{}, false
}

func (c *FaultyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	n := c.writes
	c.mu.Unlock()
	r, ok := c.match(OnWrite, n)
	if !ok {
		return c.Conn.Write(p)
	}
	switch r.Kind {
	case FaultDrop:
		// Pretend success; the peer never sees the bytes.
		return len(p), nil
	case FaultReset:
		c.Conn.Close()
		return 0, fmt.Errorf("write %v: %w", r, ErrInjectedReset)
	case FaultTruncate:
		keep := r.Keep
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			c.Conn.Write(p[:keep])
		}
		c.Conn.Close()
		return keep, fmt.Errorf("write %v: %w", r, ErrInjectedReset)
	case FaultDelay:
		time.Sleep(r.Delay)
		return c.Conn.Write(p)
	case FaultPartial:
		keep := r.Keep
		if keep > len(p) {
			keep = len(p)
		}
		n := 0
		if keep > 0 {
			n, _ = c.Conn.Write(p[:keep])
		}
		return n, fmt.Errorf("write %v: %w", r, ErrInjectedPartial)
	case FaultSlowDrip:
		for i := range p {
			if _, err := c.Conn.Write(p[i : i+1]); err != nil {
				return i, err
			}
			if r.Delay > 0 {
				time.Sleep(r.Delay)
			}
		}
		return len(p), nil
	}
	return c.Conn.Write(p)
}

func (c *FaultyConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	c.reads++
	n := c.reads
	c.mu.Unlock()
	r, ok := c.match(OnRead, n)
	if !ok {
		return c.Conn.Read(p)
	}
	switch r.Kind {
	case FaultDelay:
		time.Sleep(r.Delay)
		return c.Conn.Read(p)
	case FaultPartial, FaultSlowDrip:
		// A legal short read: one byte, after the drip delay.
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		if len(p) == 0 {
			return c.Conn.Read(p)
		}
		return c.Conn.Read(p[:1])
	default: // Drop, Reset, Truncate all collapse to a reset on reads.
		c.Conn.Close()
		return 0, fmt.Errorf("read %v: %w", r, ErrInjectedReset)
	}
}

// FaultyDialer scripts a sequence of fault plans across successive
// connections: the i-th successful Dial is wrapped with Plans[i] (nil —
// or running past the end of Plans — means a clean connection). It is
// the reconnect-test harness: "the first connection dies at write 7,
// the second is healthy".
type FaultyDialer struct {
	// Base opens the underlying transport.
	Base func() (net.Conn, error)
	// Plans maps connection index to failure script.
	Plans []*FaultPlan

	mu    sync.Mutex
	dials int
	conns []*FaultyConn
}

// Dial opens the next connection with its scripted plan applied.
func (d *FaultyDialer) Dial() (net.Conn, error) {
	conn, err := d.Base()
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	var plan *FaultPlan
	if d.dials < len(d.Plans) {
		plan = d.Plans[d.dials]
	}
	d.dials++
	fc := plan.Wrap(conn)
	d.conns = append(d.conns, fc)
	d.mu.Unlock()
	return fc, nil
}

// Dials returns how many connections have been opened.
func (d *FaultyDialer) Dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

// Conn returns the i-th opened connection (nil if not yet opened), so
// tests can inspect which rules fired.
func (d *FaultyDialer) Conn(i int) *FaultyConn {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.conns) {
		return nil
	}
	return d.conns[i]
}
