package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a fault-wrapped client side and the raw peer.
func pipePair(t *testing.T, plan *FaultPlan) (*FaultyConn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return plan.Wrap(a), b
}

// readAll drains the peer into a channel of received chunks.
func readChunks(peer net.Conn) chan []byte {
	out := make(chan []byte, 16)
	go func() {
		defer close(out)
		for {
			buf := make([]byte, 256)
			n, err := peer.Read(buf)
			if n > 0 {
				out <- buf[:n]
			}
			if err != nil {
				return
			}
		}
	}()
	return out
}

func TestFaultPlansTable(t *testing.T) {
	msg := []byte("0123456789")
	tests := []struct {
		name  string
		plan  *FaultPlan
		check func(t *testing.T, fc *FaultyConn, peer net.Conn)
	}{
		{
			name: "drop-after-N",
			plan: DropWrite(2),
			check: func(t *testing.T, fc *FaultyConn, peer net.Conn) {
				got := readChunks(peer)
				for i := 0; i < 3; i++ {
					if _, err := fc.Write(msg); err != nil {
						t.Fatalf("write %d: %v", i+1, err)
					}
				}
				fc.Close()
				var received int
				for c := range got {
					received += len(c)
				}
				// Write 2 was swallowed: the peer sees exactly 2 messages.
				if received != 2*len(msg) {
					t.Errorf("peer received %d bytes, want %d (one dropped write)", received, 2*len(msg))
				}
				if len(fc.Fired()) != 1 {
					t.Errorf("fired = %v, want 1 rule", fc.Fired())
				}
			},
		},
		{
			name: "reset-at-write",
			plan: ResetAfterWrites(2),
			check: func(t *testing.T, fc *FaultyConn, peer net.Conn) {
				got := readChunks(peer)
				if _, err := fc.Write(msg); err != nil {
					t.Fatalf("write 1: %v", err)
				}
				_, err := fc.Write(msg)
				if !errors.Is(err, ErrInjectedReset) {
					t.Fatalf("write 2 err = %v, want injected reset", err)
				}
				// Connection is dead both ways.
				if _, err := fc.Write(msg); err == nil {
					t.Error("write after reset succeeded")
				}
				var received int
				for c := range got {
					received += len(c)
				}
				if received != len(msg) {
					t.Errorf("peer received %d bytes, want %d", received, len(msg))
				}
			},
		},
		{
			name: "reset-mid-frame",
			plan: TruncateWrite(1, 4),
			check: func(t *testing.T, fc *FaultyConn, peer net.Conn) {
				got := readChunks(peer)
				n, err := fc.Write(msg)
				if !errors.Is(err, ErrInjectedReset) {
					t.Fatalf("err = %v, want injected reset", err)
				}
				if n != 4 {
					t.Errorf("truncated write reported %d bytes, want 4", n)
				}
				var received []byte
				for c := range got {
					received = append(received, c...)
				}
				if string(received) != "0123" {
					t.Errorf("peer received %q, want first 4 bytes only", received)
				}
			},
		},
		{
			name: "delay-spike",
			plan: DelayRead(1, 30*time.Millisecond),
			check: func(t *testing.T, fc *FaultyConn, peer net.Conn) {
				go peer.Write(msg)
				buf := make([]byte, len(msg))
				start := time.Now()
				if _, err := io.ReadFull(fc, buf); err != nil {
					t.Fatal(err)
				}
				if d := time.Since(start); d < 30*time.Millisecond {
					t.Errorf("read returned after %v, want ≥ 30ms spike", d)
				}
			},
		},
		{
			name: "reset-at-read",
			plan: ResetAfterReads(1),
			check: func(t *testing.T, fc *FaultyConn, peer net.Conn) {
				go peer.Write(msg)
				buf := make([]byte, len(msg))
				_, err := fc.Read(buf)
				if !errors.Is(err, ErrInjectedReset) {
					t.Errorf("read err = %v, want injected reset", err)
				}
			},
		},
		{
			name: "nil-plan-passthrough",
			plan: nil,
			check: func(t *testing.T, fc *FaultyConn, peer net.Conn) {
				got := readChunks(peer)
				for i := 0; i < 4; i++ {
					if _, err := fc.Write(msg); err != nil {
						t.Fatal(err)
					}
				}
				fc.Close()
				var received int
				for c := range got {
					received += len(c)
				}
				if received != 4*len(msg) {
					t.Errorf("passthrough corrupted traffic: %d bytes", received)
				}
				if len(fc.Fired()) != 0 {
					t.Errorf("nil plan fired rules: %v", fc.Fired())
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fc, peer := pipePair(t, tc.plan)
			tc.check(t, fc, peer)
		})
	}
}

func TestFaultRuleFiresOnce(t *testing.T) {
	fc, peer := pipePair(t, DropWrite(1))
	got := readChunks(peer)
	fc.Write([]byte("aa")) // dropped
	fc.Write([]byte("bb")) // passes: the rule is consumed
	fc.Close()
	var received []byte
	for c := range got {
		received = append(received, c...)
	}
	if string(received) != "bb" {
		t.Errorf("received %q, want only the second write", received)
	}
}

func TestFaultyDialerSequencesPlans(t *testing.T) {
	d := &FaultyDialer{
		Base: func() (net.Conn, error) {
			a, b := net.Pipe()
			go func() { io.Copy(io.Discard, b) }()
			return a, nil
		},
		Plans: []*FaultPlan{ResetAfterWrites(1), nil},
	}
	c1, err := d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("conn 1 write err = %v, want injected reset", err)
	}
	c2, err := d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write([]byte("x")); err != nil {
		t.Errorf("conn 2 (clean plan) write err = %v", err)
	}
	c3, err := d.Dial() // past the end of Plans: clean
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Write([]byte("x")); err != nil {
		t.Errorf("conn 3 (no plan) write err = %v", err)
	}
	if d.Dials() != 3 {
		t.Errorf("dials = %d", d.Dials())
	}
	if fired := d.Conn(0).Fired(); len(fired) != 1 {
		t.Errorf("conn 0 fired = %v", fired)
	}
	if d.Conn(1) == nil || len(d.Conn(1).Fired()) != 0 {
		t.Error("conn 1 should exist with no fired rules")
	}
}
