// Package netsim emulates the three network environments of the paper's
// performance study — the same host (Local), the campus LAN, and the
// Bologna–Padova WAN — by computing deterministic, profile-dependent
// transfer delays that the RPC layer injects around each call, and by
// metering the time a client spends blocked on the (emulated) network.
// The CPU-time/real-time split of Table 2 is reconstructed from these
// meters: real time is wall-clock, CPU time is wall-clock minus blocked
// time.
//
// The absolute magnitudes are scaled down from 1999 reality so the full
// Table 2 grid reruns in seconds; the RATIOS between profiles follow the
// paper's measured environments (WAN round trips two orders of magnitude
// above local IPC, LAN in between).
package netsim

import (
	"math/rand"
	mrand "math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

// Profile characterizes one network environment.
type Profile struct {
	Name string
	// OneWay is the fixed latency added to each direction of a call.
	OneWay time.Duration
	// PerKB is the serialization delay per kilobyte transferred.
	PerKB time.Duration
	// Jitter is the maximum extra random delay per direction.
	Jitter time.Duration
}

// The three environments of Table 2, plus the no-RMI baseline.
var (
	// InProcess models a direct call with no RMI at all (the AL case).
	InProcess = Profile{Name: "none"}
	// Local runs client and server on the same host: RMI marshalling
	// without network transit.
	Local = Profile{Name: "local", OneWay: 50 * time.Microsecond, PerKB: 5 * time.Microsecond}
	// LAN is a lightly loaded campus network.
	LAN = Profile{Name: "LAN", OneWay: 500 * time.Microsecond, PerKB: 40 * time.Microsecond, Jitter: 200 * time.Microsecond}
	// WAN is a long-distance Internet path.
	WAN = Profile{Name: "WAN", OneWay: 12 * time.Millisecond, PerKB: 400 * time.Microsecond, Jitter: 4 * time.Millisecond}
)

// ProfileByName returns the profile with the given name, defaulting to
// InProcess for unknown names.
func ProfileByName(name string) Profile {
	switch name {
	case Local.Name:
		return Local
	case LAN.Name:
		return LAN
	case WAN.Name:
		return WAN
	}
	return InProcess
}

// Delay returns the emulated one-way transfer time for a message of the
// given size. r supplies jitter; a nil r means no jitter.
func (p Profile) Delay(bytes int, r *rand.Rand) time.Duration {
	d := p.OneWay + time.Duration(int64(p.PerKB)*int64(bytes)/1024)
	if p.Jitter > 0 && r != nil {
		d += time.Duration(r.Int63n(int64(p.Jitter)))
	}
	return d
}

// RoundTrip returns the emulated request+response delay.
func (p Profile) RoundTrip(reqBytes, respBytes int, r *rand.Rand) time.Duration {
	return p.Delay(reqBytes, r) + p.Delay(respBytes, r)
}

// EmulatedRoundTrip is the injected client-side delay for one completed
// call of the given byte volumes, with jitter drawn from the caller's
// seeded math/rand/v2 source (nil disables jitter). This is the quantity
// the RPC layer sleeps per call; on a pipelined transport each in-flight
// call sleeps its own EmulatedRoundTrip concurrently, so emulated
// latency OVERLAPS across in-flight calls — the wall-clock cost of N
// pipelined calls approaches one round trip plus N serialization times,
// not N round trips.
func (p Profile) EmulatedRoundTrip(sent, recvd int, jr *mrand.Rand) time.Duration {
	if p.OneWay == 0 && p.PerKB == 0 && p.Jitter == 0 {
		return 0
	}
	d := p.Delay(sent, nil) + p.Delay(recvd, nil)
	if p.Jitter > 0 && jr != nil {
		d += time.Duration(jr.Int64N(int64(p.Jitter)))
		d += time.Duration(jr.Int64N(int64(p.Jitter)))
	}
	return d
}

// sleepSlack is how early Wait hands off from time.Sleep to its
// yield-spin tail. The Go runtime's timer granularity rounds short
// sleeps up to roughly a millisecond on common kernels, so any sleep at
// or below the slack would overshoot by an order of magnitude; the
// slack must cover that rounding.
const sleepSlack = 1200 * time.Microsecond

// Wait blocks for the given emulated delay with sub-millisecond
// accuracy. time.Sleep alone cannot emulate the Local profile: its
// ~100µs round trips get rounded up to the runtime's timer granularity
// (~1.1ms observed), inflating an emulated-local scenario by 10× per
// call. Wait sleeps for all but the last sleepSlack of the delay —
// keeping long LAN/WAN delays off-CPU — then yields the processor in a
// loop until the deadline, bounding the busy tail to ~sleepSlack per
// call. Deadline-based timing keeps the total accurate even when the
// coarse sleep overshoots.
func Wait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > sleepSlack {
		time.Sleep(d - sleepSlack)
	}
	for time.Until(deadline) > 0 {
		runtime.Gosched()
	}
}

// Meter accumulates a client's network accounting: how long it sat
// blocked on calls, how many calls it made, and how many bytes moved.
// Meters are safe for concurrent use (nonblocking estimation flushes from
// worker goroutines).
type Meter struct {
	blocked atomic.Int64 // nanoseconds
	calls   atomic.Int64
	bytes   atomic.Int64

	// Estimation-cache accounting: calls served locally from the
	// content-addressed cache instead of crossing the wire.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheSaved  atomic.Int64 // bytes that did not cross the wire

	// Replication accounting: failovers to another replica, hedged
	// estimation batches issued, and hedges that answered first.
	failovers atomic.Int64
	hedged    atomic.Int64
	hedgeWins atomic.Int64
}

// AddBlocked records time spent blocked on the network.
func (m *Meter) AddBlocked(d time.Duration) { m.blocked.Add(int64(d)) }

// AddCall records one completed call moving n bytes.
func (m *Meter) AddCall(n int) { m.calls.Add(1); m.bytes.Add(int64(n)) }

// AddCacheHit records one remote call avoided by the estimation cache,
// with the approximate request bytes that stayed local.
func (m *Meter) AddCacheHit(savedBytes int) {
	m.cacheHits.Add(1)
	m.cacheSaved.Add(int64(savedBytes))
}

// AddCacheMiss records one estimation-cache lookup that went remote.
func (m *Meter) AddCacheMiss() { m.cacheMisses.Add(1) }

// AddFailover records one replica failover (the session adopted a new
// provider endpoint after the current one died).
func (m *Meter) AddFailover() { m.failovers.Add(1) }

// AddHedgedBatch records one estimation batch re-issued to a second
// replica after the slow threshold; win reports whether the hedge
// answered before the primary.
func (m *Meter) AddHedgedBatch(win bool) {
	m.hedged.Add(1)
	if win {
		m.hedgeWins.Add(1)
	}
}

// Blocked returns the total time spent blocked.
func (m *Meter) Blocked() time.Duration { return time.Duration(m.blocked.Load()) }

// Calls returns the number of completed calls.
func (m *Meter) Calls() int64 { return m.calls.Load() }

// Bytes returns the total bytes transferred.
func (m *Meter) Bytes() int64 { return m.bytes.Load() }

// CacheHits returns the number of batches served from the cache.
func (m *Meter) CacheHits() int64 { return m.cacheHits.Load() }

// CacheMisses returns the number of batch lookups that went remote.
func (m *Meter) CacheMisses() int64 { return m.cacheMisses.Load() }

// CacheBytesSaved returns the approximate request bytes kept off the
// wire by cache hits.
func (m *Meter) CacheBytesSaved() int64 { return m.cacheSaved.Load() }

// Failovers returns the number of replica failovers.
func (m *Meter) Failovers() int64 { return m.failovers.Load() }

// HedgedBatches returns the number of hedged estimation batches.
func (m *Meter) HedgedBatches() int64 { return m.hedged.Load() }

// HedgeWins returns the number of hedges that answered first.
func (m *Meter) HedgeWins() int64 { return m.hedgeWins.Load() }

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.blocked.Store(0)
	m.calls.Store(0)
	m.bytes.Store(0)
	m.cacheHits.Store(0)
	m.cacheMisses.Store(0)
	m.cacheSaved.Store(0)
	m.failovers.Store(0)
	m.hedged.Store(0)
	m.hedgeWins.Store(0)
}

// Split decomposes a measured wall-clock duration into the Table 2
// columns: real time (wall) and CPU time (wall minus blocked, floored at
// zero — overlapping nonblocking calls can accumulate more blocked time
// than the critical path).
func (m *Meter) Split(wall time.Duration) (cpu, real time.Duration) {
	cpu = wall - m.Blocked()
	if cpu < 0 {
		cpu = 0
	}
	return cpu, wall
}
