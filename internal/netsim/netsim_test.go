package netsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestProfileOrdering(t *testing.T) {
	// The environments must be strictly ordered in cost for any message.
	for _, bytes := range []int{16, 1024, 65536} {
		dl := Local.Delay(bytes, nil)
		dn := LAN.Delay(bytes, nil)
		dw := WAN.Delay(bytes, nil)
		if !(dl < dn && dn < dw) {
			t.Errorf("%d bytes: local=%v lan=%v wan=%v not ordered", bytes, dl, dn, dw)
		}
	}
	if InProcess.Delay(1024, nil) != 0 {
		t.Error("in-process delay must be zero")
	}
}

func TestDelayGrowsWithSize(t *testing.T) {
	small := WAN.Delay(100, nil)
	big := WAN.Delay(100_000, nil)
	if big <= small {
		t.Errorf("delay not size-dependent: %v vs %v", small, big)
	}
}

func TestDelayJitterBounded(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	base := WAN.Delay(1000, nil)
	for i := 0; i < 100; i++ {
		d := WAN.Delay(1000, r)
		if d < base || d > base+WAN.Jitter {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, base, base+WAN.Jitter)
		}
	}
}

func TestRoundTripIsTwoDelays(t *testing.T) {
	rt := LAN.RoundTrip(1000, 2000, nil)
	if rt != LAN.Delay(1000, nil)+LAN.Delay(2000, nil) {
		t.Error("round trip not additive")
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range []Profile{Local, LAN, WAN} {
		if got := ProfileByName(p.Name); got.Name != p.Name {
			t.Errorf("ProfileByName(%q) = %q", p.Name, got.Name)
		}
	}
	if ProfileByName("mars").Name != InProcess.Name {
		t.Error("unknown profile not defaulted")
	}
}

func TestMeterAccounting(t *testing.T) {
	var m Meter
	m.AddBlocked(100 * time.Millisecond)
	m.AddBlocked(50 * time.Millisecond)
	m.AddCall(1000)
	m.AddCall(500)
	if m.Blocked() != 150*time.Millisecond {
		t.Errorf("blocked = %v", m.Blocked())
	}
	if m.Calls() != 2 || m.Bytes() != 1500 {
		t.Errorf("calls=%d bytes=%d", m.Calls(), m.Bytes())
	}
	cpu, real := m.Split(200 * time.Millisecond)
	if real != 200*time.Millisecond || cpu != 50*time.Millisecond {
		t.Errorf("split = %v, %v", cpu, real)
	}
	// Blocked exceeding wall floors CPU at zero.
	cpu, _ = m.Split(100 * time.Millisecond)
	if cpu != 0 {
		t.Errorf("over-blocked cpu = %v, want 0", cpu)
	}
	m.Reset()
	if m.Blocked() != 0 || m.Calls() != 0 || m.Bytes() != 0 {
		t.Error("reset incomplete")
	}
}

func TestProfileDelayTable(t *testing.T) {
	tests := []struct {
		name    string
		profile Profile
		bytes   int
		want    time.Duration
	}{
		{"in-process-zero", InProcess, 4096, 0},
		{"local-latency-only", Local, 0, 50 * time.Microsecond},
		{"local-1kb", Local, 1024, 55 * time.Microsecond},
		{"lan-latency-only", LAN, 0, 500 * time.Microsecond},
		{"lan-2kb", LAN, 2048, 580 * time.Microsecond},
		{"wan-latency-only", WAN, 0, 12 * time.Millisecond},
		{"wan-half-kb-floor", WAN, 512, 12*time.Millisecond + 200*time.Microsecond},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.profile.Delay(tc.bytes, nil); got != tc.want {
				t.Errorf("%s.Delay(%d) = %v, want %v", tc.profile.Name, tc.bytes, got, tc.want)
			}
		})
	}
}

func TestMeterSplitTable(t *testing.T) {
	tests := []struct {
		name    string
		blocked time.Duration
		wall    time.Duration
		cpu     time.Duration
	}{
		{"no-blocking", 0, 100 * time.Millisecond, 100 * time.Millisecond},
		{"half-blocked", 50 * time.Millisecond, 100 * time.Millisecond, 50 * time.Millisecond},
		{"fully-blocked", 100 * time.Millisecond, 100 * time.Millisecond, 0},
		{"over-blocked-floors", 250 * time.Millisecond, 100 * time.Millisecond, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var m Meter
			m.AddBlocked(tc.blocked)
			cpu, real := m.Split(tc.wall)
			if real != tc.wall {
				t.Errorf("real = %v, want wall %v", real, tc.wall)
			}
			if cpu != tc.cpu {
				t.Errorf("cpu = %v, want %v", cpu, tc.cpu)
			}
		})
	}
}

func TestMeterConcurrentSafe(t *testing.T) {
	var m Meter
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				m.AddBlocked(time.Microsecond)
				m.AddCall(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if m.Calls() != 8000 || m.Blocked() != 8000*time.Microsecond {
		t.Errorf("concurrent accounting lost updates: %d calls, %v", m.Calls(), m.Blocked())
	}
}

func TestWaitAccuracy(t *testing.T) {
	// Wait exists because time.Sleep rounds sub-millisecond delays up to
	// the runtime's timer granularity (~1.1ms observed), an order of
	// magnitude too coarse for the Local profile's ~110µs round trips.
	// Wait must never return early, and for delays well under the
	// granularity it must stay close to the target: the upper bound is
	// loose (scheduler preemption on a loaded CI box) but far below the
	// ~1.1ms a bare time.Sleep would cost.
	for _, d := range []time.Duration{50 * time.Microsecond, 300 * time.Microsecond, 2 * time.Millisecond} {
		// Take the best of a few runs so a single preemption cannot
		// flake the upper bound; the lower bound must hold on EVERY run.
		best := time.Duration(1 << 62)
		for i := 0; i < 5; i++ {
			start := time.Now()
			Wait(d)
			got := time.Since(start)
			if got < d {
				t.Fatalf("Wait(%v) returned after %v — early return", d, got)
			}
			if got < best {
				best = got
			}
		}
		if limit := d + 5*time.Millisecond; best > limit {
			t.Errorf("Wait(%v) best of 5 took %v, want < %v", d, best, limit)
		}
	}

	// Zero and negative delays return immediately.
	start := time.Now()
	Wait(0)
	Wait(-time.Millisecond)
	if got := time.Since(start); got > time.Millisecond {
		t.Errorf("Wait(<=0) took %v, want immediate return", got)
	}
}
