// Package ppp is gocad's stand-in for PPP, the advanced gate-level power
// simulator the paper invokes on the IP provider's server (Bogliolo et
// al., "Power and Current Estimation of Cell-Based CMOS Circuits", IEEE
// TVLSI 1997). It performs cell-based power, area and delay estimation
// over internal/gate netlists: per-cell energy characterization times
// observed toggle counts, with fanout-proportional load. Running it
// requires the gate-level description of a component, which is exactly
// why — in an IP-protected flow — it can only execute on the provider's
// JavaCAD server, never on the user's client.
package ppp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gate"
	"repro/internal/signal"
)

// Library holds the per-cell characterization data: switching energy,
// area, and intrinsic delay per gate kind, plus the incremental load
// energy per fanout.
type Library struct {
	Name string
	// EnergyPerToggle is the internal switching energy per output toggle,
	// in femtojoules, indexed by gate.Kind.
	EnergyPerToggle map[gate.Kind]float64
	// LoadEnergyPerFanout is the additional energy per toggle per driven
	// gate input, in femtojoules.
	LoadEnergyPerFanout float64
	// Area is the cell area in equivalent-gate units, by kind.
	Area map[gate.Kind]float64
	// Delay is the intrinsic cell delay in picoseconds, by kind.
	Delay map[gate.Kind]float64
	// LoadDelayPerFanout is the additional delay per driven input, in ps.
	LoadDelayPerFanout float64
	// CycleTime converts per-pattern energy to power, in nanoseconds.
	CycleTime float64
}

// DefaultLibrary returns a plausible 0.35µm-era standard-cell
// characterization — absolute numbers are synthetic, but the relative
// weights (XOR > NAND, inverter cheapest) follow standard cell libraries.
func DefaultLibrary() *Library {
	return &Library{
		Name: "generic-350nm",
		EnergyPerToggle: map[gate.Kind]float64{
			gate.Buf: 4, gate.Not: 3,
			gate.And: 8, gate.Nand: 6,
			gate.Or: 8, gate.Nor: 6,
			gate.Xor: 14, gate.Xnor: 14,
		},
		LoadEnergyPerFanout: 2,
		Area: map[gate.Kind]float64{
			gate.Buf: 0.5, gate.Not: 0.5,
			gate.And: 1.5, gate.Nand: 1,
			gate.Or: 1.5, gate.Nor: 1,
			gate.Xor: 3, gate.Xnor: 3,
		},
		Delay: map[gate.Kind]float64{
			gate.Buf: 50, gate.Not: 40,
			gate.And: 120, gate.Nand: 90,
			gate.Or: 130, gate.Nor: 95,
			gate.Xor: 180, gate.Xnor: 185,
		},
		LoadDelayPerFanout: 15,
		CycleTime:          10,
	}
}

// Report is the outcome of a power simulation run.
type Report struct {
	Patterns     int
	AvgPower     float64   // average power per pattern, µW
	PeakPower    float64   // maximum per-pattern power, µW
	PerPattern   []float64 // per-pattern power series, µW
	TotalToggles uint64
	TotalEnergy  float64 // fJ
}

// Simulator runs cell-based power estimation over one netlist. It is not
// safe for concurrent use; create one per goroutine.
type Simulator struct {
	nl  *gate.Netlist
	ev  *gate.Evaluator
	lib *Library

	// perNetEnergy caches energy-per-toggle for each net's driving cell,
	// including fanout load.
	perNetEnergy []float64
	prev         []signal.Bit
	havePrev     bool
	patterns     int
	totalEnergy  float64
	peak         float64
	series       []float64
	toggles      uint64
}

// NewSimulator builds a power simulator over the netlist with the given
// library (nil selects DefaultLibrary).
func NewSimulator(nl *gate.Netlist, lib *Library) (*Simulator, error) {
	if lib == nil {
		lib = DefaultLibrary()
	}
	ev, err := nl.NewEvaluator()
	if err != nil {
		return nil, fmt.Errorf("ppp: %w", err)
	}
	s := &Simulator{nl: nl, ev: ev, lib: lib}
	s.perNetEnergy = make([]float64, nl.NumNets())
	for _, g := range nl.Gates() {
		e, ok := lib.EnergyPerToggle[g.Kind]
		if !ok {
			return nil, fmt.Errorf("ppp: library %s has no energy for %v", lib.Name, g.Kind)
		}
		s.perNetEnergy[g.Out] = e + lib.LoadEnergyPerFanout*float64(nl.Fanout(g.Out))
	}
	// Primary inputs dissipate load energy in the gates they feed.
	for _, id := range nl.Inputs() {
		s.perNetEnergy[id] = lib.LoadEnergyPerFanout * float64(nl.Fanout(id))
	}
	s.prev = make([]signal.Bit, nl.NumNets())
	return s, nil
}

// Step applies one input pattern and returns the energy (fJ) dissipated
// by the transition from the previous pattern. The first pattern
// establishes the initial state and dissipates zero energy.
func (s *Simulator) Step(inputs []signal.Bit) (float64, error) {
	if _, err := s.ev.Eval(inputs); err != nil {
		return 0, err
	}
	var energy float64
	if s.havePrev {
		for id := 0; id < s.nl.NumNets(); id++ {
			cur := s.ev.Value(gate.NetID(id))
			if cur.Known() && s.prev[id].Known() && cur != s.prev[id] {
				energy += s.perNetEnergy[id]
				s.toggles++
			}
		}
	}
	for id := 0; id < s.nl.NumNets(); id++ {
		s.prev[id] = s.ev.Value(gate.NetID(id))
	}
	s.havePrev = true
	s.patterns++
	s.totalEnergy += energy
	power := energy / s.lib.CycleTime // fJ / ns = µW
	s.series = append(s.series, power)
	if power > s.peak {
		s.peak = power
	}
	return energy, nil
}

// Run simulates a whole pattern sequence and returns the report.
func (s *Simulator) Run(patterns [][]signal.Bit) (Report, error) {
	if len(patterns) == 0 {
		return Report{}, errors.New("ppp: empty pattern sequence")
	}
	for _, p := range patterns {
		if _, err := s.Step(p); err != nil {
			return Report{}, err
		}
	}
	return s.Report(), nil
}

// Report summarizes all Steps so far.
func (s *Simulator) Report() Report {
	r := Report{
		Patterns:     s.patterns,
		PeakPower:    s.peak,
		PerPattern:   append([]float64(nil), s.series...),
		TotalToggles: s.toggles,
		TotalEnergy:  s.totalEnergy,
	}
	if s.patterns > 1 {
		// The first pattern only establishes state.
		r.AvgPower = s.totalEnergy / s.lib.CycleTime / float64(s.patterns-1)
	}
	return r
}

// Reset clears accumulated state so the simulator can be reused.
func (s *Simulator) Reset() {
	s.havePrev = false
	s.patterns = 0
	s.totalEnergy = 0
	s.peak = 0
	s.series = s.series[:0]
	s.toggles = 0
	s.ev.ResetToggles()
}

// AreaOf returns the total cell area of the netlist in equivalent gates.
func AreaOf(nl *gate.Netlist, lib *Library) float64 {
	if lib == nil {
		lib = DefaultLibrary()
	}
	var a float64
	for _, g := range nl.Gates() {
		a += lib.Area[g.Kind]
	}
	return a
}

// CriticalPath returns the worst-case propagation delay of the netlist in
// picoseconds under the library's cell delays and fanout loading.
func CriticalPath(nl *gate.Netlist, lib *Library) (float64, error) {
	if lib == nil {
		lib = DefaultLibrary()
	}
	if err := nl.Build(); err != nil {
		return 0, err
	}
	arrival := make([]float64, nl.NumNets())
	var worst float64
	// Walk gates in topological order via repeated evaluation order: the
	// netlist's levelized order is exposed through Gates() plus Build
	// guarantees; recompute a topological order locally from driver
	// structure.
	order, err := topoOrder(nl)
	if err != nil {
		return 0, err
	}
	for _, gi := range order {
		g := nl.Gates()[gi]
		var in float64
		for _, id := range g.In {
			if arrival[id] > in {
				in = arrival[id]
			}
		}
		d := lib.Delay[g.Kind] + lib.LoadDelayPerFanout*float64(nl.Fanout(g.Out))
		arrival[g.Out] = in + d
		if arrival[g.Out] > worst {
			worst = arrival[g.Out]
		}
	}
	return worst, nil
}

// TimingSimulator estimates the INPUT-DEPENDENT propagation delay of a
// netlist: for each applied pattern, the arrival time of the latest
// switching primary output, under the library's cell delays and fanout
// loading. This is the accurate timing method the paper's example
// assigns to the provider's server ("accurate timing computation
// requires analyzing the multiplier's gate-level structure, which cannot
// be disclosed to the IP user"): unlike the static critical path, the
// per-pattern delay reflects which paths actually switch.
type TimingSimulator struct {
	nl    *gate.Netlist
	ev    *gate.Evaluator
	lib   *Library
	order []int
	delay []float64 // per-gate cell+load delay

	prev     []signal.Bit
	havePrev bool
}

// NewTimingSimulator builds a timing simulator over the netlist.
func NewTimingSimulator(nl *gate.Netlist, lib *Library) (*TimingSimulator, error) {
	if lib == nil {
		lib = DefaultLibrary()
	}
	ev, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	order, err := topoOrder(nl)
	if err != nil {
		return nil, err
	}
	ts := &TimingSimulator{nl: nl, ev: ev, lib: lib, order: order}
	ts.delay = make([]float64, nl.NumGates())
	for gi, g := range nl.Gates() {
		ts.delay[gi] = lib.Delay[g.Kind] + lib.LoadDelayPerFanout*float64(nl.Fanout(g.Out))
	}
	ts.prev = make([]signal.Bit, nl.NumNets())
	return ts, nil
}

// Step applies one pattern and returns the pattern's propagation delay in
// picoseconds: the latest arrival among nets that changed value (0 when
// nothing switched, and for the first pattern, which only establishes
// state).
func (t *TimingSimulator) Step(inputs []signal.Bit) (float64, error) {
	if _, err := t.ev.Eval(inputs); err != nil {
		return 0, err
	}
	var worst float64
	if t.havePrev {
		arrival := make([]float64, t.nl.NumNets())
		changed := make([]bool, t.nl.NumNets())
		for id := 0; id < t.nl.NumNets(); id++ {
			cur := t.ev.Value(gate.NetID(id))
			if cur != t.prev[id] {
				changed[id] = true
			}
		}
		gates := t.nl.Gates()
		for _, gi := range t.order {
			g := gates[gi]
			if !changed[g.Out] {
				continue
			}
			// The transition launches from the latest-arriving changed
			// input (inputs that did not change do not gate the event).
			var in float64
			for _, inNet := range g.In {
				if changed[inNet] && arrival[inNet] > in {
					in = arrival[inNet]
				}
			}
			arrival[g.Out] = in + t.delay[gi]
		}
		for _, id := range t.nl.Outputs() {
			if changed[id] && arrival[id] > worst {
				worst = arrival[id]
			}
		}
	}
	for id := 0; id < t.nl.NumNets(); id++ {
		t.prev[id] = t.ev.Value(gate.NetID(id))
	}
	t.havePrev = true
	return worst, nil
}

// topoCache memoizes topological orders by netlist pointer identity.
// The provider hands out one canonical, pre-built netlist per bind
// shape, so every timing simulator and critical-path query over a shape
// shares one order; the returned slice is read-only by contract. The
// cache is bounded by the number of distinct netlists analyzed in the
// process.
var topoCache sync.Map // *gate.Netlist → []int

// topoOrder returns gate indices in topological order, memoized per
// netlist (see topoCache).
func topoOrder(nl *gate.Netlist) ([]int, error) {
	if v, ok := topoCache.Load(nl); ok {
		return v.([]int), nil
	}
	order, err := computeTopoOrder(nl)
	if err != nil {
		return nil, err
	}
	v, _ := topoCache.LoadOrStore(nl, order)
	return v.([]int), nil
}

// computeTopoOrder is the uncached Kahn walk behind topoOrder.
func computeTopoOrder(nl *gate.Netlist) ([]int, error) {
	gates := nl.Gates()
	driver := make(map[gate.NetID]int, len(gates))
	for gi, g := range gates {
		driver[g.Out] = gi
	}
	indeg := make([]int, len(gates))
	consumers := make(map[gate.NetID][]int)
	for gi, g := range gates {
		for _, in := range g.In {
			if _, driven := driver[in]; driven {
				indeg[gi]++
			}
			consumers[in] = append(consumers[in], gi)
		}
	}
	queue := make([]int, 0, len(gates))
	for gi, d := range indeg {
		if d == 0 {
			queue = append(queue, gi)
		}
	}
	order := make([]int, 0, len(gates))
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		order = append(order, gi)
		for _, ci := range consumers[gates[gi].Out] {
			indeg[ci]--
			if indeg[ci] == 0 {
				queue = append(queue, ci)
			}
		}
	}
	if len(order) != len(gates) {
		return nil, errors.New("ppp: combinational loop")
	}
	return order, nil
}
