package ppp

import (
	"math/rand"
	"testing"

	"repro/internal/gate"
	"repro/internal/signal"
)

func patterns(nl *gate.Netlist, vals ...uint64) [][]signal.Bit {
	out := make([][]signal.Bit, len(vals))
	for i, v := range vals {
		out[i] = nl.InputWord(v)
	}
	return out
}

func TestSimulatorZeroEnergyWithoutActivity(t *testing.T) {
	nl := gate.RippleAdder(4)
	s, err := NewSimulator(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(patterns(nl, 5, 5, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEnergy != 0 || rep.AvgPower != 0 || rep.PeakPower != 0 {
		t.Errorf("constant input dissipated energy: %+v", rep)
	}
	if rep.Patterns != 4 {
		t.Errorf("patterns = %d", rep.Patterns)
	}
}

func TestSimulatorEnergyScalesWithActivity(t *testing.T) {
	nl := gate.ArrayMultiplier(8)
	quiet, err := NewSimulator(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := NewSimulator(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet: single-LSB changes. Busy: full random swings.
	r := rand.New(rand.NewSource(3))
	var quietSeq, busySeq []uint64
	for i := 0; i < 50; i++ {
		quietSeq = append(quietSeq, uint64(i%2))
		busySeq = append(busySeq, uint64(r.Intn(1<<16)))
	}
	qr, err := quiet.Run(patterns(nl, quietSeq...))
	if err != nil {
		t.Fatal(err)
	}
	br, err := busy.Run(patterns(nl, busySeq...))
	if err != nil {
		t.Fatal(err)
	}
	if br.AvgPower <= qr.AvgPower {
		t.Errorf("busy avg power %.1f not above quiet %.1f", br.AvgPower, qr.AvgPower)
	}
	if br.PeakPower < br.AvgPower {
		t.Error("peak below average")
	}
	if br.TotalToggles == 0 {
		t.Error("no toggles counted")
	}
}

func TestSimulatorFirstPatternFree(t *testing.T) {
	nl := gate.RippleAdder(2)
	s, _ := NewSimulator(nl, nil)
	e, err := s.Step(nl.InputWord(0xF))
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("first pattern energy = %v, want 0", e)
	}
	e, _ = s.Step(nl.InputWord(0x0))
	if e <= 0 {
		t.Errorf("second pattern energy = %v, want > 0", e)
	}
}

func TestSimulatorEmptyRunRejected(t *testing.T) {
	nl := gate.RippleAdder(2)
	s, _ := NewSimulator(nl, nil)
	if _, err := s.Run(nil); err == nil {
		t.Error("empty run accepted")
	}
}

func TestSimulatorReset(t *testing.T) {
	nl := gate.RippleAdder(2)
	s, _ := NewSimulator(nl, nil)
	if _, err := s.Run(patterns(nl, 0, 0xF, 0)); err != nil {
		t.Fatal(err)
	}
	if s.Report().TotalEnergy == 0 {
		t.Fatal("no energy before reset")
	}
	s.Reset()
	rep := s.Report()
	if rep.TotalEnergy != 0 || rep.Patterns != 0 || len(rep.PerPattern) != 0 {
		t.Errorf("reset incomplete: %+v", rep)
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	nl := gate.ArrayMultiplier(4)
	run := func() Report {
		s, err := NewSimulator(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(patterns(nl, 1, 200, 33, 255, 0, 129))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.TotalEnergy != b.TotalEnergy || a.AvgPower != b.AvgPower || a.TotalToggles != b.TotalToggles {
		t.Errorf("nondeterministic power: %+v vs %+v", a, b)
	}
}

func TestAreaOfMonotonic(t *testing.T) {
	a := AreaOf(gate.ArrayMultiplier(4), nil)
	b := AreaOf(gate.ArrayMultiplier(8), nil)
	if a <= 0 || b <= a {
		t.Errorf("area not monotonic: %v, %v", a, b)
	}
}

func TestCriticalPathGrowsWithWidth(t *testing.T) {
	d4, err := CriticalPath(gate.RippleAdder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	d16, err := CriticalPath(gate.RippleAdder(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d4 <= 0 || d16 <= d4 {
		t.Errorf("critical path not growing: %v -> %v", d4, d16)
	}
}

func TestCriticalPathSingleGate(t *testing.T) {
	nl := gate.NewNetlist("one")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	o := nl.AddGate(gate.Nand, "o", a, b)
	nl.MarkOutput(o)
	lib := DefaultLibrary()
	d, err := CriticalPath(nl, lib)
	if err != nil {
		t.Fatal(err)
	}
	if d != lib.Delay[gate.Nand] {
		t.Errorf("single NAND delay = %v, want %v", d, lib.Delay[gate.Nand])
	}
}

func TestLibraryMissingKindRejected(t *testing.T) {
	nl := gate.NewNetlist("x")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	nl.MarkOutput(nl.AddGate(gate.Xor, "o", a, b))
	lib := &Library{Name: "empty", EnergyPerToggle: map[gate.Kind]float64{}, CycleTime: 1}
	if _, err := NewSimulator(nl, lib); err == nil {
		t.Error("missing characterization accepted")
	}
}

func TestXInputsDissipateNothing(t *testing.T) {
	nl := gate.RippleAdder(4)
	s, _ := NewSimulator(nl, nil)
	xs := make([]signal.Bit, 8)
	for i := range xs {
		xs[i] = signal.BX
	}
	if _, err := s.Step(xs); err != nil {
		t.Fatal(err)
	}
	e, err := s.Step(xs)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("X-to-X transition dissipated %v", e)
	}
}

func TestTimingSimulatorBasics(t *testing.T) {
	nl := gate.RippleAdder(8)
	ts, err := NewTimingSimulator(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First pattern establishes state: zero delay.
	d, err := ts.Step(nl.InputWord(0))
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("first pattern delay = %v", d)
	}
	// A full carry ripple (0 + 0 -> FF + 01) must approach the static
	// critical path; a single low-bit change must be much faster.
	dRipple, err := ts.Step(nl.InputWord(0x01FF)) // a=0xFF, b=0x01
	if err != nil {
		t.Fatal(err)
	}
	static, err := CriticalPath(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dRipple <= 0 || dRipple > static {
		t.Errorf("ripple delay %v outside (0, %v]", dRipple, static)
	}
	if dRipple < static/2 {
		t.Errorf("full ripple delay %v suspiciously below static path %v", dRipple, static)
	}
	// Back to a nearby value: only low bits switch.
	dSmall, err := ts.Step(nl.InputWord(0x01FE))
	if err != nil {
		t.Fatal(err)
	}
	if dSmall >= dRipple {
		t.Errorf("single-bit change delay %v not below ripple %v", dSmall, dRipple)
	}
	// Repeating the same pattern: nothing switches.
	dNone, err := ts.Step(nl.InputWord(0x01FE))
	if err != nil {
		t.Fatal(err)
	}
	if dNone != 0 {
		t.Errorf("no-change delay = %v", dNone)
	}
}

func TestTimingSimulatorNeverExceedsStatic(t *testing.T) {
	nl := gate.ArrayMultiplier(6)
	ts, err := NewTimingSimulator(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	static, err := CriticalPath(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		d, err := ts.Step(nl.InputWord(uint64(r.Intn(1 << 12))))
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d > static {
			t.Fatalf("pattern %d delay %v outside [0, %v]", i, d, static)
		}
	}
}
