package provider

import (
	"runtime"
	"testing"
)

// mallocsDuring runs fn and returns the process-wide Mallocs delta
// around it, with a GC fence before each reading so concurrently
// collectable garbage does not smear the counts.
func mallocsDuring(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.GC()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestBindShapeCacheAmortizesFaultPath asserts the bind-shape caches do
// their job: the first Bind of a shape pays for netlist construction,
// topological ordering and fault-path enumeration (thousands of
// allocations at width 30), and every later Bind of the same shape —
// even from a different Provider instance — reuses the canonical
// netlist and its testability, costing only session plumbing. The warm
// bind must come in under a tenth of the cold one.
//
// The test must own its width: the caches are process-wide, so a width
// another test binds would already be warm. Width 30 is reserved for
// this test; the rest of the package binds widths 4 and 8.
func TestBindShapeCacheAmortizesFaultPath(t *testing.T) {
	const width = 30

	_, c1 := startProvider(t)
	cold := mallocsDuring(func() {
		if _, err := c1.Bind("MultFastLowPower", width, nil); err != nil {
			t.Fatal(err)
		}
	})

	// A fresh Provider (fresh per-instance state, same process-wide
	// caches) — the shape the paper's session model re-binds per run.
	_, c2 := startProvider(t)
	warm := mallocsDuring(func() {
		if _, err := c2.Bind("MultFastLowPower", width, nil); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("bind width %d: cold %d mallocs, warm %d mallocs", width, cold, warm)
	if warm*10 >= cold {
		t.Fatalf("warm bind = %d mallocs, want < 10%% of cold bind (%d)", warm, cold)
	}
}
