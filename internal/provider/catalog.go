package provider

import (
	"fmt"
	"sync"

	"repro/internal/estim"
	"repro/internal/gate"
	"repro/internal/iplib"
)

// canonicalNetlists memoizes the catalogue components' gate-level
// implementations per (component, width), process-wide. Netlist
// construction for the array multiplier plus levelization is a large
// slice of cold bind cost, and short-lived providers (one per scenario
// run, one per benchmark iteration) never warm a per-Provider cache —
// so the catalogue itself hands out one canonical, pre-built netlist
// per shape. Every consumer treats built netlists as read-only, and
// sharing by pointer identity is what lets the provider's testability
// cache and ppp's topological-order memo key by *gate.Netlist.
var canonicalNetlists sync.Map // catalogShape → *gate.Netlist

// catalogShape identifies one canonical catalogue netlist.
type catalogShape struct {
	component string
	width     int
}

// canonicalNetlist returns the memoized netlist for a catalogue shape,
// building and pre-levelizing it on first use. Build is completed
// before the netlist is published because Netlist.Build memoizes into
// the netlist and must not race; LoadOrStore keeps the first insert so
// concurrent first binds converge on one instance.
func canonicalNetlist(component string, width int, build func() *gate.Netlist) (*gate.Netlist, error) {
	key := catalogShape{component: component, width: width}
	if v, ok := canonicalNetlists.Load(key); ok {
		return v.(*gate.Netlist), nil
	}
	nl := build()
	if err := nl.Build(); err != nil {
		return nil, err
	}
	v, _ := canonicalNetlists.LoadOrStore(key, nl)
	return v.(*gate.Netlist), nil
}

// MultFastLowPower returns the paper's example IP component: the
// high-performance, low-power multiplier sold by provider 1, with the
// three power estimators of Table 1 (constant, linear regression, and
// the remote gate-level toggle count at 0.1 cents per pattern).
func MultFastLowPower() *Component {
	return &Component{
		Spec: iplib.ComponentSpec{
			Name:          "MultFastLowPower",
			Description:   "high-performance low-power parametric multiplier",
			MinWidth:      2,
			MaxWidth:      32,
			PublicFactory: "behavioral-mult",
			Estimators: []iplib.EstimatorOffer{
				{Name: "constant", Param: string(estim.ParamAvgPower), ErrPct: 25, CostCents: 0, CPUTimeMS: 0, Remote: false},
				{Name: "datasheet-delay", Param: string(estim.ParamDelay), ErrPct: 30, CostCents: 0, CPUTimeMS: 0, Remote: false},
				{Name: "gate-level-timing", Param: string(estim.ParamDelay), ErrPct: 5, CostCents: 0.05, CPUTimeMS: 50_000, Remote: true},
				{Name: "linear-regression", Param: string(estim.ParamAvgPower), ErrPct: 20, CostCents: 0, CPUTimeMS: 1000, Remote: false},
				{Name: "gate-level-toggle-count", Param: string(estim.ParamAvgPower), ErrPct: 10, CostCents: 0.1, CPUTimeMS: 100_000, Remote: true},
			},
			Testability:  true,
			LicenseCents: 50,
		},
		Build: func(width int) (*gate.Netlist, error) {
			if width < 2 {
				return nil, fmt.Errorf("provider: multiplier width %d too small", width)
			}
			return canonicalNetlist("MultFastLowPower", width, func() *gate.Netlist {
				return gate.ArrayMultiplier(width)
			})
		},
		PowerFeeCents:   0.1,
		EvalFeeCents:    0.01,
		TableFeeCents:   0.5,
		TestSetFeeCents: 25,
		TimingFeeCents:  0.05,
	}
}

// HalfAdderIP1 returns the Figure 4 IP block as a catalogue component:
// the provider answers testability queries for it while only its
// behavioral function (a half adder) is public.
func HalfAdderIP1() *Component {
	return &Component{
		Spec: iplib.ComponentSpec{
			Name:          "IP1-HalfAdder",
			Description:   "half adder macro with virtual fault simulation support",
			MinWidth:      1,
			MaxWidth:      1,
			PublicFactory: "behavioral-halfadder",
			Testability:   true,
			LicenseCents:  5,
		},
		Build: func(width int) (*gate.Netlist, error) {
			return canonicalNetlist("IP1-HalfAdder", width, gate.HalfAdderIP)
		},
		EvalFeeCents:    0.01,
		TableFeeCents:   0.2,
		TestSetFeeCents: 10,
	}
}
