package provider

import (
	"strings"
	"testing"

	"repro/internal/estim"
	"repro/internal/iplib"
)

func TestNegotiateBestAdmissible(t *testing.T) {
	_, c := startProvider(t)
	resp, err := c.Negotiate("MultFastLowPower", []iplib.ModelConstraint{
		{Param: string(estim.ParamAvgPower)}, // unconstrained -> gate-level
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rejections[0] != "" {
		t.Fatalf("unconstrained demand rejected: %q", resp.Rejections[0])
	}
	if resp.Offers[0].Name != "gate-level-toggle-count" {
		t.Errorf("best offer = %q, want gate-level-toggle-count", resp.Offers[0].Name)
	}
}

func TestNegotiateFreeOnly(t *testing.T) {
	_, c := startProvider(t)
	resp, err := c.Negotiate("MultFastLowPower", []iplib.ModelConstraint{
		{Param: string(estim.ParamAvgPower), MaxCostCents: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Offers[0].Name != "linear-regression" {
		t.Errorf("free best = %q, want linear-regression", resp.Offers[0].Name)
	}
}

func TestNegotiateForbidRemote(t *testing.T) {
	_, c := startProvider(t)
	resp, err := c.Negotiate("MultFastLowPower", []iplib.ModelConstraint{
		{Param: string(estim.ParamAvgPower), ForbidRemote: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Offers[0].Remote {
		t.Error("remote offer despite ForbidRemote")
	}
	if resp.Offers[0].Name != "linear-regression" {
		t.Errorf("local best = %q", resp.Offers[0].Name)
	}
}

func TestNegotiateOverConstrainedRejected(t *testing.T) {
	_, c := startProvider(t)
	resp, err := c.Negotiate("MultFastLowPower", []iplib.ModelConstraint{
		{Param: string(estim.ParamAvgPower), MaxErrPct: 5, ForbidRemote: true},
		{Param: string(estim.ParamArea)}, // no area model offered (Figure 1: "Area model 0")
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rej := range resp.Rejections {
		if rej == "" {
			t.Errorf("constraint %d unexpectedly satisfied: %+v", i, resp.Offers[i])
		}
		if !strings.Contains(rej, "no ") {
			t.Errorf("rejection %d unreadable: %q", i, rej)
		}
	}
}

func TestNegotiateMixedRound(t *testing.T) {
	_, c := startProvider(t)
	resp, err := c.Negotiate("MultFastLowPower", []iplib.ModelConstraint{
		{Param: string(estim.ParamAvgPower), MaxErrPct: 30, ForbidRemote: true},
		{Param: string(estim.ParamAvgPower), MaxErrPct: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rejections[0] != "" || resp.Offers[0].Name != "linear-regression" {
		t.Errorf("round 1: %+v / %q", resp.Offers[0], resp.Rejections[0])
	}
	if resp.Rejections[1] != "" || resp.Offers[1].Name != "gate-level-toggle-count" {
		t.Errorf("round 2: %+v / %q", resp.Offers[1], resp.Rejections[1])
	}
}

func TestNegotiateUnknownComponent(t *testing.T) {
	_, c := startProvider(t)
	if _, err := c.Negotiate("NoSuch", nil); err == nil {
		t.Error("unknown component negotiated")
	}
}
