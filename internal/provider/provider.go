// Package provider implements the JavaCAD server of the paper's Figure 1:
// the IP provider's side of the client-server architecture. A Provider
// hosts the PRIVATE PARTS of its components — gate-level netlists and the
// accurate estimators that need them (the PPP power simulator, static
// area/delay analysis, fault lists and detection tables) — and serves
// them to authenticated IP users over internal/rmi, metering fees per
// use. The netlists themselves never leave the process: every response is
// vetted by the marshalling policy and carries only port-value data.
package provider

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/estim"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/iplib"
	"repro/internal/ppp"
	"repro/internal/rmi"
	"repro/internal/security"
	"repro/internal/signal"
)

// Component couples a catalogue spec with the private implementation
// generator. Build runs at bind time with the negotiated width.
type Component struct {
	Spec iplib.ComponentSpec
	// Build generates the private gate-level implementation.
	Build func(width int) (*gate.Netlist, error)
	// PowerFeeCents is charged per pattern of remote power estimation
	// (Table 1: 0.1 cents per pattern for the gate-level estimator).
	PowerFeeCents float64
	// EvalFeeCents is charged per remote functional evaluation.
	EvalFeeCents float64
	// TableFeeCents is charged per detection-table query.
	TableFeeCents float64
	// TestSetFeeCents is charged per purchased test sequence.
	TestSetFeeCents float64
	// TimingFeeCents is charged per pattern of remote timing analysis.
	TimingFeeCents float64
}

// instance is the per-session state of one bound component.
type instance struct {
	mu     sync.Mutex
	comp   *Component
	width  int
	nl     *gate.Netlist
	ev     *gate.Evaluator
	power  *ppp.Simulator
	timing *ppp.TimingSimulator
	test   *fault.LocalTestability
	lib    *ppp.Library
}

// Provider is one IP provider server.
type Provider struct {
	// Server is the underlying RPC endpoint (exposed for Authorize,
	// Listen, Close).
	Server *rmi.Server
	// Library is the cell library used for power/area/delay; nil selects
	// ppp.DefaultLibrary.
	Library *ppp.Library
	// FaultNaming selects how symbolic fault names are spelled.
	FaultNaming fault.Naming

	mu         sync.Mutex
	components map[string]*Component
	// nlCache is the provider's bind-shape cache: the canonical gate-level
	// netlist per (component, width). Component.Build derives the netlist
	// deterministically from the width and every consumer — evaluators,
	// power/timing simulators, testability, ATPG — treats a built netlist
	// as read-only, so all sessions binding the same shape share one
	// instance. Netlists are pre-levelized (Netlist.Build) before they are
	// published, which also makes the shape's fault-path and topological
	// analyses cacheable by netlist pointer identity (testabilityCache
	// here, topoOrder's memo in internal/ppp).
	nlCache map[shapeKey]*gate.Netlist
}

// shapeKey identifies one bind shape.
type shapeKey struct {
	component string
	width     int
}

// testabilityCache memoizes testability services process-wide, keyed by
// the canonical netlist's pointer identity plus the fault naming scheme.
// Fault collapsing and symbolic naming walk every net of the netlist
// (the ~2k-allocation fault-path construction this cache amortizes), so
// the service builds once per shape and is shared across sessions,
// connects, and providers; its pattern-keyed detection-table cache is
// shared along with it. LocalTestability is internally synchronized.
// Pointer keying is sound because nlCache and the catalogue's canonical
// netlists hand out one stable *gate.Netlist per shape; the cache is
// bounded by the number of distinct shapes built in the process.
var testabilityCache sync.Map // testKey → *fault.LocalTestability

// testKey identifies one shared testability service.
type testKey struct {
	nl     *gate.Netlist
	naming fault.Naming
}

// DefaultSessionWorkers is the per-session dispatch concurrency a fresh
// provider allows: enough that a pipelined client's stateless calls
// (detection tables, static metrics, eval) overlap, bounded so one
// session cannot monopolize the provider host.
const DefaultSessionWorkers = 4

// New returns a provider server with the full protocol installed.
// Per-session dispatch is concurrent (DefaultSessionWorkers deep) for
// stateless methods; the power and timing batch methods drive stateful
// per-instance simulators whose values depend on pattern history, so
// they are registered ordered — they execute in request arrival order
// even when the client pipelines, keeping results bit-identical to a
// stop-and-wait transport.
func New(name string) *Provider {
	p := &Provider{
		Server:     rmi.NewServer(name),
		components: make(map[string]*Component),
	}
	p.Server.SessionWorkers = DefaultSessionWorkers
	p.Server.Handle(iplib.MethodCatalogue, p.handleCatalogue)
	p.Server.Handle(iplib.MethodBind, p.handleBind)
	p.Server.Handle(iplib.MethodEval, p.handleEval)
	p.Server.HandleOrdered(iplib.MethodPowerBatch, p.handlePowerBatch)
	p.Server.Handle(iplib.MethodStatic, p.handleStatic)
	p.Server.Handle(iplib.MethodFaultList, p.handleFaultList)
	p.Server.Handle(iplib.MethodFaultTable, p.handleFaultTable)
	p.Server.Handle(iplib.MethodFees, p.handleFees)
	p.Server.Handle(iplib.MethodNegotiate, p.handleNegotiate)
	p.Server.Handle(iplib.MethodTestSet, p.handleTestSet)
	p.Server.HandleOrdered(iplib.MethodTimingBatch, p.handleTimingBatch)
	return p
}

// handleTestSet generates and sells a compacted component test sequence.
func (p *Provider) handleTestSet(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.TestSetReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	inst, err := getInstance(sess, req.Instance)
	if err != nil {
		return nil, err
	}
	if !inst.comp.Spec.Testability {
		return nil, fmt.Errorf("provider: %s offers no test sets", inst.comp.Spec.Name)
	}
	max := req.MaxCandidates
	if max <= 0 || max > 100_000 {
		max = 2000
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	ts, err := fault.GenerateTests(inst.nl, max, req.Seed)
	if err != nil {
		return nil, err
	}
	fee := inst.comp.TestSetFeeCents
	sess.Charge(fee)
	return iplib.TestSetResp{Patterns: ts.Patterns, Coverage: ts.Coverage, FeeCents: fee}, nil
}

// handleNegotiate answers a negotiation round: for each constraint, the
// most accurate offered estimator that satisfies the client's bounds.
func (p *Provider) handleNegotiate(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.NegotiateReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	p.mu.Lock()
	comp, ok := p.components[req.Component]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("provider: unknown component %q", req.Component)
	}
	resp := iplib.NegotiateResp{
		Offers:     make([]iplib.EstimatorOffer, len(req.Constraints)),
		Rejections: make([]string, len(req.Constraints)),
	}
	for i, c := range req.Constraints {
		var best *iplib.EstimatorOffer
		for j := range comp.Spec.Estimators {
			o := &comp.Spec.Estimators[j]
			if o.Param != c.Param {
				continue
			}
			if c.MaxErrPct > 0 && o.ErrPct > c.MaxErrPct {
				continue
			}
			if c.MaxCostCents < 0 && o.CostCents > 0 {
				continue
			}
			if c.MaxCostCents > 0 && o.CostCents > c.MaxCostCents {
				continue
			}
			if c.ForbidRemote && o.Remote {
				continue
			}
			if best == nil || o.ErrPct < best.ErrPct {
				best = o
			}
		}
		if best == nil {
			resp.Rejections[i] = fmt.Sprintf("no %s model within err<=%.1f%% cost<=%.2f remote-ok=%v",
				c.Param, c.MaxErrPct, c.MaxCostCents, !c.ForbidRemote)
			continue
		}
		resp.Offers[i] = *best
	}
	return resp, nil
}

// Register adds a component to the catalogue.
func (p *Provider) Register(c *Component) error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.components[c.Spec.Name]; dup {
		return fmt.Errorf("provider: duplicate component %q", c.Spec.Name)
	}
	p.components[c.Spec.Name] = c
	return nil
}

// Authorize grants a client access (delegates to the RPC server).
func (p *Provider) Authorize(client string, key security.Key) { p.Server.Authorize(client, key) }

// Listen starts serving on a TCP address.
func (p *Provider) Listen(addr string) (string, error) { return p.Server.Listen(addr) }

// Close stops the server.
func (p *Provider) Close() error { return p.Server.Close() }

func (p *Provider) handleCatalogue(sess *rmi.Session, payload []byte) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	resp := iplib.CatalogueResp{}
	for _, c := range p.components {
		resp.Specs = append(resp.Specs, c.Spec)
	}
	return resp, nil
}

// instKeys precomputes the session-store names of the first instance
// handles: handles are small session-local ordinals and the key is
// rebuilt on every eval, so formatting one per call was pure overhead.
var instKeys = func() (ks [64]string) {
	for i := range ks {
		ks[i] = "inst:" + strconv.FormatUint(uint64(i), 10)
	}
	return
}()

// instKey names an instance in the session store.
func instKey(id uint64) string {
	if id < uint64(len(instKeys)) {
		return instKeys[id]
	}
	return "inst:" + strconv.FormatUint(id, 10)
}

func (p *Provider) handleBind(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.BindReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	p.mu.Lock()
	comp, ok := p.components[req.Component]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("provider: unknown component %q", req.Component)
	}
	if req.Width < comp.Spec.MinWidth || req.Width > comp.Spec.MaxWidth {
		return nil, fmt.Errorf("provider: %s: width %d outside [%d, %d]",
			req.Component, req.Width, comp.Spec.MinWidth, comp.Spec.MaxWidth)
	}
	nl, err := p.netlistFor(comp, req.Component, req.Width)
	if err != nil {
		return nil, err
	}
	lib := p.Library
	if lib == nil {
		lib = ppp.DefaultLibrary()
	}
	ev, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	power, err := ppp.NewSimulator(nl, lib)
	if err != nil {
		return nil, err
	}
	timing, err := ppp.NewTimingSimulator(nl, lib)
	if err != nil {
		return nil, err
	}
	inst := &instance{comp: comp, width: req.Width, nl: nl, ev: ev, power: power, timing: timing, lib: lib}
	if comp.Spec.Testability {
		test, err := p.testabilityFor(nl)
		if err != nil {
			return nil, err
		}
		inst.test = test
	}
	// Negotiate the enabled models.
	enabled := comp.Spec.Estimators
	if len(req.Models) > 0 {
		enabled = nil
		for _, m := range req.Models {
			offer, ok := comp.Spec.Offer(m)
			if !ok {
				return nil, fmt.Errorf("provider: %s offers no model %q", req.Component, m)
			}
			enabled = append(enabled, offer)
		}
	}
	id := nextInstanceID(sess)
	sess.Put(instKey(id), inst)
	sess.Charge(comp.Spec.LicenseCents)
	return iplib.BindResp{Instance: id, LicenseCents: comp.Spec.LicenseCents, Enabled: enabled}, nil
}

// netlistFor returns the canonical netlist for one bind shape, building
// and pre-levelizing it on first use. Pre-levelizing under no lock but
// before publication matters: Netlist.Build memoizes into the netlist
// itself and is not safe to race, so the cache only ever hands out
// netlists that are already read-only. Concurrent first binds may build
// twice; the first insert wins so later binds converge on one instance.
func (p *Provider) netlistFor(comp *Component, component string, width int) (*gate.Netlist, error) {
	key := shapeKey{component: component, width: width}
	p.mu.Lock()
	if nl, ok := p.nlCache[key]; ok {
		p.mu.Unlock()
		return nl, nil
	}
	p.mu.Unlock()
	nl, err := comp.Build(width)
	if err != nil {
		return nil, err
	}
	if err := nl.Build(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cached, ok := p.nlCache[key]; ok {
		return cached, nil
	}
	if p.nlCache == nil {
		p.nlCache = make(map[shapeKey]*gate.Netlist)
	}
	p.nlCache[key] = nl
	return nl, nil
}

// testabilityFor returns the shared testability service for one
// canonical netlist, building it on first use (see testabilityCache).
// Concurrent first binds may build twice; LoadOrStore keeps the first
// insert so later binds converge on one instance.
func (p *Provider) testabilityFor(nl *gate.Netlist) (*fault.LocalTestability, error) {
	key := testKey{nl: nl, naming: p.FaultNaming}
	if t, ok := testabilityCache.Load(key); ok {
		return t.(*fault.LocalTestability), nil
	}
	test, err := fault.NewLocalTestability(nl, p.FaultNaming, true)
	if err != nil {
		return nil, err
	}
	t, _ := testabilityCache.LoadOrStore(key, test)
	return t.(*fault.LocalTestability), nil
}

// nextInstanceID allocates a session-unique instance handle.
func nextInstanceID(sess *rmi.Session) uint64 {
	v, _ := sess.Get("nextInstance")
	id, _ := v.(uint64)
	id++
	sess.Put("nextInstance", id)
	return id
}

// getInstance resolves an instance handle.
func getInstance(sess *rmi.Session, id uint64) (*instance, error) {
	v, ok := sess.Get(instKey(id))
	if !ok {
		return nil, fmt.Errorf("provider: no instance %d in session", id)
	}
	return v.(*instance), nil
}

func (p *Provider) handleEval(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.EvalReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	inst, err := getInstance(sess, req.Instance)
	if err != nil {
		return nil, err
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	out, err := inst.ev.Eval(req.Inputs)
	if err != nil {
		return nil, err
	}
	sess.Charge(inst.comp.EvalFeeCents)
	return iplib.EvalResp{Outputs: append([]signal.Bit(nil), out...)}, nil
}

func (p *Provider) handlePowerBatch(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.PowerBatchReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	inst, err := getInstance(sess, req.Instance)
	if err != nil {
		return nil, err
	}
	fee := inst.comp.PowerFeeCents * float64(len(req.Patterns))
	sess.Charge(fee)
	if req.SkipCompute {
		// Figure 3 methodology: acknowledge the buffer without invoking
		// the power simulator, isolating RMI overhead.
		return iplib.PowerBatchResp{FeeCents: fee}, nil
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	out := make([]float64, 0, len(req.Patterns))
	for _, pat := range req.Patterns {
		energy, err := inst.power.Step(pat)
		if err != nil {
			return nil, err
		}
		out = append(out, energy/inst.lib.CycleTime)
	}
	return iplib.PowerBatchResp{PowerPerPattern: out, FeeCents: fee}, nil
}

func (p *Provider) handleTimingBatch(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.TimingBatchReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	inst, err := getInstance(sess, req.Instance)
	if err != nil {
		return nil, err
	}
	fee := inst.comp.TimingFeeCents * float64(len(req.Patterns))
	sess.Charge(fee)
	inst.mu.Lock()
	defer inst.mu.Unlock()
	out := make([]float64, 0, len(req.Patterns))
	for _, pat := range req.Patterns {
		d, err := inst.timing.Step(pat)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return iplib.TimingBatchResp{DelayPerPattern: out, FeeCents: fee}, nil
}

func (p *Provider) handleStatic(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.StaticReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	inst, err := getInstance(sess, req.Instance)
	if err != nil {
		return nil, err
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	switch estim.Parameter(req.Param) {
	case estim.ParamArea:
		return iplib.StaticResp{Value: ppp.AreaOf(inst.nl, inst.lib)}, nil
	case estim.ParamDelay:
		d, err := ppp.CriticalPath(inst.nl, inst.lib)
		if err != nil {
			return nil, err
		}
		return iplib.StaticResp{Value: d}, nil
	}
	return nil, fmt.Errorf("provider: unknown static parameter %q", req.Param)
}

func (p *Provider) handleFaultList(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.FaultListReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	inst, err := getInstance(sess, req.Instance)
	if err != nil {
		return nil, err
	}
	if inst.test == nil {
		return nil, fmt.Errorf("provider: %s offers no testability service", inst.comp.Spec.Name)
	}
	names, err := inst.test.FaultList()
	if err != nil {
		return nil, err
	}
	return iplib.FaultListResp{Names: names}, nil
}

func (p *Provider) handleFaultTable(sess *rmi.Session, payload []byte) (any, error) {
	var req iplib.FaultTableReq
	if err := rmi.Decode(payload, &req); err != nil {
		return nil, err
	}
	inst, err := getInstance(sess, req.Instance)
	if err != nil {
		return nil, err
	}
	if inst.test == nil {
		return nil, fmt.Errorf("provider: %s offers no testability service", inst.comp.Spec.Name)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	dt, err := inst.test.DetectionTable(req.Inputs)
	if err != nil {
		return nil, err
	}
	sess.Charge(inst.comp.TableFeeCents)
	return iplib.FaultTableResp{Table: *dt}, nil
}

func (p *Provider) handleFees(sess *rmi.Session, payload []byte) (any, error) {
	return iplib.FeesResp{TotalCents: sess.Fees()}, nil
}
