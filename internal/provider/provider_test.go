package provider

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/iplib"
	"repro/internal/ppp"
	"repro/internal/rmi"
	"repro/internal/security"
	"repro/internal/signal"
)

// startProvider spins up a provider with the standard catalogue and a
// connected IPClient.
func startProvider(t *testing.T) (*Provider, *iplib.IPClient) {
	t.Helper()
	p := New("provider1")
	if err := p.Register(MultFastLowPower()); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(HalfAdderIP1()); err != nil {
		t.Fatal(err)
	}
	key, err := security.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	p.Authorize("designer", key)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	rpc, err := rmi.Dial(addr, "designer", key)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rpc.Close() })
	return p, iplib.NewIPClient(rpc)
}

func TestCatalogueListsComponents(t *testing.T) {
	_, c := startProvider(t)
	specs, err := c.Catalogue()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("catalogue size = %d", len(specs))
	}
	var mult *iplib.ComponentSpec
	for i := range specs {
		if specs[i].Name == "MultFastLowPower" {
			mult = &specs[i]
		}
	}
	if mult == nil {
		t.Fatal("multiplier missing from catalogue")
	}
	if len(mult.Estimators) != 5 || !mult.Testability {
		t.Errorf("multiplier spec incomplete: %+v", mult)
	}
	// The Figure 1 setup: power models at three accuracies, timing
	// models at two, functional model implicit, no paid area model.
	kinds := map[string]int{}
	for _, e := range mult.Estimators {
		kinds[e.Param]++
	}
	if kinds["power.avg"] != 3 || kinds["delay"] != 2 {
		t.Errorf("model mix = %v", kinds)
	}
}

func TestBindNegotiatesModels(t *testing.T) {
	_, c := startProvider(t)
	b, err := c.Bind("MultFastLowPower", 8, []string{"constant", "gate-level-toggle-count"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Width() != 8 || b.Component() != "MultFastLowPower" {
		t.Errorf("bound instance = %v", b)
	}
	enabled := b.Enabled()
	if len(enabled) != 2 {
		t.Fatalf("enabled models = %d, want 2", len(enabled))
	}
	if _, err := c.Bind("MultFastLowPower", 8, []string{"no-such-model"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := c.Bind("MultFastLowPower", 1, nil); err == nil {
		t.Error("out-of-range width accepted")
	}
	if _, err := c.Bind("NoSuchComponent", 8, nil); err == nil {
		t.Error("unknown component accepted")
	}
}

func TestRemoteEvalMatchesLocalMultiplication(t *testing.T) {
	_, c := startProvider(t)
	b, err := c.Bind("MultFastLowPower", 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl := gate.ArrayMultiplier(8) // local reference with the same generator
	for _, pair := range [][2]uint64{{3, 5}, {0, 9}, {255, 255}, {17, 11}} {
		in := nl.InputWord(pair[0] | pair[1]<<8)
		out, err := b.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		var v uint64
		for i, bit := range out {
			if bv, _ := bit.Bool(); bv {
				v |= 1 << uint(i)
			}
		}
		if v != pair[0]*pair[1] {
			t.Errorf("remote eval %d*%d = %d", pair[0], pair[1], v)
		}
	}
}

func TestRemotePowerBatch(t *testing.T) {
	_, c := startProvider(t)
	b, err := c.Bind("MultFastLowPower", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl := gate.ArrayMultiplier(4)
	var patterns [][]signal.Bit
	for _, v := range []uint64{0x00, 0xFF, 0x0F, 0xF0, 0x3C} {
		patterns = append(patterns, nl.InputWord(v))
	}
	power, err := b.PowerBatch(patterns, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(power) != len(patterns) {
		t.Fatalf("power values = %d, want %d", len(power), len(patterns))
	}
	if power[0] != 0 {
		t.Error("first pattern should establish state at zero energy")
	}
	sum := 0.0
	for _, p := range power[1:] {
		sum += p
	}
	if sum <= 0 {
		t.Error("active patterns dissipated no power")
	}
	// SkipCompute: acknowledged, no values, still billed.
	ack, err := b.PowerBatch(patterns, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ack) != 0 {
		t.Error("skip-compute returned power values")
	}
}

func TestBatchStateContinuity(t *testing.T) {
	// Splitting a pattern sequence into two batches must dissipate the
	// same total energy as one batch (the provider keeps per-instance
	// simulator state across batches).
	_, c := startProvider(t)
	nl := gate.ArrayMultiplier(4)
	seq := []uint64{0x00, 0xFF, 0x0F, 0xF0, 0x3C, 0xA5}
	run := func(chunks ...[]uint64) float64 {
		b, err := c.Bind("MultFastLowPower", 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, chunk := range chunks {
			var pats [][]signal.Bit
			for _, v := range chunk {
				pats = append(pats, nl.InputWord(v))
			}
			vals, err := b.PowerBatch(pats, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range vals {
				total += p
			}
		}
		return total
	}
	whole := run(seq)
	split := run(seq[:2], seq[2:])
	if whole != split {
		t.Errorf("batch split changed energy: %v vs %v", whole, split)
	}
}

func TestStaticMetrics(t *testing.T) {
	_, c := startProvider(t)
	b, err := c.Bind("MultFastLowPower", 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	area, err := b.Static("area")
	if err != nil {
		t.Fatal(err)
	}
	wantArea := ppp.AreaOf(gate.ArrayMultiplier(8), nil)
	if area != wantArea {
		t.Errorf("remote area = %v, local = %v", area, wantArea)
	}
	delay, err := b.Static("delay")
	if err != nil {
		t.Fatal(err)
	}
	if delay <= 0 {
		t.Errorf("delay = %v", delay)
	}
	if _, err := b.Static("bogus"); err == nil {
		t.Error("unknown static param accepted")
	}
}

func TestRemoteTestabilityService(t *testing.T) {
	_, c := startProvider(t)
	b, err := c.Bind("IP1-HalfAdder", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The bound instance is a fault.TestabilityService; its answers must
	// match the local service over the same netlist.
	local, err := fault.NewLocalTestability(gate.HalfAdderIP(), fault.NetNames, true)
	if err != nil {
		t.Fatal(err)
	}
	remoteNames, err := b.FaultList()
	if err != nil {
		t.Fatal(err)
	}
	localNames, _ := local.FaultList()
	if strings.Join(remoteNames, ",") != strings.Join(localNames, ",") {
		t.Errorf("remote fault list %v != local %v", remoteNames, localNames)
	}
	in := []signal.Bit{signal.B1, signal.B0}
	rdt, err := b.DetectionTable(in)
	if err != nil {
		t.Fatal(err)
	}
	ldt, _ := local.DetectionTable(in)
	if rdt.ParamString() != ldt.ParamString() {
		t.Errorf("remote table %s != local %s", rdt.ParamString(), ldt.ParamString())
	}
}

func TestTestabilityRefusedWithoutSupport(t *testing.T) {
	p := New("p2")
	comp := MultFastLowPower()
	comp.Spec.Name = "NoTest"
	comp.Spec.Testability = false
	if err := p.Register(comp); err != nil {
		t.Fatal(err)
	}
	key, _ := security.NewKey()
	p.Authorize("u", key)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rpc, err := rmi.Dial(addr, "u", key)
	if err != nil {
		t.Fatal(err)
	}
	defer rpc.Close()
	c := iplib.NewIPClient(rpc)
	b, err := c.Bind("NoTest", 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.FaultList(); err == nil {
		t.Error("fault list served for no-testability component")
	}
	if _, err := b.DetectionTable(make([]signal.Bit, 16)); err == nil {
		t.Error("detection table served for no-testability component")
	}
}

func TestFeesAccumulate(t *testing.T) {
	_, c := startProvider(t)
	before, err := c.Fees()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Bind("MultFastLowPower", 4, nil) // license: 50 cents
	if err != nil {
		t.Fatal(err)
	}
	nl := gate.ArrayMultiplier(4)
	if _, err := b.PowerBatch([][]signal.Bit{nl.InputWord(1), nl.InputWord(2)}, false); err != nil {
		t.Fatal(err)
	}
	after, err := c.Fees()
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := 50 + 2*0.1
	if d := after - before; d < wantDelta-0.001 || d > wantDelta+0.001 {
		t.Errorf("fee delta = %v, want %v", d, wantDelta)
	}
}

func TestInvalidInstanceRejected(t *testing.T) {
	_, c := startProvider(t)
	bogus := &iplib.FaultListReq{Instance: 999}
	_ = bogus
	b, err := c.Bind("MultFastLowPower", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = b
	// Forge a request against a nonexistent instance via a fresh bind
	// handle hack: use the typed stub against id 999 by binding then
	// asking for an invalid one through Eval with wrong arity instead.
	if _, err := b.Eval([]signal.Bit{signal.B1}); err == nil {
		t.Error("wrong eval arity accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	p := New("pv")
	bad := &Component{Spec: iplib.ComponentSpec{Name: ""}}
	if err := p.Register(bad); err == nil {
		t.Error("invalid spec registered")
	}
	good := MultFastLowPower()
	if err := p.Register(good); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(MultFastLowPower()); err == nil {
		t.Error("duplicate component registered")
	}
}

func TestSpecHelpers(t *testing.T) {
	spec := MultFastLowPower().Spec
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	offer, ok := spec.Offer("constant")
	if !ok || offer.Parameter() == "" || offer.CPUTime() != 0 {
		t.Errorf("offer lookup wrong: %+v", offer)
	}
	if _, ok := spec.Offer("nope"); ok {
		t.Error("bogus offer found")
	}
	dup := spec
	dup.Estimators = append(dup.Estimators, dup.Estimators[0])
	if err := dup.Validate(); err == nil {
		t.Error("duplicate estimator validated")
	}
}

func TestTestSetPurchase(t *testing.T) {
	_, c := startProvider(t)
	b, err := c.Bind("IP1-HalfAdder", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := c.Fees()
	ts, err := b.TestSet(500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Coverage != 1.0 {
		t.Errorf("half-adder test set coverage = %.3f", ts.Coverage)
	}
	if len(ts.Patterns) == 0 || len(ts.Patterns) > 4 {
		t.Errorf("test set size = %d; expected a compact set", len(ts.Patterns))
	}
	after, _ := c.Fees()
	if after-before < 9.99 {
		t.Errorf("test-set fee not charged: delta %.2f", after-before)
	}
	// The purchased sequence really achieves the claimed coverage: the
	// user can audit it through the provider's own detection tables via
	// virtual fault simulation, or (here, with test omniscience) on the
	// reference netlist.
	ref, err := fault.SerialSimulate(gate.HalfAdderIP(), ts.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Coverage() != 1.0 {
		t.Errorf("purchased test set does not deliver: %.3f", ref.Coverage())
	}
}

func TestTestSetRefusedWithoutTestability(t *testing.T) {
	p := New("nt")
	comp := MultFastLowPower()
	comp.Spec.Name = "NoTestSets"
	comp.Spec.Testability = false
	if err := p.Register(comp); err != nil {
		t.Fatal(err)
	}
	key, _ := security.NewKey()
	p.Authorize("u", key)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rpc, err := rmi.Dial(addr, "u", key)
	if err != nil {
		t.Fatal(err)
	}
	defer rpc.Close()
	b, err := iplib.NewIPClient(rpc).Bind("NoTestSets", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TestSet(100, 1); err == nil {
		t.Error("test set sold without testability support")
	}
}

func TestRemoteTimingBatch(t *testing.T) {
	_, c := startProvider(t)
	b, err := c.Bind("MultFastLowPower", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl := gate.ArrayMultiplier(4)
	delays, err := b.TimingBatch([][]signal.Bit{
		nl.InputWord(0x00), nl.InputWord(0xFF), nl.InputWord(0xFF), nl.InputWord(0x5A),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 4 {
		t.Fatalf("delays = %v", delays)
	}
	if delays[0] != 0 || delays[2] != 0 {
		t.Errorf("state-establishing / no-change patterns must be 0: %v", delays)
	}
	if delays[1] <= 0 || delays[3] <= 0 {
		t.Errorf("switching patterns must have positive delay: %v", delays)
	}
	static, err := b.Static("delay")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range delays {
		if d > static {
			t.Errorf("dynamic delay %v exceeds static %v", d, static)
		}
	}
}
