// Package replica provides client-side provider replication: a set of
// equivalent provider endpoints for one IP component, with per-replica
// health accounting (EWMA latency, consecutive failures), a three-state
// circuit breaker per replica, and a failover dialer that re-routes a
// poisoned transport epoch — and the session journal replay it triggers
// — to the next healthy replica instead of hammering a dead one.
//
// The package sits below internal/core and plugs into internal/rmi
// through three seams:
//
//   - Set.Dialer becomes rmi.Client.Redial, so every reconnect (and the
//     session replay that re-establishes provider-side state) lands on a
//     breaker-approved replica;
//   - Set.ObserveEpochFail becomes rmi.Client.OnEpochFail, charging each
//     poisoned epoch to the replica that served it;
//   - Set.ObserveAttempt becomes rmi.Client.OnAttempt, feeding measured
//     per-call round-trip times into the EWMA.
//
// Determinism: nothing in this package calls the wall clock. The breaker
// takes an injectable Clock; DefaultClock references the time.Now
// function as a VALUE, so production gets real time while tests and the
// chaos harness drive state transitions with a fake clock — which is how
// the package stays inside the simdeterminism lint scope.
package replica

import (
	"sync"
	"time"
)

// Clock supplies the breaker's notion of time. It is injected, never
// read from the environment inside breaker logic, so breaker state
// transitions are fully deterministic under test.
type Clock func() time.Time

// DefaultClock is the production clock. Assigning the time.Now function
// value (not calling it) keeps kernel code free of wall-clock reads.
var DefaultClock Clock = time.Now

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// Closed: the replica is presumed healthy; attempts flow through.
	Closed BreakerState = iota
	// Open: the replica recently failed; attempts are rejected until
	// the cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed; exactly one probe attempt is
	// admitted to test the replica before trusting it again.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// Breaker defaults, used when BreakerConfig fields are zero.
const (
	DefaultFailThreshold = 3
	DefaultOpenFor       = 500 * time.Millisecond
)

// BreakerConfig parameterizes one replica's circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that trips a
	// closed breaker open. Zero selects DefaultFailThreshold.
	FailThreshold int
	// OpenFor is how long an open breaker rejects attempts before
	// half-opening for a probe. Zero selects DefaultOpenFor.
	OpenFor time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultFailThreshold
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultOpenFor
	}
	return c
}

// Breaker is a three-state circuit breaker: closed → open after
// FailThreshold consecutive failures, open → half-open after OpenFor on
// the injected clock, half-open → closed on a successful probe or back
// to open on a failed one. Half-open admits exactly one outstanding
// probe at a time.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures
	openedAt time.Time
	probing  bool // a half-open probe is outstanding
}

// NewBreaker builds a closed breaker. A nil clock selects DefaultClock.
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = DefaultClock
	}
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

// Allow reports whether an attempt may be routed through this replica.
// An open breaker half-opens once OpenFor has elapsed, admitting the
// calling attempt as the probe; further attempts are rejected until the
// probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clock().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a completed round trip: the breaker closes and the
// consecutive-failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.probing = false
}

// Failure reports a failed attempt (a refused dial or a poisoned
// transport epoch). A half-open probe failure re-opens immediately; a
// closed breaker opens once FailThreshold consecutive failures
// accumulate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == HalfOpen || b.fails >= b.cfg.FailThreshold {
		b.state = Open
		b.openedAt = b.clock()
		b.probing = false
	}
}

// State returns the stored state (Open does not lazily half-open here;
// only Allow consumes probe slots).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ConsecutiveFailures returns the current consecutive-failure count.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
