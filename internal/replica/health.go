package replica

import (
	"sync"
	"time"
)

// ewmaAlpha weights the newest latency sample in the moving average:
// small enough to smooth per-call jitter, large enough that a handful of
// slow round trips visibly moves the estimate.
const ewmaAlpha = 0.2

// Health is one replica's latency and failure accounting, fed by the
// rmi per-attempt hook. It is observability state only — routing
// decisions belong to the Breaker — but the EWMA is what a hedging
// policy or an operator dashboard reads.
type Health struct {
	mu          sync.Mutex
	ewma        float64 // smoothed round-trip time, in nanoseconds
	samples     int64
	consecFails int
	failures    int64
	successes   int64
}

// Observe feeds one attempt outcome. rtt is ignored for failed attempts
// (and for successes reported without a measurement, rtt <= 0).
func (h *Health) Observe(rtt time.Duration, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.failures++
		h.consecFails++
		return
	}
	h.successes++
	h.consecFails = 0
	if rtt <= 0 {
		return
	}
	h.samples++
	if h.samples == 1 {
		h.ewma = float64(rtt)
	} else {
		h.ewma = ewmaAlpha*float64(rtt) + (1-ewmaAlpha)*h.ewma
	}
}

// EWMALatency returns the smoothed round-trip estimate (0 before the
// first measured success).
func (h *Health) EWMALatency() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.ewma)
}

// ConsecutiveFailures returns the current failure streak.
func (h *Health) ConsecutiveFailures() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.consecFails
}

// Counts returns lifetime success/failure totals.
func (h *Health) Counts() (successes, failures int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.successes, h.failures
}
