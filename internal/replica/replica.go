package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Endpoint is one provider replica: a display name and a dial function
// opening a fresh connection to it.
type Endpoint struct {
	Name string
	Dial func() (net.Conn, error)
}

// Status is a point-in-time snapshot of one replica's standing.
type Status struct {
	Name        string
	State       BreakerState
	EWMALatency time.Duration
	ConsecFails int
	Successes   int64
	Failures    int64
}

// Set holds N equivalent provider endpoints for one IP component with a
// breaker and health record per replica. Its Dialer is the failover
// policy: installed as rmi.Client.Redial, it makes every reconnect —
// including the journal replay that restores session state — land on
// the next healthy replica rather than the one that just died.
type Set struct {
	// OnFailover, when non-nil, observes each adoption of a different
	// current replica. It is called without Set locks held.
	OnFailover func(from, to int)

	eps    []Endpoint
	brs    []*Breaker
	health []*Health

	mu        sync.Mutex
	current   int
	failovers int
}

// NewSet builds a replica set over the given endpoints. Replica 0 is
// the initial current replica. A nil clock selects DefaultClock.
func NewSet(cfg BreakerConfig, clock Clock, eps ...Endpoint) (*Set, error) {
	if len(eps) == 0 {
		return nil, errors.New("replica: set needs at least one endpoint")
	}
	s := &Set{eps: eps}
	for range eps {
		s.brs = append(s.brs, NewBreaker(cfg, clock))
		s.health = append(s.health, &Health{})
	}
	return s, nil
}

// Dialer returns the failover dial function, suitable as
// rmi.Client.Redial. Candidates are tried in ring order starting from
// the current replica, skipping replicas whose breaker rejects the
// attempt; if that yields no connection, the skipped replicas are
// probed once each as a last resort, so an open breaker can never
// strand a client whose only live replica is mid-cooldown. The first
// successful dial adopts that replica as current (counted as a failover
// when it changed). The candidate order is a pure function of the
// current index and breaker states, keeping failover deterministic
// under the chaos harness.
func (s *Set) Dialer() func() (net.Conn, error) { return s.dial }

func (s *Set) dial() (net.Conn, error) {
	s.mu.Lock()
	start := s.current
	s.mu.Unlock()
	n := len(s.eps)
	tried := make([]bool, n)
	var dialErrs []error
	for pass := 0; pass < 2; pass++ {
		for k := 0; k < n; k++ {
			i := (start + k) % n
			if tried[i] {
				continue
			}
			if pass == 0 && !s.brs[i].Allow() {
				continue
			}
			tried[i] = true
			conn, err := s.eps[i].Dial()
			if err != nil {
				s.brs[i].Failure()
				s.health[i].Observe(0, err)
				dialErrs = append(dialErrs, fmt.Errorf("%s: %w", s.eps[i].Name, err))
				continue
			}
			s.adopt(i)
			return conn, nil
		}
	}
	return nil, fmt.Errorf("replica: all %d replicas unavailable: %w", n, errors.Join(dialErrs...))
}

// adopt makes replica i current, counting a failover when it changed.
func (s *Set) adopt(i int) {
	s.mu.Lock()
	from := s.current
	changed := from != i
	if changed {
		s.current = i
		s.failovers++
	}
	cb := s.OnFailover
	s.mu.Unlock()
	if changed && cb != nil {
		cb(from, i)
	}
}

// ObserveAttempt is the rmi.Client.OnAttempt hook: one completed wire
// attempt, with its measured round-trip time, charged to the current
// replica's health record. A successful round trip also closes the
// replica's breaker — it is the strongest liveness signal available.
// Failed attempts feed health statistics only: breaker penalties belong
// to ObserveEpochFail (one per poisoned epoch), not to every in-flight
// call the epoch took down with it.
func (s *Set) ObserveAttempt(method string, rtt time.Duration, err error) {
	_ = method
	s.mu.Lock()
	i := s.current
	s.mu.Unlock()
	s.health[i].Observe(rtt, err)
	if err == nil {
		s.brs[i].Success()
	}
}

// ObserveEpochFail is the rmi.Client.OnEpochFail hook: one transport
// epoch died on the current replica. The breaker takes exactly one
// failure per epoch, however many calls were in flight.
func (s *Set) ObserveEpochFail(err error) {
	s.mu.Lock()
	i := s.current
	s.mu.Unlock()
	s.brs[i].Failure()
	s.health[i].Observe(0, err)
}

// Current returns the index of the replica currently serving.
func (s *Set) Current() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// Failovers returns how many times the current replica changed.
func (s *Set) Failovers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failovers
}

// Size returns the replica count.
func (s *Set) Size() int { return len(s.eps) }

// StatusOf snapshots replica i.
func (s *Set) StatusOf(i int) Status {
	h := s.health[i]
	ok, fail := h.Counts()
	return Status{
		Name:        s.eps[i].Name,
		State:       s.brs[i].State(),
		EWMALatency: h.EWMALatency(),
		ConsecFails: h.ConsecutiveFailures(),
		Successes:   ok,
		Failures:    fail,
	}
}

// Statuses snapshots every replica in index order.
func (s *Set) Statuses() []Status {
	out := make([]Status, len(s.eps))
	for i := range s.eps {
		out[i] = s.StatusOf(i)
	}
	return out
}
