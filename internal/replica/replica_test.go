package replica

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// fakeClock is a deterministic, manually-advanced Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func TestBreakerStateMachine(t *testing.T) {
	fc := &fakeClock{}
	b := NewBreaker(BreakerConfig{FailThreshold: 2, OpenFor: 100 * time.Millisecond}, fc.Now)

	if b.State() != Closed || !b.Allow() {
		t.Fatalf("new breaker: state %v, want closed+allowing", b.State())
	}
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("one failure below threshold tripped the breaker: %v", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("threshold failures: state %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt before the cooldown")
	}

	// Cooldown elapses on the fake clock: exactly one probe is admitted.
	fc.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v, want half-open during probe", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe failure re-opens immediately; another full cooldown applies.
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatalf("failed probe: state %v, want open+rejecting", b.State())
	}
	fc.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second cooldown rejected the probe")
	}
	b.Success()
	if b.State() != Closed || b.ConsecutiveFailures() != 0 {
		t.Fatalf("successful probe: state %v fails %d, want closed/0", b.State(), b.ConsecutiveFailures())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailThreshold: 3}, (&fakeClock{}).Now)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("streak did not reset on success: %v", b.State())
	}
}

func TestHealthEWMA(t *testing.T) {
	h := &Health{}
	h.Observe(100*time.Millisecond, nil)
	if got := h.EWMALatency(); got != 100*time.Millisecond {
		t.Fatalf("first sample: ewma %v, want the sample itself", got)
	}
	h.Observe(200*time.Millisecond, nil)
	// 0.2*200ms + 0.8*100ms = 120ms.
	if got := h.EWMALatency(); got != 120*time.Millisecond {
		t.Fatalf("ewma %v, want 120ms", got)
	}
	h.Observe(0, errors.New("boom"))
	if h.ConsecutiveFailures() != 1 {
		t.Fatalf("consecutive failures = %d, want 1", h.ConsecutiveFailures())
	}
	if got := h.EWMALatency(); got != 120*time.Millisecond {
		t.Fatalf("failure moved the latency estimate: %v", got)
	}
	h.Observe(120*time.Millisecond, nil)
	if h.ConsecutiveFailures() != 0 {
		t.Fatal("success did not reset the failure streak")
	}
	ok, fail := h.Counts()
	if ok != 3 || fail != 1 {
		t.Fatalf("counts = (%d, %d), want (3, 1)", ok, fail)
	}
}

// pipeEndpoint returns an endpoint whose dials succeed with a net.Pipe
// (peer drained and closed by cleanup) and a counter of dials taken.
func pipeEndpoint(t *testing.T, name string) (Endpoint, *int) {
	t.Helper()
	dials := new(int)
	var mu sync.Mutex
	return Endpoint{
		Name: name,
		Dial: func() (net.Conn, error) {
			mu.Lock()
			*dials++
			mu.Unlock()
			a, b := net.Pipe()
			go func() { _, _ = io.Copy(io.Discard, b) }()
			t.Cleanup(func() { a.Close(); b.Close() })
			return a, nil
		},
	}, dials
}

func refusingEndpoint(name string) (Endpoint, *int) {
	dials := new(int)
	var mu sync.Mutex
	return Endpoint{
		Name: name,
		Dial: func() (net.Conn, error) {
			mu.Lock()
			*dials++
			mu.Unlock()
			return nil, errors.New("connection refused")
		},
	}, dials
}

func TestSetFailsOverInRingOrder(t *testing.T) {
	leakcheck.Check(t)
	fc := &fakeClock{}
	dead0, d0 := refusingEndpoint("r0")
	dead1, d1 := refusingEndpoint("r1")
	live, d2 := pipeEndpoint(t, "r2")
	s, err := NewSet(BreakerConfig{FailThreshold: 1, OpenFor: time.Hour}, fc.Now, dead0, dead1, live)
	if err != nil {
		t.Fatal(err)
	}
	var hops [][2]int
	s.OnFailover = func(from, to int) { hops = append(hops, [2]int{from, to}) }

	conn, err := s.Dialer()()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if s.Current() != 2 || s.Failovers() != 1 {
		t.Fatalf("current %d failovers %d, want replica 2 after one failover", s.Current(), s.Failovers())
	}
	if len(hops) != 1 || hops[0] != [2]int{0, 2} {
		t.Fatalf("failover hops = %v, want one hop 0→2", hops)
	}
	if *d0 != 1 || *d1 != 1 || *d2 != 1 {
		t.Fatalf("dials = %d/%d/%d, want one each in ring order", *d0, *d1, *d2)
	}

	// The dead replicas' breakers opened (threshold 1, cooldown 1h on a
	// frozen clock): the next dial goes straight to the live replica.
	conn, err = s.Dialer()()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if *d0 != 1 || *d1 != 1 {
		t.Fatalf("open-breaker replicas redialed: %d/%d", *d0, *d1)
	}
	if s.Failovers() != 1 {
		t.Fatalf("redial of the same healthy replica counted as a failover: %d", s.Failovers())
	}
}

func TestSetLastResortProbesOpenBreakers(t *testing.T) {
	leakcheck.Check(t)
	fc := &fakeClock{}
	live, dials := pipeEndpoint(t, "only")
	s, err := NewSet(BreakerConfig{FailThreshold: 1, OpenFor: time.Hour}, fc.Now, live)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the only replica's breaker: a frozen clock means the
	// cooldown never elapses, so only the last-resort pass can reach it.
	s.ObserveEpochFail(errors.New("epoch died"))
	if s.brs[0].State() != Open {
		t.Fatalf("breaker state %v, want open", s.brs[0].State())
	}
	conn, err := s.Dialer()()
	if err != nil {
		t.Fatalf("last-resort probe did not run: %v", err)
	}
	conn.Close()
	if *dials != 1 {
		t.Fatalf("dials = %d, want exactly one last-resort probe", *dials)
	}
}

func TestSetAllReplicasDown(t *testing.T) {
	leakcheck.Check(t)
	dead0, _ := refusingEndpoint("r0")
	dead1, _ := refusingEndpoint("r1")
	s, err := NewSet(BreakerConfig{FailThreshold: 1, OpenFor: time.Hour}, (&fakeClock{}).Now, dead0, dead1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dialer()(); err == nil {
		t.Fatal("dial over an all-dead set succeeded")
	}
	sts := s.Statuses()
	if len(sts) != 2 {
		t.Fatalf("statuses = %d entries", len(sts))
	}
	for i, st := range sts {
		if st.State != Open || st.Failures == 0 {
			t.Errorf("replica %d status = %+v, want open with failures recorded", i, st)
		}
	}
}

func TestObserveAttemptFeedsCurrentReplica(t *testing.T) {
	live, _ := pipeEndpoint(t, "r0")
	s, err := NewSet(BreakerConfig{}, (&fakeClock{}).Now, live)
	if err != nil {
		t.Fatal(err)
	}
	s.ObserveAttempt("power.batch", 80*time.Millisecond, nil)
	s.ObserveAttempt("power.batch", 0, errors.New("deadline"))
	st := s.StatusOf(0)
	if st.EWMALatency != 80*time.Millisecond {
		t.Fatalf("ewma %v, want 80ms", st.EWMALatency)
	}
	if st.Successes != 1 || st.Failures != 1 {
		t.Fatalf("counts %d/%d, want 1/1", st.Successes, st.Failures)
	}
	// A lone attempt failure is not a breaker penalty (epochs are).
	if st.State != Closed {
		t.Fatalf("state %v, want closed", st.State)
	}
	s.ObserveEpochFail(errors.New("epoch died"))
	s.ObserveEpochFail(errors.New("epoch died"))
	s.ObserveEpochFail(errors.New("epoch died"))
	if s.StatusOf(0).State != Open {
		t.Fatalf("three epoch failures left the breaker %v", s.StatusOf(0).State)
	}
	// A live round trip closes it again.
	s.ObserveAttempt("fees", 10*time.Millisecond, nil)
	if s.StatusOf(0).State != Closed {
		t.Fatalf("successful attempt left the breaker %v", s.StatusOf(0).State)
	}
}

func TestNewSetRejectsEmpty(t *testing.T) {
	if _, err := NewSet(BreakerConfig{}, nil); err == nil {
		t.Fatal("empty set accepted")
	}
}
