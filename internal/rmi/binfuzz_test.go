package rmi

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
)

// FuzzBinaryCodec asserts the wire-format-v1 framing is the identity
// for arbitrary field contents: whatever appendFrame emits, the binary
// reader must reconstruct field for field, including section boundaries
// for strings containing NULs, the magic byte, and multi-byte varint
// lengths.
func FuzzBinaryCodec(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		f.Add(fr.Kind, fr.ID, fr.Session, fr.Method, fr.Payload, fr.Err, fr.Client, fr.Nonce, fr.Tag)
	}
	f.Add(uint8(0xff), uint64(1)<<63, "\x00", "\x00\xd5\x01", []byte{0x00, 0xd5}, "e", "c", []byte{}, "t")
	f.Fuzz(func(t *testing.T, kind uint8, id uint64, session, method string, payload []byte, errStr, client string, nonce []byte, tag string) {
		in := frame{Kind: kind, ID: id, Session: session, Method: method,
			Payload: payload, Err: errStr, Client: client, Nonce: nonce, Tag: tag}
		raw, err := appendFrame(nil, &in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		br := &binFrameReader{r: bytes.NewReader(raw)}
		var out frame
		if err := br.readFrame(&out); err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if out.Kind != in.Kind || out.ID != in.ID || out.Session != in.Session ||
			out.Method != in.Method || out.Err != in.Err || out.Client != in.Client || out.Tag != in.Tag {
			t.Fatalf("round trip mutated scalar fields: %+v -> %+v", in, out)
		}
		// Zero-length sections decode to nil; compare contents.
		if !bytes.Equal(out.Payload, in.Payload) || !bytes.Equal(out.Nonce, in.Nonce) {
			t.Fatalf("round trip mutated byte fields: %+v -> %+v", in, out)
		}
		// Every frame is fully consumed: a second read must see EOF, not
		// leftover bytes misparsed as another frame.
		var extra frame
		if err := br.readFrame(&extra); err != io.EOF {
			t.Fatalf("trailing bytes after one frame: %v", err)
		}
	})
}

// FuzzBinaryDecode feeds adversarial bytes to the binary frame reader —
// truncated headers, corrupted magic, oversized varints, length
// prefixes pointing past the buffer. Garbage must come back as an
// error: no panic, no hang, and no allocation driven by a length claim
// the buffer cannot back (section prefixes are bounds-checked against
// the bytes actually present before any allocation; the header's body
// length is capped at maxFrameBody). Anything that does decode must
// re-encode and decode to the same frame.
func FuzzBinaryDecode(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		raw, err := appendFrame(nil, &fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(raw[:len(raw)/2]) // mid-frame truncation
	}
	// Header claiming a body far larger than the bytes behind it.
	{
		hdr := []byte{binMagic0, binMagic1, binVersion, kindRequest, 0, 0, 0, 0}
		binary.LittleEndian.PutUint32(hdr[4:8], 1<<30)
		f.Add(append(hdr, 0x01, 0x02))
	}
	// Body-length overflow: past maxFrameBody entirely.
	{
		hdr := []byte{binMagic0, binMagic1, binVersion, kindRequest, 0xff, 0xff, 0xff, 0xff}
		f.Add(hdr)
	}
	// An oversized varint: ten continuation bytes where the frame ID goes.
	{
		hdr := []byte{binMagic0, binMagic1, binVersion, kindRequest, 11, 0, 0, 0}
		f.Add(append(hdr, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01))
	}
	// A section length prefix pointing past the body.
	{
		body := []byte{0x01 /* id */, 0x7f /* session len 127, 0 bytes follow */}
		hdr := []byte{binMagic0, binMagic1, binVersion, kindRequest, byte(len(body)), 0, 0, 0}
		f.Add(append(hdr, body...))
	}
	f.Add([]byte{})
	f.Add([]byte{binMagic0})
	f.Add([]byte{binMagic0, binMagic1, 0xee, 0, 0, 0, 0, 0}) // wrong version
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := &binFrameReader{r: bytes.NewReader(data)}
		var fr frame
		if err := br.readFrame(&fr); err != nil {
			return // rejection is the expected outcome for garbage
		}
		// Accepted frames must re-encode and decode to the same meaning —
		// the decoder may tolerate non-minimal varints, but never invent
		// or drop content.
		raw, err := appendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %+v: %v", fr, err)
		}
		var again frame
		if err := (&binFrameReader{r: bytes.NewReader(raw)}).readFrame(&again); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(fr, again) {
			t.Fatalf("decode/encode/decode not a fixpoint:\n first: %#v\nsecond: %#v", fr, again)
		}
		// The payload dispatcher must be equally robust against the raw
		// input (binary-tagged or gob alike).
		var env echoReq
		_ = Decode(data, &env)
	})
}
