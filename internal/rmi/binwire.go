package rmi

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/wire"
)

// Wire format v1 (DESIGN.md §12): every frame is one fixed little-endian
// header followed by a varint-encoded body.
//
//	offset  size  field
//	0       1     magic0 = 0x00  (a gob stream can never start with 0x00)
//	1       1     magic1 = 0xD5
//	2       1     version = 1
//	3       1     kind (hello/welcome/request/response)
//	4       4     body length, uint32 little-endian
//	8       n     body
//
// The body is the frame ID as an unsigned varint, then seven
// length-prefixed sections in fixed order: Session, Method, Payload,
// Err, Client, Nonce, Tag. Absent fields are zero-length sections. The
// body length is capped so adversarial headers cannot make the reader
// allocate unboundedly, and a parsed body must be consumed exactly —
// trailing bytes poison the frame.
const (
	binMagic0    = 0x00
	binMagic1    = 0xD5
	binVersion   = 1
	binHeaderLen = 8

	// maxFrameBody bounds one frame's body. The largest legitimate frames
	// are pattern-batch payloads (tens of kilobytes); 64 MiB leaves three
	// orders of magnitude of headroom while keeping a hostile header from
	// committing the reader to an arbitrary allocation.
	maxFrameBody = 64 << 20

	// maxInternedMethods bounds the reader's method-name intern table so
	// a hostile peer cycling method names cannot grow it without limit.
	maxInternedMethods = 256
)

// Codec selects the wire framing of a connection. The zero value is the
// binary codec (wire format v1); CodecGob keeps the legacy reflective
// gob framing for migration tests and old peers.
type Codec uint8

// The available codecs.
const (
	CodecBinary Codec = iota
	CodecGob
)

// String names the codec as accepted by ParseCodec.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecGob:
		return "gob"
	}
	return fmt.Sprintf("Codec(%d)", uint8(c))
}

// ParseCodec maps a -codec flag value to a Codec. The empty string
// selects the default binary codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	}
	return 0, fmt.Errorf("rmi: unknown codec %q (want binary or gob)", s)
}

// frameEncoder writes one frame to the connection; frameDecoder reads
// one. Exactly one goroutine owns each direction after the mux pumps
// start, which is what lets the binary implementations keep reusable
// buffers without locks.
type frameEncoder interface {
	writeFrame(f *frame) error
}

type frameDecoder interface {
	readFrame(f *frame) error
}

// gobFrameCodec is the legacy framing: one gob stream per direction.
type gobFrameCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

func (g *gobFrameCodec) writeFrame(f *frame) error { return g.enc.Encode(f) }

// readFrame resets f before decoding: frames are reused across reads,
// and gob omits zero-valued fields on the wire, so a stale field from a
// previous frame would otherwise survive into this one.
func (g *gobFrameCodec) readFrame(f *frame) error {
	*f = frame{}
	return g.dec.Decode(f)
}

// binFrameWriter encodes frames into one reusable buffer and writes each
// frame with a single Write call. Steady-state framing allocates nothing:
// the buffer grows to the largest frame seen and stays.
type binFrameWriter struct {
	w   io.Writer
	buf []byte
}

//gocad:noalloc
func (bw *binFrameWriter) writeFrame(f *frame) error {
	b, err := appendFrame(bw.buf[:0], f)
	if err != nil {
		return err
	}
	bw.buf = b
	_, err = bw.w.Write(b)
	return err
}

// appendFrame appends the wire-format-v1 encoding of f to b.
//
//gocad:noalloc
func appendFrame(b []byte, f *frame) ([]byte, error) {
	b = append(b, binMagic0, binMagic1, binVersion, f.Kind)
	b = append(b, 0, 0, 0, 0) // body length, patched below
	b = binary.AppendUvarint(b, f.ID)
	b = wire.AppendString(b, f.Session)
	b = wire.AppendString(b, f.Method)
	b = wire.AppendBytes(b, f.Payload)
	b = wire.AppendString(b, f.Err)
	b = wire.AppendString(b, f.Client)
	b = wire.AppendBytes(b, f.Nonce)
	b = wire.AppendString(b, f.Tag)
	body := len(b) - binHeaderLen
	if body > maxFrameBody {
		return nil, frameTooLarge(body)
	}
	binary.LittleEndian.PutUint32(b[4:8], uint32(body))
	return b, nil
}

// frameTooLarge builds the oversize-frame error. Outlined behind
// //go:noinline so its fmt boxing stays off appendFrame's
// //gocad:noalloc steady-state path.
//
//go:noinline
func frameTooLarge(body int) error {
	return fmt.Errorf("rmi: frame body %d bytes exceeds the %d-byte wire limit", body, maxFrameBody)
}

// binFrameReader decodes frames from the connection into one reusable
// body buffer. Session and method strings are interned (one connection
// speaks one session and a handful of methods, so the steady state
// re-decodes known strings without allocating). When aliasPayload is
// set, the decoded Payload aliases the reader's buffer and is valid only
// until the next readFrame — the mux reader and the serial server loop
// both consume it synchronously; the concurrent server loop, which hands
// frames to worker goroutines, must leave it unset.
type binFrameReader struct {
	r            io.Reader
	aliasPayload bool

	hdr         [binHeaderLen]byte
	body        []byte
	lastSession string
	methods     map[string]string
}

func (br *binFrameReader) readFrame(f *frame) error {
	if _, err := io.ReadFull(br.r, br.hdr[:]); err != nil {
		return err
	}
	if br.hdr[0] != binMagic0 || br.hdr[1] != binMagic1 {
		return fmt.Errorf("rmi: bad frame magic %#02x%02x", br.hdr[0], br.hdr[1])
	}
	if br.hdr[2] != binVersion {
		return fmt.Errorf("rmi: unsupported wire format version %d (speaking %d)", br.hdr[2], binVersion)
	}
	n := binary.LittleEndian.Uint32(br.hdr[4:8])
	if n > maxFrameBody {
		return fmt.Errorf("rmi: frame body %d bytes exceeds the %d-byte wire limit", n, maxFrameBody)
	}
	if cap(br.body) < int(n) {
		br.body = make([]byte, n)
	} else {
		br.body = br.body[:n]
	}
	if _, err := io.ReadFull(br.r, br.body); err != nil {
		return err
	}
	return br.parseBody(br.hdr[3], br.body, f)
}

// parseBody fills f from one frame body. The body must be consumed
// exactly: length prefixes are validated against the bytes present, and
// trailing bytes are a protocol error.
func (br *binFrameReader) parseBody(kind uint8, b []byte, f *frame) error {
	keep := f.Payload[:0] // retain payload capacity across pooled reuse
	*f = frame{Kind: kind}
	var err error
	if f.ID, b, err = wire.Uvarint(b); err != nil {
		return fmt.Errorf("rmi: frame id: %w", err)
	}
	var sec []byte
	if sec, b, err = wire.Bytes(b); err != nil {
		return fmt.Errorf("rmi: session section: %w", err)
	}
	f.Session = br.internSession(sec)
	if sec, b, err = wire.Bytes(b); err != nil {
		return fmt.Errorf("rmi: method section: %w", err)
	}
	f.Method = br.internMethod(sec)
	if sec, b, err = wire.Bytes(b); err != nil {
		return fmt.Errorf("rmi: payload section: %w", err)
	}
	if len(sec) > 0 {
		if br.aliasPayload {
			f.Payload = sec
		} else {
			f.Payload = append(keep, sec...)
		}
	}
	if sec, b, err = wire.Bytes(b); err != nil {
		return fmt.Errorf("rmi: err section: %w", err)
	}
	if len(sec) > 0 {
		f.Err = string(sec)
	}
	if sec, b, err = wire.Bytes(b); err != nil {
		return fmt.Errorf("rmi: client section: %w", err)
	}
	if len(sec) > 0 {
		f.Client = string(sec)
	}
	if sec, b, err = wire.Bytes(b); err != nil {
		return fmt.Errorf("rmi: nonce section: %w", err)
	}
	if len(sec) > 0 {
		f.Nonce = append([]byte(nil), sec...)
	}
	if sec, b, err = wire.Bytes(b); err != nil {
		return fmt.Errorf("rmi: tag section: %w", err)
	}
	if len(sec) > 0 {
		f.Tag = string(sec)
	}
	if len(b) != 0 {
		return fmt.Errorf("rmi: %d trailing bytes after frame body", len(b))
	}
	return nil
}

// internSession returns the session string for sec without allocating in
// the steady state (one connection carries one session ID).
func (br *binFrameReader) internSession(sec []byte) string {
	if len(sec) == 0 {
		return ""
	}
	if string(sec) != br.lastSession {
		br.lastSession = string(sec)
	}
	return br.lastSession
}

// internMethod returns the method string for sec, reusing known names.
// The `m[string(b)]` lookup form is allocation-free.
func (br *binFrameReader) internMethod(sec []byte) string {
	if len(sec) == 0 {
		return ""
	}
	if m, ok := br.methods[string(sec)]; ok {
		return m
	}
	m := string(sec)
	if br.methods == nil {
		br.methods = make(map[string]string)
	}
	if len(br.methods) < maxInternedMethods {
		br.methods[m] = m
	}
	return m
}
